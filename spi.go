package archcontest

// The championship component SPI: the registries through which third-party
// branch predictors, cache replacement policies, and prefetchers plug into
// the engine by name. A registered component is selected from a
// configuration exactly like a built-in — BranchConfig{Kind: name},
// CacheConfig.Replacement, or PrefetchConfig{Name: name} — and from there
// every layer works unchanged: single runs, contests, the verification
// subsystem, the fast-model filter, and the leaderboard all accept it.
//
// The contract (enforced for predictors by PredictorConformance, and the
// same in spirit for the cache components): deterministic — equal
// construction plus an equal call sequence yields equal outputs; Reset
// restores the exact post-construction cold state; and the hot-path methods
// (Predict/Update, Touch/Insert/Victim, OnAccess) must not allocate.
// Built-in components keep their devirtualised fast paths; registered ones
// run through the interface fallback, bit-identically modeled but dispatched
// dynamically.

import (
	"context"

	"archcontest/internal/branch"
	"archcontest/internal/cache"
	"archcontest/internal/experiments"
)

// BranchConfig selects and parameterizes a branch predictor; Kind may name a
// built-in ("gshare", "bimodal", "tage") or a registered family, with Params
// carrying the family's opaque parameter string.
type BranchConfig = branch.Config

// BranchPredictor is the predictor SPI: Predict and Update per branch,
// Reset to cold state.
type BranchPredictor = branch.Predictor

// BranchFactory builds a predictor from its configuration.
type BranchFactory = branch.Factory

// RegisterPredictor adds a predictor family under the given kind name.
// Built-in kinds are reserved; registering a taken name is an error.
func RegisterPredictor(kind string, f BranchFactory) error { return branch.Register(kind, f) }

// RegisteredPredictors lists every predictor kind — built-ins plus
// registered families — in sorted order.
func RegisteredPredictors() []string { return branch.Registered() }

// PredictorConformance checks a predictor configuration against the SPI
// contract: determinism across instances, Reset reproducing the cold
// sequence, and allocation-free Predict/Update.
func PredictorConformance(cfg BranchConfig) error { return branch.Conformance(cfg) }

// CacheConfig describes one cache level; its Replacement field names the
// replacement policy ("" or "lru" is the built-in fused-LRU fast path).
type CacheConfig = cache.Config

// CacheReplacer is the replacement-policy SPI: Touch on hit, Insert on
// fill, Victim to choose the evicted way, Reset to cold state.
type CacheReplacer = cache.Replacer

// CacheReplacerFactory builds a replacement policy for a sets x assoc
// geometry.
type CacheReplacerFactory = cache.ReplacerFactory

// RegisterReplacer adds a replacement policy under the given name ("" and
// "lru" are reserved for the built-in default).
func RegisterReplacer(name string, f CacheReplacerFactory) error {
	return cache.RegisterReplacer(name, f)
}

// ReplacerNames lists every selectable replacement policy, including the
// built-in "lru".
func ReplacerNames() []string { return cache.ReplacerNames() }

// PrefetchConfig names a hierarchy prefetcher; the zero value means no
// prefetching (the default).
type PrefetchConfig = cache.PrefetchConfig

// CachePrefetcher is the prefetcher SPI: OnAccess observes each demand load
// and appends the addresses to prefetch, Reset restores cold state.
type CachePrefetcher = cache.Prefetcher

// CachePrefetcherFactory builds a prefetcher for an L1 block size.
type CachePrefetcherFactory = cache.PrefetcherFactory

// RegisterPrefetcher adds a prefetcher under the given name (the empty name
// is reserved for "no prefetching").
func RegisterPrefetcher(name string, f CachePrefetcherFactory) error {
	return cache.RegisterPrefetcher(name, f)
}

// PrefetcherNames lists every registered prefetcher in sorted order.
func PrefetcherNames() []string { return cache.PrefetcherNames() }

// LeaderboardReport is the component championship's structured result:
// overall standings, per-workload rankings, and contested head-to-head legs.
type LeaderboardReport = experiments.LeaderboardReport

// LeaderboardCombo is one predictor x replacement x prefetcher combination.
type LeaderboardCombo = experiments.LeaderboardCombo

// LeaderboardCombos enumerates the championship cross-product: every
// registered predictor kind x replacement policy x prefetcher (plus the
// no-prefetch default), in deterministic order.
func LeaderboardCombos() []LeaderboardCombo { return experiments.LeaderboardCombos() }

// RunLeaderboard races every registered component combination — built-in
// and third-party alike — over the given workloads (all of the lab's
// benchmarks when benches is empty), ranking them per workload and overall
// and contesting each workload's top two combos head-to-head.
func RunLeaderboard(ctx context.Context, lab *Lab, benches []string) (*LeaderboardReport, error) {
	if len(benches) == 0 {
		benches = lab.Benchmarks()
	}
	return experiments.LeaderboardRun(ctx, lab, benches)
}
