package archcontest

// The verification golden suite: every configuration the golden-equivalence
// tests lock is re-run with the full verification subsystem attached — the
// per-cycle invariant checker, the differential oracle, and (contested) the
// system observer. `go test -run Invariant ./...` selects this suite.

import (
	"reflect"
	"testing"

	"archcontest/internal/branch"
	"archcontest/internal/invariant"
	"archcontest/internal/oracle"
	"archcontest/internal/sim"
)

// verifyScanEvery strides the O(window) structural scans in the golden
// suite; the O(1) per-cycle checks still run every cycle. 7 is coprime to
// the engine's power-of-two structure sizes so the scan phase drifts across
// all window alignments.
const verifyScanEvery = 7

func TestInvariantGoldenSingleCore(t *testing.T) {
	benches := []string{"gcc", "mcf", "bzip", "crafty", "twolf"}
	cores := []string{"bzip", "crafty", "gap", "gcc", "gzip", "mcf", "twolf", "vpr"}
	for _, b := range benches {
		tr := MustGenerateTrace(b, goldenInsts)
		exec := oracle.Run(tr)
		for _, cn := range cores {
			cfg := MustPaletteCore(cn)

			// Invariant-checked run through the facade.
			res, err := RunVerifiedWith(cfg, tr, RunOptions{}, VerifyOptions{ScanEvery: verifyScanEvery})
			if err != nil {
				t.Fatalf("%s on %s: %v", b, cn, err)
			}
			if res.Insts != int64(tr.Len()) {
				t.Fatalf("%s on %s: retired %d of %d", b, cn, res.Insts, tr.Len())
			}

			// Differential oracle: the recorded retirement stream must
			// replay the reference execution bit for bit.
			chk := invariant.NewCoreChecker(tr, invariant.Options{
				OnViolation:       func(err error) { t.Fatalf("%s on %s: %v", b, cn, err) },
				ScanEvery:         1 << 30, // differential only; scans covered above
				RecordRetirements: true,
			})
			if _, err := Run(cfg, tr, RunOptions{Checker: chk}); err != nil {
				t.Fatalf("%s on %s: %v", b, cn, err)
			}
			sum, err := exec.ReplayChecksum(chk.Retirements())
			if err != nil {
				t.Fatalf("%s on %s: %v", b, cn, err)
			}
			if sum != exec.Checksum() {
				t.Fatalf("%s on %s: replay checksum %#x != oracle %#x", b, cn, sum, exec.Checksum())
			}
			if got := chk.Oracle().Checksum(); got != exec.Checksum() {
				t.Fatalf("%s on %s: lockstep checksum %#x != oracle %#x", b, cn, got, exec.Checksum())
			}
		}
	}
}

func TestInvariantGoldenContested(t *testing.T) {
	pairs := []struct {
		a, b string
		opts ContestOptions
	}{
		{"gcc", "mcf", ContestOptions{}},
		{"bzip", "crafty", ContestOptions{LatencyNs: 5}},
		{"twolf", "vpr", ContestOptions{ExceptionEvery: 512}},
		{"gzip", "perl", ContestOptions{MaxLag: 64}},
		{"gap", "vortex", ContestOptions{ExceptionEvery: 768, ExceptionKillRefork: true}},
		{"mcf", "parser", ContestOptions{StoreQueueCap: 8}},
	}
	benches := []string{"gcc", "mcf", "twolf", "gzip"}
	for _, p := range pairs {
		cfgs := []CoreConfig{MustPaletteCore(p.a), MustPaletteCore(p.b)}
		for _, b := range benches {
			tr := MustGenerateTrace(b, goldenInsts)
			res, err := ContestRunVerifiedWith(cfgs, tr, p.opts, VerifyOptions{ScanEvery: verifyScanEvery})
			if err != nil {
				t.Fatalf("%s vs %s on %s: %v", p.a, p.b, b, err)
			}
			if res.Insts != int64(tr.Len()) {
				t.Fatalf("%s vs %s on %s: retired %d of %d", p.a, p.b, b, res.Insts, tr.Len())
			}
		}
	}
}

// TestInvariantGoldenPredictors re-runs the predictor-palette golden legs
// under the full verification subsystem: bimodal and TAGE own cores with
// the differential oracle attached, then the gshare-vs-TAGE contest under
// the kill-refork state-transfer model (warm-up charge, cold predictor and
// caches, lead-change accounting) with the invariant checker and system
// observer watching every cycle.
func TestInvariantGoldenPredictors(t *testing.T) {
	for _, b := range []string{"gcc", "twolf"} {
		tr := MustGenerateTrace(b, goldenInsts)
		for _, p := range goldenPredictors {
			cfg := MustPaletteCore(b)
			cfg.Name = b + "-" + p.name
			cfg.Predictor = p.cfg
			res, err := RunVerifiedWith(cfg, tr, RunOptions{}, VerifyOptions{ScanEvery: verifyScanEvery})
			if err != nil {
				t.Fatalf("%s on %s: %v", b, cfg.Name, err)
			}
			if res.Insts != int64(tr.Len()) {
				t.Fatalf("%s on %s: retired %d of %d", b, cfg.Name, res.Insts, tr.Len())
			}
		}
		cfgG := MustPaletteCore(b)
		cfgT := cfgG
		cfgT.Name = b + "-tage"
		cfgT.Predictor = branch.DefaultTAGEConfig()
		opts := ContestOptions{
			ExceptionEvery: 640, ExceptionKillRefork: true,
			ReforkWarmupNs: 250, ReforkColdPredictor: true, ReforkColdCaches: true,
			LeadChangeWarmupNs: 25,
		}
		res, err := ContestRunVerifiedWith([]CoreConfig{cfgG, cfgT}, tr, opts, VerifyOptions{ScanEvery: verifyScanEvery})
		if err != nil {
			t.Fatalf("%s warm-up contest: %v", b, err)
		}
		if res.Insts != int64(tr.Len()) {
			t.Fatalf("%s warm-up contest: retired %d of %d", b, res.Insts, tr.Len())
		}
		if res.StateTransfer <= 0 {
			t.Errorf("%s warm-up contest: no state-transfer cost recorded (%+v)", b, res)
		}
	}
}

// TestInvariantGoldenComponents re-runs the component-palette golden legs
// under the full verification subsystem: every non-default replacement
// policy and prefetcher variant stand-alone with the differential oracle
// attached, then a component-equipped core contested against the default
// core under kill-refork cold caches with the invariant checker watching.
func TestInvariantGoldenComponents(t *testing.T) {
	for _, b := range []string{"gcc", "twolf"} {
		tr := MustGenerateTrace(b, goldenInsts)
		for _, c := range goldenComponents {
			cfg := componentCore(b, c.name, c.repl, c.pref)
			res, err := RunVerifiedWith(cfg, tr, RunOptions{}, VerifyOptions{ScanEvery: verifyScanEvery})
			if err != nil {
				t.Fatalf("%s on %s: %v", b, cfg.Name, err)
			}
			if res.Insts != int64(tr.Len()) {
				t.Fatalf("%s on %s: retired %d of %d", b, cfg.Name, res.Insts, tr.Len())
			}
		}
		cfgs := []CoreConfig{MustPaletteCore(b), componentCore(b, "srrip-stride", "srrip", "stride")}
		opts := ContestOptions{ExceptionEvery: 640, ExceptionKillRefork: true, ReforkWarmupNs: 250, ReforkColdCaches: true}
		res, err := ContestRunVerifiedWith(cfgs, tr, opts, VerifyOptions{ScanEvery: verifyScanEvery})
		if err != nil {
			t.Fatalf("%s component contest: %v", b, err)
		}
		if res.Insts != int64(tr.Len()) {
			t.Fatalf("%s component contest: retired %d of %d", b, res.Insts, tr.Len())
		}
	}
}

// TestInvariantVerifiedMatchesPlain locks that attaching the verification
// subsystem never perturbs a run: verified and plain results are identical,
// single and contested.
func TestInvariantVerifiedMatchesPlain(t *testing.T) {
	tr := MustGenerateTrace("twolf", goldenInsts)
	cfg := MustPaletteCore("twolf")
	plain, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	verified, err := RunVerified(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, verified) {
		t.Errorf("verified single run diverges:\nplain:    %+v\nverified: %+v", plain, verified)
	}

	cfgs := []CoreConfig{MustPaletteCore("twolf"), MustPaletteCore("vpr")}
	cplain, err := ContestRun(cfgs, tr, ContestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cverified, err := ContestRunVerified(cfgs, tr, ContestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cplain.Time != cverified.Time || cplain.Winner != cverified.Winner ||
		cplain.LeadChanges != cverified.LeadChanges {
		t.Errorf("verified contested run diverges:\nplain:    %+v\nverified: %+v", cplain, cverified)
	}
}

// TestInvariantDetectsViolation locks that the checker is live: a checker
// wired to a mismatched trace must report, not silently pass.
func TestInvariantDetectsViolation(t *testing.T) {
	// A checker built over a shorter trace must trip its oracle
	// desynchronization check the moment the core retires past the
	// reference execution's end.
	tr := MustGenerateTrace("gcc", 2000)
	short := MustGenerateTrace("gcc", 1000)
	var violations int
	chk := invariant.NewCoreChecker(short, invariant.Options{
		OnViolation: func(error) { violations++ },
		ScanEvery:   1 << 30, // the scans read the core's own trace; only the oracle sees `short`
	})
	if _, err := Run(MustPaletteCore("gcc"), tr, RunOptions{Checker: chk}); err != nil {
		t.Fatal(err)
	}
	if violations == 0 {
		t.Fatal("checker against a shorter reference trace reported nothing")
	}

	// And the differential signal proper: two different workloads of equal
	// length must have different oracle checksums, or the replay check
	// could never distinguish them.
	if oracle.Run(tr).Checksum() == oracle.Run(MustGenerateTrace("mcf", 2000)).Checksum() {
		t.Fatal("oracle checksums of different workloads collide")
	}
}

var _ = sim.EngineVersion // keep the import pinned to the engine the suite verifies
