package fuzz

// Metamorphic properties of the contest engine: relations between runs that
// must hold whatever the absolute numbers are. Each property pins the
// option regime that makes it exact — see the comments — rather than
// weakening its assertion to cover interference the engine models on
// purpose (store-queue backpressure, exception rendezvous).

import (
	"context"
	"reflect"
	"testing"

	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/experiments"
	"archcontest/internal/resultcache"
	"archcontest/internal/sim"
	"archcontest/internal/workload"
)

const metaInsts = 10_000

// metaOptions is the decoupled-contest regime: the lag bound is small
// enough that a structurally slower core saturates (and detaches) quickly,
// and the store queue is deeper than the trace has stores, so it can never
// backpressure the leader. Under these options a contest can only help the
// fastest core, never hinder it.
func metaOptions() contest.Options {
	return contest.Options{MaxLag: 256, StoreQueueCap: 1 << 16}
}

// The contested system is at least as fast as every contestant running
// solo, within a settlement tolerance: injected results can only accelerate
// a core, and under metaOptions no mechanism couples a slow core back onto
// the leader. Solo baselines use the write-through policy, the same the
// cores run under inside a contest.
func TestMetamorphicContestNotSlowerThanSolo(t *testing.T) {
	pairs := [][2]string{{"gcc", "mcf"}, {"twolf", "vpr"}, {"gzip", "bzip"}}
	for _, p := range pairs {
		tr := workload.MustGenerate(p[0], metaInsts)
		cfgs := []config.CoreConfig{
			config.MustPaletteCore(p[0]),
			config.MustPaletteCore(p[1]),
		}
		res, err := contest.Run(cfgs, tr, metaOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range cfgs {
			solo, err := sim.Run(cfg, tr, sim.RunOptions{WritePolicy: cache.WriteThrough})
			if err != nil {
				t.Fatal(err)
			}
			// 2% settlement tolerance: the leader crown can change hands a
			// few cycles after the underlying retire counts cross.
			if float64(res.Time) > 1.02*float64(solo.Time) {
				t.Errorf("%s vs %s on %s: contested %v slower than %s solo %v",
					p[0], p[1], p[0], res.Time, cfg.Name, solo.Time)
			}
		}
	}
}

// Adding a strictly worse contestant (the same core at a quarter of the
// clock rate) changes nothing about the outcome: it can never lead, its
// broadcasts are always stale, and under metaOptions it cannot couple back
// through the store queue — so the winner, the finish time, the lead-change
// count, and the winner's counters are bit-identical.
func TestMetamorphicAddWorseCoreKeepsResult(t *testing.T) {
	for _, bench := range []string{"gcc", "twolf"} {
		tr := workload.MustGenerate(bench, metaInsts)
		a := config.MustPaletteCore(bench)
		b := config.MustPaletteCore("mcf")
		worse := a
		worse.Name = a.Name + "-quarterclock"
		worse.ClockPeriodNs *= 4

		base, err := contest.Run([]config.CoreConfig{a, b}, tr, metaOptions())
		if err != nil {
			t.Fatal(err)
		}
		wide, err := contest.Run([]config.CoreConfig{a, b, worse}, tr, metaOptions())
		if err != nil {
			t.Fatal(err)
		}
		if base.Time != wide.Time {
			t.Errorf("%s: finish time moved from %v to %v", bench, base.Time, wide.Time)
		}
		if base.Cores[base.Winner] != wide.Cores[wide.Winner] {
			t.Errorf("%s: winner changed from %s to %s", bench, base.Cores[base.Winner], wide.Cores[wide.Winner])
		}
		if base.LeadChanges != wide.LeadChanges {
			t.Errorf("%s: lead changes moved from %d to %d", bench, base.LeadChanges, wide.LeadChanges)
		}
		if !reflect.DeepEqual(base.PerCore[base.Winner], wide.PerCore[wide.Winner]) {
			t.Errorf("%s: winner stats changed:\nbase: %+v\nwide: %+v",
				bench, base.PerCore[base.Winner], wide.PerCore[wide.Winner])
		}
	}
}

// A cache-warm rerun of a campaign is bit-identical to the cold run and
// executes zero simulations.
func TestMetamorphicCacheWarmRerun(t *testing.T) {
	dir := t.TempDir()
	open := func() *resultcache.Cache {
		c, err := resultcache.Open(dir, resultcache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	type outcome struct {
		run     sim.Result
		contest contest.Result
	}
	campaign := func(l *experiments.Lab) outcome {
		r, err := l.RunOn(context.Background(), "gcc", l.Cores()[0], sim.RunOptions{LogRegions: true})
		if err != nil {
			t.Fatal(err)
		}
		c, err := l.Contest(context.Background(), "gcc", []string{"gcc", "mcf"}, contest.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return outcome{run: r, contest: c}
	}

	cold := experiments.NewLab(experiments.Config{N: metaInsts, Cache: open()})
	first := campaign(cold)
	if st := cold.CampaignStats(); st.Simulations != 1 || st.Contests != 1 {
		t.Fatalf("cold campaign executed %d sims, %d contests", st.Simulations, st.Contests)
	}

	warm := experiments.NewLab(experiments.Config{N: metaInsts, Cache: open()})
	second := campaign(warm)
	if st := warm.CampaignStats(); st.Simulations != 0 || st.Contests != 0 {
		t.Errorf("warm campaign executed %d sims, %d contests; want none", st.Simulations, st.Contests)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("warm rerun diverges:\ncold: %+v\nwarm: %+v", first, second)
	}
}
