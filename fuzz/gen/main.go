// Command gen regenerates the checked-in fuzz seed corpus under
// fuzz/testdata/fuzz/ from fuzz.SeedCorpus(). Run from the repository root:
//
//	go run ./fuzz/gen
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"archcontest/fuzz"
)

var targets = []string{"FuzzPipeline", "FuzzContest", "FuzzResultCacheKey"}

func main() {
	for _, target := range targets {
		dir := filepath.Join("fuzz", "testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for i, seed := range fuzz.SeedCorpus() {
			// The go-fuzz corpus file format: a version line, then one
			// quoted value per fuzz argument.
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("wrote %d seeds for %d targets\n", len(fuzz.SeedCorpus()), len(targets))
}
