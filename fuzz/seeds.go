package fuzz

// The seed corpus, by construction rather than by capture: each seed decodes
// into one of the regimes the verification subsystem most needs to see —
// engine defaults, exception rendezvous (both handler styles), a saturated
// lagger, store-queue backpressure, a 3-way contest, predictor diversity
// (TAGE vs bimodal), cold-state kill-refork warm-up, and cache-component
// diversity (SRRIP/random replacement with both prefetchers). `go run
// ./fuzz/gen`
// writes these into testdata/fuzz/<target>/ for every fuzz target; the
// targets also f.Add them, so `go test` exercises each regime even without
// -fuzz.

func pad(b []byte, n int) []byte {
	out := make([]byte, n)
	copy(out, b)
	return out
}

// buildSeed assembles one fuzz input in decodeContest's layout. A prefix of
// the same bytes drives decodePipeline, so the one corpus seeds every
// target.
func buildSeed(bench byte, n uint16, mut []byte, cores [][]byte, opts []byte) []byte {
	b := []byte{bench, byte(n), byte(n >> 8)}
	b = append(b, pad(mut, 22)...)
	b = append(b, byte(len(cores)-2)) // decodeContest: 2 + byte%2 cores
	for _, c := range cores {
		b = append(b, pad(c, configBytes)...)
	}
	return append(b, pad(opts, optionBytes)...)
}

// Core mutation bytes: [base, width, rob, iq, lsq, wake, sched, fe, mem,
// clock, predKind, predGeomA, predGeomB, replByte, prefByte] — predKind 0
// keeps the palette gshare, 1/2/3 decode bimodal/gshare/TAGE geometries;
// replByte picks L1 (bits 0-1) and L2 (bits 2-3) replacement ladder rungs,
// prefByte picks the prefetcher ladder rung; zero keeps the fused-LRU,
// no-prefetch defaults.
var (
	fastCore = []byte{0, 3, 3, 0, 3, 0, 1, 0, 30, 0}  // 4-wide, ROB 128, 0.25ns
	midCore  = []byte{4, 1, 2, 1, 2, 1, 0, 4, 80, 2}  // 2-wide, ROB 64, 0.5ns
	slowCore = []byte{1, 0, 1, 1, 1, 2, 3, 8, 250, 4} // scalar, ROB 32, 1ns, slow memory
	// Predictor-diverse cores: fastCore's structure with a decoded TAGE,
	// midCore's with a decoded bimodal — the interface fallback and the
	// TAGE fast path in one contest.
	tageCore    = []byte{0, 3, 3, 0, 3, 0, 1, 0, 30, 0, 3, 2, 1}
	bimodalCore = []byte{4, 1, 2, 1, 2, 1, 0, 4, 80, 2, 1, 4, 0}
	// Component-diverse cores: fastCore with random L1 / SRRIP L2 and a
	// stride prefetcher, midCore's bimodal variant with SRRIP L1 and a
	// next-line prefetcher — the generic replacer paths and both prefetch
	// kinds in one contest.
	componentCoreA = []byte{0, 3, 3, 0, 3, 0, 1, 0, 30, 0, 0, 0, 0, 5, 2}
	componentCoreB = []byte{4, 1, 2, 1, 2, 1, 0, 4, 80, 2, 1, 4, 0, 1, 1}
)

// Option bytes: [latencyIdx, maxLagIdx, sqCapIdx, excIdx, flags, warmByte];
// warmByte packs the warm-up ladder index (bits 0-1), cold-predictor (bit
// 2), cold-caches (bit 3), and the lead-change ladder index (bits 4+).

// SeedCorpus returns the checked-in seed inputs, in a fixed order. Index 0
// is the engine-defaults seed.
func SeedCorpus() [][]byte {
	storeHeavy := make([]byte, 22)
	storeHeavy[15] = 255 // MutateForFuzz byte 15: StoreFrac -> ~0.8
	return [][]byte{
		// Engine defaults, two moderately different cores.
		buildSeed(0, 1024, nil, [][]byte{fastCore, midCore}, nil),
		// Exception rendezvous every 512 instructions.
		buildSeed(3, 1800, nil, [][]byte{fastCore, midCore}, []byte{0, 0, 0, 2, 0}),
		// Exception rendezvous under the kill-and-refork handler model.
		buildSeed(3, 1800, nil, [][]byte{fastCore, midCore}, []byte{0, 0, 0, 3, 1}),
		// Saturated lagger: tiny lag bound, structurally mismatched cores.
		buildSeed(5, 1500, nil, [][]byte{fastCore, slowCore}, []byte{0, 1, 0, 0, 0}),
		// Store-queue backpressure: store-heavy workload, 4-entry queue.
		buildSeed(7, 1500, storeHeavy, [][]byte{fastCore, midCore}, []byte{0, 0, 1, 0, 0}),
		// 3-way contest at high latency with training on inject disabled.
		buildSeed(9, 1200, nil, [][]byte{fastCore, midCore, slowCore}, []byte{3, 3, 4, 0, 2}),
		// Predictor diversity: TAGE vs bimodal under exception rendezvous.
		buildSeed(2, 1500, nil, [][]byte{tageCore, bimodalCore}, []byte{0, 0, 0, 2, 0}),
		// Kill-refork with the full state-transfer model: 1000ns warm-up,
		// cold predictor and caches, 50ns lead-change charge (0x1e).
		buildSeed(3, 1800, nil, [][]byte{tageCore, midCore}, []byte{0, 0, 0, 3, 1, 0x1e}),
		// Component diversity: non-default replacement policies and both
		// prefetchers, contested under exception rendezvous.
		buildSeed(4, 1600, nil, [][]byte{componentCoreA, componentCoreB}, []byte{0, 0, 0, 2, 0}),
		// Empty input: everything decodes to its ladder's first rung.
		{},
	}
}
