package fuzz

// The native fuzz targets. Each decodes its input with the total decoder
// (decode.go), runs the engine with the full verification subsystem
// attached, and fails on any invariant violation, oracle divergence, or
// event-driven/single-step mismatch. Sustained runs:
//
//	go test -fuzz=FuzzPipeline      -fuzztime=30s -run '^$' ./fuzz/
//	go test -fuzz=FuzzContest       -fuzztime=30s -run '^$' ./fuzz/
//	go test -fuzz=FuzzResultCacheKey -fuzztime=30s -run '^$' ./fuzz/

import (
	"reflect"
	"testing"

	"archcontest/internal/contest"
	"archcontest/internal/invariant"
	"archcontest/internal/resultcache"
	"archcontest/internal/sim"
)

func addSeeds(f *testing.F) {
	for _, s := range SeedCorpus() {
		f.Add(s)
	}
}

// FuzzPipeline: any decodable single-core run retires the whole trace in
// order with clean invariants, replays the oracle, and is bit-identical
// between the event-driven and single-step schedulers.
func FuzzPipeline(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, cfg := decodePipeline(data)
		chk := invariant.NewCoreChecker(tr, invariant.Options{
			OnViolation: func(err error) { t.Error(err) },
			ScanEvery:   4,
		})
		fast, err := sim.Run(cfg, tr, sim.RunOptions{Checker: chk, MaxCycles: 50_000_000})
		if err != nil {
			t.Fatalf("event-driven run failed (deadlock?): %v", err)
		}
		chk.Finish(int64(tr.Len()))

		slow, err := sim.Run(cfg, tr, sim.RunOptions{SingleStep: true, MaxCycles: 50_000_000})
		if err != nil {
			t.Fatalf("single-step run failed: %v", err)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("event-driven diverges from single-step\nfast: %+v\nslow: %+v", fast, slow)
		}

		legacy, err := sim.Run(cfg, tr, sim.RunOptions{LegacySched: true, MaxCycles: 50_000_000})
		if err != nil {
			t.Fatalf("legacy-scheduler run failed: %v", err)
		}
		if !reflect.DeepEqual(fast, legacy) {
			t.Errorf("bitmap scheduler diverges from legacy wake-list\nbitmap: %+v\nlegacy: %+v", fast, legacy)
		}
	})
}

// FuzzContest: any decodable contested run finishes with clean contest
// invariants (bounded lag, GRB protocol, leader accounting, store-merge
// prefix, exception rendezvous) and is bit-identical between the
// event-driven and single-step schedulers.
func FuzzContest(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, cfgs, opts := decodeContest(data)
		obs := invariant.NewSystemObserver(tr, invariant.Options{
			OnViolation: func(err error) { t.Error(err) },
			ScanEvery:   8,
		})
		vopts := opts
		vopts.Observer = obs
		fast, err := contest.Run(cfgs, tr, vopts)
		if err != nil {
			t.Fatalf("event-driven contest failed (deadlock?): %v", err)
		}
		obs.Finish(fast)

		sopts := opts
		sopts.SingleStep = true
		slow, err := contest.Run(cfgs, tr, sopts)
		if err != nil {
			t.Fatalf("single-step contest failed: %v", err)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("event-driven diverges from single-step\nfast: %+v\nslow: %+v", fast, slow)
		}

		lopts := opts
		lopts.LegacySched = true
		legacy, err := contest.Run(cfgs, tr, lopts)
		if err != nil {
			t.Fatalf("legacy-scheduler contest failed: %v", err)
		}
		if !reflect.DeepEqual(fast, legacy) {
			t.Errorf("bitmap scheduler diverges from legacy wake-list\nbitmap: %+v\nlegacy: %+v", fast, legacy)
		}

		// Batched execution interleaves whole contest systems in a quantum
		// round-robin; every item must still be bit-identical to its direct
		// run, for any decoded input.
		item := contest.BatchItem{Configs: cfgs, Trace: tr, Opts: opts}
		batch, err := contest.RunBatch(t.Context(), []contest.BatchItem{item, item},
			contest.BatchOptions{GroupSize: 2})
		if err != nil {
			t.Fatalf("batched contest failed: %v", err)
		}
		for i, r := range batch {
			if !reflect.DeepEqual(fast, r) {
				t.Errorf("batched contest %d diverges from direct run\ndirect: %+v\nbatch: %+v", i, fast, r)
			}
		}
	})
}

// FuzzResultCacheKey: the campaign cache key is deterministic, blind to
// attached checkers (they are not part of the result), and sensitive to
// every decoded input dimension — so a cache can neither split on checker
// attachment nor collide across different runs.
func FuzzResultCacheKey(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, cfgs, opts := decodeContest(data)
		cfg := cfgs[0]

		runKey := func(ro sim.RunOptions) string {
			return resultcache.Key("run", sim.EngineVersion, tr.Fingerprint(), tr.Name(), tr.Len(), cfg, ro)
		}
		contestKey := func(co contest.Options) string {
			return resultcache.Key("contest", sim.EngineVersion, tr.Fingerprint(), tr.Name(), tr.Len(), cfgs, co)
		}

		// Determinism.
		if runKey(sim.RunOptions{}) != runKey(sim.RunOptions{}) {
			t.Error("run key not deterministic")
		}
		if contestKey(opts) != contestKey(opts) {
			t.Error("contest key not deterministic")
		}

		// Checker blindness: attaching verification must not change a key,
		// or verified and plain results would occupy distinct cache slots
		// and the bypass rule would silently stop mattering.
		chk := invariant.NewCoreChecker(tr, invariant.Options{})
		if runKey(sim.RunOptions{Checker: chk}) != runKey(sim.RunOptions{}) {
			t.Error("run key sees the attached checker")
		}
		vopts := opts
		vopts.Observer = invariant.NewSystemObserver(tr, invariant.Options{})
		if contestKey(vopts) != contestKey(opts) {
			t.Error("contest key sees the attached observer")
		}

		// Sensitivity: every decoded dimension must move the key.
		seen := map[string]string{contestKey(opts): "base"}
		mutate := func(label string, co contest.Options) {
			k := contestKey(co)
			if prev, dup := seen[k]; dup {
				t.Errorf("contest key collision: %s == %s", label, prev)
			}
			seen[k] = label
		}
		m := opts
		m.LatencyNs += 0.25
		mutate("latency", m)
		m = opts
		m.MaxLag++
		mutate("maxlag", m)
		m = opts
		m.StoreQueueCap++
		mutate("sqcap", m)
		m = opts
		m.ExceptionEvery++
		mutate("exception", m)
		m = opts
		m.NoTrainOnInject = !m.NoTrainOnInject
		mutate("train", m)

		wider := cfg
		wider.Width++
		if k := resultcache.Key("run", sim.EngineVersion, tr.Fingerprint(), tr.Name(), tr.Len(), wider, sim.RunOptions{}); k == runKey(sim.RunOptions{}) {
			t.Error("run key blind to the configuration")
		}
		if tr.Len() > 1 {
			short := tr.Prefix(tr.Len() - 1)
			if k := resultcache.Key("run", sim.EngineVersion, short.Fingerprint(), short.Name(), short.Len(), cfg, sim.RunOptions{}); k == runKey(sim.RunOptions{}) {
				t.Error("run key blind to the trace")
			}
		}
	})
}

// TestDecoderTotal locks the decoder's contract directly: every seed (and a
// byte sweep) decodes to validating inputs.
func TestDecoderTotal(t *testing.T) {
	inputs := SeedCorpus()
	for b := 0; b < 256; b += 17 {
		inputs = append(inputs, []byte{byte(b), byte(b ^ 0x5a), byte(b * 3)})
	}
	for _, data := range inputs {
		tr, cfgs, opts := decodeContest(data)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", data, err)
		}
		if tr.Len() < 64 || tr.Len() > maxFuzzInsts {
			t.Fatalf("%v: trace length %d out of range", data, tr.Len())
		}
		for _, cfg := range cfgs {
			if err := cfg.Validate(); err != nil {
				t.Fatalf("%v: %v", data, err)
			}
		}
		if opts.MaxTimeNs <= 0 {
			t.Fatalf("%v: no time budget", data)
		}
	}
}

// TestSeedRegimes locks that the constructed seeds really reach the regimes
// they claim: the saturation seed saturates a core, the backpressure seed
// fills the store queue, the exception seeds rendezvous.
func TestSeedRegimes(t *testing.T) {
	seeds := SeedCorpus()

	_, _, exc := decodeContest(seeds[1])
	if exc.ExceptionEvery == 0 {
		t.Error("exception seed decodes without exceptions")
	}
	_, _, kill := decodeContest(seeds[2])
	if !kill.ExceptionKillRefork {
		t.Error("kill-refork seed decodes without kill-refork")
	}

	trS, cfgsS, optsS := decodeContest(seeds[3])
	resS, err := contest.Run(cfgsS, trS, optsS)
	if err != nil {
		t.Fatal(err)
	}
	sat := false
	for _, s := range resS.Saturated {
		sat = sat || s
	}
	if !sat {
		t.Error("saturation seed saturates no core")
	}

	trB, cfgsB, optsB := decodeContest(seeds[4])
	if optsB.StoreQueueCap >= 256 {
		t.Fatalf("backpressure seed decodes store queue cap %d", optsB.StoreQueueCap)
	}
	if _, err := contest.Run(cfgsB, trB, optsB); err != nil {
		t.Fatal(err)
	}

	_, cfgs3, _ := decodeContest(seeds[5])
	if len(cfgs3) != 3 {
		t.Errorf("3-way seed decodes %d cores", len(cfgs3))
	}
}
