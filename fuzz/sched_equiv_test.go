package fuzz

// Scheduler equivalence regression: the bitmap ready-selection scheduler
// (the default since the throughput rework) and the pre-rework heap-based
// wake-list scheduler (pipeline.Options.LegacySched) must produce
// bit-identical results on every corpus input — same Stats, same finish
// time, and the same retirement stream, asserted via an order-sensitive
// checksum over (seq, retire time) pairs. The corpus is the checked-in
// seed set plus every minimized input under testdata/fuzz, so a scheduler
// regression caught once by fuzzing stays caught forever.

import (
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"archcontest/internal/contest"
	"archcontest/internal/pipeline"
	"archcontest/internal/sim"
	"archcontest/internal/ticks"
)

// corpusInputs returns the seed corpus plus the checked-in minimized
// corpus files of the named fuzz target (testdata/fuzz/<target>/*).
func corpusInputs(t *testing.T, target string) [][]byte {
	t.Helper()
	inputs := SeedCorpus()
	dir := filepath.Join("testdata", "fuzz", target)
	files, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return inputs
		}
		t.Fatal(err)
	}
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := parseCorpusFile(string(data))
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		inputs = append(inputs, b)
	}
	return inputs
}

// parseCorpusFile extracts the []byte value from a `go test fuzz v1`
// corpus file.
func parseCorpusFile(s string) ([]byte, error) {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "go test fuzz") {
		return nil, strconv.ErrSyntax
	}
	body := strings.TrimSpace(lines[1])
	body = strings.TrimPrefix(body, "[]byte(")
	body = strings.TrimSuffix(body, ")")
	q, err := strconv.Unquote(body)
	if err != nil {
		return nil, err
	}
	return []byte(q), nil
}

// retireChecksum runs one single-core job under the given scheduler and
// returns its stats plus an FNV-1a checksum over the ordered retirement
// stream.
func retireChecksum(t *testing.T, data []byte, legacy bool) (pipeline.Stats, uint64) {
	t.Helper()
	tr, cfg := decodePipeline(data)
	h := fnv.New64a()
	var buf [16]byte
	core, err := pipeline.NewCore(cfg, tr, pipeline.Options{
		LegacySched: legacy,
		OnRetire: func(idx int64, at ticks.Time) {
			for i := 0; i < 8; i++ {
				buf[i] = byte(uint64(idx) >> (8 * i))
				buf[8+i] = byte(uint64(at) >> (8 * i))
			}
			h.Write(buf[:])
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !core.Done(); i++ {
		core.Advance()
		if i > 50_000_000 {
			t.Fatal("run did not terminate")
		}
	}
	return core.Stats(), h.Sum64()
}

// TestSchedEquivPipeline: every pipeline corpus input retires identically
// under the bitmap and legacy schedulers.
func TestSchedEquivPipeline(t *testing.T) {
	for i, data := range corpusInputs(t, "FuzzPipeline") {
		bmStats, bmSum := retireChecksum(t, data, false)
		lgStats, lgSum := retireChecksum(t, data, true)
		if !reflect.DeepEqual(bmStats, lgStats) {
			t.Errorf("input %d: stats diverge\nbitmap: %+v\nlegacy: %+v", i, bmStats, lgStats)
		}
		if bmSum != lgSum {
			t.Errorf("input %d: retirement checksum diverges: bitmap %x, legacy %x", i, bmSum, lgSum)
		}
	}
}

// TestSchedEquivPipelineResults cross-checks through the sim harness too,
// so the RunOptions plumbing of the shim stays covered.
func TestSchedEquivPipelineResults(t *testing.T) {
	for i, data := range corpusInputs(t, "FuzzPipeline") {
		tr, cfg := decodePipeline(data)
		bm, err := sim.Run(cfg, tr, sim.RunOptions{MaxCycles: 50_000_000})
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		lg, err := sim.Run(cfg, tr, sim.RunOptions{MaxCycles: 50_000_000, LegacySched: true})
		if err != nil {
			t.Fatalf("input %d (legacy): %v", i, err)
		}
		if !reflect.DeepEqual(bm, lg) {
			t.Errorf("input %d: results diverge\nbitmap: %+v\nlegacy: %+v", i, bm, lg)
		}
	}
}

// TestSchedEquivContest: every contested corpus input produces an
// identical system result under both schedulers.
func TestSchedEquivContest(t *testing.T) {
	for i, data := range corpusInputs(t, "FuzzContest") {
		tr, cfgs, opts := decodeContest(data)
		bm, err := contest.Run(cfgs, tr, opts)
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		lopts := opts
		lopts.LegacySched = true
		lg, err := contest.Run(cfgs, tr, lopts)
		if err != nil {
			t.Fatalf("input %d (legacy): %v", i, err)
		}
		if !reflect.DeepEqual(bm, lg) {
			t.Errorf("input %d: contest results diverge\nbitmap: %+v\nlegacy: %+v", i, bm, lg)
		}
	}
}
