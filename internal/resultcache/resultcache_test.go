package resultcache

import (
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name  string
	Vals  []int64
	Score float64
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	a := Key("run", payload{Name: "gcc", Vals: []int64{1, 2}}, 7)
	b := Key("run", payload{Name: "gcc", Vals: []int64{1, 2}}, 7)
	if a != b {
		t.Fatal("equal inputs hashed differently")
	}
	if len(a) != 64 {
		t.Fatalf("key length %d", len(a))
	}
	for _, other := range []string{
		Key("contest", payload{Name: "gcc", Vals: []int64{1, 2}}, 7),
		Key("run", payload{Name: "mcf", Vals: []int64{1, 2}}, 7),
		Key("run", payload{Name: "gcc", Vals: []int64{1, 2}}, 8),
		Key("run", payload{Name: "gcc", Vals: []int64{1, 2, 3}}, 7),
	} {
		if other == a {
			t.Fatal("distinct inputs collided")
		}
	}
}

func TestHitMissRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := Key("run", "x")
	var got payload
	if c.Get(key, &got) {
		t.Fatal("hit on empty cache")
	}
	want := payload{Name: "gcc", Vals: []int64{3, 1, 4}, Score: 2.71}
	c.Put(key, want)
	if !c.Get(key, &got) {
		t.Fatal("miss after put")
	}
	if got.Name != want.Name || got.Score != want.Score || len(got.Vals) != 3 || got.Vals[2] != 4 {
		t.Fatalf("round trip mangled: %+v", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDiskPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	c1, _ := Open(dir, Options{})
	key := Key("run", "persist")
	c1.Put(key, payload{Name: "persisted"})

	c2, _ := Open(dir, Options{})
	var got payload
	if !c2.Get(key, &got) || got.Name != "persisted" {
		t.Fatalf("entry did not survive reopen: %+v", got)
	}
	if st := c2.Stats(); st.MemHits != 0 {
		t.Fatalf("fresh open should hit disk, not memory: %+v", st)
	}
}

func TestMemoryLRUEviction(t *testing.T) {
	// Memory-only cache with two slots: the oldest entry must fall out.
	c, _ := Open("", Options{MemEntries: 2})
	keys := []string{Key("k", 0), Key("k", 1), Key("k", 2)}
	for i, k := range keys {
		c.Put(k, payload{Vals: []int64{int64(i)}})
	}
	var got payload
	if c.Get(keys[0], &got) {
		t.Fatal("evicted entry still present")
	}
	if !c.Get(keys[1], &got) || !c.Get(keys[2], &got) {
		t.Fatal("recent entries evicted")
	}
	// Touch keys[1] so keys[2] becomes the LRU victim of the next insert.
	c.Get(keys[1], &got)
	c.Put(Key("k", 3), payload{})
	if c.Get(keys[2], &got) {
		t.Fatal("LRU order ignored: untouched entry survived")
	}
	if !c.Get(keys[1], &got) {
		t.Fatal("recently touched entry evicted")
	}
}

func TestCorruptEntryIsAMissAndIsDeleted(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir, Options{})
	key := Key("run", "doomed")
	c.Put(key, payload{Name: "fine"})

	// Trash the on-disk bytes, then look it up through a fresh cache so the
	// memory tier can't mask the damage.
	p := filepath.Join(dir, key[:2], key+".gob")
	if err := os.WriteFile(p, []byte("not gob at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, _ := Open(dir, Options{})
	var got payload
	if c2.Get(key, &got) {
		t.Fatal("corrupt entry decoded")
	}
	st := c2.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not deleted")
	}
	// The slot is usable again.
	c2.Put(key, payload{Name: "healed"})
	var again payload
	if !c2.Get(key, &again) || again.Name != "healed" {
		t.Fatal("recompute after corruption not stored")
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	c.Put("k", payload{})
	var got payload
	if c.Get("k", &got) {
		t.Fatal("nil cache hit")
	}
	if c.Stats() != (Stats{}) || c.Dir() != "" {
		t.Fatal("nil cache stats/dir not zero")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, _ := Open(t.TempDir(), Options{MemEntries: 8})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := Key("k", i%16)
				c.Put(k, payload{Vals: []int64{int64(i)}})
				var got payload
				c.Get(k, &got)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	close(done)
}
