package resultcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ErrNotFound is the sentinel a Store returns for an absent key. Any other
// error is an infrastructure failure (I/O, network) and is counted against
// the backend, not treated as a plain miss semantics change: the Cache
// degrades either way, but Stats tells them apart.
var ErrNotFound = errors.New("resultcache: not found")

// Store is the pluggable blob tier under the Cache: a flat, content-addressed
// map from hex keys to opaque byte blobs. Implementations must be safe for
// concurrent use and must tolerate Delete of absent keys (the corrupt-entry
// recovery path deletes optimistically). The Cache front tier owns the gob
// encoding, the in-memory LRU, and corruption handling; a backend only needs
// durable (or shared) byte storage. Conformance for new backends is locked by
// resultcache/conformance_test.go — run any future backend (SQL, minio-style
// object store) through the same table.
type Store interface {
	// Get returns the blob stored under key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// Put stores blob under key, overwriting any previous value. Readers
	// racing a Put must observe either the old or the new blob, never a
	// torn mixture.
	Put(key string, blob []byte) error
	// Delete removes key. Deleting an absent key is a no-op, not an error.
	Delete(key string) error
	// Location describes the backend for log lines ("dir", "http://…").
	Location() string
}

// DiskStore is the content-addressed local-disk backend: entries live at
// dir/ab/abcdef….gob, sharded over 256 subdirectories so huge campaigns
// don't degenerate into one enormous directory, and writes go through a
// temp-file-plus-rename so readers never observe a partial entry.
type DiskStore struct {
	dir string
}

// NewDiskStore returns a disk backend rooted at dir, creating it if needed.
func NewDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: disk store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Location reports the store's root directory.
func (s *DiskStore) Location() string { return s.dir }

// path shards entries over 256 subdirectories.
func (s *DiskStore) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, shard, key+".gob")
}

// Get reads the blob for key from disk.
func (s *DiskStore) Get(key string) ([]byte, error) {
	blob, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	return blob, err
}

// Put persists atomically: temp file in the final directory, then rename.
func (s *DiskStore) Put(key string, blob []byte) error {
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// Delete removes the entry; an absent entry is a no-op.
func (s *DiskStore) Delete(key string) error {
	err := os.Remove(s.path(key))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// MemStore is a map-backed Store for tests and ephemeral single-process
// fleets: shared, durable for the process lifetime, and trivially fast.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory backend.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Location identifies the backend in log lines.
func (s *MemStore) Location() string { return "mem" }

// Get returns the stored blob. The blob is copied so a caller can never
// alias the store's internal buffer.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	blob, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(blob))
	copy(out, blob)
	return out, nil
}

// Put stores a private copy of blob under key.
func (s *MemStore) Put(key string, blob []byte) error {
	cp := make([]byte, len(blob))
	copy(cp, blob)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

// Delete removes the entry; absent keys are a no-op.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	return nil
}

// Len reports the number of stored blobs (test helper).
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
