package resultcache

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// MaxBlobBytes bounds one cache entry on the HTTP object-store wire (both
// what BlobHandler accepts and what HTTPStore reads back). Encoded results
// in this repository are kilobytes; the bound only exists so a confused or
// hostile client can't buffer gigabytes into a cache server.
const MaxBlobBytes = 64 << 20

// HTTPStore is the remote object-store backend: a Store client for the
// /v1/blobs API served by BlobHandler (embedded in every serve node and in
// cmd/cachesrv). Many processes sharing one HTTPStore base URL share one
// content-addressed result tier; the Cache's in-memory LRU in front keeps
// repeated lookups off the network.
type HTTPStore struct {
	base   string
	client *http.Client
}

// NewHTTPStore returns a client for the blob store rooted at base
// (e.g. "http://cache-host:8081"). A nil client gets a dedicated one with a
// conservative timeout; pass an explicit client to tune it.
func NewHTTPStore(base string, client *http.Client) *HTTPStore {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPStore{base: strings.TrimRight(base, "/"), client: client}
}

// Location reports the remote base URL.
func (s *HTTPStore) Location() string { return s.base }

func (s *HTTPStore) url(key string) string { return s.base + "/v1/blobs/" + key }

// Get fetches the blob; a 404 is ErrNotFound, anything else non-2xx is an
// infrastructure error.
func (s *HTTPStore) Get(key string) ([]byte, error) {
	resp, err := s.client.Get(s.url(key))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, ErrNotFound
	case resp.StatusCode < 200 || resp.StatusCode > 299:
		return nil, fmt.Errorf("resultcache: blob GET %s: %s", key, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, MaxBlobBytes))
}

// Put uploads the blob under key.
func (s *HTTPStore) Put(key string, blob []byte) error {
	req, err := http.NewRequest(http.MethodPut, s.url(key), bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("resultcache: blob PUT %s: %s", key, resp.Status)
	}
	return nil
}

// Delete removes the blob; absent blobs are a no-op.
func (s *HTTPStore) Delete(key string) error {
	req, err := http.NewRequest(http.MethodDelete, s.url(key), nil)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound && (resp.StatusCode < 200 || resp.StatusCode > 299) {
		return fmt.Errorf("resultcache: blob DELETE %s: %s", key, resp.Status)
	}
	return nil
}

// validBlobKey accepts exactly the shape Key produces (lowercase hex, at
// least 4 nibbles) so a handler never maps a request path onto an
// unexpected file name.
func validBlobKey(key string) bool {
	if len(key) < 4 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// BlobHandler serves any Store over the /v1/blobs HTTP API consumed by
// HTTPStore:
//
//	GET    /v1/blobs/{key}  the blob (404 when absent)
//	PUT    /v1/blobs/{key}  store the body under key
//	DELETE /v1/blobs/{key}  drop the entry (204 even when absent)
//
// Keys must be lowercase hex (the SHA-256 content addresses Key produces);
// anything else is a 400 before it can touch the backend.
func BlobHandler(s Store) http.Handler {
	mux := http.NewServeMux()
	blobErr := func(w http.ResponseWriter, code int, err error) {
		http.Error(w, err.Error(), code)
	}
	key := func(w http.ResponseWriter, r *http.Request) (string, bool) {
		k := r.PathValue("key")
		if !validBlobKey(k) {
			blobErr(w, http.StatusBadRequest, fmt.Errorf("invalid blob key %q", k))
			return "", false
		}
		return k, true
	}
	mux.HandleFunc("GET /v1/blobs/{key}", func(w http.ResponseWriter, r *http.Request) {
		k, ok := key(w, r)
		if !ok {
			return
		}
		blob, err := s.Get(k)
		switch {
		case err == ErrNotFound:
			blobErr(w, http.StatusNotFound, fmt.Errorf("no blob %s", k))
		case err != nil:
			blobErr(w, http.StatusInternalServerError, err)
		default:
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(blob)
		}
	})
	mux.HandleFunc("PUT /v1/blobs/{key}", func(w http.ResponseWriter, r *http.Request) {
		k, ok := key(w, r)
		if !ok {
			return
		}
		body := http.MaxBytesReader(w, r.Body, MaxBlobBytes)
		blob, err := io.ReadAll(body)
		if err != nil {
			blobErr(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		if err := s.Put(k, blob); err != nil {
			blobErr(w, http.StatusInternalServerError, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /v1/blobs/{key}", func(w http.ResponseWriter, r *http.Request) {
		k, ok := key(w, r)
		if !ok {
			return
		}
		if err := s.Delete(k); err != nil {
			blobErr(w, http.StatusInternalServerError, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
