// Package resultcache is the campaign engine's persistent memo table: a
// content-addressed store of simulation results keyed by a hash of
// everything that determines them (engine version, trace fingerprint, core
// configuration, run options). A re-run of cmd/figures after editing one
// core configuration re-simulates only the runs whose keys changed;
// everything else is served from the backend.
//
// The cache has two tiers. An in-memory LRU of recently used encoded
// entries absorbs repeated lookups within a process; a pluggable Store
// backend persists across processes. Two backends ship with the package:
// DiskStore, the content-addressed on-disk tier (dir/ab/abcdef….gob,
// written atomically via rename), and HTTPStore, a remote object-store
// client for the /v1/blobs API served by BlobHandler — the shared result
// tier of a serve fleet. Both tiers store the gob encoding of the value,
// so a hit always decodes a fresh copy — cached results can never alias a
// caller's mutation.
//
// Corruption is never fatal: an entry that fails to read or decode is
// deleted from every tier and reported as a miss, so the worst case of a
// damaged cache backend is recomputation. A nil *Cache is a valid,
// always-miss cache, which is how the -cache.off flag is implemented.
package resultcache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// DefaultDir is the conventional on-disk location used by the cmd/ drivers.
const DefaultDir = ".archcontest-cache"

// Options tunes a cache.
type Options struct {
	// MemEntries bounds the in-memory LRU tier (default 1024 entries).
	MemEntries int
}

// Stats counts cache traffic since Open.
type Stats struct {
	// Hits counts lookups served from either tier; MemHits is the subset
	// served without touching the backend.
	Hits, MemHits int64
	// Misses counts lookups that found no usable entry.
	Misses int64
	// Stores counts successful Put calls.
	Stores int64
	// Corrupt counts entries that existed in the backend but failed to
	// decode (each is deleted and counted as a miss too).
	Corrupt int64
	// Errors counts backend write failures (the cache keeps working; the
	// entry is simply not persisted).
	Errors int64
}

// Cache is a two-tier content-addressed result store: an in-memory LRU in
// front of a pluggable Store backend. It is safe for concurrent use. The
// nil *Cache is a valid disabled cache: every Get misses and every Put is
// a no-op.
type Cache struct {
	store Store // nil = memory-only
	mu    sync.Mutex
	lru   *list.List               // of *memEntry, front = most recent
	byID  map[string]*list.Element // key -> element
	max   int

	hits, memHits, misses, stores, corrupt, errors atomic.Int64
}

type memEntry struct {
	key  string
	blob []byte
}

// Open returns a cache over the conventional disk backend rooted at dir,
// creating it if needed. An empty dir yields a memory-only cache (useful
// for tests and one-shot processes).
func Open(dir string, opts Options) (*Cache, error) {
	if dir == "" {
		return New(nil, opts), nil
	}
	store, err := NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	return New(store, opts), nil
}

// New returns a cache over an explicit backend. A nil store yields a
// memory-only cache: the LRU tier is the only tier.
func New(store Store, opts Options) *Cache {
	if opts.MemEntries <= 0 {
		opts.MemEntries = 1024
	}
	return &Cache{
		store: store,
		lru:   list.New(),
		byID:  make(map[string]*list.Element),
		max:   opts.MemEntries,
	}
}

// Key derives the content address for an artifact: a SHA-256 over the kind
// tag and the canonical JSON of every part, in order. Parts must be
// JSON-marshalable values (the config/option structs of this repository
// all are); an unmarshalable part is a programming error and panics.
func Key(kind string, parts ...any) string {
	h := sha256.New()
	io.WriteString(h, kind)
	h.Write([]byte{0})
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			panic(fmt.Sprintf("resultcache: unhashable key part %T: %v", p, err))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Get looks the key up in both tiers and gob-decodes the entry into out
// (which must be a pointer to the type that was Put). It reports whether
// out was populated. A present-but-undecodable entry is dropped and
// reported as a miss.
func (c *Cache) Get(key string, out any) bool {
	if c == nil {
		return false
	}
	if blob, ok := c.memGet(key); ok {
		if c.decode(key, blob, out) {
			c.hits.Add(1)
			c.memHits.Add(1)
			return true
		}
		c.misses.Add(1)
		return false
	}
	if c.store == nil {
		c.misses.Add(1)
		return false
	}
	blob, err := c.store.Get(key)
	if err != nil {
		if err != ErrNotFound {
			c.errors.Add(1)
		}
		c.misses.Add(1)
		return false
	}
	if !c.decode(key, blob, out) {
		c.misses.Add(1)
		return false
	}
	c.memPut(key, blob)
	c.hits.Add(1)
	return true
}

// Put stores the gob encoding of val under key in both tiers. Failures
// degrade the cache (the entry may not persist) but never the caller.
func (c *Cache) Put(key string, val any) {
	if c == nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(val); err != nil {
		panic(fmt.Sprintf("resultcache: unencodable value %T: %v", val, err))
	}
	blob := buf.Bytes()
	c.memPut(key, blob)
	if c.store != nil {
		if err := c.store.Put(key, blob); err != nil {
			c.errors.Add(1)
			return
		}
	}
	c.stores.Add(1)
}

// Stats reports the traffic counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:    c.hits.Load(),
		MemHits: c.memHits.Load(),
		Misses:  c.misses.Load(),
		Stores:  c.stores.Load(),
		Corrupt: c.corrupt.Load(),
		Errors:  c.errors.Load(),
	}
}

// Store reports the backend ("" tier excluded; nil for memory-only caches).
func (c *Cache) Store() Store {
	if c == nil {
		return nil
	}
	return c.store
}

// Dir reports the backend location ("" for memory-only caches). The name
// is historical: for disk backends it is the on-disk root, for remote
// backends the base URL.
func (c *Cache) Dir() string {
	if c == nil || c.store == nil {
		return ""
	}
	return c.store.Location()
}

// decode unpacks a blob, dropping the entry from both tiers on corruption.
func (c *Cache) decode(key string, blob []byte, out any) bool {
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(out); err == nil {
		return true
	}
	c.corrupt.Add(1)
	c.memDrop(key)
	if c.store != nil {
		c.store.Delete(key)
	}
	return false
}

func (c *Cache) memGet(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*memEntry).blob, true
}

func (c *Cache) memPut(key string, blob []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[key]; ok {
		el.Value.(*memEntry).blob = blob
		c.lru.MoveToFront(el)
		return
	}
	c.byID[key] = c.lru.PushFront(&memEntry{key: key, blob: blob})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byID, oldest.Value.(*memEntry).key)
	}
}

func (c *Cache) memDrop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[key]; ok {
		c.lru.Remove(el)
		delete(c.byID, key)
	}
}
