package resultcache

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// backends enumerates every Store implementation under one conformance
// table. A future backend (SQL, minio-style object store) plugs in by
// adding one row: the suite is the contract.
func backends(t *testing.T) []struct {
	name string
	open func(t *testing.T) Store
} {
	t.Helper()
	return []struct {
		name string
		open func(t *testing.T) Store
	}{
		{"disk", func(t *testing.T) Store {
			s, err := NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"mem", func(t *testing.T) Store {
			return NewMemStore()
		}},
		{"http-disk", func(t *testing.T) Store {
			disk, err := NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(BlobHandler(disk))
			t.Cleanup(srv.Close)
			return NewHTTPStore(srv.URL, srv.Client())
		}},
		{"http-mem", func(t *testing.T) Store {
			srv := httptest.NewServer(BlobHandler(NewMemStore()))
			t.Cleanup(srv.Close)
			return NewHTTPStore(srv.URL, srv.Client())
		}},
	}
}

// TestStoreConformance runs the blob-level contract against every backend:
// round trips, overwrite, not-found, and delete-absent semantics.
func TestStoreConformance(t *testing.T) {
	for _, b := range backends(t) {
		t.Run(b.name, func(t *testing.T) {
			s := b.open(t)
			k1 := Key("conf", "one")
			k2 := Key("conf", "two")

			if _, err := s.Get(k1); err != ErrNotFound {
				t.Fatalf("Get of absent key: err %v, want ErrNotFound", err)
			}
			if err := s.Delete(k1); err != nil {
				t.Fatalf("Delete of absent key: %v", err)
			}

			blob := []byte("payload-one")
			if err := s.Put(k1, blob); err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, err := s.Get(k1)
			if err != nil || !bytes.Equal(got, blob) {
				t.Fatalf("Get after Put: %q, %v; want %q", got, err, blob)
			}
			if _, err := s.Get(k2); err != ErrNotFound {
				t.Fatalf("Get of other key: err %v, want ErrNotFound", err)
			}

			// Overwrite replaces, never appends or tears.
			blob2 := []byte("payload-one-v2-longer")
			if err := s.Put(k1, blob2); err != nil {
				t.Fatalf("overwrite Put: %v", err)
			}
			if got, err := s.Get(k1); err != nil || !bytes.Equal(got, blob2) {
				t.Fatalf("Get after overwrite: %q, %v; want %q", got, err, blob2)
			}

			// A returned blob must be safe to mutate without corrupting
			// later reads (the Cache decodes blobs it may share).
			got, _ = s.Get(k1)
			for i := range got {
				got[i] = 0
			}
			if again, err := s.Get(k1); err != nil || !bytes.Equal(again, blob2) {
				t.Fatalf("Get after caller mutation: %q, %v; want %q", again, err, blob2)
			}

			if err := s.Delete(k1); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := s.Get(k1); err != ErrNotFound {
				t.Fatalf("Get after Delete: err %v, want ErrNotFound", err)
			}
		})
	}
}

type confValue struct {
	Name string
	Vals []int
}

// TestCacheConformance runs the Cache (gob tier + LRU + corruption
// recovery) over every backend: the behaviours any fleet node relies on
// regardless of where its blobs live.
func TestCacheConformance(t *testing.T) {
	for _, b := range backends(t) {
		t.Run(b.name, func(t *testing.T) {
			store := b.open(t)

			t.Run("roundtrip", func(t *testing.T) {
				c := New(store, Options{})
				in := confValue{Name: "rt", Vals: []int{1, 2, 3}}
				key := Key("conform-rt", in)
				var out confValue
				if c.Get(key, &out) {
					t.Fatal("hit before Put")
				}
				c.Put(key, in)
				if !c.Get(key, &out) || out.Name != in.Name || len(out.Vals) != 3 {
					t.Fatalf("round trip: got %+v ok=%v", out, true)
				}
				// A second Cache over the same backend shares the entry:
				// the backend, not the LRU, is the persistence tier.
				c2 := New(store, Options{})
				var out2 confValue
				if !c2.Get(key, &out2) || out2.Name != in.Name {
					t.Fatalf("fresh cache over same store missed: %+v", out2)
				}
				// Decoded hits must not alias each other.
				out2.Vals[0] = 99
				var out3 confValue
				if !c2.Get(key, &out3) || out3.Vals[0] != 1 {
					t.Fatalf("cached value aliased a caller's mutation: %+v", out3)
				}
			})

			t.Run("lru-eviction", func(t *testing.T) {
				c := New(store, Options{MemEntries: 2})
				keys := make([]string, 3)
				for i := range keys {
					keys[i] = Key("conform-lru", b.name, i)
					c.Put(keys[i], confValue{Name: fmt.Sprint(i)})
				}
				// keys[0] fell off the 2-entry LRU; it must still be
				// served from the backend (a hit, not a mem hit).
				pre := c.Stats()
				var out confValue
				if !c.Get(keys[0], &out) || out.Name != "0" {
					t.Fatalf("evicted entry lost: %+v", out)
				}
				post := c.Stats()
				if post.Hits != pre.Hits+1 || post.MemHits != pre.MemHits {
					t.Fatalf("eviction refill came from the wrong tier: %+v -> %+v", pre, post)
				}
				// And the refill re-promoted it into the LRU.
				if !c.Get(keys[0], &out) || c.Stats().MemHits != pre.MemHits+1 {
					t.Fatalf("refilled entry not promoted to the mem tier: %+v", c.Stats())
				}
			})

			t.Run("corrupt-deleted", func(t *testing.T) {
				c := New(store, Options{})
				key := Key("conform-corrupt", b.name)
				if err := store.Put(key, []byte("not gob at all")); err != nil {
					t.Fatal(err)
				}
				var out confValue
				if c.Get(key, &out) {
					t.Fatal("corrupt blob decoded")
				}
				if st := c.Stats(); st.Corrupt != 1 {
					t.Fatalf("corrupt count %d, want 1", st.Corrupt)
				}
				// The corrupt entry was deleted from the backend, so the
				// next writer repairs the key for every tier.
				if _, err := store.Get(key); err != ErrNotFound {
					t.Fatalf("corrupt blob still in backend: err %v", err)
				}
				c.Put(key, confValue{Name: "repaired"})
				if !c.Get(key, &out) || out.Name != "repaired" {
					t.Fatalf("repair after corruption failed: %+v", out)
				}
			})

			t.Run("concurrent", func(t *testing.T) {
				// Singleflight-style access: many goroutines race Get-then-Put
				// on a small key set; every eventual Get must decode a
				// complete value (torn blobs would fail the decode).
				c := New(store, Options{MemEntries: 4})
				const workers, rounds, keys = 8, 20, 3
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for r := 0; r < rounds; r++ {
							key := Key("conform-conc", b.name, r%keys)
							var out confValue
							if !c.Get(key, &out) {
								c.Put(key, confValue{Name: "conc", Vals: []int{r % keys}})
							} else if out.Name != "conc" || len(out.Vals) != 1 || out.Vals[0] != r%keys {
								t.Errorf("worker %d round %d: torn value %+v", w, r, out)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			})
		})
	}
}

// TestBlobHandlerRejectsBadKeys: the HTTP blob API must refuse keys that
// are not content addresses before they reach the backend (path traversal,
// uppercase, short junk).
func TestBlobHandlerRejectsBadKeys(t *testing.T) {
	srv := httptest.NewServer(BlobHandler(NewMemStore()))
	defer srv.Close()
	for _, bad := range []string{"ab", "..%2F..%2Fetc", "ABCDEF012345", "zzzz9999"} {
		resp, err := http.Get(srv.URL + "/v1/blobs/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("key %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
