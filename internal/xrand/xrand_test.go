package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 draws identical across different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	child := r.Split()
	// Parent and child streams should not be identical.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 draws identical between parent and split child", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a, b := New(7).Split(), New(7).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("split streams from identical parents diverge")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d count %d deviates from %g by more than 5%%", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(5)
	for _, mean := range []float64{1, 2, 5, 50, 300} {
		sum := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			v := r.Geometric(mean)
			if v < 1 {
				t.Fatalf("Geometric(%g) = %d below 1", mean, v)
			}
			sum += v
		}
		got := float64(sum) / draws
		if math.Abs(got-mean) > 0.06*mean+0.05 {
			t.Errorf("Geometric(%g) sample mean %g", mean, got)
		}
	}
}

func TestGeometricPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Geometric(0.5)
}

func TestCategoricalWeights(t *testing.T) {
	c := NewCategorical([]float64{1, 0, 3})
	r := New(13)
	counts := make([]int, 3)
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[c.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio %g, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    nil,
		"zero-sum": {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewCategorical(weights)
		}()
	}
}

// Property: Intn stays in range for arbitrary seeds and bounds.
func TestIntnProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Categorical always returns an in-range index.
func TestCategoricalProperty(t *testing.T) {
	f := func(seed uint64, w1, w2, w3 uint8) bool {
		weights := []float64{float64(w1) + 1, float64(w2), float64(w3)}
		c := NewCategorical(weights)
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := c.Sample(r)
			if v < 0 || v >= 3 {
				return false
			}
			if weights[v] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
