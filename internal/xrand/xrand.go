// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator and the sampling distributions the synthetic workload
// generator needs.
//
// Reproducibility across runs and platforms is a hard requirement: every
// experiment in this repository must regenerate the exact same dynamic
// instruction trace from a benchmark name and seed. The generator is
// SplitMix64 (Steele et al.), which has a one-word state, passes BigCrush,
// and splits cleanly into independent streams.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator. The zero value is a
// valid generator seeded with zero, but prefer New so related streams
// decorrelate.
type RNG struct {
	state uint64
}

// New returns a generator seeded with the given seed.
func New(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm the state so small seeds (0, 1, 2...) produce unrelated streams.
	r.Uint64()
	r.Uint64()
	return r
}

// Split returns a new generator whose stream is independent of the
// receiver's future output. It advances the receiver by one draw.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from the geometric distribution with the given
// mean (support {1, 2, ...}). The mean must be >= 1.
func (r *RNG) Geometric(mean float64) int {
	if mean < 1 {
		panic("xrand: Geometric mean below 1")
	}
	if mean == 1 {
		return 1
	}
	p := 1 / mean
	u := r.Float64()
	// Inverse CDF; clamp to avoid log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	n := 1 + int(math.Log(1-u)/math.Log(1-p))
	if n < 1 {
		n = 1
	}
	return n
}

// Categorical samples an index from the given non-negative weights.
// It panics if the weights are empty or sum to zero.
type Categorical struct {
	cum []float64
}

// NewCategorical builds a categorical sampler over the weights.
func NewCategorical(weights []float64) *Categorical {
	if len(weights) == 0 {
		panic("xrand: empty categorical")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: negative or NaN categorical weight")
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("xrand: categorical weights sum to zero")
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Categorical{cum: cum}
}

// Sample draws an index with probability proportional to its weight.
func (c *Categorical) Sample(r *RNG) int {
	u := r.Float64()
	// Linear scan: weight vectors here are tiny (phase archetypes).
	for i, cv := range c.cum {
		if u < cv {
			return i
		}
	}
	return len(c.cum) - 1
}

// N reports the number of categories.
func (c *Categorical) N() int { return len(c.cum) }
