package invariant

// SystemObserver asserts the paper's contest invariants over a running
// contesting system, on top of a full per-core CoreChecker for every
// contestant:
//
//   - bounded lagging distance: for every non-saturated follower and every
//     sender, the sender's broadcast counter never runs more than MaxLag
//     results ahead of the follower's pop counter, and the result FIFO
//     retention never exceeds its capacity (paper §4.1.4);
//   - feed bookkeeping: each sender ring's broadcast counter equals that
//     sender's retired count, and the pop counter never passes the
//     receiver's fetch counter;
//   - GRB-consumed results match the oracle: a core may complete a fetched
//     instruction from the feed only if some other core retired exactly
//     that instruction at least one propagation latency earlier — and the
//     per-core CoreChecker separately guarantees both cores' retirement
//     streams replay the oracle's reference execution, so the consumed
//     result is the ground-truth architectural result;
//   - leader accounting: the system's leader index and lead-change count
//     match an independently-maintained mirror that switches leaders only
//     when a core's retired count strictly exceeds the current leader's
//     (a core "actually catches up");
//   - synchronizing store queue: occupancy stays within capacity, and the
//     merged store stream leaving the queue is exactly a prefix of the
//     oracle's program-order store stream — same indices, same addresses,
//     same data, each store merged exactly once (SRT-style redundant
//     store merging, paper §4.1.3);
//   - exception rendezvous: no core retires an excepting instruction
//     before every active core has reached it (paper §4.3).

import (
	"fmt"

	"archcontest/internal/contest"
	"archcontest/internal/oracle"
	"archcontest/internal/pipeline"
	"archcontest/internal/ticks"
	"archcontest/internal/trace"
)

// SystemObserver implements contest.Observer. Build a fresh one per run
// and pass it in contest.Options.Observer.
type SystemObserver struct {
	opts      Options
	onViolate func(error)
	tr        *trace.Trace
	exec      *oracle.Execution

	sys     *contest.System
	cores   []*contestCoreChecker
	latency ticks.Duration
	maxLag  int64
	sqCap   int
	excEvry int64

	// retireAt[core][seq] is the absolute retirement time of seq on core,
	// or -1 until it retires; retired[core] mirrors each core's retired
	// count from observed retirements only.
	retireAt [][]ticks.Time
	retired  []int64

	// the independent leader mirror
	leader      int
	leadChanges int64

	merged     int64 // merged stores checked against the oracle stream
	violations int
}

// NewSystemObserver builds an observer for one contested run of tr.
func NewSystemObserver(tr *trace.Trace, opts Options) *SystemObserver {
	return &SystemObserver{
		opts:      opts,
		onViolate: opts.report(),
		tr:        tr,
		exec:      oracle.Run(tr),
	}
}

// Violations reports the total violations observed, including those of the
// per-core checkers.
func (o *SystemObserver) Violations() int {
	n := o.violations
	for _, cc := range o.cores {
		if cc != nil {
			n += cc.CoreChecker.Violations()
		}
	}
	return n
}

// CoreCheckerFor returns the per-core checker of core i (nil before the
// system is built).
func (o *SystemObserver) CoreCheckerFor(i int) *CoreChecker {
	if i >= len(o.cores) || o.cores[i] == nil {
		return nil
	}
	return o.cores[i].CoreChecker
}

// Oracle returns the canonical in-order execution of the trace.
func (o *SystemObserver) Oracle() *oracle.Execution { return o.exec }

// MergedStores reports how many merged stores have drained from the
// synchronizing store queue (each checked against the oracle stream).
func (o *SystemObserver) MergedStores() int64 { return o.merged }

func (o *SystemObserver) violate(format string, args ...any) {
	o.violations++
	o.onViolate(fmt.Errorf("invariant: contest: "+format, args...))
}

// CoreChecker implements contest.Observer.
func (o *SystemObserver) CoreChecker(core int) pipeline.Checker {
	for len(o.cores) <= core {
		o.cores = append(o.cores, nil)
	}
	cc := &contestCoreChecker{
		CoreChecker: NewCoreChecker(o.tr, o.opts),
		obs:         o,
		core:        core,
	}
	o.cores[core] = cc
	return cc
}

// Attach implements contest.Observer.
func (o *SystemObserver) Attach(sys *contest.System) {
	o.sys = sys
	copts := sys.Options()
	o.latency = ticks.FromNanoseconds(copts.LatencyNs)
	o.maxLag = int64(copts.MaxLag)
	o.sqCap = copts.StoreQueueCap
	o.excEvry = copts.ExceptionEvery
	n := sys.NumCores()
	o.retired = make([]int64, n)
	o.retireAt = make([][]ticks.Time, n)
	for i := range o.retireAt {
		at := make([]ticks.Time, o.tr.Len())
		for j := range at {
			at[j] = -1
		}
		o.retireAt[i] = at
	}

	// The merged store stream must be exactly a prefix of the oracle's
	// program-order store stream.
	stores := o.exec.Stores()
	prev := sys.Queue().Merged
	sys.Queue().Merged = func(idx int64, addr uint64) {
		if prev != nil {
			prev(idx, addr)
		}
		if o.merged >= int64(len(stores)) {
			o.violate("store %d merged but the oracle has only %d stores", idx, len(stores))
			return
		}
		want := stores[o.merged]
		o.merged++
		if idx != want.Seq || addr != want.Addr {
			o.violate("merged store #%d is (%d,%#x), oracle order wants (%d,%#x)",
				o.merged-1, idx, addr, want.Seq, want.Addr)
		}
	}
}

func (o *SystemObserver) noteRetire(core int, seq int64, at ticks.Time) {
	if o.retireAt == nil {
		return // observer not attached (never happens in a real run)
	}
	if o.retireAt[core][seq] >= 0 {
		o.violate("core %d retired %d twice", core, seq)
	}
	o.retireAt[core][seq] = at
	o.retired[core] = seq + 1

	// Exception rendezvous: an excepting instruction retires only after
	// every active core has reached it.
	if o.excEvry > 0 && (seq+1)%o.excEvry == 0 {
		for j := range o.retired {
			if j == core || o.sys.IsSaturated(j) {
				continue
			}
			if o.retired[j] < seq {
				o.violate("core %d retired excepting instruction %d while core %d is only at %d",
					core, seq, j, o.retired[j])
			}
		}
	}
}

func (o *SystemObserver) noteInject(c *pipeline.Core, core int, seq int64, at ticks.Time) {
	if o.retireAt == nil {
		return
	}
	if fetch := c.FetchIndex(); seq != fetch {
		o.violate("core %d injected %d but its fetch counter is %d", core, seq, fetch)
	}
	// The consumed result must have been broadcast: some other core
	// retired exactly this instruction at least one propagation latency
	// before the consuming core's current cycle.
	for j := range o.retireAt {
		if j == core {
			continue
		}
		if rt := o.retireAt[j][seq]; rt >= 0 && rt.Add(o.latency) <= at {
			return
		}
	}
	o.violate("core %d consumed result %d at %v before any other core's broadcast could arrive", core, seq, at)
}

// AfterStep implements contest.Observer.
func (o *SystemObserver) AfterStep(sys *contest.System, core int) {
	// Leader accounting: mirror the paper's rule — the lead changes only
	// when the stepped core's retired count strictly exceeds the current
	// leader's — from independently-observed retirement counts.
	if core != o.leader && o.retired[core] > o.retired[o.leader] {
		o.leader = core
		o.leadChanges++
	}
	if sys.Leader() != o.leader {
		o.violate("system leader %d, mirror says %d", sys.Leader(), o.leader)
	}
	if sys.LeadChanges() != o.leadChanges {
		o.violate("system counted %d lead changes, mirror %d", sys.LeadChanges(), o.leadChanges)
	}

	// Store-queue occupancy.
	if p := sys.Queue().Pending(); p > o.sqCap {
		o.violate("store queue holds %d entries, capacity %d", p, o.sqCap)
	}

	// Lagging distance and feed bookkeeping for every non-saturated
	// receiver.
	n := sys.NumCores()
	for recv := 0; recv < n; recv++ {
		if sys.IsSaturated(recv) {
			continue
		}
		fetch := sys.Core(recv).FetchIndex()
		for snd := 0; snd < n; snd++ {
			lo, hi, next, ok := sys.FeedState(recv, snd)
			if !ok {
				continue
			}
			if next != o.retired[snd] {
				o.violate("receiver %d has seen %d broadcasts from %d, which retired %d", recv, next, snd, o.retired[snd])
			}
			if hi-lo > o.maxLag {
				o.violate("receiver %d retains %d results from %d, FIFO capacity %d", recv, hi-lo, snd, o.maxLag)
			}
			if lag := next - lo; lag > o.maxLag {
				o.violate("receiver %d lags %d results behind %d, bound %d", recv, lag, snd, o.maxLag)
			}
			if lo > fetch {
				o.violate("receiver %d consumed through %d past its fetch counter %d", recv, lo, fetch)
			}
		}
	}
}

// Finish runs the end-of-run checks against the final result: the winner
// retired the whole trace, every core's retirement stream is an in-order
// prefix of it, and the merged store stream is a prefix of the oracle's.
func (o *SystemObserver) Finish(res contest.Result) {
	if o.retired[res.Winner] != int64(o.tr.Len()) {
		o.violate("winner %d retired %d of %d instructions", res.Winner, o.retired[res.Winner], o.tr.Len())
	}
	if o.merged > int64(len(o.exec.Stores())) {
		o.violate("merged %d stores, oracle has %d", o.merged, len(o.exec.Stores()))
	}
	for i, cc := range o.cores {
		if cc == nil {
			continue
		}
		if got, want := cc.CoreChecker.nextRetire, o.retired[i]; got != want {
			o.violate("core %d checker saw %d retirements, observer %d", i, got, want)
		}
	}
}

// contestCoreChecker is the per-core checker of a contested run: the full
// single-core CoreChecker, plus the system-level retirement/injection
// bookkeeping.
type contestCoreChecker struct {
	*CoreChecker
	obs  *SystemObserver
	core int
}

func (cc *contestCoreChecker) OnRetire(c *pipeline.Core, seq int64, at ticks.Time) {
	cc.CoreChecker.OnRetire(c, seq, at)
	cc.obs.noteRetire(cc.core, seq, at)
}

func (cc *contestCoreChecker) OnInject(c *pipeline.Core, seq int64, at ticks.Time) {
	cc.obs.noteInject(c, cc.core, seq, at)
}
