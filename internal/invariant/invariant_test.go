package invariant

import (
	"strings"
	"testing"

	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/sim"
	"archcontest/internal/workload"
)

func collector() (*[]error, Options) {
	var errs []error
	return &errs, Options{OnViolation: func(err error) { errs = append(errs, err) }}
}

// The retirement-stream checks need no core: OnRetire only reads the
// sequence number and time.

func TestOutOfOrderRetirementReported(t *testing.T) {
	tr := workload.MustGenerate("gcc", 16)
	errs, opts := collector()
	k := NewCoreChecker(tr, opts)
	k.OnRetire(nil, 0, 10)
	k.OnRetire(nil, 2, 20) // skips 1
	if len(*errs) == 0 || !strings.Contains((*errs)[0].Error(), "out-of-order") {
		t.Fatalf("skipped retirement not reported: %v", *errs)
	}
}

func TestRetirementTimeRegressionReported(t *testing.T) {
	tr := workload.MustGenerate("gcc", 16)
	errs, opts := collector()
	k := NewCoreChecker(tr, opts)
	k.OnRetire(nil, 0, 100)
	k.OnRetire(nil, 1, 50)
	if len(*errs) != 1 || !strings.Contains((*errs)[0].Error(), "before previous") {
		t.Fatalf("time regression not reported: %v", *errs)
	}
}

func TestDuplicateRetirementReported(t *testing.T) {
	tr := workload.MustGenerate("gcc", 16)
	errs, opts := collector()
	k := NewCoreChecker(tr, opts)
	k.OnRetire(nil, 0, 10)
	k.OnRetire(nil, 0, 10)
	if len(*errs) == 0 {
		t.Fatal("duplicate retirement not reported")
	}
}

func TestStandaloneInjectionReported(t *testing.T) {
	tr := workload.MustGenerate("gcc", 16)
	errs, opts := collector()
	k := NewCoreChecker(tr, opts)
	k.OnInject(nil, 3, 10)
	if len(*errs) != 1 || !strings.Contains((*errs)[0].Error(), "stand-alone") {
		t.Fatalf("stand-alone injection not reported: %v", *errs)
	}
}

func TestFinishShortRunReported(t *testing.T) {
	tr := workload.MustGenerate("gcc", 16)
	errs, opts := collector()
	k := NewCoreChecker(tr, opts)
	k.OnRetire(nil, 0, 10)
	k.Finish(16)
	if len(*errs) != 1 || !strings.Contains((*errs)[0].Error(), "finished with 1 retirements") {
		t.Fatalf("short run not reported: %v", *errs)
	}
}

func TestDefaultOnViolationPanics(t *testing.T) {
	tr := workload.MustGenerate("gcc", 16)
	k := NewCoreChecker(tr, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("default OnViolation did not panic")
		}
	}()
	k.OnRetire(nil, 5, 0)
}

// Whole-run integration: a clean run stays clean, records the identity
// retirement stream, and drives the oracle to completion.

func TestCleanRunNoViolations(t *testing.T) {
	tr := workload.MustGenerate("twolf", 4000)
	errs, opts := collector()
	opts.RecordRetirements = true
	k := NewCoreChecker(tr, opts)
	cfg := config.MustPaletteCore("twolf")
	if _, err := sim.Run(cfg, tr, sim.RunOptions{Checker: k}); err != nil {
		t.Fatal(err)
	}
	k.Finish(int64(tr.Len()))
	if len(*errs) != 0 {
		t.Fatalf("clean run reported %d violations, first: %v", len(*errs), (*errs)[0])
	}
	got := k.Retirements()
	if len(got) != tr.Len() {
		t.Fatalf("recorded %d retirements, want %d", len(got), tr.Len())
	}
	for i, s := range got {
		if s != int64(i) {
			t.Fatalf("retirement %d is %d", i, s)
		}
	}
	if !k.Oracle().Done() {
		t.Fatal("oracle not driven to completion")
	}
}

func TestCleanRunSingleStepEquivalent(t *testing.T) {
	// The checker sees identical state on both scheduler paths.
	tr := workload.MustGenerate("mcf", 4000)
	cfg := config.MustPaletteCore("mcf")
	for _, single := range []bool{false, true} {
		errs, opts := collector()
		k := NewCoreChecker(tr, opts)
		if _, err := sim.Run(cfg, tr, sim.RunOptions{Checker: k, SingleStep: single}); err != nil {
			t.Fatal(err)
		}
		k.Finish(int64(tr.Len()))
		if len(*errs) != 0 {
			t.Fatalf("singleStep=%v: %d violations, first: %v", single, len(*errs), (*errs)[0])
		}
	}
}

func TestSystemObserverCleanContest(t *testing.T) {
	tr := workload.MustGenerate("gcc", 6000)
	cfgs := []config.CoreConfig{
		config.MustPaletteCore("gcc"),
		config.MustPaletteCore("mcf"),
	}
	errs, opts := collector()
	obs := NewSystemObserver(tr, opts)
	res, err := contest.Run(cfgs, tr, contest.Options{Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	obs.Finish(res)
	if len(*errs) != 0 {
		t.Fatalf("clean contest reported %d violations, first: %v", len(*errs), (*errs)[0])
	}
	if obs.Violations() != 0 {
		t.Fatalf("Violations() = %d", obs.Violations())
	}
	if obs.MergedStores() == 0 {
		t.Fatal("no merged stores observed — the store-queue hook is dead")
	}
	if obs.CoreCheckerFor(0) == nil || obs.CoreCheckerFor(1) == nil {
		t.Fatal("per-core checkers not attached")
	}
}

func TestSystemObserverExceptionAndSaturation(t *testing.T) {
	// Exception rendezvous and a tiny lag bound (which saturates the slow
	// core) must both verify cleanly: the observer tracks saturation and
	// stops holding saturated cores to the contest protocol.
	tr := workload.MustGenerate("gzip", 6000)
	cfgs := []config.CoreConfig{
		config.MustPaletteCore("gzip"),
		config.MustPaletteCore("perl"),
	}
	for _, co := range []contest.Options{
		{ExceptionEvery: 512},
		{MaxLag: 64},
		{StoreQueueCap: 8},
	} {
		errs, opts := collector()
		obs := NewSystemObserver(tr, opts)
		co.Observer = obs
		res, err := contest.Run(cfgs, tr, co)
		if err != nil {
			t.Fatal(err)
		}
		obs.Finish(res)
		if len(*errs) != 0 {
			t.Fatalf("%+v: %d violations, first: %v", co, len(*errs), (*errs)[0])
		}
	}
}

func TestSystemObserverFinishWrongWinnerReported(t *testing.T) {
	tr := workload.MustGenerate("gcc", 2000)
	cfgs := []config.CoreConfig{
		config.MustPaletteCore("gcc"),
		config.MustPaletteCore("mcf"),
	}
	errs, opts := collector()
	obs := NewSystemObserver(tr, opts)
	res, err := contest.Run(cfgs, tr, contest.Options{Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	res.Winner = 1 - res.Winner // lie about the winner
	obs.Finish(res)
	if len(*errs) == 0 {
		t.Fatal("wrong winner not reported")
	}
}

func TestScanEveryStride(t *testing.T) {
	// A strided scan must still catch nothing on a clean run and must not
	// change the run's result.
	tr := workload.MustGenerate("bzip", 4000)
	cfg := config.MustPaletteCore("bzip")
	plain, err := sim.Run(cfg, tr, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, stride := range []int64{1, 7, 1024} {
		errs, opts := collector()
		opts.ScanEvery = stride
		k := NewCoreChecker(tr, opts)
		checked, err := sim.Run(cfg, tr, sim.RunOptions{Checker: k})
		if err != nil {
			t.Fatal(err)
		}
		if len(*errs) != 0 {
			t.Fatalf("stride %d: %v", stride, (*errs)[0])
		}
		if checked.Time != plain.Time || checked.Stats != plain.Stats {
			t.Fatalf("stride %d perturbed the run", stride)
		}
	}
}
