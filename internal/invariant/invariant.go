// Package invariant is the cycle-level checking layer of the verification
// subsystem: an opt-in observer that rides along a simulation and asserts,
// every executed cycle, the structural invariants the engine's correctness
// arguments rest on.
//
// The checker attaches through pipeline.Options.Checker (single cores) and
// contest.Options.Observer (contested systems); both hooks are nil-guarded
// single branches, so steady-state simulation with checking disabled stays
// allocation-free and effectively unchanged. With checking enabled, every
// violation is reported through Options.OnViolation (default: panic), which
// makes the package directly usable from tests, from the fuzz harness, and
// from the archcontest.RunVerified / ContestRunVerified facade.
//
// Single-core invariants (CoreChecker):
//
//   - occupancy bounds: issue-queue, LSQ and ROB occupancy within the
//     configured capacities, window within the structural ring;
//   - in-order retirement: the retire stream is exactly 0,1,2,...,N-1,
//     each index once, at non-decreasing times, replayed instruction by
//     instruction against the oracle's in-order reference execution;
//   - ring integrity: no in-flight window slot aliased by a younger fetch;
//   - counter honesty: the engine's iqCount/lsq counters match a naive
//     recount of the window, Stats.Retired matches the window head;
//   - wake-list completeness: every dispatched, unissued instruction is
//     reachable — in the ready queue, scheduled in the wake heap, or
//     parked on the dependent list of an incomplete producer — so no
//     instruction can be lost by the event-driven issue logic (the
//     lost-wakeup deadlock class);
//   - no unready issue: every live ready-queue entry has no incomplete
//     dependence and a ready cycle at or before the current cycle.
//
// Contest invariants live in SystemObserver (contest.go).
package invariant

import (
	"fmt"

	"archcontest/internal/oracle"
	"archcontest/internal/pipeline"
	"archcontest/internal/ticks"
	"archcontest/internal/trace"
)

// Options configures a checker.
type Options struct {
	// OnViolation receives every violation. Nil panics on the first one,
	// which is the behaviour the fuzz harness wants.
	OnViolation func(error)
	// ScanEvery is the cycle stride of the O(window) structural scans
	// (ring aliasing, occupancy recount, wake-list completeness). The O(1)
	// checks run every executed cycle regardless. 0 selects 1: scan every
	// cycle.
	ScanEvery int64
	// RecordRetirements keeps the full retired-index sequence in memory so
	// tests can replay it against the oracle (oracle.ReplayChecksum).
	RecordRetirements bool
}

func (o Options) report() func(error) {
	if o.OnViolation != nil {
		return o.OnViolation
	}
	return func(err error) { panic(err) }
}

// CoreChecker asserts single-core invariants. It implements
// pipeline.Checker; attach it via pipeline.Options.Checker or
// sim.RunOptions.Checker. A checker is single-run: build a fresh one per
// core per run.
type CoreChecker struct {
	opts      Options
	onViolate func(error)
	oracle    *oracle.Executor

	lastCycle   int64
	lastRetire  ticks.Time
	nextRetire  int64
	scanCounter int64
	violations  int
	retirements []int64

	// scratch buffers reused across scans to keep checking cheap
	ready, wake, waiters []int64
	reachable            map[int64]bool
}

// NewCoreChecker builds a checker for one run of the given trace.
func NewCoreChecker(tr *trace.Trace, opts Options) *CoreChecker {
	if opts.ScanEvery <= 0 {
		opts.ScanEvery = 1
	}
	return &CoreChecker{
		opts:      opts,
		onViolate: opts.report(),
		oracle:    oracle.New(tr),
		lastCycle: -1,
		reachable: make(map[int64]bool),
	}
}

// Violations reports how many invariant violations have been observed.
func (k *CoreChecker) Violations() int { return k.violations }

// Retirements returns the recorded retired-index sequence (empty unless
// Options.RecordRetirements).
func (k *CoreChecker) Retirements() []int64 { return k.retirements }

// Oracle returns the checker's in-order reference executor, positioned
// just past the last retired instruction.
func (k *CoreChecker) Oracle() *oracle.Executor { return k.oracle }

func (k *CoreChecker) violate(format string, args ...any) {
	k.violations++
	k.onViolate(fmt.Errorf("invariant: "+format, args...))
}

// OnRetire implements pipeline.Checker: retirement must be exactly the
// in-order identity sequence, at non-decreasing times, and each retired
// instruction advances the oracle's reference execution in lockstep.
func (k *CoreChecker) OnRetire(c *pipeline.Core, seq int64, at ticks.Time) {
	if seq != k.nextRetire {
		k.violate("out-of-order retirement: got %d, want %d", seq, k.nextRetire)
		k.nextRetire = seq // resynchronize so one bug reports once
	}
	if at < k.lastRetire {
		k.violate("retirement %d at %v before previous retirement at %v", seq, at, k.lastRetire)
	}
	k.lastRetire = at
	k.nextRetire++
	if k.opts.RecordRetirements {
		k.retirements = append(k.retirements, seq)
	}
	if !k.oracle.Done() && k.oracle.Next() == seq {
		k.oracle.Step()
	} else if k.oracle.Next() != seq+1 {
		k.violate("oracle desynchronized at retirement %d (oracle at %d)", seq, k.oracle.Next())
	}
}

// OnInject implements pipeline.Checker. A stand-alone core has no result
// feed; any injection is a bug. The contest observer overrides this with
// the GRB protocol check.
func (k *CoreChecker) OnInject(c *pipeline.Core, seq int64, at ticks.Time) {
	k.violate("result injection of %d in a stand-alone core", seq)
}

// AfterCycle implements pipeline.Checker.
func (k *CoreChecker) AfterCycle(c *pipeline.Core) {
	ins := c.Inspect()
	cfg := c.Config()
	cycle := c.Cycle()

	// O(1) checks, every executed cycle.
	if cycle <= k.lastCycle {
		k.violate("cycle counter not monotonic: %d after %d", cycle, k.lastCycle)
	}
	k.lastCycle = cycle
	head, disp, tail := ins.HeadSeq(), ins.DispSeq(), ins.TailSeq()
	if head > disp || disp > tail {
		k.violate("window pointers disordered: head %d, dispatch %d, tail %d", head, disp, tail)
	}
	if tail-head > ins.RingSize() {
		k.violate("window %d exceeds structural ring %d", tail-head, ins.RingSize())
	}
	if rob := disp - head; rob < 0 || rob > int64(cfg.ROBSize) {
		k.violate("ROB occupancy %d outside [0,%d]", rob, cfg.ROBSize)
	}
	if iq := ins.IQCount(); iq < 0 || iq > cfg.IQSize {
		k.violate("issue-queue occupancy %d outside [0,%d]", iq, cfg.IQSize)
	}
	if lsq := ins.LSQCount(); lsq < 0 || lsq > cfg.LSQSize {
		k.violate("LSQ occupancy %d outside [0,%d]", lsq, cfg.LSQSize)
	}
	if ins.RetiredCount() != head {
		k.violate("retired count %d does not match window head %d", ins.RetiredCount(), head)
	}
	// A pending mispredicted branch must have been fetched; it may already
	// have retired (head passed it), because the fetch redirect clears the
	// gate only on the cycle after the branch completes.
	if pb := ins.PendingBranch(); pb != pipeline.NoSeq {
		if pb < 0 || pb >= tail {
			k.violate("pending branch %d was never fetched (tail %d)", pb, tail)
		} else if pb >= head {
			if e, ok := ins.Entry(pb); ok && !e.Mispredicted && !e.Completed {
				k.violate("pending branch %d is neither mispredicted nor resolved", pb)
			}
		}
	}

	// O(window) structural scans, every ScanEvery-th executed cycle.
	k.scanCounter++
	if k.scanCounter%k.opts.ScanEvery != 0 {
		return
	}
	k.scan(c, cycle)
}

// scan cross-checks the engine's window bookkeeping against a naive
// reconstruction.
func (k *CoreChecker) scan(c *pipeline.Core, cycle int64) {
	ins := c.Inspect()
	head, disp, tail := ins.HeadSeq(), ins.DispSeq(), ins.TailSeq()

	// The reachable set: everything the issue logic can still wake.
	k.ready = ins.ReadySeqs(k.ready[:0])
	k.wake = ins.WakeSeqs(k.wake[:0])
	for s := range k.reachable {
		delete(k.reachable, s)
	}
	for _, s := range k.ready {
		k.reachable[s] = true
	}
	for _, s := range k.wake {
		k.reachable[s] = true
	}

	iqCount, lsqCount := 0, 0
	for seq := head; seq < tail; seq++ {
		e, ok := ins.Entry(seq)
		if !ok {
			k.violate("window slot of in-flight %d aliased by a younger fetch", seq)
			continue
		}
		if seq < disp {
			if e.InIQ {
				iqCount++
			}
			if c.Trace().At(seq).IsMem() {
				lsqCount++
			}
			if !e.Completed {
				// Dependents of an incomplete producer are reachable
				// through its waiter list.
				k.waiters = ins.Waiters(seq, k.waiters[:0])
				for _, w := range k.waiters {
					k.reachable[w] = true
				}
			}
		}
	}
	if iqCount != ins.IQCount() {
		k.violate("issue-queue recount %d does not match counter %d", iqCount, ins.IQCount())
	}
	if lsqCount != ins.LSQCount() {
		k.violate("LSQ recount %d does not match counter %d", lsqCount, ins.LSQCount())
	}

	// Wake-list completeness: a dispatched, unissued instruction that is
	// unreachable can never issue again — the lost-wakeup deadlock.
	for seq := head; seq < disp; seq++ {
		e, ok := ins.Entry(seq)
		if !ok || !e.InIQ || e.Completed {
			continue
		}
		if !k.reachable[seq] {
			k.violate("instruction %d waits in the issue queue but is unreachable by any wake path", seq)
		}
	}

	// No unready issue: live ready-queue entries must have no incomplete
	// dependence and a ready cycle no later than now.
	for _, seq := range k.ready {
		e, ok := ins.Entry(seq)
		if !ok || !e.InIQ || e.Completed {
			continue // lazily-deleted heap entry
		}
		if b := ins.Blocker(seq); b != pipeline.NoSeq {
			k.violate("ready-queue entry %d still blocked on incomplete %d", seq, b)
		}
		if at := ins.ReadyAt(seq); at > cycle {
			k.violate("ready-queue entry %d ready only at cycle %d (now %d)", seq, at, cycle)
		}
	}
}

// Finish runs the end-of-run checks: the core must have retired exactly
// the first `want` instructions (the full trace for stand-alone runs and
// contest winners).
func (k *CoreChecker) Finish(want int64) {
	if k.nextRetire != want {
		k.violate("run finished with %d retirements, want %d", k.nextRetire, want)
	}
}
