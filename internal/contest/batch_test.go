package contest

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"archcontest/internal/config"
	"archcontest/internal/workload"
)

// contestBatchSuite builds a mixed set of independent contests: different
// benchmarks, core counts, latencies, exception regimes, a saturating
// lagger, and one single-step item exercising the sequential fallback.
func contestBatchSuite(n int) []BatchItem {
	return []BatchItem{
		{
			Configs: []config.CoreConfig{fastCore("a"), slowBigCore("b")},
			Trace:   workload.MustGenerate("gcc", n),
		},
		{
			Configs: []config.CoreConfig{fastCore("a"), slowBigCore("b")},
			Trace:   workload.MustGenerate("twolf", n),
			Opts:    Options{LatencyNs: 4},
		},
		{
			Configs: []config.CoreConfig{fastCore("a"), slowBigCore("b"), tinyCore("c")},
			Trace:   workload.MustGenerate("mcf", n),
		},
		{
			Configs: []config.CoreConfig{fastCore("a"), slowBigCore("b")},
			Trace:   workload.MustGenerate("crafty", n),
			Opts:    Options{ExceptionEvery: int64(n / 5)},
		},
		{
			// A tiny core behind a short ring saturates: the lagger path.
			Configs: []config.CoreConfig{fastCore("a"), tinyCore("t")},
			Trace:   workload.MustGenerate("crafty", n),
			Opts:    Options{MaxLag: 4},
		},
		{
			Configs: []config.CoreConfig{fastCore("a"), slowBigCore("b")},
			Trace:   workload.MustGenerate("vpr", n),
			Opts:    Options{SingleStep: true},
		},
		{
			Configs: []config.CoreConfig{fastCore("a"), slowBigCore("b")},
			Trace:   workload.MustGenerate("bzip", n),
			Opts:    Options{ExceptionEvery: int64(n / 4), ExceptionKillRefork: true},
		},
	}
}

// TestRunBatchMatchesSequential is the contest batch equivalence
// regression: every worker count, group size, and quantum must reproduce
// RunContext's results bit-identically, because each contest system owns
// all of its cross-core state (sender rings, GRB bounds, store queue,
// rendezvous).
func TestRunBatchMatchesSequential(t *testing.T) {
	items := contestBatchSuite(8000)
	want := make([]Result, len(items))
	for i, it := range items {
		r, err := RunContext(context.Background(), it.Configs, it.Trace, it.Opts)
		if err != nil {
			t.Fatalf("sequential item %d: %v", i, err)
		}
		want[i] = r
	}
	cases := []BatchOptions{
		{},
		{Workers: 1, GroupSize: 1},
		{Workers: 2, GroupSize: 2, Quantum: 64},
		{Workers: 4, GroupSize: 3},
		{Workers: 16, GroupSize: 1, Quantum: 1},
		{Workers: 2, GroupSize: 7, Quantum: 100000},
	}
	for _, opts := range cases {
		got, err := RunBatch(context.Background(), items, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%+v: %d results, want %d", opts, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%+v: item %d (%s) diverged:\n got %+v\nwant %+v",
					opts, i, items[i].Trace.Name(), got[i], want[i])
			}
		}
	}
}

func TestRunBatchEmpty(t *testing.T) {
	got, err := RunBatch(context.Background(), nil, BatchOptions{Workers: 4})
	if err != nil || got != nil {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

func TestRunBatchMaxTime(t *testing.T) {
	items := contestBatchSuite(8000)
	items[2].Opts.MaxTimeNs = 1
	if _, err := RunBatch(context.Background(), items, BatchOptions{Workers: 2}); err == nil {
		t.Error("time bound not enforced")
	} else if !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("error %v", err)
	}
}

func TestRunBatchPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBatch(ctx, contestBatchSuite(8000), BatchOptions{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunBatchInvalidConfig(t *testing.T) {
	items := contestBatchSuite(2000)
	items[0].Configs = items[0].Configs[:1] // below the two-core minimum
	if _, err := RunBatch(context.Background(), items, BatchOptions{Workers: 2}); err == nil {
		t.Error("invalid contest accepted")
	}
}

// TestRunBatchLegacySched interleaves systems running under the legacy
// single-step-compatible heap scheduler path: LegacySched systems still go
// through the event-driven runner (LegacySched switches the per-core IQ
// scheduler, not the contest loop), and must match the default bit-for-bit.
func TestRunBatchLegacySched(t *testing.T) {
	items := contestBatchSuite(8000)
	want, err := RunBatch(context.Background(), items, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		items[i].Opts.LegacySched = true
	}
	got, err := RunBatch(context.Background(), items, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("item %d: legacy scheduler diverged in batch", i)
		}
	}
}
