package contest

import (
	"testing"

	"archcontest/internal/ticks"
)

// Unit tests for the result-FIFO arrival hints and the saturation boundary:
// the event-driven engine fast-forwards on nextArrival, so its semantics
// (in-flight results reported, unbroadcast and consumed ones not) are
// load-bearing for correctness, not just performance.

func TestSenderRingNextArrival(t *testing.T) {
	r := newSenderRing(4)
	r.push(0, 100)
	r.push(1, 110)
	if at, ok := r.nextArrival(0); !ok || at != 100 {
		t.Errorf("nextArrival(0) = %d, %v; want 100, true", at, ok)
	}
	// A result still in flight (arrival in the future) is already known.
	if at, ok := r.nextArrival(1); !ok || at != 110 {
		t.Errorf("nextArrival(1) = %d, %v; want 110, true", at, ok)
	}
	if _, ok := r.nextArrival(2); ok {
		t.Error("nextArrival reported an unbroadcast result")
	}
	r.consumeThrough(0)
	if _, ok := r.nextArrival(0); ok {
		t.Error("nextArrival reported a consumed result")
	}
}

func TestFeedMinimumArrivalAcrossSenders(t *testing.T) {
	f := &feed{senders: []*senderRing{newSenderRing(4), newSenderRing(4)}}
	f.senders[0].push(0, 200)
	f.senders[1].push(0, 150)
	if f.ResultAvailable(0, 149) {
		t.Error("result available before the earliest arrival")
	}
	if !f.ResultAvailable(0, 150) {
		t.Error("result unavailable at the earliest arrival")
	}
	if at, ok := f.NextArrival(0); !ok || at != 150 {
		t.Errorf("NextArrival = %d, %v; want the minimum 150, true", at, ok)
	}
	// Only one sender has broadcast the next result; the hint still fires.
	f.senders[0].push(1, 260)
	if at, ok := f.NextArrival(1); !ok || at != 260 {
		t.Errorf("NextArrival(1) = %d, %v; want 260, true", at, ok)
	}
}

func TestDisabledFeedReportsNothing(t *testing.T) {
	f := &feed{senders: []*senderRing{newSenderRing(4)}}
	f.senders[0].push(0, 100)
	f.disabled = true
	if f.ResultAvailable(0, 1000) {
		t.Error("disabled feed reported an available result")
	}
	if _, ok := f.NextArrival(0); ok {
		t.Error("disabled feed reported an arrival hint")
	}
}

func TestSenderRingSaturationBoundary(t *testing.T) {
	r := newSenderRing(3)
	for i := int64(0); i < 3; i++ {
		if !r.push(i, 100+ticks.Time(i)) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	// The receiver lags by exactly the capacity: the next push overflows.
	if r.push(3, 200) {
		t.Error("push at capacity accepted; receiver should saturate")
	}
	// In the real system a refused push saturates the receiver and disables
	// its feed permanently, so the ring never serves queries past a drop;
	// the sender's sequence still advances and consuming reopens the window.
	r.consumeThrough(1)
	if !r.push(4, 210) {
		t.Error("push refused after consuming past the overflow")
	}
	if at, ok := r.nextArrival(4); !ok || at != 210 {
		t.Errorf("nextArrival(4) = %d, %v; want 210, true", at, ok)
	}
}
