package contest

import (
	"testing"

	"archcontest/internal/config"
	"archcontest/internal/workload"
)

func TestExceptionsSlowExecution(t *testing.T) {
	tr := workload.MustGenerate("gcc", 20000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	plain, err := Run(cfgs, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exc, err := Run(cfgs, tr, Options{ExceptionEvery: 2000, ExceptionHandlerNs: 100})
	if err != nil {
		t.Fatal(err)
	}
	if exc.Time <= plain.Time {
		t.Errorf("exceptions at no cost: %v vs %v", exc.Time, plain.Time)
	}
	// 10 exceptions x (rendezvous + 100ns handler): at least the handler
	// time must appear.
	minExtra := plain.Time.Add(10 * 100 * 100 / 2) // half the handler ticks as slack
	if exc.Time < minExtra {
		t.Errorf("exception cost %v too small", exc.Time-plain.Time)
	}
}

func TestKillReforkCostsMoreThanParallelHandler(t *testing.T) {
	tr := workload.MustGenerate("gcc", 20000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	parallel, err := Run(cfgs, tr, Options{ExceptionEvery: 2000})
	if err != nil {
		t.Fatal(err)
	}
	refork, err := Run(cfgs, tr, Options{ExceptionEvery: 2000, ExceptionKillRefork: true})
	if err != nil {
		t.Fatal(err)
	}
	if refork.Time <= parallel.Time {
		t.Errorf("terminate-and-refork (%v) not slower than the parallelized handler (%v)",
			refork.Time, parallel.Time)
	}
}

func TestExceptionsPreserveCompletion(t *testing.T) {
	tr := workload.MustGenerate("twolf", 10000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	r, err := Run(cfgs, tr, Options{ExceptionEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts != 10000 {
		t.Errorf("retired %d", r.Insts)
	}
	// At an exception boundary both cores must have rendezvoused, so the
	// loser cannot be more than one interval behind at the end.
	loser := 1 - r.Winner
	if r.PerCore[loser].Retired < r.Insts-500-1 {
		t.Errorf("loser retired only %d of %d despite 500-instruction rendezvous", r.PerCore[loser].Retired, r.Insts)
	}
}

func TestExceptionCoordinatorUnit(t *testing.T) {
	tr := workload.MustGenerate("gcc", 1000)
	s, err := NewSystem([]config.CoreConfig{fastCore("a"), slowBigCore("b")}, tr, Options{ExceptionEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	x := s.exc
	if x == nil {
		t.Fatal("coordinator not wired")
	}
	if x.isException(98) || !x.isException(99) {
		t.Error("exception indexing wrong (every 100th instruction -> idx 99)")
	}
	// Non-exception instructions always pass.
	if !x.gate(0, 50, 0) {
		t.Error("non-exception gated")
	}
	// Neither core has retired 99 instructions yet: the first arrival waits.
	if x.gate(0, 99, 1000) {
		t.Error("rendezvous passed before all cores arrived")
	}
}
