package contest

import (
	"testing"

	"archcontest/internal/config"
	"archcontest/internal/ticks"
	"archcontest/internal/workload"
)

func TestExceptionsSlowExecution(t *testing.T) {
	tr := workload.MustGenerate("gcc", 20000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	plain, err := Run(cfgs, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exc, err := Run(cfgs, tr, Options{ExceptionEvery: 2000, ExceptionHandlerNs: 100})
	if err != nil {
		t.Fatal(err)
	}
	if exc.Time <= plain.Time {
		t.Errorf("exceptions at no cost: %v vs %v", exc.Time, plain.Time)
	}
	// 10 exceptions x (rendezvous + 100ns handler): at least the handler
	// time must appear.
	minExtra := plain.Time.Add(10 * 100 * 100 / 2) // half the handler ticks as slack
	if exc.Time < minExtra {
		t.Errorf("exception cost %v too small", exc.Time-plain.Time)
	}
}

func TestKillReforkCostsMoreThanParallelHandler(t *testing.T) {
	tr := workload.MustGenerate("gcc", 20000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	parallel, err := Run(cfgs, tr, Options{ExceptionEvery: 2000})
	if err != nil {
		t.Fatal(err)
	}
	refork, err := Run(cfgs, tr, Options{ExceptionEvery: 2000, ExceptionKillRefork: true})
	if err != nil {
		t.Fatal(err)
	}
	if refork.Time <= parallel.Time {
		t.Errorf("terminate-and-refork (%v) not slower than the parallelized handler (%v)",
			refork.Time, parallel.Time)
	}
}

func TestExceptionsPreserveCompletion(t *testing.T) {
	tr := workload.MustGenerate("twolf", 10000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	r, err := Run(cfgs, tr, Options{ExceptionEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts != 10000 {
		t.Errorf("retired %d", r.Insts)
	}
	// At an exception boundary both cores must have rendezvoused, so the
	// loser cannot be more than one interval behind at the end.
	loser := 1 - r.Winner
	if r.PerCore[loser].Retired < r.Insts-500-1 {
		t.Errorf("loser retired only %d of %d despite 500-instruction rendezvous", r.PerCore[loser].Retired, r.Insts)
	}
}

func TestReforkWarmupChargesStateTransfer(t *testing.T) {
	tr := workload.MustGenerate("gcc", 20000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	base, err := Run(cfgs, tr, Options{ExceptionEvery: 2000, ExceptionKillRefork: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.StateTransfer != 0 {
		t.Errorf("state transfer charged without a warm-up knob: %v", base.StateTransfer)
	}
	warm, err := Run(cfgs, tr, Options{
		ExceptionEvery: 2000, ExceptionKillRefork: true, ReforkWarmupNs: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 kill-refork barriers, each reforking one non-designated core.
	want := ticks.FromNanoseconds(1000) * 10
	if warm.StateTransfer != want {
		t.Errorf("state transfer %v, want %v", warm.StateTransfer, want)
	}
	if warm.Time <= base.Time {
		t.Errorf("warm-up at no cost: %v vs %v", warm.Time, base.Time)
	}
}

func TestReforkColdPredictorRetrainsFromScratch(t *testing.T) {
	tr := workload.MustGenerate("gcc", 20000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	opts := Options{ExceptionEvery: 2000, ExceptionKillRefork: true}
	base, err := Run(cfgs, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.ReforkColdPredictor = true
	cold, err := Run(cfgs, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseMiss := base.PerCore[0].Mispredicts + base.PerCore[1].Mispredicts
	coldMiss := cold.PerCore[0].Mispredicts + cold.PerCore[1].Mispredicts
	if coldMiss <= baseMiss {
		t.Errorf("cold-predictor reforks mispredicted %d times, want more than warm %d",
			coldMiss, baseMiss)
	}
}

func TestReforkColdCachesMissMore(t *testing.T) {
	tr := workload.MustGenerate("mcf", 20000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	opts := Options{ExceptionEvery: 2000, ExceptionKillRefork: true}
	base, err := Run(cfgs, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.ReforkColdCaches = true
	cold, err := Run(cfgs, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseMiss := base.PerCore[0].L1D.Misses + base.PerCore[1].L1D.Misses
	coldMiss := cold.PerCore[0].L1D.Misses + cold.PerCore[1].L1D.Misses
	if coldMiss <= baseMiss {
		t.Errorf("cold-cache reforks missed %d times, want more than warm %d", coldMiss, baseMiss)
	}
}

func TestLeadChangeWarmupIsPostHocAccounting(t *testing.T) {
	tr := workload.MustGenerate("bzip", 60000)
	cfgs := []config.CoreConfig{fastCore("fast"), slowBigCore("big")}
	base, err := Run(cfgs, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.LeadChanges == 0 {
		t.Fatal("phase-diverse trace produced no lead changes")
	}
	warm, err := Run(cfgs, tr, Options{LeadChangeWarmupNs: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Pure accounting: the dynamics — and so the lead-change count — must
	// be untouched, and the charge must be exactly per-change.
	if warm.LeadChanges != base.LeadChanges {
		t.Fatalf("lead-change warm-up altered the dynamics: %d vs %d changes",
			warm.LeadChanges, base.LeadChanges)
	}
	charge := ticks.FromNanoseconds(100) * ticks.Duration(base.LeadChanges)
	if warm.StateTransfer != charge {
		t.Errorf("state transfer %v, want %v", warm.StateTransfer, charge)
	}
	if warm.Time != base.Time.Add(charge) {
		t.Errorf("time %v, want %v + %v", warm.Time, base.Time, charge)
	}
}

func TestNegativeWarmupRejected(t *testing.T) {
	tr := workload.MustGenerate("gcc", 1000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	if _, err := NewSystem(cfgs, tr, Options{ReforkWarmupNs: -1}); err == nil {
		t.Error("negative refork warm-up accepted")
	}
	if _, err := NewSystem(cfgs, tr, Options{LeadChangeWarmupNs: -1}); err == nil {
		t.Error("negative lead-change warm-up accepted")
	}
}

// TestVerifiedWarmupSchedulerEquivalence locks the bit-identity of the two
// schedulers under the full warm-up model: cold-state reforks land at
// barrier formation, which happens at the same global point of the
// execution in either scheduler.
func TestVerifiedWarmupSchedulerEquivalence(t *testing.T) {
	tr := workload.MustGenerate("gcc", 20000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	opts := Options{
		ExceptionEvery: 2000, ExceptionKillRefork: true,
		ReforkWarmupNs: 750, ReforkColdPredictor: true, ReforkColdCaches: true,
		LeadChangeWarmupNs: 50,
	}
	ref := opts
	ref.SingleStep = true
	a, err := Run(cfgs, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfgs, tr, ref)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Winner != b.Winner || a.LeadChanges != b.LeadChanges ||
		a.StateTransfer != b.StateTransfer {
		t.Fatalf("schedulers diverge under warm-up: %+v vs %+v", a, b)
	}
	for i := range a.PerCore {
		if a.PerCore[i] != b.PerCore[i] {
			t.Errorf("core %d stats diverge: %+v vs %+v", i, a.PerCore[i], b.PerCore[i])
		}
	}
}

func TestExceptionCoordinatorUnit(t *testing.T) {
	tr := workload.MustGenerate("gcc", 1000)
	s, err := NewSystem([]config.CoreConfig{fastCore("a"), slowBigCore("b")}, tr, Options{ExceptionEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	x := s.exc
	if x == nil {
		t.Fatal("coordinator not wired")
	}
	if x.isException(98) || !x.isException(99) {
		t.Error("exception indexing wrong (every 100th instruction -> idx 99)")
	}
	// Non-exception instructions always pass.
	if !x.gate(0, 50, 0) {
		t.Error("non-exception gated")
	}
	// Neither core has retired 99 instructions yet: the first arrival waits.
	if x.gate(0, 99, 1000) {
		t.Error("rendezvous passed before all cores arrived")
	}
}
