package contest

import (
	"context"
	"errors"
	"testing"
	"time"

	"archcontest/internal/config"
	"archcontest/internal/workload"
)

func TestRunContextPreCancelled(t *testing.T) {
	tr := workload.MustGenerate("gcc", 20000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, singleStep := range []bool{false, true} {
		_, err := RunContext(ctx, cfgs, tr, Options{SingleStep: singleStep})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("singleStep=%v: err = %v, want context.Canceled", singleStep, err)
		}
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	tr := workload.MustGenerate("mcf", 500000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := RunContext(ctx, cfgs, tr, Options{})
	// The run may legitimately finish before the timer fires on a fast
	// machine; what must never happen is a non-context error or a hang.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	tr := workload.MustGenerate("twolf", 20000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	a, err := Run(cfgs, tr, Options{RegionSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfgs, tr, Options{RegionSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.Insts != b.Insts || a.Time != b.Time || a.Winner != b.Winner || a.LeadChanges != b.LeadChanges {
		t.Fatalf("RunContext(Background) diverged from Run:\n%+v\n%+v", a, b)
	}
}
