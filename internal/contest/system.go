package contest

import (
	"context"
	"fmt"

	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/pipeline"
	"archcontest/internal/ticks"
	"archcontest/internal/trace"
)

// System is an N-way contesting multi-core executing one trace.
type System struct {
	cores   []*pipeline.Core
	feeds   []*feed
	queue   *StoreQueue
	latency ticks.Duration
	opts    Options
	tr      *trace.Trace

	saturated   []bool
	leadChanges int64
	leader      int
	exc         *exceptionCoordinator

	// bounds, allocated only by the event-driven scheduler, holds per-core
	// fast-forward bounds: every cycle of core i with a clock edge strictly
	// before bounds[i] is known to be dead. A retirement anywhere in the
	// system clamps every other core's bound to the retirement time, since
	// its side effects (result arrival, store-queue drain, saturation,
	// exception rendezvous) can wake a core no earlier than that.
	bounds []ticks.Time
}

// NewSystem builds a contesting system over the given core configurations.
// Private hierarchies run write-through, as contesting requires.
func NewSystem(cfgs []config.CoreConfig, tr *trace.Trace, opts Options) (*System, error) {
	if len(cfgs) < 2 {
		return nil, fmt.Errorf("contest: need at least two cores, got %d", len(cfgs))
	}
	if len(cfgs) > 8 {
		return nil, fmt.Errorf("contest: %d cores exceeds the supported 8", len(cfgs))
	}
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("contest: empty trace")
	}
	opts.applyDefaults(tr.Len())
	lat := ticks.FromNanoseconds(opts.LatencyNs)
	if lat < 1 {
		return nil, fmt.Errorf("contest: core-to-core latency %gns below one time-unit", opts.LatencyNs)
	}
	if opts.ReforkWarmupNs < 0 {
		return nil, fmt.Errorf("contest: negative refork warm-up %gns", opts.ReforkWarmupNs)
	}
	if opts.LeadChangeWarmupNs < 0 {
		return nil, fmt.Errorf("contest: negative lead-change warm-up %gns", opts.LeadChangeWarmupNs)
	}

	n := len(cfgs)
	s := &System{
		latency:   lat,
		opts:      opts,
		tr:        tr,
		queue:     NewStoreQueue(n, opts.StoreQueueCap),
		saturated: make([]bool, n),
		feeds:     make([]*feed, n),
		cores:     make([]*pipeline.Core, n),
	}
	for i := range s.feeds {
		f := &feed{senders: make([]*senderRing, 0, n-1)}
		for j := 0; j < n-1; j++ {
			f.senders = append(f.senders, newSenderRing(opts.MaxLag))
		}
		s.feeds[i] = f
	}
	if opts.ExceptionEvery > 0 {
		s.exc = &exceptionCoordinator{
			sys:      s,
			interval: opts.ExceptionEvery,
			handler:  ticks.FromNanoseconds(opts.ExceptionHandlerNs),
			barrier:  -1,
		}
		if opts.ExceptionKillRefork {
			s.exc.refork = ticks.FromNanoseconds(opts.ExceptionReforkNs)
			s.exc.warmup = ticks.FromNanoseconds(opts.ReforkWarmupNs)
			s.exc.coldPred = opts.ReforkColdPredictor
			s.exc.coldCaches = opts.ReforkColdCaches
		}
	}
	for i, cfg := range cfgs {
		i := i
		popts := pipeline.Options{
			WritePolicy:     cache.WriteThrough,
			RegionSize:      opts.RegionSize,
			Feed:            s.feeds[i],
			StoreSink:       coreSink{q: s.queue, core: i},
			OnRetire:        func(idx int64, at ticks.Time) { s.broadcast(i, idx, at) },
			NoTrainOnInject: opts.NoTrainOnInject,
			LegacySched:     opts.LegacySched,
		}
		if s.exc != nil {
			popts.RetireGate = func(idx int64, at ticks.Time) bool { return s.exc.gate(i, idx, at) }
		}
		if opts.Observer != nil {
			popts.Checker = opts.Observer.CoreChecker(i)
		}
		core, err := pipeline.NewCore(cfg, tr, popts)
		if err != nil {
			return nil, fmt.Errorf("contest: core %d (%s): %w", i, cfg.Name, err)
		}
		s.cores[i] = core
	}
	if opts.Observer != nil {
		opts.Observer.Attach(s)
	}
	return s, nil
}

// NumCores reports the number of contesting cores.
func (s *System) NumCores() int { return len(s.cores) }

// Core returns core i, for read-only inspection by verification observers.
func (s *System) Core(i int) *pipeline.Core { return s.cores[i] }

// Trace reports the trace the system is executing.
func (s *System) Trace() *trace.Trace { return s.tr }

// Options reports the system's options with defaults applied.
func (s *System) Options() Options { return s.opts }

// Leader reports the index of the current leading core.
func (s *System) Leader() int { return s.leader }

// LeadChanges reports how often the leader has changed so far.
func (s *System) LeadChanges() int64 { return s.leadChanges }

// IsSaturated reports whether core i has been declared a saturated lagger.
func (s *System) IsSaturated(i int) bool { return s.saturated[i] }

// Queue returns the synchronizing store queue, for verification observers
// (read-only, except for installing the Merged callback before the run).
func (s *System) Queue() *StoreQueue { return s.queue }

// FeedState reports the state of receiver's result FIFO for sender: the
// pop counter (lo), one past the newest retained result (hi), and the next
// index the sender will broadcast. ok is false when receiver == sender.
func (s *System) FeedState(receiver, sender int) (lo, hi, next int64, ok bool) {
	if receiver == sender {
		return 0, 0, 0, false
	}
	ring := s.feeds[receiver].senders[senderSlot(receiver, sender)]
	return ring.lo, ring.hi, ring.next, true
}

// senderSlot maps sender `from` into receiver `to`'s ring list (receivers
// hold one ring per remote core, ordered by core index with self skipped).
func senderSlot(to, from int) int {
	if from < to {
		return from
	}
	return from - 1
}

// broadcast is core `from`'s global result bus: the retired result of
// instruction idx reaches every other core after the propagation latency.
// A receiver whose FIFO overflows is a saturated lagger: contesting is
// disabled for it and its stores stop gating the store queue.
func (s *System) broadcast(from int, idx int64, at ticks.Time) {
	arrival := at.Add(s.latency)
	for to := range s.cores {
		if to == from || s.saturated[to] || s.feeds[to].disabled {
			continue
		}
		ring := s.feeds[to].senders[senderSlot(to, from)]
		// Drop anything the receiver has already fetched past; the receiver
		// also consumes on its own cycle, but a slow receiver's view must
		// not overflow on what it would discard anyway.
		if !ring.push(idx, arrival) {
			s.declareSaturated(to)
			continue
		}
		// A receiver fast-forwarding past the arrival would miss the
		// injection or early branch resolution this result can trigger;
		// clamp its bound to the arrival edge. The queue-drain, saturation,
		// and rendezvous side effects of a retirement need no clamp: a core
		// blocked on them presents itself every cycle (extStalled), and an
		// unblocked core consults them exactly at its own retire candidate,
		// which its bound already includes.
		if s.bounds != nil && s.bounds[to] > arrival {
			s.bounds[to] = arrival
		}
	}
}

func (s *System) declareSaturated(core int) {
	s.saturated[core] = true
	s.feeds[core].disabled = true
	s.queue.DisableCore(core)
}

// ctxPollStride matches sim.ctxPollStride: scheduler iterations between
// context polls. The check never runs per simulated cycle.
const ctxPollStride = 4096

// Run executes the contest to completion: the system finishes when the
// first core retires the whole trace. The event-driven scheduler is used
// unless Options.SingleStep selects the reference cycle-by-cycle loop; both
// produce bit-identical results.
func (s *System) Run() (Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: both scheduler loops
// poll ctx.Done() every ctxPollStride iterations and return ctx.Err() when
// the context ends. A Background context costs one nil check at entry.
func (s *System) RunContext(ctx context.Context) (Result, error) {
	if s.opts.SingleStep {
		return s.runSingleStep(ctx)
	}
	return s.runEventDriven(ctx)
}

// runSingleStep is the reference scheduler: one cycle of one core at a
// time, always the core with the earliest next clock edge.
func (s *System) runSingleStep(ctx context.Context) (Result, error) {
	maxTime := ticks.Time(ticks.FromNanoseconds(s.opts.MaxTimeNs))
	n := len(s.cores)
	done := ctx.Done()
	var poll int
	for {
		if done != nil {
			if poll++; poll >= ctxPollStride {
				poll = 0
				select {
				case <-done:
					return Result{}, ctx.Err()
				default:
				}
			}
		}
		// Step the core with the earliest next clock edge; ties resolve by
		// core index, the paper's round-robin handshake order.
		min := 0
		for i := 1; i < n; i++ {
			if s.cores[i].Now() < s.cores[min].Now() {
				min = i
			}
		}
		c := s.cores[min]
		if c.Now() > maxTime {
			return Result{}, fmt.Errorf("contest: %s exceeded %gns without finishing", s.tr.Name(), s.opts.MaxTimeNs)
		}
		c.Step()
		if r := c.Retired(); r > s.cores[s.leader].Retired() && min != s.leader {
			s.leader = min
			s.leadChanges++
		}
		if s.opts.Observer != nil {
			s.opts.Observer.AfterStep(s, min)
		}
		if c.Done() {
			return s.result(min), nil
		}
	}
}

// runner is the resumable form of the event-driven scheduler: the per-run
// state (the indexed core heap, the fast-forward bounds, the time budget)
// lives in the struct, and step executes exactly one scheduler iteration —
// a dead-cycle fast-forward or one core cycle. RunContext drives a runner
// to completion in a tight loop; RunBatch interleaves many runners, each
// advancing a quantum of iterations at a time, and the resulting execution
// of every system is bit-identical to a dedicated sequential run because a
// runner's state is touched by nothing outside its own System.
type runner struct {
	s       *System
	h       *coreHeap
	maxTime ticks.Time
	winner  int
	done    bool
}

// newRunner prepares the system for event-driven execution. A system runs
// once: building a second runner on the same system is invalid.
func (s *System) newRunner() *runner {
	s.bounds = make([]ticks.Time, len(s.cores))
	return &runner{
		s:       s,
		h:       newCoreHeap(s),
		maxTime: ticks.Time(ticks.FromNanoseconds(s.opts.MaxTimeNs)),
		winner:  -1,
	}
}

// step executes one scheduler iteration. It reports true when the contest
// finished (the winner is recorded on the runner), and an error when a core
// exceeded the time budget. Calling step after completion is invalid.
//
// The scheduling rule: cores live in an indexed min-heap keyed on each
// core's live edge — the later of its current clock edge and its
// fast-forward bound. Popping the heap minimum guarantees that every other
// core's next state change lies at or beyond that time, so a popped core
// whose bound is ahead of its clock may jump straight to the bound: all the
// skipped cycles are dead, and nothing another core does in the meantime
// (clamped into the bound by broadcast) can wake it earlier.
//
// The execution it produces is the single-step schedule with dead cycles
// deleted: every progressing step of every core happens at the same cycle,
// in the same global order, with the same inputs, so all reported numbers —
// including each core's dead-cycle-inflated Stats.Cycles, reconstructed at
// the end by settle — are bit-identical to runSingleStep.
func (r *runner) step() (bool, error) {
	s := r.s
	i := r.h.min()
	c := s.cores[i]
	if c.Now() > r.maxTime {
		return false, fmt.Errorf("contest: %s exceeded %gns without finishing", s.tr.Name(), s.opts.MaxTimeNs)
	}
	if b := s.bounds[i]; b > c.Now() {
		// Fast-forward over the dead cycles to the first edge at or
		// past the bound.
		clk := c.Clock()
		cc := clk.CycleAt(b)
		if clk.TimeOfCycle(cc) < b {
			cc++
		}
		c.SkipTo(cc)
		s.bounds[i] = 0
		r.h.fix()
		return false, nil
	}
	c.Step()
	if ret := c.Retired(); ret > s.cores[s.leader].Retired() && i != s.leader {
		s.leader = i
		s.leadChanges++
	}
	if s.opts.Observer != nil {
		s.opts.Observer.AfterStep(s, i)
	}
	if c.Done() {
		s.settle(i)
		r.winner = i
		r.done = true
		return true, nil
	}
	if c.Progressed() {
		s.bounds[i] = 0
	} else if next, ok := c.NextEvent(); ok {
		s.bounds[i] = c.Clock().TimeOfCycle(next)
	} else {
		// Blocked on the store queue or the exception rendezvous:
		// their state changes on other cores' retirements in ways the
		// core cannot bound, and the gate consult itself mutates the
		// coordinator, so the core must present itself every cycle.
		s.bounds[i] = 0
	}
	// The step may have broadcast retirements that clamped any bound.
	r.h.fix()
	return false, nil
}

// advance runs up to n scheduler iterations, stopping early on completion.
// It reports whether the contest finished.
func (r *runner) advance(n int) (bool, error) {
	for j := 0; j < n; j++ {
		fin, err := r.step()
		if err != nil || fin {
			return fin, err
		}
	}
	return false, nil
}

// runEventDriven drives a runner to completion (see runner).
func (s *System) runEventDriven(ctx context.Context) (Result, error) {
	r := s.newRunner()
	done := ctx.Done()
	var poll int
	for {
		if done != nil {
			if poll++; poll >= ctxPollStride {
				poll = 0
				select {
				case <-done:
					return Result{}, ctx.Err()
				default:
				}
			}
		}
		fin, err := r.step()
		if err != nil {
			return Result{}, err
		}
		if fin {
			return s.result(r.winner), nil
		}
	}
}

// settle reconstructs the losing cores' cycle counters at the moment the
// single-step scheduler would have exited: each non-winner keeps being
// stepped through its dead tail cycles until its clock edge passes the
// winner's finishing edge (cores after the winner in index order stop at
// the first edge at or past it, cores before it at the first edge strictly
// past it — the tie order of the reference scheduler).
func (s *System) settle(winner int) {
	w := s.cores[winner]
	finish := w.Clock().TimeOfCycle(w.Cycle() - 1)
	for j, c := range s.cores {
		if j == winner {
			continue
		}
		clk := c.Clock()
		cc := clk.CycleAt(finish)
		if j > winner {
			if clk.TimeOfCycle(cc) < finish {
				cc++
			}
		} else {
			cc++
		}
		c.SkipTo(cc)
	}
}

func (s *System) result(winner int) Result {
	res := Result{
		Benchmark:   s.tr.Name(),
		Insts:       int64(s.tr.Len()),
		Time:        s.cores[winner].Stats().FinishTime,
		Winner:      winner,
		LeadChanges: s.leadChanges,
		Saturated:   append([]bool(nil), s.saturated...),
		Regions:     s.cores[winner].RegionTimes(),
	}
	if s.exc != nil {
		res.StateTransfer = s.exc.transfer
	}
	if s.opts.LeadChangeWarmupNs > 0 && s.leadChanges > 0 {
		// Post-hoc accounting: leadership hand-offs are charged against the
		// final time without having altered the contest's dynamics.
		st := ticks.FromNanoseconds(s.opts.LeadChangeWarmupNs) * ticks.Duration(s.leadChanges)
		res.StateTransfer += st
		res.Time = res.Time.Add(st)
	}
	for _, c := range s.cores {
		res.Cores = append(res.Cores, c.Config().Name)
		res.PerCore = append(res.PerCore, c.Stats())
	}
	return res
}

// Run builds and runs a contesting system in one call.
func Run(cfgs []config.CoreConfig, tr *trace.Trace, opts Options) (Result, error) {
	return RunContext(context.Background(), cfgs, tr, opts)
}

// RunContext builds and runs a contesting system in one call, with
// cooperative cancellation (see System.RunContext).
func RunContext(ctx context.Context, cfgs []config.CoreConfig, tr *trace.Trace, opts Options) (Result, error) {
	s, err := NewSystem(cfgs, tr, opts)
	if err != nil {
		return Result{}, err
	}
	return s.RunContext(ctx)
}
