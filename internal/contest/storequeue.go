package contest

import "fmt"

// StoreQueue is the synchronizing store queue of a contesting system,
// modelled after SRT's: it buffers privately-performed stores and tracks
// which cores have performed each one. When the oldest store has been
// performed by every active core, a single merged instance is performed to
// the shared cache level. A full queue refuses new stores, which
// backpressures retirement in the leading core and thereby bounds how far
// it can run ahead.
type StoreQueue struct {
	capacity int
	required uint64 // bitmask of cores whose instance is awaited
	entries  []sqEntry
	// Merged receives each merged store exactly once, in program order,
	// when it drains to the shared level. Nil disables the callback.
	Merged func(idx int64, addr uint64)

	mergedCount int64
}

type sqEntry struct {
	idx       int64
	addr      uint64
	performed uint64 // bitmask of cores that performed it privately
}

// NewStoreQueue builds a queue for n cores with the given capacity.
func NewStoreQueue(n, capacity int) *StoreQueue {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("contest: store queue for %d cores", n))
	}
	if capacity < 1 {
		panic("contest: store queue capacity below 1")
	}
	return &StoreQueue{
		capacity: capacity,
		required: 1<<n - 1,
	}
}

// CanAccept reports whether core `core` may retire its next store: either
// the store already has an entry (another core performed it first) or
// there is room for a new entry.
func (q *StoreQueue) CanAccept(core int) bool {
	if q.required&(1<<core) == 0 {
		return true // disabled cores are never blocked
	}
	if len(q.entries) < q.capacity {
		return true
	}
	// Full: acceptable only if this core's next store matches an existing
	// entry. The oldest entry this core has not yet performed is its next
	// store (stores retire in program order on every core).
	for i := range q.entries {
		if q.entries[i].performed&(1<<core) == 0 {
			return true
		}
	}
	return false
}

// Performed records that `core` performed store idx in its private
// hierarchy, allocating an entry if this is the first instance. It drains
// every leading entry that all active cores have now performed.
func (q *StoreQueue) Performed(core int, idx int64, addr uint64) {
	bit := uint64(1) << core
	if q.required&bit == 0 {
		return // disabled core: its instances are ignored
	}
	found := false
	for i := range q.entries {
		if q.entries[i].idx == idx {
			q.entries[i].performed |= bit
			found = true
			break
		}
	}
	if !found {
		if len(q.entries) >= q.capacity {
			panic(fmt.Sprintf("contest: store queue overflow at store %d (CanAccept not consulted)", idx))
		}
		q.entries = append(q.entries, sqEntry{idx: idx, addr: addr, performed: bit})
	}
	q.drain()
}

// DisableCore removes a core (e.g. a saturated lagger) from the required
// set and drains entries that no longer wait on it.
func (q *StoreQueue) DisableCore(core int) {
	q.required &^= 1 << core
	q.drain()
}

func (q *StoreQueue) drain() {
	i := 0
	for ; i < len(q.entries); i++ {
		e := &q.entries[i]
		if e.performed&q.required != q.required {
			break
		}
		q.mergedCount++
		if q.Merged != nil {
			q.Merged(e.idx, e.addr)
		}
	}
	if i > 0 {
		q.entries = append(q.entries[:0], q.entries[i:]...)
	}
}

// Pending reports the number of buffered, unmerged stores.
func (q *StoreQueue) Pending() int { return len(q.entries) }

// MergedCount reports how many stores have drained to the shared level.
func (q *StoreQueue) MergedCount() int64 { return q.mergedCount }

// coreSink adapts the queue to one core's pipeline.StoreSink.
type coreSink struct {
	q    *StoreQueue
	core int
}

func (s coreSink) CanAccept() bool                  { return s.q.CanAccept(s.core) }
func (s coreSink) Performed(idx int64, addr uint64) { s.q.Performed(s.core, idx, addr) }
