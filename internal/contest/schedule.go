package contest

import "archcontest/internal/ticks"

// coreHeap is an indexed binary min-heap over the system's cores, keyed by
// each core's live edge with ties broken by core index — the round-robin
// handshake order of the reference scheduler. The heap holds every core
// permanently; keys change as cores step, skip, or get their bounds
// clamped, and fix restores the heap property afterwards.
type coreHeap struct {
	s    *System
	heap []int // core indices in heap order
}

func newCoreHeap(s *System) *coreHeap {
	h := &coreHeap{s: s, heap: make([]int, len(s.cores))}
	for i := range h.heap {
		h.heap[i] = i
	}
	h.fix()
	return h
}

// liveAt is core i's heap key: the earliest time at which scheduling it can
// do anything — its next clock edge, pushed out to its fast-forward bound
// when every cycle before the bound is known dead.
func (h *coreHeap) liveAt(i int) ticks.Time {
	t := h.s.cores[i].Now()
	if b := h.s.bounds[i]; b > t {
		return b
	}
	return t
}

func (h *coreHeap) less(a, b int) bool {
	ta, tb := h.liveAt(a), h.liveAt(b)
	return ta < tb || (ta == tb && a < b)
}

// min reports the core index with the earliest live edge.
func (h *coreHeap) min() int { return h.heap[0] }

// fix restores the heap property after any number of key changes. A step
// can move several keys at once (the stepped core's edge advances and its
// broadcasts clamp other cores' bounds), so fix re-heapifies; with the
// system capped at eight cores this is a handful of comparisons.
func (h *coreHeap) fix() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *coreHeap) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(h.heap) {
			return
		}
		m := l
		if r := l + 1; r < len(h.heap) && h.less(h.heap[r], h.heap[l]) {
			m = r
		}
		if !h.less(h.heap[m], h.heap[i]) {
			return
		}
		h.heap[i], h.heap[m] = h.heap[m], h.heap[i]
		i = m
	}
}
