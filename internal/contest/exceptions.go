package contest

import "archcontest/internal/ticks"

// The paper's Section 4.3: a synchronous exception (error, TLB miss,
// system call) is detected by all contesting cores, though not at the same
// time. The paper advocates a redundant-thread-aware *parallelized*
// exception handler: a core reaching the exception increments a semaphore
// and sleeps until the last core arrives, then the handlers coordinate and
// service the exception on all cores — avoiding the older
// terminate-and-refork approach, which kills the threads on the
// non-designated cores, services the exception on one, and reforks the
// rest (including TLB preloading), at a much higher cost.
//
// exceptionCoordinator models both. Every ExceptionEvery-th instruction is
// an excepting instruction; no core may retire it before every active core
// has reached it (the semaphore rendezvous) and the handler has run.

// exceptionCoordinator gates retirement at exception instructions.
type exceptionCoordinator struct {
	sys      *System
	interval int64
	// handler is the service time once all cores have arrived.
	handler ticks.Duration
	// refork, when set, models terminate-and-refork: the non-designated
	// cores pay an additional refork penalty each.
	refork ticks.Duration
	// warmup is the per-reforked-core state-transfer interval charged on
	// top of refork (Options.ReforkWarmupNs).
	warmup ticks.Duration
	// coldPred and coldCaches, when set, destroy the microarchitectural
	// state of the non-designated cores at each kill-refork barrier: the
	// reforked threads restart with untrained predictors / empty caches.
	coldPred   bool
	coldCaches bool

	barrier   int64 // instruction index of the exception being coordinated
	releaseAt ticks.Time
	pending   bool
	// transfer accumulates the warm-up time charged across barriers, for
	// Result.StateTransfer.
	transfer ticks.Duration
}

// isException reports whether instruction idx raises a synchronous
// exception.
func (x *exceptionCoordinator) isException(idx int64) bool {
	return x.interval > 0 && (idx+1)%x.interval == 0
}

// gate implements pipeline.Options.RetireGate for core `core`.
func (x *exceptionCoordinator) gate(core int, idx int64, at ticks.Time) bool {
	if !x.isException(idx) {
		return true
	}
	// Complete the current barrier once every active core has retired its
	// excepting instruction.
	if x.pending && x.allReached(x.barrier+1) {
		x.pending = false
	}
	if x.pending {
		if idx != x.barrier {
			// Only an already-serviced exception may pass while another is
			// being coordinated (a saturated straggler catching up).
			return idx < x.barrier
		}
		return at >= x.releaseAt // servicing in progress
	}
	if idx <= x.barrier {
		return true // already serviced
	}
	if !x.allReached(idx) {
		// The handler on this core increments the semaphore and sleeps
		// until the last active core arrives.
		return false
	}
	// Last arrival: wake all handlers and service the exception.
	x.barrier = idx
	x.pending = true
	cost := x.handler
	if x.refork > 0 || x.warmup > 0 {
		// Terminate-and-refork instead: the designated core services the
		// exception while every other core's thread is killed and reforked,
		// each paying the refork penalty plus the state-transfer warm-up.
		reforked := ticks.Duration(x.activeCores() - 1)
		cost += (x.refork + x.warmup) * reforked
		x.transfer += x.warmup * reforked
	}
	if x.coldPred || x.coldCaches {
		x.coldRefork()
	}
	x.releaseAt = at.Add(cost)
	return at >= x.releaseAt
}

// coldRefork destroys the microarchitectural state of every active core
// except the designated one — the current leader — at barrier formation.
// Barrier formation happens at the same global point in both schedulers
// (every progressing core cycle runs at the same cycle, in the same order,
// with the same inputs in either), and the leader identity is maintained
// identically, so the resets land on the same cores at the same point of
// the execution and the two schedulers stay bit-identical.
func (x *exceptionCoordinator) coldRefork() {
	designated := x.sys.leader
	for i, c := range x.sys.cores {
		if i == designated || x.sys.saturated[i] {
			continue
		}
		if x.coldPred {
			c.ResetPredictor()
		}
		if x.coldCaches {
			c.InvalidateCaches()
		}
	}
}

// allReached reports whether every active (non-saturated) core has retired
// everything before idx — i.e. the semaphore has reached the active count.
func (x *exceptionCoordinator) allReached(idx int64) bool {
	for i, c := range x.sys.cores {
		if x.sys.saturated[i] {
			continue
		}
		if c.Retired() < idx {
			return false
		}
	}
	return true
}

func (x *exceptionCoordinator) activeCores() int {
	n := 0
	for i := range x.sys.cores {
		if !x.sys.saturated[i] {
			n++
		}
	}
	return n
}
