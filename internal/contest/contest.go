// Package contest implements architectural contesting — the paper's primary
// contribution. N cores of a heterogeneous CMP concurrently execute the
// same dynamic instruction stream; each broadcasts its retired results on
// its global result bus (GRB) with a configurable core-to-core latency, and
// each consumes the other cores' results through per-sender result FIFOs.
//
// A core whose fetch counter has caught up with a result FIFO's pop counter
// is trailing (the paper's Scenario #2): it pairs arriving results with the
// instructions it fetches and completes them without executing them, which
// keeps it within a bounded lagging distance of the leader. When the
// workload behaviour changes, the core best suited to the new region drains
// its FIFO, runs ahead, and becomes the leader — no phase detection, no
// reconfiguration, no migration.
//
// Stores are performed redundantly in each core's private (write-through)
// hierarchy and merged below it by a synchronizing store queue, SRT-style:
// one merged instance proceeds to the shared level once every active core
// has performed the store. A core whose peak consume rate cannot keep up
// with the leader overflows its result FIFO and is detected as a saturated
// lagger; contesting is disabled for it, exactly as the paper prescribes.
package contest

import (
	"fmt"

	"archcontest/internal/pipeline"
	"archcontest/internal/ticks"
)

// Options configures a contested run.
type Options struct {
	// LatencyNs is the core-to-core (GRB propagation) latency in
	// nanoseconds. Zero selects the paper's default of 1ns.
	LatencyNs float64
	// MaxLag is the result-FIFO capacity in instructions: the maximum
	// lagging distance before a core is declared a saturated lagger. The
	// bound must cover the deepest window plus the drain transient of a
	// slow memory phase, so that only a *structural* rate mismatch (a
	// follower whose peak consume rate is below the leader's retire rate)
	// trips it. Zero selects 4096.
	MaxLag int
	// StoreQueueCap is the synchronizing store queue capacity in merged
	// store entries. A full queue backpressures retirement of stores.
	// Zero selects 256.
	StoreQueueCap int
	// RegionSize, if non-zero, logs per-region retirement times on every
	// core (the system-level region log is the winner's).
	RegionSize int
	// NoTrainOnInject disables predictor training on injected branches.
	NoTrainOnInject bool
	// ExceptionEvery, if non-zero, raises a synchronous exception at every
	// ExceptionEvery-th instruction: no core retires it before every active
	// core has reached it and the handler has run (paper Section 4.3).
	ExceptionEvery int64
	// ExceptionHandlerNs is the handler service time once all cores arrive
	// (0 selects 50ns when exceptions are enabled).
	ExceptionHandlerNs float64
	// ExceptionKillRefork models the older terminate-and-refork scheme
	// instead of the paper's parallelized handler: each non-designated
	// core adds a refork penalty of ExceptionReforkNs (0 selects 500ns).
	ExceptionKillRefork bool
	// ExceptionReforkNs is the per-core refork penalty under
	// ExceptionKillRefork.
	ExceptionReforkNs float64
	// ReforkWarmupNs charges an additional state-transfer interval per
	// reforked (non-designated) core under ExceptionKillRefork, on top of
	// ExceptionReforkNs: the time to re-establish the architectural and TLB
	// state the kill destroyed. Zero charges nothing, preserving existing
	// results bit-for-bit.
	ReforkWarmupNs float64
	// ReforkColdPredictor, under ExceptionKillRefork, resets the branch
	// predictor tables of every non-designated core when a kill-refork
	// barrier forms: the reforked thread re-trains from cold state, and the
	// warm-up mispredicts that follow are paid inside the simulation.
	ReforkColdPredictor bool
	// ReforkColdCaches, under ExceptionKillRefork, likewise invalidates the
	// non-designated cores' private cache hierarchies at each kill-refork
	// (statistics and port state are preserved).
	ReforkColdCaches bool
	// LeadChangeWarmupNs charges a post-hoc state-transfer interval per
	// lead change, modelling contesting variants where handing leadership
	// to another core is not free (e.g. migrating privileged state). It is
	// pure accounting: the charge is added to Result.Time after the run and
	// never alters the contest's dynamics. Zero charges nothing.
	LeadChangeWarmupNs float64
	// MaxTimeNs aborts runs exceeding the bound (0 = a generous default
	// derived from the trace length).
	MaxTimeNs float64
	// SingleStep forces the reference cycle-by-cycle scheduler instead of
	// the event-driven one. The two produce bit-identical results (the
	// golden-equivalence tests lock this); single-stepping exists as the
	// reference semantics and for debugging.
	SingleStep bool
	// Observer, if non-nil, attaches a verification observer to the system
	// (see internal/invariant). It never alters the run's result and is
	// excluded from result-cache keys; campaign layers must bypass their
	// caches when an observer is attached, or the checks silently don't
	// run.
	Observer Observer `json:"-"`
	// LegacySched selects the pre-rework heap-based ready queue on every
	// core (see pipeline.Options.LegacySched). It is a test-only shim for
	// the scheduler equivalence suite and must never enter a cache key:
	// both schedulers produce bit-identical results by construction.
	LegacySched bool `json:"-"`
}

// Observer observes a contested run for verification. Implementations
// inspect the system through its read-only accessors and must not mutate
// any simulation state.
type Observer interface {
	// Attach is called once from NewSystem, after the system is fully
	// constructed and before the first cycle.
	Attach(sys *System)
	// CoreChecker returns the per-core pipeline checker for core i, or nil.
	// It is called during system construction, before Attach.
	CoreChecker(core int) pipeline.Checker
	// AfterStep runs after every stepped core cycle (fast-forward jumps,
	// which change no state, are not seen). core is the stepped core.
	AfterStep(sys *System, core int)
}

func (o *Options) applyDefaults(n int) {
	if o.LatencyNs == 0 {
		o.LatencyNs = 1.0
	}
	if o.MaxLag == 0 {
		o.MaxLag = 4096
	}
	if o.StoreQueueCap == 0 {
		o.StoreQueueCap = 256
	}
	if o.ExceptionEvery > 0 && o.ExceptionHandlerNs == 0 {
		o.ExceptionHandlerNs = 50
	}
	if o.ExceptionKillRefork && o.ExceptionReforkNs == 0 {
		o.ExceptionReforkNs = 500
	}
	if o.MaxTimeNs == 0 {
		// At least 100ns, and 100ns per instruction of trace: two orders
		// of magnitude beyond any sane IPT in this repository.
		o.MaxTimeNs = 100 + 100*float64(n)
	}
}

// Result summarizes a contested run.
type Result struct {
	// Benchmark is the trace name; Cores the contestant names.
	Benchmark string
	Cores     []string
	// Insts is the trace length.
	Insts int64
	// Time is when the first core retired the last instruction.
	Time ticks.Time
	// Winner is the index of the core that finished first.
	Winner int
	// LeadChanges counts how often the identity of the most-retired core
	// changed during the run.
	LeadChanges int64
	// Saturated marks cores whose result FIFO overflowed (contesting was
	// disabled for them).
	Saturated []bool
	// PerCore holds each core's final counters.
	PerCore []pipeline.Stats
	// Regions is the winning core's per-region retirement log, if enabled.
	Regions []ticks.Time
	// StateTransfer is the total warm-up time charged for state transfer:
	// the kill-refork warm-up intervals (ReforkWarmupNs, already inside
	// Time via the rendezvous release) plus the post-hoc lead-change
	// charges (LeadChangeWarmupNs, added to Time after the run). Zero when
	// neither knob is set.
	StateTransfer ticks.Duration
}

// IPT reports the system's instructions per nanosecond.
func (r Result) IPT() float64 {
	ns := r.Time.Nanoseconds()
	if ns == 0 {
		return 0
	}
	return float64(r.Insts) / ns
}

// senderRing buffers the in-flight results of one remote core on their way
// into (and inside) this core's result FIFO: index range [lo, hi) with the
// arrival time of each. The pop-counter/fetch-counter protocol reduces to
// index arithmetic because results arrive in retirement order.
type senderRing struct {
	arr  []ticks.Time
	lo   int64 // oldest retained index (pop counter)
	hi   int64 // one past the newest retained index
	next int64 // next index the sender will broadcast
}

func newSenderRing(capacity int) *senderRing {
	return &senderRing{arr: make([]ticks.Time, capacity)}
}

// push records the arrival of result idx at time t. Results the receiver
// has already consumed past are dropped (Scenario #1's discarded late
// results). It reports false when the FIFO is full — the receiver is a
// saturated lagger.
func (s *senderRing) push(idx int64, t ticks.Time) bool {
	if idx != s.next {
		panic(fmt.Sprintf("contest: out-of-order GRB push %d, expected %d", idx, s.next))
	}
	s.next++
	if idx < s.lo {
		return true // receiver already fetched past this result
	}
	if idx-s.lo >= int64(len(s.arr)) {
		return false
	}
	s.arr[idx%int64(len(s.arr))] = t
	s.hi = idx + 1
	return true
}

func (s *senderRing) available(idx int64, t ticks.Time) bool {
	return idx >= s.lo && idx < s.hi && s.arr[idx%int64(len(s.arr))] <= t
}

// nextArrival reports the known arrival time of result idx, if the sender
// has already broadcast it (the result is retained, possibly still in
// flight).
func (s *senderRing) nextArrival(idx int64) (ticks.Time, bool) {
	if idx < s.lo || idx >= s.hi {
		return 0, false
	}
	return s.arr[idx%int64(len(s.arr))], true
}

func (s *senderRing) consumeThrough(idx int64) {
	if idx+1 > s.lo {
		s.lo = idx + 1
	}
	if s.lo > s.hi {
		s.hi = s.lo
	}
}

// feed is one core's view of the other cores' result buses; it implements
// pipeline.ResultFeed.
type feed struct {
	senders  []*senderRing
	disabled bool
}

func (f *feed) ResultAvailable(idx int64, t ticks.Time) bool {
	if f.disabled {
		return false
	}
	for _, s := range f.senders {
		if s.available(idx, t) {
			return true
		}
	}
	return false
}

func (f *feed) NextArrival(idx int64) (ticks.Time, bool) {
	if f.disabled {
		return 0, false
	}
	var best ticks.Time
	found := false
	for _, s := range f.senders {
		if at, ok := s.nextArrival(idx); ok && (!found || at < best) {
			best, found = at, true
		}
	}
	return best, found
}

func (f *feed) ConsumeThrough(idx int64) {
	for _, s := range f.senders {
		s.consumeThrough(idx)
	}
}

var _ pipeline.ResultFeed = (*feed)(nil)
