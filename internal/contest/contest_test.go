package contest

import (
	"testing"

	"archcontest/internal/branch"
	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/isa"
	"archcontest/internal/sim"
	"archcontest/internal/trace"
	"archcontest/internal/workload"
)

func fastCore(name string) config.CoreConfig {
	return config.CoreConfig{
		Name:          name,
		ClockPeriodNs: 0.25, FrontEndDepth: 6, Width: 4,
		ROBSize: 128, IQSize: 32, LSQSize: 64,
		WakeupLatency: 1, SchedDepth: 2, MemLatencyCycles: 200,
		L1D:       cache.Config{Sets: 64, Assoc: 2, BlockBytes: 64, LatencyCycles: 2},
		L2D:       cache.Config{Sets: 1024, Assoc: 8, BlockBytes: 128, LatencyCycles: 10},
		Predictor: branch.DefaultConfig(),
	}
}

func slowBigCore(name string) config.CoreConfig {
	return config.CoreConfig{
		Name:          name,
		ClockPeriodNs: 0.50, FrontEndDepth: 3, Width: 4,
		ROBSize: 512, IQSize: 64, LSQSize: 128,
		WakeupLatency: 0, SchedDepth: 1, MemLatencyCycles: 110,
		L1D:       cache.Config{Sets: 512, Assoc: 4, BlockBytes: 64, LatencyCycles: 2},
		L2D:       cache.Config{Sets: 4096, Assoc: 8, BlockBytes: 128, LatencyCycles: 12},
		Predictor: branch.DefaultConfig(),
	}
}

// tinyCore cannot keep up with wide cores: 1-wide at a slow clock.
func tinyCore(name string) config.CoreConfig {
	c := fastCore(name)
	c.Width = 1
	c.ClockPeriodNs = 0.50
	c.ROBSize = 16
	c.IQSize = 8
	c.LSQSize = 8
	return c
}

func TestNewSystemRejects(t *testing.T) {
	tr := workload.MustGenerate("gcc", 1000)
	one := []config.CoreConfig{fastCore("a")}
	if _, err := NewSystem(one, tr, Options{}); err == nil {
		t.Error("single core accepted")
	}
	pair := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	if _, err := NewSystem(pair, nil, Options{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := NewSystem(pair, tr, Options{LatencyNs: 0.001}); err == nil {
		t.Error("sub-tick latency accepted")
	}
	bad := pair
	bad[0].Width = 0
	if _, err := NewSystem(bad, tr, Options{}); err == nil {
		t.Error("invalid core accepted")
	}
}

func TestIdenticalCoresMatchSingleCore(t *testing.T) {
	// Contesting two identical cores must not be slower than one of them
	// (write-through single-core run for apples-to-apples).
	tr := workload.MustGenerate("gcc", 30000)
	cfg := fastCore("a")
	single := sim.MustRun(cfg, tr, sim.RunOptions{WritePolicy: cache.WriteThrough})
	res, err := Run([]config.CoreConfig{cfg, fastCore("b")}, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.IPT() / single.IPT()
	if ratio < 0.97 {
		t.Errorf("identical-pair contesting IPT ratio %.3f, want >= 0.97", ratio)
	}
}

func TestContestingAtLeastBestSingle(t *testing.T) {
	// The headline property: a contested pair performs at least as well as
	// the better core alone (minus a small transient tolerance).
	for _, bench := range []string{"twolf", "gcc", "bzip"} {
		tr := workload.MustGenerate(bench, 40000)
		a, b := fastCore("fast"), slowBigCore("big")
		sa := sim.MustRun(a, tr, sim.RunOptions{WritePolicy: cache.WriteThrough})
		sb := sim.MustRun(b, tr, sim.RunOptions{WritePolicy: cache.WriteThrough})
		best := sa.IPT()
		if sb.IPT() > best {
			best = sb.IPT()
		}
		res, err := Run([]config.CoreConfig{a, b}, tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.IPT() < 0.95*best {
			t.Errorf("%s: contest IPT %.3f below best single %.3f", bench, res.IPT(), best)
		}
	}
}

func TestInjectionHappens(t *testing.T) {
	tr := workload.MustGenerate("twolf", 30000)
	res, err := Run([]config.CoreConfig{fastCore("fast"), slowBigCore("big")}, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	injected := res.PerCore[0].Injected + res.PerCore[1].Injected
	if injected == 0 {
		t.Error("no results were ever injected")
	}
}

func TestLeadChangesOnPhaseDiverseTrace(t *testing.T) {
	tr := workload.MustGenerate("bzip", 60000)
	res, err := Run([]config.CoreConfig{fastCore("fast"), slowBigCore("big")}, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeadChanges == 0 {
		t.Error("lead never changed on a phase-diverse trace")
	}
}

func TestSaturatedLagger(t *testing.T) {
	tr := workload.MustGenerate("crafty", 30000)
	fast, tiny := fastCore("fast"), tinyCore("tiny")
	res, err := Run([]config.CoreConfig{fast, tiny}, tr, Options{MaxLag: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated[1] {
		t.Error("1-wide 2GHz core should saturate behind a 4-wide 4GHz core")
	}
	if res.Saturated[0] {
		t.Error("the leader should not be saturated")
	}
	if res.Winner != 0 {
		t.Errorf("winner %d, want the fast core", res.Winner)
	}
	// Saturation must not cost the leader much versus running alone.
	single := sim.MustRun(fast, tr, sim.RunOptions{WritePolicy: cache.WriteThrough})
	if res.IPT() < 0.9*single.IPT() {
		t.Errorf("saturated lagger dragged the leader from %.3f to %.3f IPT", single.IPT(), res.IPT())
	}
}

func TestDeterminism(t *testing.T) {
	tr := workload.MustGenerate("vpr", 20000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b")}
	r1, err := Run(cfgs, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfgs, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != r2.Time || r1.Winner != r2.Winner || r1.LeadChanges != r2.LeadChanges {
		t.Errorf("contest runs differ: %+v vs %+v", r1.Time, r2.Time)
	}
}

func TestLatencyHurts(t *testing.T) {
	tr := workload.MustGenerate("twolf", 40000)
	cfgs := []config.CoreConfig{fastCore("fast"), slowBigCore("big")}
	fastLat, err := Run(cfgs, tr, Options{LatencyNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	slowLat, err := Run(cfgs, tr, Options{LatencyNs: 100})
	if err != nil {
		t.Fatal(err)
	}
	if slowLat.IPT() > fastLat.IPT()*1.02 {
		t.Errorf("100ns latency IPT %.3f should not beat 1ns IPT %.3f", slowLat.IPT(), fastLat.IPT())
	}
}

func TestRegionLogging(t *testing.T) {
	tr := workload.MustGenerate("gcc", 10000)
	res, err := Run([]config.CoreConfig{fastCore("a"), slowBigCore("b")}, tr, Options{RegionSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 10000/20 {
		t.Errorf("%d regions, want 500", len(res.Regions))
	}
}

func TestStoreQueueMergesEachStoreOnce(t *testing.T) {
	tr := workload.MustGenerate("twolf", 20000)
	s, err := NewSystem([]config.CoreConfig{fastCore("a"), slowBigCore("b")}, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var merged []int64
	s.queue.Merged = func(idx int64, addr uint64) { merged = append(merged, idx) }
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Every merged index must be a store, unique, and in program order.
	seen := map[int64]bool{}
	last := int64(-1)
	for _, idx := range merged {
		if tr.At(idx).Op != isa.OpStore {
			t.Fatalf("merged non-store %d", idx)
		}
		if seen[idx] {
			t.Fatalf("store %d merged twice", idx)
		}
		seen[idx] = true
		if idx <= last {
			t.Fatalf("merge order violated: %d after %d", idx, last)
		}
		last = idx
	}
	if len(merged) == 0 {
		t.Fatal("no stores merged")
	}
	// The winner retired every store; each must have merged (the loser's
	// pending instances may remain only for stores the winner retired but
	// the loser did not — those merge on the winner's instance alone only
	// after the loser is disabled, so allow pending leftovers).
	if int64(len(merged)) > countStores(tr) {
		t.Fatalf("merged %d stores, trace has %d", len(merged), countStores(tr))
	}
}

func countStores(tr *trace.Trace) int64 {
	var n int64
	for i := int64(0); i < int64(tr.Len()); i++ {
		if tr.At(i).Op == isa.OpStore {
			n++
		}
	}
	return n
}

func TestSenderRing(t *testing.T) {
	r := newSenderRing(4)
	if !r.push(0, 100) || !r.push(1, 110) || !r.push(2, 120) || !r.push(3, 130) {
		t.Fatal("pushes into empty ring failed")
	}
	if r.push(4, 140) {
		t.Error("push into full ring succeeded")
	}
	if !r.available(0, 100) {
		t.Error("arrived result unavailable")
	}
	if r.available(0, 99) {
		t.Error("future result available")
	}
	if r.available(4, 1000) {
		t.Error("unpushed result available")
	}
	r.consumeThrough(1)
	if r.available(1, 1000) {
		t.Error("consumed result still available")
	}
	// The sender's sequence advances even on a refused push (a refusal
	// saturates the receiver in the real system); the next broadcast index
	// is 5, and after the consume there is room for it.
	if !r.push(5, 150) {
		t.Error("push after consume failed")
	}
	if !r.available(5, 150) {
		t.Error("pushed result unavailable")
	}
}

func TestSenderRingOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := newSenderRing(4)
	r.push(1, 100)
}

func TestStoreQueueUnit(t *testing.T) {
	q := NewStoreQueue(2, 2)
	var merged []int64
	q.Merged = func(idx int64, addr uint64) { merged = append(merged, idx) }

	if !q.CanAccept(0) {
		t.Fatal("empty queue refuses")
	}
	q.Performed(0, 10, 0x100)
	q.Performed(0, 20, 0x200)
	if q.Pending() != 2 {
		t.Fatalf("pending %d", q.Pending())
	}
	// Full: core 0's next store would need a new entry.
	if q.CanAccept(0) {
		t.Error("full queue accepted a new entry")
	}
	// Core 1 is behind: its next store (10) has an entry.
	if !q.CanAccept(1) {
		t.Error("full queue refused a matching instance")
	}
	q.Performed(1, 10, 0x100)
	if len(merged) != 1 || merged[0] != 10 {
		t.Fatalf("merged %v, want [10]", merged)
	}
	if q.Pending() != 1 {
		t.Fatalf("pending %d after merge", q.Pending())
	}
	// Disabling core 1 releases the rest.
	q.DisableCore(1)
	if len(merged) != 2 || merged[1] != 20 {
		t.Fatalf("merged %v after disable, want [10 20]", merged)
	}
	if q.MergedCount() != 2 {
		t.Fatalf("merged count %d", q.MergedCount())
	}
	// Disabled core instances are ignored.
	q.Performed(1, 30, 0x300)
	if q.Pending() != 0 {
		t.Error("disabled core allocated an entry")
	}
}

func TestStoreQueuePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero cores":    func() { NewStoreQueue(0, 4) },
		"many cores":    func() { NewStoreQueue(65, 4) },
		"zero capacity": func() { NewStoreQueue(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestThreeWayContesting(t *testing.T) {
	tr := workload.MustGenerate("gcc", 30000)
	cfgs := []config.CoreConfig{fastCore("a"), slowBigCore("b"), fastCore("c")}
	cfgs[2].ClockPeriodNs = 0.33
	cfgs[2].Name = "c"
	res, err := Run(cfgs, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 30000 {
		t.Errorf("insts %d", res.Insts)
	}
	best := 0.0
	for _, cfg := range cfgs {
		r := sim.MustRun(cfg, tr, sim.RunOptions{WritePolicy: cache.WriteThrough})
		if r.IPT() > best {
			best = r.IPT()
		}
	}
	if res.IPT() < 0.95*best {
		t.Errorf("3-way contest IPT %.3f below best single %.3f", res.IPT(), best)
	}
}
