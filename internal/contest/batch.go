package contest

import (
	"context"
	"sync"
	"sync/atomic"

	"archcontest/internal/config"
	"archcontest/internal/pipeline"
	"archcontest/internal/trace"
)

// BatchItem is one independent contest of a batch run.
type BatchItem struct {
	Configs []config.CoreConfig
	Trace   *trace.Trace
	Opts    Options
}

// BatchOptions configures RunBatch.
type BatchOptions struct {
	// Workers is the number of goroutines executing contests (0 or 1 means
	// one worker).
	Workers int
	// GroupSize is how many contest systems one worker interleaves in a
	// quantum round-robin (0 means 2; a contest system already holds
	// several cores, so groups stay smaller than the single-core batch
	// default). Grouping bounds a worker's working set while amortizing
	// claim overhead across jobs.
	GroupSize int
	// Quantum is how many scheduler iterations each live system advances
	// per round-robin pass (0 means pipeline.DefaultQuantum).
	Quantum int
}

// batchPollPasses matches sim.batchPollPasses: round-robin passes between
// context polls. One pass bounds cancellation latency to a quantum of
// scheduler iterations per live system.
const batchPollPasses = 1

// RunBatch executes a set of independent contests and returns their results
// in item order, each bit-identical to what RunContext would return for the
// same item (asserted by the contest batch equivalence suite). Workers
// split the items into groups; each group's systems advance in a quantum
// round-robin, so a worker's instruction-window and sender-ring working set
// cycles through a bounded set of systems instead of thrashing one giant
// one. All cross-core state — sender rings, the GRB broadcast bounds, the
// store queue, the exception rendezvous — is owned by its System, so any
// interleaving of whole systems preserves per-system determinism.
//
// The first contest error (including a MaxTimeNs overrun) cancels the
// remaining work and is returned; ctx cancellation is honored between
// passes.
func RunBatch(ctx context.Context, items []BatchItem, opts BatchOptions) ([]Result, error) {
	if len(items) == 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	group := opts.GroupSize
	if group < 1 {
		group = 2
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(items))
	var firstErr atomic.Value // error
	fail := func(err error) {
		if err == nil {
			return
		}
		if firstErr.CompareAndSwap(nil, err) {
			cancel()
		}
	}

	var next atomic.Int64 // next unclaimed item index, claimed group at a time
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(group))) - group
				if lo >= len(items) {
					return
				}
				hi := lo + group
				if hi > len(items) {
					hi = len(items)
				}
				if err := runContestGroup(ctx, items[lo:hi], results[lo:hi], opts.Quantum); err != nil {
					fail(err)
					return
				}
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// runContestGroup executes one group of contests as interleaved runners,
// writing each item's Result into the parallel results slice.
func runContestGroup(ctx context.Context, items []BatchItem, results []Result, quantum int) error {
	if quantum < 1 {
		quantum = pipeline.DefaultQuantum
	}
	type slot struct {
		sys *System
		run *runner
	}
	slots := make([]slot, 0, len(items))
	idx := make([]int, 0, len(items)) // item index of each slot
	for i, it := range items {
		if it.Opts.SingleStep {
			// Single-stepping is the reference semantics for debugging; it
			// gains nothing from interleaving, so run it directly.
			r, err := RunContext(ctx, it.Configs, it.Trace, it.Opts)
			if err != nil {
				return err
			}
			results[i] = r
			continue
		}
		s, err := NewSystem(it.Configs, it.Trace, it.Opts)
		if err != nil {
			return err
		}
		slots = append(slots, slot{sys: s, run: s.newRunner()})
		idx = append(idx, i)
	}

	done := ctx.Done()
	live := len(slots)
	passes := 0
	for live > 0 {
		for j := range slots {
			sl := &slots[j]
			if sl.run == nil {
				continue
			}
			fin, err := sl.run.advance(quantum)
			if err != nil {
				return err
			}
			if fin {
				results[idx[j]] = sl.sys.result(sl.run.winner)
				sl.run = nil
				live--
			}
		}
		if done != nil {
			if passes++; passes >= batchPollPasses {
				passes = 0
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
		}
	}
	return nil
}
