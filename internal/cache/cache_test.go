package cache

import (
	"testing"
	"testing/quick"

	"archcontest/internal/xrand"
)

func cfg(sets, assoc, block, lat int) Config {
	return Config{Sets: sets, Assoc: assoc, BlockBytes: block, LatencyCycles: lat}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		cfg(1, 1, 8, 1),
		cfg(1024, 4, 64, 3),
		cfg(32, 16, 512, 12),
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
	bad := []Config{
		cfg(0, 1, 8, 1),
		cfg(3, 1, 8, 1),  // not power of two
		cfg(8, 0, 8, 1),  // zero assoc
		cfg(8, 1, 0, 1),  // zero block
		cfg(8, 1, 48, 1), // non-power-of-two block
		cfg(8, 1, 8, 0),  // zero latency
		cfg(8, 1, 8, -1), // negative latency
		cfg(-8, 1, 8, 1), // negative sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%v accepted", c)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	c := cfg(1024, 2, 32, 2) // bzip L1D
	if got := c.SizeBytes(); got != 64*1024 {
		t.Errorf("size = %d, want 64KB", got)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew(cfg(16, 2, 64, 1))
	if hit, _ := c.Access(0x1000, false); hit {
		t.Fatal("first access should miss")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access should hit")
	}
	// Same block, different offset.
	if hit, _ := c.Access(0x103f, false); !hit {
		t.Fatal("same-block access should hit")
	}
	// Next block misses.
	if hit, _ := c.Access(0x1040, false); hit {
		t.Fatal("next block should miss")
	}
}

func TestLRUReplacement(t *testing.T) {
	// Direct-mapped-by-set: 1 set total exposes pure LRU ordering.
	c := MustNew(cfg(1, 2, 64, 1))
	c.Access(0x0000, false) // A
	c.Access(0x1000, false) // B; set is {A,B}, LRU=A
	c.Access(0x0000, false) // touch A; LRU=B
	c.Access(0x2000, false) // C evicts B
	if !c.Probe(0x0000) {
		t.Error("A should still be resident")
	}
	if c.Probe(0x1000) {
		t.Error("B should have been evicted")
	}
	if !c.Probe(0x2000) {
		t.Error("C should be resident")
	}
}

func TestConflictMisses(t *testing.T) {
	// Direct-mapped: two blocks mapping to the same set thrash.
	c := MustNew(cfg(4, 1, 64, 1))
	a := uint64(0x0000)
	b := a + 4*64 // same set, different tag
	c.Access(a, false)
	c.Access(b, false)
	if c.Probe(a) {
		t.Error("direct-mapped conflict should have evicted a")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := MustNew(cfg(1, 1, 64, 1))
	c.Access(0x0000, true) // dirty fill
	_, wb := c.Access(0x1000, false)
	if !wb {
		t.Error("evicting a dirty line should report a writeback")
	}
	_, wb = c.Access(0x2000, false)
	if wb {
		t.Error("evicting a clean line should not report a writeback")
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestStats(t *testing.T) {
	c := MustNew(cfg(16, 2, 64, 1))
	for i := 0; i < 10; i++ {
		c.Access(uint64(i)*64, false)
	}
	for i := 0; i < 10; i++ {
		c.Access(uint64(i)*64, false)
	}
	if c.Stats.Accesses != 20 || c.Stats.Misses != 10 {
		t.Errorf("stats = %+v, want 20 accesses 10 misses", c.Stats)
	}
	if mr := c.Stats.MissRate(); mr != 0.5 {
		t.Errorf("miss rate = %g, want 0.5", mr)
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty stats miss rate should be 0")
	}
}

func TestReset(t *testing.T) {
	c := MustNew(cfg(16, 2, 64, 1))
	c.Access(0x40, false)
	c.Reset()
	if c.Probe(0x40) {
		t.Error("line survives reset")
	}
	if c.Stats.Accesses != 0 {
		t.Error("stats survive reset")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(cfg(16, 2, 64, 2), cfg(256, 4, 64, 10), 100, WriteBack)
	if err != nil {
		t.Fatal(err)
	}
	// Cold: L1 miss + L2 miss + memory.
	if lat := h.Load(0x4000, 0); lat != 2+10+100 {
		t.Errorf("cold load latency %d, want 112", lat)
	}
	// Warm L1.
	if lat := h.Load(0x4000, 0); lat != 2 {
		t.Errorf("L1-hit latency %d, want 2", lat)
	}
	// Evict from L1 only: larger L2 keeps the block. Space the accesses out
	// in time so the L2 port queue is idle for the final probe.
	for i := 1; i <= 32; i++ {
		h.Load(uint64(0x4000+i*16*64), int64(i)*200) // same L1 set region, fill L1
	}
	lat := h.Load(0x4000, 10_000)
	if lat != 2+10 {
		t.Errorf("L2-hit latency %d, want 12", lat)
	}
}

func TestL2PortQueueing(t *testing.T) {
	h, err := NewHierarchy(cfg(16, 2, 64, 2), cfg(256, 4, 64, 10), 100, WriteBack)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct blocks, all issued at cycle 0: each L2 access occupies the
	// port, so the k-th should be delayed by ~k*L2OccupancyCycles.
	first := h.Load(0x10000, 0)
	var last int
	for i := 1; i < 8; i++ {
		last = h.Load(uint64(0x10000+i*64), 0)
	}
	if last < first+6*int(L2OccupancyCycles(64)) {
		t.Errorf("8th simultaneous miss latency %d vs first %d: expected L2 port queueing", last, first)
	}
}

func TestMemChannelQueueing(t *testing.T) {
	h, err := NewHierarchy(cfg(2, 1, 64, 1), cfg(2, 1, 64, 2), 100, WriteBack)
	if err != nil {
		t.Fatal(err)
	}
	first := h.Load(0x10000, 0)
	var last int
	for i := 1; i < 4; i++ {
		last = h.Load(uint64(0x10000+i*1024), 0)
	}
	if last < first+3*int(MemOccupancyCycles(64)) {
		t.Errorf("4th simultaneous memory miss latency %d vs first %d: expected channel queueing", last, first)
	}
}

func TestHierarchyWriteThroughStore(t *testing.T) {
	h, err := NewHierarchy(cfg(16, 2, 64, 2), cfg(256, 4, 64, 10), 100, WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	if lat := h.Store(0x8000, 0); lat != 2 {
		t.Errorf("write-through store latency %d, want L1 port time 2", lat)
	}
	// The store allocated in L2 (write-through propagates).
	if !h.L2.Probe(0x8000) {
		t.Error("write-through store should install the block in L2")
	}
}

func TestHierarchyWriteBackStore(t *testing.T) {
	h, err := NewHierarchy(cfg(16, 2, 64, 2), cfg(256, 4, 64, 10), 100, WriteBack)
	if err != nil {
		t.Fatal(err)
	}
	if lat := h.Store(0x8000, 0); lat != 112 {
		t.Errorf("cold write-back store latency %d, want 112 (allocate)", lat)
	}
	if lat := h.Store(0x8000, 0); lat != 2 {
		t.Errorf("warm write-back store latency %d, want 2", lat)
	}
}

func TestNewHierarchyRejectsInvalid(t *testing.T) {
	good := cfg(16, 2, 64, 2)
	if _, err := NewHierarchy(cfg(0, 1, 8, 1), good, 100, WriteBack); err == nil {
		t.Error("bad L1 accepted")
	}
	if _, err := NewHierarchy(good, cfg(0, 1, 8, 1), 100, WriteBack); err == nil {
		t.Error("bad L2 accepted")
	}
	if _, err := NewHierarchy(good, good, 0, WriteBack); err == nil {
		t.Error("zero memory latency accepted")
	}
}

func TestWritePolicyString(t *testing.T) {
	if WriteThrough.String() != "write-through" || WriteBack.String() != "write-back" {
		t.Error("policy names wrong")
	}
}

// Property: a cache never holds more distinct blocks than its capacity, and
// an immediate re-access of the most recent address always hits.
func TestMRUHitsProperty(t *testing.T) {
	f := func(seed uint64, setsPow, assocRaw uint8) bool {
		sets := 1 << (setsPow%6 + 1)
		assoc := int(assocRaw)%4 + 1
		c := MustNew(cfg(sets, assoc, 64, 1))
		r := xrand.New(seed)
		for i := 0; i < 500; i++ {
			addr := uint64(r.Intn(1 << 16))
			c.Access(addr, r.Bool(0.3))
			if !c.Probe(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: miss count never exceeds access count, and working sets that fit
// in the cache converge to zero misses on re-traversal.
func TestFittingWorkingSetProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c := MustNew(cfg(64, 4, 64, 1)) // 16KB
		// Working set: 128 blocks = 8KB, fits with room to spare.
		var addrs []uint64
		r := xrand.New(seed)
		for i := 0; i < 128; i++ {
			addrs = append(addrs, uint64(i)*64+uint64(r.Intn(32)))
		}
		for pass := 0; pass < 2; pass++ {
			for _, a := range addrs {
				c.Access(a, false)
			}
		}
		before := c.Stats.Misses
		for _, a := range addrs {
			c.Access(a, false)
		}
		return c.Stats.Misses == before && c.Stats.Misses <= c.Stats.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
