package cache

import (
	"strings"
	"testing"
)

// TestNewRejectsBadGeometry is the satellite table test: every malformed
// geometry or unresolvable component name surfaces as a returned error
// (never a panic), from both New and NewHierarchy.
func TestNewRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero sets", cfg(0, 1, 8, 1), "sets"},
		{"non-pow2 sets", cfg(3, 1, 8, 1), "sets"},
		{"negative sets", cfg(-8, 1, 8, 1), "sets"},
		{"zero assoc", cfg(8, 0, 8, 1), "associativity"},
		{"zero block", cfg(8, 1, 0, 1), "block"},
		{"non-pow2 block", cfg(8, 1, 48, 1), "block"},
		{"zero latency", cfg(8, 1, 8, 0), "latency"},
		{"negative latency", cfg(8, 1, 8, -1), "latency"},
		{"unknown policy", Config{Sets: 8, Assoc: 2, BlockBytes: 64, LatencyCycles: 1, Replacement: "no-such"}, "replacement"},
		{"params on lru", Config{Sets: 8, Assoc: 2, BlockBytes: 64, LatencyCycles: 1, ReplParams: "x"}, "params"},
		{"params on named lru", Config{Sets: 8, Assoc: 2, BlockBytes: 64, LatencyCycles: 1, Replacement: "lru", ReplParams: "x"}, "params"},
		{"params on random", Config{Sets: 8, Assoc: 2, BlockBytes: 64, LatencyCycles: 1, Replacement: "random", ReplParams: "x"}, "params"},
	}
	good := cfg(8, 2, 64, 1)
	for _, tc := range cases {
		c, err := New(tc.cfg)
		if err == nil || c != nil {
			t.Errorf("New(%s): accepted (%v, %v)", tc.name, c != nil, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("New(%s): error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, herr := NewHierarchy(tc.cfg, good, 100, WriteThrough); herr == nil {
			t.Errorf("NewHierarchy(L1=%s): accepted", tc.name)
		}
		if _, herr := NewHierarchy(good, tc.cfg, 100, WriteThrough); herr == nil {
			t.Errorf("NewHierarchy(L2=%s): accepted", tc.name)
		}
	}
	if _, err := NewHierarchy(good, good, 0, WriteThrough); err == nil {
		t.Error("NewHierarchy accepted zero memory latency")
	}
}

func TestReplacerRegistry(t *testing.T) {
	names := ReplacerNames()
	for _, want := range []string{"lru", "random", "srrip"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("ReplacerNames() = %v missing %q", names, want)
		}
	}
	factory := func(sets, assoc int, params string) (Replacer, error) { return nil, nil }
	for _, reserved := range []string{"", "lru"} {
		if err := RegisterReplacer(reserved, factory); err == nil {
			t.Errorf("reserved name %q accepted", reserved)
		}
	}
	if err := RegisterReplacer("random", factory); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := RegisterReplacer("repl-test-nil", nil); err == nil {
		t.Error("nil factory accepted")
	}
}

// TestLRUNamesAreDefaultFastPath pins that "" and "lru" build the fused
// fast path (nil Replacer), so naming the default costs nothing.
func TestLRUNamesAreDefaultFastPath(t *testing.T) {
	for _, name := range []string{"", "lru"} {
		c := MustNew(Config{Sets: 16, Assoc: 2, BlockBytes: 64, LatencyCycles: 1, Replacement: name})
		if c.repl != nil {
			t.Errorf("Replacement=%q built a Replacer; want fused LRU", name)
		}
	}
	c := MustNew(Config{Sets: 16, Assoc: 2, BlockBytes: 64, LatencyCycles: 1, Replacement: "srrip"})
	if c.repl == nil {
		t.Error("srrip did not build a Replacer")
	}
}

// replay drives the same access sequence through a cache and returns the
// hit pattern.
func replay(c *Cache, addrs []uint64) []bool {
	hits := make([]bool, len(addrs))
	for i, a := range addrs {
		hits[i], _ = c.Access(a, false)
	}
	return hits
}

func conflictStream(sets, block int, n int) []uint64 {
	// Addresses that all map to set 0 with rotating tags, plus a re-used
	// hot line, so replacement policy decisions matter.
	stride := uint64(sets * block)
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			out = append(out, 0) // hot line
		} else {
			out = append(out, stride*uint64(1+i%7))
		}
	}
	return out
}

func TestReplacerDeterministicAndResetCold(t *testing.T) {
	for _, policy := range []string{"random", "srrip"} {
		cf := Config{Sets: 4, Assoc: 2, BlockBytes: 64, LatencyCycles: 1, Replacement: policy}
		stream := conflictStream(4, 64, 200)
		a, b := MustNew(cf), MustNew(cf)
		ha, hb := replay(a, stream), replay(b, stream)
		for i := range ha {
			if ha[i] != hb[i] {
				t.Fatalf("%s: two instances diverged at access %d", policy, i)
			}
		}
		a.Reset()
		hc := replay(a, stream)
		for i := range ha {
			if ha[i] != hc[i] {
				t.Fatalf("%s: post-Reset replay diverged at access %d", policy, i)
			}
		}
		if a.Stats.Accesses != uint64(len(stream)) {
			t.Fatalf("%s: stats not maintained on replacer path", policy)
		}
	}
}

func TestSRRIPProtectsReusedLine(t *testing.T) {
	// 1-set, 4-way cache: touch the hot line often (RRPV pinned at 0),
	// stream conflicting tags through; the hot line must survive.
	cf := Config{Sets: 1, Assoc: 4, BlockBytes: 64, LatencyCycles: 1, Replacement: "srrip"}
	c := MustNew(cf)
	hot := uint64(0)
	c.Access(hot, false)
	for i := 1; i <= 40; i++ {
		c.Access(uint64(i)*64, false)
		if hit, _ := c.Access(hot, false); !hit {
			t.Fatalf("hot line evicted after %d conflicting fills", i)
		}
	}
}

func TestRandomPolicyDiffersFromLRU(t *testing.T) {
	// Sanity that the seam actually changes behaviour: on a conflict-heavy
	// stream, random replacement and true LRU must disagree on at least
	// one access.
	stream := conflictStream(4, 64, 400)
	lru := MustNew(cfg(4, 2, 64, 1))
	rnd := MustNew(Config{Sets: 4, Assoc: 2, BlockBytes: 64, LatencyCycles: 1, Replacement: "random"})
	hl, hr := replay(lru, stream), replay(rnd, stream)
	same := true
	for i := range hl {
		if hl[i] != hr[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("random replacement replayed identically to LRU on a conflict stream")
	}
}

func TestPrefillBypassesDemandStats(t *testing.T) {
	c := MustNew(cfg(16, 2, 64, 1))
	if !c.Prefill(0x1000) {
		t.Fatal("prefill of absent block reported no fill")
	}
	if c.Prefill(0x1000) {
		t.Fatal("prefill of resident block reported a fill")
	}
	if c.Stats.Accesses != 0 || c.Stats.Misses != 0 {
		t.Fatalf("prefill touched demand stats: %+v", c.Stats)
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Fatal("prefilled block did not hit")
	}
}

func TestPrefetcherRegistry(t *testing.T) {
	names := PrefetcherNames()
	for _, want := range []string{"nextline", "stride"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("PrefetcherNames() = %v missing %q", names, want)
		}
	}
	factory := func(blockBytes int, params string) (Prefetcher, error) { return nil, nil }
	if err := RegisterPrefetcher("", factory); err == nil {
		t.Error("empty name accepted")
	}
	if err := RegisterPrefetcher("nextline", factory); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := (PrefetchConfig{Name: "no-such"}).Validate(); err == nil {
		t.Error("unknown prefetcher validated")
	}
	if err := (PrefetchConfig{Params: "x"}).Validate(); err == nil {
		t.Error("params without a name validated")
	}
	if err := (PrefetchConfig{}).Validate(); err != nil {
		t.Errorf("zero config: %v", err)
	}
}

func newTestHierarchy(t *testing.T, pf PrefetchConfig) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(cfg(16, 2, 64, 1), cfg(64, 4, 64, 4), 100, WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AttachPrefetcher(pf); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNextLinePrefetchFillsAhead(t *testing.T) {
	h := newTestHierarchy(t, PrefetchConfig{Name: "nextline"})
	now := int64(0)
	h.Load(0x10000, now) // miss; prefetches 0x10040
	if h.Prefetches == 0 {
		t.Fatal("no prefetch issued on a demand miss")
	}
	if !h.L1.Probe(0x10040) || !h.L2.Probe(0x10040) {
		t.Fatal("next line not resident after prefetch")
	}
	misses := h.L1.Stats.Misses
	if lat := h.Load(0x10040, 1000); lat != int(h.l1Lat) {
		t.Fatalf("prefetched line cost %d cycles, want L1 hit (%d)", lat, h.l1Lat)
	}
	if h.L1.Stats.Misses != misses {
		t.Fatal("prefetched line missed")
	}
}

func TestStridePrefetchLearnsStream(t *testing.T) {
	h := newTestHierarchy(t, PrefetchConfig{Name: "stride"})
	const stride = 128
	var demandMissesLate uint64
	for i := 0; i < 64; i++ {
		before := h.L1.Stats.Misses
		h.Load(uint64(0x40000+i*stride), int64(i*500))
		if i >= 8 && h.L1.Stats.Misses != before {
			demandMissesLate++
		}
	}
	if demandMissesLate != 0 {
		t.Fatalf("stride prefetcher left %d misses in a steady stream", demandMissesLate)
	}
	if h.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
}

// TestNilPrefetcherIsIdentical pins the no-op guarantee: a hierarchy with
// the zero PrefetchConfig replays exactly like one never attached.
func TestNilPrefetcherIsIdentical(t *testing.T) {
	plain, err := NewHierarchy(cfg(16, 2, 64, 1), cfg(64, 4, 64, 4), 100, WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	attached := newTestHierarchy(t, PrefetchConfig{})
	for i := 0; i < 500; i++ {
		addr := uint64(i*52) % 8192
		now := int64(i * 3)
		if i%5 == 0 {
			if a, b := plain.Store(addr, now), attached.Store(addr, now); a != b {
				t.Fatalf("store %d: %d != %d", i, a, b)
			}
			continue
		}
		if a, b := plain.Load(addr, now), attached.Load(addr, now); a != b {
			t.Fatalf("load %d: %d != %d", i, a, b)
		}
	}
	if attached.Prefetches != 0 {
		t.Fatal("nil prefetcher issued prefetches")
	}
}
