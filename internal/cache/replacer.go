package cache

import (
	"fmt"
	"sort"
	"sync"
)

// Replacer is the replacement-policy half of the cache SPI. A cache level
// with a non-default policy delegates its victim choice to a Replacer; the
// cache itself keeps owning tags, validity, and dirty state. Way indices
// are relative to the set.
//
// The contract mirrors the predictor SPI: a Replacer must be deterministic
// (same call sequence, same victims), Reset must restore the cold state,
// and Touch/Insert/Victim must not allocate — they run inside the
// simulator's per-access hot path.
//
// The true-LRU default is NOT expressed through this interface: when a
// Config names no policy (or names "lru"), the cache keeps its fused
// single-pass probe with the stamp-based LRU victim choice, bit-identical
// to the pre-SPI engine. The interface path is taken only for non-default
// policies.
type Replacer interface {
	// Touch records a hit on way w of the set.
	Touch(set, way int)
	// Insert records a fill into way w of the set (after Victim chose it,
	// or after the cache picked an invalid way directly).
	Insert(set, way int)
	// Victim chooses the way to evict from a full set.
	Victim(set int) int
	// Reset restores the cold (post-construction) state.
	Reset()
}

// ReplacerFactory builds a replacement policy for a level's geometry.
// params is the opaque Config.ReplParams string.
type ReplacerFactory func(sets, assoc int, params string) (Replacer, error)

var (
	replMu        sync.RWMutex
	replFactories = map[string]ReplacerFactory{}
)

// RegisterReplacer adds a replacement policy under the given name. The
// names "" and "lru" denote the built-in true-LRU fast path and cannot be
// registered over.
func RegisterReplacer(name string, f ReplacerFactory) error {
	if name == "" || name == "lru" {
		return fmt.Errorf("cache: replacement policy name %q is reserved", name)
	}
	if f == nil {
		return fmt.Errorf("cache: replacement policy %q registered with nil factory", name)
	}
	replMu.Lock()
	defer replMu.Unlock()
	if _, dup := replFactories[name]; dup {
		return fmt.Errorf("cache: replacement policy %q already registered", name)
	}
	replFactories[name] = f
	return nil
}

// ReplacerNames lists every selectable replacement policy, "lru" (the
// default) included, in sorted order.
func ReplacerNames() []string {
	replMu.RLock()
	names := make([]string, 0, len(replFactories)+1)
	for n := range replFactories {
		names = append(names, n)
	}
	replMu.RUnlock()
	names = append(names, "lru")
	sort.Strings(names)
	return names
}

// newReplacer resolves a policy name. The empty name and "lru" resolve to
// nil — the caller keeps the fused LRU fast path.
func newReplacer(name string, sets, assoc int, params string) (Replacer, error) {
	if name == "" || name == "lru" {
		if params != "" {
			return nil, fmt.Errorf("cache: built-in LRU takes no params, got %q", params)
		}
		return nil, nil
	}
	replMu.RLock()
	f, ok := replFactories[name]
	replMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cache: unknown replacement policy %q", name)
	}
	r, err := f(sets, assoc, params)
	if err != nil {
		return nil, fmt.Errorf("cache: replacement policy %q: %w", name, err)
	}
	if r == nil {
		return nil, fmt.Errorf("cache: replacement policy %q returned nil", name)
	}
	return r, nil
}

// validReplacerName reports whether the name resolves without building.
func validReplacerName(name string) bool {
	if name == "" || name == "lru" {
		return true
	}
	replMu.RLock()
	_, ok := replFactories[name]
	replMu.RUnlock()
	return ok
}

// randomReplacer evicts a pseudo-random way. The xorshift stream is seeded
// from the geometry, so victim sequences are a pure function of the level's
// shape and the access sequence — deterministic across runs and processes.
type randomReplacer struct {
	assoc uint64
	seed  uint64
	x     uint64
}

func newRandomReplacer(sets, assoc int, params string) (Replacer, error) {
	if params != "" {
		return nil, fmt.Errorf("random policy takes no params, got %q", params)
	}
	seed := uint64(sets)*0x9e3779b97f4a7c15 + uint64(assoc)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	return &randomReplacer{assoc: uint64(assoc), seed: seed, x: seed}, nil
}

func (r *randomReplacer) Touch(set, way int)  {}
func (r *randomReplacer) Insert(set, way int) {}
func (r *randomReplacer) Victim(set int) int {
	r.x ^= r.x << 13
	r.x ^= r.x >> 7
	r.x ^= r.x << 17
	return int(r.x % r.assoc)
}
func (r *randomReplacer) Reset() { r.x = r.seed }

// srripReplacer is an SRRIP-style policy (Jaleel et al., ISCA 2010): each
// line carries a 2-bit re-reference prediction value; fills insert at RRPV
// 2 ("long re-reference"), hits promote to 0, and the victim is the first
// way at RRPV 3, aging the whole set when none is.
type srripReplacer struct {
	assoc int
	rrpv  []uint8
}

const srripMax = 3

func newSRRIPReplacer(sets, assoc int, params string) (Replacer, error) {
	if params != "" {
		return nil, fmt.Errorf("srrip policy takes no params, got %q", params)
	}
	s := &srripReplacer{assoc: assoc, rrpv: make([]uint8, sets*assoc)}
	s.Reset()
	return s, nil
}

func (s *srripReplacer) Touch(set, way int)  { s.rrpv[set*s.assoc+way] = 0 }
func (s *srripReplacer) Insert(set, way int) { s.rrpv[set*s.assoc+way] = srripMax - 1 }
func (s *srripReplacer) Victim(set int) int {
	base := set * s.assoc
	for {
		for w := 0; w < s.assoc; w++ {
			if s.rrpv[base+w] == srripMax {
				return w
			}
		}
		for w := 0; w < s.assoc; w++ {
			s.rrpv[base+w]++
		}
	}
}
func (s *srripReplacer) Reset() {
	for i := range s.rrpv {
		s.rrpv[i] = srripMax
	}
}

func init() {
	if err := RegisterReplacer("random", newRandomReplacer); err != nil {
		panic(err)
	}
	if err := RegisterReplacer("srrip", newSRRIPReplacer); err != nil {
		panic(err)
	}
}
