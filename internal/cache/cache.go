// Package cache models the private data-cache hierarchy of a core: a
// set-associative L1, a set-associative L2, and a fixed-latency memory
// behind them.
//
// The model is a timing model, not a storage model: it tracks tags and LRU
// state, never data. Accesses return the latency an instruction pays, and
// mutate tag state at access time. Write policy matters to contesting — the
// paper configures private levels as write-through while contesting so that
// stores can be merged below the private hierarchy — so both write-through
// and write-back allocation behaviours are implemented.
package cache

import "fmt"

// Config describes one cache level, using the same fields as the paper's
// Appendix A (associativity, block size, number of sets, access latency in
// cycles).
type Config struct {
	// Sets is the number of sets; must be a power of two.
	Sets int
	// Assoc is the associativity (ways per set).
	Assoc int
	// BlockBytes is the line size in bytes; must be a power of two.
	BlockBytes int
	// LatencyCycles is the access (hit) latency in core cycles.
	LatencyCycles int

	// Replacement names the replacement policy. Empty and "lru" select the
	// built-in true-LRU fast path; any other name resolves through the
	// replacement-policy registry (RegisterReplacer). ReplParams is the
	// opaque parameter string handed to a registered policy's factory.
	Replacement string `json:",omitempty"`
	ReplParams  string `json:",omitempty"`
}

// Validate reports whether the configuration is well formed.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: sets %d not a positive power of two", c.Sets)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: associativity %d not positive", c.Assoc)
	}
	if c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache: block size %d not a positive power of two", c.BlockBytes)
	}
	if c.LatencyCycles < 1 {
		return fmt.Errorf("cache: latency %d below one cycle", c.LatencyCycles)
	}
	if !validReplacerName(c.Replacement) {
		return fmt.Errorf("cache: unknown replacement policy %q", c.Replacement)
	}
	if c.ReplParams != "" && (c.Replacement == "" || c.Replacement == "lru") {
		return fmt.Errorf("cache: built-in LRU takes no params, got %q", c.ReplParams)
	}
	return nil
}

// SizeBytes reports the total capacity of the level.
func (c Config) SizeBytes() int { return c.Sets * c.Assoc * c.BlockBytes }

func (c Config) String() string {
	return fmt.Sprintf("%dsets x %dway x %dB (%dKB, %dcyc)",
		c.Sets, c.Assoc, c.BlockBytes, c.SizeBytes()/1024, c.LatencyCycles)
}

// line is the tracked state of one cache way. The tag and the LRU stamp
// are packed side by side so a set probe walks one contiguous run of
// memory instead of two parallel arrays; the stamp doubles as the valid
// bit — every allocation touches the line, so a line is valid exactly when
// its last-use stamp is non-zero.
type line struct {
	tag   uint64
	stamp uint64 // last-use timestamp; lowest is LRU, 0 is invalid
}

// Cache is one set-associative level. Replacement is true LRU by default
// (the fused fast path below); naming a registered policy in the config
// routes victim choice through the Replacer interface instead.
type Cache struct {
	cfg        Config
	lines      []line // sets*assoc entries
	dirty      []bool
	tick       uint64 // monotonically increasing use counter
	setMask    uint64
	blockShift uint
	setShift   uint // log2(Sets), for the tag extraction in set()
	assoc      int  // cfg.Assoc hoisted next to the hot fields
	// repl is nil for the built-in LRU; non-nil routes Access through the
	// generic replacement path.
	repl Replacer

	// Stats accumulates access counts.
	Stats Stats
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate reports misses per access (0 if no accesses).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// New builds a cache level from the config. Invalid geometry and unknown
// replacement policies surface as errors, mirroring the predictor
// constructors, so configurations decoded from untrusted specs are
// rejected without taking down the process.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	repl, err := newReplacer(cfg.Replacement, cfg.Sets, cfg.Assoc, cfg.ReplParams)
	if err != nil {
		return nil, err
	}
	n := cfg.Sets * cfg.Assoc
	c := &Cache{
		cfg:     cfg,
		lines:   make([]line, n),
		dirty:   make([]bool, n),
		setMask: uint64(cfg.Sets - 1),
		assoc:   cfg.Assoc,
		repl:    repl,
	}
	for bs := cfg.BlockBytes; bs > 1; bs >>= 1 {
		c.blockShift++
	}
	c.setShift = uintLog2(cfg.Sets)
	return c, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config reports the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.dirty[i] = false
		c.lines[i] = line{}
	}
	c.tick = 0
	c.Stats = Stats{}
	if c.repl != nil {
		c.repl.Reset()
	}
}

// Invalidate drops every line but keeps the accumulated statistics and the
// LRU clock: it models the cold tag arrays of a killed-and-restarted thread
// in the middle of a run. Dirty lines vanish without a writeback charge —
// acceptable for the write-through configurations the contest layer uses,
// where dirty is never set.
func (c *Cache) Invalidate() {
	for i := range c.lines {
		c.dirty[i] = false
		c.lines[i] = line{}
	}
	// A non-default policy's metadata describes the dropped lines; cold tag
	// arrays mean cold replacement state too.
	if c.repl != nil {
		c.repl.Reset()
	}
}

func (c *Cache) set(addr uint64) (base int, tag uint64) {
	block := addr >> c.blockShift
	return int(block&c.setMask) * c.assoc, block >> c.setShift
}

func uintLog2(n int) uint {
	var s uint
	for ; n > 1; n >>= 1 {
		s++
	}
	return s
}

// touch promotes way w of the set starting at base to MRU.
func (c *Cache) touch(base, w int) {
	c.tick++
	c.lines[base+w].stamp = c.tick
}

// Probe reports whether addr hits without changing any state (no stats, no
// LRU update). Used by tests and by the hierarchy's inclusive checks.
func (c *Cache) Probe(addr uint64) bool {
	base, tag := c.set(addr)
	set := c.lines[base : base+c.assoc]
	for w := range set {
		if set[w].stamp != 0 && set[w].tag == tag {
			return true
		}
	}
	return false
}

// Access looks up addr, allocating on miss. write marks the line dirty when
// the level is used write-back. It returns whether the access hit and, on
// miss, whether a dirty victim was evicted (the caller charges write-back
// traffic if it models it).
func (c *Cache) Access(addr uint64, write bool) (hit bool, wroteBack bool) {
	c.Stats.Accesses++
	block := addr >> c.blockShift
	base := int(block&c.setMask) * c.assoc
	tag := block >> c.setShift
	set := c.lines[base : base+c.assoc]
	if c.repl != nil {
		return c.accessReplacer(int(block&c.setMask), base, tag, set, write)
	}
	// One fused pass: probe for the tag and track the LRU victim at the
	// same time, so a miss pays a single walk over the set instead of a
	// hit-scan followed by a victim-scan. The hit exits at the first
	// matching way and the victim keeps the first way with the minimal
	// stamp — exactly what the two separate loops chose, so replacement
	// decisions (and therefore every downstream number) are unchanged. An
	// invalid way has stamp 0 and therefore always wins the victim race.
	if len(set) == 2 {
		// Unrolled two-way probe: the palette's hottest L1 shape.
		l0, l1 := &set[0], &set[1]
		if l0.stamp != 0 && l0.tag == tag {
			c.tick++
			l0.stamp = c.tick
			if write {
				c.dirty[base] = true
			}
			return true, false
		}
		if l1.stamp != 0 && l1.tag == tag {
			c.tick++
			l1.stamp = c.tick
			if write {
				c.dirty[base+1] = true
			}
			return true, false
		}
		victim := 0
		if l1.stamp < l0.stamp {
			victim = 1
		}
		c.Stats.Misses++
		if set[victim].stamp != 0 && c.dirty[base+victim] {
			wroteBack = true
			c.Stats.Writebacks++
		}
		c.tick++
		set[victim] = line{tag: tag, stamp: c.tick}
		c.dirty[base+victim] = write
		return false, wroteBack
	}
	victim, best := 0, ^uint64(0)
	for w := range set {
		l := &set[w]
		s := l.stamp
		if s != 0 && l.tag == tag {
			c.tick++
			l.stamp = c.tick
			if write {
				c.dirty[base+w] = true
			}
			return true, false
		}
		if s < best {
			best = s
			victim = w
		}
	}
	c.Stats.Misses++
	if best != 0 && c.dirty[base+victim] {
		wroteBack = true
		c.Stats.Writebacks++
	}
	c.tick++
	set[victim] = line{tag: tag, stamp: c.tick}
	c.dirty[base+victim] = write
	return false, wroteBack
}

// accessReplacer is the Access tail for a non-default replacement policy:
// the cache still owns tags, validity (stamp != 0), and dirty state; the
// Replacer owns recency metadata and the victim choice on a full set. The
// stamps are maintained exactly as on the LRU path so Probe, Prefill, and
// Invalidate need no policy awareness.
func (c *Cache) accessReplacer(setIdx, base int, tag uint64, set []line, write bool) (hit bool, wroteBack bool) {
	for w := range set {
		if set[w].stamp != 0 && set[w].tag == tag {
			c.tick++
			set[w].stamp = c.tick
			c.repl.Touch(setIdx, w)
			if write {
				c.dirty[base+w] = true
			}
			return true, false
		}
	}
	c.Stats.Misses++
	victim := -1
	for w := range set {
		if set[w].stamp == 0 {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = c.repl.Victim(setIdx)
		if victim < 0 || victim >= c.assoc {
			// A misbehaving third-party policy must not corrupt memory; way
			// 0 keeps the run deterministic and the conformance suite is
			// where the bug gets reported.
			victim = 0
		}
		if c.dirty[base+victim] {
			wroteBack = true
			c.Stats.Writebacks++
		}
	}
	c.tick++
	set[victim] = line{tag: tag, stamp: c.tick}
	c.dirty[base+victim] = write
	c.repl.Insert(setIdx, victim)
	return false, wroteBack
}

// Prefill installs addr's block without touching demand statistics or
// promoting an already-present line: the fill path for prefetches. It
// returns whether a fill happened (false when the block was already
// resident). A dirty victim still counts a writeback — the eviction
// traffic is real regardless of what triggered it.
func (c *Cache) Prefill(addr uint64) bool {
	block := addr >> c.blockShift
	setIdx := int(block & c.setMask)
	base := setIdx * c.assoc
	tag := block >> c.setShift
	set := c.lines[base : base+c.assoc]
	victim, best := -1, ^uint64(0)
	for w := range set {
		if set[w].stamp != 0 && set[w].tag == tag {
			return false
		}
		if set[w].stamp == 0 {
			if victim < 0 || set[victim].stamp != 0 {
				victim = w
				best = 0
			}
		} else if c.repl == nil && set[w].stamp < best {
			victim = w
			best = set[w].stamp
		}
	}
	if victim < 0 {
		victim = c.repl.Victim(setIdx)
		if victim < 0 || victim >= c.assoc {
			victim = 0
		}
	}
	if set[victim].stamp != 0 && c.dirty[base+victim] {
		c.Stats.Writebacks++
	}
	c.tick++
	set[victim] = line{tag: tag, stamp: c.tick}
	c.dirty[base+victim] = false
	if c.repl != nil {
		c.repl.Insert(setIdx, victim)
	}
	return true
}

// WritePolicy selects how stores interact with the private levels.
type WritePolicy uint8

const (
	// WriteThrough sends every store through the private levels (contesting
	// mode: the merged instance below is handled by the store queue).
	WriteThrough WritePolicy = iota
	// WriteBack dirties lines and writes back on eviction.
	WriteBack
)

func (p WritePolicy) String() string {
	if p == WriteThrough {
		return "write-through"
	}
	return "write-back"
}

// Bandwidth occupancies of the shared structures behind the L1, in core
// cycles per access. Back-to-back misses queue, so a core whose L1 filters
// nothing becomes L2-bandwidth-bound — the realistic cost of a tiny L1 —
// and transfer time grows with the burst length, so huge blocks buy their
// latency amortization with bandwidth, the classic block-size trade-off.
const (
	l2OccupancyBase  = 2  // L2 port cycles per access
	l2OccupancyDiv   = 32 // plus one cycle per this many bytes of L1 fill
	memOccupancyBase = 4  // memory channel cycles per access
	memOccupancyDiv  = 16 // plus one cycle per this many bytes transferred
)

// L2OccupancyCycles reports how long one access filling a block of the
// given size occupies the L2 port.
func L2OccupancyCycles(fillBytes int) int64 {
	return l2OccupancyBase + int64(fillBytes/l2OccupancyDiv)
}

// MemOccupancyCycles reports how long one access transferring a block of
// the given size occupies the memory channel.
func MemOccupancyCycles(blockBytes int) int64 {
	return memOccupancyBase + int64(blockBytes/memOccupancyDiv)
}

// Hierarchy is a two-level private hierarchy over a fixed-latency memory,
// with a simple occupancy-based bandwidth model for the L2 and the memory
// channel.
type Hierarchy struct {
	L1, L2 *Cache
	// MemLatencyCycles is the latency of an access that misses both levels.
	MemLatencyCycles int
	// Policy is the store write policy of the private levels.
	Policy WritePolicy

	l2Free, memFree int64 // next cycle each shared structure is free

	// Latencies and occupancies cached at construction, so the load path
	// does not re-derive them from the level configs on every access.
	l1Lat, l2Lat  int64
	l2Occ, memOcc int64

	// pf, when non-nil, observes every demand load and issues prefetch
	// fills behind the demand stream (see AttachPrefetcher). pfBuf is its
	// reusable scratch, sized so no conforming prefetcher needs to grow it.
	pf    Prefetcher
	pfCfg PrefetchConfig
	pfBuf [8]uint64

	// Prefetches counts issued prefetch fills (blocks actually brought into
	// the L1; already-resident candidates are not counted).
	Prefetches uint64
}

// NewHierarchy builds the hierarchy. Configurations must be valid.
func NewHierarchy(l1, l2 Config, memLatency int, policy WritePolicy) (*Hierarchy, error) {
	if err := l1.Validate(); err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	if err := l2.Validate(); err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	if memLatency < 1 {
		return nil, fmt.Errorf("cache: memory latency %d below one cycle", memLatency)
	}
	c1, err := New(l1)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	c2, err := New(l2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	return &Hierarchy{
		L1:               c1,
		L2:               c2,
		MemLatencyCycles: memLatency,
		Policy:           policy,
		l1Lat:            int64(l1.LatencyCycles),
		l2Lat:            int64(l2.LatencyCycles),
		l2Occ:            L2OccupancyCycles(l1.BlockBytes),
		memOcc:           MemOccupancyCycles(l2.BlockBytes),
	}, nil
}

// AttachPrefetcher resolves and installs the configured prefetcher. The
// zero config detaches (today's behaviour — no hook in the load path).
func (h *Hierarchy) AttachPrefetcher(cfg PrefetchConfig) error {
	pf, err := NewPrefetcher(cfg, h.L1.Config().BlockBytes)
	if err != nil {
		return err
	}
	h.pf = pf
	h.pfCfg = cfg
	return nil
}

// PrefetchConfigured reports the attached prefetcher's configuration (the
// zero value when none is attached).
func (h *Hierarchy) PrefetchConfigured() PrefetchConfig { return h.pfCfg }

// Reset invalidates both levels and clears statistics and port state.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.l2Free = 0
	h.memFree = 0
	h.Prefetches = 0
	if h.pf != nil {
		h.pf.Reset()
	}
}

// Invalidate drops every line in both levels while keeping statistics and
// port state, modelling a cold cache handed to a freshly reforked core
// mid-run without corrupting the run's accumulated counters.
func (h *Hierarchy) Invalidate() {
	h.L1.Invalidate()
	h.L2.Invalidate()
	if h.pf != nil {
		h.pf.Reset()
	}
}

// l2Access runs one access through the L2 port starting no earlier than
// `earliest`, and returns the cycle the L2 delivers.
func (h *Hierarchy) l2Access(addr uint64, earliest int64, write bool) (doneAt int64, hit bool) {
	start := earliest
	if h.l2Free > start {
		start = h.l2Free
	}
	h.l2Free = start + h.l2Occ
	hit, _ = h.L2.Access(addr, write)
	return start + h.l2Lat, hit
}

// memAccess runs one access through the memory channel starting no earlier
// than `earliest`, and returns the cycle memory delivers.
func (h *Hierarchy) memAccess(earliest int64) int64 {
	start := earliest
	if h.memFree > start {
		start = h.memFree
	}
	h.memFree = start + h.memOcc
	return start + int64(h.MemLatencyCycles)
}

// Load looks up a read of addr issued at cycle `now` and returns its
// latency in cycles, including any queueing on the L2 port and the memory
// channel. With a prefetcher attached, prefetch fills are issued after the
// demand access resolves: they occupy the L2 port (and the memory channel
// on an L2 miss) behind the demand stream, so aggressive prefetching costs
// bandwidth, but they never lengthen the triggering load itself.
func (h *Hierarchy) Load(addr uint64, now int64) int {
	l1Done := now + h.l1Lat
	if hit, _ := h.L1.Access(addr, false); hit {
		if h.pf != nil {
			h.prefetchAfter(addr, false, l1Done)
		}
		return int(l1Done - now)
	}
	l2Done, hit := h.l2Access(addr, l1Done, false)
	if hit {
		if h.pf != nil {
			h.prefetchAfter(addr, true, l2Done)
		}
		return int(l2Done - now)
	}
	done := h.memAccess(l2Done)
	if h.pf != nil {
		h.prefetchAfter(addr, true, done)
	}
	return int(done - now)
}

// prefetchAfter consults the prefetcher about the demand access and issues
// the fills it asks for. A candidate already resident in L1 is dropped; a
// fill probes L2 without demand stats, charges L2-port occupancy, and on
// an L2 miss charges memory-channel occupancy and fills L2 too.
func (h *Hierarchy) prefetchAfter(addr uint64, miss bool, earliest int64) {
	for _, pa := range h.pf.OnAccess(addr, miss, h.pfBuf[:0]) {
		if h.L1.Probe(pa) {
			continue
		}
		h.Prefetches++
		start := earliest
		if h.l2Free > start {
			start = h.l2Free
		}
		h.l2Free = start + h.l2Occ
		if !h.L2.Probe(pa) {
			mstart := start + h.l2Lat
			if h.memFree > mstart {
				mstart = h.memFree
			}
			h.memFree = mstart + h.memOcc
			h.L2.Prefill(pa)
		}
		h.L1.Prefill(pa)
	}
}

// Store performs a write of addr at cycle `now` and returns the latency the
// store occupies its cache port. Under write-through the store also
// propagates to L2 (the merged write below L2 is the synchronizing store
// queue's job); under write-back it dirties the L1 line, filling it on a
// miss.
func (h *Hierarchy) Store(addr uint64, now int64) int {
	l1Lat := h.l1Lat
	switch h.Policy {
	case WriteThrough:
		// No-allocate on L1 store miss keeps write-through simple. The
		// write-through traffic drains through a coalescing write buffer in
		// the background, so it updates L2 state but does not occupy the
		// L2 port in the load path and costs only the L1 port time.
		h.L1.Access(addr, false)
		h.L2.Access(addr, true)
		return int(l1Lat)
	default: // WriteBack
		if hit, _ := h.L1.Access(addr, true); hit {
			return int(l1Lat)
		}
		// Allocate-on-write-miss: fill from L2/memory.
		l2Done, hit := h.l2Access(addr, now+l1Lat, false)
		if hit {
			return int(l2Done - now)
		}
		return int(h.memAccess(l2Done) - now)
	}
}
