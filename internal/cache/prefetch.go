package cache

import (
	"fmt"
	"sort"
	"sync"
)

// Prefetcher is the prefetch half of the cache SPI. The hierarchy calls
// OnAccess once per demand load, after the L1 lookup; the prefetcher
// appends the block-aligned-or-not addresses it wants fetched into buf and
// returns the extended slice. Returning buf unchanged means no prefetch.
// The append-into-caller-scratch shape keeps the hot path allocation-free:
// a conforming prefetcher must not allocate in OnAccess and must be
// deterministic; Reset restores the cold state.
//
// A nil prefetcher (the default — PrefetchConfig zero value) is not a
// degenerate implementation but the absence of the hook: the hierarchy's
// load path is bit-identical to the pre-SPI engine.
type Prefetcher interface {
	OnAccess(addr uint64, miss bool, buf []uint64) []uint64
	Reset()
}

// PrefetcherFactory builds a prefetcher. blockBytes is the L1 line size
// (the stride most prefetchers want to think in); params is the opaque
// PrefetchConfig.Params string.
type PrefetcherFactory func(blockBytes int, params string) (Prefetcher, error)

// PrefetchConfig names a prefetcher and its opaque parameters. The zero
// value selects no prefetching.
type PrefetchConfig struct {
	Name   string `json:",omitempty"`
	Params string `json:",omitempty"`
}

// Validate reports whether the named prefetcher exists (the zero value is
// always valid).
func (p PrefetchConfig) Validate() error {
	if p.Name == "" {
		if p.Params != "" {
			return fmt.Errorf("cache: prefetch params %q without a prefetcher name", p.Params)
		}
		return nil
	}
	prefMu.RLock()
	_, ok := prefFactories[p.Name]
	prefMu.RUnlock()
	if !ok {
		return fmt.Errorf("cache: unknown prefetcher %q", p.Name)
	}
	return nil
}

var (
	prefMu        sync.RWMutex
	prefFactories = map[string]PrefetcherFactory{}
)

// RegisterPrefetcher adds a prefetcher under the given name. The empty
// name denotes "no prefetcher" and cannot be registered.
func RegisterPrefetcher(name string, f PrefetcherFactory) error {
	if name == "" {
		return fmt.Errorf("cache: register prefetcher with empty name")
	}
	if f == nil {
		return fmt.Errorf("cache: prefetcher %q registered with nil factory", name)
	}
	prefMu.Lock()
	defer prefMu.Unlock()
	if _, dup := prefFactories[name]; dup {
		return fmt.Errorf("cache: prefetcher %q already registered", name)
	}
	prefFactories[name] = f
	return nil
}

// PrefetcherNames lists every registered prefetcher in sorted order (the
// no-prefetch default is the empty name and is not listed).
func PrefetcherNames() []string {
	prefMu.RLock()
	names := make([]string, 0, len(prefFactories))
	for n := range prefFactories {
		names = append(names, n)
	}
	prefMu.RUnlock()
	sort.Strings(names)
	return names
}

// NewPrefetcher resolves a PrefetchConfig into a prefetcher instance; the
// zero value resolves to (nil, nil). Exported for replay harnesses (the
// fast model mirrors the hierarchy's prefetch fills) and component tests.
func NewPrefetcher(cfg PrefetchConfig, blockBytes int) (Prefetcher, error) {
	if cfg.Name == "" {
		if cfg.Params != "" {
			return nil, fmt.Errorf("cache: prefetch params %q without a prefetcher name", cfg.Params)
		}
		return nil, nil
	}
	prefMu.RLock()
	f, ok := prefFactories[cfg.Name]
	prefMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cache: unknown prefetcher %q", cfg.Name)
	}
	p, err := f(blockBytes, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("cache: prefetcher %q: %w", cfg.Name, err)
	}
	if p == nil {
		return nil, fmt.Errorf("cache: prefetcher %q returned nil", cfg.Name)
	}
	return p, nil
}

// nextLine prefetches the sequentially next block on every demand miss —
// the classic one-block-lookahead scheme.
type nextLine struct {
	block uint64
}

func newNextLine(blockBytes int, params string) (Prefetcher, error) {
	if params != "" {
		return nil, fmt.Errorf("nextline takes no params, got %q", params)
	}
	return &nextLine{block: uint64(blockBytes)}, nil
}

func (n *nextLine) OnAccess(addr uint64, miss bool, buf []uint64) []uint64 {
	if miss {
		buf = append(buf, addr+n.block)
	}
	return buf
}
func (n *nextLine) Reset() {}

// stride is a single-stream stride detector: it confirms a stride after
// two consecutive equal deltas and then runs one prefetch ahead of the
// stream. The cache level sees no PC, so this is the PC-less variant; a
// PC-indexed table is exactly what the SPI exists to let third parties
// bring.
type stride struct {
	last      uint64
	lastDelta int64
	confirmed bool
	primed    bool
}

func newStride(blockBytes int, params string) (Prefetcher, error) {
	if params != "" {
		return nil, fmt.Errorf("stride takes no params, got %q", params)
	}
	return &stride{}, nil
}

func (s *stride) OnAccess(addr uint64, miss bool, buf []uint64) []uint64 {
	if s.primed {
		delta := int64(addr - s.last)
		s.confirmed = delta != 0 && delta == s.lastDelta
		s.lastDelta = delta
	}
	s.last = addr
	s.primed = true
	if s.confirmed {
		buf = append(buf, addr+uint64(s.lastDelta))
	}
	return buf
}

func (s *stride) Reset() { *s = stride{} }

func init() {
	if err := RegisterPrefetcher("nextline", newNextLine); err != nil {
		panic(err)
	}
	if err := RegisterPrefetcher("stride", newStride); err != nil {
		panic(err)
	}
}
