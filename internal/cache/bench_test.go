package cache

import (
	"fmt"
	"testing"
)

// benchAddrs builds a deterministic address stream with a mix of spatial
// reuse (loop over a footprint) and conflict pressure, sized so the small
// configs miss and the large ones mostly hit — the regimes Access sees in
// real runs.
func benchAddrs(n int, footprint uint64) []uint64 {
	addrs := make([]uint64, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range addrs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		addrs[i] = (x % footprint) &^ 7
	}
	return addrs
}

// BenchmarkCacheAccess gates the Access constant work per associativity:
// the fused hit-scan/victim-scan must stay allocation-free and get cheaper,
// not costlier, as micro-changes land.
func BenchmarkCacheAccess(b *testing.B) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"l1-64x2", Config{Sets: 64, Assoc: 2, BlockBytes: 64, LatencyCycles: 2}},
		{"l1-512x4", Config{Sets: 512, Assoc: 4, BlockBytes: 64, LatencyCycles: 2}},
		{"l2-1024x8", Config{Sets: 1024, Assoc: 8, BlockBytes: 128, LatencyCycles: 10}},
		{"dm-256x1", Config{Sets: 256, Assoc: 1, BlockBytes: 64, LatencyCycles: 1}},
	}
	addrs := benchAddrs(1<<14, 1<<22)
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			c := MustNew(tc.cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(addrs[i&(len(addrs)-1)], i&7 == 0)
			}
		})
	}
}

// BenchmarkHierarchyLoad times the full two-level load path including the
// occupancy model — the shape the pipeline's memory instructions pay.
func BenchmarkHierarchyLoad(b *testing.B) {
	h, err := NewHierarchy(
		Config{Sets: 64, Assoc: 2, BlockBytes: 64, LatencyCycles: 2},
		Config{Sets: 1024, Assoc: 8, BlockBytes: 128, LatencyCycles: 10},
		200, WriteThrough)
	if err != nil {
		b.Fatal(err)
	}
	addrs := benchAddrs(1<<14, 1<<22)
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now += int64(h.Load(addrs[i&(len(addrs)-1)], now))
	}
	_ = fmt.Sprint(now != 0)
}
