package pipeline

// storeTable maps the effective address of each in-window store to the
// youngest such store's sequence number — the structure behind
// store-to-load forwarding at dispatch. It replaces a Go map on the hot
// path: at most LSQSize stores are in flight at once, so a fixed-size
// linear-probe table sized at construction never grows, never allocates
// after NewCore, and resolves a probe in one or two cache lines. Memory
// operations never carry address zero (trace.Validate enforces it), so
// zero marks an empty slot.
type storeTable struct {
	addrs []uint64
	seqs  []int64
	mask  uint64
	shift uint
}

func newStoreTable(lsqSize int) storeTable {
	size, logSize := 16, 4
	for size < 2*lsqSize {
		size <<= 1
		logSize++
	}
	return storeTable{
		addrs: make([]uint64, size),
		seqs:  make([]int64, size),
		mask:  uint64(size - 1),
		shift: uint(64 - logSize),
	}
}

func (t *storeTable) home(addr uint64) uint64 {
	return (addr * 0x9e3779b97f4a7c15) >> t.shift
}

// get reports the youngest in-window store to addr.
func (t *storeTable) get(addr uint64) (seq int64, ok bool) {
	for i := t.home(addr); ; i = (i + 1) & t.mask {
		switch t.addrs[i] {
		case addr:
			return t.seqs[i], true
		case 0:
			return 0, false
		}
	}
}

// put records seq as the youngest store to addr, replacing any older one.
func (t *storeTable) put(addr uint64, seq int64) {
	for i := t.home(addr); ; i = (i + 1) & t.mask {
		if t.addrs[i] == addr || t.addrs[i] == 0 {
			t.addrs[i] = addr
			t.seqs[i] = seq
			return
		}
	}
}

// del removes the entry for addr if it still records seq (a younger store
// to the same address keeps its own, newer entry).
func (t *storeTable) del(addr uint64, seq int64) {
	i := t.home(addr)
	for t.addrs[i] != addr {
		if t.addrs[i] == 0 {
			return
		}
		i = (i + 1) & t.mask
	}
	if t.seqs[i] != seq {
		return
	}
	// Backward-shift deletion keeps every probe chain gap-free without
	// tombstones: repeatedly pull the next chain member whose home position
	// cannot reach it across the new hole back into the hole.
	for {
		t.addrs[i] = 0
		j := i
		for {
			j = (j + 1) & t.mask
			if t.addrs[j] == 0 {
				return
			}
			h := t.home(t.addrs[j])
			if (j-h)&t.mask >= (j-i)&t.mask {
				t.addrs[i] = t.addrs[j]
				t.seqs[i] = t.seqs[j]
				i = j
				break
			}
		}
	}
}
