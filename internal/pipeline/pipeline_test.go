package pipeline

import (
	"testing"

	"archcontest/internal/branch"
	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/isa"
	"archcontest/internal/trace"
	"archcontest/internal/workload"
)

// testConfig is a small, fast, deterministic core for micro-trace tests.
func testConfig() config.CoreConfig {
	return config.CoreConfig{
		Name:             "test",
		ClockPeriodNs:    0.50,
		FrontEndDepth:    3,
		Width:            2,
		ROBSize:          32,
		IQSize:           16,
		LSQSize:          16,
		WakeupLatency:    0,
		SchedDepth:       1,
		MemLatencyCycles: 50,
		L1D:              cache.Config{Sets: 16, Assoc: 2, BlockBytes: 64, LatencyCycles: 2},
		L2D:              cache.Config{Sets: 256, Assoc: 4, BlockBytes: 64, LatencyCycles: 8},
		Predictor:        branch.Config{Kind: "bimodal", LogSize: 10},
	}
}

func runToCompletion(t *testing.T, cfg config.CoreConfig, tr *trace.Trace, opts Options) *Core {
	t.Helper()
	c, err := NewCore(cfg, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !c.Done(); i++ {
		c.Step()
		if i > 10_000_000 {
			t.Fatal("core did not finish")
		}
	}
	return c
}

func aluChain(n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{Op: isa.OpALU, PC: 0x40, Dst: 10, Src1: 10}
	}
	return insts
}

func independentALUs(n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{Op: isa.OpALU, PC: 0x40, Dst: isa.RegID(10 + i%32), Src1: 1}
	}
	return insts
}

func TestNewCoreRejects(t *testing.T) {
	cfg := testConfig()
	if _, err := NewCore(cfg, nil, Options{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := NewCore(cfg, trace.New("empty", nil), Options{}); err == nil {
		t.Error("empty trace accepted")
	}
	bad := cfg
	bad.Width = 0
	if _, err := NewCore(bad, trace.New("t", aluChain(4)), Options{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSerialChainIPC(t *testing.T) {
	// A pure dependence chain of 1-cycle ALUs with wake-up 0 retires ~1 IPC.
	c := runToCompletion(t, testConfig(), trace.New("chain", aluChain(1000)), Options{})
	st := c.Stats()
	if st.Retired != 1000 {
		t.Fatalf("retired %d", st.Retired)
	}
	if ipc := st.IPC(); ipc < 0.85 || ipc > 1.05 {
		t.Errorf("serial chain IPC = %.2f, want ~1", ipc)
	}
}

func TestWakeupLatencySlowsChains(t *testing.T) {
	cfg := testConfig()
	base := runToCompletion(t, cfg, trace.New("chain", aluChain(1000)), Options{}).Stats()
	cfg.WakeupLatency = 2
	slow := runToCompletion(t, cfg, trace.New("chain", aluChain(1000)), Options{}).Stats()
	// Chain throughput should drop to ~1/(1+2) of the back-to-back rate.
	ratio := slow.IPC() / base.IPC()
	if ratio > 0.45 || ratio < 0.25 {
		t.Errorf("wakeup-2 chain IPC ratio = %.2f, want ~1/3", ratio)
	}
}

func TestIndependentOpsReachWidth(t *testing.T) {
	cfg := testConfig()
	cfg.Width = 4
	c := runToCompletion(t, cfg, trace.New("ilp", independentALUs(4000)), Options{})
	if ipc := c.Stats().IPC(); ipc < 3.2 {
		t.Errorf("independent ALU IPC = %.2f on a 4-wide core", ipc)
	}
}

func TestWidthLimitsIPC(t *testing.T) {
	cfg := testConfig()
	cfg.Width = 1
	c := runToCompletion(t, cfg, trace.New("ilp", independentALUs(2000)), Options{})
	if ipc := c.Stats().IPC(); ipc > 1.01 {
		t.Errorf("IPC %.2f exceeds width 1", ipc)
	}
}

func TestMispredictionPenalty(t *testing.T) {
	// Alternating branch defeats a bimodal predictor; a trace full of such
	// branches should run far below width.
	insts := make([]isa.Inst, 0, 2000)
	taken := false
	for i := 0; i < 1000; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpALU, PC: 0x40, Dst: 10, Src1: 1})
		taken = !taken
		insts = append(insts, isa.Inst{Op: isa.OpBranch, PC: 0x80, Src1: 10, Taken: taken})
	}
	c := runToCompletion(t, testConfig(), trace.New("br", insts), Options{})
	st := c.Stats()
	if st.Branches != 1000 {
		t.Fatalf("branches %d", st.Branches)
	}
	if st.Mispredicts < 400 {
		t.Errorf("mispredicts %d, alternating should defeat bimodal", st.Mispredicts)
	}
	if ipc := st.IPC(); ipc > 0.6 {
		t.Errorf("IPC %.2f too high for a mispredict-bound trace", ipc)
	}
}

func TestDeeperFrontEndCostsMoreOnMispredicts(t *testing.T) {
	insts := make([]isa.Inst, 0, 2000)
	taken := false
	for i := 0; i < 500; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpALU, PC: 0x40, Dst: 10, Src1: 1})
		taken = !taken
		insts = append(insts, isa.Inst{Op: isa.OpBranch, PC: 0x80, Src1: 10, Taken: taken})
	}
	shallow := testConfig()
	deep := testConfig()
	deep.FrontEndDepth = 12
	sc := runToCompletion(t, shallow, trace.New("br", insts), Options{}).Stats()
	dc := runToCompletion(t, deep, trace.New("br", insts), Options{}).Stats()
	if dc.Cycles <= sc.Cycles {
		t.Errorf("deep front end %d cycles vs shallow %d; mispredicts should cost more",
			dc.Cycles, sc.Cycles)
	}
}

func TestPredictableBranchesLearn(t *testing.T) {
	// A heavily biased branch should be predicted almost perfectly.
	insts := make([]isa.Inst, 0, 2000)
	for i := 0; i < 1000; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpALU, PC: 0x40, Dst: 10, Src1: 1})
		insts = append(insts, isa.Inst{Op: isa.OpBranch, PC: 0x80, Src1: 10, Taken: true})
	}
	c := runToCompletion(t, testConfig(), trace.New("br", insts), Options{})
	st := c.Stats()
	if st.MispredictRate() > 0.01 {
		t.Errorf("mispredict rate %.3f on an always-taken branch", st.MispredictRate())
	}
}

func TestCacheMissesSlowLoads(t *testing.T) {
	// Loads over a footprint far beyond L2 should run much slower than
	// loads that fit in L1.
	mk := func(span uint64) []isa.Inst {
		insts := make([]isa.Inst, 0, 2000)
		for i := 0; i < 1000; i++ {
			addr := 0x10000 + uint64(i)*997*64%span
			insts = append(insts, isa.Inst{Op: isa.OpLoad, PC: 0x40, Dst: 10, Src1: 1, Addr: addr})
			insts = append(insts, isa.Inst{Op: isa.OpALU, PC: 0x44, Dst: 11, Src1: 10})
		}
		return insts
	}
	hot := runToCompletion(t, testConfig(), trace.New("hot", mk(1<<10)), Options{}).Stats()
	cold := runToCompletion(t, testConfig(), trace.New("cold", mk(1<<26)), Options{}).Stats()
	if cold.Cycles < 2*hot.Cycles {
		t.Errorf("cold %d cycles vs hot %d: misses should dominate", cold.Cycles, hot.Cycles)
	}
	if cold.L2D.Misses == 0 {
		t.Error("expected L2 misses on the cold trace")
	}
}

func TestBiggerROBHelpsIndependentMisses(t *testing.T) {
	// Independent scattered loads, spaced out with filler computation so the
	// memory channel is not saturated: a larger window overlaps more misses.
	insts := make([]isa.Inst, 0, 16000)
	for i := 0; i < 2000; i++ {
		addr := 0x10000 + uint64(i)*7919*64%(1<<26)
		insts = append(insts, isa.Inst{Op: isa.OpLoad, PC: 0x40, Dst: isa.RegID(10 + i%16), Src1: 1, Addr: addr})
		for j := 0; j < 7; j++ {
			insts = append(insts, isa.Inst{Op: isa.OpALU, PC: 0x44, Dst: isa.RegID(40 + j), Src1: 1})
		}
	}
	small := testConfig()
	small.ROBSize = 8
	small.IQSize = 8
	small.LSQSize = 8
	big := testConfig()
	big.ROBSize = 256
	big.IQSize = 64
	big.LSQSize = 128
	sc := runToCompletion(t, small, trace.New("mlp", insts), Options{}).Stats()
	bc := runToCompletion(t, big, trace.New("mlp", insts), Options{}).Stats()
	if bc.Cycles >= sc.Cycles {
		t.Errorf("big window %d cycles vs small %d: MLP should help", bc.Cycles, sc.Cycles)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A load that reads a just-stored address should forward, not miss.
	insts := []isa.Inst{
		{Op: isa.OpALU, PC: 0x40, Dst: 10, Src1: 1},
		{Op: isa.OpStore, PC: 0x44, Src1: 1, Src2: 10, Addr: 0xdead00},
		{Op: isa.OpLoad, PC: 0x48, Dst: 11, Src1: 1, Addr: 0xdead00},
		{Op: isa.OpALU, PC: 0x4c, Dst: 12, Src1: 11},
	}
	c := runToCompletion(t, testConfig(), trace.New("fwd", insts), Options{})
	if c.Stats().Forwarded != 1 {
		t.Errorf("forwarded %d, want 1", c.Stats().Forwarded)
	}
}

func TestDivSerializes(t *testing.T) {
	divs := make([]isa.Inst, 64)
	for i := range divs {
		divs[i] = isa.Inst{Op: isa.OpDiv, PC: 0x40, Dst: isa.RegID(10 + i%16), Src1: 1}
	}
	c := runToCompletion(t, testConfig(), trace.New("div", divs), Options{})
	st := c.Stats()
	// Unpipelined divides: at least latency cycles apiece.
	if st.Cycles < int64(len(divs)*isa.OpDiv.Latency()) {
		t.Errorf("64 divides in %d cycles: divider should serialize", st.Cycles)
	}
}

func TestRegionLogging(t *testing.T) {
	c, err := NewCore(testConfig(), trace.New("r", independentALUs(200)), Options{RegionSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	for !c.Done() {
		c.Step()
	}
	regions := c.RegionTimes()
	if len(regions) != 10 {
		t.Fatalf("%d regions, want 10", len(regions))
	}
	for i := 1; i < len(regions); i++ {
		if regions[i] <= regions[i-1] {
			t.Fatalf("region times not increasing: %v", regions)
		}
	}
}

func TestStatsBasics(t *testing.T) {
	c := runToCompletion(t, testConfig(), trace.New("s", independentALUs(100)), Options{})
	st := c.Stats()
	if st.Retired != 100 {
		t.Errorf("retired %d", st.Retired)
	}
	if st.FinishTime <= 0 {
		t.Error("finish time not set")
	}
	if st.IPT() <= 0 {
		t.Error("IPT not positive")
	}
	if (Stats{}).IPC() != 0 || (Stats{}).IPT() != 0 || (Stats{}).MispredictRate() != 0 {
		t.Error("zero stats should report zero rates")
	}
}

func TestFasterClockFinishesSoonerOnILP(t *testing.T) {
	fast := testConfig()
	fast.ClockPeriodNs = 0.25
	slow := testConfig()
	tr := trace.New("ilp", independentALUs(2000))
	ft := runToCompletion(t, fast, tr, Options{}).Stats().FinishTime
	st := runToCompletion(t, slow, tr, Options{}).Stats().FinishTime
	if ft >= st {
		t.Errorf("fast clock finished at %v, slow at %v", ft, st)
	}
}

func TestAllPaletteCoresRunAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke matrix in short mode")
	}
	// Smoke test: every palette core completes every benchmark's trace.
	const n = 4000
	for _, b := range workload.Benchmarks() {
		tr := workload.MustGenerate(b, n)
		for _, cfg := range config.Palette() {
			c := runToCompletion(t, cfg, tr, Options{})
			if c.Stats().Retired != n {
				t.Errorf("%s on %s: retired %d", b, cfg.Name, c.Stats().Retired)
			}
			if c.Stats().IPT() <= 0 {
				t.Errorf("%s on %s: IPT %.2f", b, cfg.Name, c.Stats().IPT())
			}
		}
	}
}

func TestDoneIdempotent(t *testing.T) {
	c := runToCompletion(t, testConfig(), trace.New("d", aluChain(10)), Options{})
	cyc := c.Cycle()
	c.Step()
	if !c.Done() || c.Cycle() != cyc+1 {
		t.Error("stepping a done core should only advance the cycle counter")
	}
	if c.Stats().Retired != 10 {
		t.Error("retired count changed after done")
	}
}
