package pipeline

// Batch advances a set of independent cores in a cache-friendly interleave.
// Stepping one core to completion before starting the next leaves every
// other core's window arrays cold exactly when the campaign needs them;
// stepping all cores strictly round-robin reloads each core's working set
// (the SoA field arrays, the trace segment in flight, the cache tag
// arrays) on every switch. Batch splits the difference: each Pass gives
// every live core a quantum of progressing iterations, long enough to
// amortize the working-set reload and short enough that a pass cycles
// through the whole batch before any core runs away.
//
// Cores in a batch must be independent — no shared feed, sink, or gate —
// because a quantum reorders their cycle-level interleaving arbitrarily.
// For independent cores any interleaving produces bit-identical per-core
// results (each core owns all of its state), which is what makes batched
// stepping equivalent to sequential runs; the equivalence is asserted by
// the batch tests and the sim.RunBatch regression suite.
type Batch struct {
	live []*Core // cores still executing, compacted as they finish
}

// DefaultQuantum is the Pass quantum used when the caller passes 0: long
// enough that the switch cost (reloading a core's field arrays) is noise,
// short enough that a batch of campaign-sized jobs interleaves visibly.
const DefaultQuantum = 2048

// NewBatch builds a batch over the given cores. Cores already done are
// dropped immediately; the slice is not retained.
func NewBatch(cores []*Core) *Batch {
	b := &Batch{live: make([]*Core, 0, len(cores))}
	for _, c := range cores {
		if !c.Done() {
			b.live = append(b.live, c)
		}
	}
	return b
}

// Live reports how many cores are still executing.
func (b *Batch) Live() int { return len(b.live) }

// Done reports whether every core has finished its trace.
func (b *Batch) Done() bool { return len(b.live) == 0 }

// Pass gives every live core up to quantum progressing iterations (Advance
// calls — each executes one live cycle and skips any dead cycles after
// it), dropping cores that finish. quantum <= 0 means DefaultQuantum.
// It returns the number of cores still live, so a driver loops with
// `for b.Pass(q) > 0 { ... }` and polls cancellation between passes.
func (b *Batch) Pass(quantum int) (live int) {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	out := b.live[:0]
	for _, c := range b.live {
		for i := 0; i < quantum && !c.Done(); i++ {
			c.Advance()
		}
		if !c.Done() {
			out = append(out, c)
		}
	}
	// Clear the tail so finished cores are not retained by the backing
	// array for the rest of the batch's lifetime.
	for i := len(out); i < len(b.live); i++ {
		b.live[i] = nil
	}
	b.live = out
	return len(out)
}
