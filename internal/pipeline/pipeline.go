// Package pipeline implements the cycle-level out-of-order superscalar core
// model that stands in for the paper's modified SimpleScalar sim-mase.
//
// The model is trace-driven and correct-path-only: it never fetches
// wrong-path instructions, and instead charges a mispredicted branch the
// time from its fetch to its resolution plus the front-end refill. All
// Appendix-A configuration axes are modelled: clock period, front-end
// depth, dispatch/issue/commit width, ROB/IQ/LSQ capacities, wake-up
// latency, scheduler depth, the two-level private data cache hierarchy, and
// main-memory latency in core cycles.
//
// Contesting hooks: a core can be given a ResultFeed (arrived results of
// other cores' retired instructions), a StoreSink (the synchronizing store
// queue), and a retire observer (the core's outgoing global result bus).
// The fetch-counter/pop-counter protocol of the paper maps onto the trace
// index: a core is trailing exactly when the feed already holds a result
// for the next instruction it fetches (Scenario #2); otherwise it executes
// normally and late results are discarded (Scenario #1), except that
// results for the in-flight mispredicted branch gating fetch are kept and
// used to resolve it early (the Figure 5 corner case).
//
// # Event-driven execution
//
// Step executes exactly one clock cycle and remains the reference
// semantics. The engine is additionally event-driven: a cycle in which
// nothing retires, issues, dispatches, or fetches ("a dead cycle") leaves
// every piece of core state untouched, so a run may jump the cycle counter
// straight to the next cycle at which progress is possible. NextEvent
// computes that cycle from the in-flight completion times, the scheduled
// wake-ups, the front-end arrival, the pending-branch resolution, and the
// feed's NextArrival hint; Advance composes Step with the jump. Because
// only provably-dead cycles are skipped, every counter — including
// Stats.Cycles, which counts skipped cycles exactly as if they had been
// stepped — is bit-identical to single-cycle stepping.
//
// # Data layout
//
// The window is a structure-of-arrays ring: each per-entry field lives in
// its own slice (all carved from one backing allocation), sized to the
// next power of two above the structural window capacity so slot lookup is
// a mask instead of a modulo. A scheduler pass touches only the field
// arrays it needs — completion times during retire, dependence links
// during wake-up — instead of dragging whole 100-byte entries through the
// cache. Ready selection is bitmap-based: a valid bitmap tracks occupied
// issue-queue slots and a ready bitmap the issuable subset, scanned
// oldest-first from the head slot with TrailingZeros64 (see bitmap.go).
// The pre-rework heap-based ready queue survives behind Options.
// LegacySched as the reference scheduler for the equivalence regression
// suite. Logical behaviour — including Stats bit-identity — is unchanged:
// the structural window capacity is still the pre-rework ring size, and
// srcReady reproduces the old ring-reuse cutoff for retired producers
// exactly even though the physical ring is larger.
package pipeline

import (
	"fmt"
	"math"

	"archcontest/internal/branch"
	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/isa"
	"archcontest/internal/ticks"
	"archcontest/internal/trace"
)

// ResultFeed supplies this core with the retired-instruction results
// broadcast by the other cores of a contesting system.
type ResultFeed interface {
	// ResultAvailable reports whether the result of dynamic instruction idx
	// has arrived at this core by absolute time t.
	ResultAvailable(idx int64, t ticks.Time) bool
	// NextArrival reports the earliest absolute time at which the result of
	// dynamic instruction idx becomes available, when the feed already
	// knows it (the result is in flight or has arrived). ok is false when
	// the result has not been broadcast yet; the caller must then treat the
	// arrival time as unknown. The hint lets the event-driven engine
	// fast-forward a core stalled on a mispredicted branch directly to the
	// cycle its early resolution becomes possible.
	NextArrival(idx int64) (at ticks.Time, ok bool)
	// ConsumeThrough informs the feed that all results up to and including
	// idx have been consumed or may be discarded. The core never consumes
	// past its oldest unresolved mispredicted branch, so arrived branch
	// outcomes stay queryable for early resolution.
	ConsumeThrough(idx int64)
}

// StoreSink receives privately-performed stores; it is the synchronizing
// store queue of a contesting system. A sink that cannot accept stalls
// retirement of the oldest store.
type StoreSink interface {
	CanAccept() bool
	Performed(idx int64, addr uint64)
}

// Options configures the optional behaviour of a core.
type Options struct {
	// WritePolicy selects the private-cache store policy. Contesting
	// requires write-through (the default used by the contest package);
	// stand-alone runs default to write-back, as the paper permits in
	// non-contesting modes.
	WritePolicy cache.WritePolicy
	// RegionSize, if non-zero, records the absolute time of every
	// RegionSize-th retirement (the paper logs every 20 instructions).
	RegionSize int
	// Feed, if non-nil, enables contesting-mode result consumption.
	Feed ResultFeed
	// StoreSink, if non-nil, receives retired stores and may backpressure.
	StoreSink StoreSink
	// OnRetire, if non-nil, observes every retirement (the outgoing GRB).
	OnRetire func(idx int64, at ticks.Time)
	// RetireGate, if non-nil, is consulted before retiring each
	// instruction; returning false stalls retirement this cycle. The
	// contest layer uses it to model synchronous-exception rendezvous
	// (paper Section 4.3): an excepting instruction retires only once every
	// active core has reached it and the parallelized handler has run.
	RetireGate func(idx int64, at ticks.Time) bool
	// NoTrainOnInject disables branch predictor training on injected
	// branches (ablation; the default trains so a trailing core's predictor
	// stays warm).
	NoTrainOnInject bool
	// Checker, if non-nil, observes every executed cycle, retirement, and
	// result injection for verification (internal/invariant). The hooks
	// are nil-guarded single branches: with no checker attached the
	// steady-state loop stays allocation-free and effectively unchanged.
	Checker Checker
	// LegacySched selects the pre-rework heap-based ready queue instead of
	// the bitmap scheduler. It is a test-only shim: the scheduler
	// equivalence suite runs the fuzz corpus under both schedulers and
	// asserts bit-identical results. It must never appear in a cache key —
	// both schedulers produce identical results by construction (and by
	// regression test).
	LegacySched bool
}

// Checker observes a core's execution for verification. Implementations
// inspect the core through its read-only Inspect accessor and must not
// mutate any core state.
type Checker interface {
	// AfterCycle runs at the end of every executed Step (fast-forwarded
	// dead cycles, which by construction change no state, are not seen).
	AfterCycle(c *Core)
	// OnRetire runs at each retirement, after the core's own bookkeeping
	// and before the Options.OnRetire observer.
	OnRetire(c *Core, seq int64, at ticks.Time)
	// OnInject runs when the core completes a fetched instruction from an
	// arrived result instead of executing it (contesting Scenario #2).
	OnInject(c *Core, seq int64, at ticks.Time)
}

// Stats aggregates a core's execution counters.
type Stats struct {
	Cycles        int64
	Retired       int64
	Branches      int64
	Mispredicts   int64
	EarlyResolved int64
	Injected      int64
	Forwarded     int64
	L1D, L2D      cache.Stats
	// Prefetches counts issued prefetch fills; always zero for the default
	// (no-prefetcher) configuration.
	Prefetches uint64 `json:",omitempty"`
	FinishTime ticks.Time
}

// IPC reports retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// IPT reports retired instructions per nanosecond (the paper's
// "instructions per time" metric).
func (s Stats) IPT() float64 {
	ns := s.FinishTime.Nanoseconds()
	if ns == 0 {
		return 0
	}
	return float64(s.Retired) / ns
}

// MispredictRate reports mispredictions per branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

const noSeq = int64(-1)

// Per-slot state flags (the flags field array).
const (
	flagCompleted uint8 = 1 << iota
	flagInjected
	flagMispredicted
	flagInWheel // entry is linked into a timing-wheel bucket
	flagDiv     // entry is an unpipelined divide (cached from the trace at fetch)
)

// wakeEntry schedules an issue-queue entry whose sources are all complete
// to enter the ready set at a known future cycle.
type wakeEntry struct {
	at, seq int64
}

// Core is one simulated out-of-order processor executing a trace.
//
// The window is a structure-of-arrays ring indexed by seq&ringMask: one
// slice per per-entry field, so each pipeline stage streams through only
// the fields it reads. The physical ring (ringSize slots) is the next
// power of two above the structural window capacity (windowCap); fetch is
// bounded by windowCap, so slot aliasing of in-flight entries is
// impossible and the mask lookup needs no wrap handling.
type Core struct {
	cfg  config.CoreConfig
	opts Options
	clk  ticks.Clock
	tr   *trace.Trace
	pred branch.Predictor
	hier *cache.Hierarchy

	// Hot Options fields mirrored into flat fields at construction, so the
	// per-cycle paths load them without walking the embedded struct.
	feed     ResultFeed
	sink     StoreSink
	gate     func(idx int64, at ticks.Time) bool
	onRetire func(idx int64, at ticks.Time)
	checker  Checker
	legacy   bool
	// gshare/tage devirtualize the predictor when it is one of the known
	// concrete implementations; both nil otherwise (fetch falls back to
	// the interface). At most one is non-nil.
	gshare *branch.Gshare
	tage   *branch.TAGE
	// Hot CoreConfig limits mirrored the same way: fetch, dispatch, issue
	// and the next-event scan all test them every cycle.
	width   int
	robSize int64
	iqSize  int
	lsqSize int

	cycle int64

	// Window field arrays, all length ringSize (one backing allocation).
	seqs          []int64 // occupying sequence number (slot-reuse detection)
	dispatchReady []int64 // first cycle the front end can deliver it
	prod1, prod2  []int64 // in-window producer seqs, noSeq if none
	readyHint     []int64 // lower bound on source readiness from retired producers
	storeDep      []int64 // older in-window store to the same address, noSeq if none
	completeCycle []int64 // meaningful only once flagCompleted is set
	valueReady    []int64 // completeCycle + wake-up latency
	depHead       []int64 // first issue-queue entry waiting on this producer, noSeq if none
	depNext       []int64 // next entry in our producer's waiter list, noSeq if none
	wheelNext     []int64 // next slot+1 in our timing-wheel bucket, 0 ends the list
	wakeAt        []int64 // due cycle while flagInWheel is set
	flags         []uint8

	ringSize  int64 // physical slots, power of two
	ringMask  int64 // ringSize - 1
	windowCap int64 // structural window capacity (the pre-rework ring size)

	headSeq  int64 // oldest in-flight instruction (next to retire)
	dispSeq  int64 // next instruction to dispatch
	tailSeq  int64 // next instruction to fetch into the window
	fetchEnd int64 // trace length

	// Issue queue as wake lists plus a ready set: a dispatched entry
	// either waits on the depHead list of its first incomplete producer,
	// waits for its known future ready cycle, or is ready. The ready set
	// is the readyBM bitmap (validBM tracks all occupied IQ slots),
	// scanned oldest-first from the head slot; under LegacySched it is
	// the readyQ seq min-heap with lazy deletion instead. iqCount tracks
	// occupied IQ slots.
	iqCount int
	validBM slotBitmap
	readyBM slotBitmap
	// readyCount mirrors the number of set bits in readyBM, so the issue
	// and next-event paths skip the bitmap scan entirely when nothing is
	// ready (the overwhelmingly common post-issue state).
	readyCount int
	readyQ     []int64 // LegacySched only
	retry      []int64 // scratch: ready entries deferred by the busy divider
	lsq        int     // occupied LSQ entries

	// Future wake-ups live in a timing wheel: bucketHead[at&wheelMask]
	// heads a singly-linked list (slot+1 links through wheelNext, 0 ends)
	// of entries due exactly at cycle `at`, wheelBM marks occupied buckets
	// so the drain and NextEvent jump straight to the next due bucket, and
	// wheelPos is the last drained cycle (every live entry lies in
	// (wheelPos, wheelPos+wheelSize), which keeps bucket indices
	// unambiguous). Wake-ups beyond the wheel horizon — possible only
	// under extreme cache-port queueing — spill into the wakeQ min-heap,
	// which under LegacySched holds every wake-up instead.
	// wheelDue caches the earliest due cycle of any wheel entry (MaxInt64
	// when the wheel is empty). It may go stale-low after a wheelRemove —
	// harmless: the next drain attempt finds nothing due and recomputes —
	// but never stale-high, so skipping the drain when wheelDue > now is
	// always sound.
	wheelSize  int64
	wheelMask  int64
	wheelPos   int64
	wheelDue   int64
	wheelCount int
	bucketHead []int64
	wheelBM    slotBitmap
	wakeQ      []wakeEntry

	lastWriter [isa.NumRegs]int64 // in-window producer of each register
	regReadyAt [isa.NumRegs]int64 // readiness cycle once the producer retired

	lastStore storeTable // in-window store seq per address

	pendingBranch int64 // mispredicted branch gating fetch, noSeq if none
	divFree       int64 // next cycle the divider is free

	progressed bool // the last Step changed state
	extStalled bool // the last Step was blocked by the gate or store sink

	// retireObserved caches whether any per-retirement observer is attached
	// (regions, checker, OnRetire); when none is, the retire loop skips the
	// absolute-time conversion entirely.
	retireObserved bool

	stats          Stats
	regionSize     int
	regions        []ticks.Time
	retireInRegion int
}

// NewCore builds a core for the configuration and trace.
func NewCore(cfg config.CoreConfig, tr *trace.Trace, opts Options) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("pipeline: empty trace")
	}
	pred, err := cfg.Predictor.New()
	if err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(cfg.L1D, cfg.L2D, cfg.MemLatencyCycles, opts.WritePolicy)
	if err != nil {
		return nil, err
	}
	if err := hier.AttachPrefetcher(cfg.Prefetch); err != nil {
		return nil, err
	}
	windowCap := int64(cfg.ROBSize + cfg.Width*cfg.FrontEndDepth + 2*cfg.Width)
	ringSize := int64(1)
	for ringSize < windowCap {
		ringSize <<= 1
	}
	c := &Core{
		cfg:           cfg,
		opts:          opts,
		clk:           cfg.Clock(),
		tr:            tr,
		pred:          pred,
		hier:          hier,
		ringSize:      ringSize,
		ringMask:      ringSize - 1,
		windowCap:     windowCap,
		fetchEnd:      int64(tr.Len()),
		wakeQ:         make([]wakeEntry, 0, cfg.IQSize),
		retry:         make([]int64, 0, cfg.IQSize),
		lastStore:     newStoreTable(cfg.LSQSize),
		pendingBranch: noSeq,
		regionSize:    opts.RegionSize,
		feed:          opts.Feed,
		sink:          opts.StoreSink,
		gate:          opts.RetireGate,
		onRetire:      opts.OnRetire,
		checker:       opts.Checker,
		legacy:        opts.LegacySched,
		width:         cfg.Width,
		robSize:       int64(cfg.ROBSize),
		iqSize:        cfg.IQSize,
		lsqSize:       cfg.LSQSize,
	}
	switch p := pred.(type) {
	case *branch.Gshare:
		c.gshare = p
	case *branch.TAGE:
		c.tage = p
	}
	// One backing allocation for every int64 field array, plus the flags.
	backing := make([]int64, 12*ringSize)
	field := func() []int64 {
		f := backing[:ringSize:ringSize]
		backing = backing[ringSize:]
		return f
	}
	c.seqs = field()
	c.dispatchReady = field()
	c.prod1 = field()
	c.prod2 = field()
	c.readyHint = field()
	c.storeDep = field()
	c.completeCycle = field()
	c.valueReady = field()
	c.depHead = field()
	c.depNext = field()
	c.wheelNext = field()
	c.wakeAt = field()
	c.flags = make([]uint8, ringSize)
	c.validBM, c.readyBM = newSlotBitmapPair(ringSize)
	if opts.LegacySched {
		c.readyQ = make([]int64, 0, cfg.IQSize)
	} else {
		// Size the wheel to cover the common worst-case wake delay (a
		// queue-free memory-latency load plus scheduler and wake-up
		// depth); rarer, longer delays from cache-port queueing overflow
		// into the wakeQ heap.
		horizon := int64(cfg.SchedDepth + cfg.WakeupLatency + cfg.MemLatencyCycles +
			cfg.L1D.LatencyCycles + cfg.L2D.LatencyCycles + 64)
		c.wheelSize = 256
		for c.wheelSize < horizon && c.wheelSize < 8192 {
			c.wheelSize <<= 1
		}
		c.wheelMask = c.wheelSize - 1
		c.wheelDue = math.MaxInt64
		c.bucketHead = make([]int64, c.wheelSize)
		c.wheelBM = newSlotBitmap(c.wheelSize)
	}
	if opts.RegionSize > 0 {
		c.regions = make([]ticks.Time, 0, tr.Len()/opts.RegionSize)
	}
	c.retireObserved = opts.RegionSize > 0 || opts.Checker != nil || opts.OnRetire != nil
	for r := range c.lastWriter {
		c.lastWriter[r] = noSeq
	}
	return c, nil
}

// Config reports the core's configuration.
func (c *Core) Config() config.CoreConfig { return c.cfg }

// Clock reports the core's clock.
func (c *Core) Clock() ticks.Clock { return c.clk }

// Cycle reports the current cycle number. It advances by one per Step and
// may jump forward over dead cycles via SkipTo.
func (c *Core) Cycle() int64 { return c.cycle }

// Now reports the absolute time of the current cycle's clock edge.
func (c *Core) Now() ticks.Time { return c.clk.TimeOfCycle(c.cycle) }

// Retired reports how many instructions have retired.
func (c *Core) Retired() int64 { return c.stats.Retired }

// FetchIndex reports the core's fetch counter: the index of the next
// correct-path instruction it will fetch.
func (c *Core) FetchIndex() int64 { return c.tailSeq }

// Done reports whether the core has retired the whole trace.
func (c *Core) Done() bool { return c.stats.Retired >= c.fetchEnd }

// Stats returns a snapshot of the execution counters, including cache
// statistics.
func (c *Core) Stats() Stats {
	s := c.stats
	s.L1D = c.hier.L1.Stats
	s.L2D = c.hier.L2.Stats
	s.Prefetches = c.hier.Prefetches
	return s
}

// RegionTimes returns the absolute retirement time of each region boundary
// (every RegionSize-th instruction). The returned slice aliases internal
// state and must not be modified.
func (c *Core) RegionTimes() []ticks.Time { return c.regions }

// ResetPredictor clears the branch predictor's learned state. The contest
// layer uses it to model the cold tables of a killed-and-reforked thread:
// the refork destroys the microarchitectural state the thread had trained
// on its core, and the warm-up mispredicts that follow are then paid inside
// the simulation rather than by an external estimate.
func (c *Core) ResetPredictor() { c.pred.Reset() }

// InvalidateCaches drops every line in the core's cache hierarchy while
// keeping hit/miss statistics and port scheduling intact — the cold-cache
// counterpart of ResetPredictor for kill-refork state-transfer modelling.
func (c *Core) InvalidateCaches() { c.hier.Invalidate() }

// Step advances the core by one clock cycle.
func (c *Core) Step() {
	if c.Done() {
		c.cycle++
		c.progressed = true
		return
	}
	c.extStalled = false
	c.progressed = false
	c.doRetire()
	c.doIssue()
	c.doDispatch()
	c.doFetch()
	c.cycle++
	c.stats.Cycles = c.cycle
	if c.checker != nil {
		c.checker.AfterCycle(c)
	}
}

// Progressed reports whether the most recent Step changed any core state
// (a retirement, issue, dispatch, fetch, or branch resolution). A Step
// that did not progress is a dead cycle: re-executing it any number of
// times changes nothing, which is what makes fast-forwarding sound.
// Progress is tracked directly at each state-changing site; the sites
// cover exactly the fields of the old progress-signature comparison
// (retired, early-resolved, dispatch and tail pointers, pending branch,
// IQ occupancy).
func (c *Core) Progressed() bool { return c.progressed }

// SkipTo fast-forwards the cycle counter to the given cycle without
// executing the skipped cycles. The caller must guarantee every skipped
// cycle is dead — NextEvent computes such a bound — and that no external
// input (feed arrival, store-queue drain, gate change) can occur in the
// skipped window. Calls with cycle at or below the current cycle are
// no-ops. Stats.Cycles advances with the jump, exactly as if the dead
// cycles had been stepped.
func (c *Core) SkipTo(cycle int64) {
	if cycle <= c.cycle {
		return
	}
	c.cycle = cycle
	if !c.Done() {
		c.stats.Cycles = cycle
	}
}

// Advance is the event-driven replacement for Step: it executes one cycle
// and fast-forwards the cycle counter over any dead cycles that follow, to
// the next cycle at which progress is possible. When the core is blocked on
// a condition it cannot bound locally (a retire gate or store sink), it
// degrades to single-cycle stepping; contested runs bound such cores
// through the system scheduler instead.
//
// The fast-forward also runs after a progressing cycle, not only after a
// dead one, so a stall never costs an extra dead Step to detect: the next
// cycle is provably live whenever the front end can still move (fetch has
// window space, or a deliverable instruction can dispatch), and in exactly
// those cases the skip is refused. Otherwise every potential progress
// source is an event NextEvent bounds — completions, wake-ups, front-end
// arrivals, branch redirects — or one NextEvent conservatively refuses to
// skip over (a committable head, a live ready entry), so the cycles up to
// the bound are dead no matter whether the current cycle progressed.
func (c *Core) Advance() {
	c.Step()
	if c.Done() {
		return
	}
	if c.progressed {
		if c.pendingBranch == noSeq && c.tailSeq < c.fetchEnd && c.tailSeq-c.headSeq < c.windowCap {
			return // fetch moves next cycle
		}
		if c.dispSeq < c.tailSeq && c.dispatchReady[c.dispSeq&c.ringMask] <= c.cycle && !c.dispatchBlocked() {
			return // dispatch moves next cycle
		}
	}
	if next, ok := c.NextEvent(); ok && next > c.cycle {
		c.SkipTo(next)
	}
}

// dispatchBlocked reports whether the next dispatch is provably blocked on
// a full ROB, LSQ, or issue queue — conditions that persist until a retire
// or issue event, all of which NextEvent bounds.
func (c *Core) dispatchBlocked() bool {
	if c.dispSeq-c.headSeq >= c.robSize {
		return true
	}
	// Counter check first: the LSQ is rarely full, and testing it before
	// the class keeps the trace line out of the common path.
	if c.lsq >= c.lsqSize && c.tr.At(c.dispSeq).IsMem() {
		return true
	}
	fl := c.flags[c.dispSeq&c.ringMask]
	return fl&(flagInjected|flagCompleted) == 0 && c.iqCount >= c.iqSize
}

// NextEvent reports a conservative lower bound on the next cycle at which
// the core can make progress, assuming no new external input arrives in the
// meantime. It should be consulted after a Step that reported no progress.
// ok is false when the core is stalled on a condition it cannot bound
// locally — a refusing retire gate or store sink, whose state is owned by
// the contesting system — in which case the caller must step cycle-by-cycle
// or bound the skip with system-level knowledge.
func (c *Core) NextEvent() (cycle int64, ok bool) {
	now := c.cycle
	if c.Done() {
		return now, true
	}
	if c.extStalled {
		return now, false
	}
	next := int64(math.MaxInt64)

	// Retire: the completed head commits at its completion cycle. A head
	// that was already committable did not retire for a reason the core
	// cannot see (extStalled covers the known ones); refuse to skip.
	if c.headSeq < c.dispSeq {
		slot := c.headSeq & c.ringMask
		if c.flags[slot]&flagCompleted != 0 {
			cc := c.completeCycle[slot]
			if cc < now {
				return now, false
			}
			if cc < next {
				next = cc
			}
		}
	}

	// Issue: the earliest scheduled wake-up, and ready entries deferred by
	// the busy divider. Entries waiting on an incomplete producer need no
	// term of their own — the producer's own issue is an event that
	// reschedules them. A live non-divider ready entry means the cycle was
	// not dead after all; refuse to skip.
	if len(c.wakeQ) > 0 {
		if at := c.wakeQ[0].at; at < next {
			next = at
		}
	}
	if c.wheelCount > 0 && c.wheelDue < next {
		next = c.wheelDue
	}
	if c.legacy {
		for _, seq := range c.readyQ {
			slot := seq & c.ringMask
			if c.seqs[slot] != seq || !c.validBM.test(slot) || c.flags[slot]&flagCompleted != 0 {
				continue // lazily-deleted entry
			}
			if c.tr.At(seq).Op == isa.OpDiv && c.divFree > now {
				if c.divFree < next {
					next = c.divFree
				}
				continue
			}
			return now, false
		}
	} else if c.readyCount > 0 {
		// With the divider free, any ready entry — divide or not — could
		// issue, so the cycle is live. Otherwise only a ready set made up
		// entirely of divides defers, to the cycle the divider frees.
		if c.divFree <= now {
			return now, false
		}
		for slot := c.readyBM.next(0); slot >= 0; slot = c.readyBM.next(slot + 1) {
			if c.flags[slot]&flagDiv == 0 {
				return now, false
			}
		}
		if c.divFree < next {
			next = c.divFree
		}
	}

	// Dispatch: the head of the front end becomes renameable. Dispatch
	// blocked on a full ROB/IQ/LSQ resumes on a retire or issue event,
	// which the terms above already cover.
	if c.dispSeq < c.tailSeq {
		if dr := c.dispatchReady[c.dispSeq&c.ringMask]; dr >= now && dr < next {
			next = dr
		}
	}

	// Fetch: a pending mispredicted branch redirects the cycle after it
	// completes, or resolves early when its result arrives on the feed.
	if c.pendingBranch != noSeq {
		slot := c.pendingBranch & c.ringMask
		if c.flags[slot]&flagCompleted != 0 {
			if cc := c.completeCycle[slot] + 1; cc < next {
				next = cc
			}
		}
		if c.feed != nil {
			if at, hinted := c.feed.NextArrival(c.pendingBranch); hinted {
				cc := c.clk.CycleAt(at)
				if c.clk.TimeOfCycle(cc) < at {
					cc++
				}
				if cc < next {
					next = cc
				}
			}
		}
	}

	if next == math.MaxInt64 {
		return now, false
	}
	if next < now {
		next = now
	}
	return next, true
}

// doRetire commits up to Width completed instructions in order.
func (c *Core) doRetire() {
	now := c.cycle
	for n := 0; n < c.width && c.headSeq < c.dispSeq; n++ {
		seq := c.headSeq
		slot := seq & c.ringMask
		if c.flags[slot]&flagCompleted == 0 || c.completeCycle[slot] > now {
			return
		}
		if c.gate != nil && !c.gate(seq, c.clk.TimeOfCycle(now)) {
			c.extStalled = true
			return // exception rendezvous in progress
		}
		in := c.tr.At(seq)
		if in.Op == isa.OpStore {
			if c.sink != nil && !c.sink.CanAccept() {
				c.extStalled = true
				return // synchronizing store queue is full
			}
			// Perform the store in the private hierarchy at commit.
			c.hier.Store(in.Addr, now)
			if c.sink != nil {
				c.sink.Performed(seq, in.Addr)
			}
			c.lastStore.del(in.Addr, seq)
		}
		if in.Op == isa.OpBranch {
			c.stats.Branches++
			if c.flags[slot]&flagMispredicted != 0 {
				c.stats.Mispredicts++
			}
		}
		if in.HasDst() && c.lastWriter[in.Dst] == seq {
			// The architectural value now lives in the register file.
			c.regReadyAt[in.Dst] = c.valueReady[slot]
			c.lastWriter[in.Dst] = noSeq
		}
		if in.IsMem() {
			c.lsq--
		}
		c.headSeq++
		c.stats.Retired++
		c.progressed = true
		if c.retireObserved {
			at := c.clk.TimeOfCycle(now)
			if c.regionSize > 0 {
				c.retireInRegion++
				if c.retireInRegion == c.regionSize {
					c.retireInRegion = 0
					c.regions = append(c.regions, at)
				}
			}
			if c.checker != nil {
				c.checker.OnRetire(c, seq, at)
			}
			if c.onRetire != nil {
				c.onRetire(seq, at)
			}
		}
		if c.stats.Retired >= c.fetchEnd {
			c.stats.FinishTime = c.clk.TimeOfCycle(now)
			return
		}
	}
}

// srcReady reports whether the value produced by in-window producer p is
// available, and the cycle it became (or becomes) available.
func (c *Core) srcReady(p int64) (avail bool, readyAt int64) {
	if p == noSeq {
		return true, 0
	}
	slot := p & c.ringMask
	if p < c.headSeq {
		// Producer retired. Its slot normally still holds its wake-up time.
		// The pre-rework ring reused the slot once fetch moved a full
		// structural window past p, after which the value was treated as
		// long architectural (simply ready); reproduce that cutoff from the
		// logical window capacity, not the (larger) physical ring, so
		// timing stays bit-identical.
		if c.tailSeq <= p+c.windowCap {
			return true, c.valueReady[slot]
		}
		return true, 0
	}
	if c.flags[slot]&flagCompleted == 0 {
		return false, 0
	}
	return true, c.valueReady[slot]
}

// blockerOf reports the first incomplete in-window dependence of the entry
// in slot — a source producer, or for loads the store being forwarded from
// — or noSeq when every dependence is complete. An entry waits on one
// blocker at a time and is re-evaluated when it completes.
func (c *Core) blockerOf(slot int64) int64 {
	if p := c.prod1[slot]; p != noSeq && p >= c.headSeq && c.flags[p&c.ringMask]&flagCompleted == 0 {
		return p
	}
	if p := c.prod2[slot]; p != noSeq && p >= c.headSeq && c.flags[p&c.ringMask]&flagCompleted == 0 {
		return p
	}
	if d := c.storeDep[slot]; d != noSeq && d >= c.headSeq && c.flags[d&c.ringMask]&flagCompleted == 0 {
		return d
	}
	return noSeq
}

// readyAtOf reports the earliest cycle the entry in slot can issue once
// every dependence is complete: the latest source wake-up, the
// retired-producer hint, and for a forwarded load the forwarding store's
// completion.
func (c *Core) readyAtOf(slot int64) int64 {
	_, at := c.srcReady(c.prod1[slot])
	if _, a2 := c.srcReady(c.prod2[slot]); a2 > at {
		at = a2
	}
	if h := c.readyHint[slot]; h > at {
		at = h
	}
	if d := c.storeDep[slot]; d != noSeq && d >= c.headSeq {
		if cc := c.completeCycle[d&c.ringMask]; cc > at {
			at = cc
		}
	}
	return at
}

// depState reports the entry's first incomplete in-window dependence and,
// when there is none, the earliest cycle its dependences allow issue. It is
// the fusion of blockerOf and readyAtOf, walking the producer fields once
// per wake-up instead of twice; the checker-facing accessors keep the
// separate definitions, which this must match exactly.
func (c *Core) depState(slot int64) (blocker int64, at int64) {
	if p := c.prod1[slot]; p != noSeq {
		if p >= c.headSeq {
			ps := p & c.ringMask
			if c.flags[ps]&flagCompleted == 0 {
				return p, 0
			}
			at = c.valueReady[ps]
		} else if c.tailSeq <= p+c.windowCap {
			at = c.valueReady[p&c.ringMask]
		}
	}
	if p := c.prod2[slot]; p != noSeq {
		if p >= c.headSeq {
			ps := p & c.ringMask
			if c.flags[ps]&flagCompleted == 0 {
				return p, 0
			}
			if v := c.valueReady[ps]; v > at {
				at = v
			}
		} else if c.tailSeq <= p+c.windowCap {
			if v := c.valueReady[p&c.ringMask]; v > at {
				at = v
			}
		}
	}
	if h := c.readyHint[slot]; h > at {
		at = h
	}
	if d := c.storeDep[slot]; d != noSeq && d >= c.headSeq {
		ds := d & c.ringMask
		if c.flags[ds]&flagCompleted == 0 {
			return d, 0
		}
		if cc := c.completeCycle[ds]; cc > at {
			at = cc
		}
	}
	return noSeq, at
}

// enqueueForIssue places a woken entry seq (occupying slot) into the issue
// wake lists, dropping entries that left the queue while parked (an
// early-resolved branch). Dispatch, whose entries are live by construction,
// calls enqueueLive directly.
func (c *Core) enqueueForIssue(seq, slot int64) {
	if !c.validBM.test(slot) || c.flags[slot]&flagCompleted != 0 {
		return // resolved while waiting (an early-resolved branch)
	}
	c.enqueueLive(seq, slot)
}

// enqueueLive routes a live issue-queue entry to its wake structure:
// waiting on its first incomplete producer, scheduled for a future ready
// cycle, or immediately ready.
func (c *Core) enqueueLive(seq, slot int64) {
	b, at := c.depState(slot)
	if b != noSeq {
		bs := b & c.ringMask
		c.depNext[slot] = c.depHead[bs]
		c.depHead[bs] = seq
		return
	}
	if at > c.cycle {
		if c.legacy {
			c.wakeQ = pushWake(c.wakeQ, wakeEntry{at: at, seq: seq})
		} else {
			c.scheduleWake(seq, slot, at)
		}
	} else if c.legacy {
		c.readyQ = pushSeq(c.readyQ, seq)
	} else {
		c.readyBM.set(slot)
		c.readyCount++
	}
}

// scheduleWake registers a future wake-up for the entry in slot: into its
// timing-wheel bucket when the due cycle is within the wheel horizon, into
// the overflow heap otherwise. Wheel entries are removed eagerly when an
// early-resolved branch leaves the queue, so every linked slot is live;
// overflow entries are dropped lazily at pop under the liveness guard.
func (c *Core) scheduleWake(seq, slot, at int64) {
	if at-c.wheelPos >= c.wheelSize {
		c.wakeQ = pushWake(c.wakeQ, wakeEntry{at: at, seq: seq})
		return
	}
	b := at & c.wheelMask
	c.wheelNext[slot] = c.bucketHead[b]
	c.bucketHead[b] = slot + 1
	c.wakeAt[slot] = at
	c.flags[slot] |= flagInWheel
	c.wheelBM.set(b)
	c.wheelCount++
	if at < c.wheelDue {
		c.wheelDue = at
	}
}

// drainWheel moves every wheel entry due at or before now into the ready
// bitmap, jumping between occupied buckets, and advances the wheel
// position to now so newly scheduled wake-ups stay within the horizon.
func (c *Core) drainWheel(now int64) {
	if c.wheelDue > now {
		c.wheelPos = now
		return
	}
	for c.wheelCount > 0 {
		start := (c.wheelPos + 1) & c.wheelMask
		b := c.wheelBM.firstFrom(start)
		t := c.wheelPos + 1 + ((b - start) & c.wheelMask)
		if t > now {
			c.wheelPos = now
			c.wheelDue = t
			return
		}
		for h := c.bucketHead[b]; h != 0; {
			slot := h - 1
			h = c.wheelNext[slot]
			c.flags[slot] &^= flagInWheel
			c.readyBM.set(slot)
			c.readyCount++
			c.wheelCount--
		}
		c.bucketHead[b] = 0
		c.wheelBM.clear(b)
		c.wheelPos = t
	}
	c.wheelPos = now
	c.wheelDue = math.MaxInt64
}

// wheelRemove unlinks the entry in slot from its timing-wheel bucket (the
// early-resolved-branch path; rare, so a list scan is fine).
func (c *Core) wheelRemove(slot int64) {
	b := c.wakeAt[slot] & c.wheelMask
	if c.bucketHead[b] == slot+1 {
		c.bucketHead[b] = c.wheelNext[slot]
	} else {
		p := c.bucketHead[b] - 1
		for c.wheelNext[p] != slot+1 {
			p = c.wheelNext[p] - 1
		}
		c.wheelNext[p] = c.wheelNext[slot]
	}
	if c.bucketHead[b] == 0 {
		c.wheelBM.clear(b)
	}
	c.flags[slot] &^= flagInWheel
	c.wheelCount--
}

// wakeDependents re-evaluates every entry that was waiting on the producer
// in slot, which has just completed; each either parks on its next
// incomplete dependence or is scheduled for issue.
func (c *Core) wakeDependents(slot int64) {
	for s := c.depHead[slot]; s != noSeq; {
		ss := s & c.ringMask
		next := c.depNext[ss]
		c.depNext[ss] = noSeq
		c.enqueueForIssue(s, ss)
		s = next
	}
	c.depHead[slot] = noSeq
}

// issueEntry schedules execution of the ready instruction seq occupying
// slot. It reports false when the instruction is a divide and the
// unpipelined divider is busy; the caller re-queues it.
func (c *Core) issueEntry(seq, slot, now int64) bool {
	in := c.tr.At(seq)
	execLat := in.Op.Latency()
	if in.Op == isa.OpLoad {
		if c.storeDep[slot] != noSeq {
			// An older store to the same address forwards its data: from
			// the LSQ while in-window (its data is ready — the wake lists
			// admitted us only after its completion cycle), or from the
			// write buffer after it retires.
			execLat = 1
			c.stats.Forwarded++
		} else {
			execLat = c.hier.Load(in.Addr, now)
		}
	}
	if in.Op == isa.OpDiv {
		if c.divFree > now {
			return false
		}
		c.divFree = now + int64(c.cfg.SchedDepth) + int64(execLat)
	}
	c.flags[slot] |= flagCompleted
	c.completeCycle[slot] = now + int64(c.cfg.SchedDepth) + int64(execLat)
	// Dependents wake through the bypass network: they can issue
	// execLat + WakeupLatency cycles after the producer issues, with
	// their own scheduler pipeline overlapping the producer's (wake-up
	// 0 means back-to-back for single-cycle operations).
	c.valueReady[slot] = now + int64(execLat) + int64(c.cfg.WakeupLatency)
	c.validBM.clear(slot)
	c.iqCount--
	c.progressed = true
	c.wakeDependents(slot)
	return true
}

// doIssue selects up to Width ready instructions, oldest first, and
// schedules their completion. Only woken entries are examined: entries
// waiting on a producer are untouched until it completes, and entries with
// a known future ready cycle sit in the wake heap until it is due.
func (c *Core) doIssue() {
	now := c.cycle
	if c.readyCount == 0 && c.wheelDue > now && len(c.wakeQ) == 0 {
		// Nothing ready, due, or woken this cycle. Skipping the pass leaves
		// wheelPos behind the current cycle, which is safe: a lagging
		// position only makes the scheduleWake horizon check conservative
		// (spilling to the overflow heap earlier), and bucket positions stay
		// unambiguous because inserts bound every entry within wheelSize of
		// it. Never taken under LegacySched, whose wheelDue stays zero.
		return
	}
	for len(c.wakeQ) > 0 && c.wakeQ[0].at <= now {
		var w wakeEntry
		c.wakeQ, w = popWake(c.wakeQ)
		slot := w.seq & c.ringMask
		// The seq guard drops wake-ups whose window slot was recycled: an
		// early-resolved branch can leave a far-future wake-up behind, and
		// with a small window its slot can be reused by a younger fetch
		// before the wake-up falls due.
		if c.seqs[slot] != w.seq || !c.validBM.test(slot) || c.flags[slot]&flagCompleted != 0 {
			continue
		}
		if c.legacy {
			c.readyQ = pushSeq(c.readyQ, w.seq)
		} else {
			c.readyBM.set(slot)
			c.readyCount++
		}
	}
	if c.legacy {
		c.issueLegacy(now)
		return
	}
	c.drainWheel(now)
	issued := 0
	retry := c.retry[:0]
	headSlot := c.headSeq & c.ringMask
	for issued < c.width && c.readyCount > 0 {
		slot := c.readyBM.firstFrom(headSlot)
		if slot < 0 {
			break
		}
		c.readyBM.clear(slot)
		c.readyCount--
		seq := c.headSeq + ((slot - headSlot) & c.ringMask)
		if !c.issueEntry(seq, slot, now) {
			retry = append(retry, slot)
			continue
		}
		issued++
	}
	for _, slot := range retry {
		c.readyBM.set(slot)
	}
	c.readyCount += len(retry)
	c.retry = retry[:0]
}

// issueLegacy is the pre-rework heap-based issue selection (see
// Options.LegacySched): pop the oldest ready seq, skipping lazily-deleted
// entries.
func (c *Core) issueLegacy(now int64) {
	issued := 0
	retry := c.retry[:0]
	for len(c.readyQ) > 0 && issued < c.width {
		var seq int64
		c.readyQ, seq = popSeq(c.readyQ)
		slot := seq & c.ringMask
		if c.seqs[slot] != seq || !c.validBM.test(slot) || c.flags[slot]&flagCompleted != 0 {
			continue // lazily-deleted entry
		}
		if !c.issueEntry(seq, slot, now) {
			retry = append(retry, seq)
			continue
		}
		issued++
	}
	for _, seq := range retry {
		c.readyQ = pushSeq(c.readyQ, seq)
	}
	c.retry = retry[:0]
}

// producerOf resolves the current producer of register r at dispatch time.
func (c *Core) producerOf(r isa.RegID) (prod int64, hint int64) {
	if r == isa.NoReg {
		return noSeq, 0
	}
	if p := c.lastWriter[r]; p != noSeq {
		return p, 0
	}
	return noSeq, c.regReadyAt[r]
}

// doDispatch renames and dispatches up to Width front-end instructions into
// the window. Injected instructions complete here (value written straight
// into the register file, stealing write ports within the core's width).
func (c *Core) doDispatch() {
	now := c.cycle
	for n := 0; n < c.width && c.dispSeq < c.tailSeq; n++ {
		seq := c.dispSeq
		slot := seq & c.ringMask
		if c.dispatchReady[slot] > now {
			return
		}
		if seq-c.headSeq >= c.robSize {
			return // ROB full
		}
		in := c.tr.At(seq)
		isMem := in.IsMem()
		if isMem && c.lsq >= c.lsqSize {
			return // LSQ full
		}
		fl := c.flags[slot]
		needIQ := fl&(flagInjected|flagCompleted) == 0 // early-resolved branches skip the IQ too
		if needIQ && c.iqCount >= c.iqSize {
			return // issue queue full
		}

		if isMem {
			c.lsq++
		}
		switch {
		case fl&flagInjected != 0:
			// Result injection: complete at rename. Branches were already
			// completed in fetch; register producers write their value now;
			// stores become ready immediately and perform at commit.
			if fl&flagCompleted == 0 {
				c.flags[slot] = fl | flagCompleted
				c.completeCycle[slot] = now
				c.valueReady[slot] = now
			}
			c.prod1[slot], c.prod2[slot], c.storeDep[slot] = noSeq, noSeq, noSeq
			c.stats.Injected++
			if in.HasDst() {
				c.lastWriter[in.Dst] = noSeq
				c.regReadyAt[in.Dst] = now
			}
		case fl&flagCompleted != 0:
			// Branch resolved early by an arrived result before dispatch:
			// nothing left to execute.
			c.prod1[slot], c.prod2[slot], c.storeDep[slot] = noSeq, noSeq, noSeq
		default:
			p1, h1 := c.producerOf(in.Src1)
			p2, h2 := c.producerOf(in.Src2)
			c.prod1[slot], c.prod2[slot] = p1, p2
			if h2 > h1 {
				h1 = h2
			}
			c.readyHint[slot] = h1
			dep := noSeq
			if in.Op == isa.OpLoad {
				if d, ok := c.lastStore.get(in.Addr); ok {
					dep = d
				}
			}
			c.storeDep[slot] = dep
			if in.Op == isa.OpStore {
				c.lastStore.put(in.Addr, seq)
			}
			if in.HasDst() {
				c.lastWriter[in.Dst] = seq
			}
			c.iqCount++
			c.validBM.set(slot)
			c.enqueueLive(seq, slot)
		}
		c.dispSeq++
		c.progressed = true
	}
}

// doFetch brings up to Width instructions into the window, predicting
// branches and consulting the result feed for injection and early branch
// resolution.
func (c *Core) doFetch() {
	now := c.cycle
	var t ticks.Time
	if c.feed != nil {
		t = c.clk.TimeOfCycle(now)
	}

	if c.pendingBranch != noSeq {
		bslot := c.pendingBranch & c.ringMask
		bfl := c.flags[bslot]
		switch {
		case bfl&flagCompleted != 0 && c.completeCycle[bslot] < now:
			// Redirect happened last cycle; fetch resumes this cycle.
			c.pendingBranch = noSeq
			c.progressed = true
		case c.feed != nil && c.feed.ResultAvailable(c.pendingBranch, t):
			// Figure 5 corner case: the branch's retired outcome arrived
			// from another core before this core resolved it. Resolve early;
			// the core is now trailing and will consume results at fetch.
			if bfl&flagCompleted == 0 || c.completeCycle[bslot] > now {
				if bfl&flagCompleted == 0 && c.validBM.test(bslot) {
					// The branch leaves the issue queue without issuing; its
					// ready bit and wheel entry are dropped eagerly,
					// wake-heap entries lazily.
					c.validBM.clear(bslot)
					if c.readyBM.test(bslot) {
						c.readyBM.clear(bslot)
						c.readyCount--
					}
					if bfl&flagInWheel != 0 {
						c.wheelRemove(bslot)
					}
					c.iqCount--
				}
				c.flags[bslot] |= flagCompleted
				c.completeCycle[bslot] = now
				c.valueReady[bslot] = now
				c.stats.EarlyResolved++
				c.progressed = true
			}
			return // redirect consumes this cycle; fetch resumes next cycle
		default:
			return // still waiting on the branch
		}
	}

	fetched := 0
	for fetched < c.width {
		if c.tailSeq >= c.fetchEnd {
			break
		}
		if c.tailSeq-c.headSeq >= c.windowCap {
			break // window structurally full
		}
		seq := c.tailSeq
		slot := seq & c.ringMask
		in := c.tr.At(seq)
		// Reset only the fields every entry needs; producer links are
		// written at dispatch, completion times at completion.
		c.seqs[slot] = seq
		c.dispatchReady[slot] = now + int64(c.cfg.FrontEndDepth)
		c.depHead[slot] = noSeq
		c.depNext[slot] = noSeq
		c.flags[slot] = 0
		if in.Op == isa.OpDiv {
			// Cache the divide class in the flags so the event scan can test
			// divider deferral without touching the trace. An injected divide
			// overwrites the flag below, but injected entries complete at
			// fetch and never reach the ready bitmap.
			c.flags[slot] = flagDiv
		}
		mispredicted := false
		if c.feed != nil && c.feed.ResultAvailable(seq, t) {
			c.flags[slot] = flagInjected
			if c.checker != nil {
				c.checker.OnInject(c, seq, t)
			}
			c.feed.ConsumeThrough(seq)
			if in.Op == isa.OpBranch {
				// Outcome known: complete in the fetch stage. Training keeps
				// the predictor warm for when this core takes the lead.
				c.flags[slot] |= flagCompleted
				c.completeCycle[slot] = now
				c.valueReady[slot] = now
				if !c.opts.NoTrainOnInject {
					if g := c.gshare; g != nil {
						g.Update(in.PC, in.Taken)
					} else if tg := c.tage; tg != nil {
						tg.Update(in.PC, in.Taken)
					} else {
						c.pred.Update(in.PC, in.Taken)
					}
				}
			}
		} else if in.Op == isa.OpBranch {
			var predicted bool
			if g := c.gshare; g != nil {
				predicted = g.Predict(in.PC)
			} else if tg := c.tage; tg != nil {
				predicted = tg.Predict(in.PC)
			} else {
				predicted = c.pred.Predict(in.PC)
			}
			if predicted != in.Taken {
				c.flags[slot] = flagMispredicted
				mispredicted = true
				c.pendingBranch = seq
			}
			// Train at fetch: the trace-driven model resolves the direction
			// immediately, which stands in for speculative history update
			// plus in-order counter training.
			if g := c.gshare; g != nil {
				g.Update(in.PC, in.Taken)
			} else if tg := c.tage; tg != nil {
				tg.Update(in.PC, in.Taken)
			} else {
				c.pred.Update(in.PC, in.Taken)
			}
		}
		c.tailSeq++
		c.progressed = true
		fetched++
		if in.Op == isa.OpBranch {
			if mispredicted {
				break // fetch stalls until resolution
			}
			if in.Taken {
				break // one taken branch per fetch group
			}
		}
	}

	if c.feed != nil {
		// Scenario #1: late results are popped and discarded — but never
		// past the oldest unresolved mispredicted branch, whose outcome may
		// still resolve it early.
		limit := c.tailSeq - 1
		if c.pendingBranch != noSeq && c.pendingBranch-1 < limit {
			limit = c.pendingBranch - 1
		}
		if limit >= 0 {
			c.feed.ConsumeThrough(limit)
		}
	}
}

// pushSeq and popSeq maintain a binary min-heap of sequence numbers: the
// legacy ready queue, ordered so issue selection is oldest-first.
func pushSeq(h []int64, v int64) []int64 {
	h = append(h, v)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func popSeq(h []int64) ([]int64, int64) {
	v := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for i := 0; ; {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		m := l
		if r := l + 1; r < len(h) && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return h, v
}

// pushWake and popWake maintain a binary min-heap of scheduled wake-ups,
// ordered by due cycle (ties by age for determinism).
func wakeLess(a, b wakeEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func pushWake(h []wakeEntry, v wakeEntry) []wakeEntry {
	h = append(h, v)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !wakeLess(h[i], h[p]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func popWake(h []wakeEntry) ([]wakeEntry, wakeEntry) {
	v := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for i := 0; ; {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		m := l
		if r := l + 1; r < len(h) && wakeLess(h[r], h[l]) {
			m = r
		}
		if !wakeLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return h, v
}
