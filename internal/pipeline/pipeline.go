// Package pipeline implements the cycle-level out-of-order superscalar core
// model that stands in for the paper's modified SimpleScalar sim-mase.
//
// The model is trace-driven and correct-path-only: it never fetches
// wrong-path instructions, and instead charges a mispredicted branch the
// time from its fetch to its resolution plus the front-end refill. All
// Appendix-A configuration axes are modelled: clock period, front-end
// depth, dispatch/issue/commit width, ROB/IQ/LSQ capacities, wake-up
// latency, scheduler depth, the two-level private data cache hierarchy, and
// main-memory latency in core cycles.
//
// Contesting hooks: a core can be given a ResultFeed (arrived results of
// other cores' retired instructions), a StoreSink (the synchronizing store
// queue), and a retire observer (the core's outgoing global result bus).
// The fetch-counter/pop-counter protocol of the paper maps onto the trace
// index: a core is trailing exactly when the feed already holds a result
// for the next instruction it fetches (Scenario #2); otherwise it executes
// normally and late results are discarded (Scenario #1), except that
// results for the in-flight mispredicted branch gating fetch are kept and
// used to resolve it early (the Figure 5 corner case).
//
// # Event-driven execution
//
// Step executes exactly one clock cycle and remains the reference
// semantics. The engine is additionally event-driven: a cycle in which
// nothing retires, issues, dispatches, or fetches ("a dead cycle") leaves
// every piece of core state untouched, so a run may jump the cycle counter
// straight to the next cycle at which progress is possible. NextEvent
// computes that cycle from the in-flight completion times, the scheduled
// wake-ups, the front-end arrival, the pending-branch resolution, and the
// feed's NextArrival hint; Advance composes Step with the jump. Because
// only provably-dead cycles are skipped, every counter — including
// Stats.Cycles, which counts skipped cycles exactly as if they had been
// stepped — is bit-identical to single-cycle stepping.
package pipeline

import (
	"fmt"
	"math"

	"archcontest/internal/branch"
	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/isa"
	"archcontest/internal/ticks"
	"archcontest/internal/trace"
)

// ResultFeed supplies this core with the retired-instruction results
// broadcast by the other cores of a contesting system.
type ResultFeed interface {
	// ResultAvailable reports whether the result of dynamic instruction idx
	// has arrived at this core by absolute time t.
	ResultAvailable(idx int64, t ticks.Time) bool
	// NextArrival reports the earliest absolute time at which the result of
	// dynamic instruction idx becomes available, when the feed already
	// knows it (the result is in flight or has arrived). ok is false when
	// the result has not been broadcast yet; the caller must then treat the
	// arrival time as unknown. The hint lets the event-driven engine
	// fast-forward a core stalled on a mispredicted branch directly to the
	// cycle its early resolution becomes possible.
	NextArrival(idx int64) (at ticks.Time, ok bool)
	// ConsumeThrough informs the feed that all results up to and including
	// idx have been consumed or may be discarded. The core never consumes
	// past its oldest unresolved mispredicted branch, so arrived branch
	// outcomes stay queryable for early resolution.
	ConsumeThrough(idx int64)
}

// StoreSink receives privately-performed stores; it is the synchronizing
// store queue of a contesting system. A sink that cannot accept stalls
// retirement of the oldest store.
type StoreSink interface {
	CanAccept() bool
	Performed(idx int64, addr uint64)
}

// Options configures the optional behaviour of a core.
type Options struct {
	// WritePolicy selects the private-cache store policy. Contesting
	// requires write-through (the default used by the contest package);
	// stand-alone runs default to write-back, as the paper permits in
	// non-contesting modes.
	WritePolicy cache.WritePolicy
	// RegionSize, if non-zero, records the absolute time of every
	// RegionSize-th retirement (the paper logs every 20 instructions).
	RegionSize int
	// Feed, if non-nil, enables contesting-mode result consumption.
	Feed ResultFeed
	// StoreSink, if non-nil, receives retired stores and may backpressure.
	StoreSink StoreSink
	// OnRetire, if non-nil, observes every retirement (the outgoing GRB).
	OnRetire func(idx int64, at ticks.Time)
	// RetireGate, if non-nil, is consulted before retiring each
	// instruction; returning false stalls retirement this cycle. The
	// contest layer uses it to model synchronous-exception rendezvous
	// (paper Section 4.3): an excepting instruction retires only once every
	// active core has reached it and the parallelized handler has run.
	RetireGate func(idx int64, at ticks.Time) bool
	// NoTrainOnInject disables branch predictor training on injected
	// branches (ablation; the default trains so a trailing core's predictor
	// stays warm).
	NoTrainOnInject bool
	// Checker, if non-nil, observes every executed cycle, retirement, and
	// result injection for verification (internal/invariant). The hooks
	// are nil-guarded single branches: with no checker attached the
	// steady-state loop stays allocation-free and effectively unchanged.
	Checker Checker
}

// Checker observes a core's execution for verification. Implementations
// inspect the core through its read-only Inspect accessor and must not
// mutate any core state.
type Checker interface {
	// AfterCycle runs at the end of every executed Step (fast-forwarded
	// dead cycles, which by construction change no state, are not seen).
	AfterCycle(c *Core)
	// OnRetire runs at each retirement, after the core's own bookkeeping
	// and before the Options.OnRetire observer.
	OnRetire(c *Core, seq int64, at ticks.Time)
	// OnInject runs when the core completes a fetched instruction from an
	// arrived result instead of executing it (contesting Scenario #2).
	OnInject(c *Core, seq int64, at ticks.Time)
}

// Stats aggregates a core's execution counters.
type Stats struct {
	Cycles        int64
	Retired       int64
	Branches      int64
	Mispredicts   int64
	EarlyResolved int64
	Injected      int64
	Forwarded     int64
	L1D, L2D      cache.Stats
	FinishTime    ticks.Time
}

// IPC reports retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// IPT reports retired instructions per nanosecond (the paper's
// "instructions per time" metric).
func (s Stats) IPT() float64 {
	ns := s.FinishTime.Nanoseconds()
	if ns == 0 {
		return 0
	}
	return float64(s.Retired) / ns
}

// MispredictRate reports mispredictions per branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

const noSeq = int64(-1)

// entry is one in-flight dynamic instruction.
type entry struct {
	seq           int64
	dispatchReady int64 // first cycle the front end can deliver it
	prod1, prod2  int64 // in-window producer seqs, noSeq if none
	readyHint     int64 // lower bound on source readiness from retired producers
	storeDep      int64 // older in-window store to the same address, noSeq if none
	completeCycle int64
	valueReady    int64 // completeCycle + wake-up latency
	depHead       int64 // first issue-queue entry waiting on this producer, noSeq if none
	depNext       int64 // next entry in our producer's waiter list, noSeq if none
	completed     bool
	inIQ          bool // occupies an issue-queue slot (dispatched, not yet issued)
	injected      bool
	mispredicted  bool
}

// wakeEntry schedules an issue-queue entry whose sources are all complete
// to enter the ready queue at a known future cycle.
type wakeEntry struct {
	at, seq int64
}

// stepSig is the progress signature of one cycle: if none of these change,
// the cycle was dead and left every piece of core state untouched.
type stepSig struct {
	retired, early, disp, tail, pend int64
	iq                               int
}

// Core is one simulated out-of-order processor executing a trace.
type Core struct {
	cfg  config.CoreConfig
	opts Options
	clk  ticks.Clock
	tr   *trace.Trace
	pred branch.Predictor
	hier *cache.Hierarchy

	cycle int64

	ring     []entry
	ringSize int64

	headSeq  int64 // oldest in-flight instruction (next to retire)
	dispSeq  int64 // next instruction to dispatch
	tailSeq  int64 // next instruction to fetch into the window
	fetchEnd int64 // trace length

	// Issue queue as wake lists: a dispatched entry either waits on the
	// depHead list of its first incomplete producer, sits in wakeQ until
	// its known ready cycle, or sits in readyQ (a min-heap by seq, so issue
	// selection stays oldest-first). iqCount tracks occupied IQ slots;
	// entries leaving early (resolved branches) are deleted lazily from the
	// heaps.
	iqCount int
	readyQ  []int64
	wakeQ   []wakeEntry
	retry   []int64 // scratch: ready entries deferred by the busy divider
	lsq     int     // occupied LSQ entries

	lastWriter [isa.NumRegs]int64 // in-window producer of each register
	regReadyAt [isa.NumRegs]int64 // readiness cycle once the producer retired

	lastStore map[uint64]int64 // in-window store seq per address

	pendingBranch int64 // mispredicted branch gating fetch, noSeq if none
	divFree       int64 // next cycle the divider is free

	progressed bool // the last Step changed state
	extStalled bool // the last Step was blocked by the gate or store sink

	stats          Stats
	regionSize     int
	regions        []ticks.Time
	retireInRegion int
}

// NewCore builds a core for the configuration and trace.
func NewCore(cfg config.CoreConfig, tr *trace.Trace, opts Options) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("pipeline: empty trace")
	}
	pred, err := cfg.Predictor.New()
	if err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(cfg.L1D, cfg.L2D, cfg.MemLatencyCycles, opts.WritePolicy)
	if err != nil {
		return nil, err
	}
	ringSize := int64(cfg.ROBSize + cfg.Width*cfg.FrontEndDepth + 2*cfg.Width)
	c := &Core{
		cfg:           cfg,
		opts:          opts,
		clk:           cfg.Clock(),
		tr:            tr,
		pred:          pred,
		hier:          hier,
		ring:          make([]entry, ringSize),
		ringSize:      ringSize,
		fetchEnd:      int64(tr.Len()),
		readyQ:        make([]int64, 0, cfg.IQSize),
		wakeQ:         make([]wakeEntry, 0, cfg.IQSize),
		retry:         make([]int64, 0, cfg.Width),
		lastStore:     make(map[uint64]int64),
		pendingBranch: noSeq,
		regionSize:    opts.RegionSize,
	}
	if opts.RegionSize > 0 {
		c.regions = make([]ticks.Time, 0, tr.Len()/opts.RegionSize)
	}
	for r := range c.lastWriter {
		c.lastWriter[r] = noSeq
	}
	return c, nil
}

// Config reports the core's configuration.
func (c *Core) Config() config.CoreConfig { return c.cfg }

// Clock reports the core's clock.
func (c *Core) Clock() ticks.Clock { return c.clk }

// Cycle reports the current cycle number. It advances by one per Step and
// may jump forward over dead cycles via SkipTo.
func (c *Core) Cycle() int64 { return c.cycle }

// Now reports the absolute time of the current cycle's clock edge.
func (c *Core) Now() ticks.Time { return c.clk.TimeOfCycle(c.cycle) }

// Retired reports how many instructions have retired.
func (c *Core) Retired() int64 { return c.stats.Retired }

// FetchIndex reports the core's fetch counter: the index of the next
// correct-path instruction it will fetch.
func (c *Core) FetchIndex() int64 { return c.tailSeq }

// Done reports whether the core has retired the whole trace.
func (c *Core) Done() bool { return c.stats.Retired >= c.fetchEnd }

// Stats returns a snapshot of the execution counters, including cache
// statistics.
func (c *Core) Stats() Stats {
	s := c.stats
	s.L1D = c.hier.L1.Stats
	s.L2D = c.hier.L2.Stats
	return s
}

// RegionTimes returns the absolute retirement time of each region boundary
// (every RegionSize-th instruction). The returned slice aliases internal
// state and must not be modified.
func (c *Core) RegionTimes() []ticks.Time { return c.regions }

func (c *Core) at(seq int64) *entry { return &c.ring[seq%c.ringSize] }

func (c *Core) sig() stepSig {
	return stepSig{
		retired: c.stats.Retired,
		early:   c.stats.EarlyResolved,
		disp:    c.dispSeq,
		tail:    c.tailSeq,
		pend:    c.pendingBranch,
		iq:      c.iqCount,
	}
}

// Step advances the core by one clock cycle.
func (c *Core) Step() {
	if c.Done() {
		c.cycle++
		c.progressed = true
		return
	}
	c.extStalled = false
	pre := c.sig()
	c.doRetire()
	c.doIssue()
	c.doDispatch()
	c.doFetch()
	c.cycle++
	c.stats.Cycles = c.cycle
	c.progressed = c.sig() != pre
	if c.opts.Checker != nil {
		c.opts.Checker.AfterCycle(c)
	}
}

// Progressed reports whether the most recent Step changed any core state
// (a retirement, issue, dispatch, fetch, or branch resolution). A Step
// that did not progress is a dead cycle: re-executing it any number of
// times changes nothing, which is what makes fast-forwarding sound.
func (c *Core) Progressed() bool { return c.progressed }

// SkipTo fast-forwards the cycle counter to the given cycle without
// executing the skipped cycles. The caller must guarantee every skipped
// cycle is dead — NextEvent computes such a bound — and that no external
// input (feed arrival, store-queue drain, gate change) can occur in the
// skipped window. Calls with cycle at or below the current cycle are
// no-ops. Stats.Cycles advances with the jump, exactly as if the dead
// cycles had been stepped.
func (c *Core) SkipTo(cycle int64) {
	if cycle <= c.cycle {
		return
	}
	c.cycle = cycle
	if !c.Done() {
		c.stats.Cycles = cycle
	}
}

// Advance is the event-driven replacement for Step: it executes one cycle
// and, when that cycle made no progress, fast-forwards the cycle counter to
// the next cycle at which progress is possible. When the core is blocked on
// a condition it cannot bound locally (a retire gate or store sink), it
// degrades to single-cycle stepping; contested runs bound such cores
// through the system scheduler instead.
func (c *Core) Advance() {
	c.Step()
	if c.progressed || c.Done() {
		return
	}
	if next, ok := c.NextEvent(); ok && next > c.cycle {
		c.SkipTo(next)
	}
}

// NextEvent reports a conservative lower bound on the next cycle at which
// the core can make progress, assuming no new external input arrives in the
// meantime. It should be consulted after a Step that reported no progress.
// ok is false when the core is stalled on a condition it cannot bound
// locally — a refusing retire gate or store sink, whose state is owned by
// the contesting system — in which case the caller must step cycle-by-cycle
// or bound the skip with system-level knowledge.
func (c *Core) NextEvent() (cycle int64, ok bool) {
	now := c.cycle
	if c.Done() {
		return now, true
	}
	if c.extStalled {
		return now, false
	}
	next := int64(math.MaxInt64)
	upd := func(v int64) {
		if v < next {
			next = v
		}
	}

	// Retire: the completed head commits at its completion cycle. A head
	// that was already committable did not retire for a reason the core
	// cannot see (extStalled covers the known ones); refuse to skip.
	if c.headSeq < c.dispSeq {
		if e := c.at(c.headSeq); e.completed {
			if e.completeCycle < now {
				return now, false
			}
			upd(e.completeCycle)
		}
	}

	// Issue: the earliest scheduled wake-up, and ready entries deferred by
	// the busy divider. Entries waiting on an incomplete producer need no
	// term of their own — the producer's own issue is an event that
	// reschedules them. A live non-divider entry in the ready queue means
	// the cycle was not dead after all; refuse to skip.
	if len(c.wakeQ) > 0 {
		upd(c.wakeQ[0].at)
	}
	for _, seq := range c.readyQ {
		e := c.at(seq)
		if !e.inIQ || e.completed {
			continue // lazily-deleted entry
		}
		if c.tr.At(seq).Op == isa.OpDiv && c.divFree > now {
			upd(c.divFree)
			continue
		}
		return now, false
	}

	// Dispatch: the head of the front end becomes renameable. Dispatch
	// blocked on a full ROB/IQ/LSQ resumes on a retire or issue event,
	// which the terms above already cover.
	if c.dispSeq < c.tailSeq {
		if e := c.at(c.dispSeq); e.dispatchReady >= now {
			upd(e.dispatchReady)
		}
	}

	// Fetch: a pending mispredicted branch redirects the cycle after it
	// completes, or resolves early when its result arrives on the feed.
	if c.pendingBranch != noSeq {
		be := c.at(c.pendingBranch)
		if be.completed {
			upd(be.completeCycle + 1)
		}
		if c.opts.Feed != nil {
			if at, hinted := c.opts.Feed.NextArrival(c.pendingBranch); hinted {
				cc := c.clk.CycleAt(at)
				if c.clk.TimeOfCycle(cc) < at {
					cc++
				}
				upd(cc)
			}
		}
	}

	if next == math.MaxInt64 {
		return now, false
	}
	if next < now {
		next = now
	}
	return next, true
}

// doRetire commits up to Width completed instructions in order.
func (c *Core) doRetire() {
	now := c.cycle
	for n := 0; n < c.cfg.Width && c.headSeq < c.dispSeq; n++ {
		e := c.at(c.headSeq)
		if !e.completed || e.completeCycle > now {
			return
		}
		if c.opts.RetireGate != nil && !c.opts.RetireGate(e.seq, c.clk.TimeOfCycle(now)) {
			c.extStalled = true
			return // exception rendezvous in progress
		}
		in := c.tr.At(e.seq)
		if in.Op == isa.OpStore {
			if c.opts.StoreSink != nil && !c.opts.StoreSink.CanAccept() {
				c.extStalled = true
				return // synchronizing store queue is full
			}
			// Perform the store in the private hierarchy at commit.
			c.hier.Store(in.Addr, now)
			if c.opts.StoreSink != nil {
				c.opts.StoreSink.Performed(e.seq, in.Addr)
			}
			if c.lastStore[in.Addr] == e.seq {
				delete(c.lastStore, in.Addr)
			}
		}
		if in.Op == isa.OpBranch {
			c.stats.Branches++
			if e.mispredicted {
				c.stats.Mispredicts++
			}
		}
		if in.HasDst() && c.lastWriter[in.Dst] == e.seq {
			// The architectural value now lives in the register file.
			c.regReadyAt[in.Dst] = e.valueReady
			c.lastWriter[in.Dst] = noSeq
		}
		if in.IsMem() {
			c.lsq--
		}
		c.headSeq++
		c.stats.Retired++
		at := c.clk.TimeOfCycle(now)
		if c.regionSize > 0 {
			c.retireInRegion++
			if c.retireInRegion == c.regionSize {
				c.retireInRegion = 0
				c.regions = append(c.regions, at)
			}
		}
		if c.opts.Checker != nil {
			c.opts.Checker.OnRetire(c, e.seq, at)
		}
		if c.opts.OnRetire != nil {
			c.opts.OnRetire(e.seq, at)
		}
		if c.stats.Retired >= c.fetchEnd {
			c.stats.FinishTime = at
			return
		}
	}
}

// srcReady reports whether the value produced by in-window producer p is
// available at cycle `now`, and the cycle it became (or becomes) available.
func (c *Core) srcReady(p int64) (avail bool, readyAt int64) {
	if p == noSeq {
		return true, 0
	}
	pe := c.at(p)
	if p < c.headSeq {
		// Producer retired. Its ring slot normally still holds its wake-up
		// time; if the slot was already reused by a much younger fetch, the
		// value has long been architectural (the retirement was at least a
		// full window ago), so it is simply ready.
		if pe.seq == p {
			return true, pe.valueReady
		}
		return true, 0
	}
	if !pe.completed {
		return false, 0
	}
	return true, pe.valueReady
}

// blockerOf reports the first incomplete in-window dependence of e — a
// source producer, or for loads the store being forwarded from — or noSeq
// when every dependence is complete. An entry waits on one blocker at a
// time and is re-evaluated when it completes.
func (c *Core) blockerOf(e *entry) int64 {
	if p := e.prod1; p != noSeq && p >= c.headSeq && !c.at(p).completed {
		return p
	}
	if p := e.prod2; p != noSeq && p >= c.headSeq && !c.at(p).completed {
		return p
	}
	if d := e.storeDep; d != noSeq && d >= c.headSeq && !c.at(d).completed {
		return d
	}
	return noSeq
}

// readyAtOf reports the earliest cycle e can issue once every dependence is
// complete: the latest source wake-up, the retired-producer hint, and for a
// forwarded load the forwarding store's completion.
func (c *Core) readyAtOf(e *entry) int64 {
	_, at := c.srcReady(e.prod1)
	if _, a2 := c.srcReady(e.prod2); a2 > at {
		at = a2
	}
	if e.readyHint > at {
		at = e.readyHint
	}
	if d := e.storeDep; d != noSeq && d >= c.headSeq {
		if de := c.at(d); de.completeCycle > at {
			at = de.completeCycle
		}
	}
	return at
}

// enqueueForIssue places a dispatched entry into the issue wake lists:
// waiting on its first incomplete producer, scheduled for a future ready
// cycle, or immediately ready.
func (c *Core) enqueueForIssue(seq int64) {
	e := c.at(seq)
	if !e.inIQ || e.completed {
		return // resolved while waiting (an early-resolved branch)
	}
	if b := c.blockerOf(e); b != noSeq {
		be := c.at(b)
		e.depNext = be.depHead
		be.depHead = seq
		return
	}
	if at := c.readyAtOf(e); at > c.cycle {
		c.wakeQ = pushWake(c.wakeQ, wakeEntry{at: at, seq: seq})
	} else {
		c.readyQ = pushSeq(c.readyQ, seq)
	}
}

// wakeDependents re-evaluates every entry that was waiting on e, which has
// just completed; each either parks on its next incomplete dependence or is
// scheduled for issue.
func (c *Core) wakeDependents(e *entry) {
	for s := e.depHead; s != noSeq; {
		de := c.at(s)
		next := de.depNext
		de.depNext = noSeq
		c.enqueueForIssue(s)
		s = next
	}
	e.depHead = noSeq
}

// doIssue selects up to Width ready instructions, oldest first, and
// schedules their completion. Only woken entries are examined: entries
// waiting on a producer are untouched until it completes, and entries with
// a known future ready cycle sit in the wake heap until it is due.
func (c *Core) doIssue() {
	now := c.cycle
	for len(c.wakeQ) > 0 && c.wakeQ[0].at <= now {
		var w wakeEntry
		c.wakeQ, w = popWake(c.wakeQ)
		if e := c.at(w.seq); e.inIQ && !e.completed {
			c.readyQ = pushSeq(c.readyQ, w.seq)
		}
	}
	issued := 0
	retry := c.retry[:0]
	for len(c.readyQ) > 0 && issued < c.cfg.Width {
		var seq int64
		c.readyQ, seq = popSeq(c.readyQ)
		e := c.at(seq)
		if !e.inIQ || e.completed {
			continue // lazily-deleted entry
		}
		in := c.tr.At(seq)
		execLat := in.Op.Latency()
		if in.Op == isa.OpLoad {
			if e.storeDep != noSeq {
				// An older store to the same address forwards its data:
				// from the LSQ while in-window (its data is ready — the
				// wake lists admitted us only after its completion cycle),
				// or from the write buffer after it retires.
				execLat = 1
				c.stats.Forwarded++
			} else {
				execLat = c.hier.Load(in.Addr, now)
			}
		}
		if in.Op == isa.OpDiv {
			if c.divFree > now {
				retry = append(retry, seq)
				continue
			}
			c.divFree = now + int64(c.cfg.SchedDepth) + int64(execLat)
		}
		e.completed = true
		e.completeCycle = now + int64(c.cfg.SchedDepth) + int64(execLat)
		// Dependents wake through the bypass network: they can issue
		// execLat + WakeupLatency cycles after the producer issues, with
		// their own scheduler pipeline overlapping the producer's (wake-up
		// 0 means back-to-back for single-cycle operations).
		e.valueReady = now + int64(execLat) + int64(c.cfg.WakeupLatency)
		e.inIQ = false
		c.iqCount--
		issued++
		c.wakeDependents(e)
	}
	for _, seq := range retry {
		c.readyQ = pushSeq(c.readyQ, seq)
	}
	c.retry = retry[:0]
}

// producerOf resolves the current producer of register r at dispatch time.
func (c *Core) producerOf(r isa.RegID) (prod int64, hint int64) {
	if r == isa.NoReg {
		return noSeq, 0
	}
	if p := c.lastWriter[r]; p != noSeq {
		return p, 0
	}
	return noSeq, c.regReadyAt[r]
}

// doDispatch renames and dispatches up to Width front-end instructions into
// the window. Injected instructions complete here (value written straight
// into the register file, stealing write ports within the core's width).
func (c *Core) doDispatch() {
	now := c.cycle
	for n := 0; n < c.cfg.Width && c.dispSeq < c.tailSeq; n++ {
		e := c.at(c.dispSeq)
		if e.dispatchReady > now {
			return
		}
		if c.dispSeq-c.headSeq >= int64(c.cfg.ROBSize) {
			return // ROB full
		}
		in := c.tr.At(e.seq)
		if in.IsMem() && c.lsq >= c.cfg.LSQSize {
			return // LSQ full
		}
		needIQ := !e.injected && !e.completed // early-resolved branches skip the IQ too
		if needIQ && c.iqCount >= c.cfg.IQSize {
			return // issue queue full
		}

		if in.IsMem() {
			c.lsq++
		}
		switch {
		case e.injected:
			// Result injection: complete at rename. Branches were already
			// completed in fetch; register producers write their value now;
			// stores become ready immediately and perform at commit.
			if !e.completed {
				e.completed = true
				e.completeCycle = now
				e.valueReady = now
			}
			c.stats.Injected++
			if in.HasDst() {
				c.lastWriter[in.Dst] = noSeq
				c.regReadyAt[in.Dst] = now
			}
		case e.completed:
			// Branch resolved early by an arrived result before dispatch:
			// nothing left to execute.
		default:
			e.prod1, e.readyHint = c.producerOf(in.Src1)
			var h2 int64
			e.prod2, h2 = c.producerOf(in.Src2)
			if h2 > e.readyHint {
				e.readyHint = h2
			}
			if in.Op == isa.OpLoad {
				if dep, ok := c.lastStore[in.Addr]; ok {
					e.storeDep = dep
				} else {
					e.storeDep = noSeq
				}
			}
			if in.Op == isa.OpStore {
				c.lastStore[in.Addr] = e.seq
			}
			if in.HasDst() {
				c.lastWriter[in.Dst] = e.seq
			}
			c.iqCount++
			e.inIQ = true
			c.enqueueForIssue(e.seq)
		}
		c.dispSeq++
	}
}

// doFetch brings up to Width instructions into the window, predicting
// branches and consulting the result feed for injection and early branch
// resolution.
func (c *Core) doFetch() {
	now := c.cycle
	t := c.clk.TimeOfCycle(now)

	if c.pendingBranch != noSeq {
		be := c.at(c.pendingBranch)
		switch {
		case be.completed && be.completeCycle < now:
			// Redirect happened last cycle; fetch resumes this cycle.
			c.pendingBranch = noSeq
		case c.opts.Feed != nil && c.opts.Feed.ResultAvailable(c.pendingBranch, t):
			// Figure 5 corner case: the branch's retired outcome arrived
			// from another core before this core resolved it. Resolve early;
			// the core is now trailing and will consume results at fetch.
			if !be.completed || be.completeCycle > now {
				if !be.completed && be.inIQ {
					// The branch leaves the issue queue without issuing;
					// its wake-list entries are discarded lazily.
					be.inIQ = false
					c.iqCount--
				}
				be.completed = true
				be.completeCycle = now
				be.valueReady = now
				c.stats.EarlyResolved++
			}
			return // redirect consumes this cycle; fetch resumes next cycle
		default:
			return // still waiting on the branch
		}
	}

	fetched := 0
	for fetched < c.cfg.Width {
		if c.tailSeq >= c.fetchEnd {
			break
		}
		if c.tailSeq-c.headSeq >= c.ringSize {
			break // window structurally full
		}
		in := c.tr.At(c.tailSeq)
		e := c.at(c.tailSeq)
		*e = entry{
			seq:           c.tailSeq,
			dispatchReady: now + int64(c.cfg.FrontEndDepth),
			prod1:         noSeq,
			prod2:         noSeq,
			storeDep:      noSeq,
			depHead:       noSeq,
			depNext:       noSeq,
		}
		if c.opts.Feed != nil && c.opts.Feed.ResultAvailable(c.tailSeq, t) {
			e.injected = true
			if c.opts.Checker != nil {
				c.opts.Checker.OnInject(c, c.tailSeq, t)
			}
			c.opts.Feed.ConsumeThrough(c.tailSeq)
			if in.Op == isa.OpBranch {
				// Outcome known: complete in the fetch stage. Training keeps
				// the predictor warm for when this core takes the lead.
				e.completed = true
				e.completeCycle = now
				e.valueReady = now
				if !c.opts.NoTrainOnInject {
					c.pred.Update(in.PC, in.Taken)
				}
			}
		} else if in.Op == isa.OpBranch {
			predicted := c.pred.Predict(in.PC)
			if predicted != in.Taken {
				e.mispredicted = true
				c.pendingBranch = c.tailSeq
			}
			// Train at fetch: the trace-driven model resolves the direction
			// immediately, which stands in for speculative history update
			// plus in-order counter training.
			c.pred.Update(in.PC, in.Taken)
		}
		c.tailSeq++
		fetched++
		if in.Op == isa.OpBranch {
			if e.mispredicted {
				break // fetch stalls until resolution
			}
			if in.Taken {
				break // one taken branch per fetch group
			}
		}
	}

	if c.opts.Feed != nil {
		// Scenario #1: late results are popped and discarded — but never
		// past the oldest unresolved mispredicted branch, whose outcome may
		// still resolve it early.
		limit := c.tailSeq - 1
		if c.pendingBranch != noSeq && c.pendingBranch-1 < limit {
			limit = c.pendingBranch - 1
		}
		if limit >= 0 {
			c.opts.Feed.ConsumeThrough(limit)
		}
	}
}

// pushSeq and popSeq maintain a binary min-heap of sequence numbers: the
// ready queue, ordered so issue selection is oldest-first.
func pushSeq(h []int64, v int64) []int64 {
	h = append(h, v)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func popSeq(h []int64) ([]int64, int64) {
	v := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for i := 0; ; {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		m := l
		if r := l + 1; r < len(h) && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return h, v
}

// pushWake and popWake maintain a binary min-heap of scheduled wake-ups,
// ordered by due cycle (ties by age for determinism).
func wakeLess(a, b wakeEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func pushWake(h []wakeEntry, v wakeEntry) []wakeEntry {
	h = append(h, v)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !wakeLess(h[i], h[p]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func popWake(h []wakeEntry) ([]wakeEntry, wakeEntry) {
	v := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for i := 0; ; {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		m := l
		if r := l + 1; r < len(h) && wakeLess(h[r], h[l]) {
			m = r
		}
		if !wakeLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return h, v
}
