package pipeline

// Read-only inspection of a core's microarchitectural state, for the
// invariant checker (internal/invariant). Everything here is accessor-only:
// the checker sees the window, the issue wake lists, and the occupancy
// counters exactly as the engine maintains them, so it can cross-check them
// against a naive reconstruction without being able to perturb the run.

import "archcontest/internal/trace"

// EntryView is a read-only projection of one in-flight window entry.
type EntryView struct {
	Seq           int64
	DispatchReady int64
	Prod1, Prod2  int64 // in-window producer seqs, NoSeq if none
	StoreDep      int64 // forwarding store, NoSeq if none
	CompleteCycle int64
	ValueReady    int64
	Completed     bool
	InIQ          bool
	Injected      bool
	Mispredicted  bool
}

// NoSeq is the absent-sequence marker used by EntryView link fields.
const NoSeq = noSeq

// Inspector is a read-only view of a Core.
type Inspector struct{ c *Core }

// Inspect returns the core's read-only inspector.
func (c *Core) Inspect() Inspector { return Inspector{c: c} }

// Trace reports the trace the core is executing.
func (c *Core) Trace() *trace.Trace { return c.tr }

// HeadSeq is the oldest in-flight instruction (the next to retire).
func (i Inspector) HeadSeq() int64 { return i.c.headSeq }

// DispSeq is the next instruction to dispatch into the window.
func (i Inspector) DispSeq() int64 { return i.c.dispSeq }

// TailSeq is the next instruction to fetch (the core's fetch counter).
func (i Inspector) TailSeq() int64 { return i.c.tailSeq }

// FetchEnd is the trace length.
func (i Inspector) FetchEnd() int64 { return i.c.fetchEnd }

// RingSize is the structural window capacity.
func (i Inspector) RingSize() int64 { return i.c.ringSize }

// IQCount is the engine's issue-queue occupancy counter.
func (i Inspector) IQCount() int { return i.c.iqCount }

// LSQCount is the engine's load/store-queue occupancy counter.
func (i Inspector) LSQCount() int { return i.c.lsq }

// PendingBranch is the mispredicted branch gating fetch, NoSeq if none.
func (i Inspector) PendingBranch() int64 { return i.c.pendingBranch }

// Entry returns the window entry for seq. ok is false when the ring slot
// no longer holds that sequence (the slot was reused by a younger fetch,
// which for an in-window seq is an aliasing bug the checker reports).
func (i Inspector) Entry(seq int64) (EntryView, bool) {
	e := i.c.at(seq)
	if e.seq != seq {
		return EntryView{}, false
	}
	return EntryView{
		Seq:           e.seq,
		DispatchReady: e.dispatchReady,
		Prod1:         e.prod1,
		Prod2:         e.prod2,
		StoreDep:      e.storeDep,
		CompleteCycle: e.completeCycle,
		ValueReady:    e.valueReady,
		Completed:     e.completed,
		InIQ:          e.inIQ,
		Injected:      e.injected,
		Mispredicted:  e.mispredicted,
	}, true
}

// ReadySeqs appends the sequence numbers currently in the ready queue
// (including lazily-deleted entries) to buf and returns it.
func (i Inspector) ReadySeqs(buf []int64) []int64 { return append(buf, i.c.readyQ...) }

// WakeSeqs appends the sequence numbers currently scheduled in the wake
// heap to buf and returns it.
func (i Inspector) WakeSeqs(buf []int64) []int64 {
	for _, w := range i.c.wakeQ {
		buf = append(buf, w.seq)
	}
	return buf
}

// Waiters appends the sequence numbers parked on seq's dependent wake list
// to buf and returns it.
func (i Inspector) Waiters(seq int64, buf []int64) []int64 {
	e := i.c.at(seq)
	if e.seq != seq {
		return buf
	}
	for s := e.depHead; s != noSeq; s = i.c.at(s).depNext {
		buf = append(buf, s)
	}
	return buf
}

// Blocker reports seq's first incomplete in-window dependence (NoSeq when
// every dependence is complete), exactly as the wake lists compute it.
func (i Inspector) Blocker(seq int64) int64 { return i.c.blockerOf(i.c.at(seq)) }

// ReadyAt reports the earliest cycle seq may issue once unblocked, exactly
// as the wake lists compute it.
func (i Inspector) ReadyAt(seq int64) int64 { return i.c.readyAtOf(i.c.at(seq)) }

// RetiredCount is the number of retired instructions.
func (i Inspector) RetiredCount() int64 { return i.c.stats.Retired }

// CycleCount is the Stats.Cycles counter.
func (i Inspector) CycleCount() int64 { return i.c.stats.Cycles }
