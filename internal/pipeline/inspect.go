package pipeline

// Read-only inspection of a core's microarchitectural state, for the
// invariant checker (internal/invariant). Everything here is accessor-only:
// the checker sees the window, the issue wake lists, and the occupancy
// counters exactly as the engine maintains them, so it can cross-check them
// against a naive reconstruction without being able to perturb the run.
// The accessors reconstruct entry-shaped views from the structure-of-arrays
// window (see pipeline.go "Data layout"): a ready "queue" view is built by
// scanning the ready bitmap in window order, and waiter lists by walking
// the dependence links in the depHead/depNext field arrays.

import "archcontest/internal/trace"

// EntryView is a read-only projection of one in-flight window entry,
// gathered from the per-field window arrays. CompleteCycle and ValueReady
// are meaningful only when Completed is set (the arrays are not reset at
// fetch; completion writes them).
type EntryView struct {
	Seq           int64
	DispatchReady int64
	Prod1, Prod2  int64 // in-window producer seqs, NoSeq if none
	StoreDep      int64 // forwarding store, NoSeq if none
	CompleteCycle int64
	ValueReady    int64
	Completed     bool
	InIQ          bool
	Injected      bool
	Mispredicted  bool
}

// NoSeq is the absent-sequence marker used by EntryView link fields.
const NoSeq = noSeq

// Inspector is a read-only view of a Core.
type Inspector struct{ c *Core }

// Inspect returns the core's read-only inspector.
func (c *Core) Inspect() Inspector { return Inspector{c: c} }

// Trace reports the trace the core is executing.
func (c *Core) Trace() *trace.Trace { return c.tr }

// HeadSeq is the oldest in-flight instruction (the next to retire).
func (i Inspector) HeadSeq() int64 { return i.c.headSeq }

// DispSeq is the next instruction to dispatch into the window.
func (i Inspector) DispSeq() int64 { return i.c.dispSeq }

// TailSeq is the next instruction to fetch (the core's fetch counter).
func (i Inspector) TailSeq() int64 { return i.c.tailSeq }

// FetchEnd is the trace length.
func (i Inspector) FetchEnd() int64 { return i.c.fetchEnd }

// RingSize is the structural window capacity: the bound fetch enforces on
// tailSeq-headSeq. The physical slot ring is the next power of two above
// it.
func (i Inspector) RingSize() int64 { return i.c.windowCap }

// IQCount is the engine's issue-queue occupancy counter.
func (i Inspector) IQCount() int { return i.c.iqCount }

// LSQCount is the engine's load/store-queue occupancy counter.
func (i Inspector) LSQCount() int { return i.c.lsq }

// PendingBranch is the mispredicted branch gating fetch, NoSeq if none.
func (i Inspector) PendingBranch() int64 { return i.c.pendingBranch }

// Entry returns the window entry for seq. ok is false when the ring slot
// no longer holds that sequence (the slot was reused by a younger fetch,
// which for an in-window seq is an aliasing bug the checker reports).
func (i Inspector) Entry(seq int64) (EntryView, bool) {
	c := i.c
	slot := seq & c.ringMask
	if c.seqs[slot] != seq {
		return EntryView{}, false
	}
	fl := c.flags[slot]
	return EntryView{
		Seq:           seq,
		DispatchReady: c.dispatchReady[slot],
		Prod1:         c.prod1[slot],
		Prod2:         c.prod2[slot],
		StoreDep:      c.storeDep[slot],
		CompleteCycle: c.completeCycle[slot],
		ValueReady:    c.valueReady[slot],
		Completed:     fl&flagCompleted != 0,
		InIQ:          c.validBM.test(slot),
		Injected:      fl&flagInjected != 0,
		Mispredicted:  fl&flagMispredicted != 0,
	}, true
}

// ReadySeqs appends the sequence numbers currently ready to buf and
// returns it. Under the bitmap scheduler every reported entry is live (the
// ready bitmap is maintained eagerly); under LegacySched the heap may also
// hold lazily-deleted entries, exactly as the checker expects.
func (i Inspector) ReadySeqs(buf []int64) []int64 {
	c := i.c
	if c.legacy {
		return append(buf, c.readyQ...)
	}
	headSlot := c.headSeq & c.ringMask
	for slot := c.readyBM.next(0); slot >= 0; slot = c.readyBM.next(slot + 1) {
		buf = append(buf, c.headSeq+((slot-headSlot)&c.ringMask))
	}
	return buf
}

// WakeSeqs appends the sequence numbers currently scheduled for a future
// wake-up — timing-wheel entries plus the overflow/legacy heap — to buf
// and returns it.
func (i Inspector) WakeSeqs(buf []int64) []int64 {
	c := i.c
	for _, w := range c.wakeQ {
		buf = append(buf, w.seq)
	}
	for b := c.wheelBM.next(0); b >= 0; b = c.wheelBM.next(b + 1) {
		for h := c.bucketHead[b]; h != 0; h = c.wheelNext[h-1] {
			buf = append(buf, c.seqs[h-1])
		}
	}
	return buf
}

// Waiters appends the sequence numbers parked on seq's dependent wake list
// to buf and returns it.
func (i Inspector) Waiters(seq int64, buf []int64) []int64 {
	c := i.c
	slot := seq & c.ringMask
	if c.seqs[slot] != seq {
		return buf
	}
	for s := c.depHead[slot]; s != noSeq; s = c.depNext[s&c.ringMask] {
		buf = append(buf, s)
	}
	return buf
}

// Blocker reports seq's first incomplete in-window dependence (NoSeq when
// every dependence is complete), exactly as the wake lists compute it.
func (i Inspector) Blocker(seq int64) int64 { return i.c.blockerOf(seq & i.c.ringMask) }

// ReadyAt reports the earliest cycle seq may issue once unblocked, exactly
// as the wake lists compute it.
func (i Inspector) ReadyAt(seq int64) int64 { return i.c.readyAtOf(seq & i.c.ringMask) }

// RetiredCount is the number of retired instructions.
func (i Inspector) RetiredCount() int64 { return i.c.stats.Retired }

// CycleCount is the Stats.Cycles counter.
func (i Inspector) CycleCount() int64 { return i.c.stats.Cycles }
