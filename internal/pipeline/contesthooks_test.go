package pipeline

// Unit-level tests of the contesting hooks: a fake ResultFeed and StoreSink
// drive a single core through injection, early branch resolution, and store
// backpressure without a full contest.System.

import (
	"testing"

	"archcontest/internal/isa"
	"archcontest/internal/ticks"
	"archcontest/internal/trace"
)

// allFeed makes every result available from time zero: the core is always
// trailing and should advance at its full width via injection.
type allFeed struct{ consumed int64 }

func (f *allFeed) ResultAvailable(idx int64, t ticks.Time) bool { return true }
func (f *allFeed) NextArrival(idx int64) (ticks.Time, bool)     { return 0, true }
func (f *allFeed) ConsumeThrough(idx int64)                     { f.consumed = idx }

// afterFeed makes results available only from a given absolute time.
type afterFeed struct {
	at ticks.Time
}

func (f *afterFeed) ResultAvailable(idx int64, t ticks.Time) bool { return t >= f.at }
func (f *afterFeed) NextArrival(idx int64) (ticks.Time, bool)     { return f.at, true }
func (f *afterFeed) ConsumeThrough(idx int64)                     {}

func TestInjectionRunsAtFullWidth(t *testing.T) {
	// A trace that would crawl when executed (serial chain of L2 misses)
	// retires at ~width IPC when every result is injected.
	insts := make([]isa.Inst, 0, 4000)
	for i := 0; i < 2000; i++ {
		addr := 0x100000 + uint64(i)*7919*64%(1<<27)
		insts = append(insts,
			isa.Inst{Op: isa.OpLoad, PC: 0x40, Dst: 10, Src1: 10, Addr: addr},
			isa.Inst{Op: isa.OpALU, PC: 0x44, Dst: 10, Src1: 10},
		)
	}
	tr := trace.New("chainload", insts)
	cfg := testConfig()

	slow := runToCompletion(t, cfg, tr, Options{})
	feed := &allFeed{}
	fast := runToCompletion(t, cfg, tr, Options{Feed: feed})

	if fast.Stats().Injected != int64(len(insts)) {
		t.Errorf("injected %d of %d", fast.Stats().Injected, len(insts))
	}
	if ipc := fast.Stats().IPC(); ipc < float64(cfg.Width)*0.7 {
		t.Errorf("injected IPC %.2f well below width %d", ipc, cfg.Width)
	}
	if fast.Stats().Cycles*4 > slow.Stats().Cycles {
		t.Errorf("injection only %dx faster (injected %d cycles vs %d)",
			slow.Stats().Cycles/fast.Stats().Cycles, fast.Stats().Cycles, slow.Stats().Cycles)
	}
	// Injected loads never touch the private caches.
	if fast.Stats().L1D.Accesses != 0 {
		t.Errorf("injected run made %d L1 accesses", fast.Stats().L1D.Accesses)
	}
}

func TestInjectedBranchesDontMispredict(t *testing.T) {
	insts := make([]isa.Inst, 0, 2000)
	taken := false
	for i := 0; i < 1000; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpALU, PC: 0x40, Dst: 10, Src1: 1})
		taken = !taken
		insts = append(insts, isa.Inst{Op: isa.OpBranch, PC: 0x80, Src1: 10, Taken: taken})
	}
	tr := trace.New("br", insts)
	c := runToCompletion(t, testConfig(), tr, Options{Feed: &allFeed{}})
	st := c.Stats()
	if st.Mispredicts != 0 {
		t.Errorf("%d mispredicts while fully injected", st.Mispredicts)
	}
}

func TestEarlyBranchResolution(t *testing.T) {
	// An alternating branch is mispredicted by the bimodal test predictor;
	// results become available shortly after the run starts, so the stalled
	// branch should resolve early from the feed (the Figure 5 corner case).
	insts := make([]isa.Inst, 0, 400)
	taken := false
	for i := 0; i < 200; i++ {
		// A slow load feeds the branch so its own resolution is late.
		addr := 0x100000 + uint64(i)*64*977%(1<<26)
		insts = append(insts,
			isa.Inst{Op: isa.OpLoad, PC: 0x40, Dst: 10, Src1: 1, Addr: addr},
			isa.Inst{Op: isa.OpALU, PC: 0x44, Dst: 11, Src1: 10},
		)
		taken = !taken
		insts = append(insts, isa.Inst{Op: isa.OpBranch, PC: 0x80, Src1: 11, Taken: taken})
	}
	tr := trace.New("early", insts)
	// Results arrive at cycle ~1000 (50k ticks at the 0.5ns test clock):
	// late enough that the core has fetched and mispredicted branches the
	// normal way, early enough that plenty of trace remains.
	c := runToCompletion(t, testConfig(), tr, Options{Feed: &afterFeed{at: 50_000}})
	if c.Stats().EarlyResolved == 0 {
		t.Error("no branches resolved early despite available results")
	}
}

// blockingSink refuses stores after the first `limit` and counts attempts.
type blockingSink struct {
	limit     int
	performed int
}

func (s *blockingSink) CanAccept() bool { return s.performed < s.limit }
func (s *blockingSink) Performed(idx int64, addr uint64) {
	s.performed++
	if s.performed > s.limit {
		panic("store performed past CanAccept refusal")
	}
}

func TestStoreSinkBackpressure(t *testing.T) {
	insts := make([]isa.Inst, 0, 64)
	for i := 0; i < 32; i++ {
		insts = append(insts,
			isa.Inst{Op: isa.OpALU, PC: 0x40, Dst: 10, Src1: 1},
			isa.Inst{Op: isa.OpStore, PC: 0x44, Src1: 1, Src2: 10, Addr: 0x1000 + uint64(i)*8},
		)
	}
	tr := trace.New("stores", insts)
	sink := &blockingSink{limit: 5}
	c, err := NewCore(testConfig(), tr, Options{StoreSink: sink})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000 && !c.Done(); i++ {
		c.Step()
	}
	if c.Done() {
		t.Fatal("core finished despite a permanently refusing store sink")
	}
	if sink.performed != 5 {
		t.Errorf("performed %d stores, want exactly the accepted 5", sink.performed)
	}
	// Retirement must be stuck at the refused store, not before or after.
	if got := c.Retired(); got != 11 {
		t.Errorf("retired %d instructions, want 11 (5 stores + 6 ALUs)", got)
	}
}

func TestNoTrainOnInject(t *testing.T) {
	// With training disabled, a fully-injected run leaves the predictor
	// cold; re-running the same core state is not observable directly, so
	// assert via the mispredict counter of a mixed feed: available only for
	// the first half, so the second half executes with whatever the
	// predictor learned.
	insts := make([]isa.Inst, 0, 2000)
	for i := 0; i < 1000; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpALU, PC: 0x40, Dst: 10, Src1: 1})
		insts = append(insts, isa.Inst{Op: isa.OpBranch, PC: 0x80, Src1: 10, Taken: true})
	}
	tr := trace.New("train", insts)
	halfFeed := func() ResultFeed { return &prefixFeed{until: 1000} }

	trained := runToCompletion(t, testConfig(), tr, Options{Feed: halfFeed()}).Stats()
	cold := runToCompletion(t, testConfig(), tr, Options{Feed: halfFeed(), NoTrainOnInject: true}).Stats()
	if cold.Mispredicts < trained.Mispredicts {
		t.Errorf("cold predictor mispredicted %d, trained %d", cold.Mispredicts, trained.Mispredicts)
	}
}

// prefixFeed injects only the first `until` instructions.
type prefixFeed struct{ until int64 }

func (f *prefixFeed) ResultAvailable(idx int64, t ticks.Time) bool { return idx < f.until }
func (f *prefixFeed) NextArrival(idx int64) (ticks.Time, bool) {
	if idx < f.until {
		return 0, true
	}
	return 0, false
}
func (f *prefixFeed) ConsumeThrough(idx int64) {}
