package pipeline

import "math/bits"

// slotBitmap is a two-level bitmap over window ring slots: level-0 words
// hold one bit per slot and a summary level holds one bit per level-0
// word, so locating the next set slot costs two TrailingZeros64 scans and
// at most a handful of word loads regardless of window size (the SupraX
// ready-bitmap + count-zeros selection pattern). The engine keeps two of
// these per core: the valid bitmap (slots occupied by a dispatched,
// unissued instruction — the live issue queue) and the ready bitmap (the
// subset whose dependences are all satisfied at or before the current
// cycle). Ready bits are maintained eagerly — set when an entry becomes
// ready, cleared when it issues or leaves the queue early — so every set
// bit is live and issue selection never skips lazily-deleted debris.
type slotBitmap struct {
	words []uint64
	summ  []uint64
}

// newSlotBitmap builds a bitmap over the given power-of-two slot count.
func newSlotBitmap(slots int64) slotBitmap {
	nw := (slots + 63) >> 6
	ns := (nw + 63) >> 6
	back := make([]uint64, nw+ns)
	return slotBitmap{words: back[:nw:nw], summ: back[nw:]}
}

// newSlotBitmapPair builds the valid and ready bitmaps for a ring of the
// given power-of-two slot count, carved from one backing allocation.
func newSlotBitmapPair(slots int64) (valid, ready slotBitmap) {
	nw := (slots + 63) >> 6
	ns := (nw + 63) >> 6
	back := make([]uint64, 2*(nw+ns))
	valid = slotBitmap{words: back[:nw:nw], summ: back[nw : nw+ns : nw+ns]}
	back = back[nw+ns:]
	ready = slotBitmap{words: back[:nw:nw], summ: back[nw:]}
	return valid, ready
}

func (b *slotBitmap) set(slot int64) {
	w := slot >> 6
	b.words[w] |= 1 << (uint(slot) & 63)
	b.summ[w>>6] |= 1 << (uint(w) & 63)
}

func (b *slotBitmap) clear(slot int64) {
	w := slot >> 6
	if b.words[w] &= ^(uint64(1) << (uint(slot) & 63)); b.words[w] == 0 {
		b.summ[w>>6] &^= 1 << (uint(w) & 63)
	}
}

func (b *slotBitmap) test(slot int64) bool {
	return b.words[slot>>6]>>(uint(slot)&63)&1 != 0
}

func (b *slotBitmap) isEmpty() bool {
	for _, s := range b.summ {
		if s != 0 {
			return false
		}
	}
	return true
}

// next returns the first set slot at or after from, or -1 when none.
func (b *slotBitmap) next(from int64) int64 {
	w := from >> 6
	if w >= int64(len(b.words)) {
		return -1
	}
	if m := b.words[w] >> (uint(from) & 63); m != 0 {
		return from + int64(bits.TrailingZeros64(m))
	}
	// Mask away summary bits for words at or below w, then scan upward.
	sw := w >> 6
	m := b.summ[sw] &^ ((uint64(1)<<(uint(w)&63))<<1 - 1)
	for {
		if m != 0 {
			nw := sw<<6 + int64(bits.TrailingZeros64(m))
			return nw<<6 + int64(bits.TrailingZeros64(b.words[nw]))
		}
		if sw++; sw >= int64(len(b.summ)) {
			return -1
		}
		m = b.summ[sw]
	}
}

// firstFrom returns the first set slot in cyclic order starting at start
// (wrapping past the highest slot back to zero), or -1 when the bitmap is
// empty. Scanning from the window head's slot visits ready entries in
// sequence-number order, which keeps issue selection oldest-first.
func (b *slotBitmap) firstFrom(start int64) int64 {
	if s := b.next(start); s >= 0 {
		return s
	}
	if start == 0 {
		return -1
	}
	return b.next(0)
}
