package pipeline

// Focused coverage of the early-resolved-branch issue-queue path: a branch
// that is already dispatched (occupying an IQ slot, parked on its
// producer's wake list) gets its outcome from the feed while fetch-gated.
// It must free its IQ slot immediately and be skipped, not re-queued, when
// its producer later completes and wakes its dependents.

import (
	"testing"

	"archcontest/internal/isa"
	"archcontest/internal/ticks"
	"archcontest/internal/trace"
)

// branchOnlyFeed makes branch outcomes (and everything after `from` ticks)
// visible, so the first in-flight mispredicted branch resolves early while
// the load feeding it is still executing.
type branchOnlyFeed struct {
	tr   *trace.Trace
	from ticks.Time
}

func (f *branchOnlyFeed) ResultAvailable(idx int64, t ticks.Time) bool {
	return t >= f.from && f.tr.At(idx).Op == isa.OpBranch
}
func (f *branchOnlyFeed) NextArrival(idx int64) (ticks.Time, bool) {
	if f.tr.At(idx).Op == isa.OpBranch {
		return f.from, true
	}
	return 0, false
}
func (f *branchOnlyFeed) ConsumeThrough(idx int64) {}

func TestEarlyResolvedBranchFreesIQSlot(t *testing.T) {
	// A serial chain of slow loads, each feeding a mispredicted branch: the
	// branch dispatches into the IQ and parks on the load's wake list, then
	// resolves early from the feed before the load completes.
	insts := make([]isa.Inst, 0, 200)
	taken := false
	for i := 0; i < 100; i++ {
		addr := 0x200000 + uint64(i)*64*1031%(1<<26)
		taken = !taken
		insts = append(insts,
			isa.Inst{Op: isa.OpLoad, PC: 0x40, Dst: 10, Src1: 10, Addr: addr},
			isa.Inst{Op: isa.OpBranch, PC: 0x80, Src1: 10, Taken: taken},
		)
	}
	tr := trace.New("earlyiq", insts)
	cfg := testConfig()
	cfg.IQSize = 4 // small enough that a leaked slot would be visible
	// Results appear at cycle 6 of the 0.5ns test clock: after the first
	// load+branch pair has dispatched (front-end depth 3), before the
	// missing load completes.
	feed := &branchOnlyFeed{tr: tr, from: 300}
	c, err := NewCore(cfg, tr, Options{Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000_000 && !c.Done(); i++ {
		c.Step()
	}
	if !c.Done() {
		t.Fatalf("core stuck: retired %d of %d (IQ slot leak?)", c.Retired(), tr.Len())
	}
	st := c.Stats()
	if st.EarlyResolved == 0 {
		t.Fatal("no branch resolved early; the test did not exercise the path")
	}
	if c.iqCount != 0 {
		t.Errorf("iqCount = %d after completion, want 0", c.iqCount)
	}
	if len(c.readyQ) != 0 || len(c.wakeQ) != 0 {
		t.Errorf("issue queues not drained: %d ready, %d scheduled", len(c.readyQ), len(c.wakeQ))
	}
	// The early-resolved branch still retires and counts as a branch.
	if st.Retired != int64(tr.Len()) {
		t.Errorf("retired %d, want %d", st.Retired, tr.Len())
	}
}

// TestEarlyResolveMatchesSingleStepAdvance locks the fast-forward path on
// the same scenario: Advance must produce identical stats to Step.
func TestEarlyResolveMatchesSingleStepAdvance(t *testing.T) {
	insts := make([]isa.Inst, 0, 200)
	taken := false
	for i := 0; i < 100; i++ {
		addr := 0x200000 + uint64(i)*64*1031%(1<<26)
		taken = !taken
		insts = append(insts,
			isa.Inst{Op: isa.OpLoad, PC: 0x40, Dst: 10, Src1: 10, Addr: addr},
			isa.Inst{Op: isa.OpBranch, PC: 0x80, Src1: 10, Taken: taken},
		)
	}
	tr := trace.New("earlyiq", insts)
	run := func(advance bool) Stats {
		c, err := NewCore(testConfig(), tr, Options{Feed: &branchOnlyFeed{tr: tr, from: 300}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1_000_000 && !c.Done(); i++ {
			if advance {
				c.Advance()
			} else {
				c.Step()
			}
		}
		return c.Stats()
	}
	if slow, fast := run(false), run(true); slow != fast {
		t.Errorf("Advance diverges from Step:\nstep:    %+v\nadvance: %+v", slow, fast)
	}
}
