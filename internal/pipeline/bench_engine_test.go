package pipeline

// Engine microbenchmarks and allocation regression tests for the
// throughput rework: batched stepping at several batch sizes, bitmap vs
// legacy wake-list scheduling, and hard zero-allocation assertions on the
// steady-state step loop (including the divider-retry path, which a
// missing scratch preallocation would silently regress).

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"archcontest/internal/isa"
	"archcontest/internal/trace"
	"archcontest/internal/workload"
)

const benchInsts = 20_000

func benchCore(b *testing.B, name string, opts Options) *Core {
	b.Helper()
	tr := workload.MustGenerate(name, benchInsts)
	c, err := NewCore(testConfig(), tr, opts)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func runBatchToDone(batch *Batch) {
	for batch.Pass(DefaultQuantum) > 0 {
	}
}

// BenchmarkBatchStep measures batched core stepping at batch sizes 1, 4
// and 16: each op advances `size` independent cores through a full
// 20k-instruction mcf trace in DefaultQuantum interleave. Throughput per
// instruction should be flat (or improve) as the batch widens — the whole
// point of chunked round-robin is that the marginal core is no more
// expensive than a lone one.
func BenchmarkBatchStep(b *testing.B) {
	for _, size := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cores := make([]*Core, size)
				for j := range cores {
					cores[j] = benchCore(b, "mcf", Options{})
				}
				batch := NewBatch(cores)
				b.StartTimer()
				runBatchToDone(batch)
			}
			b.SetBytes(0)
			b.ReportMetric(float64(size)*benchInsts, "insts/op")
		})
	}
}

// BenchmarkScheduler compares the bitmap ready-selection scheduler against
// the pre-rework heap-based wake-list it replaced, on the same trace and
// configuration.
func BenchmarkScheduler(b *testing.B) {
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"bitmap", false}, {"wakelist", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := benchCore(b, "mcf", Options{LegacySched: mode.legacy})
				b.StartTimer()
				for !c.Done() {
					c.Advance()
				}
			}
			b.ReportMetric(benchInsts, "insts/op")
		})
	}
}

// mallocsDuring returns the exact number of heap allocations performed by
// f on this goroutine.
func mallocsDuring(f func()) uint64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestStepLoopDoesNotAllocate: after construction, running a whole
// mixed-workload trace performs zero heap allocations — every scratch
// structure (timing wheel, overflow heap, retry list, bitmap words) must
// be sized at construction. This is the regression fence for the batched
// campaign path, where per-step allocations multiply across cores.
func TestStepLoopDoesNotAllocate(t *testing.T) {
	for _, bench := range []string{"mcf", "crafty"} {
		tr := workload.MustGenerate(bench, 50_000)
		c, err := NewCore(testConfig(), tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if n := mallocsDuring(func() {
			for !c.Done() {
				c.Advance()
			}
		}); n != 0 {
			t.Errorf("%s: step loop performed %d heap allocations, want 0", bench, n)
		}
	}
}

// TestDivRetryDoesNotAllocate drives the divider-retry path hard: a wide
// window full of independent divides keeps the unpipelined divider busy,
// so every scheduling pass defers ready divides through the retry scratch
// list. If that list were not preallocated to IQ capacity at construction
// (the latent regression this test fences), the growth would show up here
// as run-time allocations.
func TestDivRetryDoesNotAllocate(t *testing.T) {
	insts := make([]isa.Inst, 4096)
	for i := range insts {
		insts[i] = isa.Inst{Op: isa.OpDiv, PC: 0x40, Dst: isa.RegID(10 + i%32), Src1: 1}
	}
	c, err := NewCore(testConfig(), trace.New("divs", insts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := mallocsDuring(func() {
		for !c.Done() {
			c.Advance()
		}
	}); n != 0 {
		t.Errorf("div-retry loop performed %d heap allocations, want 0", n)
	}
	if got := c.Stats().Retired; got != int64(len(insts)) {
		t.Fatalf("retired %d of %d", got, len(insts))
	}
}

// TestStaleWakeEquivalence pins the schedulers against each other in the
// regime where their wake bookkeeping differs most: a tiny ROB with a
// memory latency far beyond the timing-wheel horizon, so bitmap mode
// spills wake-ups into the overflow heap while legacy mode heaps
// everything. Any stale-wake mishandling (a slot woken for a previous
// occupant) diverges the two.
func TestStaleWakeEquivalence(t *testing.T) {
	cfg := testConfig()
	cfg.ROBSize = 8
	cfg.IQSize = 8
	cfg.LSQSize = 8
	cfg.MemLatencyCycles = 600

	insts := make([]isa.Inst, 2048)
	for i := range insts {
		switch i % 3 {
		case 0:
			insts[i] = isa.Inst{Op: isa.OpLoad, PC: 0x40, Dst: isa.RegID(10 + i%16), Src1: 1,
				Addr: uint64(0x100000 + i*4096)}
		case 1:
			insts[i] = isa.Inst{Op: isa.OpALU, PC: 0x44, Dst: isa.RegID(10 + i%16),
				Src1: isa.RegID(10 + (i-1)%16)}
		default:
			insts[i] = isa.Inst{Op: isa.OpDiv, PC: 0x48, Dst: isa.RegID(10 + i%16), Src1: 1}
		}
	}
	tr := trace.New("stale-wake", insts)

	run := func(legacy bool) Stats {
		c, err := NewCore(cfg, tr, Options{LegacySched: legacy})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; !c.Done(); i++ {
			c.Advance()
			if i > 10_000_000 {
				t.Fatal("run did not terminate")
			}
		}
		return c.Stats()
	}
	bitmap, legacy := run(false), run(true)
	if !reflect.DeepEqual(bitmap, legacy) {
		t.Errorf("schedulers diverge under overflow-heap pressure\nbitmap: %+v\nlegacy: %+v", bitmap, legacy)
	}
}
