package workload

// Fuzz support: deterministic, always-valid profile mutation. The fuzz
// harness (fuzz/) derives workload variants from raw fuzzer bytes; the
// clamping lives here, next to Validate, so the two can never drift apart —
// MutateForFuzz promises Validate() == nil for every input byte string
// (locked by TestMutateForFuzzAlwaysValid).

// MutateForFuzz derives a valid variant of base from fuzz bytes. Equal
// inputs produce equal profiles; an empty mutation returns base unchanged
// except for the name tag. The mutation reshapes the phase mixture and the
// scalar knobs but keeps every parameter inside Validate's ranges.
func MutateForFuzz(base Profile, data []byte) Profile {
	p := base
	p.Name = base.Name + "~fuzz"

	at := func(i int) uint64 {
		if i < len(data) {
			return uint64(data[i])
		}
		return 0
	}
	// frac(i) maps one byte onto [0,1).
	frac := func(i int) float64 { return float64(at(i)) / 256 }

	p.Seed = base.Seed ^ (at(0) | at(1)<<8 | at(2)<<16)

	// Reshape the phase mixture: scale each archetype's weight by [0.5,1.5)
	// and keep it strictly positive iff it was. Zero-weight archetypes stay
	// zero — their structural parameters (footprint, chains, stride) may not
	// satisfy that archetype's constraints.
	for a := 0; a < NumArchetypes; a++ {
		if p.Weights[a] > 0 {
			p.Weights[a] *= 0.5 + frac(3+a)
			if p.MeanPhaseLen[a] < 8 {
				p.MeanPhaseLen[a] = 8
			}
			p.MeanPhaseLen[a] *= 0.5 + frac(3+NumArchetypes+a)
			if p.MeanPhaseLen[a] < 8 {
				p.MeanPhaseLen[a] = 8
			}
		}
	}

	p.StoreFrac = 0.8 * frac(15)
	p.BranchNoise = frac(16)
	if p.Weights[ILP] > 0 {
		p.ILPDegree = 2 + int(at(17)%23) // [2,24]
	}
	if p.Weights[Pointer] > 0 {
		p.Chains = 1 + int(at(18)%maxChains) // Generate's register budget
	}
	if p.Weights[Stream] > 0 {
		p.StrideBytes = 4 << (at(19) % 8) // 4..512
		p.StreamBurst = int(at(20) % 64)  // 0 disables bursting
	}
	if p.Weights[Scratch] > 0 {
		p.ConflictWays = 1 + int(at(21)%8)
		if p.HotBytes < 1024 {
			p.HotBytes = 1024
		}
	}
	if p.Weights[Stream] > 0 || p.Weights[Pointer] > 0 {
		if p.Footprint < 4096 {
			p.Footprint = 4096
		}
	}
	return p
}
