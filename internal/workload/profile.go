package workload

import (
	"fmt"
	"sort"
)

// Profile parameterizes the synthetic stand-in for one benchmark.
type Profile struct {
	// Name is the benchmark name (e.g. "mcf").
	Name string
	// Seed drives all generation for the benchmark deterministically.
	Seed uint64

	// Weights is the stationary distribution over phase archetypes.
	Weights [NumArchetypes]float64
	// MeanPhaseLen is the mean phase length, in instructions, per archetype
	// (phase lengths are geometric). Entries for zero-weight archetypes may
	// be zero.
	MeanPhaseLen [NumArchetypes]float64

	// Footprint is the size in bytes of the benchmark's large data region
	// walked by Stream and Pointer phases.
	Footprint uint64
	// HotBytes is the size of the small hot region used by Scratch phases.
	HotBytes uint64
	// Chains is the number of interleaved dependent-load chains in Pointer
	// phases (the benchmark's memory-level parallelism).
	Chains int
	// StrideBytes is the Stream phase element stride.
	StrideBytes uint64
	// StreamBurst, if non-zero, is the number of contiguous elements per
	// stream run before the cursor jumps to a random offset: spatial
	// locality bounded to StreamBurst*StrideBytes bytes, which rewards
	// cache blocks that match the burst and punishes larger ones.
	StreamBurst int
	// StoreFrac is the fraction of Stream/Scratch memory operations that are
	// stores.
	StoreFrac float64
	// BranchNoise is the probability that a Branchy-phase branch site is
	// inherently unpredictable (50/50 random).
	BranchNoise float64
	// ILPDegree is the dependence distance of ILP phases (how many
	// independent operations exist between a producer and its consumer).
	ILPDegree int
	// ConflictWays is the number of distinct same-set blocks cycled by
	// Scratch phases; caches with lower associativity (times their set
	// capacity) thrash on it.
	ConflictWays int
	// ConflictStride is the byte distance between the conflicting regions;
	// it aliases exactly in caches whose way size divides it. Zero selects
	// the 8KB default.
	ConflictStride uint64
}

// Validate reports whether the profile is internally consistent.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile without name")
	}
	total := 0.0
	for a := 0; a < NumArchetypes; a++ {
		w := p.Weights[a]
		if w < 0 {
			return fmt.Errorf("workload %s: negative weight for %s", p.Name, Archetype(a))
		}
		if w > 0 && p.MeanPhaseLen[a] < 8 {
			return fmt.Errorf("workload %s: phase length %.0f for %s below 8", p.Name, p.MeanPhaseLen[a], Archetype(a))
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("workload %s: weights sum to zero", p.Name)
	}
	if p.Weights[Stream] > 0 || p.Weights[Pointer] > 0 {
		if p.Footprint < 4096 {
			return fmt.Errorf("workload %s: footprint %d too small", p.Name, p.Footprint)
		}
	}
	if p.Weights[Scratch] > 0 && p.HotBytes < 1024 {
		return fmt.Errorf("workload %s: hot region %d too small", p.Name, p.HotBytes)
	}
	if p.Weights[Pointer] > 0 && p.Chains < 1 {
		return fmt.Errorf("workload %s: pointer phases need at least one chain", p.Name)
	}
	if p.Weights[Stream] > 0 && (p.StrideBytes == 0 || p.StrideBytes > 512) {
		return fmt.Errorf("workload %s: stream stride %d out of range", p.Name, p.StrideBytes)
	}
	if p.StoreFrac < 0 || p.StoreFrac > 0.8 {
		return fmt.Errorf("workload %s: store fraction %g out of range", p.Name, p.StoreFrac)
	}
	if p.BranchNoise < 0 || p.BranchNoise > 1 {
		return fmt.Errorf("workload %s: branch noise %g out of range", p.Name, p.BranchNoise)
	}
	if p.Weights[ILP] > 0 && (p.ILPDegree < 2 || p.ILPDegree > 24) {
		return fmt.Errorf("workload %s: ILP degree %d out of range", p.Name, p.ILPDegree)
	}
	if p.Weights[Scratch] > 0 && p.ConflictWays < 1 {
		return fmt.Errorf("workload %s: scratch phases need ConflictWays >= 1", p.Name)
	}
	if s := p.ConflictStride; s != 0 && (s < 4096 || s&(s-1) != 0) {
		return fmt.Errorf("workload %s: conflict stride %d not a power of two >= 4096", p.Name, s)
	}
	return nil
}

// profiles is the registry of the eleven SPEC2000int stand-ins. The
// parameters are calibrated so that each benchmark's own Appendix-A
// customized core is strong on it (see the calibration test), and so that
// behaviour varies at sub-thousand-instruction granularity.
var profiles = map[string]Profile{
	// bzip2: alternating scalar compression chains and large-table phases.
	// Rewards zero-cycle wake-up, a big window, and a 2MB L2.
	"bzip": {
		Name: "bzip", Seed: 0xb21b,
		Weights:      weights(ILP, 0.20, Serial, 0.30, Stream, 0.15, Pointer, 0.25, Scratch, 0.10),
		MeanPhaseLen: lens(ILP, 220, Serial, 260, Stream, 240, Pointer, 180, Scratch, 160),
		Footprint:    900 << 10, HotBytes: 48 << 10,
		Chains: 8, StrideBytes: 16, StoreFrac: 0.30, BranchNoise: 0.08,
		ILPDegree: 10, ConflictWays: 2,
	},
	// crafty: chess search — wide predictable integer computation over a
	// small working set. Rewards width and clock rate.
	"crafty": {
		Name: "crafty", Seed: 0xc4af,
		Weights:      weights(ILP, 0.65, Branchy, 0.20, Scratch, 0.10, Serial, 0.05),
		MeanPhaseLen: lens(ILP, 300, Branchy, 160, Scratch, 200, Serial, 90),
		Footprint:    96 << 10, HotBytes: 32 << 10,
		Chains: 2, StrideBytes: 8, StoreFrac: 0.15, BranchNoise: 0.05,
		ILPDegree: 16, ConflictWays: 1,
	},
	// gap: group theory — mixed computation and medium streaming with long
	// contiguous runs (256B L2 blocks).
	"gap": {
		Name: "gap", Seed: 0x6a90,
		Weights:      weights(ILP, 0.25, Stream, 0.45, Branchy, 0.10, Scratch, 0.15, Serial, 0.05),
		MeanPhaseLen: lens(ILP, 240, Stream, 300, Branchy, 140, Scratch, 160, Serial, 80),
		Footprint:    3 << 20, HotBytes: 12 << 10,
		Chains: 3, StrideBytes: 24, StreamBurst: 8, StoreFrac: 0.20, BranchNoise: 0.10,
		ILPDegree: 12, ConflictWays: 1,
	},
	// gcc: compiler — branchy over a large hot region. Rewards a very large
	// L1 and moderate width; some coarse-grain phase structure survives
	// (the paper notes gcc keeps part of its speedup at coarser switching).
	"gcc": {
		Name: "gcc", Seed: 0x9cc0,
		Weights:      weights(Branchy, 0.30, Scratch, 0.35, ILP, 0.20, Pointer, 0.15),
		MeanPhaseLen: lens(Branchy, 200, Scratch, 700, ILP, 420, Pointer, 300),
		Footprint:    360 << 10, HotBytes: 120 << 10,
		Chains: 4, StrideBytes: 8, StoreFrac: 0.25, BranchNoise: 0.22,
		ILPDegree: 8, ConflictWays: 2,
	},
	// gzip: compression — long streaming runs with 128B-block-friendly
	// locality plus tight scalar loops; part of its structure is coarse.
	"gzip": {
		Name: "gzip", Seed: 0x971f,
		Weights:      weights(Stream, 0.55, ILP, 0.15, Serial, 0.20, Branchy, 0.10),
		MeanPhaseLen: lens(Stream, 800, ILP, 300, Serial, 200, Branchy, 150),
		Footprint:    440 << 10, HotBytes: 24 << 10,
		Chains: 2, StrideBytes: 8, StoreFrac: 0.30, BranchNoise: 0.10,
		ILPDegree: 9, ConflictWays: 1,
	},
	// mcf: network simplex — pointer chasing over a multi-megabyte graph.
	// Only a 4MB L2 and a 1K-entry window make progress on it.
	"mcf": {
		Name: "mcf", Seed: 0x3cf0,
		Weights:      weights(Pointer, 0.60, Serial, 0.20, Branchy, 0.10, Scratch, 0.10),
		MeanPhaseLen: lens(Pointer, 320, Serial, 160, Branchy, 120, Scratch, 140),
		Footprint:    3 << 20, HotBytes: 32 << 10,
		Chains: 10, StrideBytes: 8, StoreFrac: 0.10, BranchNoise: 0.15,
		ILPDegree: 6, ConflictWays: 2,
	},
	// parser: dictionary word chasing — medium pointer work over a region
	// with very long contiguous runs (512B L2 blocks) and moderate branches.
	"parser": {
		Name: "parser", Seed: 0x9a45,
		Weights:      weights(Pointer, 0.15, Stream, 0.35, Branchy, 0.25, ILP, 0.15, Serial, 0.10),
		MeanPhaseLen: lens(Pointer, 200, Stream, 240, Branchy, 160, ILP, 200, Serial, 100),
		Footprint:    55 << 10, HotBytes: 16 << 10,
		Chains: 6, StrideBytes: 32, StoreFrac: 0.15, BranchNoise: 0.12,
		ILPDegree: 10, ConflictWays: 2,
	},
	// perlbmk: interpreter — predictable dispatch loops, small hot set,
	// rewards clock rate like crafty but narrower.
	"perl": {
		Name: "perl", Seed: 0x9e51,
		Weights:      weights(ILP, 0.45, Branchy, 0.30, Scratch, 0.15, Pointer, 0.10),
		MeanPhaseLen: lens(ILP, 260, Branchy, 180, Scratch, 180, Pointer, 150),
		Footprint:    100 << 10, HotBytes: 8 << 10,
		Chains: 4, StrideBytes: 8, StoreFrac: 0.20, BranchNoise: 0.08,
		ILPDegree: 20, ConflictWays: 1,
	},
	// twolf: place-and-route — conflict-heavy scratch traffic (8-way L1
	// pays off), hard branches, and a ~0.8MB structure.
	"twolf": {
		Name: "twolf", Seed: 0x2A01,
		Weights:      weights(Scratch, 0.55, Pointer, 0.20, Branchy, 0.20, Serial, 0.05),
		MeanPhaseLen: lens(Scratch, 180, Pointer, 160, Branchy, 130, Serial, 100),
		Footprint:    800 << 10, HotBytes: 40 << 10,
		Chains: 6, StrideBytes: 8, StoreFrac: 0.25, BranchNoise: 0.25,
		ILPDegree: 6, ConflictWays: 8,
	},
	// vortex: object database — the ILP champion: wide predictable
	// computation with a mid-sized working set.
	"vortex": {
		Name: "vortex", Seed: 0x0b7e,
		Weights:      weights(ILP, 0.50, Scratch, 0.30, Stream, 0.15, Branchy, 0.05),
		MeanPhaseLen: lens(ILP, 320, Scratch, 220, Stream, 200, Branchy, 150),
		Footprint:    200 << 10, HotBytes: 96 << 10,
		Chains: 4, StrideBytes: 16, StoreFrac: 0.30, BranchNoise: 0.06,
		ILPDegree: 18, ConflictWays: 4, ConflictStride: 32 << 10,
	},
	// vpr: FPGA place-and-route — pointer and conflict traffic over ~0.7MB
	// with noisy branches; leans on its 1MB 8-way L2, not its tiny L1.
	"vpr": {
		Name: "vpr", Seed: 0x59f2,
		Weights:      weights(Pointer, 0.35, Scratch, 0.25, Branchy, 0.20, ILP, 0.10, Serial, 0.10),
		MeanPhaseLen: lens(Pointer, 220, Scratch, 170, Branchy, 140, ILP, 180, Serial, 90),
		Footprint:    700 << 10, HotBytes: 48 << 10,
		Chains: 7, StrideBytes: 8, StoreFrac: 0.20, BranchNoise: 0.20,
		ILPDegree: 7, ConflictWays: 16,
	},
}

func weights(kv ...interface{}) [NumArchetypes]float64 {
	var w [NumArchetypes]float64
	for i := 0; i < len(kv); i += 2 {
		w[kv[i].(Archetype)] = kv[i+1].(float64)
	}
	return w
}

func lens(kv ...interface{}) [NumArchetypes]float64 {
	var l [NumArchetypes]float64
	for i := 0; i < len(kv); i += 2 {
		switch v := kv[i+1].(type) {
		case int:
			l[kv[i].(Archetype)] = float64(v)
		case float64:
			l[kv[i].(Archetype)] = v
		}
	}
	return l
}

// Benchmarks returns the benchmark names in the paper's order.
func Benchmarks() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ProfileFor returns the profile of the named benchmark.
func ProfileFor(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}
