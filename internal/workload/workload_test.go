package workload

import (
	"testing"

	"archcontest/internal/isa"
)

func TestBenchmarksRegistry(t *testing.T) {
	names := Benchmarks()
	if len(names) != 11 {
		t.Fatalf("got %d benchmarks, want 11 (paper excludes eon)", len(names))
	}
	want := map[string]bool{
		"bzip": true, "crafty": true, "gap": true, "gcc": true, "gzip": true,
		"mcf": true, "parser": true, "perl": true, "twolf": true,
		"vortex": true, "vpr": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected benchmark %q", n)
		}
	}
	if _, err := ProfileFor("eon"); err == nil {
		t.Error("eon should be unknown")
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, n := range Benchmarks() {
		p, err := ProfileFor(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestProfileValidateRejects(t *testing.T) {
	base, _ := ProfileFor("gcc")
	mutations := map[string]func(*Profile){
		"no name":       func(p *Profile) { p.Name = "" },
		"neg weight":    func(p *Profile) { p.Weights[ILP] = -1 },
		"zero weights":  func(p *Profile) { p.Weights = [NumArchetypes]float64{} },
		"short phase":   func(p *Profile) { p.MeanPhaseLen[Branchy] = 2 },
		"footprint":     func(p *Profile) { p.Footprint = 16 },
		"hot bytes":     func(p *Profile) { p.HotBytes = 4 },
		"chains":        func(p *Profile) { p.Chains = 0 },
		"store frac":    func(p *Profile) { p.StoreFrac = 0.95 },
		"branch noise":  func(p *Profile) { p.BranchNoise = 1.5 },
		"ilp degree":    func(p *Profile) { p.ILPDegree = 1 },
		"conflict ways": func(p *Profile) { p.ConflictWays = 0 },
	}
	for name, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate("gcc", 5000)
	b := MustGenerate("gcc", 5000)
	if a.Len() != 5000 || b.Len() != 5000 {
		t.Fatalf("lengths %d %d", a.Len(), b.Len())
	}
	for i := int64(0); i < 5000; i++ {
		if *a.At(i) != *b.At(i) {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a.At(i), b.At(i))
		}
	}
}

func TestGenerateAllBenchmarksValid(t *testing.T) {
	for _, n := range Benchmarks() {
		tr := MustGenerate(n, 20000)
		if tr.Len() != 20000 {
			t.Errorf("%s: len %d", n, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	p, _ := ProfileFor("gcc")
	if _, err := Generate(p, 0); err == nil {
		t.Error("zero length accepted")
	}
	p.Weights = [NumArchetypes]float64{}
	if _, err := Generate(p, 100); err == nil {
		t.Error("invalid profile accepted")
	}
	q, _ := ProfileFor("mcf")
	q.Chains = maxChains + 1
	if _, err := Generate(q, 100); err == nil {
		t.Error("excess chains accepted")
	}
}

func TestMixesMatchCharacter(t *testing.T) {
	const n = 200000
	mcf := MustGenerate("mcf", n).Mix()
	crafty := MustGenerate("crafty", n).Mix()
	if mcf.Fraction(isa.OpLoad) <= crafty.Fraction(isa.OpLoad) {
		t.Errorf("mcf load fraction %.3f should exceed crafty %.3f",
			mcf.Fraction(isa.OpLoad), crafty.Fraction(isa.OpLoad))
	}
	gcc := MustGenerate("gcc", n).Mix()
	if gcc.Fraction(isa.OpBranch) <= MustGenerate("gzip", n).Mix().Fraction(isa.OpBranch) {
		t.Error("gcc should be branchier than gzip")
	}
}

func TestFootprintsMatchCharacter(t *testing.T) {
	const n = 400000
	mcf := MustGenerate("mcf", n).Footprint(64)
	crafty := MustGenerate("crafty", n).Footprint(64)
	if mcf < 1<<20 {
		t.Errorf("mcf footprint %dKB, want multi-MB", mcf>>10)
	}
	if crafty > 512<<10 {
		t.Errorf("crafty footprint %dKB, want small", crafty>>10)
	}
	if crafty >= mcf {
		t.Error("crafty footprint should be far below mcf")
	}
}

func TestPhaseLengthsAreFineGrain(t *testing.T) {
	// The paper's Section 2 finding: behaviour varies at granularities below
	// a thousand instructions. Check that generated traces change archetype
	// region (detected via PC high bits) with a mean run length under ~1000.
	for _, name := range []string{"twolf", "bzip", "mcf"} {
		tr := MustGenerate(name, 100000)
		runs, current, runLen := 0, uint64(0), 0
		total := 0
		for i := int64(0); i < int64(tr.Len()); i++ {
			region := tr.At(i).PC >> 16
			if region != current {
				if runLen > 0 {
					runs++
					total += runLen
				}
				current = region
				runLen = 0
			}
			runLen++
		}
		if runs < 50 {
			t.Fatalf("%s: only %d phase transitions in 100k instructions", name, runs)
		}
		mean := float64(total) / float64(runs)
		if mean > 1200 {
			t.Errorf("%s: mean phase run %.0f instructions, want fine-grain (<1200)", name, mean)
		}
	}
}

func TestSerialChainsAreSerial(t *testing.T) {
	// In serial regions, consecutive ALU ops must form a dependence chain
	// through regSerial.
	p, _ := ProfileFor("bzip")
	p.Weights = weights(Serial, 1.0)
	tr, err := Generate(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	chained := 0
	for i := int64(0); i < int64(tr.Len()); i++ {
		in := tr.At(i)
		if in.Dst == regSerial && in.Src1 == regSerial {
			chained++
		}
	}
	if chained < 800 {
		t.Errorf("only %d/1000 instructions on the serial chain", chained)
	}
}

func TestPointerChainsAreSelfDependent(t *testing.T) {
	p, _ := ProfileFor("mcf")
	p.Weights = weights(Pointer, 1.0)
	tr, err := Generate(p, 2000)
	if err != nil {
		t.Fatal(err)
	}
	loads, selfDep := 0, 0
	for i := int64(0); i < int64(tr.Len()); i++ {
		in := tr.At(i)
		if in.Op == isa.OpLoad {
			loads++
			if in.Src1 == in.Dst {
				selfDep++
			}
		}
	}
	if loads == 0 || selfDep != loads {
		t.Errorf("%d/%d pointer loads self-dependent", selfDep, loads)
	}
}

func TestStreamIsSequential(t *testing.T) {
	p, _ := ProfileFor("gzip")
	p.Weights = weights(Stream, 1.0)
	tr, err := Generate(p, 2000)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	increasing, loads := 0, 0
	for i := int64(0); i < int64(tr.Len()); i++ {
		in := tr.At(i)
		if in.Op != isa.OpLoad {
			continue
		}
		loads++
		if prev != 0 && in.Addr == prev+p.StrideBytes {
			increasing++
		}
		prev = in.Addr
	}
	if loads < 100 {
		t.Fatalf("too few loads: %d", loads)
	}
	if float64(increasing) < 0.9*float64(loads) {
		t.Errorf("only %d/%d stream loads sequential", increasing, loads)
	}
}

func TestBranchSitePattern(t *testing.T) {
	s := &branchSite{pattern: 0b0111, length: 4}
	// Not noisy: the 4-bit pattern repeats LSB-first.
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, s.next(nil))
	}
	want := []bool{true, true, true, false, true, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("site pattern %v, want %v", got, want)
		}
	}
}
