// Package workload synthesizes the dynamic instruction traces that stand in
// for the paper's SPEC2000 integer SimPoints.
//
// Each of the paper's eleven benchmarks (eon is excluded, as in the paper)
// is modelled as a Markov mixture of fine-grain *phase archetypes* — short
// regions of characteristic behaviour whose lengths sit in the
// hundreds-of-instructions range the paper's Section 2 identifies as where
// the exploitable variation lives. Different archetypes reward different
// microarchitectural choices (window size, width, clock rate, wake-up
// latency, cache geometry), which is what gives differently-customized cores
// different fine-grain performance profiles — the raw material of
// architectural contesting.
package workload

import "fmt"

// Archetype is a class of fine-grain program behaviour.
type Archetype uint8

const (
	// ILP regions are wide, independent integer computation with highly
	// predictable loop branches: they reward superscalar width and clock
	// rate and need almost no memory bandwidth.
	ILP Archetype = iota
	// Serial regions are long scalar dependence chains: throughput is set by
	// (1 + wake-up latency) cycles per instruction, so they reward
	// back-to-back wake-up and fast clocks over width.
	Serial
	// Branchy regions are short blocks terminated by data-dependent
	// branches, a fraction of which are inherently unpredictable: they
	// reward short front-end pipelines and fast branch resolution.
	Branchy
	// Stream regions march sequentially through a large array: they reward
	// large cache blocks (spatial locality), cache capacity, and enough
	// window to overlap the block-boundary misses.
	Stream
	// Pointer regions chase several interleaved linked structures through a
	// large footprint: each chain is serial, so performance is set by how
	// many chains the window can overlap (ROB-limited MLP) and by whether
	// the footprint fits in the L2.
	Pointer
	// Scratch regions do moderately parallel loads/stores over a small hot
	// working set with set-conflict-prone address patterns: they reward L1
	// capacity and associativity.
	Scratch
	numArchetypes
)

// NumArchetypes is the number of phase archetypes.
const NumArchetypes = int(numArchetypes)

var archetypeNames = [...]string{"ilp", "serial", "branchy", "stream", "pointer", "scratch"}

func (a Archetype) String() string {
	if int(a) < len(archetypeNames) {
		return archetypeNames[a]
	}
	return fmt.Sprintf("archetype(%d)", uint8(a))
}

// Valid reports whether a names a defined archetype.
func (a Archetype) Valid() bool { return a < numArchetypes }
