package workload

import (
	"fmt"

	"archcontest/internal/isa"
	"archcontest/internal/trace"
	"archcontest/internal/xrand"
)

// Register allocation convention of the synthetic traces. Keeping the roles
// fixed makes dependence structure auditable in dumps.
const (
	regStreamBase isa.RegID = 1 // always-ready base for stream addressing
	regHotBase    isa.RegID = 2 // always-ready base for scratch addressing
	regChain0     isa.RegID = 3 // r3..r14: pointer-chase chain registers
	maxChains               = 12
	regSerial     isa.RegID = 48 // scalar dependence-chain accumulator
	regCond       isa.RegID = 49 // branch condition register
	poolBase      isa.RegID = 16 // r16..r47: rotating ILP destination pool
	poolSize                = 32
)

// Memory region bases; regions are disjoint so archetype working sets do not
// alias each other.
const (
	streamRegion  uint64 = 0x1000_0000
	pointerRegion uint64 = 0x2000_0000
	hotRegion     uint64 = 0x3000_0000
)

// branchSite is one static branch with a deterministic outcome generator.
// Non-noisy sites repeat a short fixed direction pattern — the outcome
// stream of a small loop nest — which global-history predictors learn
// nearly perfectly because the high-entropy pattern makes every history
// window distinctive. Noisy sites are inherently unpredictable.
type branchSite struct {
	pc      uint64
	pattern uint32 // low `length` bits, repeated
	length  int
	phase   int
	noisy   bool
}

func (b *branchSite) next(r *xrand.RNG) bool {
	if b.noisy {
		return r.Bool(0.5)
	}
	taken := b.pattern>>b.phase&1 == 1
	b.phase++
	if b.phase >= b.length {
		b.phase = 0
	}
	return taken
}

// generator holds the persistent cross-phase state of one benchmark's
// synthesis: working-set cursors survive phase switches so locality is a
// property of the program, not of the phase instance.
type generator struct {
	p        Profile
	rPhase   *xrand.RNG // phase selection and lengths
	rBranch  *xrand.RNG // branch outcomes
	rAddr    *xrand.RNG // address jitter
	rMisc    *xrand.RNG // op mix decisions
	cat      *xrand.Categorical
	out      []isa.Inst
	lastArch Archetype

	streamPos  uint64 // load cursor within the stream region
	storePos   uint64 // trailing store cursor
	burstLeft  int    // stream elements left before the cursor jumps
	chainAddr  []uint64
	chainStep  uint64
	chainRot   int
	poolIdx    int
	scratchWay int
	lastVal    isa.RegID // most recently produced value; branch conditions read it
	sites      map[Archetype][]*branchSite
	siteRot    [NumArchetypes]int // round-robin cursor over each archetype's sites
}

func newGenerator(p Profile) *generator {
	root := xrand.New(p.Seed)
	g := &generator{
		p:       p,
		rPhase:  root.Split(),
		rBranch: root.Split(),
		rAddr:   root.Split(),
		rMisc:   root.Split(),
		cat:     xrand.NewCategorical(p.Weights[:]),
		sites:   make(map[Archetype][]*branchSite),
	}
	g.chainAddr = make([]uint64, p.Chains)
	for k := range g.chainAddr {
		g.chainAddr[k] = g.pointerAddr(uint64(k) * 977)
	}
	return g
}

// site returns the i-th static branch site of the archetype, creating it
// deterministically on first use. Branchy sites carry the profile's noise
// probability; other archetypes' loop branches are always predictable.
func (g *generator) site(a Archetype, i int) *branchSite {
	ss := g.sites[a]
	for len(ss) <= i {
		idx := len(ss)
		pc := uint64(a+1)<<16 | uint64(idx)<<6
		noisy := false
		if a == Branchy || a == Scratch || a == Pointer {
			noisy = g.rBranch.Bool(g.p.BranchNoise)
		}
		// A uniform pattern length keeps the composite period of the
		// interleaved sites short (length x sites), so every history window
		// recurs often enough for the predictor's counters to train; mixed
		// lengths would blow the composite period up to the LCM and starve
		// every table entry. At least one taken and one not-taken bit so
		// the site is biased toward neither constant.
		const length = 4
		pattern := uint32(g.rBranch.Intn(1<<length-2) + 1)
		ss = append(ss, &branchSite{
			pc:      pc,
			pattern: pattern,
			length:  length,
			noisy:   noisy,
		})
		g.sites[a] = ss
	}
	return ss[i]
}

// nextSite cycles deterministically through n static sites of the
// archetype. Deterministic site sequencing keeps the global branch history
// informative, so history predictors can learn the loop patterns; random
// site interleaving would reduce every predictor to per-site counters.
func (g *generator) nextSite(a Archetype, n int) int {
	i := g.siteRot[a] % n
	g.siteRot[a]++
	return i
}

func (g *generator) pool(offset int) isa.RegID {
	return poolBase + isa.RegID((g.poolIdx+poolSize+offset)%poolSize)
}

// pointerAddr maps a mixing value into an 8-byte-aligned address of the
// pointer region.
func (g *generator) pointerAddr(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	return pointerRegion + v%(g.p.Footprint/8)*8
}

func (g *generator) emit(in isa.Inst) { g.out = append(g.out, in) }

// emitBranch emits a branch whose condition reads the most recently
// produced value. Tying the condition to live data makes branch resolution
// wait for the producing computation — in memory-heavy regions the cache
// latency lands squarely in the misprediction penalty, as it does in real
// code that branches on loaded values.
func (g *generator) emitBranch(a Archetype, siteIdx int) {
	s := g.site(a, siteIdx)
	cond := g.lastVal
	if cond == isa.NoReg {
		cond = regCond
	}
	g.emit(isa.Inst{
		Op: isa.OpBranch, PC: s.pc,
		Src1: cond, Taken: s.next(g.rBranch),
	})
}

// alu emits one integer operation into the rotating pool with the profile's
// dependence distance.
func (g *generator) alu(a Archetype, op isa.OpClass) {
	d := g.p.ILPDegree
	if d < 2 {
		d = 2
	}
	g.emit(isa.Inst{
		Op: op, PC: uint64(a+1)<<16 | 0x8000 | uint64(g.poolIdx%64)<<2,
		Dst: g.pool(0), Src1: g.pool(-d), Src2: g.pool(-d - 1),
	})
	g.lastVal = g.pool(0)
	g.poolIdx++
}

// phaseILP emits wide independent computation with predictable loop
// branches.
func (g *generator) phaseILP(budget int) int {
	n := 0
	for n < budget {
		blk := 8 + g.rMisc.Intn(8)
		for i := 0; i < blk && n < budget; i++ {
			op := isa.OpALU
			if g.rMisc.Bool(0.05) {
				op = isa.OpMul
			}
			g.alu(ILP, op)
			n++
		}
		if n < budget {
			g.emitBranch(ILP, g.nextSite(ILP, 4))
			n++
		}
	}
	return n
}

// phaseSerial emits a scalar dependence chain: every operation consumes the
// previous one's result, so throughput is (1+wakeup) cycles per op.
func (g *generator) phaseSerial(budget int) int {
	n := 0
	for n < budget {
		for i := 0; i < 9 && n < budget; i++ {
			op := isa.OpALU
			if g.rMisc.Bool(0.08) {
				op = isa.OpMul
			}
			g.emit(isa.Inst{
				Op: op, PC: uint64(Serial+1)<<16 | 0x8000 | uint64(i)<<2,
				Dst: regSerial, Src1: regSerial, Src2: g.pool(-1),
			})
			g.lastVal = regSerial
			n++
		}
		if n < budget {
			g.emitBranch(Serial, 0)
			n++
		}
	}
	return n
}

// phaseBranchy emits short blocks terminated by data-dependent branches,
// a profile-controlled fraction of which are unpredictable.
func (g *generator) phaseBranchy(budget int) int {
	n := 0
	for n < budget {
		blk := 2 + g.rMisc.Intn(3)
		for i := 0; i < blk && n < budget; i++ {
			g.alu(Branchy, isa.OpALU)
			n++
		}
		if n < budget {
			g.emitBranch(Branchy, g.nextSite(Branchy, 24))
			n++
		}
	}
	return n
}

// phaseStream marches sequentially through the large footprint with the
// profile's stride; a trailing cursor issues stores.
func (g *generator) phaseStream(budget int) int {
	n := 0
	for n < budget {
		for i := 0; i < 4 && n < budget; i++ {
			addr := streamRegion + g.streamPos
			g.streamPos += g.p.StrideBytes
			if g.streamPos >= g.p.Footprint {
				g.streamPos = 0
			}
			if g.p.StreamBurst > 0 {
				if g.burstLeft <= 0 {
					g.streamPos = uint64(g.rAddr.Intn(int(g.p.Footprint/8))) * 8
					g.burstLeft = g.p.StreamBurst
				}
				g.burstLeft--
			}
			g.emit(isa.Inst{
				Op: isa.OpLoad, PC: uint64(Stream+1)<<16 | 0x8000,
				Dst: g.pool(0), Src1: regStreamBase, Addr: addr,
			})
			g.lastVal = g.pool(0)
			g.poolIdx++
			n++
			if n < budget {
				// Consume the loaded value.
				g.alu(Stream, isa.OpALU)
				n++
			}
			if n < budget && g.rMisc.Bool(g.p.StoreFrac) {
				saddr := streamRegion + g.storePos
				g.storePos += g.p.StrideBytes
				if g.storePos >= g.p.Footprint {
					g.storePos = 0
				}
				g.emit(isa.Inst{
					Op: isa.OpStore, PC: uint64(Stream+1)<<16 | 0x8100,
					Src1: regStreamBase, Src2: g.pool(-1), Addr: saddr,
				})
				n++
			}
		}
		if n < budget {
			g.emitBranch(Stream, 0)
			n++
		}
	}
	return n
}

// phasePointer interleaves the profile's dependent-load chains: each load's
// address register is its own previous destination, so chains are serial
// and only the window can overlap them.
func (g *generator) phasePointer(budget int) int {
	n := 0
	for n < budget {
		for i := 0; i < 3 && n < budget; i++ {
			k := g.chainRot % g.p.Chains
			g.chainRot++
			reg := regChain0 + isa.RegID(k)
			addr := g.chainAddr[k]
			// Include a monotonic step counter in the hash input so each
			// chain is a uniform random walk over the footprint rather than
			// a fixed functional orbit (which would collapse into a short
			// cycle and shrink the effective working set).
			g.chainStep++
			g.chainAddr[k] = g.pointerAddr(addr + g.chainStep*0x9e37_79b9 + uint64(k))
			g.emit(isa.Inst{
				Op: isa.OpLoad, PC: uint64(Pointer+1)<<16 | 0x8000 | uint64(k)<<2,
				Dst: reg, Src1: reg, Addr: addr,
			})
			g.lastVal = reg
			n++
			if n < budget && g.rMisc.Bool(0.5) {
				// Light computation on the loaded node.
				g.emit(isa.Inst{
					Op: isa.OpALU, PC: uint64(Pointer+1)<<16 | 0x8100,
					Dst: g.pool(0), Src1: reg, Src2: g.pool(-2),
				})
				g.poolIdx++
				n++
			}
		}
		if n < budget {
			g.emitBranch(Pointer, g.nextSite(Pointer, 6))
			n++
		}
	}
	return n
}

// phaseScratch emits loads and stores over the small hot region with a
// set-conflict-prone stride: ConflictWays distinct 8KB-spaced blocks are
// cycled, so low-associativity caches whose way size divides 8KB thrash.
func (g *generator) phaseScratch(budget int) int {
	n := 0
	conflictStride := g.p.ConflictStride
	if conflictStride == 0 {
		conflictStride = 8 << 10
	}
	for n < budget {
		for i := 0; i < 3 && n < budget; i++ {
			way := g.scratchWay % g.p.ConflictWays
			g.scratchWay++
			span := g.p.HotBytes / uint64(g.p.ConflictWays)
			if span == 0 {
				span = 64
			}
			off := uint64(g.rAddr.Intn(int(span))) &^ 7
			addr := hotRegion + uint64(way)*conflictStride + off
			if g.rMisc.Bool(g.p.StoreFrac) {
				g.emit(isa.Inst{
					Op: isa.OpStore, PC: uint64(Scratch+1)<<16 | 0x8100,
					Src1: regHotBase, Src2: g.pool(-1), Addr: addr,
				})
			} else {
				// Index-dependent accesses: a fraction of scratch loads
				// compute their address from the previous load's value, so
				// cache latency — not just bandwidth — shapes throughput.
				base := regHotBase
				if g.lastVal != isa.NoReg && g.rMisc.Bool(0.6) {
					base = g.lastVal
				}
				g.emit(isa.Inst{
					Op: isa.OpLoad, PC: uint64(Scratch+1)<<16 | 0x8000,
					Dst: g.pool(0), Src1: base, Addr: addr,
				})
				g.lastVal = g.pool(0)
				g.poolIdx++
			}
			n++
			if n < budget {
				g.alu(Scratch, isa.OpALU)
				n++
			}
		}
		if n < budget {
			g.emitBranch(Scratch, g.nextSite(Scratch, 8))
			n++
		}
	}
	return n
}

func (g *generator) runPhase(a Archetype, budget int) int {
	switch a {
	case ILP:
		return g.phaseILP(budget)
	case Serial:
		return g.phaseSerial(budget)
	case Branchy:
		return g.phaseBranchy(budget)
	case Stream:
		return g.phaseStream(budget)
	case Pointer:
		return g.phasePointer(budget)
	case Scratch:
		return g.phaseScratch(budget)
	default:
		panic(fmt.Sprintf("workload: unknown archetype %v", a))
	}
}

// nextArchetype draws the next phase archetype, avoiding an immediate
// repeat when the profile has more than one archetype (behaviour change is
// the point of a phase boundary).
func (g *generator) nextArchetype() Archetype {
	a := Archetype(g.cat.Sample(g.rPhase))
	if a == g.lastArch {
		a = Archetype(g.cat.Sample(g.rPhase))
	}
	g.lastArch = a
	return a
}

// Generate synthesizes a trace of n dynamic instructions for the profile.
func Generate(p Profile, n int) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive trace length %d", n)
	}
	if p.Chains > maxChains {
		return nil, fmt.Errorf("workload %s: %d chains exceeds register budget %d", p.Name, p.Chains, maxChains)
	}
	g := newGenerator(p)
	g.out = make([]isa.Inst, 0, n)
	for len(g.out) < n {
		a := g.nextArchetype()
		mean := p.MeanPhaseLen[a]
		if mean < 8 {
			mean = 8
		}
		budget := g.rPhase.Geometric(mean)
		if budget < 8 {
			budget = 8
		}
		if rem := n - len(g.out); budget > rem {
			budget = rem
		}
		g.runPhase(a, budget)
	}
	tr := trace.New(p.Name, g.out[:n])
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload %s: generated invalid trace: %w", p.Name, err)
	}
	return tr, nil
}

// MustGenerate is Generate for known-good registry profiles; it panics on
// error.
func MustGenerate(name string, n int) *trace.Trace {
	p, err := ProfileFor(name)
	if err != nil {
		panic(err)
	}
	tr, err := Generate(p, n)
	if err != nil {
		panic(err)
	}
	return tr
}
