package workload

import (
	"math/rand"
	"testing"
)

// MutateForFuzz's contract: any byte string, any base profile, the result
// validates and generates.
func TestMutateForFuzzAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, name := range Benchmarks() {
		base, err := ProfileFor(name)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 64; trial++ {
			data := make([]byte, rng.Intn(32))
			rng.Read(data)
			p := MutateForFuzz(base, data)
			if err := p.Validate(); err != nil {
				t.Fatalf("%s with %v: %v", name, data, err)
			}
			if trial%16 == 0 {
				tr, err := Generate(p, 512)
				if err != nil {
					t.Fatalf("%s with %v: %v", name, data, err)
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("%s with %v: generated trace invalid: %v", name, data, err)
				}
			}
		}
	}
}

func TestMutateForFuzzDeterministic(t *testing.T) {
	base, err := ProfileFor("gcc")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	a := MutateForFuzz(base, data)
	b := MutateForFuzz(base, data)
	if a != b {
		t.Fatalf("same input, different profiles:\n%+v\n%+v", a, b)
	}
	c := MutateForFuzz(base, nil)
	if a == c {
		t.Fatal("mutation bytes had no effect")
	}
}
