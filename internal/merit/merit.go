// Package merit implements the paper's Section 6 figures of merit for
// constrained heterogeneous CMP design, and the exhaustive combination
// search that derives the HET-A/B/C/D, HOM, and HET-ALL designs from a
// benchmark x core-type IPT matrix.
package merit

import (
	"fmt"
	"math"
	"sort"
)

// Matrix is the performance (IPT: instructions per nanosecond) of every
// benchmark on every core type.
type Matrix struct {
	Benchmarks []string
	Cores      []string
	// IPT[b][c] is benchmark b's IPT on core c.
	IPT [][]float64
}

// NewMatrix builds an empty matrix with the given axes.
func NewMatrix(benchmarks, cores []string) *Matrix {
	m := &Matrix{Benchmarks: benchmarks, Cores: cores}
	m.IPT = make([][]float64, len(benchmarks))
	for i := range m.IPT {
		m.IPT[i] = make([]float64, len(cores))
	}
	return m
}

// Validate checks that every entry is a positive, finite IPT.
func (m *Matrix) Validate() error {
	if len(m.Benchmarks) == 0 || len(m.Cores) == 0 {
		return fmt.Errorf("merit: empty matrix")
	}
	if len(m.IPT) != len(m.Benchmarks) {
		return fmt.Errorf("merit: %d rows for %d benchmarks", len(m.IPT), len(m.Benchmarks))
	}
	for b, row := range m.IPT {
		if len(row) != len(m.Cores) {
			return fmt.Errorf("merit: row %s has %d entries", m.Benchmarks[b], len(row))
		}
		for c, v := range row {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("merit: IPT[%s][%s] = %g", m.Benchmarks[b], m.Cores[c], v)
			}
		}
	}
	return nil
}

// CoreIndex reports the index of the named core.
func (m *Matrix) CoreIndex(name string) (int, error) {
	for i, c := range m.Cores {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("merit: no core %q in matrix", name)
}

// BenchIndex reports the index of the named benchmark.
func (m *Matrix) BenchIndex(name string) (int, error) {
	for i, b := range m.Benchmarks {
		if b == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("merit: no benchmark %q in matrix", name)
}

// BestIn reports, for benchmark b, the most suitable core among the given
// core indices and its IPT.
func (m *Matrix) BestIn(b int, cores []int) (best int, ipt float64) {
	best = cores[0]
	ipt = m.IPT[b][best]
	for _, c := range cores[1:] {
		if m.IPT[b][c] > ipt {
			best, ipt = c, m.IPT[b][c]
		}
	}
	return best, ipt
}

// FigureOfMerit names one of the paper's three design criteria.
type FigureOfMerit int

const (
	// Avg is the arithmetic-mean IPT across benchmarks, each on its most
	// suitable available core: raw throughput, robust to unknown benchmark
	// frequencies.
	Avg FigureOfMerit = iota
	// Har is the harmonic-mean IPT: minimizes total time of the benchmarks
	// submitted one by one.
	Har
	// CwHar is the contention-weighted harmonic-mean IPT: each benchmark's
	// IPT is divided by the number of benchmarks that share its preferred
	// core type, modelling queueing under heavy load (Little's law).
	CwHar
)

func (f FigureOfMerit) String() string {
	switch f {
	case Avg:
		return "avg"
	case Har:
		return "har"
	case CwHar:
		return "cw-har"
	default:
		return fmt.Sprintf("merit(%d)", int(f))
	}
}

// Score evaluates the figure of merit for the CMP design consisting of the
// given core types.
func (m *Matrix) Score(f FigureOfMerit, cores []int) float64 {
	n := len(m.Benchmarks)
	best := make([]int, n)
	ipt := make([]float64, n)
	for b := 0; b < n; b++ {
		best[b], ipt[b] = m.BestIn(b, cores)
	}
	switch f {
	case Avg:
		sum := 0.0
		for _, v := range ipt {
			sum += v
		}
		return sum / float64(n)
	case Har:
		inv := 0.0
		for _, v := range ipt {
			inv += 1 / v
		}
		return float64(n) / inv
	case CwHar:
		// Little's law: a core type preferred by k benchmarks sees a queue
		// proportional to k, so each benchmark's effective IPT is divided
		// by the number of sharers of its preferred core.
		sharers := map[int]int{}
		for _, c := range best {
			sharers[c]++
		}
		inv := 0.0
		for b := 0; b < n; b++ {
			inv += float64(sharers[best[b]]) / ipt[b]
		}
		return float64(n) / inv
	default:
		panic(fmt.Sprintf("merit: unknown figure of merit %d", int(f)))
	}
}

// HarmonicMeanBest reports the harmonic-mean IPT of the benchmarks, each on
// its most suitable core of the design — the common yardstick of the
// paper's Table 1, regardless of which merit designed the CMP.
func (m *Matrix) HarmonicMeanBest(cores []int) float64 {
	return m.Score(Har, cores)
}

// Design is a constrained heterogeneous CMP design.
type Design struct {
	// Name labels the design (HET-A, HOM, ...).
	Name string
	// Merit is the criterion that selected it.
	Merit FigureOfMerit
	// Cores are the selected core-type indices.
	Cores []int
	// Score is the value of the selecting criterion.
	Score float64
}

// BestCombination exhaustively searches all k-subsets of core types for the
// one maximizing the figure of merit.
func (m *Matrix) BestCombination(f FigureOfMerit, k int) (Design, error) {
	n := len(m.Cores)
	if k < 1 || k > n {
		return Design{}, fmt.Errorf("merit: cannot pick %d of %d core types", k, n)
	}
	var best Design
	found := false
	comb := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			score := m.Score(f, comb)
			if !found || score > best.Score {
				found = true
				best = Design{Merit: f, Cores: append([]int(nil), comb...), Score: score}
			}
			return
		}
		for c := start; c <= n-(k-depth); c++ {
			comb[depth] = c
			rec(c+1, depth+1)
		}
	}
	rec(0, 0)
	sort.Ints(best.Cores)
	return best, nil
}

// CoreNames resolves a design's core indices to names.
func (m *Matrix) CoreNames(d Design) []string {
	out := make([]string, len(d.Cores))
	for i, c := range d.Cores {
		out[i] = m.Cores[c]
	}
	return out
}

// PaperDesigns derives the five CMP designs of the paper's Table 1 plus
// HET-D of Section 7.3 from the matrix:
//
//	HET-A: best pair by avg          HET-B: best pair by har
//	HET-C: best pair by cw-har       HOM:   best single core by har
//	HET-D: best triple by har        HET-ALL: every core type
type PaperDesigns struct {
	HetA, HetB, HetC, Hom, HetD, HetAll Design
}

// DerivePaperDesigns runs the combination searches of Sections 6 and 7.
func (m *Matrix) DerivePaperDesigns() (PaperDesigns, error) {
	if err := m.Validate(); err != nil {
		return PaperDesigns{}, err
	}
	var (
		d   PaperDesigns
		err error
	)
	if d.HetA, err = m.BestCombination(Avg, 2); err != nil {
		return d, err
	}
	d.HetA.Name = "HET-A"
	if d.HetB, err = m.BestCombination(Har, 2); err != nil {
		return d, err
	}
	d.HetB.Name = "HET-B"
	if d.HetC, err = m.BestCombination(CwHar, 2); err != nil {
		return d, err
	}
	d.HetC.Name = "HET-C"
	if d.Hom, err = m.BestCombination(Har, 1); err != nil {
		return d, err
	}
	d.Hom.Name = "HOM"
	if len(m.Cores) >= 3 {
		if d.HetD, err = m.BestCombination(Har, 3); err != nil {
			return d, err
		}
		d.HetD.Name = "HET-D"
	}
	all := make([]int, len(m.Cores))
	for i := range all {
		all[i] = i
	}
	d.HetAll = Design{Name: "HET-ALL", Merit: Har, Cores: all, Score: m.Score(Har, all)}
	return d, nil
}
