package merit

import (
	"math"
	"testing"
	"testing/quick"

	"archcontest/internal/xrand"
)

func sample() *Matrix {
	m := NewMatrix([]string{"b0", "b1", "b2", "b3"}, []string{"c0", "c1", "c2"})
	// c0 is a generalist; c1 wins b1 big; c2 wins b3 big.
	m.IPT = [][]float64{
		{2.0, 1.0, 1.0},
		{1.0, 4.0, 1.0},
		{2.0, 1.5, 1.8},
		{1.0, 1.0, 3.0},
	}
	return m
}

func TestValidate(t *testing.T) {
	m := sample()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.IPT[1][1] = 0
	if err := m.Validate(); err == nil {
		t.Error("zero IPT accepted")
	}
	m.IPT[1][1] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Error("NaN accepted")
	}
	bad := NewMatrix(nil, nil)
	if err := bad.Validate(); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestIndices(t *testing.T) {
	m := sample()
	if i, err := m.CoreIndex("c1"); err != nil || i != 1 {
		t.Errorf("CoreIndex: %d %v", i, err)
	}
	if _, err := m.CoreIndex("zz"); err == nil {
		t.Error("unknown core accepted")
	}
	if i, err := m.BenchIndex("b3"); err != nil || i != 3 {
		t.Errorf("BenchIndex: %d %v", i, err)
	}
	if _, err := m.BenchIndex("zz"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBestIn(t *testing.T) {
	m := sample()
	c, ipt := m.BestIn(1, []int{0, 1, 2})
	if c != 1 || ipt != 4.0 {
		t.Errorf("best (%d, %g)", c, ipt)
	}
	c, ipt = m.BestIn(1, []int{0, 2})
	if c != 0 && c != 2 {
		t.Errorf("restricted best %d", c)
	}
	if ipt != 1.0 {
		t.Errorf("restricted ipt %g", ipt)
	}
}

func TestScores(t *testing.T) {
	m := sample()
	all := []int{0, 1, 2}
	// Best per benchmark: 2, 4, 2, 3.
	avg := m.Score(Avg, all)
	if math.Abs(avg-11.0/4) > 1e-9 {
		t.Errorf("avg %g", avg)
	}
	har := m.Score(Har, all)
	wantHar := 4 / (1/2.0 + 1/4.0 + 1/2.0 + 1/3.0)
	if math.Abs(har-wantHar) > 1e-9 {
		t.Errorf("har %g, want %g", har, wantHar)
	}
	// Sharers: c0 2x (b0, b2), c1 1x, c2 1x.
	cw := m.Score(CwHar, all)
	wantCw := 4 / (2/2.0 + 1/4.0 + 2/2.0 + 1/3.0)
	if math.Abs(cw-wantCw) > 1e-9 {
		t.Errorf("cw-har %g, want %g", cw, wantCw)
	}
	if m.HarmonicMeanBest(all) != har {
		t.Error("HarmonicMeanBest disagrees with Score(Har)")
	}
}

func TestBestCombination(t *testing.T) {
	m := sample()
	d, err := m.BestCombination(Har, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cores) != 2 {
		t.Fatalf("cores %v", d.Cores)
	}
	// Exhaustive check against all pairs.
	bestScore := 0.0
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			if s := m.Score(Har, []int{a, b}); s > bestScore {
				bestScore = s
			}
		}
	}
	if math.Abs(d.Score-bestScore) > 1e-12 {
		t.Errorf("combination score %g, exhaustive best %g", d.Score, bestScore)
	}
	if _, err := m.BestCombination(Har, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := m.BestCombination(Har, 4); err == nil {
		t.Error("k>n accepted")
	}
}

func TestDerivePaperDesigns(t *testing.T) {
	m := sample()
	d, err := m.DerivePaperDesigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.HetA.Cores) != 2 || len(d.HetB.Cores) != 2 || len(d.HetC.Cores) != 2 {
		t.Error("pair designs wrong size")
	}
	if len(d.Hom.Cores) != 1 {
		t.Error("HOM should be one core type")
	}
	if len(d.HetD.Cores) != 3 {
		t.Error("HET-D should be three core types")
	}
	if len(d.HetAll.Cores) != 3 {
		t.Error("HET-ALL should include every core type")
	}
	// The yardstick ordering the paper's Table 1 reports: adding core types
	// cannot hurt harmonic-mean best IPT.
	hom := m.HarmonicMeanBest(d.Hom.Cores)
	hetB := m.HarmonicMeanBest(d.HetB.Cores)
	all := m.HarmonicMeanBest(d.HetAll.Cores)
	if hetB < hom || all < hetB {
		t.Errorf("ordering violated: HOM %.3f, HET-B %.3f, HET-ALL %.3f", hom, hetB, all)
	}
	if d.HetA.Name != "HET-A" || d.Hom.Name != "HOM" {
		t.Error("design names not set")
	}
	if d.HetC.Merit != CwHar {
		t.Error("HET-C merit wrong")
	}
}

func TestMeritStrings(t *testing.T) {
	if Avg.String() != "avg" || Har.String() != "har" || CwHar.String() != "cw-har" {
		t.Error("merit names")
	}
}

// Property: for any positive matrix, every figure of merit is positive, the
// score of a superset of core types is never worse for avg/har, and HOM <=
// HET-ALL under har.
func TestScoreProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		nb, nc := r.Intn(5)+2, r.Intn(4)+2
		benches := make([]string, nb)
		cores := make([]string, nc)
		for i := range benches {
			benches[i] = string(rune('a' + i))
		}
		for i := range cores {
			cores[i] = string(rune('p' + i))
		}
		m := NewMatrix(benches, cores)
		for b := 0; b < nb; b++ {
			for c := 0; c < nc; c++ {
				m.IPT[b][c] = 0.1 + 3*r.Float64()
			}
		}
		if m.Validate() != nil {
			return false
		}
		sub := []int{0}
		all := make([]int, nc)
		for i := range all {
			all[i] = i
		}
		for _, fm := range []FigureOfMerit{Avg, Har} {
			if m.Score(fm, sub) <= 0 || m.Score(fm, all) < m.Score(fm, sub)-1e-12 {
				return false
			}
		}
		return m.Score(CwHar, all) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
