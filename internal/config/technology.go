package config

import (
	"fmt"
	"math"

	"archcontest/internal/branch"
	"archcontest/internal/cache"
)

// The technology model ties the dependent configuration axes to the free
// ones the design-space exploration chooses, in the spirit of the paper's
// statement that "the depth of pipelining of various architectural
// units/stages is consistent with the processor's frequency and the
// complexity of these units/stages".
//
// The constants below are fitted to the paper's Appendix A palette (70nm):
// absolute front-end work of ~2ns grows slightly with width, scheduler and
// bypass work grow with width and issue-queue size, main memory sits ~57ns
// away, and cache access time grows with the log of capacity. The palette
// itself is used verbatim; the model only disciplines *new* design points
// so exploration cannot pick wide, fast, shallow, zero-wake-up cores that
// the technology could not build.

// FreeParams are the independent axes the exploration varies.
type FreeParams struct {
	Name          string
	ClockPeriodNs float64
	Width         int
	ROBSize       int
	IQSize        int
	LSQSize       int
	L1Sets        int
	L1Assoc       int
	L1Block       int
	L2Sets        int
	L2Assoc       int
	L2Block       int
	// Predictor selects the branch predictor; the zero value means the
	// Appendix-A default, so pre-existing callers are unchanged.
	Predictor branch.Config
	// Replacement names the replacement policy applied to both private
	// cache levels ("" keeps the built-in true LRU), and Prefetcher names
	// the data prefetcher ("" attaches none) — the explore axes added
	// beside the predictor menu.
	Replacement string
	Prefetcher  string
}

// Derive completes a core configuration from free parameters using the
// technology model: pipeline depths, wake-up latency, memory latency, and
// cache latencies are computed from the clock period and structure sizes.
func Derive(p FreeParams) (CoreConfig, error) {
	if p.ClockPeriodNs <= 0 {
		return CoreConfig{}, fmt.Errorf("config: non-positive clock period %g", p.ClockPeriodNs)
	}
	l1 := cache.Config{Sets: p.L1Sets, Assoc: p.L1Assoc, BlockBytes: p.L1Block, Replacement: p.Replacement}
	l2 := cache.Config{Sets: p.L2Sets, Assoc: p.L2Assoc, BlockBytes: p.L2Block, Replacement: p.Replacement}
	l1.LatencyCycles = cacheLatencyCycles(l1NsFor(l1), p.ClockPeriodNs)
	l2.LatencyCycles = cacheLatencyCycles(l2NsFor(l2), p.ClockPeriodNs)

	feWork := 1.4 + 0.08*float64(p.Width)
	schedWork := 0.12 + 0.005*float64(p.IQSize) + 0.03*float64(p.Width)
	bypassWork := 0.35 + 0.035*float64(p.Width)
	const memNs = 57.0

	pred := p.Predictor
	if pred == (branch.Config{}) {
		pred = branch.DefaultConfig()
	}

	c := CoreConfig{
		Name:             p.Name,
		ClockPeriodNs:    p.ClockPeriodNs,
		Width:            p.Width,
		ROBSize:          p.ROBSize,
		IQSize:           p.IQSize,
		LSQSize:          p.LSQSize,
		FrontEndDepth:    clampInt(roundDiv(feWork, p.ClockPeriodNs), 3, 16),
		SchedDepth:       clampInt(roundDiv(schedWork, p.ClockPeriodNs), 1, 6),
		WakeupLatency:    clampInt(roundDiv(bypassWork, p.ClockPeriodNs)-1, 0, 4),
		MemLatencyCycles: clampInt(roundDiv(memNs, p.ClockPeriodNs), 10, 2000),
		L1D:              l1,
		L2D:              l2,
		Predictor:        pred,
		Prefetch:         cache.PrefetchConfig{Name: p.Prefetcher},
	}
	if err := c.Validate(); err != nil {
		return CoreConfig{}, err
	}
	return c, nil
}

func l1NsFor(c cache.Config) float64 {
	kb := math.Max(1, float64(c.SizeBytes())/1024)
	return 0.30 + 0.10*math.Log2(kb)
}

func l2NsFor(c cache.Config) float64 {
	mb := float64(c.SizeBytes()) / (1 << 20)
	return 0.3 + 3.2*mb
}

func cacheLatencyCycles(workNs, periodNs float64) int {
	n := roundDiv(workNs, periodNs)
	if n < 1 {
		return 1
	}
	return n
}

func roundDiv(a, b float64) int { return int(a/b + 0.5) }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
