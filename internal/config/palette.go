package config

import (
	"fmt"
	"sort"

	"archcontest/internal/branch"
	"archcontest/internal/cache"
)

// The Appendix A table of the paper, transcribed column by column: the
// customized configuration of each SPEC2000 integer benchmark found by the
// XpScalar simulated-annealing exploration for 70nm technology.
//
// Row order in the paper: memory access cycles, front-end stages, width,
// ROB size, issue-queue size, wakeup latency, scheduler/reg-file depth,
// clock period, L1D (assoc, block, sets, latency), L2D (assoc, block, sets,
// latency), LS-queue size.
var palette = map[string]CoreConfig{
	"bzip":   appendixA("bzip", 112, 4, 5, 512, 64, 0, 1, 0.49, 2, 32, 1024, 2, 4, 64, 8192, 15, 128),
	"crafty": appendixA("crafty", 321, 12, 8, 64, 32, 3, 3, 0.19, 1, 8, 16384, 5, 16, 64, 128, 7, 64),
	"gap":    appendixA("gap", 173, 6, 4, 128, 32, 1, 1, 0.33, 1, 8, 2048, 2, 4, 256, 128, 4, 256),
	"gcc":    appendixA("gcc", 186, 7, 4, 256, 32, 1, 2, 0.31, 1, 8, 32768, 4, 8, 64, 1024, 6, 256),
	"gzip":   appendixA("gzip", 198, 7, 4, 64, 32, 1, 1, 0.29, 1, 128, 256, 3, 1, 128, 4096, 5, 128),
	"mcf":    appendixA("mcf", 120, 4, 3, 1024, 64, 0, 1, 0.45, 2, 128, 1024, 5, 4, 128, 8192, 27, 64),
	"parser": appendixA("parser", 198, 7, 4, 512, 32, 1, 2, 0.29, 1, 64, 2048, 3, 8, 512, 32, 12, 256),
	"perl":   appendixA("perl", 321, 12, 5, 256, 32, 3, 4, 0.19, 1, 8, 2048, 3, 16, 64, 128, 7, 128),
	"twolf":  appendixA("twolf", 172, 6, 5, 512, 64, 1, 2, 0.33, 8, 64, 128, 3, 4, 128, 2048, 12, 256),
	"vortex": appendixA("vortex", 213, 8, 7, 512, 32, 2, 4, 0.27, 4, 32, 1024, 5, 16, 128, 128, 6, 256),
	"vpr":    appendixA("vpr", 172, 6, 5, 256, 64, 1, 2, 0.30, 2, 32, 128, 2, 8, 128, 1024, 12, 64),
}

func appendixA(name string, memCyc, feDepth, width, rob, iq, wakeup, sched int, clockNs float64,
	l1Assoc, l1Block, l1Sets, l1Lat, l2Assoc, l2Block, l2Sets, l2Lat, lsq int) CoreConfig {
	return CoreConfig{
		Name:             name,
		ClockPeriodNs:    clockNs,
		FrontEndDepth:    feDepth,
		Width:            width,
		ROBSize:          rob,
		IQSize:           iq,
		LSQSize:          lsq,
		WakeupLatency:    wakeup,
		SchedDepth:       sched,
		MemLatencyCycles: memCyc,
		L1D:              cache.Config{Sets: l1Sets, Assoc: l1Assoc, BlockBytes: l1Block, LatencyCycles: l1Lat},
		L2D:              cache.Config{Sets: l2Sets, Assoc: l2Assoc, BlockBytes: l2Block, LatencyCycles: l2Lat},
		Predictor:        branch.DefaultConfig(),
	}
}

// PaletteNames returns the names of the benchmark-customized cores in
// alphabetical order (the same eleven names as the workload registry).
func PaletteNames() []string {
	names := make([]string, 0, len(palette))
	for n := range palette {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PaletteCore returns the customized core of the named benchmark.
func PaletteCore(name string) (CoreConfig, error) {
	c, ok := palette[name]
	if !ok {
		return CoreConfig{}, fmt.Errorf("config: no palette core %q", name)
	}
	return c, nil
}

// MustPaletteCore is PaletteCore for known-good names; it panics on error.
func MustPaletteCore(name string) CoreConfig {
	c, err := PaletteCore(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Palette returns all benchmark-customized cores, ordered by name.
func Palette() []CoreConfig {
	names := PaletteNames()
	cs := make([]CoreConfig, len(names))
	for i, n := range names {
		cs[i] = palette[n]
	}
	return cs
}
