package config

import (
	"strings"
	"testing"
)

func TestPaletteComplete(t *testing.T) {
	names := PaletteNames()
	if len(names) != 11 {
		t.Fatalf("%d palette cores, want 11", len(names))
	}
	for _, n := range names {
		c := MustPaletteCore(n)
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if c.Name != n {
			t.Errorf("core named %q registered as %q", c.Name, n)
		}
	}
	if _, err := PaletteCore("eon"); err == nil {
		t.Error("eon should not be in the palette")
	}
}

// Spot-check transcription of the paper's Appendix A against distinctive
// entries.
func TestAppendixATranscription(t *testing.T) {
	mcf := MustPaletteCore("mcf")
	if mcf.ROBSize != 1024 || mcf.Width != 3 || mcf.WakeupLatency != 0 {
		t.Errorf("mcf core mis-transcribed: %v", mcf)
	}
	if mcf.L2D.SizeBytes() != 4<<20 {
		t.Errorf("mcf L2 = %dKB, want 4MB", mcf.L2D.SizeBytes()>>10)
	}
	if mcf.L2D.LatencyCycles != 27 || mcf.MemLatencyCycles != 120 {
		t.Errorf("mcf latencies: %v", mcf)
	}

	crafty := MustPaletteCore("crafty")
	if crafty.Width != 8 || crafty.ClockPeriodNs != 0.19 || crafty.FrontEndDepth != 12 {
		t.Errorf("crafty core mis-transcribed: %v", crafty)
	}
	if crafty.L1D.Sets != 16384 || crafty.L1D.BlockBytes != 8 || crafty.L1D.Assoc != 1 {
		t.Errorf("crafty L1D mis-transcribed: %v", crafty.L1D)
	}

	bzip := MustPaletteCore("bzip")
	if bzip.ClockPeriodNs != 0.49 || bzip.ROBSize != 512 || bzip.WakeupLatency != 0 {
		t.Errorf("bzip core mis-transcribed: %v", bzip)
	}
	if bzip.L2D.SizeBytes() != 2<<20 {
		t.Errorf("bzip L2 = %dKB, want 2MB", bzip.L2D.SizeBytes()>>10)
	}

	twolf := MustPaletteCore("twolf")
	if twolf.L1D.Assoc != 8 || twolf.L1D.Sets != 128 {
		t.Errorf("twolf L1D mis-transcribed: %v", twolf.L1D)
	}

	parser := MustPaletteCore("parser")
	if parser.L2D.BlockBytes != 512 || parser.L2D.Sets != 32 {
		t.Errorf("parser L2D mis-transcribed: %v", parser.L2D)
	}

	vpr := MustPaletteCore("vpr")
	if vpr.L1D.SizeBytes() != 8<<10 {
		t.Errorf("vpr L1 = %dKB, want 8KB", vpr.L1D.SizeBytes()>>10)
	}
}

// All palette cores should put main memory at a comparable absolute
// distance (the paper's configurations cluster around 52-62ns).
func TestMemoryLatencyAbsolute(t *testing.T) {
	for _, c := range Palette() {
		ns := c.MemLatencyNs()
		if ns < 50 || ns < 45 || ns > 65 {
			t.Errorf("%s: memory at %.1fns, outside the palette's 50-65ns band", c.Name, ns)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := MustPaletteCore("gcc")
	mutations := map[string]func(*CoreConfig){
		"no name":   func(c *CoreConfig) { c.Name = "" },
		"clock":     func(c *CoreConfig) { c.ClockPeriodNs = 0 },
		"fe depth":  func(c *CoreConfig) { c.FrontEndDepth = 0 },
		"width":     func(c *CoreConfig) { c.Width = 0 },
		"wide":      func(c *CoreConfig) { c.Width = 64 },
		"rob":       func(c *CoreConfig) { c.ROBSize = 2 },
		"iq":        func(c *CoreConfig) { c.IQSize = 0 },
		"iq > rob":  func(c *CoreConfig) { c.IQSize = c.ROBSize + 1 },
		"lsq":       func(c *CoreConfig) { c.LSQSize = 0 },
		"wakeup":    func(c *CoreConfig) { c.WakeupLatency = -1 },
		"sched":     func(c *CoreConfig) { c.SchedDepth = 0 },
		"mem":       func(c *CoreConfig) { c.MemLatencyCycles = 1 },
		"l1":        func(c *CoreConfig) { c.L1D.Sets = 3 },
		"l2":        func(c *CoreConfig) { c.L2D.Assoc = 0 },
		"predictor": func(c *CoreConfig) { c.Predictor.Kind = "bogus" },
	}
	for name, mut := range mutations {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWithL2(t *testing.T) {
	bzip := MustPaletteCore("bzip")
	parser := MustPaletteCore("parser")
	hybrid := bzip.WithL2(parser)
	if hybrid.L2D != parser.L2D {
		t.Error("L2 not replaced")
	}
	if hybrid.L1D != bzip.L1D || hybrid.Width != bzip.Width || hybrid.ClockPeriodNs != bzip.ClockPeriodNs {
		t.Error("non-L2 fields changed")
	}
	if !strings.Contains(hybrid.Name, "bzip") || !strings.Contains(hybrid.Name, "parser") {
		t.Errorf("hybrid name %q", hybrid.Name)
	}
	if err := hybrid.Validate(); err != nil {
		t.Error(err)
	}
}

func TestClockHelpers(t *testing.T) {
	c := MustPaletteCore("bzip")
	if c.Clock().PeriodNs() != 0.49 {
		t.Errorf("clock period %g", c.Clock().PeriodNs())
	}
	if g := c.FrequencyGHz(); g < 2.0 || g > 2.1 {
		t.Errorf("frequency %g", g)
	}
}

func TestDerive(t *testing.T) {
	p := FreeParams{
		Name: "probe", ClockPeriodNs: 0.30, Width: 4,
		ROBSize: 256, IQSize: 32, LSQSize: 128,
		L1Sets: 1024, L1Assoc: 2, L1Block: 32,
		L2Sets: 1024, L2Assoc: 8, L2Block: 128,
	}
	c, err := Derive(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// ~57ns of memory at 0.30ns per cycle.
	if c.MemLatencyCycles < 170 || c.MemLatencyCycles > 210 {
		t.Errorf("memory latency %d cycles", c.MemLatencyCycles)
	}
	// Faster clock must deepen the front end.
	p2 := p
	p2.ClockPeriodNs = 0.19
	c2, err := Derive(p2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.FrontEndDepth <= c.FrontEndDepth {
		t.Errorf("front end %d at 0.19ns vs %d at 0.30ns", c2.FrontEndDepth, c.FrontEndDepth)
	}
	if c2.WakeupLatency < c.WakeupLatency {
		t.Errorf("wakeup %d at 0.19ns vs %d at 0.30ns", c2.WakeupLatency, c.WakeupLatency)
	}
	// Bigger caches must be slower in cycles at equal clock.
	p3 := p
	p3.L1Sets = 16384
	c3, err := Derive(p3)
	if err != nil {
		t.Fatal(err)
	}
	if c3.L1D.LatencyCycles <= c.L1D.LatencyCycles {
		t.Errorf("16x larger L1 latency %d vs %d", c3.L1D.LatencyCycles, c.L1D.LatencyCycles)
	}
}

func TestDeriveMatchesPaletteRoughly(t *testing.T) {
	// Deriving from the palette's free parameters should land within a
	// couple of stages/cycles of the paper's dependent parameters.
	for _, name := range []string{"bzip", "gcc", "twolf", "mcf"} {
		ref := MustPaletteCore(name)
		c, err := Derive(FreeParams{
			Name: name, ClockPeriodNs: ref.ClockPeriodNs, Width: ref.Width,
			ROBSize: ref.ROBSize, IQSize: ref.IQSize, LSQSize: ref.LSQSize,
			L1Sets: ref.L1D.Sets, L1Assoc: ref.L1D.Assoc, L1Block: ref.L1D.BlockBytes,
			L2Sets: ref.L2D.Sets, L2Assoc: ref.L2D.Assoc, L2Block: ref.L2D.BlockBytes,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := c.FrontEndDepth - ref.FrontEndDepth; d < -2 || d > 2 {
			t.Errorf("%s: derived front end %d vs paper %d", name, c.FrontEndDepth, ref.FrontEndDepth)
		}
		if d := c.WakeupLatency - ref.WakeupLatency; d < -1 || d > 1 {
			t.Errorf("%s: derived wakeup %d vs paper %d", name, c.WakeupLatency, ref.WakeupLatency)
		}
		if ratio := float64(c.MemLatencyCycles) / float64(ref.MemLatencyCycles); ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s: derived memory %d cycles vs paper %d", name, c.MemLatencyCycles, ref.MemLatencyCycles)
		}
	}
}

func TestDeriveRejects(t *testing.T) {
	if _, err := Derive(FreeParams{Name: "x", ClockPeriodNs: 0}); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := Derive(FreeParams{
		Name: "x", ClockPeriodNs: 0.3, Width: 4, ROBSize: 256, IQSize: 32, LSQSize: 64,
		L1Sets: 3, L1Assoc: 1, L1Block: 32, L2Sets: 128, L2Assoc: 4, L2Block: 64,
	}); err == nil {
		t.Error("bad L1 geometry accepted")
	}
}

func TestStringHasKeyFields(t *testing.T) {
	s := MustPaletteCore("vortex").String()
	for _, want := range []string{"vortex", "7-wide", "ROB=512"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
