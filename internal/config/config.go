// Package config defines the microarchitectural configuration of one core
// and reproduces the paper's Appendix A palette: the eleven configurations
// customized for the SPEC2000 integer benchmarks by the XpScalar
// simulated-annealing exploration in 70nm technology.
package config

import (
	"fmt"

	"archcontest/internal/branch"
	"archcontest/internal/cache"
	"archcontest/internal/ticks"
)

// CoreConfig describes one core along the paper's Appendix A axes.
type CoreConfig struct {
	// Name identifies the configuration; palette cores are named after the
	// benchmark they are customized for.
	Name string

	// ClockPeriodNs is the clock period in nanoseconds.
	ClockPeriodNs float64
	// FrontEndDepth is the number of front-end pipeline stages (fetch to
	// dispatch); it sets the branch-misprediction refill penalty.
	FrontEndDepth int
	// Width is the dispatch, issue, and commit width.
	Width int
	// ROBSize is the reorder-buffer (instruction window) size.
	ROBSize int
	// IQSize is the issue-queue size.
	IQSize int
	// LSQSize is the load/store queue size.
	LSQSize int
	// WakeupLatency is the minimum latency, in cycles, for awakening a
	// dependent instruction after its producer completes (0 = back-to-back).
	WakeupLatency int
	// SchedDepth is the pipeline depth of the scheduler/register file: the
	// cycles between issue and execution start.
	SchedDepth int
	// MemLatencyCycles is the main-memory access latency in core cycles.
	MemLatencyCycles int

	// L1D and L2D are the private data-cache levels.
	L1D, L2D cache.Config

	// Predictor is the branch predictor; the palette uses the same default
	// for every core (the paper's configurations do not vary it).
	Predictor branch.Config

	// Prefetch names the data prefetcher observing the core's demand loads.
	// The zero value — the palette default — attaches none, leaving the
	// load path exactly as it was before the prefetch seam existed.
	Prefetch cache.PrefetchConfig `json:",omitempty"`
}

// Validate reports whether the configuration is well formed.
func (c CoreConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("config: unnamed core")
	}
	if c.ClockPeriodNs < 0.01 || c.ClockPeriodNs > 10 {
		return fmt.Errorf("config %s: clock period %gns out of range", c.Name, c.ClockPeriodNs)
	}
	if c.FrontEndDepth < 1 || c.FrontEndDepth > 30 {
		return fmt.Errorf("config %s: front-end depth %d out of range", c.Name, c.FrontEndDepth)
	}
	if c.Width < 1 || c.Width > 16 {
		return fmt.Errorf("config %s: width %d out of range", c.Name, c.Width)
	}
	if c.ROBSize < c.Width || c.ROBSize > 4096 {
		return fmt.Errorf("config %s: ROB size %d out of range", c.Name, c.ROBSize)
	}
	if c.IQSize < 1 || c.IQSize > c.ROBSize {
		return fmt.Errorf("config %s: issue queue size %d out of range", c.Name, c.IQSize)
	}
	// Appendix A allows the LSQ to exceed the ROB (e.g. gap: LSQ 256, ROB
	// 128), so the LSQ is only bounded absolutely.
	if c.LSQSize < 1 || c.LSQSize > 4096 {
		return fmt.Errorf("config %s: LSQ size %d out of range", c.Name, c.LSQSize)
	}
	if c.WakeupLatency < 0 || c.WakeupLatency > 8 {
		return fmt.Errorf("config %s: wakeup latency %d out of range", c.Name, c.WakeupLatency)
	}
	if c.SchedDepth < 1 || c.SchedDepth > 8 {
		return fmt.Errorf("config %s: scheduler depth %d out of range", c.Name, c.SchedDepth)
	}
	if c.MemLatencyCycles < 10 || c.MemLatencyCycles > 2000 {
		return fmt.Errorf("config %s: memory latency %d out of range", c.Name, c.MemLatencyCycles)
	}
	if err := c.L1D.Validate(); err != nil {
		return fmt.Errorf("config %s: L1D: %w", c.Name, err)
	}
	if err := c.L2D.Validate(); err != nil {
		return fmt.Errorf("config %s: L2D: %w", c.Name, err)
	}
	if _, err := c.Predictor.New(); err != nil {
		return fmt.Errorf("config %s: %w", c.Name, err)
	}
	if err := c.Prefetch.Validate(); err != nil {
		return fmt.Errorf("config %s: %w", c.Name, err)
	}
	return nil
}

// Clock returns the core's clock.
func (c CoreConfig) Clock() ticks.Clock { return ticks.NewClock(c.ClockPeriodNs) }

// FrequencyGHz reports the clock frequency.
func (c CoreConfig) FrequencyGHz() float64 { return 1 / c.ClockPeriodNs }

// MemLatencyNs reports the absolute main-memory latency.
func (c CoreConfig) MemLatencyNs() float64 {
	return float64(c.MemLatencyCycles) * c.ClockPeriodNs
}

// WithL2 returns a copy of the configuration with the L2 cache
// (configuration and access latency) replaced by other's, keeping everything
// else — the transformation used by the paper's Figure 7 experiment to
// isolate L2 heterogeneity.
func (c CoreConfig) WithL2(other CoreConfig) CoreConfig {
	out := c
	out.L2D = other.L2D
	out.Name = c.Name + "+L2(" + other.Name + ")"
	return out
}

func (c CoreConfig) String() string {
	return fmt.Sprintf("%s: %d-wide %.2fGHz ROB=%d IQ=%d LSQ=%d FE=%d sched=%d wake=%d L1D[%v] L2D[%v] mem=%dcyc",
		c.Name, c.Width, c.FrequencyGHz(), c.ROBSize, c.IQSize, c.LSQSize,
		c.FrontEndDepth, c.SchedDepth, c.WakeupLatency, c.L1D, c.L2D, c.MemLatencyCycles)
}
