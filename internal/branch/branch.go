// Package branch implements the dynamic branch direction predictors used by
// the core model: a bimodal table of two-bit counters, a gshare predictor
// (global history XORed into the counter index), and a TAGE predictor
// (tagged tables with geometric history lengths; see tage.go).
//
// The Appendix-A core configurations of the paper do not vary the predictor,
// so every core uses the same predictor geometry by default; the package
// still exposes the parameters because the exploration tool, the predictor
// experiment family, and the ablation benches exercise them.
//
// All constructors validate geometry and return errors (never panic), so
// configurations decoded from untrusted JSON specs can be rejected without
// taking down a serve node.
package branch

import "fmt"

// Predictor predicts conditional branch directions.
//
// Predict returns the predicted direction for the branch at pc. Update
// trains the predictor with the resolved outcome; it must be called exactly
// once per predicted branch, in program order (the trace-driven core model
// resolves branches in program order with respect to the predictor because
// it never fetches wrong-path instructions).
type Predictor interface {
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
	// Reset clears all learned state.
	Reset()
}

// counter is a saturating two-bit counter; values 2 and 3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a per-PC table of two-bit counters.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^logSize counters,
// initialized to weakly taken. It returns an error on invalid geometry.
func NewBimodal(logSize int) (*Bimodal, error) {
	if logSize < 1 || logSize > 24 {
		return nil, fmt.Errorf("branch: bimodal logSize %d out of range [1,24]", logSize)
	}
	b := &Bimodal{
		table: make([]counter, 1<<logSize),
		mask:  1<<logSize - 1,
	}
	b.Reset()
	return b, nil
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2 // weakly taken
	}
}

// Gshare is a global-history predictor: the counter index is the branch PC
// XORed with the global history register.
type Gshare struct {
	table       []counter
	mask        uint64
	history     uint64
	historyBits int
}

// NewGshare returns a gshare predictor with 2^logSize counters and the given
// global history length. historyBits must not exceed logSize. It returns an
// error on invalid geometry.
func NewGshare(logSize, historyBits int) (*Gshare, error) {
	if logSize < 1 || logSize > 24 {
		return nil, fmt.Errorf("branch: gshare logSize %d out of range [1,24]", logSize)
	}
	if historyBits < 0 || historyBits > logSize {
		return nil, fmt.Errorf("branch: gshare historyBits %d out of range for logSize %d", historyBits, logSize)
	}
	g := &Gshare{
		table:       make([]counter, 1<<logSize),
		mask:        1<<logSize - 1,
		historyBits: historyBits,
	}
	g.Reset()
	return g, nil
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor. It trains the counter and shifts the outcome
// into the global history.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= 1<<g.historyBits - 1
}

// Reset implements Predictor.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 2
	}
	g.history = 0
}

// Config selects and sizes a predictor.
type Config struct {
	// Kind is "gshare", "bimodal", or "tage".
	Kind string
	// LogSize is the log2 of the counter table size (for TAGE: the base
	// bimodal table).
	LogSize int
	// HistoryBits is the global history length (gshare only).
	HistoryBits int

	// TAGE geometry (Kind "tage" only; must be zero otherwise).

	// TageTables is the number of tagged components.
	TageTables int
	// TageLogSize is the log2 of each tagged component's entry count.
	TageLogSize int
	// TageTagBits is the partial-tag width of the tagged entries.
	TageTagBits int
	// TageMinHist and TageMaxHist bound the geometric history-length
	// series (TageMaxHist <= 64).
	TageMinHist int
	TageMaxHist int

	// Params is an opaque parameter string passed through to registered
	// predictor factories (see Register). The built-in kinds take their
	// geometry from the typed fields above and reject a non-empty Params.
	Params string `json:",omitempty"`
}

// DefaultConfig is the predictor used by every Appendix-A core: a 4K-entry
// gshare with 10 bits of global history.
func DefaultConfig() Config {
	return Config{Kind: "gshare", LogSize: 12, HistoryBits: 10}
}

// DefaultTAGEConfig is the reference TAGE geometry used by the predictor
// experiments and the explore menu: a 4K-entry bimodal base plus six
// 512-entry tagged tables with 9-bit tags and history lengths spanning
// 4..64 — long enough to separate interleaved loop patterns that outrun a
// gshare history register.
func DefaultTAGEConfig() Config {
	return Config{
		Kind: "tage", LogSize: 12,
		TageTables: 6, TageLogSize: 9, TageTagBits: 9,
		TageMinHist: 4, TageMaxHist: 64,
	}
}

// New builds the predictor described by the config. The built-in kinds are
// constructed directly; any other kind is resolved through the registry
// (see Register). All geometry problems surface as errors.
func (c Config) New() (Predictor, error) {
	switch c.Kind {
	case "gshare":
		if c.hasTageGeometry() {
			return nil, fmt.Errorf("branch: gshare config with TAGE geometry %+v", c)
		}
		if c.Params != "" {
			return nil, fmt.Errorf("branch: gshare config with opaque params %q", c.Params)
		}
		return NewGshare(c.LogSize, c.HistoryBits)
	case "bimodal":
		if c.HistoryBits != 0 || c.hasTageGeometry() {
			return nil, fmt.Errorf("branch: bimodal config with extraneous geometry %+v", c)
		}
		if c.Params != "" {
			return nil, fmt.Errorf("branch: bimodal config with opaque params %q", c.Params)
		}
		return NewBimodal(c.LogSize)
	case "tage":
		if c.HistoryBits != 0 {
			return nil, fmt.Errorf("branch: tage config sets gshare HistoryBits %d", c.HistoryBits)
		}
		if c.Params != "" {
			return nil, fmt.Errorf("branch: tage config with opaque params %q", c.Params)
		}
		return NewTAGE(c.LogSize, c.TageTables, c.TageLogSize, c.TageTagBits, c.TageMinHist, c.TageMaxHist)
	default:
		f, ok := lookup(c.Kind)
		if !ok {
			return nil, fmt.Errorf("branch: unknown predictor kind %q", c.Kind)
		}
		p, err := f(c)
		if err != nil {
			return nil, fmt.Errorf("branch: registered kind %q: %w", c.Kind, err)
		}
		if p == nil {
			return nil, fmt.Errorf("branch: registered kind %q returned a nil predictor", c.Kind)
		}
		return p, nil
	}
}

func (c Config) hasTageGeometry() bool {
	return c.TageTables != 0 || c.TageLogSize != 0 || c.TageTagBits != 0 ||
		c.TageMinHist != 0 || c.TageMaxHist != 0
}
