// Package branch implements the dynamic branch direction predictors used by
// the core model: a bimodal table of two-bit counters and a gshare predictor
// (global history XORed into the counter index).
//
// The Appendix-A core configurations of the paper do not vary the predictor,
// so every core uses the same predictor geometry by default; the package
// still exposes the parameters because the exploration tool and the ablation
// benches exercise them.
package branch

import "fmt"

// Predictor predicts conditional branch directions.
//
// Predict returns the predicted direction for the branch at pc. Update
// trains the predictor with the resolved outcome; it must be called exactly
// once per predicted branch, in program order (the trace-driven core model
// resolves branches in program order with respect to the predictor because
// it never fetches wrong-path instructions).
type Predictor interface {
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
	// Reset clears all learned state.
	Reset()
}

// counter is a saturating two-bit counter; values 2 and 3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a per-PC table of two-bit counters.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^logSize counters,
// initialized to weakly taken.
func NewBimodal(logSize int) *Bimodal {
	if logSize < 1 || logSize > 24 {
		panic(fmt.Sprintf("branch: bimodal logSize %d out of range", logSize))
	}
	b := &Bimodal{
		table: make([]counter, 1<<logSize),
		mask:  1<<logSize - 1,
	}
	b.Reset()
	return b
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2 // weakly taken
	}
}

// Gshare is a global-history predictor: the counter index is the branch PC
// XORed with the global history register.
type Gshare struct {
	table       []counter
	mask        uint64
	history     uint64
	historyBits int
}

// NewGshare returns a gshare predictor with 2^logSize counters and the given
// global history length. historyBits must not exceed logSize.
func NewGshare(logSize, historyBits int) *Gshare {
	if logSize < 1 || logSize > 24 {
		panic(fmt.Sprintf("branch: gshare logSize %d out of range", logSize))
	}
	if historyBits < 0 || historyBits > logSize {
		panic(fmt.Sprintf("branch: gshare historyBits %d out of range for logSize %d", historyBits, logSize))
	}
	g := &Gshare{
		table:       make([]counter, 1<<logSize),
		mask:        1<<logSize - 1,
		historyBits: historyBits,
	}
	g.Reset()
	return g
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor. It trains the counter and shifts the outcome
// into the global history.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= 1<<g.historyBits - 1
}

// Reset implements Predictor.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 2
	}
	g.history = 0
}

// Config selects and sizes a predictor.
type Config struct {
	// Kind is "gshare" or "bimodal".
	Kind string
	// LogSize is the log2 of the counter table size.
	LogSize int
	// HistoryBits is the global history length (gshare only).
	HistoryBits int
}

// DefaultConfig is the predictor used by every Appendix-A core: a 4K-entry
// gshare with 10 bits of global history.
func DefaultConfig() Config {
	return Config{Kind: "gshare", LogSize: 12, HistoryBits: 10}
}

// New builds the predictor described by the config.
func (c Config) New() (Predictor, error) {
	switch c.Kind {
	case "gshare":
		if c.LogSize < 1 || c.LogSize > 24 || c.HistoryBits < 0 || c.HistoryBits > c.LogSize {
			return nil, fmt.Errorf("branch: invalid gshare config %+v", c)
		}
		return NewGshare(c.LogSize, c.HistoryBits), nil
	case "bimodal":
		if c.LogSize < 1 || c.LogSize > 24 {
			return nil, fmt.Errorf("branch: invalid bimodal config %+v", c)
		}
		return NewBimodal(c.LogSize), nil
	default:
		return nil, fmt.Errorf("branch: unknown predictor kind %q", c.Kind)
	}
}
