package branch

import (
	"strings"
	"testing"
)

// fixed is a registry test double: a parameterless predictor whose single
// counter table makes determinism and Reset trivially checkable.
type fixed struct {
	table [64]counter
}

func (f *fixed) Predict(pc uint64) bool { return f.table[(pc>>2)&63].taken() }
func (f *fixed) Update(pc uint64, taken bool) {
	i := (pc >> 2) & 63
	f.table[i] = f.table[i].update(taken)
}
func (f *fixed) Reset() {
	for i := range f.table {
		f.table[i] = 2
	}
}

func newFixed() *fixed {
	f := &fixed{}
	f.Reset()
	return f
}

func TestRegisterRejectsBadNames(t *testing.T) {
	factory := func(Config) (Predictor, error) { return newFixed(), nil }
	if err := Register("", factory); err == nil {
		t.Fatal("empty name accepted")
	}
	for _, builtin := range []string{"gshare", "bimodal", "tage"} {
		if err := Register(builtin, factory); err == nil {
			t.Fatalf("built-in name %q accepted", builtin)
		}
	}
	if err := Register("reg-test-nil", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := Register("reg-test-dup", factory); err != nil {
		t.Fatalf("first registration failed: %v", err)
	}
	if err := Register("reg-test-dup", factory); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestRegisteredListsBuiltinsAndRegistered(t *testing.T) {
	if err := Register("reg-test-listed", func(Config) (Predictor, error) { return newFixed(), nil }); err != nil {
		t.Fatal(err)
	}
	names := Registered()
	want := map[string]bool{"gshare": false, "bimodal": false, "tage": false, "reg-test-listed": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("Registered() missing %q (got %v)", n, names)
		}
	}
}

func TestRegisteredKindConstructsThroughConfig(t *testing.T) {
	var gotParams string
	err := Register("reg-test-params", func(cfg Config) (Predictor, error) {
		gotParams = cfg.Params
		return newFixed(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := (Config{Kind: "reg-test-params", Params: "alpha=3"}).New()
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("nil predictor")
	}
	if gotParams != "alpha=3" {
		t.Fatalf("factory saw params %q, want alpha=3", gotParams)
	}
	if _, err := (Config{Kind: "reg-test-unknown"}).New(); err == nil ||
		!strings.Contains(err.Error(), "unknown predictor kind") {
		t.Fatalf("unknown kind error = %v", err)
	}
}

func TestBuiltinsRejectOpaqueParams(t *testing.T) {
	for _, kind := range []string{"gshare", "bimodal", "tage"} {
		cfg := RepresentativeConfig(kind)
		cfg.Params = "x"
		if _, err := cfg.New(); err == nil {
			t.Errorf("%s accepted opaque params", kind)
		}
	}
}

func TestConformanceBuiltins(t *testing.T) {
	for _, kind := range []string{"gshare", "bimodal", "tage"} {
		if err := Conformance(RepresentativeConfig(kind)); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

// nondet predicts from a call counter the Reset doesn't clear, violating
// the Reset-equals-cold-state clause.
type nondet struct{ calls int }

func (n *nondet) Predict(pc uint64) bool { n.calls++; return n.calls%5 == 0 }
func (n *nondet) Update(uint64, bool)    {}
func (n *nondet) Reset()                 {}

// alloc allocates on every Update, violating the no-allocation clause.
type alloc struct{ sink []byte }

func (a *alloc) Predict(uint64) bool { return true }
func (a *alloc) Update(uint64, bool) { a.sink = append(a.sink[:0:0], 1) }
func (a *alloc) Reset()              { a.sink = nil }

func TestConformanceCatchesViolations(t *testing.T) {
	if err := Register("reg-test-nondet", func(Config) (Predictor, error) { return &nondet{}, nil }); err != nil {
		t.Fatal(err)
	}
	if err := Conformance(Config{Kind: "reg-test-nondet"}); err == nil {
		t.Error("conformance passed a reset-violating predictor")
	}
	if err := Register("reg-test-alloc", func(Config) (Predictor, error) { return &alloc{}, nil }); err != nil {
		t.Fatal(err)
	}
	if err := Conformance(Config{Kind: "reg-test-alloc"}); err == nil ||
		!strings.Contains(err.Error(), "allocated") {
		t.Errorf("conformance on allocating predictor = %v, want allocation failure", err)
	}
	if err := Conformance(Config{Kind: "reg-test-absent"}); err == nil {
		t.Error("conformance passed an unregistered kind")
	}
}

func TestRepresentativeConfigsConstruct(t *testing.T) {
	for _, kind := range []string{"gshare", "bimodal", "tage"} {
		if _, err := RepresentativeConfig(kind).New(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	if cfg := RepresentativeConfig("reg-3p"); cfg.Kind != "reg-3p" || cfg.LogSize != 0 {
		t.Errorf("third-party representative config = %+v", cfg)
	}
}
