package branch

import (
	"testing"
	"testing/quick"

	"archcontest/internal/xrand"
)

func mustBimodal(t *testing.T, logSize int) *Bimodal {
	t.Helper()
	b, err := NewBimodal(logSize)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustGshare(t *testing.T, logSize, historyBits int) *Gshare {
	t.Helper()
	g, err := NewGshare(logSize, historyBits)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustTAGE(t *testing.T, cfg Config) *TAGE {
	t.Helper()
	p, err := cfg.New()
	if err != nil {
		t.Fatal(err)
	}
	return p.(*TAGE)
}

func TestBimodalLearnsBias(t *testing.T) {
	b := mustBimodal(t, 10)
	pc := uint64(0x400)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal failed to learn always-taken")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal failed to learn always-not-taken")
	}
}

func TestBimodalIsolation(t *testing.T) {
	b := mustBimodal(t, 10)
	// Two PCs that map to different table entries.
	pcA, pcB := uint64(0x400), uint64(0x404)
	for i := 0; i < 10; i++ {
		b.Update(pcA, true)
		b.Update(pcB, false)
	}
	if !b.Predict(pcA) || b.Predict(pcB) {
		t.Error("per-PC counters interfere for non-aliasing PCs")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	g := mustGshare(t, 12, 8)
	pc := uint64(0x400)
	pattern := []bool{true, true, false, true, false, false}
	// Train over the repeating pattern.
	for round := 0; round < 200; round++ {
		for _, taken := range pattern {
			g.Update(pc, taken)
		}
	}
	// After training, predictions should track the pattern exactly.
	correct := 0
	for round := 0; round < 10; round++ {
		for _, taken := range pattern {
			if g.Predict(pc) == taken {
				correct++
			}
			g.Update(pc, taken)
		}
	}
	if correct < 55 { // 60 predictions total
		t.Errorf("gshare got %d/60 on a learnable pattern", correct)
	}
}

func TestGshareBeatsBimodalOnPattern(t *testing.T) {
	// An alternating branch defeats two-bit counters but is trivial with
	// history.
	g := mustGshare(t, 12, 8)
	b := mustBimodal(t, 12)
	pc := uint64(0x80)
	gCorrect, bCorrect := 0, 0
	taken := false
	for i := 0; i < 2000; i++ {
		taken = !taken
		if g.Predict(pc) == taken {
			gCorrect++
		}
		if b.Predict(pc) == taken {
			bCorrect++
		}
		g.Update(pc, taken)
		b.Update(pc, taken)
	}
	if gCorrect <= bCorrect {
		t.Errorf("gshare %d should beat bimodal %d on alternating branch", gCorrect, bCorrect)
	}
	if gCorrect < 1900 {
		t.Errorf("gshare only %d/2000 on alternating branch", gCorrect)
	}
}

func TestReset(t *testing.T) {
	g := mustGshare(t, 10, 6)
	pc := uint64(0x40)
	for i := 0; i < 20; i++ {
		g.Update(pc, false)
	}
	if g.Predict(pc) {
		t.Fatal("did not learn not-taken")
	}
	g.Reset()
	if !g.Predict(pc) {
		t.Error("reset should restore weakly-taken default")
	}
}

func TestRandomBranchesNearChance(t *testing.T) {
	g := mustGshare(t, 12, 10)
	r := xrand.New(77)
	correct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		pc := uint64(r.Intn(64)) * 4
		taken := r.Bool(0.5)
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
	}
	acc := float64(correct) / n
	if acc < 0.45 || acc > 0.58 {
		t.Errorf("accuracy on random outcomes %g, expected near 0.5", acc)
	}
}

func TestConfigNew(t *testing.T) {
	for _, c := range []Config{
		DefaultConfig(),
		DefaultTAGEConfig(),
		{Kind: "bimodal", LogSize: 10},
		{Kind: "gshare", LogSize: 14, HistoryBits: 12},
		{Kind: "tage", LogSize: 10, TageTables: 4, TageLogSize: 8, TageTagBits: 8, TageMinHist: 2, TageMaxHist: 32},
		{Kind: "tage", LogSize: 8, TageTables: 1, TageLogSize: 6, TageTagBits: 6, TageMinHist: 5, TageMaxHist: 5},
	} {
		p, err := c.New()
		if err != nil {
			t.Errorf("config %+v: %v", c, err)
			continue
		}
		p.Predict(0x40)
		p.Update(0x40, true)
	}
}

func TestConfigNewRejectsInvalid(t *testing.T) {
	for _, c := range []Config{
		{Kind: "nonsense", LogSize: 10},
		{Kind: "gshare", LogSize: 0},
		{Kind: "gshare", LogSize: 10, HistoryBits: 20},
		{Kind: "bimodal", LogSize: 30},
		{Kind: "bimodal", LogSize: 10, HistoryBits: 4},
		{Kind: "gshare", LogSize: 12, HistoryBits: 10, TageTables: 3},
		{Kind: "tage", LogSize: 12, TageTables: 0, TageLogSize: 9, TageTagBits: 9, TageMinHist: 4, TageMaxHist: 64},
		{Kind: "tage", LogSize: 12, TageTables: 6, TageLogSize: 9, TageTagBits: 9, TageMinHist: 4, TageMaxHist: 80},
		{Kind: "tage", LogSize: 12, TageTables: 6, TageLogSize: 9, TageTagBits: 2, TageMinHist: 4, TageMaxHist: 64},
		{Kind: "tage", LogSize: 12, TageTables: 6, TageLogSize: 9, TageTagBits: 9, TageMinHist: 60, TageMaxHist: 64},
		{Kind: "tage", LogSize: 12, TageTables: 6, TageLogSize: 9, TageTagBits: 9, TageMinHist: 4, TageMaxHist: 64, HistoryBits: 10},
	} {
		if _, err := c.New(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

// Regression (PR 9): the constructors used to panic on bad geometry while
// Config.New returned errors, so a hostile spec could take down a serve
// node through any path that reached a constructor directly. All geometry
// problems must now surface as errors; this test panics on the old code.
func TestNewReturnsErrorsOnBadSizes(t *testing.T) {
	if _, err := NewBimodal(0); err == nil {
		t.Error("NewBimodal(0): expected error")
	}
	if _, err := NewBimodal(25); err == nil {
		t.Error("NewBimodal(25): expected error")
	}
	if _, err := NewGshare(0, 0); err == nil {
		t.Error("NewGshare(0,0): expected error")
	}
	if _, err := NewGshare(10, 11); err == nil {
		t.Error("NewGshare(10,11): expected error")
	}
	if _, err := NewGshare(25, 10); err == nil {
		t.Error("NewGshare(25,10): expected error")
	}
	if _, err := NewTAGE(12, 16, 9, 9, 4, 64); err == nil {
		t.Error("NewTAGE with 16 tables: expected error")
	}
	if _, err := NewTAGE(12, 6, 9, 9, 4, 65); err == nil {
		t.Error("NewTAGE with 65-bit history: expected error")
	}
}

func TestTAGELearnsBias(t *testing.T) {
	p := mustTAGE(t, DefaultTAGEConfig())
	pc := uint64(0x400)
	for i := 0; i < 16; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("tage failed to learn always-taken")
	}
	for i := 0; i < 16; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Error("tage failed to learn always-not-taken")
	}
}

// TAGE's reason to exist: a pattern whose period outruns the gshare history
// register. 24 static sites each repeating a 4-bit pattern, visited
// round-robin, give a composite global-history period of 96 — far past
// gshare's 10-bit window, comfortably inside TAGE's 64-bit maximum history.
// This mirrors how the synthetic workloads interleave branch sites.
func TestTAGEBeatsGshareOnInterleavedSites(t *testing.T) {
	type site struct {
		pc      uint64
		pattern uint32
		phase   int
	}
	r := xrand.New(42)
	sites := make([]site, 24)
	for i := range sites {
		sites[i] = site{
			pc:      uint64(i+1) << 6,
			pattern: uint32(r.Intn(14) + 1), // at least one taken, one not
		}
	}
	tage := mustTAGE(t, DefaultTAGEConfig())
	gs := mustGshare(t, 12, 10) // the Appendix-A default
	next := func(s *site) bool {
		taken := s.pattern>>s.phase&1 == 1
		s.phase = (s.phase + 1) % 4
		return taken
	}
	tCorrect, gCorrect := 0, 0
	const warm, measured = 4000, 8000
	for i := 0; i < warm+measured; i++ {
		s := &sites[i%len(sites)]
		taken := next(s)
		if i >= warm {
			if tage.Predict(s.pc) == taken {
				tCorrect++
			}
			if gs.Predict(s.pc) == taken {
				gCorrect++
			}
		}
		tage.Update(s.pc, taken)
		gs.Update(s.pc, taken)
	}
	if tCorrect <= gCorrect {
		t.Errorf("tage %d/%d should beat gshare %d/%d on interleaved long-period sites",
			tCorrect, measured, gCorrect, measured)
	}
	if float64(tCorrect)/measured < 0.95 {
		t.Errorf("tage only %d/%d on a fully learnable pattern", tCorrect, measured)
	}
}

// Update must work without a preceding Predict: the contested cores train
// on injected branch results they never predicted.
func TestTAGEUpdateWithoutPredict(t *testing.T) {
	p := mustTAGE(t, DefaultTAGEConfig())
	pc := uint64(0x88)
	taken := false
	for i := 0; i < 400; i++ {
		taken = !taken
		p.Update(pc, taken)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		taken = !taken
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
	}
	if correct < 95 {
		t.Errorf("tage %d/100 on alternating branch after update-only training", correct)
	}
}

func TestTAGEReset(t *testing.T) {
	p := mustTAGE(t, DefaultTAGEConfig())
	pc := uint64(0x40)
	for i := 0; i < 50; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Fatal("did not learn not-taken")
	}
	p.Reset()
	if p.history != 0 || p.lookValid || p.updates != 0 {
		t.Error("reset left residual state")
	}
	if !p.Predict(pc) {
		t.Error("reset should restore the weakly-taken base table")
	}
}

func TestGeometricHistories(t *testing.T) {
	for _, tc := range []struct{ n, min, max int }{
		{1, 4, 4}, {2, 1, 64}, {6, 4, 64}, {8, 1, 8}, {15, 1, 64}, {5, 60, 64},
	} {
		hs := geometricHistories(tc.n, tc.min, tc.max)
		if len(hs) != tc.n {
			t.Fatalf("n=%d min=%d max=%d: got %d lengths", tc.n, tc.min, tc.max, len(hs))
		}
		if hs[0] < tc.min || hs[len(hs)-1] > tc.max {
			t.Errorf("n=%d min=%d max=%d: series %v escapes range", tc.n, tc.min, tc.max, hs)
		}
		for i := 1; i < len(hs); i++ {
			if hs[i] <= hs[i-1] {
				t.Errorf("n=%d min=%d max=%d: series %v not strictly increasing", tc.n, tc.min, tc.max, hs)
			}
		}
	}
}

// Property: counters saturate — after >=4 consistent updates the prediction
// matches the bias for any PC. This holds for the untagged predictors; TAGE
// is excluded because a cold tagged entry whose stored tag happens to equal
// the computed tag can legitimately override the base table.
func TestSaturationProperty(t *testing.T) {
	f := func(pcRaw uint32, taken bool, useGshare bool) bool {
		var p Predictor
		var err error
		if useGshare {
			p, err = NewGshare(10, 0) // no history: pure per-PC counters
		} else {
			p, err = NewBimodal(10)
		}
		if err != nil {
			return false
		}
		pc := uint64(pcRaw)
		for i := 0; i < 4; i++ {
			p.Update(pc, taken)
		}
		return p.Predict(pc) == taken
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
