package branch

import (
	"testing"
	"testing/quick"

	"archcontest/internal/xrand"
)

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	pc := uint64(0x400)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal failed to learn always-taken")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal failed to learn always-not-taken")
	}
}

func TestBimodalIsolation(t *testing.T) {
	b := NewBimodal(10)
	// Two PCs that map to different table entries.
	pcA, pcB := uint64(0x400), uint64(0x404)
	for i := 0; i < 10; i++ {
		b.Update(pcA, true)
		b.Update(pcB, false)
	}
	if !b.Predict(pcA) || b.Predict(pcB) {
		t.Error("per-PC counters interfere for non-aliasing PCs")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	g := NewGshare(12, 8)
	pc := uint64(0x400)
	pattern := []bool{true, true, false, true, false, false}
	// Train over the repeating pattern.
	for round := 0; round < 200; round++ {
		for _, taken := range pattern {
			g.Update(pc, taken)
		}
	}
	// After training, predictions should track the pattern exactly.
	correct := 0
	for round := 0; round < 10; round++ {
		for _, taken := range pattern {
			if g.Predict(pc) == taken {
				correct++
			}
			g.Update(pc, taken)
		}
	}
	if correct < 55 { // 60 predictions total
		t.Errorf("gshare got %d/60 on a learnable pattern", correct)
	}
}

func TestGshareBeatsBimodalOnPattern(t *testing.T) {
	// An alternating branch defeats two-bit counters but is trivial with
	// history.
	g := NewGshare(12, 8)
	b := NewBimodal(12)
	pc := uint64(0x80)
	gCorrect, bCorrect := 0, 0
	taken := false
	for i := 0; i < 2000; i++ {
		taken = !taken
		if g.Predict(pc) == taken {
			gCorrect++
		}
		if b.Predict(pc) == taken {
			bCorrect++
		}
		g.Update(pc, taken)
		b.Update(pc, taken)
	}
	if gCorrect <= bCorrect {
		t.Errorf("gshare %d should beat bimodal %d on alternating branch", gCorrect, bCorrect)
	}
	if gCorrect < 1900 {
		t.Errorf("gshare only %d/2000 on alternating branch", gCorrect)
	}
}

func TestReset(t *testing.T) {
	g := NewGshare(10, 6)
	pc := uint64(0x40)
	for i := 0; i < 20; i++ {
		g.Update(pc, false)
	}
	if g.Predict(pc) {
		t.Fatal("did not learn not-taken")
	}
	g.Reset()
	if !g.Predict(pc) {
		t.Error("reset should restore weakly-taken default")
	}
}

func TestRandomBranchesNearChance(t *testing.T) {
	g := NewGshare(12, 10)
	r := xrand.New(77)
	correct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		pc := uint64(r.Intn(64)) * 4
		taken := r.Bool(0.5)
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
	}
	acc := float64(correct) / n
	if acc < 0.45 || acc > 0.58 {
		t.Errorf("accuracy on random outcomes %g, expected near 0.5", acc)
	}
}

func TestConfigNew(t *testing.T) {
	for _, c := range []Config{
		DefaultConfig(),
		{Kind: "bimodal", LogSize: 10},
		{Kind: "gshare", LogSize: 14, HistoryBits: 12},
	} {
		p, err := c.New()
		if err != nil {
			t.Errorf("config %+v: %v", c, err)
			continue
		}
		p.Predict(0x40)
		p.Update(0x40, true)
	}
}

func TestConfigNewRejectsInvalid(t *testing.T) {
	for _, c := range []Config{
		{Kind: "nonsense", LogSize: 10},
		{Kind: "gshare", LogSize: 0},
		{Kind: "gshare", LogSize: 10, HistoryBits: 20},
		{Kind: "bimodal", LogSize: 30},
	} {
		if _, err := c.New(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestNewPanicsOnBadSizes(t *testing.T) {
	for name, fn := range map[string]func(){
		"bimodal":       func() { NewBimodal(0) },
		"gshare-size":   func() { NewGshare(0, 0) },
		"gshare-hist":   func() { NewGshare(10, 11) },
		"gshare-himax":  func() { NewGshare(25, 10) },
		"bimodal-large": func() { NewBimodal(25) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: counters saturate — after >=4 consistent updates the prediction
// matches the bias for any predictor kind and any PC.
func TestSaturationProperty(t *testing.T) {
	f := func(pcRaw uint32, taken bool, useGshare bool) bool {
		var p Predictor
		if useGshare {
			p = NewGshare(10, 0) // no history: pure per-PC counters
		} else {
			p = NewBimodal(10)
		}
		pc := uint64(pcRaw)
		for i := 0; i < 4; i++ {
			p.Update(pc, taken)
		}
		return p.Predict(pc) == taken
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
