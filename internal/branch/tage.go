package branch

import (
	"fmt"
	"math"
)

// TAGE is a TAgged GEometric-history predictor: a bimodal base table backed
// by a series of partially-tagged tables indexed with geometrically growing
// global-history lengths. The component with the longest matching history
// (the provider) supplies the prediction; the next matching component (or
// the base table) is the alternate. Tagged entries carry a two-bit useful
// counter that arbitrates allocation on mispredicts and is periodically
// aged so stale entries can be reclaimed.
//
// The model follows Seznec's TAGE in structure but makes two deliberate
// simplifications so the simulator stays bit-deterministic and cheap:
// allocation picks the first not-useful entry among the longer-history
// tables (no randomized table choice), and newly allocated entries defer to
// the alternate prediction until their useful bit is set (a fixed
// use-alt-on-newly-allocated policy instead of the adaptive counter).
type TAGE struct {
	base    []counter // bimodal fallback, 2^logBase entries
	baseMsk uint64

	tables  [][]tageEntry // tagged components, shortest history first
	idxMask uint64        // per-table index mask (all tables share logSize)
	tagMask uint64
	hists   []int // geometric history lengths, hists[i] for tables[i]

	logSize int
	tagBits int

	history uint64 // global history, newest outcome in bit 0
	histMax int

	// Cached lookup from the most recent Predict: Update re-uses it when
	// the PC matches, so the provider/alternate chosen at predict time are
	// the ones that get trained. Update invalidates it after shifting the
	// history (the cached indices would be stale).
	lookPC    uint64
	lookValid bool
	provider  int // table index of the provider, -1 = base table
	altpred   int // table index of the alternate, -1 = base table
	provPred  bool
	altPred   bool
	tags      []uint16 // per-table tag of the cached lookup
	idxs      []uint64 // per-table index of the cached lookup

	updates uint64 // Update count, drives useful-bit aging
	ageFlip bool   // alternate clearing the low/high useful bit
}

// tageEntry is one tagged component entry: a three-bit counter (values 4..7
// predict taken), a partial tag, and a two-bit useful counter. The zero
// value is an empty entry (tag 0 never matches in practice because real
// tags mix PC bits; a spurious match just behaves as a cold entry).
type tageEntry struct {
	tag uint16
	ctr uint8 // 0..7, >=4 predicts taken
	u   uint8 // 0..3
}

// agePeriod is the number of Updates between useful-bit aging sweeps. Aging
// alternately clears the low and high useful bit, as in Seznec's TAGE, so a
// full reclaim takes two sweeps.
const agePeriod = 1 << 18

// NewTAGE returns a TAGE predictor: a 2^logBase-entry bimodal base plus
// tables tagged components of 2^logSize entries each, with tagBits partial
// tags and geometric history lengths spanning [minHist, maxHist]
// (maxHist <= 64, so the global history fits one word). It returns an error
// on invalid geometry.
func NewTAGE(logBase, tables, logSize, tagBits, minHist, maxHist int) (*TAGE, error) {
	if logBase < 1 || logBase > 24 {
		return nil, fmt.Errorf("branch: tage base logSize %d out of range [1,24]", logBase)
	}
	if tables < 1 || tables > 15 {
		return nil, fmt.Errorf("branch: tage table count %d out of range [1,15]", tables)
	}
	if logSize < 1 || logSize > 20 {
		return nil, fmt.Errorf("branch: tage tagged logSize %d out of range [1,20]", logSize)
	}
	if tagBits < 4 || tagBits > 16 {
		return nil, fmt.Errorf("branch: tage tagBits %d out of range [4,16]", tagBits)
	}
	if minHist < 1 || maxHist > 64 || minHist > maxHist {
		return nil, fmt.Errorf("branch: tage history range [%d,%d] invalid (need 1 <= min <= max <= 64)", minHist, maxHist)
	}
	if maxHist-minHist+1 < tables {
		return nil, fmt.Errorf("branch: tage history range [%d,%d] too narrow for %d strictly increasing lengths", minHist, maxHist, tables)
	}
	t := &TAGE{
		base:    make([]counter, 1<<logBase),
		baseMsk: 1<<logBase - 1,
		tables:  make([][]tageEntry, tables),
		idxMask: 1<<logSize - 1,
		tagMask: 1<<tagBits - 1,
		hists:   geometricHistories(tables, minHist, maxHist),
		logSize: logSize,
		tagBits: tagBits,
		histMax: maxHist,
		tags:    make([]uint16, tables),
		idxs:    make([]uint64, tables),
	}
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, 1<<logSize)
	}
	t.Reset()
	return t, nil
}

// HistoryLengths returns a copy of the geometric history series, shortest
// first. It exists for tests and for the fast model's memo key.
func (t *TAGE) HistoryLengths() []int {
	return append([]int(nil), t.hists...)
}

// geometricHistories returns n strictly increasing history lengths within
// [min, max]: L(i) = min * (max/min)^(i/(n-1)), rounded, with forward and
// backward passes enforcing strict monotonicity inside the range (the
// caller guarantees max-min+1 >= n, so room always exists).
func geometricHistories(n, min, max int) []int {
	hs := make([]int, n)
	if n == 1 {
		hs[0] = min
		return hs
	}
	ratio := float64(max) / float64(min)
	for i := range hs {
		exp := float64(i) / float64(n-1)
		hs[i] = int(float64(min)*math.Pow(ratio, exp) + 0.5)
		if i > 0 && hs[i] <= hs[i-1] {
			hs[i] = hs[i-1] + 1
		}
	}
	for i := n - 1; i >= 0; i-- {
		if limit := max - (n - 1 - i); hs[i] > limit {
			hs[i] = limit
		}
	}
	return hs
}

// fold compresses the low bits [0,length) of the global history into width
// bits by XOR-folding successive width-bit chunks. With maxHist <= 64 the
// history fits one word and folding is a short loop.
func fold(history uint64, length, width int) uint64 {
	h := history & (^uint64(0) >> (64 - uint(length)))
	var f uint64
	for length > 0 {
		f ^= h & (1<<uint(width) - 1)
		h >>= uint(width)
		length -= width
	}
	return f
}

func (t *TAGE) tableIndex(pc uint64, i int) uint64 {
	return ((pc >> 2) ^ (pc >> uint(2+t.logSize)) ^ fold(t.history, t.hists[i], t.logSize) ^ uint64(i)) & t.idxMask
}

func (t *TAGE) tableTag(pc uint64, i int) uint16 {
	// A different folding width decorrelates the tag from the index.
	return uint16(((pc >> 2) ^ fold(t.history, t.hists[i], t.tagBits) ^ fold(t.history, t.hists[i], t.tagBits-1)<<1) & t.tagMask)
}

// lookup computes and caches the provider/alternate chain for pc.
func (t *TAGE) lookup(pc uint64) {
	t.lookPC = pc
	t.lookValid = true
	t.provider = -1
	t.altpred = -1
	basePred := t.base[(pc>>2)&t.baseMsk].taken()
	t.provPred = basePred
	t.altPred = basePred
	for i := range t.tables {
		t.idxs[i] = t.tableIndex(pc, i)
		t.tags[i] = t.tableTag(pc, i)
	}
	for i := len(t.tables) - 1; i >= 0; i-- {
		e := &t.tables[i][t.idxs[i]]
		if e.tag != t.tags[i] {
			continue
		}
		if t.provider < 0 {
			t.provider = i
			t.provPred = e.ctr >= 4
		} else {
			t.altpred = i
			t.altPred = e.ctr >= 4
			return
		}
	}
}

// finalPred combines the cached provider/alternate into the prediction:
// the provider wins unless it is a weak entry that has never proven useful.
func (t *TAGE) finalPred() bool {
	if t.provider >= 0 {
		e := &t.tables[t.provider][t.idxs[t.provider]]
		if e.u == 0 && (e.ctr == 3 || e.ctr == 4) {
			return t.altPred
		}
	}
	return t.provPred
}

// Predict implements Predictor.
func (t *TAGE) Predict(pc uint64) bool {
	if !t.lookValid || t.lookPC != pc {
		t.lookup(pc)
	}
	return t.finalPred()
}

// Update implements Predictor: it trains the provider, adjusts useful bits,
// allocates a longer-history entry when the prediction was wrong, shifts
// the outcome into the global history, and periodically ages the useful
// bits. Update may be called without a preceding Predict (result-injection
// training does this); it then performs the lookup itself.
func (t *TAGE) Update(pc uint64, taken bool) {
	if !t.lookValid || t.lookPC != pc {
		t.lookup(pc)
	}
	mispredicted := t.finalPred() != taken

	if t.provider >= 0 {
		e := &t.tables[t.provider][t.idxs[t.provider]]
		// The useful counter tracks whether the provider beat the
		// alternate, counted only when they disagree.
		if t.provPred != t.altPred {
			if t.provPred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		e.ctr = ctr3Update(e.ctr, taken)
	} else {
		i := (pc >> 2) & t.baseMsk
		t.base[i] = t.base[i].update(taken)
	}

	// Allocate on a mispredict when a longer-history table exists: first
	// not-useful entry wins; if every candidate is useful, decay them all
	// so a future mispredict can allocate.
	if mispredicted && t.provider < len(t.tables)-1 {
		alloc := -1
		for i := t.provider + 1; i < len(t.tables); i++ {
			if t.tables[i][t.idxs[i]].u == 0 {
				alloc = i
				break
			}
		}
		if alloc >= 0 {
			e := &t.tables[alloc][t.idxs[alloc]]
			e.tag = t.tags[alloc]
			e.u = 0
			if taken {
				e.ctr = 4
			} else {
				e.ctr = 3
			}
		} else {
			for i := t.provider + 1; i < len(t.tables); i++ {
				e := &t.tables[i][t.idxs[i]]
				if e.u > 0 {
					e.u--
				}
			}
		}
	}

	t.history = t.history<<1 | b2u(taken)
	if t.histMax < 64 {
		t.history &= 1<<uint(t.histMax) - 1
	}
	t.lookValid = false

	t.updates++
	if t.updates%agePeriod == 0 {
		var clear uint8 = 1
		if t.ageFlip {
			clear = 2
		}
		t.ageFlip = !t.ageFlip
		for i := range t.tables {
			tab := t.tables[i]
			for j := range tab {
				tab[j].u &^= clear
			}
		}
	}
}

// Reset implements Predictor.
func (t *TAGE) Reset() {
	for i := range t.base {
		t.base[i] = 2 // weakly taken
	}
	for i := range t.tables {
		tab := t.tables[i]
		for j := range tab {
			tab[j] = tageEntry{}
		}
	}
	t.history = 0
	t.lookValid = false
	t.updates = 0
	t.ageFlip = false
}

// ctr3Update is the three-bit saturating counter update (0..7, >=4 taken).
func ctr3Update(c uint8, taken bool) uint8 {
	if taken {
		if c < 7 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
