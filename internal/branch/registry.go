package branch

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// The predictor registry is the branch half of the component SPI: a
// predictor family is registered once under a stable name, and from then on
// a Config selects it by Kind exactly like the built-ins, with the opaque
// Params string carried through to the factory. The three built-in kinds
// are pre-registered so Registered() is the complete palette; their
// construction stays on the explicit switch in Config.New (same validation,
// same error text), and the registry's factory path is taken only by
// third-party kinds — which is also why the pipeline's devirtualised fast
// paths never see a registered predictor: an unknown concrete type falls
// back to the Predictor interface automatically.

// Factory builds a predictor from its configuration. The registry passes
// the full Config through, so a third-party family is free to interpret
// LogSize/HistoryBits conventionally or encode everything in Params.
type Factory func(cfg Config) (Predictor, error)

var (
	regMu     sync.RWMutex
	factories = map[string]Factory{}
)

// builtinKinds are the kinds constructed by Config.New's explicit switch.
var builtinKinds = map[string]bool{"gshare": true, "bimodal": true, "tage": true}

// Register adds a predictor family under the given kind name. It returns an
// error for an empty name, a built-in name, a duplicate registration, or a
// nil factory; components registered from init functions may wrap it in
// MustRegister semantics by panicking on the error themselves.
func Register(kind string, f Factory) error {
	if kind == "" {
		return fmt.Errorf("branch: register with empty kind name")
	}
	if builtinKinds[kind] {
		return fmt.Errorf("branch: kind %q is built in", kind)
	}
	if f == nil {
		return fmt.Errorf("branch: kind %q registered with nil factory", kind)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := factories[kind]; dup {
		return fmt.Errorf("branch: kind %q already registered", kind)
	}
	factories[kind] = f
	return nil
}

// Registered lists every constructible predictor kind — the built-ins plus
// all registered families — in sorted order.
func Registered() []string {
	regMu.RLock()
	names := make([]string, 0, len(factories)+len(builtinKinds))
	for k := range factories {
		names = append(names, k)
	}
	regMu.RUnlock()
	for k := range builtinKinds {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// lookup resolves a registered (non-builtin) kind.
func lookup(kind string) (Factory, bool) {
	regMu.RLock()
	f, ok := factories[kind]
	regMu.RUnlock()
	return f, ok
}

// RepresentativeConfig returns a ready-to-run configuration for the named
// kind: the reference geometry for the built-ins, and a bare Config{Kind:
// name} for registered families (whose factories must accept their zero
// geometry, possibly steered by Params). The leaderboard harness uses this
// to round-robin every registered kind without knowing their parameters.
func RepresentativeConfig(kind string) Config {
	switch kind {
	case "gshare":
		return DefaultConfig()
	case "bimodal":
		return Config{Kind: "bimodal", LogSize: 12}
	case "tage":
		return DefaultTAGEConfig()
	default:
		return Config{Kind: kind}
	}
}

// conformanceStimulus drives n deterministic (pc, taken) pairs through fn.
// The mix deliberately includes aliasing PCs and correlated directions so
// history-based predictors exercise their tables.
func conformanceStimulus(n int, fn func(pc uint64, taken bool)) {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		pc := (x % 97) * 4
		taken := x&3 != 0 == (i%7 < 4)
		fn(pc, taken)
	}
}

// Conformance checks the SPI contract for the predictor the config
// describes: construction succeeds; two independent instances predict
// identically over a deterministic stimulus (no hidden global or
// time-dependent state); Reset restores the cold-start sequence; and the
// hot methods Predict and Update allocate nothing. Run it once per
// registered component — the harness assumes these properties.
func Conformance(cfg Config) error {
	a, err := cfg.New()
	if err != nil {
		return fmt.Errorf("branch: conformance: construction failed: %w", err)
	}
	b, err := cfg.New()
	if err != nil {
		return fmt.Errorf("branch: conformance: second construction failed: %w", err)
	}
	const n = 4096
	cold := make([]bool, 0, n)
	diverged := false
	conformanceStimulus(n, func(pc uint64, taken bool) {
		pa, pb := a.Predict(pc), b.Predict(pc)
		if pa != pb {
			diverged = true
		}
		cold = append(cold, pa)
		a.Update(pc, taken)
		b.Update(pc, taken)
	})
	if diverged {
		return fmt.Errorf("branch: conformance: two instances of %q diverged on identical stimulus", cfg.Kind)
	}
	a.Reset()
	i, resetDiverged := 0, false
	conformanceStimulus(n, func(pc uint64, taken bool) {
		if a.Predict(pc) != cold[i] {
			resetDiverged = true
		}
		i++
		a.Update(pc, taken)
	})
	if resetDiverged {
		return fmt.Errorf("branch: conformance: Reset of %q does not reproduce the cold-start sequence", cfg.Kind)
	}
	// Allocation fence: after a warm-up pass (lazy tables may allocate on
	// first touch), Predict/Update must be allocation-free. Mallocs is a
	// process-global counter, so the exact-zero assertion holds only
	// because nothing else runs between the readings.
	b.Reset()
	step := func(pc uint64, taken bool) {
		b.Predict(pc)
		b.Update(pc, taken)
	}
	conformanceStimulus(n, step)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	conformanceStimulus(n, step)
	runtime.ReadMemStats(&after)
	if d := after.Mallocs - before.Mallocs; d != 0 {
		return fmt.Errorf("branch: conformance: %q allocated %d objects across %d Predict/Update pairs", cfg.Kind, d, n)
	}
	return nil
}
