package explore

import (
	"context"
	"testing"

	"archcontest/internal/config"
	"archcontest/internal/resultcache"
	"archcontest/internal/workload"
	"archcontest/internal/xrand"
)

func TestCustomizeImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := workload.MustGenerate("crafty", 20000)
	res, err := Customize(context.Background(), tr, Options{Seed: 1, Steps: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIPT <= 0 {
		t.Fatalf("best IPT %g", res.BestIPT)
	}
	if res.Evaluated < 10 {
		t.Errorf("only %d design points evaluated", res.Evaluated)
	}
	if err := res.Best.Validate(); err != nil {
		t.Errorf("best config invalid: %v", err)
	}
	if res.Best.Name != "custom-crafty" {
		t.Errorf("best config name %q", res.Best.Name)
	}
}

func TestCustomizeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := workload.MustGenerate("gzip", 10000)
	a, err := Customize(context.Background(), tr, Options{Seed: 7, Steps: 15})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Customize(context.Background(), tr, Options{Seed: 7, Steps: 15})
	if err != nil {
		t.Fatal(err)
	}
	if a.BestIPT != b.BestIPT || a.Best.String() != b.Best.String() {
		t.Error("annealing not deterministic for equal seeds")
	}
}

func TestCustomizeRejectsEmpty(t *testing.T) {
	if _, err := Customize(context.Background(), nil, Options{}); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestNeighborStaysValid(t *testing.T) {
	s := defaultState()
	if !s.valid() {
		t.Fatal("default state invalid")
	}
	r := xrand.New(99)
	for i := 0; i < 2000; i++ {
		s = neighbor(s, r)
		if !s.valid() {
			t.Fatalf("neighbor produced invalid state %+v at step %d", s, i)
		}
	}
}

func TestStateParamsDerive(t *testing.T) {
	// Every menu extreme must derive into a valid core configuration when
	// the state passes its own validity check.
	s := defaultState()
	cfg, err := config.Derive(s.params("probe"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProgressCallback(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := workload.MustGenerate("perl", 8000)
	calls := 0
	_, err := Customize(context.Background(), tr, Options{
		Seed: 3, Steps: 20,
		Progress: func(step int, cfg config.CoreConfig, ipt float64) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("progress callback never invoked (no accepted moves in 20 steps is implausible)")
	}
}

// TestSpeculativeTrajectoryIdentical locks the tentpole determinism claim:
// for the same seed, the accepted-move trajectory, best configuration, and
// consumed-evaluation count are bit-identical for every lookahead K,
// including the sequential K=1 walk.
func TestSpeculativeTrajectoryIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := workload.MustGenerate("twolf", 6000)
	type move struct {
		step int
		cfg  string
		ipt  float64
	}
	walk := func(k int) ([]move, Result) {
		var moves []move
		res, err := Customize(context.Background(), tr, Options{
			Seed: 11, Steps: 24, Lookahead: k,
			Progress: func(step int, cfg config.CoreConfig, ipt float64) {
				moves = append(moves, move{step, cfg.String(), ipt})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return moves, res
	}
	refMoves, refRes := walk(1)
	if refRes.Wasted != 0 {
		t.Fatalf("sequential walk wasted %d evaluations", refRes.Wasted)
	}
	if len(refMoves) == 0 {
		t.Fatal("no accepted moves in 24 steps (implausible)")
	}
	for _, k := range []int{4, 8} {
		moves, res := walk(k)
		if len(moves) != len(refMoves) {
			t.Fatalf("K=%d accepted %d moves, K=1 accepted %d", k, len(moves), len(refMoves))
		}
		for i := range moves {
			if moves[i] != refMoves[i] {
				t.Fatalf("K=%d move %d = %+v, K=1 has %+v", k, i, moves[i], refMoves[i])
			}
		}
		if res.Best.String() != refRes.Best.String() || res.BestIPT != refRes.BestIPT {
			t.Errorf("K=%d best differs: %.6f vs %.6f", k, res.BestIPT, refRes.BestIPT)
		}
		if res.Evaluated != refRes.Evaluated {
			t.Errorf("K=%d consumed %d evaluations, K=1 consumed %d", k, res.Evaluated, refRes.Evaluated)
		}
	}
}

// The speculative walk must also be independent of the worker count.
func TestSpeculativeParallelismIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := workload.MustGenerate("vpr", 6000)
	a, err := Customize(context.Background(), tr, Options{Seed: 5, Steps: 16, Lookahead: 6, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Customize(context.Background(), tr, Options{Seed: 5, Steps: 16, Lookahead: 6, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.BestIPT != b.BestIPT || a.Best.String() != b.Best.String() || a.Evaluated != b.Evaluated {
		t.Error("speculative annealing depends on parallelism level")
	}
}

// A result cache must change nothing about the walk, only skip re-runs.
func TestCustomizeWithCacheIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := workload.MustGenerate("gap", 6000)
	cache, err := resultcache.Open(t.TempDir(), resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Customize(context.Background(), tr, Options{Seed: 9, Steps: 12})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Customize(context.Background(), tr, Options{Seed: 9, Steps: 12, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Customize(context.Background(), tr, Options{Seed: 9, Steps: 12, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if plain.BestIPT != cold.BestIPT || cold.BestIPT != warm.BestIPT {
		t.Error("cache changed the annealing outcome")
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("warm run hit nothing: %+v", st)
	}
}

func TestTemperDeterministicAndImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("tempering in short mode")
	}
	tr := workload.MustGenerate("parser", 6000)
	opts := TemperingOptions{Seed: 3, Chains: 3, Steps: 10, ExchangeEvery: 4}
	a, err := Temper(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	b, err := Temper(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestIPT != b.BestIPT || a.Best.String() != b.Best.String() || a.Evaluated != b.Evaluated {
		t.Error("tempering not deterministic across parallelism levels")
	}
	if a.BestIPT <= 0 || a.Evaluated < 10 {
		t.Errorf("implausible tempering result: %+v", a)
	}
	if err := a.Best.Validate(); err != nil {
		t.Errorf("best config invalid: %v", err)
	}
	if a.Best.Name != "custom-parser" {
		t.Errorf("best config name %q", a.Best.Name)
	}
}
