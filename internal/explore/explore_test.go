package explore

import (
	"testing"

	"archcontest/internal/config"
	"archcontest/internal/workload"
	"archcontest/internal/xrand"
)

func TestCustomizeImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := workload.MustGenerate("crafty", 20000)
	res, err := Customize(tr, Options{Seed: 1, Steps: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIPT <= 0 {
		t.Fatalf("best IPT %g", res.BestIPT)
	}
	if res.Evaluated < 10 {
		t.Errorf("only %d design points evaluated", res.Evaluated)
	}
	if err := res.Best.Validate(); err != nil {
		t.Errorf("best config invalid: %v", err)
	}
	if res.Best.Name != "custom-crafty" {
		t.Errorf("best config name %q", res.Best.Name)
	}
}

func TestCustomizeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := workload.MustGenerate("gzip", 10000)
	a, err := Customize(tr, Options{Seed: 7, Steps: 15})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Customize(tr, Options{Seed: 7, Steps: 15})
	if err != nil {
		t.Fatal(err)
	}
	if a.BestIPT != b.BestIPT || a.Best.String() != b.Best.String() {
		t.Error("annealing not deterministic for equal seeds")
	}
}

func TestCustomizeRejectsEmpty(t *testing.T) {
	if _, err := Customize(nil, Options{}); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestNeighborStaysValid(t *testing.T) {
	s := defaultState()
	if !s.valid() {
		t.Fatal("default state invalid")
	}
	r := xrand.New(99)
	for i := 0; i < 2000; i++ {
		s = neighbor(s, r)
		if !s.valid() {
			t.Fatalf("neighbor produced invalid state %+v at step %d", s, i)
		}
	}
}

func TestStateParamsDerive(t *testing.T) {
	// Every menu extreme must derive into a valid core configuration when
	// the state passes its own validity check.
	s := defaultState()
	cfg, err := config.Derive(s.params("probe"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProgressCallback(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := workload.MustGenerate("perl", 8000)
	calls := 0
	_, err := Customize(tr, Options{
		Seed: 3, Steps: 20,
		Progress: func(step int, cfg config.CoreConfig, ipt float64) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("progress callback never invoked (no accepted moves in 20 steps is implausible)")
	}
}
