package explore

import (
	"context"
	"fmt"
	"math"

	"archcontest/internal/config"
	"archcontest/internal/fastmodel"
	"archcontest/internal/obs"
	"archcontest/internal/resultcache"
	"archcontest/internal/trace"
	"archcontest/internal/xrand"
)

// TemperingOptions configures a parallel-tempering (replica-exchange)
// exploration: M chains walk the design space concurrently at fixed
// temperatures on a geometric ladder, and every ExchangeEvery rounds
// adjacent chains probabilistically swap states, so cold chains exploit
// while hot chains explore and good basins percolate down the ladder.
type TemperingOptions struct {
	// Seed drives every chain and the exchange decisions deterministically.
	Seed uint64
	// Chains is the ladder size M (default 4).
	Chains int
	// Steps is the number of rounds; each round evaluates one candidate
	// per chain (default 200).
	Steps int
	// ExchangeEvery is the round interval between replica-exchange sweeps
	// (default 10).
	ExchangeEvery int
	// ColdTemp and HotTemp bound the geometric temperature ladder, in the
	// annealer's relative objective units (defaults 0.005 and 0.10; chain
	// 0 is coldest).
	ColdTemp, HotTemp float64
	// Parallelism bounds concurrent candidate evaluations (default NumCPU).
	Parallelism int
	// Cache, if non-nil, memoizes design-point evaluations.
	Cache *resultcache.Cache
	// Log, if non-nil, receives a timed span per executed design-point
	// simulation (cache hits record nothing), for the campaign timeline.
	Log *obs.ArtifactLog
	// Progress, if non-nil, observes every accepted move on any chain.
	Progress func(chain, step int, cfg config.CoreConfig, ipt float64)
	// FastFilter and FastMargin enable the fast-model first pass, exactly
	// as in Options: a chain's candidate is rejected without a detailed
	// simulation when its fast estimate sits below the chain incumbent's
	// by more than the margin plus the chain temperature's acceptance
	// range, and the filter consumes the acceptance draw the detailed
	// walk would have spent on the near-certain rejection, keeping the
	// chain stream-aligned with the unfiltered run. Off, the run is
	// bit-identical to prior behavior.
	FastFilter bool
	FastMargin float64
}

func (o *TemperingOptions) applyDefaults() {
	if o.Chains <= 0 {
		o.Chains = 4
	}
	if o.Steps == 0 {
		o.Steps = 200
	}
	if o.ExchangeEvery <= 0 {
		o.ExchangeEvery = 10
	}
	if o.ColdTemp == 0 {
		o.ColdTemp = 0.005
	}
	if o.HotTemp == 0 {
		o.HotTemp = 0.10
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 0 // resolved by forEach callers below
	}
	if o.FastMargin <= 0 {
		o.FastMargin = DefaultFastMargin
	}
}

// Temper runs the replica-exchange exploration. Rounds are barriers:
// every chain's candidate is evaluated before any decision is applied, so
// the outcome is a pure function of (seed, trace, options) regardless of
// Parallelism. Result.Evaluated counts all chain evaluations; Wasted is
// always zero (tempering discards nothing).
func Temper(ctx context.Context, tr *trace.Trace, opts TemperingOptions) (Result, error) {
	if tr == nil || tr.Len() == 0 {
		return Result{}, fmt.Errorf("explore: empty trace")
	}
	opts.applyDefaults()
	m := opts.Chains

	base := xrand.New(opts.Seed)
	rExch := base.Split()
	props := make([]*xrand.RNG, m)
	accs := make([]*xrand.RNG, m)
	for i := 0; i < m; i++ {
		props[i] = base.Split()
		accs[i] = base.Split()
	}

	// Geometric ladder, chain 0 coldest.
	temps := make([]float64, m)
	for i := range temps {
		if m == 1 {
			temps[i] = opts.ColdTemp
			continue
		}
		temps[i] = opts.ColdTemp * math.Pow(opts.HotTemp/opts.ColdTemp, float64(i)/float64(m-1))
	}

	ev := newEvaluator(tr, opts.Cache, opts.Log)
	start := defaultState()
	if !start.valid() {
		return Result{}, fmt.Errorf("explore: invalid initial state")
	}
	startCfg, startIPT, err := ev.eval(ctx, start)
	if err != nil {
		return Result{}, err
	}

	curs := make([]state, m)
	ipts := make([]float64, m)
	for i := range curs {
		curs[i], ipts[i] = start, startIPT
	}
	res := Result{Best: startCfg, BestIPT: startIPT, Evaluated: 1, Detailed: 1}

	var fm *fastmodel.Model
	fasts := make([]float64, m)
	if opts.FastFilter {
		fm = fastmodel.New(tr)
		if f, ok := fastIPTOf(fm, ev.name, start); ok {
			for i := range fasts {
				fasts[i] = f
			}
		}
	}
	// scale normalizes objective differences in the exchange criterion so
	// the ladder units match the annealer's relative-temperature units.
	scale := startIPT

	type candidate struct {
		st       state
		cfg      config.CoreConfig
		ipt      float64
		fast     float64
		filtered bool
		err      error
	}
	par := opts.Parallelism
	for round := 0; round < opts.Steps; round++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		cands := make([]candidate, m)
		for i := range cands {
			cands[i].st = neighbor(curs[i], props[i])
		}
		if fm != nil {
			for i := range cands {
				c := &cands[i]
				if f, ok := fastIPTOf(fm, ev.name, c.st); ok {
					c.fast = f
					if fasts[i] > 0 && f < fasts[i]*(1-(opts.FastMargin+temps[i])) {
						c.filtered = true
					}
				}
			}
		}
		for i := range cands {
			if !cands[i].filtered {
				res.Detailed++
			}
		}
		forEach(par, m, func(i int) {
			c := &cands[i]
			if c.filtered {
				return
			}
			c.cfg, c.ipt, c.err = ev.eval(ctx, c.st)
		})
		for i := 0; i < m; i++ {
			c := &cands[i]
			if c.filtered {
				// Consume the draw the unfiltered chain would have spent
				// rejecting this candidate, to stay stream-aligned.
				accs[i].Float64()
				res.Filtered++
				continue
			}
			if c.err != nil {
				continue
			}
			res.Evaluated++
			rel := (c.ipt - ipts[i]) / ipts[i]
			if rel >= 0 || accs[i].Bool(math.Exp(rel/temps[i])) {
				curs[i], ipts[i] = c.st, c.ipt
				if fm != nil {
					fasts[i] = c.fast
				}
				if opts.Progress != nil {
					opts.Progress(i, round, c.cfg, c.ipt)
				}
				if c.ipt > res.BestIPT {
					res.Best, res.BestIPT = c.cfg, c.ipt
				}
			}
		}
		if (round+1)%opts.ExchangeEvery == 0 {
			for i := 0; i+1 < m; i++ {
				// Metropolis replica exchange: p = exp((βi−βj)(Ei−Ej))
				// with E = −IPT/scale, β = 1/T. A cold chain stuck above
				// a hot chain's objective swaps with certainty.
				bi, bj := 1/temps[i], 1/temps[i+1]
				ei, ej := -ipts[i]/scale, -ipts[i+1]/scale
				p := math.Exp((bi - bj) * (ei - ej))
				if p >= 1 || rExch.Bool(p) {
					curs[i], curs[i+1] = curs[i+1], curs[i]
					ipts[i], ipts[i+1] = ipts[i+1], ipts[i]
					fasts[i], fasts[i+1] = fasts[i+1], fasts[i]
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res.Best.Name = "custom-" + tr.Name()
	return res, nil
}
