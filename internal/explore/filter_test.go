package explore

import (
	"context"
	"testing"

	"archcontest/internal/workload"
)

// TestFastFilterCutsDetailedPreservingBest locks the fast-filter tentpole
// claim: at the default margin the filter cuts detailed simulations at
// least 3x on a lookahead walk while leaving the walk's output — the best
// configuration and its measured IPT — identical to the unfiltered run.
func TestFastFilterCutsDetailedPreservingBest(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := workload.MustGenerate("gcc", 8000)
	opts := Options{Seed: 1, Steps: 40, Lookahead: 8}
	off, err := Customize(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if off.Filtered != 0 {
		t.Fatalf("filter off, yet %d candidates filtered", off.Filtered)
	}
	opts.FastFilter = true
	on, err := Customize(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if on.Best.String() != off.Best.String() || on.BestIPT != off.BestIPT {
		t.Errorf("filter changed the outcome: best %.6f (%s) vs %.6f (%s)",
			on.BestIPT, on.Best.String(), off.BestIPT, off.Best.String())
	}
	if cut := float64(off.Detailed) / float64(on.Detailed); cut < 3.0 {
		t.Errorf("filter cut detailed simulations only %.2fx (%d -> %d), want >= 3x",
			cut, off.Detailed, on.Detailed)
	}
	if on.Detailed < on.Evaluated {
		t.Errorf("accounting: %d detailed < %d consumed evaluations", on.Detailed, on.Evaluated)
	}
}

// A tighter margin must actually exercise the margin leg of the filter
// (candidates rejected with no detailed run at all), trading output
// stability for a deeper cut.
func TestFastFilterTightMarginFilters(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := workload.MustGenerate("twolf", 8000)
	off, err := Customize(context.Background(), tr, Options{Seed: 7, Steps: 40, Lookahead: 8})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Customize(context.Background(), tr, Options{
		Seed: 7, Steps: 40, Lookahead: 8, FastFilter: true, FastMargin: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if on.Filtered == 0 {
		t.Error("margin 0.02 filtered no candidates")
	}
	if on.Detailed >= off.Detailed {
		t.Errorf("tight margin did not reduce detailed simulations: %d vs %d", on.Detailed, off.Detailed)
	}
}

func TestFastFilterDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing in short mode")
	}
	tr := workload.MustGenerate("mcf", 6000)
	opts := Options{Seed: 42, Steps: 24, Lookahead: 8, FastFilter: true, Parallelism: 1}
	a, err := Customize(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	b, err := Customize(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestIPT != b.BestIPT || a.Best.String() != b.Best.String() ||
		a.Detailed != b.Detailed || a.Filtered != b.Filtered || a.Evaluated != b.Evaluated {
		t.Errorf("filtered walk depends on parallelism: %+v vs %+v", a, b)
	}
}

func TestTemperFastFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("tempering in short mode")
	}
	tr := workload.MustGenerate("parser", 6000)
	opts := TemperingOptions{Seed: 3, Chains: 3, Steps: 12, ExchangeEvery: 4, FastFilter: true, FastMargin: 0.02}
	a, err := Temper(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	b, err := Temper(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestIPT != b.BestIPT || a.Best.String() != b.Best.String() ||
		a.Detailed != b.Detailed || a.Filtered != b.Filtered || a.Evaluated != b.Evaluated {
		t.Errorf("filtered tempering depends on parallelism: %+v vs %+v", a, b)
	}
	// Every chain candidate is either simulated in detail or filtered;
	// the initial point accounts for the extra detailed evaluation.
	if a.Evaluated-1+a.Filtered != opts.Chains*opts.Steps {
		t.Errorf("accounting: evaluated=%d filtered=%d over %d candidates",
			a.Evaluated, a.Filtered, opts.Chains*opts.Steps)
	}
}
