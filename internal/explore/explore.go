// Package explore is the XpScalar stand-in: a simulated-annealing
// design-space exploration that customizes a core configuration for a
// workload. It varies the same free axes the paper's tool varies —
// superscalar width, register-file/ROB size, issue-queue size, load/store
// queue size, L1 and L2 cache geometry, and clock frequency — plus a
// predictor axis the paper never had (bimodal/gshare/TAGE geometry), with
// the dependent parameters (pipeline depths, wake-up latency, memory and
// cache latencies) derived by the technology model in internal/config.
//
// The annealer is parallel without giving up determinism. Proposals and
// acceptance tests consume two independent RNG streams split from the
// seed, so the walk is defined purely by (seed, trace, schedule), and a
// lookahead window of K candidate neighbors is drawn speculatively under
// the assumption that the preceding candidates are rejected: the batch is
// evaluated concurrently, the accept/reject decisions are applied in
// sequence order, and on an acceptance the remaining speculative
// candidates (whose proposals a sequential annealer would never have
// drawn) are discarded and the proposal stream is rewound to the accepted
// candidate's state. The accepted-move trajectory is therefore identical
// for every K, including K=1 (pure sequential) — a property the tests
// lock. A separate parallel-tempering mode runs M chains on a temperature
// ladder with periodic replica exchange.
package explore

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"archcontest/internal/branch"
	"archcontest/internal/config"
	"archcontest/internal/fastmodel"
	"archcontest/internal/obs"
	"archcontest/internal/resultcache"
	"archcontest/internal/sim"
	"archcontest/internal/trace"
	"archcontest/internal/xrand"
)

// Discrete menus for each free axis, spanning the Appendix A palette.
var (
	clockMenu = []float64{0.19, 0.23, 0.27, 0.29, 0.31, 0.33, 0.37, 0.41, 0.45, 0.49}
	widthMenu = []int{2, 3, 4, 5, 6, 7, 8}
	robMenu   = []int{32, 64, 128, 256, 512, 1024}
	iqMenu    = []int{16, 32, 64, 128}
	lsqMenu   = []int{32, 64, 128, 256}
	setsMenu  = []int{32, 128, 256, 1024, 2048, 4096, 8192, 16384, 32768}
	assocMenu = []int{1, 2, 4, 8, 16}
	blockMenu = []int{8, 16, 32, 64, 128, 256, 512}
	l1SizeMax = 256 << 10
	l1SizeMin = 4 << 10
	l2SizeMax = 4 << 20
	l2SizeMin = 64 << 10
	// predMenu orders the predictor palette from cheapest to richest, so a
	// one-step bump is a meaningful hardware increment like on every other
	// axis. Index 2 is the Appendix-A default.
	predMenu = []branch.Config{
		{Kind: "bimodal", LogSize: 12},
		{Kind: "gshare", LogSize: 12, HistoryBits: 8},
		branch.DefaultConfig(), // gshare 12/10
		{Kind: "gshare", LogSize: 14, HistoryBits: 12},
		{Kind: "gshare", LogSize: 16, HistoryBits: 14},
		{Kind: "tage", LogSize: 11, TageTables: 4, TageLogSize: 8, TageTagBits: 8, TageMinHist: 2, TageMaxHist: 32},
		branch.DefaultTAGEConfig(), // 6 tables, hist 4..64
		{Kind: "tage", LogSize: 12, TageTables: 8, TageLogSize: 10, TageTagBits: 10, TageMinHist: 2, TageMaxHist: 64},
	}
	// replMenu orders the replacement policies by hardware cost: random
	// keeps no per-line state, SRRIP two bits per line, true LRU (the
	// Appendix-A default, selected by the empty name) full recency order.
	// Index 2 is the default. prefMenu likewise runs none -> next-line ->
	// stride; index 0 is the default. Both apply through FreeParams, so the
	// technology model sees them like any other free axis.
	replMenu = []string{"random", "srrip", ""}
	prefMenu = []string{"", "nextline", "stride"}
)

// Options configures an annealing run.
type Options struct {
	// Seed drives the annealing schedule deterministically.
	Seed uint64
	// Steps is the number of annealing moves (default 200).
	Steps int
	// StartTemp and EndTemp bound the geometric cooling schedule, in
	// relative objective units (defaults 0.10 and 0.005).
	StartTemp, EndTemp float64
	// Lookahead is the speculative batch size K: how many candidate
	// neighbors are drawn and evaluated concurrently per round (default 1,
	// the sequential annealer). Any value produces the identical
	// accepted-move trajectory for the same seed; larger values trade
	// wasted speculative evaluations for wall-clock parallelism.
	Lookahead int
	// Parallelism bounds concurrent candidate evaluations (default NumCPU).
	Parallelism int
	// Cache, if non-nil, memoizes design-point evaluations across runs
	// under the same content-addressed keys the campaign Lab uses.
	Cache *resultcache.Cache
	// Log, if non-nil, receives a timed span per executed design-point
	// simulation (cache hits record nothing), for the campaign timeline.
	Log *obs.ArtifactLog
	// Progress, if non-nil, observes every accepted move.
	Progress func(step int, cfg config.CoreConfig, ipt float64)
	// FastFilter enables the fast-model first pass: every proposed
	// candidate is appraised by the interval model (internal/fastmodel)
	// before any detailed simulation, and the appraisal is spent two ways.
	// A candidate whose fast estimate sits below the incumbent's by more
	// than FastMargin plus the Metropolis acceptance range at the current
	// temperature is rejected without a detailed run — the filter consumes
	// the same acceptance draw the detailed walk would have consumed on
	// its near-certain rejection, so the surviving trajectory stays
	// stream-aligned with the unfiltered walk. And within a lookahead
	// window, speculation past the first candidate the fast model predicts
	// accepted is deferred: those candidates are usually discarded by the
	// acceptance anyway, and the rare survivor is evaluated on demand,
	// which never changes a decision. Comparing fast estimates on both
	// sides cancels the model's systematic bias; the walk diverges from
	// the unfiltered one only when the fast model rules out a candidate
	// the detailed engine would have accepted. With the filter off the
	// run is bit-identical to prior behavior.
	FastFilter bool
	// FastMargin is the relative headroom the filter grants a candidate
	// before ruling it out (default DefaultFastMargin, sized from the
	// calibration harness's neighbor-config divergence).
	FastMargin float64
}

// DefaultFastMargin is the filter's default relative margin. The
// calibration harness (fastmodel.Calibrate) shows the model's error is
// strongly correlated between configurations that differ on one menu
// axis — the only comparisons the annealer's filter makes — so the
// margin covers the residual neighbor-to-neighbor misranking, not the
// full cross-palette spread. At 0.10 the filter's rejections agree with
// the detailed walk on every probed (benchmark, seed) scenario, keeping
// the filtered walk's output identical; tighter margins cut deeper but
// begin to rule out candidates the detailed engine would have accepted.
const DefaultFastMargin = 0.10

func (o *Options) applyDefaults() {
	if o.Steps == 0 {
		o.Steps = 200
	}
	if o.StartTemp == 0 {
		o.StartTemp = 0.10
	}
	if o.EndTemp == 0 {
		o.EndTemp = 0.005
	}
	if o.Lookahead <= 0 {
		o.Lookahead = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	if o.FastMargin <= 0 {
		o.FastMargin = DefaultFastMargin
	}
}

// Result is the outcome of an exploration.
type Result struct {
	// Best is the highest-IPT configuration found.
	Best config.CoreConfig
	// BestIPT is its measured IPT on the objective trace.
	BestIPT float64
	// Evaluated counts the design points the walk consumed (the initial
	// point plus one per processed step). It is identical for every
	// Lookahead, like the rest of the Result.
	Evaluated int
	// Wasted counts speculative evaluations that were discarded because an
	// earlier candidate in their batch was accepted. With the fast filter
	// off it is always zero for Lookahead <= 1 and the only Result field
	// that varies with Lookahead.
	Wasted int
	// Detailed counts detailed design-point simulations performed (cache
	// hits included): the initial point plus every candidate that reached
	// the detailed tier, consumed, deferred-then-consumed, or speculative.
	// This is the figure the fast filter exists to cut.
	Detailed int
	// Filtered counts candidates the fast-model filter rejected without a
	// detailed evaluation. Always zero unless Options.FastFilter.
	Filtered int
}

// state is a point in the free-parameter space.
type state struct {
	clock                  int // menu indices
	width                  int
	rob, iq, lsq           int
	l1Sets, l1Assoc, l1Blk int
	l2Sets, l2Assoc, l2Blk int
	pred                   int
	repl, pref             int
}

func (s state) params(name string) config.FreeParams {
	return config.FreeParams{
		Name:          name,
		ClockPeriodNs: clockMenu[s.clock],
		Width:         widthMenu[s.width],
		ROBSize:       robMenu[s.rob],
		IQSize:        iqMenu[s.iq],
		LSQSize:       lsqMenu[s.lsq],
		L1Sets:        setsMenu[s.l1Sets],
		L1Assoc:       assocMenu[s.l1Assoc],
		L1Block:       blockMenu[s.l1Blk],
		L2Sets:        setsMenu[s.l2Sets],
		L2Assoc:       assocMenu[s.l2Assoc],
		L2Block:       blockMenu[s.l2Blk],
		Predictor:     predMenu[s.pred],
		Replacement:   replMenu[s.repl],
		Prefetcher:    prefMenu[s.pref],
	}
}

// valid enforces structural sanity: cache sizes within the technology
// bounds and an issue queue no larger than the window.
func (s state) valid() bool {
	l1 := setsMenu[s.l1Sets] * assocMenu[s.l1Assoc] * blockMenu[s.l1Blk]
	l2 := setsMenu[s.l2Sets] * assocMenu[s.l2Assoc] * blockMenu[s.l2Blk]
	if l1 < l1SizeMin || l1 > l1SizeMax {
		return false
	}
	if l2 < l2SizeMin || l2 > l2SizeMax || l2 < 2*l1 {
		return false
	}
	return iqMenu[s.iq] <= robMenu[s.rob]
}

func defaultState() state {
	return state{
		clock: 5, width: 2, rob: 3, iq: 1, lsq: 2,
		l1Sets: 3, l1Assoc: 1, l1Blk: 3,
		l2Sets: 4, l2Assoc: 3, l2Blk: 4,
		pred: 2, // Appendix-A gshare
		repl: 2, // true LRU
		pref: 0, // no prefetcher
	}
}

// neighbor perturbs one randomly chosen axis by one menu step. The axis
// count includes the predictor menu (axis 11, added in PR 9) and the
// replacement-policy and prefetcher menus (axes 12 and 13, the SPI PR):
// walks from a pre-existing seed therefore visit different states than
// before, but every determinism property — identical trajectories across
// Lookahead and Parallelism, split proposal/acceptance streams — is
// unchanged (see DESIGN.md §15 and §16 for the trajectory-safety argument).
func neighbor(s state, r *xrand.RNG) state {
	for {
		n := s
		axis := r.Intn(14)
		dir := 1
		if r.Bool(0.5) {
			dir = -1
		}
		bump := func(v, max int) int {
			v += dir
			if v < 0 {
				v = 0
			}
			if v >= max {
				v = max - 1
			}
			return v
		}
		switch axis {
		case 0:
			n.clock = bump(n.clock, len(clockMenu))
		case 1:
			n.width = bump(n.width, len(widthMenu))
		case 2:
			n.rob = bump(n.rob, len(robMenu))
		case 3:
			n.iq = bump(n.iq, len(iqMenu))
		case 4:
			n.lsq = bump(n.lsq, len(lsqMenu))
		case 5:
			n.l1Sets = bump(n.l1Sets, len(setsMenu))
		case 6:
			n.l1Assoc = bump(n.l1Assoc, len(assocMenu))
		case 7:
			n.l1Blk = bump(n.l1Blk, len(blockMenu))
		case 8:
			n.l2Sets = bump(n.l2Sets, len(setsMenu))
		case 9:
			n.l2Assoc = bump(n.l2Assoc, len(assocMenu))
		case 10:
			n.l2Blk = bump(n.l2Blk, len(blockMenu))
		case 11:
			n.pred = bump(n.pred, len(predMenu))
		case 12:
			n.repl = bump(n.repl, len(replMenu))
		case 13:
			n.pref = bump(n.pref, len(prefMenu))
		}
		if n != s && n.valid() {
			return n
		}
	}
}

// evaluator measures design points, consulting the optional result cache
// under the same key derivation the campaign Lab uses.
type evaluator struct {
	tr    *trace.Trace
	name  string
	ropts sim.RunOptions
	cache *resultcache.Cache
	log   *obs.ArtifactLog
}

func newEvaluator(tr *trace.Trace, cache *resultcache.Cache, log *obs.ArtifactLog) *evaluator {
	return &evaluator{
		tr:    tr,
		name:  "explore-" + tr.Name(),
		ropts: sim.RunOptions{MaxCycles: int64(tr.Len()) * 200},
		cache: cache,
		log:   log,
	}
}

func (e *evaluator) eval(ctx context.Context, s state) (config.CoreConfig, float64, error) {
	cfg, err := config.Derive(s.params(e.name))
	if err != nil {
		return config.CoreConfig{}, 0, err
	}
	key := resultcache.Key("run", sim.EngineVersion, e.tr.Fingerprint(), e.tr.Name(), e.tr.Len(), cfg, e.ropts)
	var res sim.Result
	if !e.cache.Get(key, &res) {
		e.log.Time("eval", e.name, func() {
			res, err = sim.RunContext(ctx, cfg, e.tr, e.ropts)
		})
		if err != nil {
			return config.CoreConfig{}, 0, err
		}
		e.cache.Put(key, res)
	}
	return cfg, res.IPT(), nil
}

// fastIPTOf appraises the state with the fast model, reporting false when
// the state cannot be derived or estimated (the detailed tier then decides
// its fate, exactly as it would without a filter).
func fastIPTOf(fm *fastmodel.Model, name string, s state) (float64, bool) {
	cfg, err := config.Derive(s.params(name))
	if err != nil {
		return 0, false
	}
	est, err := fm.Estimate(cfg)
	if err != nil {
		return 0, false
	}
	return est.IPT, true
}

// forEach runs fn(i) for i in [0, n) on at most par concurrent goroutines.
func forEach(par, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// Customize anneals a core configuration that maximizes IPT on the trace.
//
// The walk consumes two RNG streams split from the seed: proposals
// (neighbor draws) and acceptance tests. Per step, a candidate neighbor of
// the current state is proposed; an improving candidate is always
// accepted, a worsening one with the Metropolis probability at the current
// temperature; the temperature cools geometrically each step; an
// underivable or non-terminating candidate is rejected without consuming
// an acceptance draw. With Lookahead K > 1 the next K proposals are drawn
// speculatively (each assuming the prior ones are rejected) and evaluated
// concurrently; decisions are still applied in sequence order, and an
// acceptance discards the rest of the batch and rewinds the proposal
// stream, so the trajectory is exactly the K=1 trajectory.
func Customize(ctx context.Context, tr *trace.Trace, opts Options) (Result, error) {
	if tr == nil || tr.Len() == 0 {
		return Result{}, fmt.Errorf("explore: empty trace")
	}
	opts.applyDefaults()
	base := xrand.New(opts.Seed)
	rProp := base.Split()
	rAcc := base.Split()
	ev := newEvaluator(tr, opts.Cache, opts.Log)

	cur := defaultState()
	if !cur.valid() {
		return Result{}, fmt.Errorf("explore: invalid initial state")
	}
	curCfg, curIPT, err := ev.eval(ctx, cur)
	if err != nil {
		return Result{}, err
	}
	res := Result{Best: curCfg, BestIPT: curIPT, Evaluated: 1, Detailed: 1}

	var fm *fastmodel.Model
	var curFast float64
	if opts.FastFilter {
		fm = fastmodel.New(tr)
		if f, ok := fastIPTOf(fm, ev.name, cur); ok {
			curFast = f
		}
	}

	cool := math.Pow(opts.EndTemp/opts.StartTemp, 1/math.Max(1, float64(opts.Steps-1)))
	temp := opts.StartTemp

	type candidate struct {
		st       state
		rngAfter xrand.RNG // proposal-stream state after drawing st
		cfg      config.CoreConfig
		ipt      float64
		fast     float64
		filtered bool // fast model ruled it out; no detailed run
		deferred bool // speculation gated; evaluated on demand if reached
		err      error
	}
	for step := 0; step < opts.Steps; {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		k := opts.Lookahead
		if rem := opts.Steps - step; k > rem {
			k = rem
		}
		// Draw the window's proposals on a scratch copy of the proposal
		// stream: candidate j is what a sequential annealer would propose
		// at step+j if candidates 0..j-1 were all rejected.
		cands := make([]candidate, k)
		scratch := *rProp
		for j := range cands {
			cands[j].st = neighbor(cur, &scratch)
			cands[j].rngAfter = scratch
		}
		// Fast-model first pass. A candidate whose fast estimate sits
		// below the incumbent's by more than the margin plus the current
		// Metropolis acceptance range is rejected without a detailed
		// simulation (the temperature term tracks the cooling within the
		// window, matching the temperature each candidate would face).
		// And once some earlier surviving candidate is fast-predicted
		// accepted, the rest of the window's speculation is deferred: an
		// acceptance there discards the later candidates anyway, so
		// evaluating them up front is the waste the lookahead trades for
		// parallelism — a deferred candidate the walk does reach is
		// evaluated on demand in the consume loop, at the same point in
		// the decision sequence, so deferral never changes the trajectory.
		if fm != nil {
			tj := temp
			gate := false
			for j := range cands {
				c := &cands[j]
				if f, ok := fastIPTOf(fm, ev.name, c.st); ok {
					c.fast = f
					if curFast > 0 {
						switch {
						case f < curFast*(1-(opts.FastMargin+tj)):
							c.filtered = true
						case gate:
							c.deferred = true
						}
						if !c.filtered && f >= curFast {
							gate = true
						}
					}
				} else if gate {
					c.deferred = true
				}
				tj *= cool
			}
		}
		for j := range cands {
			if !cands[j].filtered && !cands[j].deferred {
				res.Detailed++
			}
		}
		forEach(opts.Parallelism, k, func(j int) {
			c := &cands[j]
			if c.filtered || c.deferred {
				return
			}
			c.cfg, c.ipt, c.err = ev.eval(ctx, c.st)
		})
		// Consume in sequence order; stop the window at the first
		// acceptance (later candidates were proposed from a state the walk
		// no longer occupies).
		consumed := 0
		for j := 0; j < k; j++ {
			c := &cands[j]
			consumed++
			accepted := false
			if c.filtered {
				// The detailed walk would have computed a deeply negative
				// rel here and spent one acceptance draw on a near-certain
				// rejection; consume the same draw so the surviving
				// trajectory stays stream-aligned with the unfiltered walk.
				rAcc.Float64()
				res.Filtered++
			} else {
				if c.deferred {
					res.Detailed++
					c.cfg, c.ipt, c.err = ev.eval(ctx, c.st)
				}
				if c.err == nil {
					res.Evaluated++
					rel := (c.ipt - curIPT) / curIPT
					accepted = rel >= 0 || rAcc.Bool(math.Exp(rel/temp))
				}
			}
			temp *= cool
			step++
			if accepted {
				cur, curIPT = c.st, c.ipt
				if fm != nil {
					curFast = c.fast
				}
				if opts.Progress != nil {
					opts.Progress(step-1, c.cfg, c.ipt)
				}
				if c.ipt > res.BestIPT {
					res.Best, res.BestIPT = c.cfg, c.ipt
				}
				break
			}
		}
		*rProp = cands[consumed-1].rngAfter
		for j := consumed; j < k; j++ {
			c := &cands[j]
			if !c.filtered && !c.deferred {
				res.Wasted++
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res.Best.Name = "custom-" + tr.Name()
	return res, nil
}
