// Package explore is the XpScalar stand-in: a simulated-annealing
// design-space exploration that customizes a core configuration for a
// workload. It varies the same free axes the paper's tool varies —
// superscalar width, register-file/ROB size, issue-queue size, load/store
// queue size, L1 and L2 cache geometry, and clock frequency — with the
// dependent parameters (pipeline depths, wake-up latency, memory and cache
// latencies) derived by the technology model in internal/config.
package explore

import (
	"fmt"
	"math"

	"archcontest/internal/config"
	"archcontest/internal/sim"
	"archcontest/internal/trace"
	"archcontest/internal/xrand"
)

// Discrete menus for each free axis, spanning the Appendix A palette.
var (
	clockMenu = []float64{0.19, 0.23, 0.27, 0.29, 0.31, 0.33, 0.37, 0.41, 0.45, 0.49}
	widthMenu = []int{2, 3, 4, 5, 6, 7, 8}
	robMenu   = []int{32, 64, 128, 256, 512, 1024}
	iqMenu    = []int{16, 32, 64, 128}
	lsqMenu   = []int{32, 64, 128, 256}
	setsMenu  = []int{32, 128, 256, 1024, 2048, 4096, 8192, 16384, 32768}
	assocMenu = []int{1, 2, 4, 8, 16}
	blockMenu = []int{8, 16, 32, 64, 128, 256, 512}
	l1SizeMax = 256 << 10
	l1SizeMin = 4 << 10
	l2SizeMax = 4 << 20
	l2SizeMin = 64 << 10
)

// Options configures an annealing run.
type Options struct {
	// Seed drives the annealing schedule deterministically.
	Seed uint64
	// Steps is the number of annealing moves (default 200).
	Steps int
	// StartTemp and EndTemp bound the geometric cooling schedule, in
	// relative objective units (defaults 0.10 and 0.005).
	StartTemp, EndTemp float64
	// Progress, if non-nil, observes every accepted move.
	Progress func(step int, cfg config.CoreConfig, ipt float64)
}

func (o *Options) applyDefaults() {
	if o.Steps == 0 {
		o.Steps = 200
	}
	if o.StartTemp == 0 {
		o.StartTemp = 0.10
	}
	if o.EndTemp == 0 {
		o.EndTemp = 0.005
	}
}

// Result is the outcome of an exploration.
type Result struct {
	// Best is the highest-IPT configuration found.
	Best config.CoreConfig
	// BestIPT is its measured IPT on the objective trace.
	BestIPT float64
	// Evaluated counts simulated design points.
	Evaluated int
}

// state is a point in the free-parameter space.
type state struct {
	clock                  int // menu indices
	width                  int
	rob, iq, lsq           int
	l1Sets, l1Assoc, l1Blk int
	l2Sets, l2Assoc, l2Blk int
}

func (s state) params(name string) config.FreeParams {
	return config.FreeParams{
		Name:          name,
		ClockPeriodNs: clockMenu[s.clock],
		Width:         widthMenu[s.width],
		ROBSize:       robMenu[s.rob],
		IQSize:        iqMenu[s.iq],
		LSQSize:       lsqMenu[s.lsq],
		L1Sets:        setsMenu[s.l1Sets],
		L1Assoc:       assocMenu[s.l1Assoc],
		L1Block:       blockMenu[s.l1Blk],
		L2Sets:        setsMenu[s.l2Sets],
		L2Assoc:       assocMenu[s.l2Assoc],
		L2Block:       blockMenu[s.l2Blk],
	}
}

// valid enforces structural sanity: cache sizes within the technology
// bounds and an issue queue no larger than the window.
func (s state) valid() bool {
	l1 := setsMenu[s.l1Sets] * assocMenu[s.l1Assoc] * blockMenu[s.l1Blk]
	l2 := setsMenu[s.l2Sets] * assocMenu[s.l2Assoc] * blockMenu[s.l2Blk]
	if l1 < l1SizeMin || l1 > l1SizeMax {
		return false
	}
	if l2 < l2SizeMin || l2 > l2SizeMax || l2 < 2*l1 {
		return false
	}
	return iqMenu[s.iq] <= robMenu[s.rob]
}

func defaultState() state {
	return state{
		clock: 5, width: 2, rob: 3, iq: 1, lsq: 2,
		l1Sets: 3, l1Assoc: 1, l1Blk: 3,
		l2Sets: 4, l2Assoc: 3, l2Blk: 4,
	}
}

// neighbor perturbs one randomly chosen axis by one menu step.
func neighbor(s state, r *xrand.RNG) state {
	for {
		n := s
		axis := r.Intn(11)
		dir := 1
		if r.Bool(0.5) {
			dir = -1
		}
		bump := func(v, max int) int {
			v += dir
			if v < 0 {
				v = 0
			}
			if v >= max {
				v = max - 1
			}
			return v
		}
		switch axis {
		case 0:
			n.clock = bump(n.clock, len(clockMenu))
		case 1:
			n.width = bump(n.width, len(widthMenu))
		case 2:
			n.rob = bump(n.rob, len(robMenu))
		case 3:
			n.iq = bump(n.iq, len(iqMenu))
		case 4:
			n.lsq = bump(n.lsq, len(lsqMenu))
		case 5:
			n.l1Sets = bump(n.l1Sets, len(setsMenu))
		case 6:
			n.l1Assoc = bump(n.l1Assoc, len(assocMenu))
		case 7:
			n.l1Blk = bump(n.l1Blk, len(blockMenu))
		case 8:
			n.l2Sets = bump(n.l2Sets, len(setsMenu))
		case 9:
			n.l2Assoc = bump(n.l2Assoc, len(assocMenu))
		case 10:
			n.l2Blk = bump(n.l2Blk, len(blockMenu))
		}
		if n != s && n.valid() {
			return n
		}
	}
}

// Customize anneals a core configuration that maximizes IPT on the trace.
func Customize(tr *trace.Trace, opts Options) (Result, error) {
	if tr == nil || tr.Len() == 0 {
		return Result{}, fmt.Errorf("explore: empty trace")
	}
	opts.applyDefaults()
	r := xrand.New(opts.Seed)

	evaluate := func(s state) (config.CoreConfig, float64, error) {
		cfg, err := config.Derive(s.params("explore-" + tr.Name()))
		if err != nil {
			return config.CoreConfig{}, 0, err
		}
		res, err := sim.Run(cfg, tr, sim.RunOptions{MaxCycles: int64(tr.Len()) * 200})
		if err != nil {
			return config.CoreConfig{}, 0, err
		}
		return cfg, res.IPT(), nil
	}

	cur := defaultState()
	if !cur.valid() {
		return Result{}, fmt.Errorf("explore: invalid initial state")
	}
	curCfg, curIPT, err := evaluate(cur)
	if err != nil {
		return Result{}, err
	}
	res := Result{Best: curCfg, BestIPT: curIPT, Evaluated: 1}

	cool := math.Pow(opts.EndTemp/opts.StartTemp, 1/math.Max(1, float64(opts.Steps-1)))
	temp := opts.StartTemp
	for step := 0; step < opts.Steps; step++ {
		cand := neighbor(cur, r)
		candCfg, candIPT, err := evaluate(cand)
		if err != nil {
			// An occasional underivable point is skipped, not fatal.
			continue
		}
		res.Evaluated++
		rel := (candIPT - curIPT) / curIPT
		if rel >= 0 || r.Bool(math.Exp(rel/temp)) {
			cur, curIPT = cand, candIPT
			if opts.Progress != nil {
				opts.Progress(step, candCfg, candIPT)
			}
			if candIPT > res.BestIPT {
				res.Best, res.BestIPT = candCfg, candIPT
			}
		}
		temp *= cool
	}
	res.Best.Name = "custom-" + tr.Name()
	return res, nil
}
