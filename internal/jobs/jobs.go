// Package jobs is the asynchronous execution layer over internal/spec: a
// Runner accepts validated scenario specs, executes them on a bounded
// worker pool (the same semaphore discipline the experiments Lab uses for
// its leaves), and exposes per-job cancellation, progress snapshots, and
// outcomes. The serve daemon and any embedding process drive simulations
// exclusively through this interface.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"archcontest/internal/experiments"
	"archcontest/internal/spec"
)

// State is a job's lifecycle state. Transitions are monotonic:
// queued -> running -> (done | failed | cancelled), with queued -> cancelled
// allowed for jobs cancelled before a worker slot freed.
type State int32

const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// MarshalText makes State render as its name in JSON snapshots.
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= StateDone }

// Snapshot is a point-in-time view of a job. Successive snapshots of one
// job are monotonic: Seq never decreases, Done never decreases, and State
// only advances.
type Snapshot struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	// Seq increments on every observable update (progress, state change),
	// so watchers can cheaply detect "anything new?".
	Seq int64 `json:"seq"`
	// Done/Total report execution progress in the spec's progress units
	// (retired instructions for run/contest, steps for explore; zero for
	// campaign kinds — watch the campaign counters instead).
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// Campaign counts executed leaf work for experiment/matrix kinds.
	Campaign *experiments.CampaignStats `json:"campaign,omitempty"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// ErrBusy is returned by Submit when the runner's bounded queue is full:
// the caller should shed load (HTTP nodes answer 429 with Retry-After)
// rather than buffer unboundedly.
var ErrBusy = errors.New("jobs: queue full")

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = errors.New("jobs: runner is draining, not accepting new jobs")

// Job is one submitted scenario.
type Job struct {
	id   string
	spec spec.Spec

	cancel context.CancelFunc
	done   chan struct{}

	state atomic.Int32
	seq   atomic.Int64
	prog  atomic.Int64 // done units
	total atomic.Int64

	subMu   sync.Mutex
	subs    map[int]chan struct{}
	nextSub int

	mu         sync.Mutex
	statsFn    func() experiments.CampaignStats
	outcome    *spec.Outcome
	err        error
	submitted  time.Time
	startedAt  time.Time
	finishedAt time.Time
}

// ID reports the job's runner-unique identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's (normalized) scenario.
func (j *Job) Spec() spec.Spec { return j.spec }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cooperative cancellation. Safe to call at any time,
// from any goroutine, repeatedly.
func (j *Job) Cancel() { j.cancel() }

// Outcome returns the job's result once it is terminal: the outcome for
// done jobs, the failure (or context error) otherwise.
func (j *Job) Outcome() (*spec.Outcome, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outcome, j.err
}

// Snapshot captures the job's current state. Monotonic across calls.
func (j *Job) Snapshot() Snapshot {
	// Read the sequence counter first: if anything advances mid-snapshot
	// the next snapshot carries a larger Seq, preserving monotonicity of
	// the (Seq, fields) stream.
	seq := j.seq.Load()
	s := Snapshot{
		ID:    j.id,
		Kind:  j.spec.Kind,
		State: State(j.state.Load()),
		Seq:   seq,
		Done:  j.prog.Load(),
		Total: j.total.Load(),
	}
	j.mu.Lock()
	s.SubmittedAt = j.submitted
	if !j.startedAt.IsZero() {
		t := j.startedAt
		s.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		s.FinishedAt = &t
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	statsFn := j.statsFn
	j.mu.Unlock()
	if statsFn != nil {
		st := statsFn()
		s.Campaign = &st
	}
	return s
}

// Subscribe registers a watcher: the returned channel receives a (coalesced)
// notification whenever the job's sequence counter advances, including the
// advance into a terminal state. The release function MUST be called when
// the watcher goes away (client disconnect, handler return) — it is what
// keeps an abandoned watch from holding job resources forever. Release is
// idempotent.
func (j *Job) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	j.subMu.Lock()
	if j.subs == nil {
		j.subs = make(map[int]chan struct{})
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.subMu.Unlock()
	return ch, func() {
		j.subMu.Lock()
		delete(j.subs, id)
		j.subMu.Unlock()
	}
}

// Watchers reports the number of live subscriptions — the regression probe
// for "a disconnected watch client must release its watcher".
func (j *Job) Watchers() int {
	j.subMu.Lock()
	defer j.subMu.Unlock()
	return len(j.subs)
}

func (j *Job) bump() {
	j.seq.Add(1)
	j.subMu.Lock()
	for _, ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default: // watcher already has a pending notification
		}
	}
	j.subMu.Unlock()
}

func (j *Job) setState(s State) {
	j.state.Store(int32(s))
	j.bump()
}

// Runner executes submitted jobs on a bounded worker pool.
type Runner struct {
	env *spec.Env
	sem chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int64
	draining bool
	maxQueue int
	pending  int // accepted, waiting for a worker slot
	running  int // holding a worker slot
	wg       sync.WaitGroup
}

// NewRunner builds a runner over the environment with the given worker
// bound (0 = 1). Note the worker bound gates whole jobs; each campaign
// job additionally fans out internally under its Lab's parallelism.
func NewRunner(env *spec.Env, workers int) *Runner {
	if workers < 1 {
		workers = 1
	}
	if env == nil {
		env = spec.NewEnv(nil)
	}
	return &Runner{
		env:  env,
		sem:  make(chan struct{}, workers),
		jobs: make(map[string]*Job),
	}
}

// SetMaxQueue bounds the number of accepted-but-not-yet-running jobs
// (0 = unbounded, the default). Once the bound is reached Submit returns
// ErrBusy — the backpressure signal a fleet node converts into a 429.
func (r *Runner) SetMaxQueue(n int) {
	r.mu.Lock()
	r.maxQueue = n
	r.mu.Unlock()
}

// Load reports the runner's instantaneous occupancy: jobs waiting for a
// worker slot and jobs holding one.
func (r *Runner) Load() (pending, running int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending, r.running
}

// Workers reports the size of the worker pool.
func (r *Runner) Workers() int { return cap(r.sem) }

// Submit validates the spec and enqueues it. The returned job is queued
// until a worker slot frees, then runs to a terminal state. Submission
// fails once Drain has begun (ErrDraining), when the bounded queue is full
// (ErrBusy), and on an invalid spec.
func (r *Runner) Submit(sp spec.Spec) (*Job, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		spec:      sp,
		cancel:    cancel,
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	j.total.Store(int64(sp.N))

	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		cancel()
		return nil, ErrDraining
	}
	if r.maxQueue > 0 && r.pending >= r.maxQueue {
		r.mu.Unlock()
		cancel()
		return nil, ErrBusy
	}
	r.pending++
	r.nextID++
	j.id = fmt.Sprintf("job-%04d", r.nextID)
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	r.wg.Add(1)
	r.mu.Unlock()

	go r.run(ctx, j)
	return j, nil
}

func (r *Runner) run(ctx context.Context, j *Job) {
	defer r.wg.Done()
	select {
	case r.sem <- struct{}{}:
		r.mu.Lock()
		r.pending--
		r.running++
		r.mu.Unlock()
		defer func() {
			r.mu.Lock()
			r.running--
			r.mu.Unlock()
			<-r.sem
		}()
	case <-ctx.Done():
		r.mu.Lock()
		r.pending--
		r.mu.Unlock()
		r.finish(j, nil, ctx.Err())
		return
	}
	j.mu.Lock()
	j.startedAt = time.Now()
	j.mu.Unlock()
	j.setState(StateRunning)

	hooks := spec.Hooks{
		Progress: func(done, total int64) {
			j.prog.Store(done)
			j.total.Store(total)
			j.bump()
		},
		Campaign: func(stats func() experiments.CampaignStats) {
			j.mu.Lock()
			j.statsFn = stats
			j.mu.Unlock()
			j.bump()
		},
	}
	out, err := spec.Execute(ctx, j.spec, r.env, hooks)
	r.finish(j, out, err)
}

func (r *Runner) finish(j *Job, out *spec.Outcome, err error) {
	j.mu.Lock()
	j.outcome = out
	j.err = err
	j.finishedAt = time.Now()
	j.mu.Unlock()
	switch {
	case err == nil:
		j.setState(StateDone)
	case isCancel(err):
		j.setState(StateCancelled)
	default:
		j.setState(StateFailed)
	}
	close(j.done)
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Get returns a job by ID.
func (r *Runner) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (r *Runner) Jobs() []*Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Job, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.jobs[id])
	}
	return out
}

// Cancel cancels the identified job. It reports whether the job exists.
func (r *Runner) Cancel(id string) bool {
	j, ok := r.Get(id)
	if ok {
		j.Cancel()
	}
	return ok
}

// CancelAll cancels every non-terminal job (the hard-stop path).
func (r *Runner) CancelAll() {
	for _, j := range r.Jobs() {
		j.Cancel()
	}
}

// Drain stops accepting new submissions and waits for every accepted job
// to reach a terminal state, or for ctx to end (in which case the
// remaining jobs keep running and Drain returns ctx.Err()). Safe to call
// more than once.
func (r *Runner) Drain(ctx context.Context) error {
	r.mu.Lock()
	r.draining = true
	r.mu.Unlock()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
