package jobs

import (
	"context"
	"testing"
	"time"

	"archcontest/internal/spec"
)

func runSpec(n int) spec.Spec {
	return spec.Spec{Kind: spec.KindRun, Bench: "gcc", N: n, Cores: []string{"gcc"}}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
}

func TestJobLifecycle(t *testing.T) {
	r := NewRunner(spec.NewEnv(nil), 2)
	j, err := r.Submit(runSpec(20000))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	snap := j.Snapshot()
	if snap.State != StateDone {
		t.Fatalf("state %s, want done", snap.State)
	}
	if snap.Done != snap.Total || snap.Total != 20000 {
		t.Errorf("progress %d/%d, want 20000/20000", snap.Done, snap.Total)
	}
	if snap.StartedAt == nil || snap.FinishedAt == nil {
		t.Error("timestamps missing on a terminal snapshot")
	}
	out, err := j.Outcome()
	if err != nil || out == nil || out.Run == nil {
		t.Fatalf("outcome %+v, %v", out, err)
	}
	if out.Run.Insts != 20000 {
		t.Errorf("run result %+v", out.Run)
	}
}

// TestJobSnapshotsMonotonic watches a running job and asserts the
// (Seq, Done, State) stream never goes backwards — the contract the serve
// daemon's watch endpoint streams to clients.
func TestJobSnapshotsMonotonic(t *testing.T) {
	r := NewRunner(spec.NewEnv(nil), 1)
	j, err := r.Submit(runSpec(300000))
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq, lastDone int64 = -1, -1
	lastState := State(-1)
	updates := 0
	for {
		snap := j.Snapshot()
		if snap.Seq < lastSeq {
			t.Fatalf("Seq went backwards: %d after %d", snap.Seq, lastSeq)
		}
		if snap.Done < lastDone {
			t.Fatalf("Done went backwards: %d after %d", snap.Done, lastDone)
		}
		if snap.State < lastState {
			t.Fatalf("State went backwards: %s after %s", snap.State, lastState)
		}
		if snap.Seq > lastSeq {
			updates++
		}
		lastSeq, lastDone, lastState = snap.Seq, snap.Done, snap.State
		if snap.State.Terminal() {
			break
		}
	}
	if lastState != StateDone {
		t.Fatalf("terminal state %s, want done", lastState)
	}
	if updates < 3 {
		t.Errorf("only %d distinct snapshots observed; progress not streaming", updates)
	}
}

func TestJobCancelQueued(t *testing.T) {
	r := NewRunner(spec.NewEnv(nil), 1)
	first, err := r.Submit(runSpec(2_000_000))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := r.Submit(runSpec(2_000_000))
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	waitDone(t, queued)
	if s := queued.Snapshot().State; s != StateCancelled {
		t.Errorf("queued-cancelled job state %s", s)
	}
	first.Cancel()
	waitDone(t, first)
	if s := first.Snapshot().State; s != StateCancelled {
		t.Errorf("running-cancelled job state %s", s)
	}
}

func TestRunnerCancelAndGet(t *testing.T) {
	r := NewRunner(spec.NewEnv(nil), 1)
	j, err := r.Submit(runSpec(2_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Get(j.ID()); !ok || got != j {
		t.Fatal("Get lost the job")
	}
	if r.Cancel("job-nope") {
		t.Error("cancelled a job that does not exist")
	}
	if !r.Cancel(j.ID()) {
		t.Error("Cancel did not find the job")
	}
	waitDone(t, j)
	if _, err := j.Outcome(); err == nil {
		t.Error("cancelled job reported a nil error outcome")
	}
}

func TestRunnerDrain(t *testing.T) {
	r := NewRunner(spec.NewEnv(nil), 4)
	for i := 0; i < 3; i++ {
		if _, err := r.Submit(runSpec(20000)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range r.Jobs() {
		if s := j.Snapshot().State; s != StateDone {
			t.Errorf("job %s state %s after drain", j.ID(), s)
		}
	}
	if _, err := r.Submit(runSpec(20000)); err == nil {
		t.Error("submission accepted while draining")
	}
}

func TestSubmitInvalidSpec(t *testing.T) {
	r := NewRunner(spec.NewEnv(nil), 1)
	if _, err := r.Submit(spec.Spec{Kind: "dance"}); err == nil {
		t.Error("invalid spec accepted")
	}
}

// TestRunnerQueueBound: with one worker and a queue bound of 1, the third
// submission is shed with ErrBusy, and capacity frees again once the
// queued job leaves the queue.
func TestRunnerQueueBound(t *testing.T) {
	r := NewRunner(spec.NewEnv(nil), 1)
	r.SetMaxQueue(1)
	blocker, err := r.Submit(runSpec(5_000_000))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the blocker to take the worker slot so the next submit is
	// pending, not running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if pending, running := r.Load(); pending == 0 && running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := r.Submit(runSpec(5_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(runSpec(20000)); err != ErrBusy {
		t.Fatalf("overfull queue: err %v, want ErrBusy", err)
	}
	if pending, running := r.Load(); pending != 1 || running != 1 {
		t.Errorf("Load = (%d, %d), want (1, 1)", pending, running)
	}
	queued.Cancel()
	waitDone(t, queued)
	if _, err := r.Submit(runSpec(20000)); err != nil {
		t.Fatalf("submit after queue freed: %v", err)
	}
	blocker.Cancel()
	waitDone(t, blocker)
}

// TestJobSubscribe: a subscription is notified on progress and on the
// terminal transition, and release drops the watcher count.
func TestJobSubscribe(t *testing.T) {
	r := NewRunner(spec.NewEnv(nil), 1)
	j, err := r.Submit(runSpec(100_000))
	if err != nil {
		t.Fatal(err)
	}
	ch, release := j.Subscribe()
	if j.Watchers() != 1 {
		t.Fatalf("watchers %d, want 1", j.Watchers())
	}
	notified := 0
	deadline := time.After(30 * time.Second)
	for !State(j.Snapshot().State).Terminal() {
		select {
		case <-ch:
			notified++
		case <-deadline:
			t.Fatal("no terminal notification")
		}
	}
	if notified == 0 {
		t.Error("no notifications before terminal state")
	}
	release()
	release() // idempotent
	if j.Watchers() != 0 {
		t.Fatalf("watchers %d after release, want 0", j.Watchers())
	}
	waitDone(t, j)
}
