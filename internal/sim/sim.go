// Package sim provides the run harnesses: single-core execution of a trace
// on a configuration, with optional per-region time logging, and the result
// types shared by the experiment drivers.
package sim

import (
	"context"
	"fmt"

	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/pipeline"
	"archcontest/internal/ticks"
	"archcontest/internal/trace"
)

// RegionSize is the paper's region granularity for the Section 2
// methodology: the number of cycles to retire every 20 dynamic instructions
// is logged.
const RegionSize = 20

// EngineVersion names the observable semantics of the simulation engine
// (pipeline, cache, branch, contest — everything a result depends on
// besides the trace, configuration, and options). It is a component of
// every resultcache key: bump it whenever an engine change alters any
// result bit, so persisted campaign caches invalidate themselves instead
// of serving stale numbers. Trace-content changes need no bump — the
// trace fingerprint in the key covers them.
const EngineVersion = "engine-v2"

// Result summarizes one run.
type Result struct {
	// Benchmark and Core identify the run.
	Benchmark, Core string
	// Insts is the number of retired instructions.
	Insts int64
	// Time is the completion time.
	Time ticks.Time
	// Stats are the core's counters (for contested runs, the winning
	// core's).
	Stats pipeline.Stats
	// Regions, if requested, holds the absolute retirement time of every
	// RegionSize-th instruction.
	Regions []ticks.Time
}

// IPT reports instructions per nanosecond, the paper's performance metric.
func (r Result) IPT() float64 {
	ns := r.Time.Nanoseconds()
	if ns == 0 {
		return 0
	}
	return float64(r.Insts) / ns
}

// RunOptions configures a single-core run.
type RunOptions struct {
	// LogRegions enables 20-instruction region time logging.
	LogRegions bool
	// WritePolicy overrides the private-cache store policy (default
	// write-back for stand-alone runs).
	WritePolicy cache.WritePolicy
	// MaxCycles aborts runs that exceed the bound (0 = no bound); a
	// defensive limit for exploration over arbitrary configurations.
	MaxCycles int64
	// SingleStep forces naive cycle-by-cycle stepping instead of the
	// event-driven fast-forward path. Both produce bit-identical results;
	// single-stepping is the reference semantics, kept for debugging and
	// the golden-equivalence tests.
	SingleStep bool
	// Checker, if non-nil, attaches a verification observer to the core
	// (see internal/invariant). It is excluded from result-cache keys and
	// never alters the run's result; campaign layers must bypass their
	// caches when a checker is attached, or the checks silently don't run.
	Checker Checker `json:"-"`
	// LegacySched selects the pre-rework heap-based ready queue instead
	// of the bitmap scheduler (see pipeline.Options.LegacySched). It is a
	// test-only shim for the scheduler equivalence suite and must never
	// enter a cache key: both schedulers produce bit-identical results by
	// construction, so the key would only split the cache.
	LegacySched bool `json:"-"`
}

// Checker observes a core's execution for verification.
type Checker = pipeline.Checker

// ctxPollStride is how many scheduler iterations pass between context
// polls in the run loops. Each iteration is a progressing step (or a
// fast-forward over dead cycles), so a poll every 4096 iterations bounds
// the cancellation latency to a few microseconds of simulated work while
// keeping the check off the per-cycle hot path entirely.
const ctxPollStride = 4096

// Run executes the trace to completion on a single core.
func Run(cfg config.CoreConfig, tr *trace.Trace, opts RunOptions) (Result, error) {
	return RunContext(context.Background(), cfg, tr, opts)
}

// RunContext is Run with cooperative cancellation: the run loop polls
// ctx.Done() every ctxPollStride scheduler iterations (never per cycle)
// and returns ctx.Err() when the context ends. A Background context costs
// a single nil check at entry.
func RunContext(ctx context.Context, cfg config.CoreConfig, tr *trace.Trace, opts RunOptions) (Result, error) {
	popts := pipeline.Options{WritePolicy: opts.WritePolicy, Checker: opts.Checker, LegacySched: opts.LegacySched}
	if opts.LogRegions {
		popts.RegionSize = RegionSize
	}
	core, err := pipeline.NewCore(cfg, tr, popts)
	if err != nil {
		return Result{}, err
	}
	done := ctx.Done()
	var poll int
	for !core.Done() {
		if opts.SingleStep {
			core.Step()
		} else {
			core.Advance()
		}
		if opts.MaxCycles > 0 && core.Cycle() > opts.MaxCycles {
			return Result{}, fmt.Errorf("sim: %s on %s exceeded %d cycles", tr.Name(), cfg.Name, opts.MaxCycles)
		}
		if done != nil {
			if poll++; poll >= ctxPollStride {
				poll = 0
				select {
				case <-done:
					return Result{}, ctx.Err()
				default:
				}
			}
		}
	}
	st := core.Stats()
	return Result{
		Benchmark: tr.Name(),
		Core:      cfg.Name,
		Insts:     st.Retired,
		Time:      st.FinishTime,
		Stats:     st,
		Regions:   core.RegionTimes(),
	}, nil
}

// MustRun is Run for known-good inputs; it panics on error.
func MustRun(cfg config.CoreConfig, tr *trace.Trace, opts RunOptions) Result {
	r, err := Run(cfg, tr, opts)
	if err != nil {
		panic(err)
	}
	return r
}
