package sim

import (
	"strings"
	"testing"

	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/workload"
)

func TestRunBasics(t *testing.T) {
	tr := workload.MustGenerate("gcc", 20000)
	cfg := config.MustPaletteCore("gcc")
	r, err := Run(cfg, tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts != 20000 || r.Benchmark != "gcc" || r.Core != "gcc" {
		t.Errorf("result %+v", r)
	}
	if r.IPT() <= 0 {
		t.Error("IPT not positive")
	}
	if len(r.Regions) != 0 {
		t.Error("regions logged without LogRegions")
	}
}

func TestRunRegions(t *testing.T) {
	tr := workload.MustGenerate("gcc", 2000)
	r, err := Run(config.MustPaletteCore("gcc"), tr, RunOptions{LogRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Regions) != 2000/RegionSize {
		t.Errorf("%d regions", len(r.Regions))
	}
	if r.Regions[len(r.Regions)-1] != r.Time {
		t.Error("last region boundary should be the finish time")
	}
}

func TestRunMaxCycles(t *testing.T) {
	tr := workload.MustGenerate("mcf", 20000)
	if _, err := Run(config.MustPaletteCore("mcf"), tr, RunOptions{MaxCycles: 100}); err == nil {
		t.Error("cycle bound not enforced")
	} else if !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("error %v", err)
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	tr := workload.MustGenerate("gcc", 100)
	bad := config.MustPaletteCore("gcc")
	bad.Width = 0
	if _, err := Run(bad, tr, RunOptions{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestWritePolicyAffectsRun(t *testing.T) {
	// Write-through and write-back runs must both complete and may differ
	// in time on store-heavy traces.
	tr := workload.MustGenerate("vortex", 20000)
	cfg := config.MustPaletteCore("vortex")
	wb := MustRun(cfg, tr, RunOptions{WritePolicy: cache.WriteBack})
	wt := MustRun(cfg, tr, RunOptions{WritePolicy: cache.WriteThrough})
	if wb.Insts != wt.Insts {
		t.Error("instruction counts differ across policies")
	}
	if wb.IPT() <= 0 || wt.IPT() <= 0 {
		t.Error("non-positive IPT")
	}
}

func TestMustRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad := config.MustPaletteCore("gcc")
	bad.Width = 0
	MustRun(bad, workload.MustGenerate("gcc", 100), RunOptions{})
}

func TestZeroTimeIPT(t *testing.T) {
	if (Result{Insts: 10}).IPT() != 0 {
		t.Error("zero-time IPT should be 0")
	}
}
