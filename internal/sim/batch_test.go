package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/workload"
)

// batchSuite builds a mixed set of independent jobs: different benchmarks,
// configurations, write policies, and region logging.
func batchSuite(n int) []BatchItem {
	var items []BatchItem
	for _, bench := range []string{"mcf", "gcc", "crafty", "twolf", "vpr", "bzip"} {
		items = append(items, BatchItem{
			Config: config.MustPaletteCore(bench),
			Trace:  workload.MustGenerate(bench, n),
			Opts:   RunOptions{WritePolicy: cache.WriteThrough},
		})
	}
	items[1].Opts.LogRegions = true
	items[2].Opts.WritePolicy = cache.WriteBack
	items[4].Opts.SingleStep = true // exercises the sequential fallback
	return items
}

// TestRunBatchMatchesSequential is the batch equivalence regression: every
// worker count, group size, and quantum must reproduce Run's results
// bit-identically, because independent cores own all of their state.
func TestRunBatchMatchesSequential(t *testing.T) {
	items := batchSuite(6000)
	want := make([]Result, len(items))
	for i, it := range items {
		want[i] = MustRun(it.Config, it.Trace, it.Opts)
	}
	cases := []BatchOptions{
		{},
		{Workers: 1, GroupSize: 1},
		{Workers: 2, GroupSize: 2, Quantum: 64},
		{Workers: 4, GroupSize: 3},
		{Workers: 16, GroupSize: 1, Quantum: 1},
	}
	for _, opts := range cases {
		got, err := RunBatch(context.Background(), items, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%+v: %d results, want %d", opts, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%+v: item %d (%s on %s) diverged:\n got %+v\nwant %+v",
					opts, i, items[i].Trace.Name(), items[i].Config.Name, got[i], want[i])
			}
		}
	}
}

func TestRunBatchEmpty(t *testing.T) {
	got, err := RunBatch(context.Background(), nil, BatchOptions{Workers: 4})
	if err != nil || got != nil {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

func TestRunBatchMaxCycles(t *testing.T) {
	items := batchSuite(6000)
	items[3].Opts.MaxCycles = 50
	if _, err := RunBatch(context.Background(), items, BatchOptions{Workers: 2}); err == nil {
		t.Error("cycle bound not enforced")
	} else if !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("error %v", err)
	}
}

func TestRunBatchPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBatch(ctx, batchSuite(6000), BatchOptions{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunBatchInvalidConfig(t *testing.T) {
	items := batchSuite(2000)
	items[0].Config.Width = 0
	if _, err := RunBatch(context.Background(), items, BatchOptions{Workers: 2}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestRunBatchLegacySched runs the batch under the legacy heap scheduler:
// results must match the bitmap scheduler's bit-for-bit (the scheduler
// equivalence property, exercised here through the batch path).
func TestRunBatchLegacySched(t *testing.T) {
	items := batchSuite(6000)
	want, err := RunBatch(context.Background(), items, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		items[i].Opts.LegacySched = true
	}
	got, err := RunBatch(context.Background(), items, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("item %d: legacy scheduler diverged from bitmap scheduler", i)
		}
	}
}
