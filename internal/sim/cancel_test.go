package sim

import (
	"context"
	"errors"
	"testing"

	"archcontest/internal/config"
	"archcontest/internal/pipeline"
	"archcontest/internal/ticks"
	"archcontest/internal/workload"
)

func TestRunContextPreCancelled(t *testing.T) {
	tr := workload.MustGenerate("gcc", 20000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, config.MustPaletteCore("gcc"), tr, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// cancelAfter cancels its context on the Nth retirement.
type cancelAfter struct {
	cancel  context.CancelFunc
	after   int64
	retired int64
}

func (c *cancelAfter) AfterCycle(*pipeline.Core) {}
func (c *cancelAfter) OnRetire(_ *pipeline.Core, _ int64, _ ticks.Time) {
	if c.retired++; c.retired == c.after {
		c.cancel()
	}
}
func (c *cancelAfter) OnInject(*pipeline.Core, int64, ticks.Time) {}

func TestRunContextCancelMidRun(t *testing.T) {
	tr := workload.MustGenerate("gcc", 200000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunContext(ctx, config.MustPaletteCore("gcc"), tr,
		RunOptions{Checker: &cancelAfter{cancel: cancel, after: 1000}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	tr := workload.MustGenerate("twolf", 20000)
	cfg := config.MustPaletteCore("twolf")
	a, err := Run(cfg, tr, RunOptions{LogRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg, tr, RunOptions{LogRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Insts != b.Insts || a.Time != b.Time || len(a.Regions) != len(b.Regions) {
		t.Fatalf("RunContext(Background) diverged from Run: %+v vs %+v", a, b)
	}
}
