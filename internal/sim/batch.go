package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"archcontest/internal/pipeline"
	"archcontest/internal/trace"

	"archcontest/internal/config"
)

// BatchItem is one independent single-core job of a batch run.
type BatchItem struct {
	Config config.CoreConfig
	Trace  *trace.Trace
	Opts   RunOptions
}

// BatchOptions configures RunBatch.
type BatchOptions struct {
	// Workers is the number of goroutines executing jobs (0 or 1 means
	// sequential in the calling goroutine's sense: one worker).
	Workers int
	// GroupSize is how many cores one worker interleaves as a
	// pipeline.Batch (0 means 4). Grouping keeps a worker's working set
	// bounded while still amortizing scheduling overhead across jobs.
	GroupSize int
	// Quantum is the pipeline.Batch pass quantum in progressing
	// iterations (0 means pipeline.DefaultQuantum).
	Quantum int
}

// batchPollPasses is how many batch passes run between context polls. A
// pass is at least one progressing iteration per live core, so polling
// every pass already bounds cancellation latency to a quantum's worth of
// simulated work; no finer check is needed.
const batchPollPasses = 1

// RunBatch executes a set of independent single-core jobs and returns
// their results in item order, each bit-identical to what Run would
// return for the same item (asserted by the batch equivalence suite).
// Workers split the items into groups; each group's cores advance in a
// cache-friendly interleave (see pipeline.Batch). The MaxCycles bound of
// an item is enforced between passes, so a runaway job may overshoot the
// bound by up to one quantum per core before the batch aborts.
//
// The first job error (including a MaxCycles overrun) cancels the
// remaining work and is returned; ctx cancellation is honored between
// passes.
func RunBatch(ctx context.Context, items []BatchItem, opts BatchOptions) ([]Result, error) {
	if len(items) == 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	group := opts.GroupSize
	if group < 1 {
		group = 4
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(items))
	var firstErr atomic.Value // error
	fail := func(err error) {
		if err == nil {
			return
		}
		if firstErr.CompareAndSwap(nil, err) {
			cancel()
		}
	}

	var next atomic.Int64 // next unclaimed item index, claimed group at a time
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(group))) - group
				if lo >= len(items) {
					return
				}
				hi := lo + group
				if hi > len(items) {
					hi = len(items)
				}
				if err := runGroup(ctx, items[lo:hi], results[lo:hi], opts.Quantum); err != nil {
					fail(err)
					return
				}
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// runGroup executes one group of items as an interleaved pipeline.Batch,
// writing each item's Result into the parallel results slice.
func runGroup(ctx context.Context, items []BatchItem, results []Result, quantum int) error {
	cores := make([]*pipeline.Core, len(items))
	for i, it := range items {
		if it.Opts.SingleStep {
			// Single-stepping is the reference semantics for debugging;
			// it gains nothing from interleaving, so run it directly.
			r, err := RunContext(ctx, it.Config, it.Trace, it.Opts)
			if err != nil {
				return err
			}
			results[i] = r
			continue
		}
		popts := pipeline.Options{WritePolicy: it.Opts.WritePolicy, Checker: it.Opts.Checker, LegacySched: it.Opts.LegacySched}
		if it.Opts.LogRegions {
			popts.RegionSize = RegionSize
		}
		core, err := pipeline.NewCore(it.Config, it.Trace, popts)
		if err != nil {
			return err
		}
		cores[i] = core
	}

	// Compact out the nil slots left by single-stepped items.
	live := make([]*pipeline.Core, 0, len(cores))
	for _, c := range cores {
		if c != nil {
			live = append(live, c)
		}
	}
	b := pipeline.NewBatch(live)
	done := ctx.Done()
	passes := 0
	for b.Pass(quantum) > 0 {
		for i, c := range cores {
			if c == nil || c.Done() {
				continue
			}
			if mc := items[i].Opts.MaxCycles; mc > 0 && c.Cycle() > mc {
				return fmt.Errorf("sim: %s on %s exceeded %d cycles",
					items[i].Trace.Name(), items[i].Config.Name, mc)
			}
		}
		if done != nil {
			if passes++; passes >= batchPollPasses {
				passes = 0
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
		}
	}
	for i, c := range cores {
		if c == nil {
			continue
		}
		st := c.Stats()
		results[i] = Result{
			Benchmark: items[i].Trace.Name(),
			Core:      items[i].Config.Name,
			Insts:     st.Retired,
			Time:      st.FinishTime,
			Stats:     st,
			Regions:   c.RegionTimes(),
		}
	}
	return nil
}
