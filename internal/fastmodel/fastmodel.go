// Package fastmodel is the filter tier of the exploration stack: a
// trace-driven, IPC-approximate core model that estimates a
// configuration's performance in one linear pass over the trace, with no
// per-slot window simulation. It follows the interval-analysis shape:
// the replayed inputs are exact — branch outcomes through the real
// predictor, memory accesses through the real cache tag arrays — and
// only their combination into cycles is approximate: execution time is
// the maximum of a dependence bound (the dataflow critical path with
// per-access cache latencies, which serializes dependent miss chains)
// and a throughput bound (dispatch width plus misprediction-refill and
// MLP-clustered miss intervals).
//
// The model is deliberately coarse — it exists to rank design points,
// not to time them. The Calibrate harness measures its divergence from
// the detailed engine over the workload suite, and the explore filter
// uses that error bound as a margin: only candidates the fast model
// cannot rule out are simulated in detail.
package fastmodel

import (
	"sync"

	"archcontest/internal/branch"
	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/isa"
	"archcontest/internal/trace"
)

// Estimate is the fast model's appraisal of one configuration.
type Estimate struct {
	// Cycles is the estimated execution time in core cycles.
	Cycles float64 `json:"cycles"`
	// IPT is the estimated instructions per nanosecond, comparable to
	// sim.Result.IPT.
	IPT float64 `json:"ipt"`
	// Mispredicts is the replayed predictor's mispredicted branch count.
	Mispredicts int64 `json:"mispredicts"`
	// L1Misses and L2Misses are the replayed tag-array miss counts.
	L1Misses int64 `json:"l1_misses"`
	L2Misses int64 `json:"l2_misses"`
}

// Model evaluates configurations against one trace. The trace-dependent
// replays — the predictor and the per-geometry cache tag arrays — are
// computed once and memoized, so estimating a design point that reuses a
// seen cache geometry costs one latency-weighting pass over the trace
// instead of a detailed simulation. A Model is safe for concurrent use.
type Model struct {
	tr *trace.Trace

	mu    sync.Mutex
	preds map[predKey]*predReplay
	geoms map[geomKey]*memReplay
}

// New builds a fast model over the trace.
func New(tr *trace.Trace) *Model {
	return &Model{
		tr:    tr,
		preds: make(map[predKey]*predReplay),
		geoms: make(map[geomKey]*memReplay),
	}
}

// predKey is the full predictor configuration: branch.Config is a
// comparable struct, so keying the memo by value keeps the replay exact for
// every kind — gshare, bimodal, TAGE, and registered families (whose
// opaque Params string is part of the value) alike.
type predKey = branch.Config

// geomKey is the full memory-side component configuration: both cache
// levels (with the latency fields zeroed — they do not change which
// accesses miss) plus the prefetcher, whose fills do. Keying on the whole
// structs keeps the memo exact across replacement policies and opaque
// parameter strings without enumerating fields.
type geomKey struct {
	l1, l2 cache.Config
	pf     cache.PrefetchConfig
}

type predReplay struct {
	once        sync.Once
	err         error
	mispredicts int64
}

// Miss levels of a memory access under one cache geometry.
const (
	levelL1Hit = iota
	levelL2Hit
	levelMem
)

type memReplay struct {
	once     sync.Once
	err      error
	l1Misses int64
	l2Misses int64
	// level classifies every trace index (non-memory entries stay
	// levelL1Hit, which adds nothing beyond the L1 latency never charged
	// to them).
	level []uint8
	// l1MissIdx and l2MissIdx hold the trace indices of misses, for MLP
	// clustering against the reorder window.
	l1MissIdx []int32
	l2MissIdx []int32
}

// predFor replays the predictor configuration over the trace's branches,
// memoized by predictor geometry.
func (m *Model) predFor(cfg config.CoreConfig) (*predReplay, error) {
	key := predKey(cfg.Predictor)
	m.mu.Lock()
	pr, ok := m.preds[key]
	if !ok {
		pr = &predReplay{}
		m.preds[key] = pr
	}
	m.mu.Unlock()
	pr.once.Do(func() {
		pred, err := cfg.Predictor.New()
		if err != nil {
			pr.err = err
			return
		}
		tr := m.tr
		for i, n := int64(0), int64(tr.Len()); i < n; i++ {
			in := tr.At(i)
			if in.Op != isa.OpBranch {
				continue
			}
			if pred.Predict(in.PC) != in.Taken {
				pr.mispredicts++
			}
			pred.Update(in.PC, in.Taken)
		}
	})
	if pr.err != nil {
		return nil, pr.err
	}
	return pr, nil
}

// memFor replays the memory accesses through tag-only L1/L2 arrays,
// memoized by the full memory-side component configuration (latencies
// excluded — they do not change which accesses miss). The replay mirrors
// the hierarchy's tag behaviour exactly: the configured replacement
// policies drive victim choice, and the configured prefetcher observes
// demand loads and prefills both levels the way Hierarchy.Load does, so
// the miss classification stays exact for every component combination.
func (m *Model) memFor(cfg config.CoreConfig) (*memReplay, error) {
	l1Cfg, l2Cfg := cfg.L1D, cfg.L2D
	l1Cfg.LatencyCycles, l2Cfg.LatencyCycles = 0, 0
	key := geomKey{l1: l1Cfg, l2: l2Cfg, pf: cfg.Prefetch}
	m.mu.Lock()
	mr, ok := m.geoms[key]
	if !ok {
		mr = &memReplay{}
		m.geoms[key] = mr
	}
	m.mu.Unlock()
	mr.once.Do(func() {
		l1, err := cache.New(cfg.L1D)
		if err != nil {
			mr.err = err
			return
		}
		l2, err := cache.New(cfg.L2D)
		if err != nil {
			mr.err = err
			return
		}
		pf, err := cache.NewPrefetcher(cfg.Prefetch, cfg.L1D.BlockBytes)
		if err != nil {
			mr.err = err
			return
		}
		var pfBuf [8]uint64
		prefetch := func(addr uint64, miss bool) {
			for _, pa := range pf.OnAccess(addr, miss, pfBuf[:0]) {
				if l1.Probe(pa) {
					continue
				}
				if !l2.Probe(pa) {
					l2.Prefill(pa)
				}
				l1.Prefill(pa)
			}
		}
		tr := m.tr
		mr.level = make([]uint8, tr.Len())
		for i, n := int64(0), int64(tr.Len()); i < n; i++ {
			in := tr.At(i)
			if !in.IsMem() {
				continue
			}
			write := in.Op == isa.OpStore
			if hit, _ := l1.Access(in.Addr, write); hit {
				if pf != nil && !write {
					prefetch(in.Addr, false)
				}
				continue
			}
			mr.l1Misses++
			mr.l1MissIdx = append(mr.l1MissIdx, int32(i))
			if hit, _ := l2.Access(in.Addr, write); hit {
				mr.level[i] = levelL2Hit
			} else {
				mr.level[i] = levelMem
				mr.l2Misses++
				mr.l2MissIdx = append(mr.l2MissIdx, int32(i))
			}
			if pf != nil && !write {
				prefetch(in.Addr, true)
			}
		}
	})
	if mr.err != nil {
		return nil, mr.err
	}
	return mr, nil
}

// clusters counts miss clusters under a reorder window of w instructions:
// a miss within w instructions of its cluster's leader overlaps the
// leader's latency (memory-level parallelism) and is not charged.
func clusters(idx []int32, w int64) int64 {
	if w < 1 {
		w = 1
	}
	var count int64
	leader := int64(-1) - w
	for _, i := range idx {
		if int64(i)-leader >= w {
			count++
			leader = int64(i)
		}
	}
	return count
}

// Estimate appraises the configuration on the model's trace:
//
//	dependence bound: dataflow critical path with each load charged its
//	    replayed level's latency — dependent miss chains serialize here;
//	throughput bound: N/Width dispatch slots, plus a front-end refill
//	    interval per mispredict, plus one full latency per miss cluster
//	    (misses within a reorder window of the cluster leader overlap);
//	cycles = max(dependence, throughput).
func (m *Model) Estimate(cfg config.CoreConfig) (Estimate, error) {
	pr, err := m.predFor(cfg)
	if err != nil {
		return Estimate{}, err
	}
	mr, err := m.memFor(cfg)
	if err != nil {
		return Estimate{}, err
	}
	tr := m.tr
	n := int64(tr.Len())

	l1Lat := int64(cfg.L1D.LatencyCycles)
	l2Lat := l1Lat + int64(cfg.L2D.LatencyCycles)
	memLat := l2Lat + int64(cfg.MemLatencyCycles)

	// Dependence bound: dataflow height over the architectural registers.
	var depth [isa.NumRegs]int64
	var height int64
	level := mr.level
	for i := int64(0); i < n; i++ {
		in := tr.At(i)
		d := depth[in.Src1]
		if d2 := depth[in.Src2]; d2 > d {
			d = d2
		}
		lat := int64(in.Op.Latency())
		if in.Op == isa.OpLoad {
			switch level[i] {
			case levelL2Hit:
				lat += l2Lat
			case levelMem:
				lat += memLat
			default:
				lat += l1Lat
			}
		}
		d += lat
		if in.Dst != isa.NoReg {
			depth[in.Dst] = d
		}
		if d > height {
			height = d
		}
	}

	refill := int64(cfg.FrontEndDepth + cfg.SchedDepth + 1)
	base := n / int64(cfg.Width)
	if height > base {
		base = height
	}
	cycles := float64(base +
		pr.mispredicts*refill +
		clusters(mr.l2MissIdx, int64(cfg.ROBSize))*int64(cfg.MemLatencyCycles) +
		clusters(mr.l1MissIdx, int64(cfg.IQSize))*int64(cfg.L2D.LatencyCycles))
	est := Estimate{
		Cycles:      cycles,
		Mispredicts: pr.mispredicts,
		L1Misses:    mr.l1Misses,
		L2Misses:    mr.l2Misses,
	}
	if ns := cycles * cfg.ClockPeriodNs; ns > 0 {
		est.IPT = float64(n) / ns
	}
	return est, nil
}
