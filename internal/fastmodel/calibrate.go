package fastmodel

import (
	"context"
	"fmt"
	"math"

	"archcontest/internal/config"
	"archcontest/internal/sim"
	"archcontest/internal/workload"
)

// CalRow is one (benchmark, core) calibration point: the fast model's
// estimate against the detailed engine's measurement.
type CalRow struct {
	Bench       string  `json:"bench"`
	Core        string  `json:"core"`
	FastIPT     float64 `json:"fast_ipt"`
	DetailedIPT float64 `json:"detailed_ipt"`
	// RelError is (fast - detailed) / detailed: positive when the fast
	// model is optimistic.
	RelError float64 `json:"rel_error"`
}

// BenchSpread summarizes a benchmark's calibration rows. Spread — the
// range of RelError across cores of one benchmark — is the figure the
// explore filter cares about: a systematic bias shared by every core
// cancels out of the fast model's candidate-vs-incumbent comparison,
// while the spread is the part that can misrank two design points.
type BenchSpread struct {
	Bench  string  `json:"bench"`
	MinRel float64 `json:"min_rel_error"`
	MaxRel float64 `json:"max_rel_error"`
	Spread float64 `json:"spread"`
}

// Calibration is the harness output: per-scenario divergence between the
// fast model and the detailed engine.
type Calibration struct {
	Insts int      `json:"insts"`
	Rows  []CalRow `json:"rows"`
	// MeanAbsRelError and MaxAbsRelError aggregate |RelError| over rows.
	MeanAbsRelError float64 `json:"mean_abs_rel_error"`
	MaxAbsRelError  float64 `json:"max_abs_rel_error"`
	// MaxSpread is the largest per-benchmark RelError spread.
	MaxSpread float64       `json:"max_spread"`
	Spreads   []BenchSpread `json:"spreads"`
	// RankAgreement is the fraction of same-benchmark core pairs the fast
	// model orders the same way the detailed engine does — the quantity a
	// first-pass filter actually depends on.
	RankAgreement float64 `json:"rank_agreement"`
}

// Calibrate measures the fast model against the detailed engine on every
// (bench, core) pair at n instructions. Both tiers see the identical
// generated trace. The run is deterministic: same inputs, same output.
func Calibrate(ctx context.Context, benches []string, cores []config.CoreConfig, n int) (Calibration, error) {
	if len(benches) == 0 {
		benches = workload.Benchmarks()
	}
	if len(cores) == 0 {
		for _, name := range config.PaletteNames() {
			c, err := config.PaletteCore(name)
			if err != nil {
				return Calibration{}, err
			}
			cores = append(cores, c)
		}
	}
	cal := Calibration{Insts: n}
	var sumAbs float64
	var pairs, agree int
	for _, bench := range benches {
		if err := ctx.Err(); err != nil {
			return Calibration{}, err
		}
		p, err := workload.ProfileFor(bench)
		if err != nil {
			return Calibration{}, err
		}
		tr, err := workload.Generate(p, n)
		if err != nil {
			return Calibration{}, err
		}
		m := New(tr)
		rows := make([]CalRow, 0, len(cores))
		for _, cfg := range cores {
			est, err := m.Estimate(cfg)
			if err != nil {
				return Calibration{}, err
			}
			det, err := sim.RunContext(ctx, cfg, tr, sim.RunOptions{})
			if err != nil {
				return Calibration{}, err
			}
			detIPT := det.IPT()
			if detIPT == 0 {
				return Calibration{}, fmt.Errorf("fastmodel: zero detailed IPT for %s on %s", bench, cfg.Name)
			}
			rows = append(rows, CalRow{
				Bench:       bench,
				Core:        cfg.Name,
				FastIPT:     est.IPT,
				DetailedIPT: detIPT,
				RelError:    (est.IPT - detIPT) / detIPT,
			})
		}
		sp := BenchSpread{Bench: bench, MinRel: math.Inf(1), MaxRel: math.Inf(-1)}
		for _, r := range rows {
			abs := math.Abs(r.RelError)
			sumAbs += abs
			if abs > cal.MaxAbsRelError {
				cal.MaxAbsRelError = abs
			}
			sp.MinRel = math.Min(sp.MinRel, r.RelError)
			sp.MaxRel = math.Max(sp.MaxRel, r.RelError)
		}
		sp.Spread = sp.MaxRel - sp.MinRel
		cal.MaxSpread = math.Max(cal.MaxSpread, sp.Spread)
		cal.Spreads = append(cal.Spreads, sp)
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				pairs++
				if (rows[i].FastIPT > rows[j].FastIPT) == (rows[i].DetailedIPT > rows[j].DetailedIPT) {
					agree++
				}
			}
		}
		cal.Rows = append(cal.Rows, rows...)
	}
	if len(cal.Rows) > 0 {
		cal.MeanAbsRelError = sumAbs / float64(len(cal.Rows))
	}
	if pairs > 0 {
		cal.RankAgreement = float64(agree) / float64(pairs)
	}
	return cal, nil
}
