package fastmodel

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"archcontest/internal/config"
	"archcontest/internal/workload"
)

func TestEstimateDeterministicAndMemoized(t *testing.T) {
	tr := workload.MustGenerate("gcc", 8000)
	cfg, err := config.PaletteCore("gcc")
	if err != nil {
		t.Fatal(err)
	}
	m := New(tr)
	a, err := m.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("repeat estimate differs: %+v vs %+v", a, b)
	}
	c, err := New(tr).Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Errorf("fresh-model estimate differs: %+v vs %+v", a, c)
	}
	if a.Cycles <= 0 || a.IPT <= 0 {
		t.Errorf("degenerate estimate: %+v", a)
	}
	if a.Mispredicts <= 0 || a.L1Misses <= 0 {
		t.Errorf("replays saw no events: %+v", a)
	}
	if a.L2Misses > a.L1Misses {
		t.Errorf("more L2 than L1 misses: %+v", a)
	}
}

func TestEstimateConcurrentUse(t *testing.T) {
	tr := workload.MustGenerate("mcf", 6000)
	m := New(tr)
	names := config.PaletteNames()
	ests := make([]Estimate, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			cfg, err := config.PaletteCore(name)
			if err != nil {
				t.Error(err)
				return
			}
			est, err := m.Estimate(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			ests[i] = est
		}(i, name)
	}
	wg.Wait()
	for i, name := range names {
		cfg, err := config.PaletteCore(name)
		if err != nil {
			t.Fatal(err)
		}
		again, err := m.Estimate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ests[i] != again {
			t.Errorf("%s: concurrent estimate %+v != sequential %+v", name, ests[i], again)
		}
	}
}

// TestCalibrationGolden pins the fast model's divergence from the detailed
// engine over the full workload suite and palette. The bounds carry
// headroom over the measured values (mean 0.47, max 1.27, rank 0.77 at
// 10k instructions); a regression past them means the model drifted from
// its calibrated envelope and the explore filter margin no longer covers
// its misranking.
func TestCalibrationGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep in short mode")
	}
	cal, err := Calibrate(context.Background(), nil, nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(workload.Benchmarks()) * len(config.PaletteNames())
	if len(cal.Rows) != wantRows {
		t.Fatalf("calibration covered %d rows, want %d", len(cal.Rows), wantRows)
	}
	for _, r := range cal.Rows {
		if r.FastIPT <= 0 || r.DetailedIPT <= 0 {
			t.Fatalf("degenerate calibration row: %+v", r)
		}
	}
	if cal.MeanAbsRelError >= 0.7 {
		t.Errorf("mean |rel error| %.3f exceeds calibrated envelope 0.7", cal.MeanAbsRelError)
	}
	if cal.MaxAbsRelError >= 1.8 {
		t.Errorf("max |rel error| %.3f exceeds calibrated envelope 1.8", cal.MaxAbsRelError)
	}
	if cal.RankAgreement <= 0.70 {
		t.Errorf("rank agreement %.3f below calibrated floor 0.70", cal.RankAgreement)
	}
	if len(cal.Spreads) != len(workload.Benchmarks()) {
		t.Errorf("%d bench spreads, want %d", len(cal.Spreads), len(workload.Benchmarks()))
	}
	again, err := Calibrate(context.Background(), nil, nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cal, again) {
		t.Error("calibration not deterministic across runs")
	}
}
