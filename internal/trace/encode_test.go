package trace

import (
	"bytes"
	"strings"
	"testing"

	"archcontest/internal/isa"
)

func TestEncodeRoundTrip(t *testing.T) {
	orig := New("roundtrip", validInsts())
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != orig.Name() || got.Len() != orig.Len() {
		t.Fatalf("header mismatch: %s/%d", got.Name(), got.Len())
	}
	for i := int64(0); i < int64(orig.Len()); i++ {
		if *got.At(i) != *orig.At(i) {
			t.Fatalf("record %d: %v != %v", i, got.At(i), orig.At(i))
		}
	}
}

func TestEncodeSizeIsFixedWidth(t *testing.T) {
	orig := New("sz", validInsts())
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(8 + 2 + len("sz") + 8 + orig.Len()*recordBytes)
	if n != want || int64(buf.Len()) != want {
		t.Errorf("wrote %d bytes (buffer %d), want %d", n, buf.Len(), want)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	orig := New("c", validInsts())
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string]func() []byte{
		"bad magic": func() []byte {
			b := append([]byte(nil), good...)
			b[0] = 'X'
			return b
		},
		"truncated header": func() []byte { return good[:6] },
		"truncated body":   func() []byte { return good[:len(good)-5] },
		"zero count": func() []byte {
			b := append([]byte(nil), good...)
			// count lives after magic(8) + nameLen(2) + name(1)
			for i := 11; i < 19; i++ {
				b[i] = 0
			}
			return b
		},
		"invalid op": func() []byte {
			b := append([]byte(nil), good...)
			b[19+18+1] = 0x7f // first record's op byte
			return b
		},
	}
	for name, mk := range cases {
		if _, err := ReadFrom(bytes.NewReader(mk())); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeRejectsHugeCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(traceMagic[:])
	buf.Write([]byte{1, 0, 'x'})
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := ReadFrom(&buf); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("huge count: %v", err)
	}
}

func TestEncodePreservesBranchBits(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpBranch, PC: 0x40, Src1: 1, Taken: true},
		{Op: isa.OpBranch, PC: 0x44, Src1: 1, Taken: false},
	}
	var buf bytes.Buffer
	if _, err := New("b", insts).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.At(0).Taken || got.At(1).Taken {
		t.Error("taken bits scrambled")
	}
}
