package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"archcontest/internal/isa"
)

// Binary trace format: a fixed header followed by one fixed-width record
// per instruction, all little-endian. The format exists so generated
// workloads can be archived and exchanged; it is versioned and validated on
// load.
//
//	magic   [8]byte  "ACTRACE1"
//	nameLen uint16, name [nameLen]byte
//	count   uint64
//	records: pc uint64, addr uint64, src1, src2, dst, op uint8, taken uint8,
//	         pad uint8   (20 bytes each)
var traceMagic = [8]byte{'A', 'C', 'T', 'R', 'A', 'C', 'E', '1'}

const recordBytes = 8 + 8 + 4

// WriteTo serializes the trace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.Write(traceMagic[:])); err != nil {
		return n, err
	}
	if len(t.name) > 1<<16-1 {
		return n, fmt.Errorf("trace: name too long to serialize")
	}
	var lenBuf [2]byte
	binary.LittleEndian.PutUint16(lenBuf[:], uint16(len(t.name)))
	if err := count(bw.Write(lenBuf[:])); err != nil {
		return n, err
	}
	if err := count(bw.WriteString(t.name)); err != nil {
		return n, err
	}
	var cntBuf [8]byte
	binary.LittleEndian.PutUint64(cntBuf[:], uint64(len(t.insts)))
	if err := count(bw.Write(cntBuf[:])); err != nil {
		return n, err
	}
	var rec [recordBytes]byte
	for i := range t.insts {
		in := &t.insts[i]
		binary.LittleEndian.PutUint64(rec[0:], in.PC)
		binary.LittleEndian.PutUint64(rec[8:], in.Addr)
		rec[16] = byte(in.Src1)
		rec[17] = byte(in.Src2)
		rec[18] = byte(in.Dst)
		op := byte(in.Op)
		if in.Taken {
			op |= 0x80
		}
		rec[19] = op
		if err := count(bw.Write(rec[:])); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a trace previously written with WriteTo and
// validates it.
func ReadFrom(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var lenBuf [2]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	name := make([]byte, binary.LittleEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	var cntBuf [8]byte
	if _, err := io.ReadFull(br, cntBuf[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	count := binary.LittleEndian.Uint64(cntBuf[:])
	const maxInsts = 1 << 31
	if count == 0 || count > maxInsts {
		return nil, fmt.Errorf("trace: implausible instruction count %d", count)
	}
	insts := make([]isa.Inst, count)
	var rec [recordBytes]byte
	for i := range insts {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		in := &insts[i]
		in.PC = binary.LittleEndian.Uint64(rec[0:])
		in.Addr = binary.LittleEndian.Uint64(rec[8:])
		in.Src1 = isa.RegID(rec[16])
		in.Src2 = isa.RegID(rec[17])
		in.Dst = isa.RegID(rec[18])
		in.Op = isa.OpClass(rec[19] &^ 0x80)
		in.Taken = rec[19]&0x80 != 0
	}
	t := New(string(name), insts)
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: loaded trace invalid: %w", err)
	}
	return t, nil
}
