// Package trace defines the dynamic instruction trace that drives the core
// model and the contesting system.
//
// A trace is the stand-in for a benchmark's 100M-instruction SimPoint: a
// fixed, deterministic sequence of dynamic instructions that every core of a
// contesting system executes identically. Traces are immutable after
// construction; cores index them by the retired-instruction number that the
// paper's pop-counter/fetch-counter protocol is defined over.
package trace

import (
	"fmt"
	"sync"

	"archcontest/internal/isa"
)

// Trace is an immutable dynamic instruction stream.
type Trace struct {
	name  string
	insts []isa.Inst

	fpOnce sync.Once
	fp     uint64
}

// New wraps the given instructions as a trace. The slice is taken over by
// the trace and must not be mutated afterwards.
func New(name string, insts []isa.Inst) *Trace {
	return &Trace{name: name, insts: insts}
}

// Name reports the trace's benchmark name.
func (t *Trace) Name() string { return t.name }

// Len reports the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.insts) }

// At returns the instruction at index i. The pointer aliases the trace's
// backing store; callers must not mutate it.
func (t *Trace) At(i int64) *isa.Inst { return &t.insts[i] }

// Prefix returns the trace of the first n instructions, sharing the backing
// store. The prefix has its own name (and therefore fingerprint), since it
// is a different instruction stream. The fuzz harness uses prefixes to map
// shrinking inputs onto shrinking traces without regenerating them.
func (t *Trace) Prefix(n int) *Trace {
	if n < 0 || n > len(t.insts) {
		panic(fmt.Sprintf("trace %s: prefix %d of %d", t.name, n, len(t.insts)))
	}
	if n == len(t.insts) {
		return t
	}
	return &Trace{name: fmt.Sprintf("%s[:%d]", t.name, n), insts: t.insts[:n]}
}

// Validate checks the structural invariants every well-formed trace holds:
// valid op classes, register IDs in range, memory operations carrying
// addresses, and non-memory operations carrying none.
func (t *Trace) Validate() error {
	for i := range t.insts {
		in := &t.insts[i]
		if !in.Op.Valid() {
			return fmt.Errorf("trace %s[%d]: invalid op class %d", t.name, i, in.Op)
		}
		if in.Src1 >= isa.NumRegs || in.Src2 >= isa.NumRegs || in.Dst >= isa.NumRegs {
			return fmt.Errorf("trace %s[%d]: register out of range: %v", t.name, i, in)
		}
		switch in.Op {
		case isa.OpLoad:
			if in.Addr == 0 {
				return fmt.Errorf("trace %s[%d]: load without address", t.name, i)
			}
			if in.Dst == isa.NoReg {
				return fmt.Errorf("trace %s[%d]: load without destination", t.name, i)
			}
		case isa.OpStore:
			if in.Addr == 0 {
				return fmt.Errorf("trace %s[%d]: store without address", t.name, i)
			}
			if in.Dst != isa.NoReg {
				return fmt.Errorf("trace %s[%d]: store with destination", t.name, i)
			}
		case isa.OpBranch:
			if in.Dst != isa.NoReg {
				return fmt.Errorf("trace %s[%d]: branch with destination", t.name, i)
			}
			if in.PC == 0 {
				return fmt.Errorf("trace %s[%d]: branch without PC", t.name, i)
			}
		default:
			if in.Addr != 0 {
				return fmt.Errorf("trace %s[%d]: %s with address", t.name, i, in.Op)
			}
		}
	}
	return nil
}

// Fingerprint returns a 64-bit content hash over the trace's name, length,
// and every field of every dynamic instruction (FNV-1a). Two traces with
// the same fingerprint executed on the same configuration produce the same
// result, which is what makes the fingerprint a sound result-cache key
// component: it captures not just the (benchmark, N) request but the
// actual generated stream, so a change to the workload generator
// invalidates cached results automatically. The hash is computed once and
// memoized (traces are immutable).
func (t *Trace) Fingerprint() uint64 {
	t.fpOnce.Do(func() {
		const (
			offset64 = 14695981039346656037
			prime64  = 1099511628211
		)
		h := uint64(offset64)
		mix := func(v uint64) {
			for i := 0; i < 8; i++ {
				h ^= v & 0xff
				h *= prime64
				v >>= 8
			}
		}
		for i := 0; i < len(t.name); i++ {
			h ^= uint64(t.name[i])
			h *= prime64
		}
		mix(uint64(len(t.insts)))
		for i := range t.insts {
			in := &t.insts[i]
			mix(in.PC)
			mix(in.Addr)
			taken := uint64(0)
			if in.Taken {
				taken = 1
			}
			mix(uint64(in.Src1) | uint64(in.Src2)<<16 | uint64(in.Dst)<<32 | uint64(in.Op)<<48 | taken<<56)
		}
		t.fp = h
	})
	return t.fp
}

// Mix is the per-class instruction count of a trace.
type Mix struct {
	Counts [isa.NumOpClasses]uint64
	Total  uint64
}

// Fraction reports the share of the class in the trace.
func (m Mix) Fraction(op isa.OpClass) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Counts[op]) / float64(m.Total)
}

func (m Mix) String() string {
	s := ""
	for op := isa.OpClass(0); int(op) < isa.NumOpClasses; op++ {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%.1f%%", op, 100*m.Fraction(op))
	}
	return s
}

// Mix computes the instruction-class mix.
func (t *Trace) Mix() Mix {
	var m Mix
	for i := range t.insts {
		m.Counts[t.insts[i].Op]++
	}
	m.Total = uint64(len(t.insts))
	return m
}

// Footprint reports the number of distinct cache blocks of the given size
// touched by the trace's memory operations, in bytes.
func (t *Trace) Footprint(blockBytes int) uint64 {
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		panic(fmt.Sprintf("trace: bad block size %d", blockBytes))
	}
	blocks := make(map[uint64]struct{})
	var shift uint
	for b := blockBytes; b > 1; b >>= 1 {
		shift++
	}
	for i := range t.insts {
		if t.insts[i].IsMem() {
			blocks[t.insts[i].Addr>>shift] = struct{}{}
		}
	}
	return uint64(len(blocks)) * uint64(blockBytes)
}
