package trace

import (
	"strings"
	"testing"

	"archcontest/internal/isa"
)

func validInsts() []isa.Inst {
	return []isa.Inst{
		{Op: isa.OpALU, PC: 0x40, Dst: 5, Src1: 1, Src2: 2},
		{Op: isa.OpLoad, PC: 0x44, Dst: 6, Src1: 5, Addr: 0x1000},
		{Op: isa.OpStore, PC: 0x48, Src1: 5, Src2: 6, Addr: 0x1008},
		{Op: isa.OpBranch, PC: 0x4c, Src1: 6, Taken: true},
		{Op: isa.OpMul, PC: 0x50, Dst: 7, Src1: 6, Src2: 5},
	}
}

func TestValidateAccepts(t *testing.T) {
	tr := New("ok", validInsts())
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]isa.Inst{
		"bad op":           {Op: isa.OpClass(99)},
		"load no addr":     {Op: isa.OpLoad, Dst: 1},
		"load no dst":      {Op: isa.OpLoad, Addr: 0x10},
		"store with dst":   {Op: isa.OpStore, Dst: 1, Addr: 0x10},
		"store no addr":    {Op: isa.OpStore, Src2: 1},
		"branch with dst":  {Op: isa.OpBranch, Dst: 1, PC: 0x40},
		"branch no pc":     {Op: isa.OpBranch},
		"alu with addr":    {Op: isa.OpALU, Dst: 1, Addr: 0x10},
		"reg out of range": {Op: isa.OpALU, Dst: 64},
	}
	for name, bad := range cases {
		insts := append(validInsts(), bad)
		if err := New(name, insts).Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAccessors(t *testing.T) {
	tr := New("t", validInsts())
	if tr.Name() != "t" {
		t.Error("name")
	}
	if tr.Len() != 5 {
		t.Errorf("len = %d", tr.Len())
	}
	if tr.At(1).Op != isa.OpLoad {
		t.Error("At(1) should be the load")
	}
}

func TestMix(t *testing.T) {
	tr := New("t", validInsts())
	m := tr.Mix()
	if m.Total != 5 {
		t.Fatalf("total %d", m.Total)
	}
	if m.Counts[isa.OpALU] != 1 || m.Counts[isa.OpLoad] != 1 ||
		m.Counts[isa.OpStore] != 1 || m.Counts[isa.OpBranch] != 1 || m.Counts[isa.OpMul] != 1 {
		t.Errorf("mix %+v", m.Counts)
	}
	if f := m.Fraction(isa.OpLoad); f != 0.2 {
		t.Errorf("load fraction %g", f)
	}
	if (Mix{}).Fraction(isa.OpALU) != 0 {
		t.Error("empty mix fraction should be 0")
	}
	if !strings.Contains(m.String(), "load=20.0%") {
		t.Errorf("mix string %q", m.String())
	}
}

func TestFootprint(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpLoad, Dst: 1, Addr: 0x1000},
		{Op: isa.OpLoad, Dst: 1, Addr: 0x1010}, // same 64B block
		{Op: isa.OpLoad, Dst: 1, Addr: 0x1040}, // next block
		{Op: isa.OpStore, Src2: 1, Addr: 0x2000},
		{Op: isa.OpALU, Dst: 1},
	}
	tr := New("t", insts)
	if fp := tr.Footprint(64); fp != 3*64 {
		t.Errorf("footprint = %d, want 192", fp)
	}
	if fp := tr.Footprint(4096); fp != 2*4096 {
		t.Errorf("footprint(4096) = %d, want 8192", fp)
	}
}

func TestFootprintPanicsOnBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("t", nil).Footprint(48)
}

func TestFingerprint(t *testing.T) {
	mk := func(name string, taken bool) *Trace {
		return New(name, []isa.Inst{
			{PC: 0x40, Op: isa.OpBranch, Taken: taken},
			{PC: 0x44, Op: isa.OpALU, Dst: 3, Src1: 1, Src2: 2},
		})
	}
	a, b := mk("gcc", true), mk("gcc", true)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical traces fingerprint differently")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
	for _, other := range []*Trace{
		mk("mcf", true),                  // name differs
		mk("gcc", false),                 // one outcome bit differs
		New("gcc", []isa.Inst{*a.At(0)}), // length differs
	} {
		if other.Fingerprint() == a.Fingerprint() {
			t.Fatalf("distinct trace collided: %s", other.Name())
		}
	}
}
