// Package migrate implements the migrational baseline that architectural
// contesting is motivated against: a heterogeneous CMP that moves a single
// thread between cores at a fixed granularity.
//
// The paper's Sections 2 and 3 argue that adaptational and migrational
// approaches are too sluggish for the sub-thousand-instruction behaviour
// variation where the real gains live: migrating costs a pipeline drain,
// a register-state transfer across the die, and cold private caches on the
// destination. This package makes that argument executable: it simulates
// execution that switches between two cores every G instructions under an
// oracle policy (always run the region on the faster core), charging the
// migration costs — so even with a *perfect* phase predictor, fine-grain
// migration drowns in overheads that contesting does not pay.
package migrate

import (
	"fmt"

	"archcontest/internal/config"
	"archcontest/internal/sim"
	"archcontest/internal/switching"
	"archcontest/internal/ticks"
	"archcontest/internal/trace"
)

// Options configures a migration simulation.
type Options struct {
	// Granularity is the region size, in instructions, at which migration
	// decisions are taken. Must be a multiple of sim.RegionSize.
	Granularity int
	// TransferNs is the register-state transfer latency per migration; the
	// paper's core-to-core latency is the natural floor. Zero selects 10ns
	// (a drained pipeline handing ~64 registers over a 1ns-away bus is
	// charitably fast for a migrational design). A negative value selects
	// an explicitly free transfer — the zero value keeps the default, so
	// the free-migration bound needs its own encoding.
	TransferNs float64
	// DrainPenaltyInstrs approximates the pipeline drain + refill cost in
	// instructions of lost issue on each side of a migration. Zero selects
	// 100 (roughly one window of an average configuration); a negative
	// value selects an explicitly free drain, as with TransferNs.
	DrainPenaltyInstrs int
	// WarmupNs charges an explicit destination warm-up interval per
	// migration, the migrational counterpart of the contest layer's
	// state-transfer knobs (contest.Options.ReforkWarmupNs). Zero charges
	// nothing, preserving existing results bit-for-bit.
	WarmupNs float64
	// WarmCaches, if true, pretends the destination core's caches are warm
	// (an optimistic bound isolating the transfer/drain costs).
	WarmCaches bool
}

func (o *Options) applyDefaults() {
	switch {
	case o.TransferNs == 0:
		o.TransferNs = 10
	case o.TransferNs < 0:
		o.TransferNs = 0
	}
	switch {
	case o.DrainPenaltyInstrs == 0:
		o.DrainPenaltyInstrs = 100
	case o.DrainPenaltyInstrs < 0:
		o.DrainPenaltyInstrs = 0
	}
}

// Result summarizes a migration simulation.
type Result struct {
	// Time is the total execution time including migration costs.
	Time ticks.Duration
	// Insts is the trace length.
	Insts int64
	// Migrations counts core switches.
	Migrations int
	// Granularity echoes the decision granularity.
	Granularity int
}

// IPT reports instructions per nanosecond.
func (r Result) IPT() float64 {
	ns := r.Time.Nanoseconds()
	if ns == 0 {
		return 0
	}
	return float64(r.Insts) / ns
}

// OracleMigration simulates oracle-policy migration between two cores at
// the given granularity, using the cores' per-region logs from stand-alone
// runs.
//
// Cold-cache effects are modelled from the runs themselves: the per-region
// times of each core already include that core's warm-cache behaviour, so a
// cold destination is charged an additional penalty of the region time
// difference bounded by the memory latency — concretely, each post-switch
// region runs at the *slower* of the two cores' paces (the destination has
// neither the source's cache state nor its own warm state) unless
// WarmCaches is set.
func OracleMigration(a, b sim.Result, cfgA, cfgB config.CoreConfig, opts Options) (Result, error) {
	opts.applyDefaults()
	if opts.Granularity < sim.RegionSize || opts.Granularity%sim.RegionSize != 0 {
		return Result{}, fmt.Errorf("migrate: granularity %d not a multiple of the %d-instruction region size",
			opts.Granularity, sim.RegionSize)
	}
	if len(a.Regions) == 0 || len(b.Regions) == 0 {
		return Result{}, fmt.Errorf("migrate: runs lack region logs")
	}
	if len(a.Regions) != len(b.Regions) {
		return Result{}, fmt.Errorf("migrate: region logs differ: %d vs %d", len(a.Regions), len(b.Regions))
	}
	if opts.WarmupNs < 0 {
		return Result{}, fmt.Errorf("migrate: negative warm-up %gns", opts.WarmupNs)
	}
	da := switching.RegionTimes(a.Regions)
	db := switching.RegionTimes(b.Regions)
	step := opts.Granularity / sim.RegionSize

	transfer := ticks.FromNanoseconds(opts.TransferNs)
	warmup := ticks.FromNanoseconds(opts.WarmupNs)
	var total ticks.Duration
	migrations := 0
	onA := true // start wherever the first region is faster
	first := true
	for i := 0; i < len(da); i += step {
		end := i + step
		if end > len(da) {
			end = len(da)
		}
		var ta, tb ticks.Duration
		for j := i; j < end; j++ {
			ta += da[j]
			tb += db[j]
		}
		wantA := ta <= tb
		switched := false
		if first {
			onA = wantA
			first = false
		} else if wantA != onA {
			onA = wantA
			migrations++
			switched = true
			total += transfer + warmup
			// Drain/refill: the cost of DrainPenaltyInstrs at the slower of
			// the two cores' paces in this region. The window's instruction
			// count is exact even for a short trailing window, because the
			// region log only ever covers full regions.
			worst := ta
			if tb > worst {
				worst = tb
			}
			insts := (end - i) * sim.RegionSize
			total += ticks.Duration(int64(worst) * int64(opts.DrainPenaltyInstrs) / int64(insts))
		}
		regionTime := ta
		if !onA {
			regionTime = tb
		}
		if switched && !opts.WarmCaches {
			// Cold destination caches: the first region after a migration
			// runs at the slower core's pace.
			if ta > regionTime {
				regionTime = ta
			}
			if tb > regionTime {
				regionTime = tb
			}
		}
		total += regionTime
	}
	return Result{
		Time: total,
		// The region log only covers full regions, so a trailing partial
		// region contributes no time to total; counting its instructions
		// anyway would overstate IPT on traces whose length is not a
		// multiple of the region size.
		Insts:       int64(len(da)) * int64(sim.RegionSize),
		Migrations:  migrations,
		Granularity: opts.Granularity,
	}, nil
}

// Sweep evaluates oracle migration between two palette cores at several
// granularities, returning results in ascending granularity order.
func Sweep(cfgA, cfgB config.CoreConfig, tr *trace.Trace, granularities []int, opts Options) ([]Result, error) {
	ra, err := sim.Run(cfgA, tr, sim.RunOptions{LogRegions: true})
	if err != nil {
		return nil, err
	}
	rb, err := sim.Run(cfgB, tr, sim.RunOptions{LogRegions: true})
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(granularities))
	for _, g := range granularities {
		o := opts
		o.Granularity = g
		r, err := OracleMigration(ra, rb, cfgA, cfgB, o)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
