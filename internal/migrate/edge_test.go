package migrate

// Edge cases of the migrational baseline: granularity validation, the
// whole-trace granularity (which must degenerate to "pick the faster core,
// zero migrations"), partial final decision chunks, decision ties at a
// region boundary, and the warm-cache optimistic bound.

import (
	"testing"

	"archcontest/internal/config"
	"archcontest/internal/sim"
	"archcontest/internal/ticks"
	"archcontest/internal/workload"
)

func resultFrom(d []ticks.Duration) sim.Result {
	regions := make([]ticks.Time, len(d))
	var t ticks.Time
	for i, dd := range d {
		t = t.Add(dd)
		regions[i] = t
	}
	return sim.Result{
		Insts:   int64(len(d) * sim.RegionSize),
		Time:    regions[len(regions)-1],
		Regions: regions,
	}
}

func durs(vs ...int64) []ticks.Duration {
	out := make([]ticks.Duration, len(vs))
	for i, v := range vs {
		out[i] = ticks.Duration(v)
	}
	return out
}

var cfgA, cfgB = config.MustPaletteCore("gcc"), config.MustPaletteCore("mcf")

func TestGranularityValidation(t *testing.T) {
	a := resultFrom(durs(100, 100))
	b := resultFrom(durs(100, 100))
	for _, g := range []int{0, sim.RegionSize - 1, sim.RegionSize + 1, sim.RegionSize*3 - 1, -sim.RegionSize} {
		if _, err := OracleMigration(a, b, cfgA, cfgB, Options{Granularity: g}); err == nil {
			t.Errorf("granularity %d accepted", g)
		}
	}
}

func TestRegionLogValidation(t *testing.T) {
	a := resultFrom(durs(100, 100))
	opts := Options{Granularity: sim.RegionSize}
	if _, err := OracleMigration(a, sim.Result{}, cfgA, cfgB, opts); err == nil {
		t.Error("missing region log accepted")
	}
	if _, err := OracleMigration(a, resultFrom(durs(100)), cfgA, cfgB, opts); err == nil {
		t.Error("mismatched region logs accepted")
	}
}

func TestWholeTraceGranularityNoMigrations(t *testing.T) {
	// One decision covering the entire trace: start on the faster core,
	// never migrate, pay no costs — the result is that core's own time.
	a := resultFrom(durs(100, 900, 100, 900)) // total 2000
	b := resultFrom(durs(400, 400, 400, 400)) // total 1600
	r, err := OracleMigration(a, b, cfgA, cfgB, Options{Granularity: 8 * sim.RegionSize})
	if err != nil {
		t.Fatal(err)
	}
	if r.Migrations != 0 {
		t.Fatalf("%d migrations at whole-trace granularity", r.Migrations)
	}
	if r.Time != 1600 {
		t.Fatalf("time %d, want the faster core's 1600", r.Time)
	}
}

func TestPartialFinalChunk(t *testing.T) {
	// 5 regions at a 2-region granularity: chunks [0,2), [2,4), [4,5) —
	// the final partial chunk must be scored, not dropped.
	a := resultFrom(durs(10, 10, 10, 10, 1000))
	b := resultFrom(durs(1000, 1000, 1000, 1000, 10))
	r, err := OracleMigration(a, b, cfgA, cfgB, Options{
		Granularity: 2 * sim.RegionSize,
		WarmCaches:  true,
		TransferNs:  0.01, // 1 tick, to keep the arithmetic visible
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Migrations != 1 {
		t.Fatalf("%d migrations, want 1 (a->b for the final chunk)", r.Migrations)
	}
	// 4 regions on a (40) + final region on b (10) + transfer (1) + drain
	// (slower pace 1000 ticks for 20 insts * 100 drain insts / 20 = 5000).
	if want := ticks.Duration(40 + 10 + 1 + 5000); r.Time != want {
		t.Fatalf("time %d, want %d", r.Time, want)
	}
}

func TestTieStaysPut(t *testing.T) {
	// Equal region times at every decision boundary: wantA stays true, so
	// no migration is ever taken — switching on a tie would pay costs for
	// nothing.
	d := durs(100, 200, 100, 200)
	a, b := resultFrom(d), resultFrom(d)
	r, err := OracleMigration(a, b, cfgA, cfgB, Options{Granularity: sim.RegionSize})
	if err != nil {
		t.Fatal(err)
	}
	if r.Migrations != 0 {
		t.Fatalf("%d migrations between identical cores", r.Migrations)
	}
	if r.Time != 600 {
		t.Fatalf("time %d, want 600", r.Time)
	}
}

func TestWarmCachesIsOptimisticBound(t *testing.T) {
	// Alternating phases force migrations; warm caches must never be slower
	// than cold.
	a := resultFrom(durs(10, 500, 10, 500, 10, 500))
	b := resultFrom(durs(500, 10, 500, 10, 500, 10))
	cold, err := OracleMigration(a, b, cfgA, cfgB, Options{Granularity: sim.RegionSize})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := OracleMigration(a, b, cfgA, cfgB, Options{Granularity: sim.RegionSize, WarmCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Migrations != warm.Migrations {
		t.Fatalf("migration counts differ: %d vs %d", cold.Migrations, warm.Migrations)
	}
	if cold.Migrations != 5 {
		t.Fatalf("%d migrations, want 5", cold.Migrations)
	}
	if warm.Time > cold.Time {
		t.Fatalf("warm %d slower than cold %d", warm.Time, cold.Time)
	}
}

func TestMigrationAtSettlementBoundary(t *testing.T) {
	// The phase flips exactly at a decision boundary: migration happens at
	// the boundary and each chunk runs on its better core; the cold first
	// chunk after the switch runs at the slower pace.
	a := resultFrom(durs(10, 10, 500, 500))
	b := resultFrom(durs(500, 500, 10, 10))
	r, err := OracleMigration(a, b, cfgA, cfgB, Options{
		Granularity: 2 * sim.RegionSize,
		TransferNs:  0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Migrations != 1 {
		t.Fatalf("%d migrations, want 1", r.Migrations)
	}
	// Chunk 1 on a: 20. Switch: transfer 1 + drain (1000 ticks / 40 insts *
	// 100 = 2500). Chunk 2 cold: slower pace 1000 instead of b's 20.
	if want := ticks.Duration(20 + 1 + 2500 + 1000); r.Time != want {
		t.Fatalf("time %d, want %d", r.Time, want)
	}
}

func TestSweepGranularityOrderAndMonotoneCosts(t *testing.T) {
	// End-to-end sweep on real runs: results echo the requested
	// granularities, and migration counts weakly decrease as granularity
	// grows.
	tr := workload.MustGenerate("gcc", 10_000)
	grans := []int{20, 40, 80, 160, 320}
	rs, err := Sweep(cfgA, cfgB, tr, grans, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(grans) {
		t.Fatalf("%d results", len(rs))
	}
	for i, r := range rs {
		if r.Granularity != grans[i] {
			t.Fatalf("result %d at granularity %d", i, r.Granularity)
		}
		if i > 0 && rs[i].Migrations > rs[i-1].Migrations*2 {
			// Coarser decisions cannot multiply migration opportunities:
			// each doubling at most halves the decision points.
			t.Fatalf("migrations grew from %d to %d when coarsening", rs[i-1].Migrations, rs[i].Migrations)
		}
	}
}
