package migrate

import (
	"testing"

	"archcontest/internal/config"
	"archcontest/internal/sim"
	"archcontest/internal/ticks"
	"archcontest/internal/workload"
)

func regionRun(times []ticks.Time, insts int64) sim.Result {
	return sim.Result{Regions: times, Time: times[len(times)-1], Insts: insts}
}

func TestOracleMigrationBasics(t *testing.T) {
	// Two cores alternating strengths every region (20 insts).
	a := regionRun([]ticks.Time{100, 400, 500, 800}, 80) // 100,300,100,300
	b := regionRun([]ticks.Time{300, 400, 700, 800}, 80) // 300,100,300,100
	cfg := config.MustPaletteCore("gcc")

	r, err := OracleMigration(a, b, cfg, cfg, Options{Granularity: 20, TransferNs: 1, DrainPenaltyInstrs: 20, WarmCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Migrations != 3 {
		t.Errorf("migrations %d, want 3 (alternating every region)", r.Migrations)
	}
	// Ideal region times 100 each = 400 plus 3 transfers (100 ticks each)
	// plus 3 drain penalties of 20 insts at the worst pace (300/20 insts).
	want := ticks.Duration(400 + 3*100 + 3*300)
	if r.Time != want {
		t.Errorf("time %d, want %d", r.Time, want)
	}
}

func TestColdCachesHurt(t *testing.T) {
	a := regionRun([]ticks.Time{100, 400, 500, 800}, 80)
	b := regionRun([]ticks.Time{300, 400, 700, 800}, 80)
	cfg := config.MustPaletteCore("gcc")
	warm, err := OracleMigration(a, b, cfg, cfg, Options{Granularity: 20, WarmCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := OracleMigration(a, b, cfg, cfg, Options{Granularity: 20})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Time <= warm.Time {
		t.Errorf("cold %d not slower than warm %d", cold.Time, warm.Time)
	}
}

func TestOracleMigrationRejects(t *testing.T) {
	a := regionRun([]ticks.Time{100}, 20)
	b := regionRun([]ticks.Time{100, 200}, 40)
	cfg := config.MustPaletteCore("gcc")
	if _, err := OracleMigration(a, b, cfg, cfg, Options{Granularity: 20}); err == nil {
		t.Error("mismatched logs accepted")
	}
	if _, err := OracleMigration(a, a, cfg, cfg, Options{Granularity: 30}); err == nil {
		t.Error("non-multiple granularity accepted")
	}
	if _, err := OracleMigration(sim.Result{}, a, cfg, cfg, Options{Granularity: 20}); err == nil {
		t.Error("missing region log accepted")
	}
}

// TestExplicitZeroCosts locks the negative-selects-zero encoding: with
// explicitly free transfer and drain and warm caches, the oracle migration
// time is exactly the sum of the per-region minima — on the old defaulting
// rule, -1 slipped through applyDefaults and *subtracted* time per
// migration.
func TestExplicitZeroCosts(t *testing.T) {
	a := regionRun([]ticks.Time{100, 400, 500, 800}, 80) // 100,300,100,300
	b := regionRun([]ticks.Time{300, 400, 700, 800}, 80) // 300,100,300,100
	cfg := config.MustPaletteCore("gcc")
	r, err := OracleMigration(a, b, cfg, cfg, Options{
		Granularity: 20, TransferNs: -1, DrainPenaltyInstrs: -1, WarmCaches: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Migrations != 3 {
		t.Fatalf("migrations %d, want 3", r.Migrations)
	}
	if want := ticks.Duration(4 * 100); r.Time != want {
		t.Errorf("free-migration oracle time %d, want %d", r.Time, want)
	}
}

// TestInstsCoverLoggedRegionsOnly locks the accounting fix for traces whose
// length is not a multiple of the region size: the region log covers only
// full regions, so Insts (and hence IPT) must match the covered span, not
// the raw trace length.
func TestInstsCoverLoggedRegionsOnly(t *testing.T) {
	// 50 instructions: two full 20-instruction regions logged, 10 trailing
	// instructions unlogged and untimed.
	a := regionRun([]ticks.Time{100, 200}, 50)
	b := regionRun([]ticks.Time{150, 250}, 50)
	cfg := config.MustPaletteCore("gcc")
	r, err := OracleMigration(a, b, cfg, cfg, Options{Granularity: 20, WarmCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts != 40 {
		t.Errorf("insts %d, want the 40 covered by the region log", r.Insts)
	}
}

func TestWarmupChargedPerMigration(t *testing.T) {
	a := regionRun([]ticks.Time{100, 400, 500, 800}, 80)
	b := regionRun([]ticks.Time{300, 400, 700, 800}, 80)
	cfg := config.MustPaletteCore("gcc")
	opts := Options{Granularity: 20, TransferNs: -1, DrainPenaltyInstrs: -1, WarmCaches: true}
	base, err := OracleMigration(a, b, cfg, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.WarmupNs = 2
	warm, err := OracleMigration(a, b, cfg, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	charge := ticks.FromNanoseconds(2) * ticks.Duration(base.Migrations)
	if warm.Time != base.Time+charge {
		t.Errorf("warm-up time %d, want %d + %d", warm.Time, base.Time, charge)
	}
	opts.WarmupNs = -1
	if _, err := OracleMigration(a, b, cfg, cfg, opts); err == nil {
		t.Error("negative warm-up accepted")
	}
}

func TestSweepAgainstRealRuns(t *testing.T) {
	tr := workload.MustGenerate("twolf", 30000)
	a := config.MustPaletteCore("twolf")
	b := config.MustPaletteCore("vpr")
	res, err := Sweep(a, b, tr, []int{20, 320, 5120}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res {
		if r.IPT() <= 0 {
			t.Errorf("granularity %d: IPT %g", r.Granularity, r.IPT())
		}
	}
	// The migrational pathology: at fine granularity the overheads are paid
	// constantly, so fine-grain migration must not beat coarse by the kind
	// of margin the oracle (overhead-free) switching enjoys.
	fine, coarse := res[0], res[2]
	if fine.Migrations <= coarse.Migrations {
		t.Errorf("fine granularity migrated %d times vs coarse %d", fine.Migrations, coarse.Migrations)
	}
}
