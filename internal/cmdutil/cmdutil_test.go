package cmdutil

import (
	"flag"
	"io"
	"path/filepath"
	"testing"
)

// Regression: CacheFlags used to register on the global default FlagSet, so
// a second call — two drivers linked into one binary, or a test importing
// the flags twice — panicked with "flag redefined". With an explicit
// FlagSet, any number of independent registrations coexist.
func TestCacheFlagsIndependentFlagSets(t *testing.T) {
	for i := 0; i < 3; i++ {
		fs := flag.NewFlagSet("driver", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		open := CacheFlags(fs)
		if fs.Lookup("cache.dir") == nil || fs.Lookup("cache.off") == nil {
			t.Fatalf("call %d: cache flags not registered", i)
		}
		if open == nil {
			t.Fatalf("call %d: nil opener", i)
		}
	}
}

func TestCacheFlagsOpener(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")

	fs := flag.NewFlagSet("driver", flag.ContinueOnError)
	open := CacheFlags(fs)
	if err := fs.Parse([]string{"-cache.dir", dir}); err != nil {
		t.Fatal(err)
	}
	c := open()
	if c == nil {
		t.Fatal("opener returned nil with a writable directory")
	}
	if c.Dir() != dir {
		t.Errorf("cache dir %q, want %q", c.Dir(), dir)
	}
	PrintCacheStats(c) // zero traffic: must not print or panic
	PrintCacheStats(nil)

	fs = flag.NewFlagSet("driver", flag.ContinueOnError)
	open = CacheFlags(fs)
	if err := fs.Parse([]string{"-cache.off"}); err != nil {
		t.Fatal(err)
	}
	if open() != nil {
		t.Error("opener returned a cache despite -cache.off")
	}
}

// -cache.mem must reach the opened cache's in-memory LRU tier: with the
// tier capped at one entry, looking two stored entries back up cannot be
// served from memory alone.
func TestCacheFlagsMemEntries(t *testing.T) {
	fs := flag.NewFlagSet("driver", flag.ContinueOnError)
	open := CacheFlags(fs)
	if err := fs.Parse([]string{"-cache.dir", t.TempDir(), "-cache.mem", "1"}); err != nil {
		t.Fatal(err)
	}
	c := open()
	if c == nil {
		t.Fatal("opener returned nil")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	var v int
	if !c.Get("a", &v) || !c.Get("b", &v) {
		t.Fatal("stored entries not found")
	}
	st := c.Stats()
	if st.Hits != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MemHits >= 2 {
		t.Errorf("both hits served from a 1-entry memory tier: %+v", st)
	}
}

// CacheFlags(nil) must fall back to the global default FlagSet — the
// behaviour every cmd/ driver relies on. Registered at most once per
// process, so this is the only test touching flag.CommandLine.
func TestCacheFlagsDefaultsToCommandLine(t *testing.T) {
	if flag.CommandLine.Lookup("cache.dir") != nil {
		t.Skip("cache flags already on flag.CommandLine")
	}
	_ = CacheFlags(nil)
	if flag.CommandLine.Lookup("cache.dir") == nil {
		t.Error("CacheFlags(nil) did not register on flag.CommandLine")
	}
}

func TestObsFlags(t *testing.T) {
	fs := flag.NewFlagSet("driver", flag.ContinueOnError)
	o := ObsFlags(fs)
	if o.Wanted() {
		t.Error("zero ObsSet reports Wanted")
	}
	err := fs.Parse([]string{"-timeline", "t.json", "-metrics", "m.json", "-pprof", "localhost:0"})
	if err != nil {
		t.Fatal(err)
	}
	if o.Timeline != "t.json" || o.Metrics != "m.json" || o.Pprof != "localhost:0" {
		t.Errorf("parsed %+v", o)
	}
	if !o.Wanted() {
		t.Error("populated ObsSet reports not Wanted")
	}

	// A second driver registering the same flags on its own set must not
	// collide (the same bug class as CacheFlags).
	fs2 := flag.NewFlagSet("other", flag.ContinueOnError)
	if o2 := ObsFlags(fs2); o2 == nil {
		t.Fatal("second ObsFlags registration failed")
	}
}

func TestObsSetWriters(t *testing.T) {
	var o ObsSet
	if err := o.WriteMetricsJSON(map[string]int{"x": 1}); err != nil {
		t.Errorf("unset -metrics must be a no-op, got %v", err)
	}
	if err := o.WriteTimeline(func(io.Writer) error { t.Fatal("writer called"); return nil }); err != nil {
		t.Errorf("unset -timeline must be a no-op, got %v", err)
	}
	o.Metrics = filepath.Join(t.TempDir(), "m.json")
	o.Timeline = filepath.Join(t.TempDir(), "t.json")
	if err := o.WriteMetricsJSON(map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	wrote := false
	if err := o.WriteTimeline(func(w io.Writer) error {
		wrote = true
		_, err := w.Write([]byte("[]"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !wrote {
		t.Error("timeline writer not invoked")
	}
}

func TestPublishIdempotent(t *testing.T) {
	Publish("cmdutil.test.var", func() any { return 1 })
	Publish("cmdutil.test.var", func() any { return 2 }) // must not panic
}
