// Package cmdutil holds the few flag conventions shared by every cmd/
// driver, so `-cache.dir`/`-cache.off` behave identically across figures,
// matrix, explore, contest, and bench.
package cmdutil

import (
	"flag"
	"fmt"
	"log"
	"os"

	"archcontest/internal/resultcache"
)

// CacheFlags registers -cache.dir and -cache.off on the default FlagSet
// and returns an opener to call after flag.Parse. The opener returns nil
// (caching disabled) when -cache.off is set or the directory cannot be
// created; a nil *resultcache.Cache is a valid always-miss cache, so
// callers pass it through unconditionally.
func CacheFlags() func() *resultcache.Cache {
	dir := flag.String("cache.dir", resultcache.DefaultDir, "persistent result cache directory")
	off := flag.Bool("cache.off", false, "disable the persistent result cache")
	return func() *resultcache.Cache {
		if *off {
			return nil
		}
		c, err := resultcache.Open(*dir, resultcache.Options{})
		if err != nil {
			log.Printf("result cache disabled: %v", err)
			return nil
		}
		return c
	}
}

// PrintCacheStats reports a cache's traffic on stderr (no-op for nil).
func PrintCacheStats(c *resultcache.Cache) {
	if c == nil {
		return
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "result cache %s: %d hits (%d mem), %d misses, %d stored, %d corrupt\n",
		c.Dir(), st.Hits, st.MemHits, st.Misses, st.Stores, st.Corrupt)
}
