// Package cmdutil holds the flag conventions shared by every cmd/ driver,
// so `-cache.dir`/`-cache.off` and the observability flags
// `-timeline`/`-metrics`/`-pprof` behave identically across figures,
// matrix, explore, contest, and bench.
package cmdutil

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"archcontest/internal/resultcache"
)

// SignalContext returns a context cancelled on SIGINT/SIGTERM, the shared
// driver convention: the first signal requests a cooperative stop (the
// engines exit at their next context poll, caches and artifact files stay
// whole), a second signal kills the process through Go's default handler
// because stop() has already restored it.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	context.AfterFunc(ctx, func() { stop() }) // restore default handling once cancelled
	return ctx, stop
}

// WriteFileAtomic writes data to path through a temp file in the same
// directory plus an atomic rename, so an interrupted writer never leaves a
// truncated artifact behind: readers observe either the old content or the
// complete new content, nothing in between.
func WriteFileAtomic(path string, data []byte, perm fs.FileMode) error {
	return writeAtomic(path, perm, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// WriteAtomic streams content through write into a temp file in path's
// directory and atomically renames it over path on success. On any error
// (including a write aborted mid-stream by cancellation) the temp file is
// removed and path is untouched.
func WriteAtomic(path string, write func(io.Writer) error) error {
	return writeAtomic(path, 0o644, func(f *os.File) error { return write(f) })
}

func writeAtomic(path string, perm fs.FileMode, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after a successful rename
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Chmod(perm); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// CacheFlags registers -cache.dir, -cache.off and -cache.mem on fs
// (flag.CommandLine when nil) and returns an opener to call after parsing.
// The opener returns nil (caching disabled) when -cache.off is set or the
// directory cannot be created; a nil *resultcache.Cache is a valid
// always-miss cache, so callers pass it through unconditionally.
//
// Taking the FlagSet explicitly is what makes the function reusable: the
// old form registered on the global default set, so a second call — two
// drivers linked into one test binary, or a test exercising the flags
// twice — panicked on duplicate flag registration.
func CacheFlags(fs *flag.FlagSet) func() *resultcache.Cache {
	if fs == nil {
		fs = flag.CommandLine
	}
	dir := fs.String("cache.dir", resultcache.DefaultDir, "persistent result cache directory")
	off := fs.Bool("cache.off", false, "disable the persistent result cache")
	mem := fs.Int("cache.mem", 0, "in-memory cache tier size in entries (0 = default); campaign-scale runs touch more design points than the default LRU holds")
	remote := fs.String("cache.remote", "", "remote blob store base URL (a cachesrv or a serve node with -cache.serve); overrides -cache.dir")
	return func() *resultcache.Cache {
		if *off {
			return nil
		}
		if *remote != "" {
			return resultcache.New(resultcache.NewHTTPStore(*remote, nil), resultcache.Options{MemEntries: *mem})
		}
		c, err := resultcache.Open(*dir, resultcache.Options{MemEntries: *mem})
		if err != nil {
			log.Printf("result cache disabled: %v", err)
			return nil
		}
		return c
	}
}

// PrintCacheStats reports a cache's traffic on stderr (no-op for nil).
func PrintCacheStats(c *resultcache.Cache) {
	if c == nil {
		return
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "result cache %s: %d hits (%d mem), %d misses, %d stored, %d corrupt\n",
		c.Dir(), st.Hits, st.MemHits, st.Misses, st.Stores, st.Corrupt)
}

// ObsSet holds the observability flag values shared by every driver.
type ObsSet struct {
	// Timeline is the -timeline path: a Chrome trace_event JSON of the run
	// (cmd/contest, cmd/bench) or of the campaign's artifact schedule
	// (cmd/figures, cmd/matrix, cmd/explore), loadable in chrome://tracing
	// and Perfetto.
	Timeline string
	// Metrics is the -metrics path: the run's aggregated observability
	// metrics, or the campaign's self-observability counters, as JSON.
	Metrics string
	// Pprof is the -pprof listen address; empty leaves the listener off.
	Pprof string
}

// ObsFlags registers -timeline, -metrics and -pprof on fs (flag.CommandLine
// when nil) and returns the value set to read after parsing.
func ObsFlags(fs *flag.FlagSet) *ObsSet {
	if fs == nil {
		fs = flag.CommandLine
	}
	o := &ObsSet{}
	fs.StringVar(&o.Timeline, "timeline", "", "write a Chrome trace_event timeline to this path")
	fs.StringVar(&o.Metrics, "metrics", "", "write observability metrics JSON to this path")
	fs.StringVar(&o.Pprof, "pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	return o
}

// Wanted reports whether any observability output was requested.
func (o *ObsSet) Wanted() bool {
	return o.Timeline != "" || o.Metrics != ""
}

// StartPprof starts the -pprof listener in the background (no-op when the
// flag is unset). The default mux serves /debug/pprof (profiles) and
// /debug/vars (every expvar published with Publish).
func (o *ObsSet) StartPprof() {
	if o.Pprof == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(o.Pprof, nil); err != nil {
			log.Printf("pprof listener %s: %v", o.Pprof, err)
		}
	}()
	log.Printf("pprof/expvar listening on http://%s/debug/pprof and /debug/vars", o.Pprof)
}

// WriteMetricsJSON writes v as indented JSON to the -metrics path (no-op
// when unset).
func (o *ObsSet) WriteMetricsJSON(v any) error {
	if o.Metrics == "" {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(o.Metrics, append(data, '\n'), 0o644)
}

// WriteTimeline streams a timeline through write to the -timeline path
// (no-op when unset). The write is atomic: an interrupt mid-stream leaves
// no partial timeline file.
func (o *ObsSet) WriteTimeline(write func(io.Writer) error) error {
	if o.Timeline == "" {
		return nil
	}
	return WriteAtomic(o.Timeline, write)
}

// Publish registers an expvar under name computing its value from f on
// every read. Republishing an existing name is a no-op (expvar itself
// panics on duplicates), so drivers may call it unconditionally.
func Publish(name string, f func() any) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(f))
}
