package cmdutil

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFileAtomic(path, []byte("first\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first\n" {
		t.Fatalf("content %q", got)
	}
	if err := WriteFileAtomic(path, []byte("second\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second\n" {
		t.Fatalf("content after overwrite %q", got)
	}
	assertNoTempResidue(t, dir)
}

// TestWriteAtomicAbort: a writer that fails mid-stream leaves the previous
// content untouched and no temp file behind — the property that makes
// Ctrl-C during an artifact write safe.
func TestWriteAtomicAbort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFileAtomic(path, []byte("intact\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("cancelled mid-stream")
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "intact\n" {
		t.Fatalf("aborted write corrupted the file: %q", got)
	}
	assertNoTempResidue(t, dir)
}

func TestWriteAtomicNewFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.json")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "{}\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Errorf("mode %v, want 0644", info.Mode().Perm())
	}
	assertNoTempResidue(t, dir)
}

func assertNoTempResidue(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if name := e.Name(); len(name) > 0 && name[0] == '.' {
			t.Errorf("temp residue left behind: %s", name)
		}
	}
}
