package power

import (
	"testing"

	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/sim"
	"archcontest/internal/workload"
)

func TestSingleRunEnergy(t *testing.T) {
	tr := workload.MustGenerate("gcc", 20000)
	cfg := config.MustPaletteCore("gcc")
	r := sim.MustRun(cfg, tr, sim.RunOptions{})
	e := SingleRun(cfg, r)
	if e.DynamicNJ <= 0 || e.StaticNJ <= 0 {
		t.Fatalf("energy %+v", e)
	}
	if e.AvgPowerW() < 0.5 || e.AvgPowerW() > 200 {
		t.Errorf("average power %.1fW implausible for a 70nm core", e.AvgPowerW())
	}
	if e.EDP() <= 0 {
		t.Error("EDP not positive")
	}
	if (Estimate{}).AvgPowerW() != 0 {
		t.Error("zero estimate power should be 0")
	}
}

func TestWiderCoreBurnsMore(t *testing.T) {
	tr := workload.MustGenerate("crafty", 20000)
	narrow := config.MustPaletteCore("gcc")  // 4-wide
	wide := config.MustPaletteCore("crafty") // 8-wide
	rn := sim.MustRun(narrow, tr, sim.RunOptions{})
	rw := sim.MustRun(wide, tr, sim.RunOptions{})
	en := SingleRun(narrow, rn)
	ew := SingleRun(wide, rw)
	if ew.DynamicNJ <= en.DynamicNJ {
		t.Errorf("8-wide dynamic %.0fnJ not above 4-wide %.0fnJ", ew.DynamicNJ, en.DynamicNJ)
	}
}

func TestContestCostsMoreEnergyThanSingle(t *testing.T) {
	tr := workload.MustGenerate("twolf", 30000)
	a := config.MustPaletteCore("twolf")
	b := config.MustPaletteCore("vpr")
	single := sim.MustRun(a, tr, sim.RunOptions{WritePolicy: cache.WriteThrough})
	es := SingleRun(a, single)
	cres, err := contest.Run([]config.CoreConfig{a, b}, tr, contest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ec := ContestRun([]config.CoreConfig{a, b}, cres)
	// Redundant execution: roughly double the energy, certainly more.
	if ec.TotalNJ() < 1.3*es.TotalNJ() {
		t.Errorf("contest energy %.0fnJ not clearly above single %.0fnJ", ec.TotalNJ(), es.TotalNJ())
	}
	if ec.TotalNJ() > 5*es.TotalNJ() {
		t.Errorf("contest energy %.0fnJ implausibly high vs single %.0fnJ", ec.TotalNJ(), es.TotalNJ())
	}
}

// Regression: ContestRun used to index r.PerCore[i] for every entry of
// cfgs with no length guard, so a configuration slice longer than the
// result's per-core stats (killed/reforked core accounting, or a caller
// passing a superset of the contest's cores) panicked with
// index-out-of-range. Mismatched slices must clamp to the common prefix.
func TestContestRunMismatchedSlices(t *testing.T) {
	tr := workload.MustGenerate("twolf", 20000)
	a := config.MustPaletteCore("twolf")
	b := config.MustPaletteCore("vpr")
	c := config.MustPaletteCore("gcc")
	cfgs := []config.CoreConfig{a, b}
	cres, err := contest.Run(cfgs, tr, contest.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// More configurations than per-core stats: must not panic, and the
	// unmatched configuration must contribute nothing.
	over := ContestRun([]config.CoreConfig{a, b, c}, cres)
	want := ContestRun(cfgs, cres)
	if over != want {
		t.Errorf("superset estimate %+v differs from matched estimate %+v", over, want)
	}

	// Fewer configurations than per-core stats: only the listed cores are
	// accounted, again without panicking.
	sub := ContestRun(cfgs[:1], cres)
	if sub.DynamicNJ <= 0 || sub.DynamicNJ >= want.DynamicNJ {
		t.Errorf("subset dynamic %.0fnJ not strictly inside (0, %.0fnJ)", sub.DynamicNJ, want.DynamicNJ)
	}
	if sub.TimeNs != want.TimeNs {
		t.Errorf("subset time %.1fns, want %.1fns", sub.TimeNs, want.TimeNs)
	}

	// Degenerate inputs stay total-function: no stats at all.
	empty := ContestRun(cfgs, contest.Result{Time: cres.Time})
	if empty.DynamicNJ != 0 || empty.StaticNJ != 0 {
		t.Errorf("no-stats estimate %+v, want zero energy", empty)
	}
}

func TestInjectionSavesExecutionEnergy(t *testing.T) {
	// A trailing core's injected instructions skip execution and cache
	// access, so its dynamic energy must be below a stand-alone run's.
	tr := workload.MustGenerate("crafty", 30000)
	fast := config.MustPaletteCore("crafty")
	slow := config.MustPaletteCore("bzip")
	cres, err := contest.Run([]config.CoreConfig{fast, slow}, tr, contest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	standalone := sim.MustRun(slow, tr, sim.RunOptions{WritePolicy: cache.WriteThrough})
	if cres.PerCore[1].Injected == 0 {
		t.Skip("no injection in this pairing")
	}
	eContest := CoreEnergy(slow, cres.PerCore[1], cres.Time.Nanoseconds())
	eAlone := SingleRun(slow, standalone)
	if eContest.DynamicNJ >= eAlone.DynamicNJ {
		t.Errorf("trailing dynamic %.0fnJ not below stand-alone %.0fnJ (injected %d)",
			eContest.DynamicNJ, eAlone.DynamicNJ, cres.PerCore[1].Injected)
	}
}
