// Package power estimates the energy cost of single-core and contested
// execution with an event-based model in the spirit of Wattch-class 70nm
// estimates.
//
// Contesting is redundant execution: every active core fetches, renames,
// and retires the whole instruction stream, so an N-way contest costs
// roughly N times the pipeline energy for a median ~15% speedup. The paper
// argues this is acceptable because contesting can be engaged on a
// need-to-have basis — this package quantifies exactly that trade-off
// (energy, average power, and energy-delay product), so the "robustness in
// how resources are employed" claim is measurable instead of rhetorical.
package power

import (
	"math"

	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/pipeline"
	"archcontest/internal/sim"
)

// Event energies in nanojoules, loosely calibrated to 70nm-era published
// numbers (Wattch/CACTI scale): a few tens of pJ per pipeline traversal on
// a narrow core, cache accesses growing with the square root of capacity,
// and ~10nJ-class DRAM accesses. Absolute accuracy is not the point; the
// relative cost of redundant execution is.
const (
	basePipelinePJ  = 18.0 // fetch+decode+rename+retire per instruction, 1-wide baseline
	perWidthPJ      = 6.0  // added pipeline energy per unit of superscalar width
	windowPJPerK    = 14.0 // ROB+IQ CAM energy per instruction per 1K window entries
	executeALUPJ    = 4.0
	executeMulPJ    = 12.0
	executeMemPJ    = 6.0 // AGU + LSQ search
	mispredictPJ    = 120.0
	memAccessPJ     = 8000.0 // one DRAM access
	leakageWPerMB   = 0.55   // static power per MB of SRAM
	leakageCoreW    = 0.9    // static power of a 1-wide core's logic
	leakagePerWidth = 0.45   // additional static power per width unit
)

// cacheAccessPJ grows with the square root of capacity (CACTI-flavoured).
func cacheAccessPJ(c cache.Config) float64 {
	kb := float64(c.SizeBytes()) / 1024
	return 2.0 * math.Sqrt(kb) * (1 + 0.08*float64(c.Assoc))
}

// Estimate is the energy accounting of one core's execution.
type Estimate struct {
	// DynamicNJ and StaticNJ split the energy by origin.
	DynamicNJ, StaticNJ float64
	// TimeNs is the execution time used for static energy and power.
	TimeNs float64
}

// TotalNJ reports the total energy in nanojoules.
func (e Estimate) TotalNJ() float64 { return e.DynamicNJ + e.StaticNJ }

// AvgPowerW reports the average power in watts.
func (e Estimate) AvgPowerW() float64 {
	if e.TimeNs == 0 {
		return 0
	}
	return e.TotalNJ() / e.TimeNs
}

// EDP reports the energy-delay product in nanojoule-seconds.
func (e Estimate) EDP() float64 { return e.TotalNJ() * e.TimeNs * 1e-9 }

// staticPowerW estimates a core's leakage from its structure sizes.
func staticPowerW(cfg config.CoreConfig) float64 {
	sramMB := float64(cfg.L1D.SizeBytes()+cfg.L2D.SizeBytes()) / (1 << 20)
	return leakageCoreW + leakagePerWidth*float64(cfg.Width) + leakageWPerMB*sramMB
}

// CoreEnergy estimates the energy of one core's run from its configuration,
// final counters, and elapsed time (which may exceed the core's own finish
// time in a contest, where leakage accrues until the system finishes).
func CoreEnergy(cfg config.CoreConfig, st pipeline.Stats, timeNs float64) Estimate {
	perInst := basePipelinePJ + perWidthPJ*float64(cfg.Width) +
		windowPJPerK*float64(cfg.ROBSize)/1024
	dynamicPJ := perInst * float64(st.Retired)
	// Injected instructions skip execution (and loads skip the caches), but
	// still traverse rename and the register write ports.
	executed := st.Retired - st.Injected
	if executed < 0 {
		executed = 0
	}
	dynamicPJ += executeALUPJ * float64(executed)
	dynamicPJ += float64(st.L1D.Accesses) * cacheAccessPJ(cfg.L1D)
	dynamicPJ += float64(st.L2D.Accesses) * cacheAccessPJ(cfg.L2D)
	dynamicPJ += float64(st.L2D.Misses) * memAccessPJ
	dynamicPJ += float64(st.Mispredicts) * mispredictPJ
	return Estimate{
		DynamicNJ: dynamicPJ / 1000,
		StaticNJ:  staticPowerW(cfg) * timeNs,
		TimeNs:    timeNs,
	}
}

// SingleRun estimates the energy of a stand-alone run.
func SingleRun(cfg config.CoreConfig, r sim.Result) Estimate {
	return CoreEnergy(cfg, r.Stats, r.Time.Nanoseconds())
}

// ContestRun estimates the total energy of a contested run: every core's
// dynamic energy plus every core's leakage for the full system duration.
// Only cores present in both slices are accounted: a configuration without
// a matching PerCore entry (killed/reforked core accounting, or a caller
// passing a subset of the contest's cores) contributes nothing rather than
// panicking.
func ContestRun(cfgs []config.CoreConfig, r contest.Result) Estimate {
	var total Estimate
	total.TimeNs = r.Time.Nanoseconds()
	n := len(cfgs)
	if len(r.PerCore) < n {
		n = len(r.PerCore)
	}
	for i, cfg := range cfgs[:n] {
		e := CoreEnergy(cfg, r.PerCore[i], total.TimeNs)
		total.DynamicNJ += e.DynamicNJ
		total.StaticNJ += e.StaticNJ
	}
	return total
}
