package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"archcontest/internal/resultcache"
)

// LoadTestOptions sizes one cluster load run: an in-process fleet hammered
// by Streams concurrent clients, each submitting jobs through the facade
// and watching them to completion. The same job set is driven twice — a
// cold pass that fills the per-node result caches and a warm pass that
// measures how well routing exploits them.
type LoadTestOptions struct {
	// Nodes is the fleet size (default 3).
	Nodes int
	// Streams is the number of concurrent submit-and-watch clients
	// (default 64).
	Streams int
	// Jobs is the number of jobs per pass (default 2×Streams).
	Jobs int
	// Specs is the number of distinct scenario shapes the jobs cycle
	// through (default 24). Distinct shapes spread across the fleet;
	// repeats of one shape exercise affinity.
	Specs int
	// N is the per-job instruction count (default 60k: long enough to
	// dominate HTTP overhead, short enough to finish a pass quickly).
	N int64
	// Workers is each node's concurrency (default 2).
	Workers int
	// MaxQueue is each node's queue bound (default 4×Streams so the load
	// run measures latency, not shed-retry behaviour).
	MaxQueue int
	// RoundRobin switches the coordinator to the baseline router, giving
	// the control leg for the cache-aware routing comparison.
	RoundRobin bool
}

// PassStats describes one pass of a load run.
type PassStats struct {
	Jobs      int     `json:"jobs"`
	Failed    int     `json:"failed"`
	Retries   int     `json:"retries"` // submit retries after 429/503 sheds
	P50Ms     float64 `json:"p50_ms"`  // submit-to-terminal latency
	P99Ms     float64 `json:"p99_ms"`
	WallMs    float64 `json:"wall_ms"`
	CacheHits int64   `json:"cache_hits"` // fleet-wide result-cache hits during the pass
	CacheGets int64   `json:"cache_gets"`
	HitRate   float64 `json:"hit_rate"`
}

// LoadTestResult is the full outcome of RunLoadTest; cmd/bench -cluster
// serializes it into BENCH_cluster.json.
type LoadTestResult struct {
	Nodes      int        `json:"nodes"`
	Streams    int        `json:"streams"`
	Specs      int        `json:"specs"`
	N          int64      `json:"n"`
	RoundRobin bool       `json:"round_robin"`
	Cold       PassStats  `json:"cold"`
	Warm       PassStats  `json:"warm"`
	Coord      CoordStats `json:"coord"`
}

var loadBenches = []string{"gcc", "mcf", "twolf", "vpr", "bzip", "crafty", "gap", "gzip", "parser", "perl", "vortex"}

func (o *LoadTestOptions) defaults() {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Streams <= 0 {
		o.Streams = 64
	}
	if o.Jobs <= 0 {
		o.Jobs = 2 * o.Streams
	}
	if o.Specs <= 0 {
		o.Specs = 24
	}
	if o.N <= 0 {
		o.N = 60_000
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4 * o.Streams
	}
}

// loadSpecs builds the distinct scenario shapes for a run. Shapes differ
// in benchmark and instruction count, so every shape has its own route key
// and its own result-cache entries.
func loadSpecs(opts LoadTestOptions) []string {
	specs := make([]string, opts.Specs)
	for i := range specs {
		bench := loadBenches[i%len(loadBenches)]
		specs[i] = fmt.Sprintf(`{"kind":"run","bench":%q,"cores":[%q],"n":%d}`,
			bench, bench, opts.N+int64(i/len(loadBenches)))
	}
	return specs
}

// RunLoadTest starts a fleet, drives the cold and warm passes, and tears
// the fleet down.
func RunLoadTest(ctx context.Context, opts LoadTestOptions) (*LoadTestResult, error) {
	opts.defaults()
	f, err := StartFleet(opts.Nodes, FleetOptions{
		Workers:    opts.Workers,
		MaxQueue:   opts.MaxQueue,
		RoundRobin: opts.RoundRobin,
	})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	specs := loadSpecs(opts)
	res := &LoadTestResult{
		Nodes:      opts.Nodes,
		Streams:    opts.Streams,
		Specs:      opts.Specs,
		N:          opts.N,
		RoundRobin: opts.RoundRobin,
	}
	cold, err := runPass(ctx, f, opts, specs)
	if err != nil {
		return nil, fmt.Errorf("cold pass: %w", err)
	}
	res.Cold = cold
	warm, err := runPass(ctx, f, opts, specs)
	if err != nil {
		return nil, fmt.Errorf("warm pass: %w", err)
	}
	res.Warm = warm
	res.Coord = f.Coord.Stats()

	dctx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	if err := f.Drain(dctx); err != nil {
		return nil, fmt.Errorf("drain: %w", err)
	}
	return res, nil
}

// runPass pushes opts.Jobs jobs through the facade with opts.Streams
// concurrent clients and reports latency percentiles plus the fleet-wide
// cache-hit delta for the pass.
func runPass(ctx context.Context, f *Fleet, opts LoadTestOptions, specs []string) (PassStats, error) {
	before := fleetCacheStats(f)
	jobCh := make(chan int)
	latencies := make([]time.Duration, opts.Jobs)
	var failed, retries int64
	var mu sync.Mutex

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, opts.Streams)
	for s := 0; s < opts.Streams; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobCh {
				lat, nretry, err := runJob(ctx, f.CoordURL, specs[idx%len(specs)])
				mu.Lock()
				latencies[idx] = lat
				retries += int64(nretry)
				if err != nil {
					failed++
				}
				mu.Unlock()
				if err != nil && ctx.Err() != nil {
					errCh <- ctx.Err()
					return
				}
			}
		}()
	}
	for i := 0; i < opts.Jobs; i++ {
		jobCh <- i
	}
	close(jobCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return PassStats{}, err
	default:
	}

	after := fleetCacheStats(f)
	ps := PassStats{
		Jobs:      opts.Jobs,
		Failed:    int(failed),
		Retries:   int(retries),
		WallMs:    float64(time.Since(start)) / float64(time.Millisecond),
		CacheHits: after.Hits - before.Hits,
		CacheGets: (after.Hits + after.Misses) - (before.Hits + before.Misses),
	}
	if ps.CacheGets > 0 {
		ps.HitRate = float64(ps.CacheHits) / float64(ps.CacheGets)
	}
	ps.P50Ms, ps.P99Ms = percentiles(latencies)
	return ps, nil
}

// runJob submits one spec and watches it to its terminal state, returning
// the submit-to-terminal latency. 429/503 sheds are retried after the
// server's advice (bounded, so a wedged fleet fails rather than hangs).
func runJob(ctx context.Context, coordURL, specJSON string) (time.Duration, int, error) {
	start := time.Now()
	var id string
	nretry := 0
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordURL+"/v1/jobs", strings.NewReader(specJSON))
		if err != nil {
			return 0, nretry, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, nretry, err
		}
		var v map[string]any
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			id, _ = v["id"].(string)
			break
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			nretry++
			if nretry > 200 {
				return 0, nretry, fmt.Errorf("fleet shed the job %d times", nretry)
			}
			select {
			case <-time.After(25 * time.Millisecond):
			case <-ctx.Done():
				return 0, nretry, ctx.Err()
			}
			continue
		}
		return 0, nretry, fmt.Errorf("submit: status %d: %v", resp.StatusCode, v)
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		coordURL+"/v1/jobs/"+id+"?watch=1", nil)
	if err != nil {
		return 0, nretry, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nretry, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		var snap map[string]any
		if json.Unmarshal(sc.Bytes(), &snap) != nil {
			continue
		}
		switch snap["state"] {
		case "done":
			return time.Since(start), nretry, nil
		case "failed", "cancelled":
			return time.Since(start), nretry, fmt.Errorf("job %s ended %v: %v", id, snap["state"], snap["error"])
		}
	}
	return 0, nretry, fmt.Errorf("watch of %s ended without a terminal event", id)
}

// fleetCacheStats sums the per-node result-cache counters.
func fleetCacheStats(f *Fleet) resultcache.Stats {
	var sum resultcache.Stats
	for _, n := range f.Nodes {
		st := n.Cache.Stats()
		sum.Hits += st.Hits
		sum.MemHits += st.MemHits
		sum.Misses += st.Misses
		sum.Stores += st.Stores
		sum.Corrupt += st.Corrupt
		sum.Errors += st.Errors
	}
	return sum
}

func percentiles(lats []time.Duration) (p50, p99 float64) {
	if len(lats) == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	return at(0.50), at(0.99)
}
