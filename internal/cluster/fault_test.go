package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestClusterFault is the node-death drill. It saturates one node with an
// in-flight job plus queued jobs, hard-kills that node (listener and all
// connections closed, runner cancelled — a crash, not a drain), and then
// asserts the coordinator's loss guarantees:
//
//   - every job reaches exactly one terminal state (retried elsewhere and
//     completed, or failed with a cause) — never silently lost;
//   - queued jobs are rerouted to surviving nodes;
//   - a facade watch opened before the kill keeps streaming across the
//     reroute and ends with a terminal event;
//   - submissions after the kill avoid the dead node.
func TestClusterFault(t *testing.T) {
	f := startTestFleet(t, 3, FleetOptions{Workers: 1, MaxQueue: 8})
	// Identical specs rendezvous-route to the same node, so every job in
	// this batch lands on one victim: the first runs (Workers=1), the rest
	// queue behind it.
	spec := `{"kind":"run","bench":"mcf","cores":["mcf"],"n":2000000}`
	const njobs = 3
	ids := make([]string, njobs)
	victim := ""
	for i := range ids {
		code, v := post(t, f.CoordURL+"/v1/jobs", spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %v", i, code, v)
		}
		ids[i] = v["id"].(string)
		if victim == "" {
			victim = v["node"].(string)
		} else if v["node"] != victim {
			t.Fatalf("job %d routed to %v, not the affinity node %s", i, v["node"], victim)
		}
	}
	var victimNode *FleetNode
	for _, n := range f.Nodes {
		if n.URL == victim {
			victimNode = n
		}
	}
	if victimNode == nil {
		t.Fatalf("victim %s is not a fleet node", victim)
	}

	// Open a facade watch on the in-flight job before the crash; collect
	// its stream concurrently.
	watchResp, err := http.Get(f.CoordURL + "/v1/jobs/" + ids[0] + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer watchResp.Body.Close()
	watchDone := make(chan map[string]any, 1)
	go func() {
		sc := bufio.NewScanner(watchResp.Body)
		sc.Buffer(make([]byte, 1<<20), 16<<20)
		var final map[string]any
		for sc.Scan() {
			var snap map[string]any
			if json.Unmarshal(sc.Bytes(), &snap) != nil {
				break
			}
			final = snap
		}
		watchDone <- final
	}()

	// Wait until the first job is demonstrably executing on the victim,
	// then pull the plug.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, v := get(t, f.CoordURL+"/v1/jobs/"+ids[0])
		if v["state"] == "running" {
			break
		}
		if s, _ := v["state"].(string); s == "done" || s == "failed" || s == "cancelled" {
			t.Fatalf("job %s reached %s before the kill; raise n", ids[0], s)
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	victimNode.Kill()

	// Every job must reach exactly one terminal state on a surviving node.
	for i, id := range ids {
		snap := waitTerminal(t, f.CoordURL, id)
		state := snap["state"].(string)
		switch state {
		case "done":
			if snap["result"] == nil {
				// waitTerminal's plain GET embeds results for terminal jobs.
				t.Errorf("job %d done without a result", i)
			}
		case "failed":
			if snap["error"] == nil || snap["error"] == "" {
				t.Errorf("job %d failed without a cause: %v", i, snap)
			}
		default:
			t.Fatalf("job %d ended %q, want done or failed-with-cause", i, state)
		}
		if snap["node"] == victim {
			t.Errorf("job %d still attributed to the dead node", i)
		}
		if r, _ := snap["retries"].(float64); r < 1 {
			t.Errorf("job %d reports %v retries after a node death", i, snap["retries"])
		}
	}

	// The pre-kill watch stream must have ended with a terminal event.
	select {
	case final := <-watchDone:
		if final == nil {
			t.Fatal("pre-kill facade watch delivered no snapshots")
		}
		switch final["state"] {
		case "done", "failed", "cancelled":
		default:
			t.Fatalf("pre-kill facade watch ended on non-terminal state %v", final["state"])
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pre-kill facade watch never terminated")
	}

	// Fresh submissions route around the corpse.
	code, v := post(t, f.CoordURL+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("post-kill submit: %d %v", code, v)
	}
	if v["node"] == victim {
		t.Fatalf("post-kill submission placed on the dead node %s", victim)
	}
	waitTerminal(t, f.CoordURL, v["id"].(string))

	st := f.Coord.Stats()
	if st.Reroutes < 1 {
		t.Errorf("coordinator counted %d reroutes, want >=1 (stats %+v)", st.Reroutes, st)
	}
	if st.Lost != 0 {
		t.Errorf("coordinator lost %d jobs (stats %+v)", st.Lost, st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	f.Nodes = liveNodes(f.Nodes, victimNode)
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("drain after fault: %v", err)
	}
}

func liveNodes(all []*FleetNode, dead *FleetNode) []*FleetNode {
	out := all[:0:0]
	for _, n := range all {
		if n != dead {
			out = append(out, n)
		}
	}
	return out
}

// TestClusterFaultTotalLoss: when every node dies, accepted jobs still end
// in exactly one terminal state — failed with a cause naming the loss —
// and watchers are released rather than hung.
func TestClusterFaultTotalLoss(t *testing.T) {
	f := startTestFleet(t, 2, FleetOptions{Workers: 1, MaxQueue: 4})
	code, v := post(t, f.CoordURL+"/v1/jobs", `{"kind":"run","bench":"mcf","cores":["mcf"],"n":2000000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, v)
	}
	id := v["id"].(string)
	for _, n := range f.Nodes {
		n.Kill()
	}
	snap := waitTerminal(t, f.CoordURL, id)
	if snap["state"] != "failed" {
		t.Fatalf("state %v after total node loss, want failed", snap["state"])
	}
	if msg, _ := snap["error"].(string); msg == "" {
		t.Fatalf("total-loss failure carries no cause: %v", snap)
	}
	// The result endpoint agrees (terminal), rather than 409ing forever.
	if code, _ := get(t, f.CoordURL+"/v1/jobs/"+id+"/result"); code != http.StatusOK {
		t.Errorf("result of failed job: %d, want 200", code)
	}
}
