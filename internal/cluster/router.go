package cluster

import (
	"hash/fnv"
	"sort"
)

// Rank orders node URLs for a route key by rendezvous (highest-random-
// weight) hashing: every (key, node) pair gets an independent pseudo-random
// weight and nodes are ranked by descending weight. The properties the
// coordinator relies on:
//
//   - Affinity: one key always produces the same ranking over the same
//     node set, so repeated submissions of the same artifacts land on the
//     same node — whose result cache is therefore warm.
//
//   - Minimal disruption: removing a node only re-homes the keys that
//     ranked it first (they fall through to their second choice, which is
//     exactly the retry-with-reroute path); every other key keeps its node.
//     A consistent-hash ring would need virtual nodes for balance; HRW
//     gets balance for free at fleet sizes this coordinator targets.
//
//   - Spread: distinct keys distribute uniformly across nodes.
//
// Ties (possible only with duplicate URLs) break by URL so the order is
// total and deterministic.
func Rank(key string, nodes []string) []string {
	type weighted struct {
		node   string
		weight uint64
	}
	ws := make([]weighted, 0, len(nodes))
	for _, n := range nodes {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(n))
		ws = append(ws, weighted{node: n, weight: h.Sum64()})
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].weight != ws[j].weight {
			return ws[i].weight > ws[j].weight
		}
		return ws[i].node < ws[j].node
	})
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.node
	}
	return out
}
