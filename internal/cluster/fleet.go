package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"archcontest/internal/jobs"
	"archcontest/internal/resultcache"
	"archcontest/internal/spec"
)

// FleetOptions shapes an in-process fleet.
type FleetOptions struct {
	// Workers is each node's concurrent-job bound (default 2).
	Workers int
	// MaxQueue is each node's queue bound (default 64).
	MaxQueue int
	// Parallelism bounds each node's per-campaign simulation fan-out
	// (default 1: fleet tests measure scheduling, not simulation speed).
	Parallelism int
	// ProbeInterval is the coordinator's health-probe period (default
	// 50ms: in-process fleets want fast failure detection).
	ProbeInterval time.Duration
	// RoundRobin selects the baseline router instead of cache-aware
	// rendezvous routing.
	RoundRobin bool
	// SharedStore, if non-nil, backs every node's result cache with one
	// shared blob store (the remote-tier topology). Nil gives every node
	// its own private in-memory cache (the local-only topology).
	SharedStore resultcache.Store
}

// FleetNode is one in-process serve node.
type FleetNode struct {
	URL    string
	Runner *jobs.Runner
	Env    *spec.Env
	Cache  *resultcache.Cache

	srv *http.Server
	ln  net.Listener
}

// Kill hard-stops the node: the listener and every active connection are
// closed immediately, exactly like a crashed process. In-flight work is
// torn off mid-write; nothing is drained.
func (n *FleetNode) Kill() {
	n.srv.Close()
	n.Runner.CancelAll()
}

// Shutdown drains the node gracefully.
func (n *FleetNode) Shutdown(ctx context.Context) error {
	err := n.srv.Shutdown(ctx)
	if derr := n.Runner.Drain(ctx); err == nil {
		err = derr
	}
	return err
}

// Fleet is an in-process coordinator plus N nodes, the harness behind the
// cluster load/fault tests and cmd/bench -cluster.
type Fleet struct {
	Coord    *Coordinator
	CoordURL string
	Nodes    []*FleetNode

	coordSrv *http.Server
	coordLn  net.Listener
}

// StartNode starts one node on a fresh loopback port.
func StartNode(opts FleetOptions) (*FleetNode, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 1
	}
	cache := resultcache.New(opts.SharedStore, resultcache.Options{})
	env := spec.NewEnv(cache)
	env.Parallelism = opts.Parallelism
	runner := jobs.NewRunner(env, opts.Workers)
	handler := NewNode(runner, NodeOptions{
		MaxQueue: opts.MaxQueue,
		Cache:    cache,
		Blobs:    opts.SharedStore,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	n := &FleetNode{
		URL:    "http://" + ln.Addr().String(),
		Runner: runner,
		Env:    env,
		Cache:  cache,
		srv:    &http.Server{Handler: handler},
		ln:     ln,
	}
	go n.srv.Serve(ln)
	return n, nil
}

// StartFleet starts n nodes and a coordinator over them.
func StartFleet(n int, opts FleetOptions) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one node")
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 50 * time.Millisecond
	}
	f := &Fleet{}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		node, err := StartNode(opts)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Nodes = append(f.Nodes, node)
		urls = append(urls, node.URL)
	}
	f.Coord = NewCoordinator(CoordOptions{
		Nodes:         urls,
		ProbeInterval: opts.ProbeInterval,
		RoundRobin:    opts.RoundRobin,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Close()
		return nil, err
	}
	f.coordLn = ln
	f.CoordURL = "http://" + ln.Addr().String()
	f.coordSrv = &http.Server{Handler: f.Coord.Handler()}
	go f.coordSrv.Serve(ln)
	return f, nil
}

// Drain gracefully quiesces the whole fleet: the coordinator stops
// accepting and waits for every facade job, then the nodes drain.
func (f *Fleet) Drain(ctx context.Context) error {
	err := f.Coord.Drain(ctx)
	for _, n := range f.Nodes {
		if serr := n.Shutdown(ctx); err == nil {
			err = serr
		}
	}
	return err
}

// Close hard-stops everything (idempotent; safe mid-construction).
func (f *Fleet) Close() {
	if f.coordSrv != nil {
		f.coordSrv.Close()
	}
	if f.Coord != nil {
		f.Coord.Close()
	}
	for _, n := range f.Nodes {
		if n != nil {
			n.Kill()
		}
	}
}
