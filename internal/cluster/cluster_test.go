package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRankDeterministicAndTotal(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		first := Rank(key, nodes)
		for trial := 0; trial < 5; trial++ {
			if got := Rank(key, nodes); !equalStrings(got, first) {
				t.Fatalf("Rank(%q) unstable: %v vs %v", key, got, first)
			}
		}
		seen := make(map[string]bool)
		for _, n := range first {
			seen[n] = true
		}
		if len(seen) != len(nodes) {
			t.Fatalf("Rank(%q) is not a permutation: %v", key, first)
		}
	}
}

func TestRankSpread(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	firsts := make(map[string]int)
	const keys = 300
	for i := 0; i < keys; i++ {
		firsts[Rank(fmt.Sprintf("key-%d", i), nodes)[0]]++
	}
	for _, n := range nodes {
		// Uniform would be 100 each; require each node to win at least a
		// third of its fair share so a badly skewed hash fails loudly.
		if firsts[n] < keys/len(nodes)/3 {
			t.Errorf("node %s ranked first for only %d/%d keys: %v", n, firsts[n], keys, firsts)
		}
	}
}

// TestRankMinimalDisruption: dropping one node must not move any key whose
// first choice survives.
func TestRankMinimalDisruption(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	dead := nodes[2]
	var survivors []string
	for _, n := range nodes {
		if n != dead {
			survivors = append(survivors, n)
		}
	}
	moved, kept := 0, 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := Rank(key, nodes)[0]
		afterFirst := Rank(key, survivors)[0]
		if before == dead {
			moved++
			continue
		}
		if afterFirst != before {
			t.Fatalf("key %q re-homed from %s to %s though its node survived", key, before, afterFirst)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate key set: moved=%d kept=%d", moved, kept)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func startTestFleet(t *testing.T, n int, opts FleetOptions) *Fleet {
	t.Helper()
	f, err := StartFleet(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// TestFacadeEndToEnd drives the whole cluster surface through the
// coordinator: submit, watch (NDJSON with coordinator-side monotonic seq),
// result, trace, list, healthz, and a graceful drain.
func TestFacadeEndToEnd(t *testing.T) {
	f := startTestFleet(t, 3, FleetOptions{Workers: 2, MaxQueue: 8})

	code, h := get(t, f.CoordURL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	nodes, _ := h["nodes"].([]any)
	if len(nodes) != 3 {
		t.Fatalf("healthz lists %d nodes, want 3: %v", len(nodes), h)
	}
	for _, n := range nodes {
		if n.(map[string]any)["healthy"] != true {
			t.Fatalf("node unhealthy at start: %v", n)
		}
	}

	code, v := post(t, f.CoordURL+"/v1/jobs",
		`{"kind":"contest","bench":"twolf","cores":["twolf","vpr"],"n":20000,"record":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, v)
	}
	id, _ := v["id"].(string)
	if !strings.HasPrefix(id, "cj-") {
		t.Fatalf("facade job id %q lacks the cluster prefix", id)
	}
	owner, _ := v["node"].(string)
	if owner == "" {
		t.Fatalf("submit response names no owning node: %v", v)
	}

	// Watch through the facade: seq strictly monotonic, ends with a
	// terminal snapshot embedding the result.
	resp, err := http.Get(f.CoordURL + "/v1/jobs/" + id + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	lastSeq := -1.0
	var final map[string]any
	for sc.Scan() {
		var snap map[string]any
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if seq := snap["seq"].(float64); seq <= lastSeq {
			t.Fatalf("facade seq went backwards: %v after %v", seq, lastSeq)
		} else {
			lastSeq = seq
		}
		final = snap
	}
	if final == nil || final["state"] != "done" {
		t.Fatalf("facade watch ended with %v, want done", final)
	}
	if final["result"] == nil {
		t.Fatal("terminal facade snapshot lacks the result")
	}
	if final["attempts"] != 1.0 || final["retries"] != 0.0 {
		t.Errorf("unexpected placement metadata: attempts=%v retries=%v", final["attempts"], final["retries"])
	}

	code, res := get(t, f.CoordURL+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK || res["result"] == nil {
		t.Fatalf("result: %d %v", code, res)
	}
	tr, err := http.Get(f.CoordURL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("proxied trace: %d", tr.StatusCode)
	}
	var events []map[string]any
	if err := json.NewDecoder(tr.Body).Decode(&events); err != nil || len(events) == 0 {
		t.Fatalf("proxied trace unusable: %d events, err %v", len(events), err)
	}

	resp2, err := http.Get(f.CoordURL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var views []map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&views); err != nil || len(views) != 1 {
		t.Fatalf("list: %d views, err %v", len(views), err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// A drained coordinator refuses new work with 503.
	resp3, err := http.Post(f.CoordURL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"run","bench":"gcc","cores":["gcc"],"n":20000}`))
	if err == nil {
		defer resp3.Body.Close()
		if resp3.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("submit while drained: %d, want 503", resp3.StatusCode)
		}
	}
}

// TestFacadeCancel cancels a running job through the coordinator.
func TestFacadeCancel(t *testing.T) {
	f := startTestFleet(t, 2, FleetOptions{Workers: 1, MaxQueue: 4})
	code, v := post(t, f.CoordURL+"/v1/jobs", `{"kind":"run","bench":"mcf","cores":["mcf"],"n":8000000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, v)
	}
	id := v["id"].(string)
	if code := del(t, f.CoordURL+"/v1/jobs/"+id); code != http.StatusAccepted {
		t.Fatalf("cancel: %d", code)
	}
	snap := waitTerminal(t, f.CoordURL, id)
	if snap["state"] != "cancelled" {
		t.Errorf("state %v after facade cancel, want cancelled", snap["state"])
	}
}

// TestFacadeRejectsBadSpecs: malformed and invalid specs bounce off the
// coordinator without consuming a placement.
func TestFacadeRejectsBadSpecs(t *testing.T) {
	f := startTestFleet(t, 2, FleetOptions{})
	code, v := post(t, f.CoordURL+"/v1/jobs", `{"kind":"run","bench":"gcc","frobnicate":1}`)
	if code != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400 (%v)", code, v)
	}
	code, v = post(t, f.CoordURL+"/v1/jobs", `{"kind":"run","bench":"doom"}`)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("unknown bench: %d, want 422 (%v)", code, v)
	}
	if code, _ := get(t, f.CoordURL+"/v1/jobs/cj-9999"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	if st := f.Coord.Stats(); st.Submits != 0 {
		t.Errorf("bad specs consumed %d submissions", st.Submits)
	}
}

// TestFacadeAffinity: identical specs are repeatedly routed to the same
// node (the warm one); distinct specs spread across the fleet.
func TestFacadeAffinity(t *testing.T) {
	f := startTestFleet(t, 3, FleetOptions{Workers: 2, MaxQueue: 16})
	const repeats = 4
	owner := ""
	var ids []string
	for i := 0; i < repeats; i++ {
		code, v := post(t, f.CoordURL+"/v1/jobs", `{"kind":"run","bench":"gcc","cores":["gcc"],"n":30000}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %v", i, code, v)
		}
		ids = append(ids, v["id"].(string))
		if owner == "" {
			owner = v["node"].(string)
		} else if v["node"] != owner {
			t.Fatalf("submission %d routed to %v, earlier ones to %s", i, v["node"], owner)
		}
	}
	for _, id := range ids {
		waitTerminal(t, f.CoordURL, id)
	}
	if st := f.Coord.Stats(); st.AffinityHits != repeats {
		t.Errorf("affinity hits %d, want %d (stats %+v)", st.AffinityHits, repeats, st)
	}
}

// TestFacadeBackpressureFailover: when the affinity node is saturated the
// coordinator steps to the next ranked node instead of failing, and when
// the whole fleet is saturated the facade sheds with 503 + Retry-After.
func TestFacadeBackpressureFailover(t *testing.T) {
	const nodes = 2
	f := startTestFleet(t, nodes, FleetOptions{Workers: 1, MaxQueue: 1})
	long := `{"kind":"run","bench":"mcf","cores":["mcf"],"n":8000000}`
	// Capacity is nodes × (1 running + 1 queued) = 4 identical jobs. The
	// first two land on the affinity node; the next two must overflow to
	// the other node rather than bounce.
	var ids []string
	owners := make(map[string]int)
	for i := 0; i < 2*nodes; i++ {
		code, v := post(t, f.CoordURL+"/v1/jobs", long)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %v (fleet should have capacity)", i, code, v)
		}
		ids = append(ids, v["id"].(string))
		owners[v["node"].(string)]++
	}
	if len(owners) != nodes {
		t.Fatalf("saturating jobs did not overflow across nodes: %v", owners)
	}

	resp, err := http.Post(f.CoordURL+"/v1/jobs", "application/json", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit over full fleet: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("fleet-full 503 lacks Retry-After")
	}
	if st := f.Coord.Stats(); st.Rejected != 1 || st.Sheds == 0 {
		t.Errorf("stats after shed: %+v, want rejected=1 sheds>0", st)
	}

	for _, id := range ids {
		del(t, f.CoordURL+"/v1/jobs/"+id)
	}
	for _, id := range ids {
		waitTerminal(t, f.CoordURL, id)
	}
}
