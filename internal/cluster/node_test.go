package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"archcontest/internal/jobs"
	"archcontest/internal/obs"
	"archcontest/internal/spec"
)

func newTestNode(t *testing.T, workers int, opts NodeOptions) (*httptest.Server, *jobs.Runner) {
	t.Helper()
	runner := jobs.NewRunner(spec.NewEnv(nil), workers)
	srv := httptest.NewServer(NewNode(runner, opts))
	t.Cleanup(srv.Close)
	return srv, runner
}

func post(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, v
}

func get(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, v
}

func del(t *testing.T, url string) int {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func waitTerminal(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		_, v := get(t, base+"/v1/jobs/"+id)
		switch v["state"] {
		case "done", "failed", "cancelled":
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never became terminal", id)
	return nil
}

// TestNodeConcurrentJobs submits 8 concurrent jobs and, for each, streams
// the watch endpoint asserting snapshots are monotonic (seq and done never
// decrease) and terminate in a done state with an embedded result.
func TestNodeConcurrentJobs(t *testing.T) {
	srv, _ := newTestNode(t, 4, NodeOptions{})
	const njobs = 8
	ids := make([]string, njobs)
	for i := range ids {
		body := fmt.Sprintf(`{"kind":"run","bench":"gcc","cores":["gcc"],"n":%d}`, 100_000+i)
		code, v := post(t, srv.URL+"/v1/jobs", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %v", i, code, v)
		}
		ids[i] = v["id"].(string)
	}

	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "?watch=1")
			if err != nil {
				t.Errorf("watch %s: %v", id, err)
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			lastSeq, lastDone := -1.0, -1.0
			var final map[string]any
			for sc.Scan() {
				var snap map[string]any
				if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
					t.Errorf("watch %s: bad NDJSON line %q: %v", id, sc.Text(), err)
					return
				}
				seq, done := snap["seq"].(float64), snap["done"].(float64)
				if seq < lastSeq || done < lastDone {
					t.Errorf("watch %s: snapshot went backwards (seq %v after %v, done %v after %v)",
						id, seq, lastSeq, done, lastDone)
					return
				}
				lastSeq, lastDone = seq, done
				final = snap
			}
			if final == nil {
				t.Errorf("watch %s: no snapshots", id)
				return
			}
			if final["state"] != "done" {
				t.Errorf("watch %s: terminal state %v", id, final["state"])
			}
			if final["result"] == nil {
				t.Errorf("watch %s: terminal snapshot lacks the result", id)
			}
			wantN := float64(100_000 + i)
			if final["done"] != wantN || final["total"] != wantN {
				t.Errorf("watch %s: final progress %v/%v, want %v", id, final["done"], final["total"], wantN)
			}
		}(i, id)
	}
	wg.Wait()
}

// TestNodeRecordedContest: a recorded contest job returns archcontest-obs-v1
// metrics in the result and a loadable Chrome trace.
func TestNodeRecordedContest(t *testing.T) {
	srv, _ := newTestNode(t, 2, NodeOptions{})
	code, v := post(t, srv.URL+"/v1/jobs",
		`{"kind":"contest","bench":"twolf","cores":["twolf","vpr"],"n":20000,"record":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", code, v)
	}
	id := v["id"].(string)
	waitTerminal(t, srv.URL, id)

	code, res := get(t, srv.URL+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: status %d: %v", code, res)
	}
	result, _ := res["result"].(map[string]any)
	if result == nil {
		t.Fatalf("no result payload: %v", res)
	}
	metrics, _ := result["metrics"].(map[string]any)
	if metrics == nil {
		t.Fatalf("recorded job returned no metrics: %v", result)
	}
	if metrics["schema"] != obs.SchemaVersion {
		t.Errorf("metrics schema %v, want %q", metrics["schema"], obs.SchemaVersion)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace is not a Chrome trace_event array: %v", err)
	}
	if len(events) == 0 {
		t.Error("trace is empty")
	}
}

func TestNodeCancel(t *testing.T) {
	srv, _ := newTestNode(t, 1, NodeOptions{})
	code, v := post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"mcf","cores":["mcf"],"n":5000000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", code, v)
	}
	id := v["id"].(string)
	if code := del(t, srv.URL+"/v1/jobs/"+id); code != http.StatusAccepted {
		t.Fatalf("cancel: status %d", code)
	}
	snap := waitTerminal(t, srv.URL, id)
	if snap["state"] != "cancelled" {
		t.Errorf("state %v after DELETE, want cancelled", snap["state"])
	}
}

func TestNodeRejectsBadSpecs(t *testing.T) {
	srv, _ := newTestNode(t, 1, NodeOptions{})
	code, v := post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"gcc","frobnicate":1}`)
	if code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400 (%v)", code, v)
	}
	code, v = post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"doom"}`)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("unknown bench: status %d, want 422 (%v)", code, v)
	}
	if code, _ := get(t, srv.URL+"/v1/jobs/job-9999"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
}

// TestNodeResultConflict: asking for a result before the job is terminal is
// a 409, not a hang or a partial payload.
func TestNodeResultConflict(t *testing.T) {
	srv, _ := newTestNode(t, 1, NodeOptions{})
	code, v := post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"mcf","cores":["mcf"],"n":5000000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, v)
	}
	blocker := v["id"].(string)
	code, v = post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"gcc","cores":["gcc"],"n":20000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, v)
	}
	queued := v["id"].(string)
	if code, _ := get(t, srv.URL+"/v1/jobs/"+queued+"/result"); code != http.StatusConflict {
		t.Errorf("result of a queued job: status %d, want 409", code)
	}
	for _, id := range []string{blocker, queued} {
		del(t, srv.URL+"/v1/jobs/"+id)
	}
}

// TestNodeList: the listing returns every submitted job in order.
func TestNodeList(t *testing.T) {
	srv, _ := newTestNode(t, 2, NodeOptions{})
	for i := 0; i < 3; i++ {
		code, v := post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"gcc","cores":["gcc"],"n":20000}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %v", code, v)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(views) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(views))
	}
	for i, v := range views {
		if want := fmt.Sprintf("job-%04d", i+1); v["id"] != want {
			t.Errorf("job %d listed as %v, want %s", i, v["id"], want)
		}
	}
}

// TestNodeBackpressure: with one worker and a one-slot queue, the third
// submission is shed with 429 + Retry-After instead of buffering, and a
// freed slot accepts again.
func TestNodeBackpressure(t *testing.T) {
	srv, _ := newTestNode(t, 1, NodeOptions{MaxQueue: 1})
	long := `{"kind":"run","bench":"mcf","cores":["mcf"],"n":5000000}`
	code, v := post(t, srv.URL+"/v1/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: %d %v", code, v)
	}
	blocker := v["id"].(string)
	code, v = post(t, srv.URL+"/v1/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit 2: %d %v", code, v)
	}
	queued := v["id"].(string)

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response lacks Retry-After")
	}

	// Queue health is visible.
	code, h := get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if h["pending"] != 1.0 || h["running"] != 1.0 {
		t.Errorf("healthz load %v/%v, want pending=1 running=1", h["pending"], h["running"])
	}

	// Freeing the queue slot re-opens the node.
	del(t, srv.URL+"/v1/jobs/"+queued)
	waitTerminal(t, srv.URL, queued)
	code, v = post(t, srv.URL+"/v1/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit after free: %d %v", code, v)
	}
	del(t, srv.URL+"/v1/jobs/"+v["id"].(string))
	del(t, srv.URL+"/v1/jobs/"+blocker)
}

// TestNodeWatchDisconnectReleases is the regression test for the watch
// leak: a ?watch=1 stream whose client disconnects mid-job must notice the
// closed connection and release its watcher subscription — it must not
// stay parked until the job ends.
func TestNodeWatchDisconnectReleases(t *testing.T) {
	srv, runner := newTestNode(t, 1, NodeOptions{})
	code, v := post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"mcf","cores":["mcf"],"n":8000000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, v)
	}
	id := v["id"].(string)
	j, ok := runner.Get(id)
	if !ok {
		t.Fatalf("runner lost job %s", id)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/jobs/"+id+"?watch=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one snapshot so the stream is demonstrably established, then
	// drop the connection while the job is still running.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first snapshot before disconnect")
	}
	if got := j.Watchers(); got != 1 {
		t.Fatalf("watchers after connect = %d, want 1", got)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for j.Watchers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("watcher not released %v after client disconnect (still %d registered)",
				5*time.Second, j.Watchers())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The job itself must be unaffected by the abandoned watch.
	if s := j.Snapshot(); s.State.Terminal() {
		t.Fatalf("job reached %s during the watch; raise n so disconnect happens mid-run", s.State)
	}
	j.Cancel()
	<-j.Done()
}
