package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"archcontest/internal/spec"
)

// Handler returns the coordinator's cluster-wide /v1/jobs facade. The
// surface mirrors a node's API, so any client of one serve daemon works
// unchanged against a fleet:
//
//	POST   /v1/jobs             validate, route, and place a spec; 202
//	                            with a cluster-wide job ID, or 503 +
//	                            Retry-After when every node sheds
//	GET    /v1/jobs             list all facade job snapshots
//	GET    /v1/jobs/{id}        one snapshot; ?watch=1 streams NDJSON and
//	                            always ends with a terminal event, even
//	                            when the owning node dies mid-stream
//	GET    /v1/jobs/{id}/result the terminal outcome (409 while running)
//	GET    /v1/jobs/{id}/trace  proxied Chrome/Perfetto timeline
//	DELETE /v1/jobs/{id}        cancel wherever the job currently lives
//	GET    /healthz             coordinator + per-node fleet health
//
// Facade snapshots carry three extra fields over node snapshots: "node"
// (the owning node URL), "attempts"/"retries" (placements so far), and a
// coordinator-side "seq" that stays monotonic across reroutes (a re-placed
// job's node-side seq restarts; its "done" progress may honestly restart
// with it).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", c.healthz)
	mux.HandleFunc("POST /v1/jobs", c.submit)
	mux.HandleFunc("GET /v1/jobs", c.list)
	mux.HandleFunc("GET /v1/jobs/{id}", c.get)
	mux.HandleFunc("GET /v1/jobs/{id}/result", c.result)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", c.trace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.cancel)
	return mux
}

func (c *Coordinator) healthz(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	draining := c.draining
	perNode := make(map[string]int)
	for _, j := range c.jobs {
		j.mu.Lock()
		if !j.terminal {
			perNode[j.node]++
		}
		j.mu.Unlock()
	}
	c.mu.Unlock()
	h := Health{Status: "ok"}
	if draining {
		h.Status = "draining"
	}
	for _, ns := range c.nodes {
		h.Nodes = append(h.Nodes, NodeHealth{
			URL:     ns.url,
			Healthy: ns.healthy.Load(),
			Pending: int(ns.pending.Load()),
			Running: int(ns.running.Load()),
			Jobs:    perNode[ns.url],
		})
		h.Pending += int(ns.pending.Load())
		h.Running += int(ns.running.Load())
	}
	writeJSON(w, http.StatusOK, h)
}

func (c *Coordinator) submit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	defer body.Close()
	raw, err := io.ReadAll(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	sp, err := spec.Parse(raw)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Validate here so a bad spec is a crisp 422 from the coordinator, not
	// a relayed node error after a wasted placement round-trip.
	if err := sp.Validate(); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Forward the normalized form: re-marshaling after Validate pins the
	// inferred kind and defaults, so a reroute re-submits exactly the
	// scenario the first node ran.
	norm, err := json.Marshal(sp)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		writeShed(w, http.StatusServiceUnavailable, "5",
			fmt.Errorf("cluster: coordinator is draining, not accepting new jobs"))
		return
	}
	c.nextID++
	j := &coordJob{
		id:       fmt.Sprintf("cj-%04d", c.nextID),
		rawSpec:  norm,
		routeKey: sp.RouteKey(),
		done:     make(chan struct{}),
	}
	c.mu.Unlock()

	if !c.place(j, "") {
		c.rejected.Add(1)
		writeShed(w, http.StatusServiceUnavailable, "1",
			fmt.Errorf("cluster: no node accepted the job (all draining, saturated, or down)"))
		return
	}
	c.submits.Add(1)

	c.mu.Lock()
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.wg.Add(1)
	c.mu.Unlock()
	go c.monitor(j)

	v, _, _ := j.view(false)
	writeJSON(w, http.StatusAccepted, v)
}

func (c *Coordinator) list(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	views := make([]map[string]any, 0, len(c.order))
	for _, id := range c.order {
		v, _, _ := c.jobs[id].view(false)
		views = append(views, v)
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (c *Coordinator) job(w http.ResponseWriter, r *http.Request) (*coordJob, bool) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
	}
	return j, ok
}

func (c *Coordinator) get(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("watch") == "" {
		v, _, _ := j.view(true)
		writeJSON(w, http.StatusOK, v)
		return
	}
	c.watchFacade(w, r, j)
}

// watchFacade streams the coordinator's view of a job as NDJSON. It is
// fed by the job's monitor, not by a node connection, so a node death
// mid-stream doesn't break the client: the stream simply carries the
// rerouted placements and is guaranteed to end with a terminal snapshot
// (done, failed — including failed-by-node-loss — or cancelled). The
// subscription is released when the client disconnects.
func (c *Coordinator) watchFacade(w http.ResponseWriter, r *http.Request, j *coordJob) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v map[string]any) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	notify, release := j.subscribe()
	defer release()
	lastSeq := int64(-1)
	for {
		// view(true) embeds the result only on terminal snapshots.
		v, seq, terminal := j.view(true)
		if seq != lastSeq {
			lastSeq = seq
			if terminal {
				emit(v)
				return
			}
			if !emit(v) {
				return
			}
		} else if terminal {
			emit(v)
			return
		}
		select {
		case <-notify:
		case <-j.done:
			// Loop once more to emit the terminal snapshot.
		case <-r.Context().Done():
			return
		}
	}
}

func (c *Coordinator) result(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(w, r)
	if !ok {
		return
	}
	v, _, terminal := j.view(true)
	if !terminal {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %v", j.id, v["state"]))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// trace proxies the recorded timeline from the owning node (the one
// payload the coordinator does not mirror: it can be large and is only
// fetched on demand).
func (c *Coordinator) trace(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	node, remoteID, failErr := j.node, j.remoteID, j.failErr
	j.mu.Unlock()
	if failErr != "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("job %s failed before a trace could be recorded: %s", j.id, failErr))
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		node+"/v1/jobs/"+remoteID+"/trace", nil)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		writeErr(w, http.StatusBadGateway, fmt.Errorf("node %s unreachable: %w", node, err))
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (c *Coordinator) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	j.cancelled = true
	node, remoteID := j.node, j.remoteID
	j.mu.Unlock()
	// Best effort: if the node is unreachable the monitor's failover path
	// observes j.cancelled and finalizes the record as cancelled.
	req, err := http.NewRequestWithContext(r.Context(), http.MethodDelete,
		node+"/v1/jobs/"+remoteID, nil)
	if err == nil {
		if resp, err := c.client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	v, _, _ := j.view(false)
	writeJSON(w, http.StatusAccepted, v)
}
