package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"archcontest/internal/jobs"
	"archcontest/internal/resultcache"
	"archcontest/internal/spec"
)

// NodeOptions configures one fleet node's HTTP surface.
type NodeOptions struct {
	// MaxQueue bounds the runner's accepted-but-not-running jobs; once
	// full, submissions are shed with 429 + Retry-After instead of
	// buffering unboundedly (0 = unbounded).
	MaxQueue int
	// Cache, if non-nil, is reported in /healthz so fleet-level hit rates
	// can be aggregated remotely.
	Cache *resultcache.Cache
	// Blobs, if non-nil, mounts resultcache.BlobHandler at /v1/blobs/,
	// letting other fleet members use this node as their remote result
	// tier (the embedded cachesrv).
	Blobs resultcache.Store
}

// NewNode builds the node HTTP API over a runner:
//
//	POST   /v1/jobs             submit a spec; 202, or 429/503 under load
//	GET    /v1/jobs             list all job snapshots
//	GET    /v1/jobs/{id}        one snapshot; ?watch=1 streams NDJSON
//	GET    /v1/jobs/{id}/result the terminal outcome (409 while running)
//	GET    /v1/jobs/{id}/trace  the recorded Chrome/Perfetto timeline
//	DELETE /v1/jobs/{id}        cancel the job
//	GET    /healthz             liveness + queue occupancy + cache stats
//	{GET,PUT,DELETE} /v1/blobs/{key}  (only with Options.Blobs)
func NewNode(r *jobs.Runner, opts NodeOptions) http.Handler {
	if opts.MaxQueue > 0 {
		r.SetMaxQueue(opts.MaxQueue)
	}
	a := &nodeAPI{runner: r, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", a.healthz)
	mux.HandleFunc("POST /v1/jobs", a.submit)
	mux.HandleFunc("GET /v1/jobs", a.list)
	mux.HandleFunc("GET /v1/jobs/{id}", a.get)
	mux.HandleFunc("GET /v1/jobs/{id}/result", a.result)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", a.trace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancel)
	if opts.Blobs != nil {
		mux.Handle("/v1/blobs/", resultcache.BlobHandler(opts.Blobs))
	}
	return mux
}

// nodeAPI serves the /v1 job interface of one node.
type nodeAPI struct {
	runner *jobs.Runner
	opts   NodeOptions
}

// jobView is a snapshot plus, once terminal, the outcome payload.
type jobView struct {
	jobs.Snapshot
	Result *spec.Outcome `json:"result,omitempty"`
}

func view(j *jobs.Job, withResult bool) jobView {
	v := jobView{Snapshot: j.Snapshot()}
	if withResult && v.State.Terminal() {
		if out, err := j.Outcome(); err == nil {
			v.Result = out
		}
	}
	return v
}

func (a *nodeAPI) healthz(w http.ResponseWriter, _ *http.Request) {
	pending, running := a.runner.Load()
	h := Health{
		Status:   "ok",
		Pending:  pending,
		Running:  running,
		Workers:  a.runner.Workers(),
		MaxQueue: a.opts.MaxQueue,
	}
	if a.opts.Cache != nil {
		st := a.opts.Cache.Stats()
		h.Cache = &st
	}
	writeJSON(w, http.StatusOK, h)
}

func (a *nodeAPI) submit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	defer body.Close()
	raw, err := io.ReadAll(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	sp, err := spec.Parse(raw)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	j, err := a.runner.Submit(sp)
	switch {
	case err == jobs.ErrBusy:
		// Shed load: the queue bound exists precisely so a saturated node
		// answers fast instead of buffering; a coordinator reroutes, a
		// direct client backs off.
		writeShed(w, http.StatusTooManyRequests, "1", err)
		return
	case err == jobs.ErrDraining:
		writeShed(w, http.StatusServiceUnavailable, "5", err)
		return
	case err != nil:
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusAccepted, view(j, false))
}

func (a *nodeAPI) list(w http.ResponseWriter, _ *http.Request) {
	all := a.runner.Jobs()
	views := make([]jobView, 0, len(all))
	for _, j := range all {
		views = append(views, view(j, false))
	}
	writeJSON(w, http.StatusOK, views)
}

func (a *nodeAPI) job(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	j, ok := a.runner.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
	}
	return j, ok
}

func (a *nodeAPI) get(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("watch") == "" {
		writeJSON(w, http.StatusOK, view(j, true))
		return
	}
	watchJob(w, r, j)
}

// watchJob streams NDJSON snapshots whenever the job's sequence counter
// advances, ending with a final snapshot embedding the result (including
// the archcontest-obs-v1 metrics for recorded jobs).
//
// The stream is subscription-driven, not polled: the handler sleeps on the
// job's notification channel and wakes only when something changed. The
// subscription is released on every exit path — in particular when the
// client disconnects (request context done) mid-stream — so an abandoned
// watch never keeps writing into a dead connection and never leaks its
// watcher registration (locked by TestNodeWatchDisconnectReleases).
func watchJob(w http.ResponseWriter, r *http.Request, j *jobs.Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v jobView) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	notify, release := j.Subscribe()
	defer release()
	lastSeq := int64(-1)
	for {
		snap := j.Snapshot()
		if snap.Seq != lastSeq {
			lastSeq = snap.Seq
			if snap.State.Terminal() {
				emit(view(j, true))
				return
			}
			if !emit(jobView{Snapshot: snap}) {
				return
			}
		} else if snap.State.Terminal() {
			emit(view(j, true))
			return
		}
		select {
		case <-notify:
		case <-j.Done():
			// Loop once more to emit the terminal snapshot.
		case <-r.Context().Done():
			// Client went away: release the watcher (deferred) and stop
			// instead of writing to a dead connection.
			return
		}
	}
}

func (a *nodeAPI) result(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	snap := j.Snapshot()
	if !snap.State.Terminal() {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s", snap.ID, snap.State))
		return
	}
	writeJSON(w, http.StatusOK, view(j, true))
}

func (a *nodeAPI) trace(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	snap := j.Snapshot()
	if !snap.State.Terminal() {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s", snap.ID, snap.State))
		return
	}
	out, err := j.Outcome()
	if err != nil || out == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s has no result", snap.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := out.WriteChromeTrace(w); err != nil {
		writeErr(w, http.StatusNotFound, err)
	}
}

func (a *nodeAPI) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, view(j, false))
}
