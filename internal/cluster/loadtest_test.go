package cluster

import (
	"context"
	"testing"
	"time"
)

// TestClusterLoad drives the full load harness: a 3-node fleet under 64
// concurrent job streams (16 under -short), cold and warm passes, against
// both routers. It asserts the load completes losslessly and that
// cache-aware routing's warm pass beats (or at worst matches) the
// round-robin baseline's cache hit rate — the property the router exists
// to deliver.
func TestClusterLoad(t *testing.T) {
	opts := LoadTestOptions{Nodes: 3, Streams: 64, Jobs: 128, Specs: 24, N: 60_000}
	if testing.Short() {
		opts.Streams, opts.Jobs, opts.Specs = 16, 32, 12
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	affinity, err := RunLoadTest(ctx, opts)
	if err != nil {
		t.Fatalf("affinity run: %v", err)
	}
	base := opts
	base.RoundRobin = true
	baseline, err := RunLoadTest(ctx, base)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	for name, r := range map[string]*LoadTestResult{"affinity": affinity, "baseline": baseline} {
		for pass, ps := range map[string]PassStats{"cold": r.Cold, "warm": r.Warm} {
			if ps.Failed != 0 {
				t.Errorf("%s %s pass: %d/%d jobs failed", name, pass, ps.Failed, ps.Jobs)
			}
			if ps.P50Ms <= 0 || ps.P99Ms < ps.P50Ms {
				t.Errorf("%s %s pass: implausible latency percentiles p50=%.2fms p99=%.2fms",
					name, pass, ps.P50Ms, ps.P99Ms)
			}
		}
		if r.Coord.Lost != 0 {
			t.Errorf("%s run lost %d jobs", name, r.Coord.Lost)
		}
	}

	// Cache-aware routing must turn the warm pass into cache hits at least
	// as well as blind round-robin placement does.
	if affinity.Warm.HitRate < baseline.Warm.HitRate {
		t.Errorf("cache-aware warm hit rate %.3f below round-robin baseline %.3f",
			affinity.Warm.HitRate, baseline.Warm.HitRate)
	}
	// And in absolute terms the warm pass should mostly hit: every shape
	// was cached somewhere during the cold pass, and affinity routing
	// sends repeats back to that node.
	if affinity.Warm.HitRate < 0.9 {
		t.Errorf("cache-aware warm hit rate %.3f, want >=0.9", affinity.Warm.HitRate)
	}
	t.Logf("affinity: cold p50=%.1fms p99=%.1fms hit=%.3f | warm p50=%.1fms p99=%.1fms hit=%.3f",
		affinity.Cold.P50Ms, affinity.Cold.P99Ms, affinity.Cold.HitRate,
		affinity.Warm.P50Ms, affinity.Warm.P99Ms, affinity.Warm.HitRate)
	t.Logf("baseline: warm p50=%.1fms p99=%.1fms hit=%.3f",
		baseline.Warm.P50Ms, baseline.Warm.P99Ms, baseline.Warm.HitRate)
}
