package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// CoordOptions configures a Coordinator.
type CoordOptions struct {
	// Nodes are the fleet nodes' base URLs ("http://host:port").
	Nodes []string
	// Client issues every node request. It must not carry a global
	// timeout (watch streams are long-lived); probes bound themselves with
	// per-request contexts. Nil gets a fresh default client.
	Client *http.Client
	// ProbeInterval is the health-probe period (default 500ms).
	ProbeInterval time.Duration
	// MaxAttempts bounds how many nodes one job may be placed on before
	// the coordinator declares it failed (default 3: the initial placement
	// plus two reroutes).
	MaxAttempts int
	// RoundRobin replaces cache-aware routing with round-robin placement.
	// It exists as the baseline leg of the routing benchmark; leave it off
	// in production.
	RoundRobin bool
}

// CoordStats counts coordinator traffic.
type CoordStats struct {
	// Submits counts accepted facade submissions.
	Submits int64 `json:"submits"`
	// AffinityHits is the subset of Submits placed on the route key's
	// first-ranked node — the placements that can reuse a warm cache.
	AffinityHits int64 `json:"affinity_hits"`
	// Sheds counts node-level refusals (429/503/unreachable) stepped over
	// during placement.
	Sheds int64 `json:"sheds"`
	// Rejected counts submissions no node would accept (facade 503s).
	Rejected int64 `json:"rejected"`
	// Reroutes counts successful mid-job re-placements after a node died.
	Reroutes int64 `json:"reroutes"`
	// Lost counts jobs declared failed because every reroute was
	// exhausted. (The job surfaces as state "failed" with a cause — lost
	// here means lost capacity, never a silently dropped record.)
	Lost int64 `json:"lost"`
}

// Coordinator shards scenario specs across fleet nodes and fronts them
// with a cluster-wide /v1/jobs facade. See the package comment for the
// design; construct with NewCoordinator, serve Handler, stop with Drain
// (graceful) and/or Close (hard).
type Coordinator struct {
	opts   CoordOptions
	client *http.Client
	ctx    context.Context
	stop   context.CancelFunc

	nodes []*nodeState // fixed set, CoordOptions.Nodes order

	mu       sync.Mutex
	jobs     map[string]*coordJob
	order    []string
	nextID   int64
	draining bool
	wg       sync.WaitGroup // one monitor per non-terminal job

	rr atomic.Uint64 // round-robin cursor (baseline routing)

	submits, affinityHits, sheds, rejected, reroutes, lost atomic.Int64
}

// nodeState is the coordinator's live view of one node.
type nodeState struct {
	url     string
	healthy atomic.Bool
	pending atomic.Int64
	running atomic.Int64
}

// NewCoordinator builds a coordinator over the node set and performs one
// synchronous probe round so routing works immediately. Callers must
// eventually call Close (Drain alone leaves the probe loop running).
func NewCoordinator(opts CoordOptions) *Coordinator {
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 500 * time.Millisecond
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		opts:   opts,
		client: client,
		ctx:    ctx,
		stop:   cancel,
		jobs:   make(map[string]*coordJob),
	}
	for _, u := range opts.Nodes {
		c.nodes = append(c.nodes, &nodeState{url: u})
	}
	c.probeAll()
	go c.probeLoop()
	return c
}

// Close hard-stops the coordinator: probes end and every monitor's node
// stream is torn down. In-flight node jobs keep running on their nodes;
// use Drain first for a graceful stop.
func (c *Coordinator) Close() { c.stop() }

// Drain stops accepting new submissions and waits until every accepted
// job is terminal, or ctx ends (ctx.Err() is returned and the remaining
// monitors keep running).
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats reports the traffic counters.
func (c *Coordinator) Stats() CoordStats {
	return CoordStats{
		Submits:      c.submits.Load(),
		AffinityHits: c.affinityHits.Load(),
		Sheds:        c.sheds.Load(),
		Rejected:     c.rejected.Load(),
		Reroutes:     c.reroutes.Load(),
		Lost:         c.lost.Load(),
	}
}

// probeLoop refreshes node health every ProbeInterval until Close.
func (c *Coordinator) probeLoop() {
	tick := time.NewTicker(c.opts.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-tick.C:
			c.probeAll()
		}
	}
}

// rpcTimeout bounds probe and liveness requests. It scales with the probe
// interval but never drops below a floor: a node that is merely slow under
// load must not be mistaken for a dead one (hard death shows up as an
// immediate connection error anyway, so a generous floor does not delay
// fault detection).
func (c *Coordinator) rpcTimeout() time.Duration {
	d := 4 * c.opts.ProbeInterval
	if d < 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func (c *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for _, ns := range c.nodes {
		wg.Add(1)
		go func(ns *nodeState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(c.ctx, c.rpcTimeout())
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ns.url+"/healthz", nil)
			if err != nil {
				ns.healthy.Store(false)
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				ns.healthy.Store(false)
				return
			}
			defer resp.Body.Close()
			var h Health
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&h) != nil {
				ns.healthy.Store(false)
				return
			}
			ns.pending.Store(int64(h.Pending))
			ns.running.Store(int64(h.Running))
			ns.healthy.Store(true)
		}(ns)
	}
	wg.Wait()
}

// healthyNodes returns the live node URLs in configuration order.
func (c *Coordinator) healthyNodes() []string {
	out := make([]string, 0, len(c.nodes))
	for _, ns := range c.nodes {
		if ns.healthy.Load() {
			out = append(out, ns.url)
		}
	}
	return out
}

func (c *Coordinator) nodeState(url string) *nodeState {
	for _, ns := range c.nodes {
		if ns.url == url {
			return ns
		}
	}
	return nil
}

// placementOrder ranks the healthy nodes for a route key: rendezvous
// affinity order normally, a rotating cursor under the round-robin
// baseline.
func (c *Coordinator) placementOrder(routeKey string) []string {
	healthy := c.healthyNodes()
	if len(healthy) == 0 {
		return nil
	}
	if c.opts.RoundRobin {
		i := int(c.rr.Add(1)-1) % len(healthy)
		return append(healthy[i:], healthy[:i]...)
	}
	return Rank(routeKey, healthy)
}

// coordJob is the coordinator's record of one facade job. It is the
// durable identity a client holds: node-side jobs may die and be re-placed
// underneath it, but the coordJob always ends in exactly one terminal
// state.
type coordJob struct {
	id       string
	rawSpec  []byte
	routeKey string

	mu        sync.Mutex
	node      string         // owning node URL
	remoteID  string         // node-side job ID
	attempts  int            // placements so far (1 = never rerouted)
	lastView  map[string]any // latest node-side snapshot (terminal one embeds the result)
	seq       int64          // coordinator-side monotonic sequence
	cancelled bool
	terminal  bool
	failErr   string // coordinator-declared failure (node loss)

	done    chan struct{}
	subs    map[int]chan struct{}
	nextSub int
}

// update ingests a node-side snapshot line and wakes facade watchers.
// The node's seq restarts after a reroute, so the facade maintains its own
// monotonic sequence.
func (j *coordJob) update(line map[string]any) {
	j.mu.Lock()
	j.lastView = line
	j.bumpLocked()
	j.mu.Unlock()
}

func (j *coordJob) bumpLocked() {
	j.seq++
	for _, ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// markTerminal finalizes the record exactly once. A non-empty failErr
// declares a coordinator-level failure (node loss) that overrides
// whatever the last node snapshot said.
func (j *coordJob) markTerminal(failErr string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal {
		return
	}
	j.terminal = true
	j.failErr = failErr
	j.bumpLocked()
	close(j.done)
}

func (j *coordJob) isTerminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminal
}

func (j *coordJob) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[int]chan struct{})
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, id)
		j.mu.Unlock()
	}
}

// view renders the facade's client-facing snapshot: the node's latest
// snapshot under the cluster-wide identity, annotated with placement
// metadata. withResult=false strips the (potentially large) embedded
// result for list views.
func (j *coordJob) view(withResult bool) (map[string]any, int64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := make(map[string]any, len(j.lastView)+4)
	for k, val := range j.lastView {
		v[k] = val
	}
	v["id"] = j.id
	v["node"] = j.node
	v["attempts"] = j.attempts
	v["retries"] = j.attempts - 1
	v["seq"] = j.seq
	if j.failErr != "" {
		v["state"] = "failed"
		v["error"] = j.failErr
		delete(v, "result")
	} else if j.terminal && j.cancelled {
		// The node may have died before reporting the cancellation; don't
		// leave a terminal record claiming to still be running.
		if s, _ := v["state"].(string); s != "done" && s != "failed" && s != "cancelled" {
			v["state"] = "cancelled"
		}
	}
	if !withResult || !j.terminal {
		delete(v, "result")
	}
	return v, j.seq, j.terminal
}

// ---- placement and monitoring ----

// postJob submits raw spec JSON to a node. It returns the HTTP status and
// the decoded response body (nil on undecodable bodies).
func (c *Coordinator) postJob(node string, raw []byte) (int, map[string]any, error) {
	req, err := http.NewRequestWithContext(c.ctx, http.MethodPost, node+"/v1/jobs", bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var body map[string]any
	json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body)
	return resp.StatusCode, body, nil
}

// place puts the job on the first node (in placement order) that accepts
// it. It reports whether a node accepted; shed/unreachable nodes are
// stepped over.
func (c *Coordinator) place(j *coordJob, exclude string) bool {
	ranked := c.placementOrder(j.routeKey)
	for i, node := range ranked {
		if node == exclude {
			continue
		}
		status, body, err := c.postJob(node, j.rawSpec)
		if err != nil {
			// Node unreachable before the prober noticed: mark it down so
			// subsequent placements skip it immediately.
			if ns := c.nodeState(node); ns != nil {
				ns.healthy.Store(false)
			}
			c.sheds.Add(1)
			continue
		}
		if status == http.StatusAccepted {
			remoteID, _ := body["id"].(string)
			j.mu.Lock()
			j.node = node
			j.remoteID = remoteID
			j.attempts++
			j.lastView = body
			j.bumpLocked()
			j.mu.Unlock()
			if i == 0 && exclude == "" {
				c.affinityHits.Add(1)
			}
			return true
		}
		// 429/503: the node shed us; fall through to the next choice.
		c.sheds.Add(1)
	}
	return false
}

// monitor follows one job to its terminal state: it streams the owning
// node's watch endpoint, mirrors every snapshot into the coordJob, and —
// when the node dies mid-job — re-places the job on a surviving node
// (bounded by MaxAttempts) or declares it failed. Exactly one monitor runs
// per job; it is the only goroutine that marks the job terminal.
func (c *Coordinator) monitor(j *coordJob) {
	defer c.wg.Done()
	for {
		terminal := c.watchOnce(j)
		if terminal {
			return
		}
		if c.ctx.Err() != nil {
			// Hard shutdown (Close): surface a terminal event so no
			// facade watcher hangs, without claiming anything about the
			// node-side job.
			j.markTerminal("coordinator shut down while the job was in flight")
			return
		}
		if c.remoteAlive(j) {
			// Transient stream break: the node still has the job; resume
			// watching (unless the recheck already observed the terminal
			// snapshot).
			if j.isTerminal() {
				return
			}
			continue
		}
		// The owning node is gone (or lost the job). Reroute or fail —
		// never leave the record non-terminal.
		j.mu.Lock()
		cancelled := j.cancelled
		attempts := j.attempts
		dead := j.node
		j.mu.Unlock()
		if cancelled {
			j.markTerminal("")
			return
		}
		if attempts >= c.opts.MaxAttempts {
			c.lost.Add(1)
			j.markTerminal(fmt.Sprintf("node %s died and the job exhausted its %d placements", dead, attempts))
			return
		}
		if !c.place(j, dead) {
			c.lost.Add(1)
			j.markTerminal(fmt.Sprintf("node %s died and no surviving node accepted the job", dead))
			return
		}
		c.reroutes.Add(1)
	}
}

// watchOnce streams the owning node's watch endpoint into the coordJob.
// It returns true when a terminal snapshot was observed (the job record is
// finalized), false when the stream ended first.
func (c *Coordinator) watchOnce(j *coordJob) bool {
	j.mu.Lock()
	node, remoteID := j.node, j.remoteID
	j.mu.Unlock()
	req, err := http.NewRequestWithContext(c.ctx, http.MethodGet,
		node+"/v1/jobs/"+remoteID+"?watch=1", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		var line map[string]any
		if json.Unmarshal(sc.Bytes(), &line) != nil {
			return false
		}
		j.update(line)
		if state, _ := line["state"].(string); state == "done" || state == "failed" || state == "cancelled" {
			j.markTerminal("")
			return true
		}
	}
	return false
}

// remoteAlive checks whether the owning node still has the job after a
// stream break (distinguishing a transient disconnect from node death).
func (c *Coordinator) remoteAlive(j *coordJob) bool {
	j.mu.Lock()
	node, remoteID := j.node, j.remoteID
	j.mu.Unlock()
	ctx, cancel := context.WithTimeout(c.ctx, c.rpcTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/jobs/"+remoteID, nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if ns := c.nodeState(node); ns != nil {
			ns.healthy.Store(false)
		}
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var line map[string]any
	if json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&line) != nil {
		return false
	}
	j.update(line)
	if state, _ := line["state"].(string); state == "done" || state == "failed" || state == "cancelled" {
		j.markTerminal("")
	}
	return true
}
