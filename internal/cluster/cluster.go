// Package cluster turns the single-node contest-as-a-service daemon into a
// horizontally sharded fleet. It has three layers:
//
//   - Node: the per-node HTTP API over a jobs.Runner (the same /v1/jobs
//     surface cmd/serve has always exposed), extended with bounded-queue
//     backpressure (429/503 shed-load responses with Retry-After), a
//     load-reporting /healthz, and an optional /v1/blobs mount that shares
//     the node's result-cache backend with the rest of the fleet.
//
//   - Coordinator: the cluster facade. It shards incoming scenario specs
//     across N nodes with cache-aware routing — rendezvous hashing over
//     spec.RouteKey, the content-address identity of the artifacts a spec
//     touches, so identical work lands on the node whose result cache is
//     already warm — probes node health, sheds load when every node is
//     saturated, and retries jobs onto surviving nodes when a node dies
//     mid-job. Its /v1/jobs facade proxies submit/status/watch/cancel/
//     result/trace to the owning node, preserving NDJSON streaming, and
//     guarantees every accepted job surfaces a terminal state: retried
//     elsewhere, completed, or failed-with-cause — never silently lost.
//
//   - Fleet: an in-process coordinator-plus-nodes harness used by the
//     load/fault tests and cmd/bench -cluster.
package cluster

import (
	"encoding/json"
	"net/http"

	"archcontest/internal/resultcache"
)

// Health is the /healthz payload of both nodes and the coordinator. For a
// node, Pending/Running/Workers/MaxQueue describe the local runner and
// Cache its result cache; for the coordinator, Nodes describes the fleet.
type Health struct {
	Status  string `json:"status"` // "ok" or "draining"
	Pending int    `json:"pending"`
	Running int    `json:"running"`
	Workers int    `json:"workers,omitempty"`
	// MaxQueue is the node's queue bound (0 = unbounded).
	MaxQueue int `json:"max_queue,omitempty"`
	// Cache carries the node's result-cache counters, so fleet-level cache
	// hit rates can be aggregated over HTTP.
	Cache *resultcache.Stats `json:"cache,omitempty"`
	// Nodes is the coordinator's per-node view.
	Nodes []NodeHealth `json:"nodes,omitempty"`
}

// NodeHealth is the coordinator's view of one node.
type NodeHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Pending int    `json:"pending"`
	Running int    `json:"running"`
	// Jobs counts facade jobs currently owned by the node.
	Jobs int `json:"jobs"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeShed answers a shed-load response: the HTTP translation of "try
// again shortly, possibly elsewhere".
func writeShed(w http.ResponseWriter, code int, retryAfter string, err error) {
	w.Header().Set("Retry-After", retryAfter)
	writeErr(w, code, err)
}
