// Package isa defines the dynamic-instruction representation shared by the
// trace generator, the out-of-order core model, and the contesting system.
//
// The representation is deliberately compact: contesting operates on the
// retired results of a dynamic instruction stream, so the only properties
// that matter to any measured effect are the operation class, the register
// dependences, memory addresses, and branch outcomes. There is no encoding,
// no virtual memory, and no wrong-path instruction stream (the core model is
// trace-driven and charges misprediction penalties in time instead).
package isa

import "fmt"

// RegID names an architectural register. Register 0 reads as always-ready
// and is not renamed (like the zero register of most RISC ISAs); use it as
// the "no register" marker for absent sources and destinations.
type RegID uint8

// NumRegs is the number of architectural registers, including the zero
// register.
const NumRegs = 64

// NoReg is the absent-register marker.
const NoReg RegID = 0

// OpClass is the execution class of an instruction.
type OpClass uint8

const (
	// OpALU is a single-cycle integer operation.
	OpALU OpClass = iota
	// OpMul is a pipelined integer multiply.
	OpMul
	// OpDiv is an unpipelined integer divide.
	OpDiv
	// OpLoad reads memory into a register.
	OpLoad
	// OpStore writes a register to memory.
	OpStore
	// OpBranch is a conditional branch. Its outcome is part of the trace.
	OpBranch
	numOpClasses
)

// NumOpClasses is the number of distinct operation classes.
const NumOpClasses = int(numOpClasses)

var opNames = [...]string{"alu", "mul", "div", "load", "store", "branch"}

func (c OpClass) String() string {
	if int(c) < len(opNames) {
		return opNames[c]
	}
	return fmt.Sprintf("op(%d)", uint8(c))
}

// Valid reports whether c names a defined operation class.
func (c OpClass) Valid() bool { return c < numOpClasses }

// opLatencies holds the execution latency of each class; loads and stores
// carry their one-cycle address generation here, with hierarchy latency
// added by the core.
var opLatencies = [NumOpClasses]int{
	OpALU:    1,
	OpMul:    3,
	OpDiv:    12,
	OpLoad:   1,
	OpStore:  1,
	OpBranch: 1,
}

// Latency reports the execution latency of the class in cycles, exclusive of
// memory hierarchy time (loads and stores add cache access latency on top of
// their one-cycle address generation). It panics on an invalid class, as the
// bounds of the latency table enforce.
func (c OpClass) Latency() int { return opLatencies[c] }

// Pipelined reports whether multiple operations of the class may be in
// flight in one functional unit (divides are not).
func (c OpClass) Pipelined() bool { return c != OpDiv }

// Inst is one dynamic instruction of a trace. Instructions are identified by
// their index in the trace; the index doubles as the paper's retired-
// instruction number used by the pop-counter/fetch-counter protocol.
type Inst struct {
	// PC is the static instruction address (used by branch predictors).
	PC uint64
	// Addr is the effective memory address of a load or store; zero otherwise.
	Addr uint64
	// Src1, Src2 are source registers (NoReg if absent).
	Src1, Src2 RegID
	// Dst is the destination register (NoReg for stores and branches).
	Dst RegID
	// Op is the execution class.
	Op OpClass
	// Taken is the branch outcome (branches only).
	Taken bool
}

// HasDst reports whether the instruction produces a register value.
func (in *Inst) HasDst() bool { return in.Dst != NoReg }

// IsMem reports whether the instruction accesses data memory.
func (in *Inst) IsMem() bool { return in.Op == OpLoad || in.Op == OpStore }

func (in Inst) String() string {
	switch in.Op {
	case OpBranch:
		t := "not-taken"
		if in.Taken {
			t = "taken"
		}
		return fmt.Sprintf("branch pc=%#x src=r%d,r%d %s", in.PC, in.Src1, in.Src2, t)
	case OpLoad:
		return fmt.Sprintf("load pc=%#x r%d<-[%#x] src=r%d", in.PC, in.Dst, in.Addr, in.Src1)
	case OpStore:
		return fmt.Sprintf("store pc=%#x [%#x]<-r%d addr-src=r%d", in.PC, in.Addr, in.Src2, in.Src1)
	default:
		return fmt.Sprintf("%s pc=%#x r%d<-r%d,r%d", in.Op, in.PC, in.Dst, in.Src1, in.Src2)
	}
}
