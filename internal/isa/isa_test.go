package isa

import (
	"strings"
	"testing"
)

func TestOpClassNames(t *testing.T) {
	want := map[OpClass]string{
		OpALU: "alu", OpMul: "mul", OpDiv: "div",
		OpLoad: "load", OpStore: "store", OpBranch: "branch",
	}
	for op, name := range want {
		if op.String() != name {
			t.Errorf("%v.String() = %q, want %q", uint8(op), op.String(), name)
		}
		if !op.Valid() {
			t.Errorf("%s not valid", name)
		}
	}
	if OpClass(200).Valid() {
		t.Error("OpClass(200) reported valid")
	}
}

func TestLatencies(t *testing.T) {
	if OpALU.Latency() != 1 || OpBranch.Latency() != 1 {
		t.Error("ALU/branch latency must be 1")
	}
	if OpMul.Latency() <= OpALU.Latency() {
		t.Error("multiply should be slower than ALU")
	}
	if OpDiv.Latency() <= OpMul.Latency() {
		t.Error("divide should be slower than multiply")
	}
	if OpDiv.Pipelined() {
		t.Error("divide should be unpipelined")
	}
	if !OpALU.Pipelined() || !OpLoad.Pipelined() {
		t.Error("ALU and load should be pipelined")
	}
}

func TestLatencyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OpClass(99).Latency()
}

func TestInstPredicates(t *testing.T) {
	ld := Inst{Op: OpLoad, Dst: 3, Addr: 0x100}
	if !ld.HasDst() || !ld.IsMem() {
		t.Error("load should have dst and be mem")
	}
	st := Inst{Op: OpStore, Src1: 1, Src2: 2, Addr: 0x100}
	if st.HasDst() || !st.IsMem() {
		t.Error("store should have no dst and be mem")
	}
	br := Inst{Op: OpBranch, Src1: 1}
	if br.HasDst() || br.IsMem() {
		t.Error("branch should have no dst and not be mem")
	}
}

func TestInstString(t *testing.T) {
	br := Inst{Op: OpBranch, PC: 0x40, Taken: true}
	if s := br.String(); !strings.Contains(s, "taken") || !strings.Contains(s, "0x40") {
		t.Errorf("branch string %q", s)
	}
	ld := Inst{Op: OpLoad, PC: 0x44, Dst: 5, Addr: 0x1000}
	if s := ld.String(); !strings.Contains(s, "load") || !strings.Contains(s, "0x1000") {
		t.Errorf("load string %q", s)
	}
	alu := Inst{Op: OpALU, PC: 0x48, Dst: 2, Src1: 1}
	if s := alu.String(); !strings.Contains(s, "alu") {
		t.Errorf("alu string %q", s)
	}
	st := Inst{Op: OpStore, PC: 0x4c, Addr: 0x2000}
	if s := st.String(); !strings.Contains(s, "store") {
		t.Errorf("store string %q", s)
	}
}
