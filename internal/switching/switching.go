// Package switching implements the paper's Section 2 motivation study: the
// oracle speedup of switching execution between two core configurations at
// different granularities.
//
// Methodology, exactly as the paper describes it: the execution of each
// benchmark is simulated on every configuration and the time to retire
// every 20 dynamic instructions is logged. For every pair of
// configurations, each 20-instruction region is assumed to retire at the
// rate of the faster of the two for that region — clock periods are
// factored in because the logs are in absolute time — and the per-region
// times are aggregated into a total execution time. Coarser granularities
// (40, 80, ... instructions) are formed by summing neighbouring regions.
package switching

import (
	"fmt"

	"archcontest/internal/sim"
	"archcontest/internal/ticks"
)

// RegionTimes converts a region boundary log (absolute time at every
// region-size-th retirement) into per-region durations.
func RegionTimes(regions []ticks.Time) []ticks.Duration {
	out := make([]ticks.Duration, len(regions))
	prev := ticks.Time(0)
	for i, t := range regions {
		out[i] = ticks.Duration(t - prev)
		prev = t
	}
	return out
}

// Coarsen sums neighbouring region durations pairwise, halving the number
// of regions (the trailing odd region, if any, is kept as-is).
func Coarsen(d []ticks.Duration) []ticks.Duration {
	out := make([]ticks.Duration, 0, (len(d)+1)/2)
	for i := 0; i+1 < len(d); i += 2 {
		out = append(out, d[i]+d[i+1])
	}
	if len(d)%2 == 1 {
		out = append(out, d[len(d)-1])
	}
	return out
}

// OracleTime reports the total execution time if every region retired at
// the rate of the faster of the two configurations for that region. The
// two logs must cover the same instruction regions.
func OracleTime(a, b []ticks.Duration) (ticks.Duration, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("switching: region logs differ in length: %d vs %d", len(a), len(b))
	}
	var total ticks.Duration
	for i := range a {
		if a[i] <= b[i] {
			total += a[i]
		} else {
			total += b[i]
		}
	}
	return total, nil
}

// PairResult is the best two-configuration oracle at one granularity.
type PairResult struct {
	// A and B index the two configurations of the best pair.
	A, B int
	// Speedup is the pair's relative oracle speedup over the baseline:
	// baselineTime/oracleTime − 1, so 0.25 means the oracle switcher
	// finishes 25% faster than the baseline (negative means slower).
	Speedup float64
}

// Study holds the per-region logs of one benchmark on every configuration,
// all at the base region size.
type Study struct {
	// Names are the configuration names, indexed as in Regions.
	Names []string
	// Regions[i] is configuration i's per-region durations.
	Regions [][]ticks.Duration
	// BaselineTime is the execution time the speedups are measured against
	// (the benchmark's own customized configuration).
	BaselineTime ticks.Duration
}

// NewStudy builds a study from single-core run results that were collected
// with region logging. baseline indexes the benchmark's own configuration.
func NewStudy(names []string, runs []sim.Result, baseline int) (*Study, error) {
	if len(names) != len(runs) || len(runs) == 0 {
		return nil, fmt.Errorf("switching: %d names for %d runs", len(names), len(runs))
	}
	if baseline < 0 || baseline >= len(runs) {
		return nil, fmt.Errorf("switching: baseline %d out of range", baseline)
	}
	s := &Study{Names: names}
	want := -1
	for i, r := range runs {
		if len(r.Regions) == 0 {
			return nil, fmt.Errorf("switching: run %s has no region log", names[i])
		}
		if want == -1 {
			want = len(r.Regions)
		} else if len(r.Regions) != want {
			return nil, fmt.Errorf("switching: region count mismatch: %s has %d, want %d", names[i], len(r.Regions), want)
		}
		s.Regions = append(s.Regions, RegionTimes(r.Regions))
	}
	s.BaselineTime = ticks.Duration(runs[baseline].Time)
	return s, nil
}

// BestPairAt finds the pair of configurations with the lowest oracle
// switching time at the given coarsening level (0 = the base region size,
// each level doubles the granularity) and reports its speedup over the
// baseline.
func (s *Study) BestPairAt(level int) (PairResult, error) {
	regions := make([][]ticks.Duration, len(s.Regions))
	for i, r := range s.Regions {
		for l := 0; l < level; l++ {
			r = Coarsen(r)
		}
		regions[i] = r
	}
	best := PairResult{A: -1, B: -1}
	var bestTime ticks.Duration
	for a := 0; a < len(regions); a++ {
		for b := a + 1; b < len(regions); b++ {
			t, err := OracleTime(regions[a], regions[b])
			if err != nil {
				return PairResult{}, err
			}
			if best.A == -1 || t < bestTime {
				bestTime = t
				best.A, best.B = a, b
			}
		}
	}
	if best.A == -1 {
		return PairResult{}, fmt.Errorf("switching: fewer than two configurations")
	}
	best.Speedup = float64(s.BaselineTime)/float64(bestTime) - 1
	return best, nil
}

// GranularityPoint is one point of the paper's Figure 1.
type GranularityPoint struct {
	// Granularity is the region size in instructions.
	Granularity int
	// Best is the best pair and its oracle speedup at this granularity.
	Best PairResult
}

// Sweep evaluates the best-pair oracle speedup at every power-of-two
// granularity from the base region size up to the whole trace.
func (s *Study) Sweep(baseRegion int) ([]GranularityPoint, error) {
	var out []GranularityPoint
	n := len(s.Regions[0])
	g := baseRegion
	for level := 0; ; level++ {
		best, err := s.BestPairAt(level)
		if err != nil {
			return nil, err
		}
		out = append(out, GranularityPoint{Granularity: g, Best: best})
		if n <= 1 {
			break
		}
		n = (n + 1) / 2
		g *= 2
	}
	return out, nil
}

// TopPairs returns up to k distinct configuration pairs ranked by their
// fine-grain (base granularity) oracle time — the shortlist used to select
// contesting candidates without contesting all pairs. Region logs of
// mismatched lengths (impossible for a study built by NewStudy, which
// enforces the invariant) are an error: silently skipping such pairs would
// mask a region-length regression as a shorter shortlist.
func (s *Study) TopPairs(k int) ([]PairResult, error) {
	type scored struct {
		pr PairResult
		t  ticks.Duration
	}
	var all []scored
	for a := 0; a < len(s.Regions); a++ {
		for b := a + 1; b < len(s.Regions); b++ {
			t, err := OracleTime(s.Regions[a], s.Regions[b])
			if err != nil {
				return nil, fmt.Errorf("switching: pair (%s,%s): %w", s.Names[a], s.Names[b], err)
			}
			sp := float64(s.BaselineTime)/float64(t) - 1
			all = append(all, scored{pr: PairResult{A: a, B: b, Speedup: sp}, t: t})
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].t < all[i].t {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	if k > len(all) {
		k = len(all)
	}
	if k < 0 {
		k = 0
	}
	out := make([]PairResult, 0, k)
	for _, sc := range all[:k] {
		out = append(out, sc.pr)
	}
	return out, nil
}
