package switching

// Edge cases of the region arithmetic: odd trailing regions, coarsening
// levels beyond log2 of the log, single-region studies, and degenerate
// (zero-cost) switching where the oracle should change nothing.

import (
	"testing"

	"archcontest/internal/sim"
	"archcontest/internal/ticks"
)

func durs(vs ...int64) []ticks.Duration {
	out := make([]ticks.Duration, len(vs))
	for i, v := range vs {
		out[i] = ticks.Duration(v)
	}
	return out
}

// boundaries builds a region boundary log (what sim.Result.Regions holds)
// from per-region durations.
func boundaries(d []ticks.Duration) []ticks.Time {
	out := make([]ticks.Time, len(d))
	var t ticks.Time
	for i, dd := range d {
		t = t.Add(dd)
		out[i] = t
	}
	return out
}

func studyFrom(t *testing.T, baseline int, perCore ...[]ticks.Duration) *Study {
	t.Helper()
	names := make([]string, len(perCore))
	runs := make([]sim.Result, len(perCore))
	for i, d := range perCore {
		names[i] = string(rune('a' + i))
		regions := boundaries(d)
		runs[i] = sim.Result{Regions: regions, Time: regions[len(regions)-1]}
	}
	s, err := NewStudy(names, runs, baseline)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCoarsenOddTrailingRegion(t *testing.T) {
	got := Coarsen(durs(1, 2, 3, 4, 5))
	want := durs(3, 7, 5) // trailing odd region kept as-is
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCoarsenDegenerate(t *testing.T) {
	if got := Coarsen(nil); len(got) != 0 {
		t.Fatalf("Coarsen(nil) = %v", got)
	}
	if got := Coarsen(durs(7)); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Coarsen of one region = %v", got)
	}
}

func TestCoarsenPreservesTotal(t *testing.T) {
	d := durs(5, 1, 4, 1, 5, 9, 2, 6, 5)
	var want ticks.Duration
	for _, v := range d {
		want += v
	}
	for len(d) > 1 {
		d = Coarsen(d)
		var got ticks.Duration
		for _, v := range d {
			got += v
		}
		if got != want {
			t.Fatalf("total drifted to %d (want %d) at %v", got, want, d)
		}
	}
}

func TestBestPairAtLevelBeyondLog2(t *testing.T) {
	// Far past full coarsening every log is a single region; the best pair
	// is then simply the two fastest totals, and nothing panics.
	s := studyFrom(t, 0,
		durs(4, 4, 4, 4), // total 16
		durs(1, 9, 1, 9), // total 20
		durs(9, 1, 9, 1), // total 20
	)
	fine, err := s.BestPairAt(0)
	if err != nil {
		t.Fatal(err)
	}
	// At fine grain, the complementary pair (b,c) wins: oracle time 4.
	if fine.A != 1 || fine.B != 2 {
		t.Fatalf("fine best pair (%d,%d)", fine.A, fine.B)
	}
	coarse, err := s.BestPairAt(50)
	if err != nil {
		t.Fatal(err)
	}
	// At whole-trace grain the oracle just picks one core per pair; every
	// pair containing a (total 16) ties at 16 and the first wins.
	if coarse.A != 0 || coarse.B != 1 {
		t.Fatalf("coarse best pair (%d,%d)", coarse.A, coarse.B)
	}
	if coarse.Speedup != 0 {
		t.Fatalf("coarse speedup %v, want 0 (baseline is the fastest total)", coarse.Speedup)
	}
}

func TestZeroCostSwitchIdenticalLogs(t *testing.T) {
	// Two identical configurations: switching can never help, at any
	// granularity — the speedup is exactly zero.
	d := durs(3, 1, 4, 1, 5)
	s := studyFrom(t, 0, d, append([]ticks.Duration(nil), d...))
	for level := 0; level < 5; level++ {
		pr, err := s.BestPairAt(level)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Speedup != 0 {
			t.Fatalf("level %d: speedup %v from identical logs", level, pr.Speedup)
		}
	}
}

func TestSweepReachesWholeTrace(t *testing.T) {
	// 5 base regions coarsen 1+ceil(log2(5))=4 times: 5 -> 3 -> 2 -> 1.
	s := studyFrom(t, 0, durs(1, 2, 3, 4, 5), durs(5, 4, 3, 2, 1))
	pts, err := s.Sweep(sim.RegionSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d sweep points", len(pts))
	}
	for i, p := range pts {
		if want := sim.RegionSize << i; p.Granularity != want {
			t.Fatalf("point %d at granularity %d, want %d", i, p.Granularity, want)
		}
		if i > 0 && p.Best.Speedup > pts[i-1].Best.Speedup+1e-12 {
			t.Fatalf("speedup rose with coarsening: %v then %v", pts[i-1].Best.Speedup, p.Best.Speedup)
		}
	}
}

func TestOracleTimeLengthMismatch(t *testing.T) {
	if _, err := OracleTime(durs(1, 2), durs(1)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestNewStudyValidation(t *testing.T) {
	good := boundaries(durs(1, 2))
	cases := []struct {
		name     string
		names    []string
		runs     []sim.Result
		baseline int
	}{
		{"no runs", nil, nil, 0},
		{"name/run mismatch", []string{"a"}, []sim.Result{{Regions: good}, {Regions: good}}, 0},
		{"baseline out of range", []string{"a"}, []sim.Result{{Regions: good}}, 1},
		{"negative baseline", []string{"a"}, []sim.Result{{Regions: good}}, -1},
		{"missing region log", []string{"a", "b"}, []sim.Result{{Regions: good}, {}}, 0},
		{"region count mismatch", []string{"a", "b"}, []sim.Result{{Regions: good}, {Regions: boundaries(durs(1))}}, 0},
	}
	for _, c := range cases {
		if _, err := NewStudy(c.names, c.runs, c.baseline); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestBestPairAtSingleConfiguration(t *testing.T) {
	s := studyFrom(t, 0, durs(1, 2, 3))
	if _, err := s.BestPairAt(0); err == nil {
		t.Fatal("single-configuration study produced a pair")
	}
}

func TestTopPairsBounds(t *testing.T) {
	s := studyFrom(t, 0, durs(2, 2), durs(1, 3), durs(3, 1))
	if got, err := s.TopPairs(100); err != nil || len(got) != 3 {
		t.Fatalf("k beyond pair count: %d pairs (err %v)", len(got), err)
	}
	got, err := s.TopPairs(1)
	if err != nil || len(got) != 1 || got[0].A != 1 || got[0].B != 2 {
		t.Fatalf("top pair %+v (err %v)", got, err)
	}
	if got, err := s.TopPairs(0); err != nil || len(got) != 0 {
		t.Fatalf("k=0 returned pairs: %+v (err %v)", got, err)
	}
	if got, err := s.TopPairs(-3); err != nil || len(got) != 0 {
		t.Fatalf("negative k returned pairs: %+v (err %v)", got, err)
	}
}
