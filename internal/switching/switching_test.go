package switching

import (
	"testing"
	"testing/quick"

	"archcontest/internal/sim"
	"archcontest/internal/ticks"
	"archcontest/internal/xrand"
)

func TestRegionTimes(t *testing.T) {
	regions := []ticks.Time{100, 250, 300}
	d := RegionTimes(regions)
	want := []ticks.Duration{100, 150, 50}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("durations %v, want %v", d, want)
		}
	}
}

func TestCoarsen(t *testing.T) {
	d := []ticks.Duration{1, 2, 3, 4, 5}
	c := Coarsen(d)
	want := []ticks.Duration{3, 7, 5}
	if len(c) != 3 {
		t.Fatalf("coarsened length %d", len(c))
	}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("coarsened %v, want %v", c, want)
		}
	}
	if len(Coarsen([]ticks.Duration{42})) != 1 {
		t.Error("single region should survive coarsening")
	}
}

func TestOracleTime(t *testing.T) {
	a := []ticks.Duration{10, 20, 30}
	b := []ticks.Duration{15, 5, 40}
	got, err := OracleTime(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10+5+30 {
		t.Errorf("oracle time %d, want 45", got)
	}
	if _, err := OracleTime(a, b[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

// Property: the oracle time never exceeds either input's total, and total
// time is preserved by coarsening.
func TestOracleAndCoarsenProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 2
		r := xrand.New(seed)
		a := make([]ticks.Duration, n)
		b := make([]ticks.Duration, n)
		var ta, tb ticks.Duration
		for i := 0; i < n; i++ {
			a[i] = ticks.Duration(r.Intn(1000) + 1)
			b[i] = ticks.Duration(r.Intn(1000) + 1)
			ta += a[i]
			tb += b[i]
		}
		o, err := OracleTime(a, b)
		if err != nil || o > ta || o > tb {
			return false
		}
		var ca ticks.Duration
		for _, v := range Coarsen(a) {
			ca += v
		}
		return ca == ta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: coarsening can only reduce (or preserve) the oracle speedup,
// because the coarse oracle is a restriction of the fine oracle.
func TestCoarseningMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 64
		a := make([]ticks.Duration, n)
		b := make([]ticks.Duration, n)
		for i := 0; i < n; i++ {
			a[i] = ticks.Duration(r.Intn(1000) + 1)
			b[i] = ticks.Duration(r.Intn(1000) + 1)
		}
		fine, _ := OracleTime(a, b)
		coarse, _ := OracleTime(Coarsen(a), Coarsen(b))
		return coarse >= fine
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mkRun(times []ticks.Time) sim.Result {
	return sim.Result{Regions: times, Time: times[len(times)-1], Insts: int64(len(times) * 20)}
}

func TestStudy(t *testing.T) {
	// Three synthetic configs over 4 regions. Config 0 (the baseline) is
	// mediocre everywhere; 1 and 2 alternate strengths, so fine-grain
	// switching between 1 and 2 wins.
	runs := []sim.Result{
		mkRun([]ticks.Time{100, 200, 300, 400}), // flat 100/region
		mkRun([]ticks.Time{50, 200, 250, 400}),  // 50,150,50,150
		mkRun([]ticks.Time{150, 200, 350, 400}), // 150,50,150,50
	}
	s, err := NewStudy([]string{"base", "x", "y"}, runs, 0)
	if err != nil {
		t.Fatal(err)
	}
	best, err := s.BestPairAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if best.A != 1 || best.B != 2 {
		t.Fatalf("best pair (%d,%d), want (1,2)", best.A, best.B)
	}
	// Oracle time 50*4=200 vs baseline 400: speedup 1.0.
	if best.Speedup < 0.99 || best.Speedup > 1.01 {
		t.Errorf("speedup %.3f, want 1.0", best.Speedup)
	}
	// At the coarsest granularity the alternation cancels out.
	pts, err := s.Sweep(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("sweep points %d", len(pts))
	}
	last := pts[len(pts)-1]
	if last.Best.Speedup >= best.Speedup {
		t.Errorf("coarse speedup %.3f not below fine %.3f", last.Best.Speedup, best.Speedup)
	}
	if pts[0].Granularity != 20 || pts[1].Granularity != 40 {
		t.Errorf("granularities %d, %d", pts[0].Granularity, pts[1].Granularity)
	}
}

func TestStudyErrors(t *testing.T) {
	good := mkRun([]ticks.Time{100, 200})
	if _, err := NewStudy([]string{"a"}, nil, 0); err == nil {
		t.Error("empty runs accepted")
	}
	if _, err := NewStudy([]string{"a", "b"}, []sim.Result{good, {}}, 0); err == nil {
		t.Error("missing region log accepted")
	}
	if _, err := NewStudy([]string{"a", "b"}, []sim.Result{good, mkRun([]ticks.Time{1, 2, 3})}, 0); err == nil {
		t.Error("mismatched region counts accepted")
	}
	if _, err := NewStudy([]string{"a"}, []sim.Result{good}, 3); err == nil {
		t.Error("baseline out of range accepted")
	}
	s, _ := NewStudy([]string{"a"}, []sim.Result{good}, 0)
	if _, err := s.BestPairAt(0); err == nil {
		t.Error("single-config best pair accepted")
	}
}

func TestTopPairs(t *testing.T) {
	runs := []sim.Result{
		mkRun([]ticks.Time{100, 200, 300, 400}),
		mkRun([]ticks.Time{50, 200, 250, 400}),
		mkRun([]ticks.Time{150, 200, 350, 400}),
	}
	s, _ := NewStudy([]string{"base", "x", "y"}, runs, 0)
	top, err := s.TopPairs(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("top pairs %d", len(top))
	}
	if top[0].A != 1 || top[0].B != 2 {
		t.Errorf("best pair (%d,%d), want (1,2)", top[0].A, top[0].B)
	}
	if top[0].Speedup < top[1].Speedup {
		t.Error("pairs not ranked")
	}
	if got, err := s.TopPairs(100); err != nil || len(got) != 3 {
		t.Errorf("requesting more pairs than exist returned %d (err %v)", len(got), err)
	}
}

// TestTopPairsSurfacesRaggedRegions locks the NewStudy invariant into
// TopPairs: a hand-built study whose region logs disagree in length must
// produce an error, not a silently shortened shortlist that would mask a
// region-length regression.
func TestTopPairsSurfacesRaggedRegions(t *testing.T) {
	s := &Study{
		Names: []string{"a", "b"},
		Regions: [][]ticks.Duration{
			{10, 20, 30},
			{10, 20},
		},
		BaselineTime: 60,
	}
	if _, err := s.TopPairs(1); err == nil {
		t.Error("ragged region logs ranked without error")
	}
}

// TestSpeedupValuePinned pins the Speedup definition to
// baselineTime/oracleTime − 1: baseline 400, oracle pair time 300 (regions
// min(100,150)+min(100,50)+min(100,150)+min(100,50)) → 400/300 − 1 = 1/3.
func TestSpeedupValuePinned(t *testing.T) {
	runs := []sim.Result{
		mkRun([]ticks.Time{100, 200, 300, 400}), // 100,100,100,100
		mkRun([]ticks.Time{150, 200, 350, 400}), // 150,50,150,50
	}
	s, err := NewStudy([]string{"base", "alt"}, runs, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, oracle := 400.0, 300.0
	want := base/oracle - 1
	best, err := s.BestPairAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Speedup != want {
		t.Errorf("BestPairAt speedup %v, want %v", best.Speedup, want)
	}
	top, err := s.TopPairs(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Speedup != want {
		t.Errorf("TopPairs speedup %+v, want %v", top, want)
	}
}
