package experiments

import (
	"context"
	"reflect"
	"testing"

	"archcontest/internal/contest"
	"archcontest/internal/resultcache"
	"archcontest/internal/sim"
)

// A verified Lab must produce byte-identical results to a plain one — the
// checkers observe, never perturb.
func TestVerifiedLabMatchesPlain(t *testing.T) {
	plain := NewLab(Config{N: 12_000})
	verified := NewLab(Config{N: 12_000, Verify: true, VerifyScanEvery: 16})

	cfg := plain.Cores()[0]
	pr, err := plain.RunOn(context.Background(), "gcc", cfg, sim.RunOptions{LogRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	vr, err := verified.RunOn(context.Background(), "gcc", cfg, sim.RunOptions{LogRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pr, vr) {
		t.Errorf("verified single run diverges:\nplain:    %+v\nverified: %+v", pr, vr)
	}

	pc, err := plain.Contest(context.Background(), "gcc", []string{"gcc", "mcf"}, contest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vc, err := verified.Contest(context.Background(), "gcc", []string{"gcc", "mcf"}, contest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pc, vc) {
		t.Errorf("verified contest diverges:\nplain:    %+v\nverified: %+v", pc, vc)
	}
}

// A verified Lab must bypass its result cache in both directions: no leaf
// is served from cache (a hit would skip the checks) and no verified leaf
// is persisted into it.
func TestVerifiedLabBypassesCache(t *testing.T) {
	cache, err := resultcache.Open("", resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Warm the cache with a plain lab.
	warm := NewLab(Config{N: 12_000, Cache: cache})
	cfg := warm.Cores()[0]
	if _, err := warm.RunOn(context.Background(), "gcc", cfg, sim.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	warmPuts := cache.Stats().Stores
	if warmPuts == 0 {
		t.Fatal("plain lab did not populate the cache")
	}

	v := NewLab(Config{N: 12_000, Cache: cache, Verify: true, VerifyScanEvery: 16})
	if _, err := v.RunOn(context.Background(), "gcc", cfg, sim.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	st := v.CampaignStats()
	if st.Simulations != 1 {
		t.Errorf("verified lab executed %d simulations, want 1 (cache must not serve it)", st.Simulations)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Errorf("verified lab touched the cache: %d hits, %d misses", st.CacheHits, st.CacheMisses)
	}
	if got := cache.Stats().Stores; got != warmPuts {
		t.Errorf("verified lab persisted into the cache: %d puts, want %d", got, warmPuts)
	}
}

// The acceptance sweep: every registered experiment runs clean under full
// verification (CI-scaled; the figures themselves are validated at full
// scale by cmd/figures).
func TestVerifiedFiguresSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("verified experiment sweep in short mode")
	}
	l := NewLab(Config{N: 12_000, CandidatePairs: 2, Verify: true, VerifyScanEvery: 16})
	for _, id := range RegistryOrder {
		tab, err := Registry[id](context.Background(), l)
		if err != nil {
			t.Fatalf("%s under verification: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
}
