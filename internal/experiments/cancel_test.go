package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"archcontest/internal/config"
	"archcontest/internal/resultcache"
	"archcontest/internal/workload"
)

// TestCampaignCancellation locks the contract of cancelling a Lab
// mid-campaign: the call returns context.Canceled, only a bounded number
// of additional leaves complete after the cancellation is requested, the
// result cache stays fully loadable, and a warm re-run over the same cache
// produces bit-identical results.
func TestCampaignCancellation(t *testing.T) {
	dir := t.TempDir()
	open := func() *resultcache.Cache {
		c, err := resultcache.Open(dir, resultcache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	const par = 2
	c := open()
	l := NewLab(Config{N: 5000, Parallelism: par, Cache: c})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Cancel as soon as at least one leaf result has been persisted, so the
	// warm-re-run assertions below have something to find.
	simsAtCancel := make(chan int64, 1)
	go func() {
		for {
			if c.Stats().Stores > 0 {
				simsAtCancel <- l.CampaignStats().Simulations
				cancel()
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	_, err := l.Matrix(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Matrix under cancel: err = %v, want context.Canceled", err)
	}
	atCancel := <-simsAtCancel
	final := l.CampaignStats().Simulations
	// Leaves already holding a worker slot finish; everything else is
	// abandoned. Between observing the counter and the engines seeing the
	// cancellation, at most one more batch of `par` leaves can slip in.
	if bound := atCancel + 2*par; final > bound {
		t.Errorf("%d leaves completed after cancelling at %d (bound %d)", final, atCancel, bound)
	}
	total := int64(len(workload.Benchmarks()) * len(config.PaletteNames()))
	if final >= total {
		t.Errorf("campaign ran to completion (%d leaves) despite cancellation", final)
	}

	// The cache must hold only complete, loadable results: a warm re-run
	// (fresh Lab, same directory) must succeed and match an uncached run
	// bit-identically.
	warm := NewLab(Config{N: 5000, Parallelism: par, Cache: open()})
	mw, err := warm.Matrix(context.Background())
	if err != nil {
		t.Fatalf("warm re-run after cancellation: %v", err)
	}
	if st := warm.CampaignStats(); st.CacheHits == 0 {
		t.Error("warm re-run hit the cache zero times; cancelled run persisted nothing")
	}
	cold := NewLab(Config{N: 5000, Parallelism: par})
	mc, err := cold.Matrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mw, mc) {
		t.Error("warm matrix over a cancellation-survivor cache differs from an uncached run")
	}
}

// TestCampaignPreCancelled: a cancelled context fails fast without
// executing any leaf and without touching the cache.
func TestCampaignPreCancelled(t *testing.T) {
	l := NewLab(Config{N: 2000, Parallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Runs(ctx, "gcc"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := l.CampaignStats(); st.Simulations != 0 {
		t.Errorf("%d leaves executed under a pre-cancelled context", st.Simulations)
	}
}
