// Package experiments drives the reproduction of every table and figure in
// the paper's evaluation. A Lab caches the expensive shared artifacts — the
// synthetic traces, the 11x11 benchmark-by-core single-core runs with
// 20-instruction region logs, and the per-benchmark switching studies — and
// each experiment derives its rows from them plus whatever contested runs
// it needs.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/merit"
	"archcontest/internal/sim"
	"archcontest/internal/switching"
	"archcontest/internal/trace"
	"archcontest/internal/workload"
)

// Config scales the experiments.
type Config struct {
	// N is the trace length in instructions (default 1,000,000 — the scaled
	// stand-in for the paper's 100M-instruction SimPoints).
	N int
	// LatencyNs is the core-to-core latency (default 1ns, the paper's
	// three cycles of a 3GHz core).
	LatencyNs float64
	// CandidatePairs is how many oracle-shortlisted pairs are contested per
	// benchmark when searching for its best contesting pair (default 3; the
	// pair containing the benchmark's own core is always added).
	CandidatePairs int
	// Parallelism bounds concurrent simulations (default NumCPU).
	Parallelism int
}

func (c *Config) applyDefaults() {
	if c.N == 0 {
		c.N = 1_000_000
	}
	if c.LatencyNs == 0 {
		c.LatencyNs = 1.0
	}
	if c.CandidatePairs == 0 {
		c.CandidatePairs = 3
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
	}
}

// Lab holds the cached shared state of an experiment campaign.
type Lab struct {
	cfg     Config
	benches []string
	cores   []config.CoreConfig

	mu       sync.Mutex
	traces   map[string]*trace.Trace
	runs     map[string][]sim.Result // bench -> per-core single runs (region-logged)
	matrix   *merit.Matrix
	studies  map[string]*switching.Study
	bestPair map[string]contest.Result
}

// NewLab builds a lab over the full benchmark registry and Appendix A
// palette.
func NewLab(cfg Config) *Lab {
	cfg.applyDefaults()
	return &Lab{
		cfg:      cfg,
		benches:  workload.Benchmarks(),
		cores:    config.Palette(),
		traces:   make(map[string]*trace.Trace),
		runs:     make(map[string][]sim.Result),
		studies:  make(map[string]*switching.Study),
		bestPair: make(map[string]contest.Result),
	}
}

// Benchmarks reports the benchmark names.
func (l *Lab) Benchmarks() []string { return l.benches }

// Cores reports the palette.
func (l *Lab) Cores() []config.CoreConfig { return l.cores }

// N reports the configured trace length.
func (l *Lab) N() int { return l.cfg.N }

// Trace returns (generating and caching) the benchmark's trace.
func (l *Lab) Trace(bench string) (*trace.Trace, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if tr, ok := l.traces[bench]; ok {
		return tr, nil
	}
	p, err := workload.ProfileFor(bench)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Generate(p, l.cfg.N)
	if err != nil {
		return nil, err
	}
	l.traces[bench] = tr
	return tr, nil
}

// parallel runs fn(i) for i in [0, n) on up to Parallelism goroutines and
// returns the first error.
func (l *Lab) parallel(n int, fn func(i int) error) error {
	sem := make(chan struct{}, l.cfg.Parallelism)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs <- fn(i)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Runs returns (computing and caching) the benchmark's single-core runs on
// every palette core, region-logged, in palette order. Single-core runs use
// the write-back policy (stand-alone, non-contesting mode).
func (l *Lab) Runs(bench string) ([]sim.Result, error) {
	l.mu.Lock()
	if rs, ok := l.runs[bench]; ok {
		l.mu.Unlock()
		return rs, nil
	}
	l.mu.Unlock()
	tr, err := l.Trace(bench)
	if err != nil {
		return nil, err
	}
	rs := make([]sim.Result, len(l.cores))
	err = l.parallel(len(l.cores), func(i int) error {
		r, err := sim.Run(l.cores[i], tr, sim.RunOptions{LogRegions: true})
		if err != nil {
			return err
		}
		rs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.runs[bench] = rs
	l.mu.Unlock()
	return rs, nil
}

// Matrix returns (computing and caching) the benchmark x core IPT matrix
// from stand-alone runs.
func (l *Lab) Matrix() (*merit.Matrix, error) {
	l.mu.Lock()
	if l.matrix != nil {
		m := l.matrix
		l.mu.Unlock()
		return m, nil
	}
	l.mu.Unlock()

	names := make([]string, len(l.cores))
	for i, c := range l.cores {
		names[i] = c.Name
	}
	m := merit.NewMatrix(l.benches, names)
	for b, bench := range l.benches {
		rs, err := l.Runs(bench)
		if err != nil {
			return nil, err
		}
		for c, r := range rs {
			m.IPT[b][c] = r.IPT()
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.matrix = m
	l.mu.Unlock()
	return m, nil
}

// Study returns (computing and caching) the benchmark's switching study.
func (l *Lab) Study(bench string) (*switching.Study, error) {
	l.mu.Lock()
	if s, ok := l.studies[bench]; ok {
		l.mu.Unlock()
		return s, nil
	}
	l.mu.Unlock()
	rs, err := l.Runs(bench)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(l.cores))
	baseline := -1
	for i, c := range l.cores {
		names[i] = c.Name
		if c.Name == bench {
			baseline = i
		}
	}
	if baseline < 0 {
		return nil, fmt.Errorf("experiments: no customized core for %s", bench)
	}
	s, err := switching.NewStudy(names, rs, baseline)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.studies[bench] = s
	l.mu.Unlock()
	return s, nil
}

// Contest runs a contested execution of the benchmark on the named palette
// cores at the lab's latency.
func (l *Lab) Contest(bench string, coreNames []string, opts contest.Options) (contest.Result, error) {
	tr, err := l.Trace(bench)
	if err != nil {
		return contest.Result{}, err
	}
	cfgs := make([]config.CoreConfig, len(coreNames))
	for i, n := range coreNames {
		c, err := config.PaletteCore(n)
		if err != nil {
			return contest.Result{}, err
		}
		cfgs[i] = c
	}
	if opts.LatencyNs == 0 {
		opts.LatencyNs = l.cfg.LatencyNs
	}
	return contest.Run(cfgs, tr, opts)
}

// BestPair finds (and caches) the benchmark's best 2-way contesting pair:
// the oracle switching analysis shortlists CandidatePairs fine-grain pairs
// (plus the best pair containing the benchmark's own core), each shortlisted
// pair is contested, and the highest-IPT contest wins.
func (l *Lab) BestPair(bench string) (contest.Result, error) {
	l.mu.Lock()
	if r, ok := l.bestPair[bench]; ok {
		l.mu.Unlock()
		return r, nil
	}
	l.mu.Unlock()

	study, err := l.Study(bench)
	if err != nil {
		return contest.Result{}, err
	}
	pairs := study.TopPairs(l.cfg.CandidatePairs)
	// Always consider the best pair that includes the benchmark's own core.
	own := -1
	for i, c := range l.cores {
		if c.Name == bench {
			own = i
		}
	}
	for _, pr := range study.TopPairs(len(l.cores) * len(l.cores)) {
		if pr.A == own || pr.B == own {
			pairs = append(pairs, pr)
			break
		}
	}
	seen := map[[2]int]bool{}
	var candidates [][2]int
	for _, pr := range pairs {
		key := [2]int{pr.A, pr.B}
		if seen[key] {
			continue
		}
		seen[key] = true
		candidates = append(candidates, key)
	}
	results := make([]contest.Result, len(candidates))
	err = l.parallel(len(candidates), func(i int) error {
		pr := candidates[i]
		r, err := l.Contest(bench, []string{l.cores[pr[0]].Name, l.cores[pr[1]].Name}, contest.Options{})
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return contest.Result{}, err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].IPT() > results[j].IPT() })
	best := results[0]
	l.mu.Lock()
	l.bestPair[bench] = best
	l.mu.Unlock()
	return best, nil
}

// OwnCoreIPT reports the benchmark's stand-alone IPT on its own customized
// core — the baseline of Figures 6, 7, and 8.
func (l *Lab) OwnCoreIPT(bench string) (float64, error) {
	m, err := l.Matrix()
	if err != nil {
		return 0, err
	}
	b, err := m.BenchIndex(bench)
	if err != nil {
		return 0, err
	}
	c, err := m.CoreIndex(bench)
	if err != nil {
		return 0, err
	}
	return m.IPT[b][c], nil
}
