// Package experiments drives the reproduction of every table and figure in
// the paper's evaluation. A Lab is the campaign engine: every expensive
// artifact — a synthetic trace, one benchmark-on-core single run, the 11x11
// IPT matrix, a per-benchmark switching study, a contested run, a best-pair
// search — is a task keyed by its inputs. Tasks are deduplicated across
// concurrent callers by a keyed, memoizing singleflight (two goroutines
// asking for the same artifact compute it once and share the result), their
// leaf simulations execute on a bounded pool that saturates the configured
// parallelism across benchmarks rather than within one call, and leaf
// results are persisted in an optional content-addressed result cache so a
// re-run only simulates what changed.
//
// Every artifact accessor takes a context. Cancellation is cooperative and
// bounded: un-started DAG leaves are abandoned (workers claim remaining
// items as cancelled without running them), in-flight leaves stop at the
// engines' next context poll, singleflight waiters unblock with the context
// error, and a cancelled leaf never reaches the result cache — so an
// interrupted campaign leaves only complete, loadable cache entries behind.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/invariant"
	"archcontest/internal/merit"
	"archcontest/internal/obs"
	"archcontest/internal/resultcache"
	"archcontest/internal/sim"
	"archcontest/internal/switching"
	"archcontest/internal/trace"
	"archcontest/internal/workload"
)

// Config scales the experiments.
type Config struct {
	// N is the trace length in instructions (default 1,000,000 — the scaled
	// stand-in for the paper's 100M-instruction SimPoints).
	N int
	// LatencyNs is the core-to-core latency (default 1ns, the paper's
	// three cycles of a 3GHz core).
	LatencyNs float64
	// CandidatePairs is how many oracle-shortlisted pairs are contested per
	// benchmark when searching for its best contesting pair (default 3; the
	// pair containing the benchmark's own core is always added).
	CandidatePairs int
	// Parallelism bounds concurrently executing simulations (default
	// NumCPU). The bound is global to the Lab: no matter how many
	// artifacts are requested concurrently, at most Parallelism
	// simulations run at once.
	Parallelism int
	// Cache, if non-nil, persists leaf results (single runs and contests)
	// across processes. Derived artifacts (matrix, studies, best pairs)
	// are cheap arithmetic over the leaves and are recomputed, which keeps
	// cache invalidation exact: a leaf key hashes the engine version, the
	// trace fingerprint, the core configuration, and the run options.
	Cache *resultcache.Cache
	// Verify attaches the verification subsystem (internal/invariant) to
	// every leaf simulation: per-cycle invariant checks plus differential
	// oracle replay of each core's retirement stream. A violation fails the
	// leaf. Verified leaves bypass the result cache in both directions —
	// the checks happen during execution, so a cache hit would silently
	// skip them, and a verified result must never launder into unverified
	// campaigns.
	Verify bool
	// VerifyScanEvery strides the checker's O(window) structural scans
	// (0 = every cycle). Only meaningful with Verify.
	VerifyScanEvery int64
	// ContestBatch is how many cache-missing contests one executing leaf
	// interleaves through contest.RunBatch's quantum round-robin when a
	// batch-aware artifact (BestPair's candidate fan-out) evaluates a set
	// of contests (0 means 2; 1 runs each contest as its own leaf, i.e.
	// batching off). Batching never changes results — each contest system
	// owns all of its state — only how leaves share a worker's time.
	ContestBatch int
	// Artifacts, if non-nil, receives a timed span for every leaf
	// computation the Lab actually executes (trace generation, single
	// runs, contests) — the campaign's self-observability timeline.
	// Memoized and cache-served artifacts record nothing, so the log
	// shows real work only. Excluded from result-cache keys.
	Artifacts *obs.ArtifactLog `json:"-"`
}

func (c *Config) applyDefaults() {
	if c.N == 0 {
		c.N = 1_000_000
	}
	if c.LatencyNs == 0 {
		c.LatencyNs = 1.0
	}
	if c.CandidatePairs == 0 {
		c.CandidatePairs = 3
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
	}
}

// CampaignStats counts the work a Lab actually performed, as opposed to
// the artifacts it served from memoization or the result cache.
type CampaignStats struct {
	// TraceGens, Simulations and Contests count executed leaf computations.
	TraceGens, Simulations, Contests int64
	// CacheHits and CacheMisses count result-cache lookups for leaf work
	// (zero when no cache is configured).
	CacheHits, CacheMisses int64
}

// Lab holds the cached shared state of an experiment campaign.
type Lab struct {
	cfg     Config
	benches []string
	cores   []config.CoreConfig

	flight flightGroup
	sem    chan struct{} // bounds concurrently executing leaf computations

	traceGens, sims, contests, cacheHits, cacheMisses atomic.Int64
}

// NewLab builds a lab over the full benchmark registry and Appendix A
// palette.
func NewLab(cfg Config) *Lab {
	cfg.applyDefaults()
	return &Lab{
		cfg:     cfg,
		benches: workload.Benchmarks(),
		cores:   config.Palette(),
		sem:     make(chan struct{}, cfg.Parallelism),
	}
}

// Benchmarks reports the benchmark names.
func (l *Lab) Benchmarks() []string { return l.benches }

// Cores reports the palette.
func (l *Lab) Cores() []config.CoreConfig { return l.cores }

// N reports the configured trace length.
func (l *Lab) N() int { return l.cfg.N }

// CampaignStats reports the executed-work counters so far.
func (l *Lab) CampaignStats() CampaignStats {
	return CampaignStats{
		TraceGens:   l.traceGens.Load(),
		Simulations: l.sims.Load(),
		Contests:    l.contests.Load(),
		CacheHits:   l.cacheHits.Load(),
		CacheMisses: l.cacheMisses.Load(),
	}
}

// flightGroup is a keyed, memoizing singleflight: the first caller of a key
// runs the function; concurrent callers for the same key wait and share the
// result; later callers get the memoized value without recomputation. A
// failed call is forgotten so the artifact can be retried.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// do runs fn once per key. Waiters block on the executing call but stay
// cancellable: a waiter whose own context ends returns its ctx error
// without waiting for the executor. When the executing call itself died of
// cancellation (its error is a context error) but this caller's context is
// still live, the forgotten call is retried rather than inheriting a
// foreign cancellation.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (any, error)) (any, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g.mu.Lock()
		if g.calls == nil {
			g.calls = make(map[string]*flightCall)
		}
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if isCtxErr(c.err) && ctx.Err() == nil {
				continue // executor was cancelled, we weren't: retry
			}
			return c.val, c.err
		}
		c := &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()

		c.val, c.err = fn()
		if c.err != nil {
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
		}
		close(c.done)
		return c.val, c.err
	}
}

// offer memoizes an already-computed value for key if no call exists yet,
// so batch-computed leaves join the singleflight memo and later per-leaf
// callers of the same key get the memoized value instead of recomputing.
// A key with a live or completed call is left untouched.
func (g *flightGroup) offer(key string, val any) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if _, ok := g.calls[key]; ok {
		return
	}
	c := &flightCall{done: make(chan struct{}), val: val}
	close(c.done)
	g.calls[key] = c
}

// peek returns the memoized value for key when a call has already completed
// successfully, without blocking on an in-flight executor.
func (g *flightGroup) peek(key string) (any, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.calls[key]
	if !ok {
		return nil, false
	}
	select {
	case <-c.done:
		if c.err == nil {
			return c.val, true
		}
	default:
	}
	return nil, false
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// execTimed runs one leaf computation under the global parallelism bound.
// The caller's goroutine blocks until a slot frees (or its context ends)
// and executes fn itself, so the Lab never owns idle worker goroutines.
// Leaf computations are pure (they never wait on other Lab tasks), so slot
// holders cannot deadlock. When Artifacts is configured, fn runs inside a
// recorded span; the span starts after the semaphore is acquired, so the
// artifact timeline shows executing work, not queueing.
func (l *Lab) execTimed(ctx context.Context, kind, name string, fn func()) error {
	select {
	case l.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-l.sem }()
	l.cfg.Artifacts.Time(kind, name, fn)
	return nil
}

// parallel runs fn(i) for i in [0, n) on a worker pool of at most
// Parallelism goroutines total (not one goroutine per item) and returns
// the error of the lowest-indexed failing item, deterministically. Once
// the context ends, workers claim the remaining un-started items and mark
// them with the context error instead of running them, so a cancelled
// campaign abandons its un-started DAG leaves immediately.
func (l *Lab) parallel(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := l.cfg.Parallelism
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(n) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(int(i))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Trace returns (generating and caching) the benchmark's trace.
func (l *Lab) Trace(ctx context.Context, bench string) (*trace.Trace, error) {
	v, err := l.flight.do(ctx, "trace/"+bench, func() (any, error) {
		p, err := workload.ProfileFor(bench)
		if err != nil {
			return nil, err
		}
		var tr *trace.Trace
		if eerr := l.execTimed(ctx, "trace", bench, func() {
			l.traceGens.Add(1)
			tr, err = workload.Generate(p, l.cfg.N)
		}); eerr != nil {
			return nil, eerr
		}
		if err != nil {
			return nil, err
		}
		return tr, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*trace.Trace), nil
}

// RunKey derives the content address of one single-core leaf run. It is
// the cache identity shared by every layer that executes single runs (Lab,
// explore, spec): engine version, trace fingerprint and shape, core
// configuration, run options.
func RunKey(tr *trace.Trace, cfg config.CoreConfig, opts sim.RunOptions) string {
	return resultcache.Key("run", sim.EngineVersion, tr.Fingerprint(), tr.Name(), tr.Len(), cfg, opts)
}

// ContestKey derives the content address of one contested leaf run.
func ContestKey(tr *trace.Trace, cfgs []config.CoreConfig, opts contest.Options) string {
	return resultcache.Key("contest", sim.EngineVersion, tr.Fingerprint(), tr.Name(), tr.Len(), cfgs, opts)
}

// RunOn returns (computing, deduplicating, and caching) one benchmark's
// stand-alone run on one palette-or-custom core configuration.
func (l *Lab) RunOn(ctx context.Context, bench string, cfg config.CoreConfig, opts sim.RunOptions) (sim.Result, error) {
	tr, err := l.Trace(ctx, bench)
	if err != nil {
		return sim.Result{}, err
	}
	key := RunKey(tr, cfg, opts)
	v, err := l.flight.do(ctx, "run/"+key, func() (any, error) {
		if l.cfg.Verify {
			var r sim.Result
			var rerr error
			if eerr := l.execTimed(ctx, "run", bench+"/"+cfg.Name, func() {
				l.sims.Add(1)
				r, rerr = l.runVerified(ctx, tr, cfg, opts)
			}); eerr != nil {
				return nil, eerr
			}
			if rerr != nil {
				return nil, rerr
			}
			return r, nil
		}
		if l.cfg.Cache != nil {
			var cached sim.Result
			if l.cfg.Cache.Get(key, &cached) {
				l.cacheHits.Add(1)
				return cached, nil
			}
			l.cacheMisses.Add(1)
		}
		var r sim.Result
		var rerr error
		if eerr := l.execTimed(ctx, "run", bench+"/"+cfg.Name, func() {
			l.sims.Add(1)
			r, rerr = sim.RunContext(ctx, cfg, tr, opts)
		}); eerr != nil {
			return nil, eerr
		}
		if rerr != nil {
			// A cancelled or failed run never reaches the cache.
			return nil, rerr
		}
		l.cfg.Cache.Put(key, r)
		return r, nil
	})
	if err != nil {
		return sim.Result{}, err
	}
	return v.(sim.Result), nil
}

// Runs returns (computing and caching) the benchmark's single-core runs on
// every palette core, region-logged, in palette order. Single-core runs use
// the write-back policy (stand-alone, non-contesting mode).
func (l *Lab) Runs(ctx context.Context, bench string) ([]sim.Result, error) {
	v, err := l.flight.do(ctx, "runs/"+bench, func() (any, error) {
		rs := make([]sim.Result, len(l.cores))
		err := l.parallel(ctx, len(l.cores), func(i int) error {
			r, err := l.RunOn(ctx, bench, l.cores[i], sim.RunOptions{LogRegions: true})
			if err != nil {
				return err
			}
			rs[i] = r
			return nil
		})
		if err != nil {
			return nil, err
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]sim.Result), nil
}

// Matrix returns (computing and caching) the benchmark x core IPT matrix
// from stand-alone runs. All benchmarks' runs are requested concurrently,
// so a single Matrix call saturates the Lab's parallelism across the whole
// 11x11 campaign instead of one benchmark at a time.
func (l *Lab) Matrix(ctx context.Context) (*merit.Matrix, error) {
	v, err := l.flight.do(ctx, "matrix", func() (any, error) {
		names := make([]string, len(l.cores))
		for i, c := range l.cores {
			names[i] = c.Name
		}
		m := merit.NewMatrix(l.benches, names)
		err := l.parallel(ctx, len(l.benches), func(b int) error {
			rs, err := l.Runs(ctx, l.benches[b])
			if err != nil {
				return err
			}
			for c, r := range rs {
				m.IPT[b][c] = r.IPT()
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := m.Validate(); err != nil {
			return nil, err
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*merit.Matrix), nil
}

// Study returns (computing and caching) the benchmark's switching study.
func (l *Lab) Study(ctx context.Context, bench string) (*switching.Study, error) {
	v, err := l.flight.do(ctx, "study/"+bench, func() (any, error) {
		rs, err := l.Runs(ctx, bench)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(l.cores))
		baseline := -1
		for i, c := range l.cores {
			names[i] = c.Name
			if c.Name == bench {
				baseline = i
			}
		}
		if baseline < 0 {
			return nil, fmt.Errorf("experiments: no customized core for %s", bench)
		}
		return switching.NewStudy(names, rs, baseline)
	})
	if err != nil {
		return nil, err
	}
	return v.(*switching.Study), nil
}

// Contest runs (deduplicating and caching) a contested execution of the
// benchmark on the named palette cores at the lab's latency.
func (l *Lab) Contest(ctx context.Context, bench string, coreNames []string, opts contest.Options) (contest.Result, error) {
	cfgs := make([]config.CoreConfig, len(coreNames))
	for i, n := range coreNames {
		c, err := config.PaletteCore(n)
		if err != nil {
			return contest.Result{}, err
		}
		cfgs[i] = c
	}
	return l.ContestConfigs(ctx, bench, cfgs, opts)
}

// ContestConfigs is Contest over explicit core configurations (hybrids,
// custom cores) rather than palette names.
func (l *Lab) ContestConfigs(ctx context.Context, bench string, cfgs []config.CoreConfig, opts contest.Options) (contest.Result, error) {
	tr, err := l.Trace(ctx, bench)
	if err != nil {
		return contest.Result{}, err
	}
	if opts.LatencyNs == 0 {
		opts.LatencyNs = l.cfg.LatencyNs
	}
	span := bench
	for _, c := range cfgs {
		span += "/" + c.Name
	}
	key := ContestKey(tr, cfgs, opts)
	v, err := l.flight.do(ctx, "contest/"+key, func() (any, error) {
		if l.cfg.Verify {
			var r contest.Result
			var rerr error
			if eerr := l.execTimed(ctx, "contest", span, func() {
				l.contests.Add(1)
				r, rerr = l.contestVerified(ctx, tr, cfgs, opts)
			}); eerr != nil {
				return nil, eerr
			}
			if rerr != nil {
				return nil, rerr
			}
			return r, nil
		}
		if l.cfg.Cache != nil {
			var cached contest.Result
			if l.cfg.Cache.Get(key, &cached) {
				l.cacheHits.Add(1)
				return cached, nil
			}
			l.cacheMisses.Add(1)
		}
		var r contest.Result
		var rerr error
		if eerr := l.execTimed(ctx, "contest", span, func() {
			l.contests.Add(1)
			r, rerr = contest.RunContext(ctx, cfgs, tr, opts)
		}); eerr != nil {
			return nil, eerr
		}
		if rerr != nil {
			return nil, rerr
		}
		l.cfg.Cache.Put(key, r)
		return r, nil
	})
	if err != nil {
		return contest.Result{}, err
	}
	return v.(contest.Result), nil
}

// ContestsConfigs evaluates a set of same-benchmark contests, in list
// order. Each unique configuration is computed once: duplicates share,
// memoized and cached results are served, and the remaining misses execute
// as batched leaves — groups of Config.ContestBatch systems interleaved by
// contest.RunBatch's quantum round-robin, each group occupying one
// parallelism slot, groups spread across the Lab's workers. Batched
// results join the singleflight memo and the result cache under the same
// ContestKey as per-leaf execution, so every layer stays bit-compatible.
// Verified labs take the per-leaf sequential path (observers attach per
// contest execution and verified leaves never touch the cache).
func (l *Lab) ContestsConfigs(ctx context.Context, bench string, cfgsList [][]config.CoreConfig, opts contest.Options) ([]contest.Result, error) {
	n := len(cfgsList)
	results := make([]contest.Result, n)
	if n == 0 {
		return results, nil
	}
	if l.cfg.Verify {
		err := l.parallel(ctx, n, func(i int) error {
			r, err := l.ContestConfigs(ctx, bench, cfgsList[i], opts)
			if err != nil {
				return err
			}
			results[i] = r
			return nil
		})
		if err != nil {
			return nil, err
		}
		return results, nil
	}
	tr, err := l.Trace(ctx, bench)
	if err != nil {
		return nil, err
	}
	if opts.LatencyNs == 0 {
		opts.LatencyNs = l.cfg.LatencyNs
	}
	keys := make([]string, n)
	firstOf := make(map[string]int, n)
	var missIdx []int // first-occurrence indices needing execution
	for i := range cfgsList {
		keys[i] = ContestKey(tr, cfgsList[i], opts)
		if _, dup := firstOf[keys[i]]; dup {
			continue
		}
		firstOf[keys[i]] = i
		if v, ok := l.flight.peek("contest/" + keys[i]); ok {
			results[i] = v.(contest.Result)
			continue
		}
		if l.cfg.Cache != nil {
			var cached contest.Result
			if l.cfg.Cache.Get(keys[i], &cached) {
				l.cacheHits.Add(1)
				results[i] = cached
				// Join the memo so later per-leaf callers of this key don't
				// repeat the cache lookup (hit accounting stays one-per-key,
				// exactly as the per-leaf flight path counts).
				l.flight.offer("contest/"+keys[i], cached)
				continue
			}
			l.cacheMisses.Add(1)
		}
		missIdx = append(missIdx, i)
	}
	group := l.cfg.ContestBatch
	if group < 1 {
		group = 2
	}
	numGroups := (len(missIdx) + group - 1) / group
	err = l.parallel(ctx, numGroups, func(g int) error {
		lo, hi := g*group, (g+1)*group
		if hi > len(missIdx) {
			hi = len(missIdx)
		}
		idx := missIdx[lo:hi]
		items := make([]contest.BatchItem, len(idx))
		span := bench
		for k, i := range idx {
			items[k] = contest.BatchItem{Configs: cfgsList[i], Trace: tr, Opts: opts}
			for _, c := range cfgsList[i] {
				span += "/" + c.Name
			}
		}
		var rs []contest.Result
		var rerr error
		if eerr := l.execTimed(ctx, "contest-batch", span, func() {
			l.contests.Add(int64(len(items)))
			rs, rerr = contest.RunBatch(ctx, items, contest.BatchOptions{Workers: 1, GroupSize: len(items)})
		}); eerr != nil {
			return eerr
		}
		if rerr != nil {
			// A cancelled or failed group never reaches the cache.
			return rerr
		}
		for k, i := range idx {
			results[i] = rs[k]
			l.cfg.Cache.Put(keys[i], rs[k])
			l.flight.offer("contest/"+keys[i], rs[k])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range cfgsList {
		if j := firstOf[keys[i]]; j != i {
			results[i] = results[j]
		}
	}
	return results, nil
}

// BestPair finds (and caches) the benchmark's best 2-way contesting pair:
// the oracle switching analysis shortlists CandidatePairs fine-grain pairs
// (plus the best pair containing the benchmark's own core), each shortlisted
// pair is contested, and the highest-IPT contest wins. IPT ties break to
// the earlier candidate (shortlist order), so the winner is deterministic.
func (l *Lab) BestPair(ctx context.Context, bench string) (contest.Result, error) {
	v, err := l.flight.do(ctx, "bestpair/"+bench, func() (any, error) {
		study, err := l.Study(ctx, bench)
		if err != nil {
			return nil, err
		}
		pairs, err := study.TopPairs(l.cfg.CandidatePairs)
		if err != nil {
			return nil, err
		}
		// Always consider the best pair that includes the benchmark's own core.
		own := -1
		for i, c := range l.cores {
			if c.Name == bench {
				own = i
			}
		}
		allPairs, err := study.TopPairs(len(l.cores) * len(l.cores))
		if err != nil {
			return nil, err
		}
		for _, pr := range allPairs {
			if pr.A == own || pr.B == own {
				pairs = append(pairs, pr)
				break
			}
		}
		seen := map[[2]int]bool{}
		var candidates [][2]int
		for _, pr := range pairs {
			key := [2]int{pr.A, pr.B}
			if seen[key] {
				continue
			}
			seen[key] = true
			candidates = append(candidates, key)
		}
		cfgsList := make([][]config.CoreConfig, len(candidates))
		for i, pr := range candidates {
			cfgsList[i] = []config.CoreConfig{l.cores[pr[0]], l.cores[pr[1]]}
		}
		results, err := l.ContestsConfigs(ctx, bench, cfgsList, contest.Options{})
		if err != nil {
			return nil, err
		}
		sort.SliceStable(results, func(i, j int) bool { return results[i].IPT() > results[j].IPT() })
		return results[0], nil
	})
	if err != nil {
		return contest.Result{}, err
	}
	return v.(contest.Result), nil
}

// labViolations collects checker violations of one verified leaf, capped so
// a systematically broken run cannot accumulate unbounded error chains.
type labViolations struct {
	errs []error
	more int
}

func (v *labViolations) add(err error) {
	if len(v.errs) < 8 {
		v.errs = append(v.errs, err)
	} else {
		v.more++
	}
}

func (v *labViolations) err(what string) error {
	if len(v.errs) == 0 {
		return nil
	}
	if v.more > 0 {
		v.errs = append(v.errs, fmt.Errorf("... and %d further violations", v.more))
	}
	return fmt.Errorf("experiments: verified %s: %w", what, errors.Join(v.errs...))
}

// runVerified executes one single-core leaf with the invariant checker and
// differential oracle attached. Never cached: the checks happen during
// execution.
func (l *Lab) runVerified(ctx context.Context, tr *trace.Trace, cfg config.CoreConfig, opts sim.RunOptions) (sim.Result, error) {
	var v labViolations
	chk := invariant.NewCoreChecker(tr, invariant.Options{
		OnViolation: v.add,
		ScanEvery:   l.cfg.VerifyScanEvery,
	})
	opts.Checker = chk
	r, err := sim.RunContext(ctx, cfg, tr, opts)
	if err != nil {
		return r, err
	}
	chk.Finish(int64(tr.Len()))
	return r, v.err(fmt.Sprintf("run of %s on %s", tr.Name(), cfg.Name))
}

// contestVerified executes one contested leaf with per-core checkers and the
// system observer attached. Never cached.
func (l *Lab) contestVerified(ctx context.Context, tr *trace.Trace, cfgs []config.CoreConfig, opts contest.Options) (contest.Result, error) {
	var v labViolations
	obs := invariant.NewSystemObserver(tr, invariant.Options{
		OnViolation: v.add,
		ScanEvery:   l.cfg.VerifyScanEvery,
	})
	opts.Observer = obs
	r, err := contest.RunContext(ctx, cfgs, tr, opts)
	if err != nil {
		return r, err
	}
	obs.Finish(r)
	return r, v.err(fmt.Sprintf("contest of %s", tr.Name()))
}

// OwnCoreIPT reports the benchmark's stand-alone IPT on its own customized
// core — the baseline of Figures 6, 7, and 8.
func (l *Lab) OwnCoreIPT(ctx context.Context, bench string) (float64, error) {
	m, err := l.Matrix(ctx)
	if err != nil {
		return 0, err
	}
	b, err := m.BenchIndex(bench)
	if err != nil {
		return 0, err
	}
	c, err := m.CoreIndex(bench)
	if err != nil {
		return 0, err
	}
	return m.IPT[b][c], nil
}
