package experiments

import (
	"context"
	"strings"
	"testing"
)

// testLab is sized for CI: small traces exercise every code path; the
// absolute numbers are validated at full scale by cmd/figures runs.
func testLab() *Lab {
	return NewLab(Config{N: 30_000, CandidatePairs: 2})
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "Figure X", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.AddNote("hello %d", 7)
	s := tab.String()
	for _, want := range []string{"Figure X", "demo", "333", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q in:\n%s", want, s)
		}
	}
}

func TestLabCaching(t *testing.T) {
	l := testLab()
	tr1, err := l.Trace(context.Background(), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	tr2, _ := l.Trace(context.Background(), "gcc")
	if tr1 != tr2 {
		t.Error("trace not cached")
	}
	if tr1.Len() != 30_000 {
		t.Errorf("trace length %d", tr1.Len())
	}
}

func TestMatrixAndDesigns(t *testing.T) {
	l := testLab()
	m, err := l.Matrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Benchmarks) != 11 || len(m.Cores) != 11 {
		t.Fatalf("matrix %dx%d", len(m.Benchmarks), len(m.Cores))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m2, _ := l.Matrix(context.Background())
	if m != m2 {
		t.Error("matrix not cached")
	}
	d, err := m.DerivePaperDesigns()
	if err != nil {
		t.Fatal(err)
	}
	hom := m.HarmonicMeanBest(d.Hom.Cores)
	all := m.HarmonicMeanBest(d.HetAll.Cores)
	if all < hom {
		t.Errorf("HET-ALL %.3f below HOM %.3f", all, hom)
	}
}

func TestBestPairContests(t *testing.T) {
	l := testLab()
	r, err := l.BestPair(context.Background(), "twolf")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cores) != 2 {
		t.Fatalf("pair %v", r.Cores)
	}
	if r.IPT() <= 0 {
		t.Fatal("non-positive contest IPT")
	}
	r2, _ := l.BestPair(context.Background(), "twolf")
	if r2.Time != r.Time {
		t.Error("best pair not cached")
	}
}

// Run every registered experiment end to end at small scale.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in short mode")
	}
	l := testLab()
	if len(RegistryOrder) != len(Registry) {
		t.Fatalf("registry order lists %d of %d experiments", len(RegistryOrder), len(Registry))
	}
	for _, id := range RegistryOrder {
		exp := Registry[id]
		if exp == nil {
			t.Fatalf("experiment %s not registered", id)
		}
		tab, err := exp(context.Background(), l)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tab.ID == "" || len(tab.Header) == 0 || len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if s := tab.String(); len(s) < 40 {
			t.Errorf("%s: suspiciously short rendering", id)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("contesting sweep in short mode")
	}
	l := testLab()
	tab, err := Figure6(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 11 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// The headline shape: contesting never loses badly to the own core, and
	// the average speedup is positive. (Exact magnitudes are validated at
	// full scale; 30k-instruction traces still warm up caches.)
	neg := 0
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[4], "-") {
			neg++
		}
	}
	if neg > 3 {
		t.Errorf("%d/11 benchmarks slowed down by contesting", neg)
	}
}
