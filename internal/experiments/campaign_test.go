package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"archcontest/internal/resultcache"
)

// TestSingleflightDedup is the regression test for the duplicate-work race:
// concurrent callers asking for the same artifact used to each simulate it,
// because the old Lab released its mutex between the cache check and the
// store. With the keyed singleflight, eight concurrent Runs callers must
// execute exactly one simulation per palette core.
func TestSingleflightDedup(t *testing.T) {
	l := NewLab(Config{N: 12_000})
	const callers = 8
	var wg sync.WaitGroup
	results := make([][]string, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rs, err := l.Runs(context.Background(), "gcc")
			if err != nil {
				t.Error(err)
				return
			}
			for _, r := range rs {
				results[g] = append(results[g], fmt.Sprintf("%s@%d", r.Core, r.Time))
			}
		}(g)
	}
	wg.Wait()
	st := l.CampaignStats()
	if want := int64(len(l.Cores())); st.Simulations != want {
		t.Errorf("%d concurrent callers executed %d simulations, want %d", callers, st.Simulations, want)
	}
	if st.TraceGens != 1 {
		t.Errorf("trace generated %d times", st.TraceGens)
	}
	for g := 1; g < callers; g++ {
		if !reflect.DeepEqual(results[0], results[g]) {
			t.Fatalf("caller %d saw different results", g)
		}
	}
}

// Concurrent BestPair/Study/Matrix callers share the same leaf runs.
func TestSingleflightAcrossArtifacts(t *testing.T) {
	l := NewLab(Config{N: 12_000, CandidatePairs: 2})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := l.BestPair(context.Background(), "twolf"); err != nil {
				t.Error(err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := l.Study(context.Background(), "twolf"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := l.CampaignStats()
	if want := int64(len(l.Cores())); st.Simulations != want {
		t.Errorf("executed %d simulations, want %d (one per core)", st.Simulations, want)
	}
}

// parallel must return the lowest-indexed error no matter which worker hits
// an error first.
func TestParallelFirstErrorDeterministic(t *testing.T) {
	l := NewLab(Config{N: 1000, Parallelism: 8})
	for trial := 0; trial < 20; trial++ {
		err := l.parallel(context.Background(), 64, func(i int) error {
			if i >= 17 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 17 failed" {
			t.Fatalf("trial %d: got %v, want item 17's error", trial, err)
		}
	}
}

// parallel must run at most Parallelism items at once (and, transitively,
// the Lab's leaf executor bounds concurrent simulations the same way).
func TestParallelBoundsWorkers(t *testing.T) {
	const bound = 3
	l := NewLab(Config{N: 1000, Parallelism: bound})
	var cur, peak atomic.Int64
	err := l.parallel(context.Background(), 50, func(i int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		for spin := 0; spin < 10000; spin++ {
			_ = spin
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > bound {
		t.Errorf("observed %d concurrent items, bound is %d", p, bound)
	}
}

func TestParallelRetriesAfterError(t *testing.T) {
	l := NewLab(Config{N: 12_000})
	fail := true
	// A failed artifact must not be memoized: the next call retries.
	_, err := l.flight.do(context.Background(), "probe", func() (any, error) {
		if fail {
			return nil, errors.New("transient")
		}
		return "ok", nil
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	fail = false
	v, err := l.flight.do(context.Background(), "probe", func() (any, error) { return "ok", nil })
	if err != nil || v.(string) != "ok" {
		t.Fatalf("retry failed: %v %v", v, err)
	}
}

// TestWarmCacheGolden locks the acceptance criterion that a warm-cache
// campaign is bit-identical to a cold one and to an uncached one: matrix,
// studies, and best pairs all deep-equal across the three labs, and the
// warm lab executes zero simulations.
func TestWarmCacheGolden(t *testing.T) {
	dir := t.TempDir()
	mkLab := func(withCache bool) *Lab {
		cfg := Config{N: 12_000, CandidatePairs: 2}
		if withCache {
			c, err := resultcache.Open(dir, resultcache.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Cache = c
		}
		return NewLab(cfg)
	}
	type artifacts struct {
		ipt      [][]float64
		runs     any
		bestPair any
	}
	collect := func(l *Lab) artifacts {
		m, err := l.Matrix(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rs, err := l.Runs(context.Background(), "twolf")
		if err != nil {
			t.Fatal(err)
		}
		bp, err := l.BestPair(context.Background(), "twolf")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Study(context.Background(), "twolf"); err != nil {
			t.Fatal(err)
		}
		return artifacts{ipt: m.IPT, runs: rs, bestPair: bp}
	}

	cold := mkLab(true)
	a := collect(cold)
	if st := cold.CampaignStats(); st.Simulations == 0 || st.CacheHits != 0 {
		t.Fatalf("cold lab stats implausible: %+v", st)
	}

	warm := mkLab(true)
	b := collect(warm)
	if st := warm.CampaignStats(); st.Simulations != 0 || st.Contests != 0 {
		t.Fatalf("warm lab re-simulated: %+v", st)
	}

	plain := mkLab(false)
	c := collect(plain)

	if !reflect.DeepEqual(a.ipt, b.ipt) || !reflect.DeepEqual(a.ipt, c.ipt) {
		t.Error("matrix differs across cold/warm/uncached labs")
	}
	if !reflect.DeepEqual(a.runs, b.runs) || !reflect.DeepEqual(a.runs, c.runs) {
		t.Error("single-core runs differ across cold/warm/uncached labs")
	}
	if !reflect.DeepEqual(a.bestPair, b.bestPair) || !reflect.DeepEqual(a.bestPair, c.bestPair) {
		t.Error("best pair differs across cold/warm/uncached labs")
	}
}

// Campaign results must not depend on the parallelism level.
func TestParallelismIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("two matrix campaigns in short mode")
	}
	seq := NewLab(Config{N: 12_000, Parallelism: 1})
	par := NewLab(Config{N: 12_000, Parallelism: 8})
	ms, err := seq.Matrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mp, err := par.Matrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ms.IPT, mp.IPT) {
		t.Error("matrix depends on parallelism level")
	}
}
