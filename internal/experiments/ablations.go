package experiments

import (
	"context"

	"fmt"

	"archcontest/internal/contest"
)

// ablationBenches is the subset used by the design-choice ablations: one
// memory-bound, one scratch-bound, one compute-bound benchmark.
var ablationBenches = []string{"bzip", "twolf", "crafty"}

// AblationStoreQueue sweeps the synchronizing store queue capacity: an
// undersized queue backpressures the leader's store retirement and erodes
// the contesting speedup.
func AblationStoreQueue(ctx context.Context, l *Lab) (*Table, error) {
	caps := []int{8, 32, 256}
	t := &Table{
		ID:    "Ablation: store queue",
		Title: "contest IPT of each benchmark's best pair vs store queue capacity",
	}
	t.Header = []string{"benchmark"}
	for _, c := range caps {
		t.Header = append(t.Header, fmt.Sprintf("cap %d", c))
	}
	for _, bench := range ablationBenches {
		best, err := l.BestPair(ctx, bench)
		if err != nil {
			return nil, err
		}
		row := []string{bench}
		for _, c := range caps {
			r, err := l.Contest(ctx, bench, best.Cores, contest.Options{StoreQueueCap: c})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(r.IPT()))
		}
		t.AddRow(row...)
	}
	t.AddNote("a tight queue bounds the leader's run-ahead on store-dense code; the default is 256")
	return t, nil
}

// AblationMaxLag sweeps the lagging-distance bound (result FIFO capacity).
// Too tight a bound misclassifies transient memory-phase excursions as
// structural saturation and disables contesting for a core that would have
// recovered.
func AblationMaxLag(ctx context.Context, l *Lab) (*Table, error) {
	lags := []int{64, 512, 4096}
	t := &Table{
		ID:    "Ablation: lagging distance",
		Title: "contest IPT and saturation vs result-FIFO capacity (MaxLag)",
	}
	t.Header = []string{"benchmark"}
	for _, lag := range lags {
		t.Header = append(t.Header, fmt.Sprintf("lag %d", lag), "saturated")
	}
	for _, bench := range ablationBenches {
		best, err := l.BestPair(ctx, bench)
		if err != nil {
			return nil, err
		}
		row := []string{bench}
		for _, lag := range lags {
			r, err := l.Contest(ctx, bench, best.Cores, contest.Options{MaxLag: lag})
			if err != nil {
				return nil, err
			}
			sat := "-"
			for i, s := range r.Saturated {
				if s {
					if sat == "-" {
						sat = ""
					}
					sat += r.Cores[i] + " "
				}
			}
			row = append(row, f2(r.IPT()), sat)
		}
		t.AddRow(row...)
	}
	t.AddNote("the bound must cover the window drain transient of a slow memory phase; the default is 4096")
	return t, nil
}

// AblationTrainOnInject toggles predictor training on injected branches: an
// untrained predictor greets every lead change with a burst of
// mispredictions.
func AblationTrainOnInject(ctx context.Context, l *Lab) (*Table, error) {
	t := &Table{
		ID:     "Ablation: predictor training on injection",
		Title:  "contest IPT with and without training the trailing core's predictor",
		Header: []string{"benchmark", "train (default)", "no train", "delta"},
	}
	for _, bench := range ablationBenches {
		best, err := l.BestPair(ctx, bench)
		if err != nil {
			return nil, err
		}
		on, err := l.Contest(ctx, bench, best.Cores, contest.Options{})
		if err != nil {
			return nil, err
		}
		off, err := l.Contest(ctx, bench, best.Cores, contest.Options{NoTrainOnInject: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(bench, f2(on.IPT()), f2(off.IPT()), pct(off.IPT()/on.IPT()-1))
	}
	t.AddNote("training keeps a trailing core's predictor warm for the moment it takes the lead")
	return t, nil
}
