package experiments

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"archcontest/internal/branch"
	"archcontest/internal/cache"
)

func TestLeaderboardCombosCoverRegistries(t *testing.T) {
	combos := LeaderboardCombos()
	preds := map[string]bool{}
	repls := map[string]bool{}
	prefs := map[string]bool{}
	for _, c := range combos {
		preds[c.Predictor] = true
		repls[c.Replacement] = true
		prefs[c.Prefetcher] = true
	}
	for _, p := range branch.Registered() {
		if !preds[p] {
			t.Errorf("predictor %q missing from the cross-product", p)
		}
	}
	for _, r := range cache.ReplacerNames() {
		if !repls[r] {
			t.Errorf("replacement policy %q missing from the cross-product", r)
		}
	}
	for _, f := range cache.PrefetcherNames() {
		if !prefs[f] {
			t.Errorf("prefetcher %q missing from the cross-product", f)
		}
	}
	if !prefs[""] {
		t.Error("the no-prefetch default is missing from the cross-product")
	}
	want := len(branch.Registered()) * len(cache.ReplacerNames()) * (len(cache.PrefetcherNames()) + 1)
	if len(combos) != want {
		t.Errorf("got %d combos, want %d", len(combos), want)
	}
}

func TestLeaderboardShape(t *testing.T) {
	l := NewLab(Config{N: 8_000})
	benches := []string{"gcc", "twolf"}
	rep, err := LeaderboardRun(context.Background(), l, benches)
	if err != nil {
		t.Fatal(err)
	}
	combos := LeaderboardCombos()
	if len(rep.Standings) != len(combos) {
		t.Fatalf("%d standings, want %d", len(rep.Standings), len(combos))
	}
	for i, s := range rep.Standings {
		if s.Geomean <= 0 || s.Geomean > 1+1e-12 {
			t.Errorf("standing %d (%s): geomean %v outside (0, 1]", i, s.Name, s.Geomean)
		}
		if i > 0 && s.Geomean > rep.Standings[i-1].Geomean {
			t.Errorf("standings not sorted at %d: %v after %v", i, s.Geomean, rep.Standings[i-1].Geomean)
		}
		for _, bench := range benches {
			r, ok := s.Rank[bench]
			if !ok || r < 1 || r > len(combos) {
				t.Errorf("standing %s: bad rank %d for %s", s.Name, r, bench)
			}
			if s.IPT[bench] <= 0 {
				t.Errorf("standing %s: non-positive IPT on %s", s.Name, bench)
			}
		}
	}
	// Every rank 1..len(combos) appears exactly once per workload.
	for _, bench := range benches {
		seen := make([]bool, len(combos)+1)
		for _, s := range rep.Standings {
			r := s.Rank[bench]
			if seen[r] {
				t.Fatalf("%s: duplicate rank %d", bench, r)
			}
			seen[r] = true
		}
	}
	if len(rep.HeadToHead) != len(benches) {
		t.Fatalf("%d head-to-head legs, want %d", len(rep.HeadToHead), len(benches))
	}
	for _, h := range rep.HeadToHead {
		if h.A == h.B {
			t.Errorf("%s: head-to-head contested a combo against itself (%s)", h.Bench, h.A)
		}
		if h.ContestIPT <= 0 || h.BestSingle <= 0 {
			t.Errorf("%s: non-positive contest/single IPT", h.Bench)
		}
	}
}

// TestConcurrentLeaderboard runs the championship from concurrent callers
// over one shared Lab: the singleflight must dedupe the shared leaves and
// both callers must see identical rankings. (This is the race-detector leg
// for the leaderboard runner.)
func TestConcurrentLeaderboard(t *testing.T) {
	l := NewLab(Config{N: 6_000, Parallelism: 4})
	benches := []string{"gcc", "mcf"}
	const callers = 3
	reps := make([]*LeaderboardReport, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = LeaderboardRun(context.Background(), l, benches)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(reps[0], reps[i]) {
			t.Fatalf("caller %d saw a different leaderboard than caller 0", i)
		}
	}
}
