package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows/series a paper table or
// figure reports, in plain text.
type Table struct {
	// ID is the paper artifact this reproduces ("Figure 6", "Table 1", ...).
	ID string
	// Title describes the content.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the cells, row-major.
	Rows [][]string
	// Notes carry qualitative observations (paper-shape checks).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
