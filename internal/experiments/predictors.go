package experiments

import (
	"context"
	"fmt"

	"archcontest/internal/branch"
	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/sim"
)

// Predictors evaluates branch-predictor diversity as a contest axis. The
// paper's heterogeneity is structural (width, window, caches, clock); the
// predictor palette adds a behavioural axis: each benchmark's own core with
// its default gshare predictor faces the same core re-equipped with TAGE,
// stand-alone and contested against each other. The workloads' interleaved
// branch sites compose histories longer than gshare's window, which TAGE's
// geometric history tables capture.
func Predictors(ctx context.Context, l *Lab) (*Table, error) {
	t := &Table{
		ID:    "Extension: predictor diversity",
		Title: "gshare vs TAGE on the own core, stand-alone and as the only contest axis",
		Header: []string{"benchmark", "gshare IPT", "gshare mispred", "TAGE IPT", "TAGE mispred",
			"TAGE speedup", "contest IPT", "contest vs best single"},
	}
	benches := []string{"bzip", "crafty", "gcc", "perl", "twolf"}
	wins := 0
	for _, bench := range benches {
		cfgG := config.MustPaletteCore(bench)
		cfgT := cfgG
		cfgT.Name = bench + "-tage"
		cfgT.Predictor = branch.DefaultTAGEConfig()
		rg, err := l.RunOn(ctx, bench, cfgG, sim.RunOptions{})
		if err != nil {
			return nil, err
		}
		rt, err := l.RunOn(ctx, bench, cfgT, sim.RunOptions{})
		if err != nil {
			return nil, err
		}
		con, err := l.ContestConfigs(ctx, bench, []config.CoreConfig{cfgG, cfgT}, contest.Options{})
		if err != nil {
			return nil, err
		}
		if rt.IPT() > rg.IPT() {
			wins++
		}
		best := rg.IPT()
		if rt.IPT() > best {
			best = rt.IPT()
		}
		t.AddRow(bench, f2(rg.IPT()), pct(rg.Stats.MispredictRate()),
			f2(rt.IPT()), pct(rt.Stats.MispredictRate()),
			pct(rt.IPT()/rg.IPT()-1), f2(con.IPT()), pct(con.IPT()/best-1))
	}
	t.AddNote("TAGE beats gshare stand-alone on %d/%d benchmarks; the contest of the two variants tracks the better predictor per phase", wins, len(benches))
	t.AddNote("predictor-only heterogeneity: both contestants share every structural parameter, so any contest gain is behavioural")
	return t, nil
}

// StateCost sweeps the cost of transferring microarchitectural state at
// kill-refork points from free to OS-migration scale, following the
// state-transfer-aware heterogeneous-multicore literature in making warm-up
// a first-class cost. Each reforked core pays the swept warm-up interval
// and restarts with cold predictor tables and invalidated caches; the table
// shows where the contesting-wins crossover moves as the cost grows.
func StateCost(ctx context.Context, l *Lab) (*Table, error) {
	warmups := []float64{0, 500, 2000, 5000, 10000, 20000}
	// One exception per 50000 instructions at full trace length; shortened
	// traces (-n below 200000) scale the interval down so at least a few
	// barriers fire and the sweep keeps its shape instead of degenerating
	// to the exception-free column.
	every := int64(50000)
	if n := int64(l.N()) / 4; n < every {
		every = n
	}
	t := &Table{
		ID:    "Extension: state-transfer cost",
		Title: fmt.Sprintf("contesting speedup over own core vs kill-refork state-transfer warm-up (exceptions every %d instructions)", every),
	}
	t.Header = []string{"benchmark", "refork state", "no exceptions"}
	for _, w := range warmups {
		t.Header = append(t.Header, fmt.Sprintf("warmup %gns", w))
	}
	for _, bench := range []string{"gcc", "twolf"} {
		own, err := l.OwnCoreIPT(ctx, bench)
		if err != nil {
			return nil, err
		}
		best, err := l.BestPair(ctx, bench)
		if err != nil {
			return nil, err
		}
		for _, cold := range []bool{false, true} {
			state := "warm"
			if cold {
				state = "cold"
			}
			row := []string{bench, state, pct(best.IPT()/own - 1)}
			sps := make([]float64, len(warmups))
			err = l.parallel(ctx, len(warmups), func(i int) error {
				r, err := l.Contest(ctx, bench, best.Cores, contest.Options{
					ExceptionEvery:      every,
					ExceptionKillRefork: true,
					ReforkWarmupNs:      warmups[i],
					ReforkColdPredictor: cold,
					ReforkColdCaches:    cold,
				})
				if err != nil {
					return err
				}
				sps[i] = r.IPT()/own - 1
				return nil
			})
			if err != nil {
				return nil, err
			}
			crossover := "none within the sweep"
			for i, sp := range sps {
				row = append(row, pct(sp))
				if sp <= 0 && crossover == "none within the sweep" {
					crossover = fmt.Sprintf("%gns", warmups[i])
				}
			}
			t.AddRow(row...)
			t.AddNote("%s %s-state: contesting stops beating the own core at warm-up %s", bench, state, crossover)
		}
	}
	t.AddNote("warm rows charge only the swept warm-up interval per reforked core; cold rows also reset predictors and invalidate caches, which shifts the crossover earlier but perturbs timing dynamics enough that their speedups need not fall monotonically")
	t.AddNote("at zero warm-up only the kill-refork penalty itself is paid; the sweep isolates how much state-transfer cost the contesting advantage absorbs before the crossover")
	return t, nil
}
