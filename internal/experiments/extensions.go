package experiments

import (
	"context"

	"fmt"

	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/migrate"
	"archcontest/internal/power"
	"archcontest/internal/sim"
)

// Migration compares architectural contesting against the migrational
// baseline the paper motivates against: oracle-policy thread migration
// between the same two cores at several granularities, paying realistic
// migration costs (state transfer, drain/refill, cold destination caches).
// Even with a perfect phase oracle, fine-grain migration drowns in
// overheads that contesting does not pay.
func Migration(ctx context.Context, l *Lab) (*Table, error) {
	grans := []int{20, 80, 320, 1280, 5120, 20480}
	t := &Table{
		ID:    "Extension: migration baseline",
		Title: "oracle migration at several granularities vs contesting (speedup over own core)",
	}
	t.Header = []string{"benchmark"}
	for _, g := range grans {
		t.Header = append(t.Header, fmt.Sprintf("mig@%d", g))
	}
	t.Header = append(t.Header, "contesting")
	for _, bench := range []string{"bzip", "gcc", "twolf", "gzip"} {
		own, err := l.OwnCoreIPT(ctx, bench)
		if err != nil {
			return nil, err
		}
		best, err := l.BestPair(ctx, bench)
		if err != nil {
			return nil, err
		}
		runs, err := l.Runs(ctx, bench)
		if err != nil {
			return nil, err
		}
		var ra, rb sim.Result
		var ca, cb config.CoreConfig
		for i, c := range l.Cores() {
			if c.Name == best.Cores[0] {
				ra, ca = runs[i], c
			}
			if c.Name == best.Cores[1] {
				rb, cb = runs[i], c
			}
		}
		row := []string{bench}
		for _, g := range grans {
			mr, err := migrate.OracleMigration(ra, rb, ca, cb, migrate.Options{Granularity: g})
			if err != nil {
				return nil, err
			}
			row = append(row, pct(mr.IPT()/own-1))
		}
		row = append(row, pct(best.IPT()/own-1))
		t.AddRow(row...)
	}
	t.AddNote("migration uses the same pair as contesting and a perfect phase oracle, yet pays transfer, drain, and cold-cache costs per switch")
	t.AddNote("paper Section 2/3: previously proposed approaches adjust at a few thousand instructions at best, far above the fine-grain potential")
	return t, nil
}

// Power quantifies the energy cost of contesting: redundant execution burns
// roughly one extra core's worth of energy for the single-thread speedup,
// which is why the paper positions contesting as a need-to-have execution
// mode rather than a default.
func Power(ctx context.Context, l *Lab) (*Table, error) {
	t := &Table{
		ID:    "Extension: energy",
		Title: "energy and energy-delay of own-core execution vs 2-way contesting",
		Header: []string{"benchmark", "own mJ", "own W", "contest mJ", "contest W",
			"energy ratio", "speedup", "EDP ratio"},
	}
	for _, bench := range []string{"bzip", "gcc", "twolf", "crafty"} {
		runs, err := l.Runs(ctx, bench)
		if err != nil {
			return nil, err
		}
		var ownRun sim.Result
		var ownCfg config.CoreConfig
		for i, c := range l.Cores() {
			if c.Name == bench {
				ownRun, ownCfg = runs[i], c
			}
		}
		eo := power.SingleRun(ownCfg, ownRun)
		best, err := l.BestPair(ctx, bench)
		if err != nil {
			return nil, err
		}
		cfgs := []config.CoreConfig{
			config.MustPaletteCore(best.Cores[0]),
			config.MustPaletteCore(best.Cores[1]),
		}
		ec := power.ContestRun(cfgs, best)
		t.AddRow(bench,
			fmt.Sprintf("%.2f", eo.TotalNJ()/1e6), fmt.Sprintf("%.1f", eo.AvgPowerW()),
			fmt.Sprintf("%.2f", ec.TotalNJ()/1e6), fmt.Sprintf("%.1f", ec.AvgPowerW()),
			fmt.Sprintf("%.2fx", ec.TotalNJ()/eo.TotalNJ()),
			pct(best.IPT()/ownRun.IPT()-1),
			fmt.Sprintf("%.2fx", ec.EDP()/eo.EDP()))
	}
	t.AddNote("contesting trades ~2x energy for the single-thread speedup; the paper engages it on a need-to-have basis")
	return t, nil
}

// NWay contests three core types at once (the implementation is
// generalized for N-way, the paper evaluates 2-way) and compares against
// the 2-way result.
func NWay(ctx context.Context, l *Lab) (*Table, error) {
	t := &Table{
		ID:     "Extension: 3-way contesting",
		Title:  "2-way vs 3-way contesting (third core from HET-D)",
		Header: []string{"benchmark", "own core", "2-way", "3-way", "3-way cores", "saturated"},
	}
	m, d, err := l.designSet(ctx)
	if err != nil {
		return nil, err
	}
	third := m.CoreNames(d.HetD)
	for _, bench := range []string{"bzip", "gcc", "twolf", "gzip"} {
		own, err := l.OwnCoreIPT(ctx, bench)
		if err != nil {
			return nil, err
		}
		best, err := l.BestPair(ctx, bench)
		if err != nil {
			return nil, err
		}
		// Add the first HET-D core type not already in the pair.
		cores := append([]string(nil), best.Cores...)
		for _, c := range third {
			if c != cores[0] && c != cores[1] {
				cores = append(cores, c)
				break
			}
		}
		r3, err := l.Contest(ctx, bench, cores, contest.Options{})
		if err != nil {
			return nil, err
		}
		sat := "-"
		for i, s := range r3.Saturated {
			if s {
				if sat == "-" {
					sat = ""
				}
				sat += r3.Cores[i] + " "
			}
		}
		t.AddRow(bench, f2(own), f2(best.IPT()), f2(r3.IPT()), fmt.Sprint(cores), sat)
	}
	t.AddNote("a third core helps only when it wins regions neither pair member wins; its GRB traffic is otherwise free performance-wise but costs energy")
	return t, nil
}

// Exceptions compares the paper's parallelized redundant-thread-aware
// exception handler against terminate-and-refork at several exception
// rates (Section 4.3).
func Exceptions(ctx context.Context, l *Lab) (*Table, error) {
	intervals := []int64{50_000, 10_000, 2_000}
	t := &Table{
		ID:    "Extension: exceptions",
		Title: "contest IPT vs synchronous-exception rate, parallelized handler vs terminate-and-refork",
	}
	t.Header = []string{"benchmark", "no exceptions"}
	for _, iv := range intervals {
		t.Header = append(t.Header, fmt.Sprintf("par@%d", iv), fmt.Sprintf("refork@%d", iv))
	}
	for _, bench := range []string{"gcc", "twolf"} {
		best, err := l.BestPair(ctx, bench)
		if err != nil {
			return nil, err
		}
		row := []string{bench, f2(best.IPT())}
		for _, iv := range intervals {
			par, err := l.Contest(ctx, bench, best.Cores, contest.Options{ExceptionEvery: iv})
			if err != nil {
				return nil, err
			}
			ref, err := l.Contest(ctx, bench, best.Cores, contest.Options{ExceptionEvery: iv, ExceptionKillRefork: true})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(par.IPT()), f2(ref.IPT()))
		}
		t.AddRow(row...)
	}
	t.AddNote("the parallelized handler coordinates sleeping handlers via a semaphore; terminate-and-refork pays a per-core refork penalty, as Section 4.3 argues")
	return t, nil
}
