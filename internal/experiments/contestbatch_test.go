package experiments

import (
	"context"
	"reflect"
	"testing"

	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/resultcache"
)

// contestList builds a small candidate list with a duplicate entry.
func contestList(l *Lab) [][]config.CoreConfig {
	cores := l.Cores()
	return [][]config.CoreConfig{
		{cores[0], cores[1]},
		{cores[2], cores[3]},
		{cores[0], cores[1]}, // duplicate of the first
		{cores[1], cores[4]},
		{cores[5], cores[0]},
	}
}

// TestContestsConfigsBatchEquivalence: the batched contest leaf path must
// be bit-identical to per-leaf execution for every batch width, and
// duplicate configurations must be computed once.
func TestContestsConfigsBatchEquivalence(t *testing.T) {
	ctx := context.Background()
	base := NewLab(Config{N: 8_000, ContestBatch: 1})
	list := contestList(base)
	want, err := base.ContestsConfigs(ctx, "gcc", list, contest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := base.CampaignStats().Contests; got != 4 {
		t.Errorf("unbatched path executed %d contests, want 4 (duplicate shared)", got)
	}
	for _, batch := range []int{0, 2, 3, 16} {
		l := NewLab(Config{N: 8_000, ContestBatch: batch, Parallelism: 2})
		got, err := l.ContestsConfigs(ctx, "gcc", contestList(l), contest.Options{})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("batch=%d: results diverged from per-leaf execution", batch)
		}
		if c := l.CampaignStats().Contests; c != 4 {
			t.Errorf("batch=%d: executed %d contests, want 4", batch, c)
		}
	}
}

// The batched path must serve the result cache and the singleflight memo:
// a warm second call executes nothing, and a later per-leaf Contest of the
// same key gets the memoized value.
func TestContestsConfigsBatchCacheAndMemo(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cache, err := resultcache.Open(dir, resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLab(Config{N: 8_000, Cache: cache})
	list := contestList(l)
	first, err := l.ContestsConfigs(ctx, "gcc", list, contest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c := l.CampaignStats().Contests; c != 4 {
		t.Fatalf("cold call executed %d contests, want 4", c)
	}

	// A per-leaf Contest of a batched key must hit the singleflight memo.
	r, err := l.ContestConfigs(ctx, "gcc", list[0], contest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, first[0]) {
		t.Error("per-leaf Contest diverged from batched result")
	}
	if c := l.CampaignStats().Contests; c != 4 {
		t.Errorf("memoized per-leaf Contest re-executed (contests=%d)", c)
	}

	// A fresh Lab over the same cache dir must serve everything warm.
	warm := NewLab(Config{N: 8_000, Cache: cache})
	second, err := warm.ContestsConfigs(ctx, "gcc", contestList(warm), contest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, first) {
		t.Error("warm results diverged")
	}
	st := warm.CampaignStats()
	if st.Contests != 0 || st.CacheHits != 4 {
		t.Errorf("warm call: contests=%d cache hits=%d, want 0 executed / 4 hits", st.Contests, st.CacheHits)
	}
}

// BestPair through the batched candidate fan-out must match the per-leaf
// path bit-for-bit (the batch is pure plumbing).
func TestBestPairBatchedMatchesPerLeaf(t *testing.T) {
	ctx := context.Background()
	perLeaf := NewLab(Config{N: 10_000, CandidatePairs: 3, ContestBatch: 1})
	want, err := perLeaf.BestPair(ctx, "twolf")
	if err != nil {
		t.Fatal(err)
	}
	batched := NewLab(Config{N: 10_000, CandidatePairs: 3, ContestBatch: 4, Parallelism: 2})
	got, err := batched.BestPair(ctx, "twolf")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batched BestPair diverged:\n got %+v\nwant %+v", got, want)
	}
}
