package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"archcontest/internal/branch"
	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/sim"
)

// LeaderboardCombo is one point in the championship cross-product: a
// predictor kind from the branch registry, a replacement policy from the
// cache registry ("lru" is the built-in default), and a prefetcher (the
// empty name is "no prefetching", today's default).
type LeaderboardCombo struct {
	Predictor   string `json:"predictor"`
	Replacement string `json:"replacement"`
	Prefetcher  string `json:"prefetcher,omitempty"`
}

// String renders the combo as predictor/replacement/prefetcher.
func (c LeaderboardCombo) String() string {
	pf := c.Prefetcher
	if pf == "" {
		pf = "none"
	}
	return c.Predictor + "/" + c.Replacement + "/" + pf
}

// apply equips the base core with the combo's components: the predictor
// kind's representative configuration, the replacement policy on both cache
// levels, and the prefetcher hook on the hierarchy.
func (c LeaderboardCombo) apply(base config.CoreConfig) config.CoreConfig {
	cfg := base
	cfg.Name = base.Name + "+" + c.String()
	cfg.Predictor = branch.RepresentativeConfig(c.Predictor)
	cfg.L1D.Replacement = c.Replacement
	cfg.L2D.Replacement = c.Replacement
	cfg.Prefetch = cache.PrefetchConfig{Name: c.Prefetcher}
	return cfg
}

// LeaderboardCombos enumerates the full registered cross-product, in
// deterministic order: every predictor kind (built-in and registered) x
// every replacement policy x every prefetcher plus the no-prefetch default.
func LeaderboardCombos() []LeaderboardCombo {
	preds := branch.Registered()
	repls := cache.ReplacerNames()
	prefs := append([]string{""}, cache.PrefetcherNames()...)
	combos := make([]LeaderboardCombo, 0, len(preds)*len(repls)*len(prefs))
	for _, p := range preds {
		for _, r := range repls {
			for _, f := range prefs {
				combos = append(combos, LeaderboardCombo{Predictor: p, Replacement: r, Prefetcher: f})
			}
		}
	}
	return combos
}

// LeaderboardStanding is one combo's row in the overall ranking.
type LeaderboardStanding struct {
	Combo LeaderboardCombo `json:"combo"`
	Name  string           `json:"name"`
	// Geomean is the geometric mean over the workloads of this combo's IPT
	// normalized to the per-workload best — 1.0 means it won everywhere.
	Geomean float64 `json:"geomean_normalized_ipt"`
	// Wins counts workloads where this combo ranked first.
	Wins int `json:"wins"`
	// IPT and Rank are the per-workload raw IPT and 1-based rank.
	IPT  map[string]float64 `json:"ipt"`
	Rank map[string]int     `json:"rank"`
}

// LeaderboardHeadToHead is one contested leg: the workload's top two combos
// racing each other under the contesting protocol.
type LeaderboardHeadToHead struct {
	Bench       string  `json:"bench"`
	A           string  `json:"a"`
	B           string  `json:"b"`
	ContestIPT  float64 `json:"contest_ipt"`
	BestSingle  float64 `json:"best_single_ipt"`
	Speedup     float64 `json:"speedup"`
	LeadChanges int64   `json:"lead_changes"`
}

// LeaderboardReport is the championship result: overall standings (best
// geomean first), the per-workload rankings they fold, and a contested
// head-to-head leg per workload.
type LeaderboardReport struct {
	Benches    []string                `json:"benches"`
	Standings  []LeaderboardStanding   `json:"standings"`
	HeadToHead []LeaderboardHeadToHead `json:"head_to_head"`
}

// LeaderboardRun round-robins every registered component combination over
// the given workloads on each workload's own customized core, ranks the
// combos per workload and overall (geomean of best-normalized IPT), and
// contests each workload's top two combos head-to-head. All leaves go
// through the Lab, so they parallelize, deduplicate, and cache like any
// campaign work.
func LeaderboardRun(ctx context.Context, l *Lab, benches []string) (*LeaderboardReport, error) {
	combos := LeaderboardCombos()
	if len(benches) == 0 || len(combos) == 0 {
		return nil, fmt.Errorf("experiments: leaderboard needs workloads and combos, got %d x %d", len(benches), len(combos))
	}
	type cell struct{ bench, combo int }
	cells := make([]cell, 0, len(benches)*len(combos))
	for b := range benches {
		for c := range combos {
			cells = append(cells, cell{b, c})
		}
	}
	ipt := make([][]float64, len(benches))
	for b := range ipt {
		ipt[b] = make([]float64, len(combos))
	}
	err := l.parallel(ctx, len(cells), func(i int) error {
		bench := benches[cells[i].bench]
		cfg := combos[cells[i].combo].apply(config.MustPaletteCore(bench))
		r, err := l.RunOn(ctx, bench, cfg, sim.RunOptions{})
		if err != nil {
			return fmt.Errorf("leaderboard %s on %s: %w", combos[cells[i].combo], bench, err)
		}
		ipt[cells[i].bench][cells[i].combo] = r.IPT()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Per-workload rankings: 1-based rank by descending IPT, ties broken by
	// combo order so the result is deterministic.
	rank := make([][]int, len(benches))
	top := make([][2]int, len(benches)) // the two best combo indices per workload
	for b := range benches {
		order := make([]int, len(combos))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			return ipt[b][order[i]] > ipt[b][order[j]]
		})
		rank[b] = make([]int, len(combos))
		for pos, c := range order {
			rank[b][c] = pos + 1
		}
		top[b] = [2]int{order[0], order[1]}
	}

	// Overall standings: geomean of per-workload best-normalized IPT.
	standings := make([]LeaderboardStanding, len(combos))
	for c, combo := range combos {
		s := LeaderboardStanding{
			Combo: combo,
			Name:  combo.String(),
			IPT:   make(map[string]float64, len(benches)),
			Rank:  make(map[string]int, len(benches)),
		}
		logSum := 0.0
		for b, bench := range benches {
			best := ipt[b][top[b][0]]
			logSum += math.Log(ipt[b][c] / best)
			s.IPT[bench] = ipt[b][c]
			s.Rank[bench] = rank[b][c]
			if rank[b][c] == 1 {
				s.Wins++
			}
		}
		s.Geomean = math.Exp(logSum / float64(len(benches)))
		standings[c] = s
	}
	sort.SliceStable(standings, func(i, j int) bool {
		return standings[i].Geomean > standings[j].Geomean
	})

	// Head-to-head: the workload's two best combos contest each other.
	legs := make([]LeaderboardHeadToHead, len(benches))
	err = l.parallel(ctx, len(benches), func(b int) error {
		a, bb := top[b][0], top[b][1]
		base := config.MustPaletteCore(benches[b])
		r, err := l.ContestConfigs(ctx, benches[b],
			[]config.CoreConfig{combos[a].apply(base), combos[bb].apply(base)}, contest.Options{})
		if err != nil {
			return fmt.Errorf("leaderboard head-to-head on %s: %w", benches[b], err)
		}
		best := ipt[b][a]
		legs[b] = LeaderboardHeadToHead{
			Bench:       benches[b],
			A:           combos[a].String(),
			B:           combos[bb].String(),
			ContestIPT:  r.IPT(),
			BestSingle:  best,
			Speedup:     r.IPT()/best - 1,
			LeadChanges: r.LeadChanges,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &LeaderboardReport{Benches: benches, Standings: standings, HeadToHead: legs}, nil
}

// leaderboardBenches is the experiment's workload subset: branchy, memory-
// bound, and mixed behaviour, so every component axis has a workload that
// exercises it. The full-suite championship is cmd/bench -leaderboard.
var leaderboardBenches = []string{"gcc", "mcf", "twolf", "crafty"}

// Leaderboard runs the championship: every registered predictor x
// replacement policy x prefetcher combination ranked per workload and
// overall, with the per-workload podium contested head-to-head.
func Leaderboard(ctx context.Context, l *Lab) (*Table, error) {
	rep, err := LeaderboardRun(ctx, l, leaderboardBenches)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Extension: component leaderboard",
		Title: fmt.Sprintf("registered predictor x replacement x prefetcher combinations ranked over %v", rep.Benches),
	}
	t.Header = []string{"rank", "combo", "geomean (norm)", "wins"}
	for _, bench := range rep.Benches {
		t.Header = append(t.Header, bench+" IPT")
	}
	for i, s := range rep.Standings {
		row := []string{fmt.Sprintf("%d", i+1), s.Name, fmt.Sprintf("%.3f", s.Geomean), fmt.Sprintf("%d", s.Wins)}
		for _, bench := range rep.Benches {
			row = append(row, f2(s.IPT[bench]))
		}
		t.AddRow(row...)
	}
	for _, h := range rep.HeadToHead {
		t.AddNote("%s head-to-head: %s vs %s contested at %s IPT (%s vs best single, %d lead changes)",
			h.Bench, h.A, h.B, f2(h.ContestIPT), pct(h.Speedup), h.LeadChanges)
	}
	t.AddNote("%d combos = %d predictors x %d replacement policies x %d prefetchers (incl. none)",
		len(rep.Standings), len(branch.Registered()), len(cache.ReplacerNames()), len(cache.PrefetcherNames())+1)
	return t, nil
}
