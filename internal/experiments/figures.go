package experiments

import (
	"context"

	"fmt"

	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/merit"
	"archcontest/internal/sim"
)

// Experiment computes one paper table or figure.
type Experiment func(ctx context.Context, l *Lab) (*Table, error)

// Registry maps experiment IDs to their drivers.
var Registry = map[string]Experiment{
	"fig1":             Figure1,
	"fig6":             Figure6,
	"fig7":             Figure7,
	"fig8":             Figure8,
	"table1":           Table1,
	"fig9":             Figure9,
	"fig10":            Figure10,
	"fig11":            Figure11,
	"fig12":            Figure12,
	"fig13":            Figure13,
	"appendixA":        AppendixA,
	"appendixAConfigs": AppendixAConfigs,
	"ablationQueue":    AblationStoreQueue,
	"ablationLag":      AblationMaxLag,
	"ablationTrain":    AblationTrainOnInject,
	"migration":        Migration,
	"power":            Power,
	"nway":             NWay,
	"exceptions":       Exceptions,
	"predictors":       Predictors,
	"statecost":        StateCost,
	"leaderboard":      Leaderboard,
}

// RegistryOrder lists the experiments in presentation order.
var RegistryOrder = []string{
	"fig1", "fig6", "fig7", "fig8", "table1", "fig9",
	"fig10", "fig11", "fig12", "fig13", "appendixA", "appendixAConfigs",
	"ablationQueue", "ablationLag", "ablationTrain",
	"migration", "power", "nway", "exceptions",
	"predictors", "statecost", "leaderboard",
}

// Figure1 reproduces the Section 2 motivation study: the oracle speedup of
// switching between the best two configurations at every power-of-two
// granularity, per benchmark, over the benchmark's own customized core.
func Figure1(ctx context.Context, l *Lab) (*Table, error) {
	t := &Table{
		ID:    "Figure 1",
		Title: "oracle switching speedup between two configurations vs granularity (over own customized core)",
	}
	type series struct {
		bench  string
		points map[int]float64
		finest string
	}
	var all []series
	var grans []int
	for _, bench := range l.Benchmarks() {
		study, err := l.Study(ctx, bench)
		if err != nil {
			return nil, err
		}
		pts, err := study.Sweep(sim.RegionSize)
		if err != nil {
			return nil, err
		}
		s := series{bench: bench, points: map[int]float64{}}
		for _, p := range pts {
			s.points[p.Granularity] = p.Best.Speedup
		}
		if len(pts) > 0 {
			b := pts[0].Best
			s.finest = fmt.Sprintf("%s+%s", study.Names[b.A], study.Names[b.B])
		}
		if len(grans) == 0 {
			for _, p := range pts {
				grans = append(grans, p.Granularity)
			}
		}
		all = append(all, s)
	}
	t.Header = append([]string{"granularity"}, l.Benchmarks()...)
	t.Header = append(t.Header, "average")
	for _, g := range grans {
		row := []string{fmt.Sprintf("%d", g)}
		sum, n := 0.0, 0
		for _, s := range all {
			v, ok := s.points[g]
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, pct(v))
			sum += v
			n++
		}
		if n > 0 {
			row = append(row, pct(sum/float64(n)))
		}
		t.AddRow(row...)
	}
	// Paper-shape notes: fine-grain potential vs the ~1280-instruction knee.
	fine, knee := 0.0, 0.0
	for _, s := range all {
		fine += s.points[grans[0]]
		k := 1280
		for _, g := range grans {
			if g >= 1280 {
				k = g
				break
			}
		}
		knee += s.points[k]
	}
	n := float64(len(all))
	t.AddNote("average oracle speedup at %d instructions: %s; at >=1280 instructions: %s (paper: ~25%% fine-grain vs ~5%% at the knee)",
		grans[0], pct(fine/n), pct(knee/n))
	for _, s := range all {
		t.AddNote("%s best fine-grain pair: %s", s.bench, s.finest)
	}
	return t, nil
}

// Figure6 reproduces the headline result: 2-way contesting between the best
// pair of customized cores vs the benchmark's own customized core.
func Figure6(ctx context.Context, l *Lab) (*Table, error) {
	t := &Table{
		ID:     "Figure 6",
		Title:  "IPT of 2-way contesting vs own customized core (1ns core-to-core latency)",
		Header: []string{"benchmark", "own core IPT", "contest IPT", "contested pair", "speedup", "lead changes"},
	}
	var sum, max float64
	maxBench := ""
	for _, bench := range l.Benchmarks() {
		own, err := l.OwnCoreIPT(ctx, bench)
		if err != nil {
			return nil, err
		}
		best, err := l.BestPair(ctx, bench)
		if err != nil {
			return nil, err
		}
		sp := best.IPT()/own - 1
		sum += sp
		if sp > max {
			max, maxBench = sp, bench
		}
		t.AddRow(bench, f2(own), f2(best.IPT()),
			fmt.Sprintf("%s+%s", best.Cores[0], best.Cores[1]), pct(sp),
			fmt.Sprintf("%d", best.LeadChanges))
	}
	n := float64(len(l.Benchmarks()))
	t.AddNote("average speedup %s, maximum %s (%s); paper: average 15%%, maximum 25%% (gcc)",
		pct(sum/n), pct(max), maxBench)
	return t, nil
}

// Figure7 isolates the contribution of L2-cache heterogeneity: each
// benchmark is contested between two copies of one best-pair core that
// differ only in their L2 (configuration and access latency), both ways,
// and the better trial is compared to the full heterogeneous speedup.
func Figure7(ctx context.Context, l *Lab) (*Table, error) {
	t := &Table{
		ID:     "Figure 7",
		Title:  "contribution of L2 heterogeneity to the contesting speedup",
		Header: []string{"benchmark", "full heterogeneity", "L2-only", "L2 share"},
	}
	for _, bench := range l.Benchmarks() {
		own, err := l.OwnCoreIPT(ctx, bench)
		if err != nil {
			return nil, err
		}
		best, err := l.BestPair(ctx, bench)
		if err != nil {
			return nil, err
		}
		full := best.IPT()/own - 1
		a := config.MustPaletteCore(best.Cores[0])
		b := config.MustPaletteCore(best.Cores[1])
		trials := [][2]config.CoreConfig{
			{a, a.WithL2(b)},
			{b, b.WithL2(a)},
		}
		l2Best := 0.0
		for _, pair := range trials {
			r, err := l.ContestConfigs(ctx, bench, pair[:], contest.Options{})
			if err != nil {
				return nil, err
			}
			if sp := r.IPT()/own - 1; sp > l2Best {
				l2Best = sp
			}
		}
		share := 0.0
		if full > 0 {
			share = l2Best / full
			if share > 1 {
				share = 1
			}
		}
		t.AddRow(bench, pct(full), pct(l2Best), pct(share))
	}
	t.AddNote("paper: for most benchmarks only a minor portion of the speedup is attributable to L2 heterogeneity alone")
	t.AddNote("an L2-swapped hybrid can outperform every palette core outright (e.g. a fast core grafted with a 4MB L2 on a memory-bound benchmark), so for memory-bound benchmarks the L2-only trial saturates its share — our matrix is more L2-capacity-dominated than the paper's")
	return t, nil
}

// Figure8 sweeps the core-to-core latency for each benchmark's best pair.
func Figure8(ctx context.Context, l *Lab) (*Table, error) {
	latencies := []float64{1, 2, 5, 10, 100}
	t := &Table{
		ID:    "Figure 8",
		Title: "contesting speedup over own customized core vs core-to-core latency",
	}
	t.Header = []string{"benchmark"}
	for _, lat := range latencies {
		t.Header = append(t.Header, fmt.Sprintf("%gns", lat))
	}
	avg := make([]float64, len(latencies))
	for _, bench := range l.Benchmarks() {
		own, err := l.OwnCoreIPT(ctx, bench)
		if err != nil {
			return nil, err
		}
		best, err := l.BestPair(ctx, bench)
		if err != nil {
			return nil, err
		}
		row := []string{bench}
		sps := make([]float64, len(latencies))
		err = l.parallel(ctx, len(latencies), func(i int) error {
			r, err := l.Contest(ctx, bench, best.Cores, contest.Options{LatencyNs: latencies[i]})
			if err != nil {
				return err
			}
			sps[i] = r.IPT()/own - 1
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, sp := range sps {
			row = append(row, pct(sp))
			avg[i] += sp
		}
		t.AddRow(row...)
	}
	row := []string{"average"}
	n := float64(len(l.Benchmarks()))
	for _, a := range avg {
		row = append(row, pct(a/n))
	}
	t.AddRow(row...)
	t.AddNote("paper: average decays from ~15%% at 1ns to ~6%% at 100ns; sensitivity differs per benchmark")
	return t, nil
}

// designSet derives the paper's CMP designs from the lab's matrix.
func (l *Lab) designSet(ctx context.Context) (*merit.Matrix, merit.PaperDesigns, error) {
	m, err := l.Matrix(ctx)
	if err != nil {
		return nil, merit.PaperDesigns{}, err
	}
	d, err := m.DerivePaperDesigns()
	return m, d, err
}

// Table1 reproduces the five CMP designs and their harmonic-mean IPT.
func Table1(ctx context.Context, l *Lab) (*Table, error) {
	m, d, err := l.designSet(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Table 1",
		Title:  "CMP designs and their performance (harmonic mean of best-core IPT)",
		Header: []string{"design", "figure of merit", "constituent core types", "harmonic-mean IPT"},
	}
	row := func(ds merit.Design, meritName string) {
		t.AddRow(ds.Name, meritName, fmt.Sprint(m.CoreNames(ds)), f2(m.HarmonicMeanBest(ds.Cores)))
	}
	row(d.HetA, "avg")
	row(d.HetB, "har")
	row(d.HetC, "cw-har")
	row(d.Hom, "avg or har")
	row(d.HetAll, "n/a (all cores)")
	hom := m.HarmonicMeanBest(d.Hom.Cores)
	all := m.HarmonicMeanBest(d.HetAll.Cores)
	hetB := m.HarmonicMeanBest(d.HetB.Cores)
	t.AddNote("HET-ALL over HOM: %s (paper: ~34%%); best two-type over HOM: %s (paper: ~19%%)",
		pct(all/hom-1), pct(hetB/hom-1))
	return t, nil
}

// Figure9 reports per-benchmark IPT on the five CMP designs (each benchmark
// on its most suitable available core).
func Figure9(ctx context.Context, l *Lab) (*Table, error) {
	m, d, err := l.designSet(ctx)
	if err != nil {
		return nil, err
	}
	designs := []merit.Design{d.HetA, d.HetB, d.HetC, d.Hom, d.HetAll}
	t := &Table{
		ID:     "Figure 9",
		Title:  "IPT per benchmark on the most suitable core of each CMP design",
		Header: []string{"benchmark", "HET-A", "HET-B", "HET-C", "HOM", "HET-ALL"},
	}
	for b, bench := range m.Benchmarks {
		row := []string{bench}
		for _, ds := range designs {
			_, ipt := m.BestIn(b, ds.Cores)
			row = append(row, f2(ipt))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// contestedDesign is the shared driver of Figures 10, 11, and 12: per
// benchmark, IPT on HOM, on the design's best core without contesting, and
// contested between the design's two core types.
func contestedDesign(ctx context.Context, l *Lab, id string, pick func(merit.PaperDesigns) merit.Design) (*Table, error) {
	m, d, err := l.designSet(ctx)
	if err != nil {
		return nil, err
	}
	ds := pick(d)
	pair := m.CoreNames(ds)
	if len(pair) != 2 {
		return nil, fmt.Errorf("experiments: design %s has %d core types, want 2", ds.Name, len(pair))
	}
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("%s (%s + %s): HOM vs no contesting vs contesting", ds.Name, pair[0], pair[1]),
		Header: []string{"benchmark", "HOM", ds.Name + " no-contest", ds.Name + " contest",
			"contest speedup", "saturated"},
	}
	benches := l.Benchmarks()
	contests := make([]contest.Result, len(benches))
	err = l.parallel(ctx, len(benches), func(i int) error {
		r, err := l.Contest(ctx, benches[i], pair, contest.Options{})
		if err != nil {
			return err
		}
		contests[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var sumSp, maxSp, sumHom, sumNo, sumCon float64
	maxBench := ""
	recovered := []string{}
	for i, bench := range benches {
		b, err := m.BenchIndex(bench)
		if err != nil {
			return nil, err
		}
		_, hom := m.BestIn(b, d.Hom.Cores)
		_, no := m.BestIn(b, ds.Cores)
		con := contests[i].IPT()
		sp := con/no - 1
		sumSp += sp
		sumHom += 1 / hom
		sumNo += 1 / no
		sumCon += 1 / con
		if sp > maxSp {
			maxSp, maxBench = sp, bench
		}
		if no < hom && con > hom {
			recovered = append(recovered, bench)
		}
		sat := ""
		for ci, s := range contests[i].Saturated {
			if s {
				sat += contests[i].Cores[ci] + " "
			}
		}
		t.AddRow(bench, f2(hom), f2(no), f2(con), pct(sp), sat)
	}
	n := float64(len(benches))
	t.AddNote("average contest speedup over no-contest %s, maximum %s (%s)", pct(sumSp/n), pct(maxSp), maxBench)
	t.AddNote("harmonic-mean IPT: HOM %s, no-contest %s, contest %s (contest over HOM: %s; no-contest over HOM: %s)",
		f2(n/sumHom), f2(n/sumNo), f2(n/sumCon), pct((n/sumCon)/(n/sumHom)-1), pct((n/sumNo)/(n/sumHom)-1))
	if len(recovered) > 0 {
		t.AddNote("benchmarks below HOM without contesting that contesting lifts above HOM: %v", recovered)
	}
	return t, nil
}

// Figure10 evaluates contesting on HET-A.
func Figure10(ctx context.Context, l *Lab) (*Table, error) {
	return contestedDesign(ctx, l, "Figure 10", func(d merit.PaperDesigns) merit.Design { return d.HetA })
}

// Figure11 evaluates contesting on HET-B.
func Figure11(ctx context.Context, l *Lab) (*Table, error) {
	return contestedDesign(ctx, l, "Figure 11", func(d merit.PaperDesigns) merit.Design { return d.HetB })
}

// Figure12 evaluates contesting on HET-C.
func Figure12(ctx context.Context, l *Lab) (*Table, error) {
	return contestedDesign(ctx, l, "Figure 12", func(d merit.PaperDesigns) merit.Design { return d.HetC })
}

// Figure13 compares contesting between HET-C's two core types against
// executing on the best of HET-D's three core types and against each
// benchmark's own customized core (HET-ALL without contesting).
func Figure13(ctx context.Context, l *Lab) (*Table, error) {
	m, d, err := l.designSet(ctx)
	if err != nil {
		return nil, err
	}
	pair := m.CoreNames(d.HetC)
	t := &Table{
		ID:     "Figure 13",
		Title:  fmt.Sprintf("contesting two core types (%v) vs more core types (HET-D %v)", pair, m.CoreNames(d.HetD)),
		Header: []string{"benchmark", "HET-C contest", "HET-D no-contest", "HET-ALL own-core"},
	}
	benches := l.Benchmarks()
	contests := make([]contest.Result, len(benches))
	err = l.parallel(ctx, len(benches), func(i int) error {
		r, err := l.Contest(ctx, benches[i], pair, contest.Options{})
		if err != nil {
			return err
		}
		contests[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var hc, hd, ha float64
	for i, bench := range benches {
		b, _ := m.BenchIndex(bench)
		con := contests[i].IPT()
		_, d3 := m.BestIn(b, d.HetD.Cores)
		own, err := l.OwnCoreIPT(ctx, bench)
		if err != nil {
			return nil, err
		}
		hc += 1 / con
		hd += 1 / d3
		ha += 1 / own
		t.AddRow(bench, f2(con), f2(d3), f2(own))
	}
	n := float64(len(benches))
	t.AddNote("harmonic means: HET-C contesting %s, HET-D (3 types) %s, HET-ALL own-core %s", f2(n/hc), f2(n/hd), f2(n/ha))
	t.AddNote("paper: contesting two core types matches or beats three types and the full palette")
	return t, nil
}

// AppendixA reports the benchmark x core IPT matrix, the reproduction's
// equivalent of the paper's Appendix A performance table.
func AppendixA(ctx context.Context, l *Lab) (*Table, error) {
	m, err := l.Matrix(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Appendix A",
		Title:  "IPT of each benchmark (rows) on each customized core (columns)",
		Header: append([]string{"benchmark"}, m.Cores...),
	}
	diag := 0
	for b, bench := range m.Benchmarks {
		row := []string{bench}
		bestC, _ := m.BestIn(b, allCores(m))
		for c := range m.Cores {
			cell := f2(m.IPT[b][c])
			if c == bestC {
				cell += "*"
			}
			row = append(row, cell)
		}
		if m.Cores[bestC] == bench {
			diag++
		}
		t.AddRow(row...)
	}
	t.AddNote("%d/%d benchmarks run fastest on their own customized core (* marks each row's best)", diag, len(m.Benchmarks))
	return t, nil
}

func allCores(m *merit.Matrix) []int {
	out := make([]int, len(m.Cores))
	for i := range out {
		out[i] = i
	}
	return out
}

// AppendixAConfigs lists the palette configurations (the top half of the
// paper's Appendix A table).
func AppendixAConfigs(ctx context.Context, l *Lab) (*Table, error) {
	t := &Table{
		ID:    "Appendix A (configurations)",
		Title: "benchmark-customized core configurations (transcribed from the paper)",
		Header: []string{"core", "clock ns", "width", "ROB", "IQ", "LSQ", "FE", "sched", "wake",
			"mem cyc", "L1D", "L2D"},
	}
	for _, c := range l.Cores() {
		t.AddRow(c.Name, fmt.Sprintf("%.2f", c.ClockPeriodNs),
			fmt.Sprintf("%d", c.Width), fmt.Sprintf("%d", c.ROBSize),
			fmt.Sprintf("%d", c.IQSize), fmt.Sprintf("%d", c.LSQSize),
			fmt.Sprintf("%d", c.FrontEndDepth), fmt.Sprintf("%d", c.SchedDepth),
			fmt.Sprintf("%d", c.WakeupLatency), fmt.Sprintf("%d", c.MemLatencyCycles),
			c.L1D.String(), c.L2D.String())
	}
	return t, nil
}
