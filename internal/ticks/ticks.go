// Package ticks defines the simulation time base shared by all cores of a
// contesting system.
//
// The paper synchronizes simulator instances on a base time-unit of 0.01ns
// (10 picoseconds): a core with a 0.33ns clock period executes one cycle
// every 33 time-units. This package represents absolute simulation time and
// clock periods in those integer units so that multi-core co-simulation is
// exact (no floating-point drift between cores with different frequencies).
package ticks

import (
	"fmt"
	"math"
)

// PerNanosecond is the number of base time-units in one nanosecond.
// One tick is 0.01ns, matching the paper's handshake granularity.
const PerNanosecond = 100

// Time is an absolute simulation time in base units of 0.01ns.
type Time int64

// Duration is a span of simulation time in base units of 0.01ns.
type Duration int64

// FromNanoseconds converts a duration in nanoseconds to ticks, rounding to
// the nearest tick (halves away from zero). Rounding must go through
// math.Round: the truncate-after-adding-0.5 idiom is off by one tick for
// odd tick counts at or above 2^52, where the +0.5 addition itself rounds
// to even.
func FromNanoseconds(ns float64) Duration {
	if ns < 0 {
		panic(fmt.Sprintf("ticks: negative duration %gns", ns))
	}
	return Duration(math.Round(ns * PerNanosecond))
}

// Nanoseconds reports the duration in nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / PerNanosecond }

// Nanoseconds reports the absolute time in nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / PerNanosecond }

// Add advances a time by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Clock converts cycle counts of a fixed-period clock to and from absolute
// time. The zero Clock is invalid; use NewClock.
type Clock struct {
	period Duration
}

// NewClock returns a Clock with the given period in nanoseconds.
// It panics if the period does not round to a positive whole number of ticks.
func NewClock(periodNs float64) Clock {
	p := FromNanoseconds(periodNs)
	if p <= 0 {
		panic(fmt.Sprintf("ticks: clock period %gns is below one tick", periodNs))
	}
	return Clock{period: p}
}

// Period reports the clock period.
func (c Clock) Period() Duration { return c.period }

// PeriodNs reports the clock period in nanoseconds.
func (c Clock) PeriodNs() float64 { return c.period.Nanoseconds() }

// FrequencyGHz reports the clock frequency in GHz.
func (c Clock) FrequencyGHz() float64 { return 1 / c.period.Nanoseconds() }

// TimeOfCycle reports the absolute time of the rising edge of the given
// cycle (cycle 0 is at time 0).
func (c Clock) TimeOfCycle(cycle int64) Time { return Time(cycle * int64(c.period)) }

// CycleAt reports the index of the last clock edge at or before t.
func (c Clock) CycleAt(t Time) int64 {
	if t < 0 {
		panic("ticks: negative time")
	}
	return int64(t) / int64(c.period)
}

// NextEdge reports the time of the first clock edge strictly after t.
func (c Clock) NextEdge(t Time) Time {
	return c.TimeOfCycle(c.CycleAt(t) + 1)
}

// CyclesToDuration converts a cycle count to a duration of this clock.
func (c Clock) CyclesToDuration(cycles int64) Duration {
	return Duration(cycles * int64(c.period))
}

func (c Clock) String() string {
	return fmt.Sprintf("%.2fGHz (%.2fns)", c.FrequencyGHz(), c.PeriodNs())
}
