package ticks

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromNanoseconds(t *testing.T) {
	cases := []struct {
		ns   float64
		want Duration
	}{
		{0.01, 1},
		{0.19, 19},
		{0.33, 33},
		{0.49, 49},
		{1, 100},
		{100, 10000},
		{0.004, 0}, // rounds down below half a tick
		{0.005, 1}, // rounds up at half a tick
	}
	for _, c := range cases {
		if got := FromNanoseconds(c.ns); got != c.want {
			t.Errorf("FromNanoseconds(%g) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestFromNanosecondsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative duration")
		}
	}()
	FromNanoseconds(-1)
}

func TestNanosecondsRoundTrip(t *testing.T) {
	for _, ns := range []float64{0.19, 0.27, 0.29, 0.3, 0.31, 0.33, 0.45, 0.49, 1, 2, 5, 10, 100} {
		d := FromNanoseconds(ns)
		if math.Abs(d.Nanoseconds()-ns) > 0.005 {
			t.Errorf("round trip %gns -> %d ticks -> %gns", ns, d, d.Nanoseconds())
		}
	}
}

// Regression for the truncate-after-adding-0.5 rounding bug: for odd tick
// counts at or above 2^52, `Duration(ns*PerNanosecond + 0.5)` rounds the
// +0.5 addition to even and lands one tick high, so a Duration no longer
// round-tripped through Nanoseconds(). math.Round is exact here.
func TestFromNanosecondsLargeDurationRoundTrip(t *testing.T) {
	for _, d := range []Duration{
		1 << 52,
		1<<52 + 1, // fails with the old formula: comes back as 1<<52 + 2
		1<<52 + 3,
		1<<52 + 4,
		1<<52 + 999,
	} {
		if got := FromNanoseconds(d.Nanoseconds()); got != d {
			t.Errorf("FromNanoseconds(%d ticks -> %gns) = %d, off by %d ticks",
				d, d.Nanoseconds(), got, got-d)
		}
	}
}

// Property: a clock period survives the PeriodNs <-> FromNanoseconds round
// trip exactly, for every period the paper-style palette can express —
// including awkward frequencies like 3.03GHz (1/3.03ns periods) whose
// nanosecond value is not exactly representable. No period may ever be off
// by one tick, or co-simulated cores would drift against each other.
func TestClockPeriodRoundTripProperty(t *testing.T) {
	// Exhaustive over every sub-10ns period (1..1000 ticks), which covers
	// all realistic core clocks, then spot frequencies from the paper.
	for p := Duration(1); p <= 1000; p++ {
		clk := Clock{period: p}
		if got := FromNanoseconds(clk.PeriodNs()); got != p {
			t.Fatalf("period %d ticks -> %gns -> %d ticks", p, clk.PeriodNs(), got)
		}
	}
	for _, ghz := range []float64{0.5, 1, 1.52, 2, 2.5, 3, 3.03, 3.33, 4, 1 / 0.33} {
		clk := NewClock(1 / ghz)
		if got := FromNanoseconds(clk.PeriodNs()); got != clk.Period() {
			t.Errorf("%gGHz: period %d ticks -> %gns -> %d ticks",
				ghz, clk.Period(), clk.PeriodNs(), got)
		}
	}
	f := func(raw uint32) bool {
		p := Duration(raw%1_000_000 + 1)
		clk := Clock{period: p}
		return FromNanoseconds(clk.PeriodNs()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockEdges(t *testing.T) {
	c := NewClock(0.33) // 33 ticks
	if c.Period() != 33 {
		t.Fatalf("period = %d, want 33", c.Period())
	}
	if got := c.TimeOfCycle(0); got != 0 {
		t.Errorf("TimeOfCycle(0) = %d", got)
	}
	if got := c.TimeOfCycle(3); got != 99 {
		t.Errorf("TimeOfCycle(3) = %d, want 99", got)
	}
	if got := c.CycleAt(98); got != 2 {
		t.Errorf("CycleAt(98) = %d, want 2", got)
	}
	if got := c.CycleAt(99); got != 3 {
		t.Errorf("CycleAt(99) = %d, want 3", got)
	}
	if got := c.NextEdge(0); got != 33 {
		t.Errorf("NextEdge(0) = %d, want 33", got)
	}
	if got := c.NextEdge(33); got != 66 {
		t.Errorf("NextEdge(33) = %d, want 66", got)
	}
}

func TestClockFrequency(t *testing.T) {
	c := NewClock(0.5)
	if got := c.FrequencyGHz(); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("FrequencyGHz = %g, want 2", got)
	}
}

func TestNewClockPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for sub-tick period")
		}
	}()
	NewClock(0.004)
}

// Property: NextEdge always lands on an exact cycle boundary strictly after t.
func TestNextEdgeProperty(t *testing.T) {
	f := func(periodTenths uint8, tRaw uint32) bool {
		period := float64(periodTenths%60+1) / 10 // 0.1ns .. 6.0ns
		c := NewClock(period)
		tm := Time(tRaw % 1_000_000)
		e := c.NextEdge(tm)
		if e <= tm {
			return false
		}
		return int64(e)%int64(c.Period()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TimeOfCycle and CycleAt are inverse on edges.
func TestCycleInverseProperty(t *testing.T) {
	f := func(periodTenths uint8, cycRaw uint16) bool {
		period := float64(periodTenths%60+1) / 10
		c := NewClock(period)
		cyc := int64(cycRaw)
		return c.CycleAt(c.TimeOfCycle(cyc)) == cyc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
