package spec

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"archcontest/internal/config"
	"archcontest/internal/contest"
)

const testInsts = 10_000

// roundTrip encodes sp to JSON, strictly re-parses it, and returns both
// outcomes: the original spec's and the decoded spec's, executed with no
// cache so the second execution really re-simulates.
func roundTrip(t *testing.T, sp Spec) (*Outcome, *Outcome) {
	t.Helper()
	out1, err := Execute(context.Background(), sp, NewEnv(nil), Hooks{})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	sp2, err := Parse(data)
	if err != nil {
		t.Fatalf("re-parse %s: %v", data, err)
	}
	out2, err := Execute(context.Background(), sp2, NewEnv(nil), Hooks{})
	if err != nil {
		t.Fatalf("re-execute: %v", err)
	}
	return out1, out2
}

// TestSpecRoundTripGoldenGridSingles: every single-core golden-grid
// configuration survives encode -> decode -> re-execute bit-identically.
func TestSpecRoundTripGoldenGridSingles(t *testing.T) {
	benches := []string{"gcc", "mcf", "bzip", "crafty", "twolf"}
	cores := []string{"bzip", "crafty", "gap", "gcc", "gzip", "mcf", "twolf", "vpr"}
	for _, b := range benches {
		for _, c := range cores {
			sp := Spec{Kind: KindRun, Bench: b, N: testInsts, Cores: []string{c}}
			out1, out2 := roundTrip(t, sp)
			if !reflect.DeepEqual(out1.Run, out2.Run) {
				t.Errorf("%s on %s: decoded spec re-executes differently\n%+v\n%+v", b, c, out1.Run, out2.Run)
			}
		}
	}
}

// TestSpecRoundTripGoldenGridContested: the contested golden grid — six
// option variants (latency, exception rendezvous both styles, lag bound,
// store-queue pressure) across four benchmarks — also round-trips.
func TestSpecRoundTripGoldenGridContested(t *testing.T) {
	pairs := []struct {
		a, b string
		opts contest.Options
	}{
		{"gcc", "mcf", contest.Options{}},
		{"bzip", "crafty", contest.Options{LatencyNs: 5}},
		{"twolf", "vpr", contest.Options{ExceptionEvery: 512}},
		{"gzip", "perl", contest.Options{MaxLag: 64}},
		{"gap", "vortex", contest.Options{ExceptionEvery: 768, ExceptionKillRefork: true}},
		{"mcf", "parser", contest.Options{StoreQueueCap: 8}},
	}
	benches := []string{"gcc", "mcf", "twolf", "gzip"}
	for _, p := range pairs {
		opts := p.opts
		opts.RegionSize = 20
		for _, b := range benches {
			sp := Spec{Kind: KindContest, Bench: b, N: testInsts,
				Cores: []string{p.a, p.b}, Contest: &opts}
			out1, out2 := roundTrip(t, sp)
			if !reflect.DeepEqual(out1.Contest, out2.Contest) {
				t.Errorf("%s vs %s on %s: decoded spec re-executes differently\n%+v\n%+v",
					p.a, p.b, b, out1.Contest, out2.Contest)
			}
		}
	}
}

// TestSpecRoundTripCustomCore: an explicit custom configuration (not a
// palette name) survives the JSON round trip too.
func TestSpecRoundTripCustomCore(t *testing.T) {
	custom := config.MustPaletteCore("gcc")
	custom.Name = "tweaked"
	custom.ROBSize = 96
	sp := Spec{Kind: KindRun, Bench: "gcc", N: testInsts, Custom: []config.CoreConfig{custom}}
	out1, out2 := roundTrip(t, sp)
	if !reflect.DeepEqual(out1.Run, out2.Run) {
		t.Errorf("custom core spec re-executes differently\n%+v\n%+v", out1.Run, out2.Run)
	}
	if out1.Run.Core != "tweaked" {
		t.Errorf("ran on %q, want the custom core", out1.Run.Core)
	}
}

func TestSpecInferKind(t *testing.T) {
	cases := []struct {
		sp   Spec
		want string
	}{
		{Spec{Bench: "gcc"}, KindRun},
		{Spec{Bench: "gcc", Cores: []string{"gcc", "mcf"}}, KindContest},
		{Spec{Bench: "gcc", Contest: &contest.Options{}}, KindContest},
		{Spec{Experiment: "appendixA"}, KindExperiment},
		{Spec{Bench: "gcc", Explore: &ExploreSpec{}}, KindExplore},
	}
	for _, c := range cases {
		c.sp.Normalize()
		if c.sp.Kind != c.want {
			t.Errorf("inferred kind %q, want %q (%+v)", c.sp.Kind, c.want, c.sp)
		}
	}
}

// TestSpecInvalid: malformed scenarios are descriptive errors, never
// panics deep inside the engines.
func TestSpecInvalid(t *testing.T) {
	cases := []struct {
		name    string
		json    string
		wantErr string
	}{
		{"unknown field", `{"kind":"run","bench":"gcc","frobnicate":1}`, "frobnicate"},
		{"trailing data", `{"kind":"run","bench":"gcc"} {"more":1}`, "trailing"},
		{"unknown kind", `{"kind":"dance","bench":"gcc"}`, "unknown kind"},
		{"unknown bench", `{"kind":"run","bench":"doom"}`, "doom"},
		{"unknown core", `{"kind":"run","bench":"gcc","cores":["z80"]}`, "z80"},
		{"zero-width custom core", `{"kind":"run","bench":"gcc","custom":[{"Name":"bad","Width":0}]}`, "custom core 0"},
		{"run with two cores", `{"kind":"run","bench":"gcc","cores":["gcc","mcf"]}`, "exactly one core"},
		{"contest with one core", `{"kind":"contest","bench":"gcc","cores":["gcc"]}`, "2..8"},
		{"negative n", `{"kind":"run","bench":"gcc","n":-5}`, "negative trace length"},
		{"negative max_lag", `{"kind":"contest","bench":"gcc","cores":["gcc","mcf"],"contest":{"MaxLag":-1}}`, "max_lag"},
		{"negative store queue", `{"kind":"contest","bench":"gcc","cores":["gcc","mcf"],"contest":{"StoreQueueCap":-2}}`, "store_queue_cap"},
		{"unknown experiment", `{"kind":"experiment","experiment":"figZZ"}`, "unknown experiment"},
		{"run options on contest", `{"kind":"contest","bench":"gcc","cores":["gcc","mcf"],"run":{}}`, "run options"},
		{"record on matrix", `{"kind":"matrix","record":true}`, "record"},
		{"unknown explore mode", `{"kind":"explore","bench":"gcc","explore":{"mode":"hillclimb"}}`, "explore mode"},
		{"pairs on run", `{"kind":"run","bench":"gcc","pairs":2}`, "pairs"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp, err := Parse([]byte(c.json))
			if err == nil {
				err = sp.Validate()
			}
			if err == nil {
				t.Fatalf("accepted invalid spec %s", c.json)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestSpecValidateDefaults: a minimal valid spec normalizes to runnable
// defaults.
func TestSpecValidateDefaults(t *testing.T) {
	sp, err := Parse([]byte(`{"bench":"gcc"}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.Kind != KindRun || sp.N != 200_000 || len(sp.Cores) != 1 || sp.Cores[0] != "gcc" {
		t.Errorf("normalized spec %+v", sp)
	}
}

// TestRouteKey: the cluster routing identity must follow artifact
// identity — observation toggles leave it fixed, artifact-changing fields
// move it, and it is deterministic across normalized/unnormalized copies.
func TestRouteKey(t *testing.T) {
	base := Spec{Kind: KindContest, Bench: "twolf", N: 20000, Cores: []string{"twolf", "vpr"}}
	k := base.RouteKey()
	if k == "" || k != base.RouteKey() {
		t.Fatal("RouteKey not deterministic")
	}

	// Normalization-invariant: an empty kind that infers to contest and an
	// explicit one route identically.
	inferred := Spec{Bench: "twolf", N: 20000, Cores: []string{"twolf", "vpr"}}
	if inferred.RouteKey() != k {
		t.Error("inferred-kind spec routes differently from its explicit twin")
	}

	// Observation-only fields keep the key: a recorded or verified re-run
	// of a scenario still lands on the node holding its artifacts.
	obs := base
	obs.Record = true
	obs.Verify = true
	obs.SampleNs = 50
	obs.Parallelism = 4
	if obs.RouteKey() != k {
		t.Error("observation-only fields changed the route key")
	}

	// Artifact-changing fields must move the key.
	for name, mut := range map[string]func(*Spec){
		"bench": func(s *Spec) { s.Bench = "vpr" },
		"n":     func(s *Spec) { s.N = 40000 },
		"cores": func(s *Spec) { s.Cores = []string{"twolf", "gcc"} },
		"lat":   func(s *Spec) { s.LatencyNs = 9 },
		"opts":  func(s *Spec) { s.Contest = &contest.Options{MaxLag: 7} },
	} {
		mutated := base
		mut(&mutated)
		if mutated.RouteKey() == k {
			t.Errorf("%s change did not change the route key", name)
		}
	}
}
