package spec

import (
	"archcontest/internal/resultcache"
	"archcontest/internal/sim"
)

// RouteKey derives the content-address identity of the artifacts this spec
// will compute or reuse — the routing input for a cache-aware cluster
// coordinator: two specs with the same RouteKey touch the same cached leaf
// results, so sending them to the same node maximizes that node's
// result-cache hit rate.
//
// The key hashes exactly what the leaf cache keys hash, minus the trace
// fingerprint (the trace is itself a deterministic function of bench and
// N, which are included): engine version, kind, benchmark, trace length,
// the resolved core configurations, and the execution options that change
// results. Observation-only fields (Verify, Record, SampleNs, Parallelism)
// are deliberately excluded: they change how a scenario is watched, not
// which artifacts it produces, so a recorded re-run of a cached scenario
// still routes to the node that holds its artifacts.
//
// RouteKey normalizes a copy of the spec; an invalid spec still yields a
// deterministic key (resolution errors fold in as an empty core list), so
// routing never fails before validation does.
func (sp Spec) RouteKey() string {
	sp.Normalize()
	cfgs, _ := sp.ResolveCores()
	return resultcache.Key("route",
		sim.EngineVersion, sp.Kind, sp.Bench, sp.N, cfgs,
		sp.LatencyNs, sp.Run, sp.Contest, sp.Experiment, sp.Pairs, sp.Explore)
}
