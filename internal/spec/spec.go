// Package spec is the unified scenario description executed by every
// driver: a JSON-encodable declaration of what to simulate (a single run,
// a contest, a registered experiment, the full matrix, or a design-space
// exploration), on which cores, over which benchmark trace, with which
// options, and whether to verify and/or record the execution. The three
// ad-hoc entry points (sim.Run, contest.Run, experiments.Lab) remain the
// execution engines; a Spec is the one declarative doorway in front of
// them, shared by the CLIs, the job runner, and the serve daemon.
//
// A Spec validates before it executes: unknown fields, unknown benchmarks
// or cores, structurally invalid custom cores (zero width, out-of-range
// geometry), and out-of-range options are descriptive errors, never
// panics deep inside the engines.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/experiments"
	"archcontest/internal/sim"
	"archcontest/internal/workload"
)

// Kinds of scenario a Spec can describe.
const (
	KindRun        = "run"        // one benchmark on one core
	KindContest    = "contest"    // one benchmark contested across 2..8 cores
	KindExperiment = "experiment" // one registered paper table/figure
	KindMatrix     = "matrix"     // the full benchmark x core IPT matrix
	KindExplore    = "explore"    // design-space exploration (anneal/temper)
)

// Spec declares one scenario. The zero value is not runnable; fill in at
// least Kind (or a field that implies it) and the kind's inputs, then
// Validate (Execute validates again defensively).
type Spec struct {
	// Kind selects the scenario type. Empty infers: Explore set implies
	// explore, Experiment set implies experiment, two or more cores imply
	// contest, otherwise run.
	Kind string `json:"kind,omitempty"`
	// Bench is the benchmark whose trace is executed (run, contest,
	// explore). Experiment and matrix kinds span all benchmarks.
	Bench string `json:"bench,omitempty"`
	// N is the trace length in instructions (0 defaults per kind: 200k for
	// run/contest, 100k for explore, 1M for experiment/matrix).
	N int `json:"n,omitempty"`
	// Cores names palette cores (run: exactly one; contest: with Custom,
	// 2..8). Run kind with no cores defaults to the benchmark's own core.
	Cores []string `json:"cores,omitempty"`
	// Custom supplies explicit core configurations, appended after Cores.
	Custom []config.CoreConfig `json:"custom,omitempty"`
	// LatencyNs overrides the contest core-to-core latency (also the
	// experiment Lab's default latency).
	LatencyNs float64 `json:"latency_ns,omitempty"`
	// Run holds single-run options (run kind).
	Run *sim.RunOptions `json:"run,omitempty"`
	// Contest holds contest options (contest kind).
	Contest *contest.Options `json:"contest,omitempty"`
	// Experiment is the registered experiment ID (experiment kind).
	Experiment string `json:"experiment,omitempty"`
	// Pairs bounds the oracle-shortlisted candidate pairs per benchmark in
	// pair-search experiments (experiment kind; 0 = the Lab default).
	Pairs int `json:"pairs,omitempty"`
	// Explore configures the exploration (explore kind).
	Explore *ExploreSpec `json:"explore,omitempty"`
	// Verify attaches the verification subsystem (invariant checkers and
	// the differential oracle) to every executed leaf. Verified execution
	// bypasses the result cache in both directions.
	Verify bool `json:"verify,omitempty"`
	// Record attaches an obs.Recorder and returns archcontest-obs-v1
	// metrics plus a Chrome/Perfetto timeline in the Outcome. Supported
	// for run and contest kinds. Recorded execution bypasses the result
	// cache (the record happens during execution).
	Record bool `json:"record,omitempty"`
	// SampleNs is the recorder sampling period in simulated nanoseconds
	// (0 = recorder default).
	SampleNs float64 `json:"sample_ns,omitempty"`
	// Parallelism bounds concurrent leaf simulations for campaign kinds
	// (0 = the executing environment's default).
	Parallelism int `json:"parallelism,omitempty"`
}

// ExploreSpec configures the explore kind.
type ExploreSpec struct {
	// Mode is "anneal" (default) or "temper".
	Mode string `json:"mode,omitempty"`
	// Seed drives the walk deterministically.
	Seed uint64 `json:"seed,omitempty"`
	// Steps is the number of annealing moves or tempering rounds.
	Steps int `json:"steps,omitempty"`
	// Lookahead is the annealer's speculative batch size K.
	Lookahead int `json:"lookahead,omitempty"`
	// Chains and ExchangeEvery configure tempering.
	Chains        int `json:"chains,omitempty"`
	ExchangeEvery int `json:"exchange_every,omitempty"`
	// FastFilter enables the fast-model first pass: candidates the
	// interval model rules out are rejected without a detailed
	// simulation, and lookahead speculation past a predicted acceptance
	// is deferred. FastMargin overrides the filter's relative margin
	// (default explore.DefaultFastMargin).
	FastFilter bool    `json:"fast_filter,omitempty"`
	FastMargin float64 `json:"fast_margin,omitempty"`
}

// Parse decodes a Spec from JSON strictly: unknown fields are errors, so a
// typo in a submitted scenario is reported instead of silently ignored.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("spec: trailing data after the JSON document")
	}
	return sp, nil
}

// inferKind resolves an empty Kind from the populated fields.
func (sp *Spec) inferKind() string {
	if sp.Kind != "" {
		return sp.Kind
	}
	switch {
	case sp.Explore != nil:
		return KindExplore
	case sp.Experiment != "":
		return KindExperiment
	case len(sp.Cores)+len(sp.Custom) >= 2 || sp.Contest != nil:
		return KindContest
	default:
		return KindRun
	}
}

// Normalize fills in the inferred kind and the kind's defaults. Validate
// and Execute call it; calling it first is idempotent.
func (sp *Spec) Normalize() {
	sp.Kind = sp.inferKind()
	if sp.N == 0 {
		switch sp.Kind {
		case KindRun, KindContest:
			sp.N = 200_000
		case KindExplore:
			sp.N = 100_000
		default:
			sp.N = 1_000_000
		}
	}
	if sp.Kind == KindRun && len(sp.Cores)+len(sp.Custom) == 0 && sp.Bench != "" {
		sp.Cores = []string{sp.Bench}
	}
	if sp.Kind == KindExplore {
		if sp.Explore == nil {
			sp.Explore = &ExploreSpec{}
		}
		if sp.Explore.Mode == "" {
			sp.Explore.Mode = "anneal"
		}
	}
}

// Validate normalizes the spec and reports the first problem with it as a
// descriptive error. A nil return means Execute will not fail on the
// spec's shape (engine-level failures, like a non-terminating
// configuration hitting MaxCycles, can still occur).
func (sp *Spec) Validate() error {
	sp.Normalize()
	switch sp.Kind {
	case KindRun, KindContest, KindExperiment, KindMatrix, KindExplore:
	default:
		return fmt.Errorf("spec: unknown kind %q (want %s)", sp.Kind,
			strings.Join([]string{KindRun, KindContest, KindExperiment, KindMatrix, KindExplore}, ", "))
	}
	if sp.N < 0 {
		return fmt.Errorf("spec: negative trace length n = %d", sp.N)
	}
	if sp.LatencyNs < 0 {
		return fmt.Errorf("spec: negative latency_ns %g", sp.LatencyNs)
	}
	if sp.SampleNs < 0 {
		return fmt.Errorf("spec: negative sample_ns %g", sp.SampleNs)
	}
	if sp.Parallelism < 0 {
		return fmt.Errorf("spec: negative parallelism %d", sp.Parallelism)
	}
	if sp.Pairs < 0 {
		return fmt.Errorf("spec: negative pairs %d", sp.Pairs)
	}
	if sp.Pairs > 0 && sp.Kind != KindExperiment {
		return fmt.Errorf("spec: pairs is only meaningful for the experiment kind (got %q)", sp.Kind)
	}

	needsBench := sp.Kind == KindRun || sp.Kind == KindContest || sp.Kind == KindExplore
	if needsBench {
		if sp.Bench == "" {
			return fmt.Errorf("spec: kind %q needs a bench", sp.Kind)
		}
		if _, err := workload.ProfileFor(sp.Bench); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}

	cfgs, err := sp.ResolveCores()
	if err != nil {
		return err
	}
	switch sp.Kind {
	case KindRun:
		if len(cfgs) != 1 {
			return fmt.Errorf("spec: kind run wants exactly one core, got %d", len(cfgs))
		}
	case KindContest:
		if len(cfgs) < 2 || len(cfgs) > 8 {
			return fmt.Errorf("spec: kind contest wants 2..8 cores, got %d", len(cfgs))
		}
	default:
		if len(cfgs) != 0 {
			return fmt.Errorf("spec: kind %q takes no cores", sp.Kind)
		}
	}

	if sp.Contest != nil {
		if sp.Kind != KindContest {
			return fmt.Errorf("spec: contest options on kind %q", sp.Kind)
		}
		if sp.Contest.MaxLag < 0 {
			return fmt.Errorf("spec: contest max_lag %d must be >= 1 (0 selects the default)", sp.Contest.MaxLag)
		}
		if sp.Contest.StoreQueueCap < 0 {
			return fmt.Errorf("spec: contest store_queue_cap %d must be >= 1 (0 selects the default)", sp.Contest.StoreQueueCap)
		}
		if sp.Contest.LatencyNs < 0 {
			return fmt.Errorf("spec: negative contest latency_ns %g", sp.Contest.LatencyNs)
		}
		if sp.Contest.ReforkWarmupNs < 0 {
			return fmt.Errorf("spec: negative contest refork warm-up %g", sp.Contest.ReforkWarmupNs)
		}
		if sp.Contest.LeadChangeWarmupNs < 0 {
			return fmt.Errorf("spec: negative contest lead-change warm-up %g", sp.Contest.LeadChangeWarmupNs)
		}
		if !sp.Contest.ExceptionKillRefork &&
			(sp.Contest.ReforkWarmupNs > 0 || sp.Contest.ReforkColdPredictor || sp.Contest.ReforkColdCaches) {
			return fmt.Errorf("spec: refork warm-up options need exception_kill_refork")
		}
	}
	if sp.Run != nil && sp.Kind != KindRun {
		return fmt.Errorf("spec: run options on kind %q", sp.Kind)
	}

	switch sp.Kind {
	case KindExperiment:
		if sp.Experiment == "" {
			return fmt.Errorf("spec: kind experiment needs an experiment ID")
		}
		if _, ok := experiments.Registry[sp.Experiment]; !ok {
			return fmt.Errorf("spec: unknown experiment %q (see the registry: %s)",
				sp.Experiment, strings.Join(experiments.RegistryOrder, ", "))
		}
	case KindExplore:
		e := sp.Explore
		if e.Mode != "anneal" && e.Mode != "temper" {
			return fmt.Errorf("spec: unknown explore mode %q (anneal or temper)", e.Mode)
		}
		if e.Steps < 0 || e.Lookahead < 0 || e.Chains < 0 || e.ExchangeEvery < 0 {
			return fmt.Errorf("spec: negative explore parameter")
		}
		if e.FastMargin < 0 {
			return fmt.Errorf("spec: negative explore fast margin")
		}
		if e.FastMargin > 0 && !e.FastFilter {
			return fmt.Errorf("spec: fast_margin set without fast_filter")
		}
	}

	if sp.Record && sp.Kind != KindRun && sp.Kind != KindContest {
		return fmt.Errorf("spec: record is only supported for run and contest kinds (got %q)", sp.Kind)
	}
	return nil
}

// ResolveCores materializes Cores (palette names) and Custom (explicit
// configurations, validated) into one configuration list, names first.
func (sp *Spec) ResolveCores() ([]config.CoreConfig, error) {
	cfgs := make([]config.CoreConfig, 0, len(sp.Cores)+len(sp.Custom))
	for _, name := range sp.Cores {
		c, err := config.PaletteCore(name)
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
		cfgs = append(cfgs, c)
	}
	for i, c := range sp.Custom {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("spec: custom core %d: %w", i, err)
		}
		cfgs = append(cfgs, c)
	}
	return cfgs, nil
}
