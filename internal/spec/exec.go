package spec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/experiments"
	"archcontest/internal/explore"
	"archcontest/internal/invariant"
	"archcontest/internal/merit"
	"archcontest/internal/obs"
	"archcontest/internal/pipeline"
	"archcontest/internal/resultcache"
	"archcontest/internal/sim"
	"archcontest/internal/ticks"
	"archcontest/internal/trace"
	"archcontest/internal/workload"
)

// Env is the shared execution environment specs run in: the persistent
// result cache and a memoized pool of experiment Labs, so many jobs (or
// many experiments of one CLI invocation) share traces, memoized
// artifacts, and the global parallelism bound instead of rebuilding them
// per scenario.
type Env struct {
	// Cache, if non-nil, persists leaf results across specs and processes.
	Cache *resultcache.Cache
	// Parallelism bounds concurrent leaf simulations per Lab (0 = NumCPU).
	Parallelism int
	// Artifacts, if non-nil, receives campaign spans from every Lab built
	// by this Env.
	Artifacts *obs.ArtifactLog

	mu   sync.Mutex
	labs map[string]*experiments.Lab
}

// NewEnv builds an execution environment over an optional result cache.
func NewEnv(cache *resultcache.Cache) *Env {
	return &Env{Cache: cache}
}

// lab returns the Env's memoized Lab for the given campaign shape,
// building it on first use. Labs are keyed by their full configuration,
// so two specs differing only in verify/record toggles or trace length
// get distinct Labs while identical ones share memoized artifacts.
func (e *Env) lab(cfg experiments.Config) *Lab {
	key := resultcache.Key("lab", cfg)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.labs == nil {
		e.labs = make(map[string]*Lab)
	}
	if l, ok := e.labs[key]; ok {
		return l
	}
	l := experiments.NewLab(cfg)
	e.labs[key] = l
	return l
}

// Lab aliases the campaign engine for Env's memoized pool.
type Lab = experiments.Lab

// Hooks observe an executing spec. All callbacks are optional and are
// invoked from the executing goroutine.
type Hooks struct {
	// Progress observes retirement progress of run/contest kinds and step
	// progress of explore kinds: done units out of total. Calls are
	// monotonically non-decreasing in done.
	Progress func(done, total int64)
	// Campaign is called once, before an experiment/matrix campaign
	// starts, with a live getter for the Lab's executed-work counters.
	Campaign func(stats func() experiments.CampaignStats)
	// ExploreMove observes every accepted exploration move (chain is 0
	// for annealing).
	ExploreMove func(chain, step int, cfg config.CoreConfig, ipt float64)
}

// Outcome is the result of executing a Spec: exactly one of the payload
// fields matching the spec's kind is set, plus Metrics when Record was
// requested.
type Outcome struct {
	Kind    string             `json:"kind"`
	Run     *sim.Result        `json:"run,omitempty"`
	Contest *contest.Result    `json:"contest,omitempty"`
	Table   *experiments.Table `json:"table,omitempty"`
	Matrix  *merit.Matrix      `json:"matrix,omitempty"`
	Explore *explore.Result    `json:"explore,omitempty"`
	Metrics *obs.Metrics       `json:"metrics,omitempty"`

	recorder *obs.Recorder
}

// WriteChromeTrace writes the recorded run's Chrome/Perfetto timeline.
// It errors when the spec did not request Record.
func (o *Outcome) WriteChromeTrace(w io.Writer) error {
	if o.recorder == nil {
		return fmt.Errorf("spec: no recording requested (set record: true)")
	}
	return o.recorder.WriteChromeTrace(w)
}

// progressTracker reports monotonic execution progress, throttled so the
// hook fires O(hundreds) of times per run instead of per retirement.
type progressTracker struct {
	fn     func(done, total int64)
	total  int64
	stride int64
	max    int64
	next   int64
}

func newProgressTracker(fn func(done, total int64), total int64) *progressTracker {
	stride := total / 256
	if stride < 1 {
		stride = 1
	}
	return &progressTracker{fn: fn, total: total, stride: stride}
}

func (p *progressTracker) observe(done int64) {
	if p == nil || done <= p.max {
		return
	}
	p.max = done
	if done >= p.next {
		p.next = done + p.stride
		p.fn(done, p.total)
	}
}

func (p *progressTracker) finish() {
	if p == nil {
		return
	}
	if p.max < p.total {
		p.max = p.total
	}
	p.fn(p.max, p.total)
}

// checker adapts the tracker to pipeline.Checker (per-core hooks).
func (p *progressTracker) checker() pipeline.Checker {
	if p == nil {
		return nil
	}
	return progressChecker{p}
}

type progressChecker struct{ p *progressTracker }

func (c progressChecker) AfterCycle(*pipeline.Core)                          {}
func (c progressChecker) OnRetire(_ *pipeline.Core, seq int64, _ ticks.Time) { c.p.observe(seq + 1) }
func (c progressChecker) OnInject(_ *pipeline.Core, seq int64, _ ticks.Time) { c.p.observe(seq + 1) }

// observer adapts the tracker to contest.Observer: progress is the
// furthest retirement on any core.
func (p *progressTracker) observer() contest.Observer {
	if p == nil {
		return nil
	}
	return progressObserver{p}
}

type progressObserver struct{ p *progressTracker }

func (o progressObserver) Attach(*contest.System)           {}
func (o progressObserver) CoreChecker(int) pipeline.Checker { return progressChecker{o.p} }
func (o progressObserver) AfterStep(*contest.System, int)   {}

// violations collects checker violations, capped.
type violations struct {
	errs []error
	more int
}

func (v *violations) add(err error) {
	if len(v.errs) < 8 {
		v.errs = append(v.errs, err)
	} else {
		v.more++
	}
}

func (v *violations) err(what string) error {
	if len(v.errs) == 0 {
		return nil
	}
	if v.more > 0 {
		v.errs = append(v.errs, fmt.Errorf("... and %d further violations", v.more))
	}
	return fmt.Errorf("spec: verified %s: %w", what, errors.Join(v.errs...))
}

// Execute validates and runs the spec inside the environment. Cancelling
// ctx stops the execution cooperatively: the engines exit at their next
// context poll, campaign layers abandon un-started leaves, and no partial
// result is persisted to the cache. The returned error is ctx.Err() (or
// wraps it) on cancellation.
func Execute(ctx context.Context, sp Spec, env *Env, hooks Hooks) (*Outcome, error) {
	if env == nil {
		env = NewEnv(nil)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	switch sp.Kind {
	case KindRun:
		return executeRun(ctx, sp, env, hooks)
	case KindContest:
		return executeContest(ctx, sp, env, hooks)
	case KindExperiment, KindMatrix:
		return executeCampaign(ctx, sp, env, hooks)
	case KindExplore:
		return executeExplore(ctx, sp, env, hooks)
	}
	return nil, fmt.Errorf("spec: unknown kind %q", sp.Kind)
}

// generateTrace builds the spec's benchmark trace.
func generateTrace(sp Spec) (*trace.Trace, error) {
	p, err := workload.ProfileFor(sp.Bench)
	if err != nil {
		return nil, err
	}
	return workload.Generate(p, sp.N)
}

func executeRun(ctx context.Context, sp Spec, env *Env, hooks Hooks) (*Outcome, error) {
	cfgs, err := sp.ResolveCores()
	if err != nil {
		return nil, err
	}
	cfg := cfgs[0]
	tr, err := generateTrace(sp)
	if err != nil {
		return nil, err
	}
	var opts sim.RunOptions
	if sp.Run != nil {
		opts = *sp.Run
	}
	out := &Outcome{Kind: KindRun}

	// The cache serves (and learns) only plain executions: verification
	// must actually run, and a recording must observe real execution.
	key := experiments.RunKey(tr, cfg, opts)
	cacheable := env.Cache != nil && !sp.Verify && !sp.Record
	if cacheable {
		var cached sim.Result
		if env.Cache.Get(key, &cached) {
			if hooks.Progress != nil {
				hooks.Progress(int64(tr.Len()), int64(tr.Len()))
			}
			out.Run = &cached
			return out, nil
		}
	}

	var tracker *progressTracker
	if hooks.Progress != nil {
		tracker = newProgressTracker(hooks.Progress, int64(tr.Len()))
	}
	var vlog violations
	var chk pipeline.Checker
	if sp.Verify {
		chk = invariant.NewCoreChecker(tr, invariant.Options{OnViolation: vlog.add})
	}
	if sp.Record {
		out.recorder = obs.NewRecorder(obs.Options{SampleIntervalNs: sp.SampleNs})
	}
	var recChk pipeline.Checker
	if out.recorder != nil {
		recChk = out.recorder.CoreChecker(0)
	}
	opts.Checker = obs.MultiChecker(tracker.checker(), recChk, chk)

	res, err := sim.RunContext(ctx, cfg, tr, opts)
	if err != nil {
		return nil, err
	}
	if fin, ok := chk.(*invariant.CoreChecker); ok && fin != nil {
		fin.Finish(int64(tr.Len()))
	}
	if verr := vlog.err(fmt.Sprintf("run of %s on %s", tr.Name(), cfg.Name)); verr != nil {
		return nil, verr
	}
	tracker.finish()
	if out.recorder != nil {
		out.recorder.FinishRun(res)
		m, err := out.recorder.Metrics()
		if err != nil {
			return nil, err
		}
		out.Metrics = &m
	}
	if cacheable {
		env.Cache.Put(key, res)
	}
	out.Run = &res
	return out, nil
}

func executeContest(ctx context.Context, sp Spec, env *Env, hooks Hooks) (*Outcome, error) {
	cfgs, err := sp.ResolveCores()
	if err != nil {
		return nil, err
	}
	tr, err := generateTrace(sp)
	if err != nil {
		return nil, err
	}
	var opts contest.Options
	if sp.Contest != nil {
		opts = *sp.Contest
	}
	if opts.LatencyNs == 0 && sp.LatencyNs != 0 {
		opts.LatencyNs = sp.LatencyNs
	}
	out := &Outcome{Kind: KindContest}

	key := experiments.ContestKey(tr, cfgs, opts)
	cacheable := env.Cache != nil && !sp.Verify && !sp.Record
	if cacheable {
		var cached contest.Result
		if env.Cache.Get(key, &cached) {
			if hooks.Progress != nil {
				hooks.Progress(int64(tr.Len()), int64(tr.Len()))
			}
			out.Contest = &cached
			return out, nil
		}
	}

	var tracker *progressTracker
	if hooks.Progress != nil {
		tracker = newProgressTracker(hooks.Progress, int64(tr.Len()))
	}
	var vlog violations
	var inv *invariant.SystemObserver
	if sp.Verify {
		inv = invariant.NewSystemObserver(tr, invariant.Options{OnViolation: vlog.add})
	}
	if sp.Record {
		out.recorder = obs.NewRecorder(obs.Options{SampleIntervalNs: sp.SampleNs})
	}
	var invObs, recObs contest.Observer
	if inv != nil {
		invObs = inv
	}
	if out.recorder != nil {
		recObs = out.recorder
	}
	opts.Observer = obs.MultiObserver(tracker.observer(), recObs, invObs)

	res, err := contest.RunContext(ctx, cfgs, tr, opts)
	if err != nil {
		return nil, err
	}
	if inv != nil {
		inv.Finish(res)
	}
	if verr := vlog.err(fmt.Sprintf("contest of %s", tr.Name())); verr != nil {
		return nil, verr
	}
	tracker.finish()
	if out.recorder != nil {
		out.recorder.FinishContest(res)
		m, err := out.recorder.Metrics()
		if err != nil {
			return nil, err
		}
		out.Metrics = &m
	}
	if cacheable {
		env.Cache.Put(key, res)
	}
	out.Contest = &res
	return out, nil
}

func (e *Env) labFor(sp Spec) *Lab {
	par := sp.Parallelism
	if par == 0 {
		par = e.Parallelism
	}
	if par == 0 {
		par = runtime.NumCPU()
	}
	cache := e.Cache
	if sp.Verify {
		cache = nil // the Lab bypasses it anyway; keep the key honest
	}
	return e.lab(experiments.Config{
		N:              sp.N,
		LatencyNs:      sp.LatencyNs,
		CandidatePairs: sp.Pairs,
		Parallelism:    par,
		Cache:          cache,
		Verify:         sp.Verify,
		Artifacts:      e.Artifacts,
	})
}

func executeCampaign(ctx context.Context, sp Spec, env *Env, hooks Hooks) (*Outcome, error) {
	l := env.labFor(sp)
	if hooks.Campaign != nil {
		hooks.Campaign(l.CampaignStats)
	}
	if sp.Kind == KindMatrix {
		m, err := l.Matrix(ctx)
		if err != nil {
			return nil, err
		}
		return &Outcome{Kind: KindMatrix, Matrix: m}, nil
	}
	t, err := experiments.Registry[sp.Experiment](ctx, l)
	if err != nil {
		return nil, err
	}
	return &Outcome{Kind: KindExperiment, Table: t}, nil
}

func executeExplore(ctx context.Context, sp Spec, env *Env, hooks Hooks) (*Outcome, error) {
	tr, err := generateTrace(sp)
	if err != nil {
		return nil, err
	}
	e := sp.Explore
	cache := env.Cache
	var res explore.Result
	var tracker *progressTracker
	switch e.Mode {
	case "anneal":
		opts := explore.Options{
			Seed:        e.Seed,
			Steps:       e.Steps,
			Lookahead:   e.Lookahead,
			Parallelism: sp.Parallelism,
			Cache:       cache,
			Log:         env.Artifacts,
			FastFilter:  e.FastFilter,
			FastMargin:  e.FastMargin,
		}
		if hooks.Progress != nil {
			steps := opts.Steps
			if steps == 0 {
				steps = 200 // the annealer's default
			}
			tracker = newProgressTracker(hooks.Progress, int64(steps))
		}
		if hooks.ExploreMove != nil || tracker != nil {
			tracker := tracker
			opts.Progress = func(step int, cfg config.CoreConfig, ipt float64) {
				tracker.observe(int64(step + 1))
				if hooks.ExploreMove != nil {
					hooks.ExploreMove(0, step, cfg, ipt)
				}
			}
		}
		res, err = explore.Customize(ctx, tr, opts)
	case "temper":
		opts := explore.TemperingOptions{
			Seed:          e.Seed,
			Steps:         e.Steps,
			Chains:        e.Chains,
			ExchangeEvery: e.ExchangeEvery,
			Parallelism:   sp.Parallelism,
			Cache:         cache,
			Log:           env.Artifacts,
			FastFilter:    e.FastFilter,
			FastMargin:    e.FastMargin,
		}
		if hooks.Progress != nil {
			steps := opts.Steps
			if steps == 0 {
				steps = 200 // the tempering default
			}
			tracker = newProgressTracker(hooks.Progress, int64(steps))
		}
		if hooks.ExploreMove != nil || tracker != nil {
			tracker := tracker
			opts.Progress = func(chain, step int, cfg config.CoreConfig, ipt float64) {
				tracker.observe(int64(step + 1))
				if hooks.ExploreMove != nil {
					hooks.ExploreMove(chain, step, cfg, ipt)
				}
			}
		}
		res, err = explore.Temper(ctx, tr, opts)
	default:
		return nil, fmt.Errorf("spec: unknown explore mode %q", e.Mode)
	}
	if err != nil {
		return nil, err
	}
	tracker.finish()
	return &Outcome{Kind: KindExplore, Explore: &res}, nil
}
