// Package oracle is the in-order differential reference executor of the
// verification subsystem.
//
// The cycle-level core model (internal/pipeline) is a timing model: it
// decides *when* each dynamic instruction retires, never *what* it
// computes. That makes cycle-count goldens blind to a whole class of bugs —
// a window slot aliased by the ring buffer, an instruction retired twice or
// skipped, stores merged out of program order by the synchronizing store
// queue — because those bugs can leave every counter plausible while the
// architectural execution they describe is garbage.
//
// The oracle closes that hole by giving the ISA deterministic value
// semantics and executing every trace strictly in order, one instruction
// per step, with no window, no speculation and no caches: the simplest
// possible machine that is obviously correct. Its outputs — the retired
// instruction sequence, every register value, the program-order store
// stream with data, and a checksum over all of it — are the ground truth
// that differential tests compare every pipeline.Core configuration and
// every contested system against.
//
// Value semantics (fixed forever; changing them invalidates checksums):
//
//   - Registers r1..r63 start as mix(regSeed+r); r0 is the zero register
//     and always reads 0. Memory words start as mix(memSeed+addr).
//   - ALU:  mix(s1 + rotl(s2,17) + opALU)
//   - Mul:  mix(s1 * (s2|1))
//   - Div:  mix(s1 ^ rotl(s2,29) + opDiv)  (no machine divide: the class
//     only matters for timing; the oracle needs a deterministic value)
//   - Load: the last value stored to the address, else the initial word.
//   - Store: writes the value of Src2 (the data register, per the isa
//     conventions) to the address.
//   - Branch: no register effect; the outcome is the trace's Taken bit
//     (branch directions are trace inputs, not computed values).
//
// Every operation, including branches, mixes its (seq, value) pair into a
// running FNV-1a checksum, so two executions agree on the checksum iff they
// retired the same instructions in the same order with the same results.
package oracle

import (
	"fmt"

	"archcontest/internal/isa"
	"archcontest/internal/trace"
)

// Seeds for the initial architectural state. Arbitrary odd constants;
// fixed so that every oracle execution of a trace is bit-identical.
const (
	regSeed = 0x9e3779b97f4a7c15
	memSeed = 0xbf58476d1ce4e5b9
)

// mix is the splitmix64 finalizer: a cheap bijective mixer whose output is
// effectively collision-free over the handful of values any trace produces.
func mix(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

func rotl(v uint64, k uint) uint64 { return v<<k | v>>(64-k) }

// Result is the architectural outcome of one retired dynamic instruction.
type Result struct {
	// Seq is the instruction's trace index (its retirement number).
	Seq int64
	// Value is the destination register value (zero when the instruction
	// has no destination).
	Value uint64
	// StoreAddr and StoreData describe the memory write of a store.
	StoreAddr, StoreData uint64
	// Taken is the branch outcome (branches only).
	Taken bool
}

// StoreEvent is one program-order memory write.
type StoreEvent struct {
	Seq  int64
	Addr uint64
	Data uint64
}

// Executor executes a trace in order, one instruction per Step.
type Executor struct {
	tr   *trace.Trace
	next int64

	regs [isa.NumRegs]uint64
	mem  map[uint64]uint64

	stores   []StoreEvent
	checksum uint64
}

// New builds an executor positioned before the first instruction.
func New(tr *trace.Trace) *Executor {
	e := &Executor{
		tr:       tr,
		mem:      make(map[uint64]uint64),
		checksum: 14695981039346656037, // FNV-1a offset basis
	}
	for r := 1; r < isa.NumRegs; r++ {
		e.regs[r] = mix(regSeed + uint64(r))
	}
	return e
}

// Next reports the index of the next instruction to execute.
func (e *Executor) Next() int64 { return e.next }

// Done reports whether the whole trace has been executed.
func (e *Executor) Done() bool { return e.next >= int64(e.tr.Len()) }

// Reg reads the current architectural value of a register.
func (e *Executor) Reg(r isa.RegID) uint64 {
	if r == isa.NoReg {
		return 0
	}
	return e.regs[r]
}

// Mem reads the current architectural value of a memory word.
func (e *Executor) Mem(addr uint64) uint64 {
	if v, ok := e.mem[addr]; ok {
		return v
	}
	return mix(memSeed + addr)
}

// Stores returns the program-order store stream executed so far. The slice
// aliases internal state and must not be modified.
func (e *Executor) Stores() []StoreEvent { return e.stores }

// Checksum reports the running FNV-1a checksum over every (seq, value,
// outcome) retired so far.
func (e *Executor) Checksum() uint64 { return e.checksum }

func (e *Executor) mixChecksum(v uint64) {
	const prime64 = 1099511628211
	for i := 0; i < 8; i++ {
		e.checksum ^= v & 0xff
		e.checksum *= prime64
		v >>= 8
	}
}

// Step executes the next instruction and returns its architectural result.
// It panics if the trace is already fully executed.
func (e *Executor) Step() Result {
	if e.Done() {
		panic(fmt.Sprintf("oracle: step past the end of %s (%d instructions)", e.tr.Name(), e.tr.Len()))
	}
	in := e.tr.At(e.next)
	res := Result{Seq: e.next}
	s1, s2 := e.Reg(in.Src1), e.Reg(in.Src2)
	switch in.Op {
	case isa.OpALU:
		res.Value = mix(s1 + rotl(s2, 17) + uint64(isa.OpALU))
	case isa.OpMul:
		res.Value = mix(s1 * (s2 | 1))
	case isa.OpDiv:
		res.Value = mix(s1 ^ rotl(s2, 29) + uint64(isa.OpDiv))
	case isa.OpLoad:
		res.Value = e.Mem(in.Addr)
	case isa.OpStore:
		res.StoreAddr, res.StoreData = in.Addr, s2
		e.mem[in.Addr] = s2
		e.stores = append(e.stores, StoreEvent{Seq: e.next, Addr: in.Addr, Data: s2})
	case isa.OpBranch:
		res.Taken = in.Taken
	default:
		panic(fmt.Sprintf("oracle: invalid op class %d at %s[%d]", in.Op, e.tr.Name(), e.next))
	}
	if in.HasDst() {
		e.regs[in.Dst] = res.Value
	}
	e.mixChecksum(uint64(res.Seq))
	e.mixChecksum(res.Value)
	e.mixChecksum(res.StoreAddr)
	e.mixChecksum(res.StoreData)
	if res.Taken {
		e.mixChecksum(1)
	} else {
		e.mixChecksum(0)
	}
	e.next++
	return res
}

// Execution is a fully-executed trace: the ground-truth architectural
// outcome every timing model must agree with.
type Execution struct {
	tr      *trace.Trace
	results []Result
	exec    *Executor
}

// Run executes the whole trace and returns its execution.
func Run(tr *trace.Trace) *Execution {
	e := New(tr)
	results := make([]Result, 0, tr.Len())
	for !e.Done() {
		results = append(results, e.Step())
	}
	return &Execution{tr: tr, results: results, exec: e}
}

// Len reports the number of retired instructions.
func (x *Execution) Len() int64 { return int64(len(x.results)) }

// Result returns the architectural result of dynamic instruction seq.
func (x *Execution) Result(seq int64) Result { return x.results[seq] }

// Stores returns the program-order store stream. The slice aliases
// internal state and must not be modified.
func (x *Execution) Stores() []StoreEvent { return x.exec.Stores() }

// Checksum reports the checksum over the complete execution.
func (x *Execution) Checksum() uint64 { return x.exec.Checksum() }

// FinalReg reads a register's final architectural value.
func (x *Execution) FinalReg(r isa.RegID) uint64 { return x.exec.Reg(r) }

// FinalMem reads a memory word's final architectural value.
func (x *Execution) FinalMem(addr uint64) uint64 { return x.exec.Mem(addr) }

// ReplayChecksum computes the checksum an in-order machine would produce
// retiring exactly the given sequence of instruction indices. A timing
// model whose retirement sequence replays to the canonical Checksum has
// retired every instruction exactly once, in program order, with the
// ground-truth architectural results; any skip, duplicate or reorder
// perturbs the replay checksum with overwhelming probability.
func (x *Execution) ReplayChecksum(seqs []int64) (uint64, error) {
	e := New(x.tr)
	for i, seq := range seqs {
		if seq != e.Next() {
			return 0, fmt.Errorf("oracle: replay position %d retires instruction %d, want %d", i, seq, e.Next())
		}
		e.Step()
	}
	return e.Checksum(), nil
}
