package oracle

import (
	"testing"

	"archcontest/internal/isa"
	"archcontest/internal/trace"
	"archcontest/internal/workload"
)

// tinyTrace builds a hand-written trace exercising every op class and a
// store-to-load forwarding pair.
func tinyTrace() *trace.Trace {
	return trace.New("tiny", []isa.Inst{
		{Op: isa.OpALU, PC: 0x100, Dst: 1, Src1: 2, Src2: 3},
		{Op: isa.OpMul, PC: 0x104, Dst: 4, Src1: 1, Src2: 1},
		{Op: isa.OpStore, PC: 0x108, Addr: 0x1000, Src1: 5, Src2: 4},
		{Op: isa.OpLoad, PC: 0x10c, Addr: 0x1000, Dst: 6, Src1: 5},
		{Op: isa.OpDiv, PC: 0x110, Dst: 7, Src1: 6, Src2: 1},
		{Op: isa.OpBranch, PC: 0x114, Src1: 7, Taken: true},
		{Op: isa.OpLoad, PC: 0x118, Addr: 0x2000, Dst: 8, Src1: 5},
	})
}

func TestStoreToLoadValue(t *testing.T) {
	x := Run(tinyTrace())
	st := x.Result(2)
	ld := x.Result(3)
	if st.StoreAddr != 0x1000 {
		t.Fatalf("store addr = %#x, want 0x1000", st.StoreAddr)
	}
	if st.StoreData != x.Result(1).Value {
		t.Errorf("store data %#x does not match producer value %#x", st.StoreData, x.Result(1).Value)
	}
	if ld.Value != st.StoreData {
		t.Errorf("load after store reads %#x, want stored %#x", ld.Value, st.StoreData)
	}
	if x.FinalMem(0x1000) != st.StoreData {
		t.Errorf("final memory %#x, want %#x", x.FinalMem(0x1000), st.StoreData)
	}
	// An untouched address reads its deterministic initial value.
	if got, want := x.Result(6).Value, New(tinyTrace()).Mem(0x2000); got != want {
		t.Errorf("cold load reads %#x, want initial %#x", got, want)
	}
}

func TestBranchOutcomeFromTrace(t *testing.T) {
	x := Run(tinyTrace())
	if !x.Result(5).Taken {
		t.Errorf("branch outcome not taken; trace says taken")
	}
	if x.Result(5).Value != 0 {
		t.Errorf("branch produced a value %#x", x.Result(5).Value)
	}
}

func TestDeterminism(t *testing.T) {
	tr := workload.MustGenerate("gcc", 5000)
	a, b := Run(tr), Run(tr)
	if a.Checksum() != b.Checksum() {
		t.Fatalf("two oracle runs disagree: %#x vs %#x", a.Checksum(), b.Checksum())
	}
	if len(a.Stores()) != len(b.Stores()) {
		t.Fatalf("store streams differ in length: %d vs %d", len(a.Stores()), len(b.Stores()))
	}
	for r := isa.RegID(0); r < isa.NumRegs; r++ {
		if a.FinalReg(r) != b.FinalReg(r) {
			t.Errorf("final r%d differs: %#x vs %#x", r, a.FinalReg(r), b.FinalReg(r))
		}
	}
}

func TestChecksumSensitivity(t *testing.T) {
	tr := workload.MustGenerate("twolf", 2000)
	base := Run(tr).Checksum()
	// A different trace of the same length must checksum differently.
	if other := Run(workload.MustGenerate("twolf", 2001)); other.Checksum() == base {
		t.Errorf("checksum insensitive to trace content")
	}
}

func TestReplayChecksum(t *testing.T) {
	tr := workload.MustGenerate("mcf", 3000)
	x := Run(tr)
	seqs := make([]int64, tr.Len())
	for i := range seqs {
		seqs[i] = int64(i)
	}
	got, err := x.ReplayChecksum(seqs)
	if err != nil {
		t.Fatalf("identity replay rejected: %v", err)
	}
	if got != x.Checksum() {
		t.Fatalf("identity replay checksum %#x, want %#x", got, x.Checksum())
	}
	// A skipped instruction must be rejected, not silently absorbed.
	if _, err := x.ReplayChecksum(append(append([]int64(nil), seqs[:10]...), 11)); err == nil {
		t.Errorf("replay with a skipped instruction accepted")
	}
	// A prefix replays cleanly but to a different checksum.
	prefix, err := x.ReplayChecksum(seqs[:100])
	if err != nil {
		t.Fatalf("prefix replay rejected: %v", err)
	}
	if prefix == x.Checksum() {
		t.Errorf("prefix checksum equals full checksum")
	}
}

func TestZeroRegisterReadsZero(t *testing.T) {
	e := New(tinyTrace())
	if e.Reg(isa.NoReg) != 0 {
		t.Fatalf("zero register reads %#x", e.Reg(isa.NoReg))
	}
}

func TestStepPastEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic stepping past the end")
		}
	}()
	e := New(trace.New("one", []isa.Inst{{Op: isa.OpALU, PC: 1, Dst: 1}}))
	e.Step()
	e.Step()
}
