package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export: the recorder's event stream rendered in the
// JSON Array Format that chrome://tracing and Perfetto load directly.
//
// Mapping convention (1 trace microsecond = 1 simulated nanosecond, so
// the viewer's "us" ruler reads as simulated ns):
//
//   - pid 0 "contest": tid 0 carries lead-change instants, tid 1 the
//     leadership stints as duration (X) slices — the lead migrating
//     between cores is the paper's headline dynamic, so it gets the top
//     track;
//   - pid i+1 "core i <name>": counter (C) tracks for interval IPC,
//     lagging distance and injections, plus instant (i) markers for
//     exception rendezvous, kill/refork and saturation.
type traceEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the run's timeline. Call after FinishRun or
// FinishContest.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if !r.finished {
		return fmt.Errorf("obs: WriteChromeTrace before FinishRun/FinishContest")
	}
	var evs []traceEvent

	// Metadata names the tracks.
	evs = append(evs,
		meta("process_name", 0, 0, map[string]any{"name": "contest " + r.benchmark}),
		meta("thread_name", 0, 0, map[string]any{"name": "lead changes"}),
		meta("thread_name", 0, 1, map[string]any{"name": "leader"}),
	)
	for i := range r.finalStats {
		evs = append(evs, meta("process_name", i+1, 0,
			map[string]any{"name": fmt.Sprintf("core %d %s", i, r.coreName(i))}))
	}

	events := r.ring.events()

	// Leadership stints: reconstruct from the retained lead changes. The
	// stint before the first retained change starts at the earlier of time
	// 0 (nothing dropped) or that change's timestamp.
	stintStart, stintLeader := 0.0, 0
	sawChange := false
	for _, e := range events {
		if e.Kind != KindLeadChange {
			continue
		}
		at := e.Time.Nanoseconds()
		if !sawChange && r.Dropped() > 0 {
			stintStart, stintLeader = at, int(e.Seq)
		}
		sawChange = true
		evs = append(evs,
			traceEvent{
				Name: fmt.Sprintf("core %d leads", stintLeader),
				Ph:   "X", Ts: stintStart, Dur: at - stintStart, Pid: 0, Tid: 1,
			},
			traceEvent{
				Name: fmt.Sprintf("lead: core %d -> core %d", e.Seq, e.Core),
				Ph:   "i", Ts: at, Pid: 0, Tid: 0, Scope: "p",
				Args: map[string]any{"new_leader_retired": e.Retired},
			})
		stintStart, stintLeader = at, int(e.Core)
	}
	if end := r.endTime.Nanoseconds(); end > stintStart && len(r.finalStats) > 1 {
		evs = append(evs, traceEvent{
			Name: fmt.Sprintf("core %d leads", stintLeader),
			Ph:   "X", Ts: stintStart, Dur: end - stintStart, Pid: 0, Tid: 1,
		})
	}

	// Per-core counters and markers.
	for i := range r.finalStats {
		core := int32(i)
		pid := i + 1
		for _, iv := range intervalsFor(events, core) {
			evs = append(evs,
				counter("ipc", pid, iv.EndNs, map[string]any{"ipc": iv.IPC}),
				counter("lag", pid, iv.EndNs, map[string]any{"insts": iv.Lag}),
				counter("injected", pid, iv.EndNs, map[string]any{"insts": iv.Injected}),
			)
		}
		for _, e := range events {
			if e.Core != core {
				continue
			}
			switch e.Kind {
			case KindException, KindRefork, KindSaturated:
				args := map[string]any{"seq": e.Seq}
				if e.Kind == KindSaturated {
					args = nil
				}
				evs = append(evs, traceEvent{
					Name: e.Kind.String(), Ph: "i",
					Ts: e.Time.Nanoseconds(), Pid: pid, Tid: 0, Scope: "t",
					Args: args,
				})
			}
		}
	}

	return writeTraceJSON(w, evs)
}

func meta(name string, pid, tid int, args map[string]any) traceEvent {
	return traceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args}
}

func counter(name string, pid int, ts float64, args map[string]any) traceEvent {
	return traceEvent{Name: name, Ph: "C", Ts: ts, Pid: pid, Tid: 0, Args: args}
}

// writeTraceJSON emits the JSON Array Format: one event per line inside a
// top-level array, so traces stay diffable and stream-writable.
func writeTraceJSON(w io.Writer, evs []traceEvent) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, e := range evs {
		data, err := json.Marshal(e)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(evs)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(data, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
