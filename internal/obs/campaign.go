package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Campaign self-observability: where a figures/matrix/explore run spends
// its wall time. The campaign engine records a Span per executed leaf
// artifact (trace generation, single run, contest); the log renders them
// as a Chrome trace with one lane per concurrently-executing slot, which
// makes scheduling gaps and parallelism collapse visible at a glance.

// Span is one timed artifact computation.
type Span struct {
	// Kind groups spans ("trace", "run", "contest", "eval", ...); Name
	// identifies the artifact.
	Kind, Name string
	Start, End time.Time
}

// ArtifactLog is a concurrency-safe span collector. The zero value is not
// usable; a nil *ArtifactLog is, and records nothing — callers hold one
// pointer and never branch.
type ArtifactLog struct {
	mu     sync.Mutex
	origin time.Time
	spans  []Span
}

// NewArtifactLog starts a log; the first recorded span anchors trace time
// zero at the log's creation.
func NewArtifactLog() *ArtifactLog {
	return &ArtifactLog{origin: time.Now()}
}

// Record appends one finished span (no-op on a nil log).
func (l *ArtifactLog) Record(kind, name string, start, end time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.spans = append(l.spans, Span{Kind: kind, Name: name, Start: start, End: end})
	l.mu.Unlock()
}

// Time wraps fn in a recorded span (no-op timing on a nil log).
func (l *ArtifactLog) Time(kind, name string, fn func()) {
	if l == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	l.Record(kind, name, start, time.Now())
}

// Spans returns a copy of the recorded spans in recording order.
func (l *ArtifactLog) Spans() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Span(nil), l.spans...)
}

// CampaignKindSummary aggregates one artifact kind.
type CampaignKindSummary struct {
	Kind   string  `json:"kind"`
	Count  int     `json:"count"`
	WallNs int64   `json:"wall_ns"`
	Share  float64 `json:"share"` // of summed span time
}

// CampaignSummary is the log's aggregate JSON report.
type CampaignSummary struct {
	Schema string `json:"schema"`
	Spans  int    `json:"spans"`
	// ElapsedNs is first-start to last-end; BusyNs sums span durations
	// (BusyNs/ElapsedNs estimates achieved parallelism).
	ElapsedNs int64                 `json:"elapsed_ns"`
	BusyNs    int64                 `json:"busy_ns"`
	Kinds     []CampaignKindSummary `json:"kinds"`
}

// Summary aggregates the log.
func (l *ArtifactLog) Summary() CampaignSummary {
	spans := l.Spans()
	s := CampaignSummary{Schema: SchemaVersion, Spans: len(spans)}
	if len(spans) == 0 {
		return s
	}
	first, last := spans[0].Start, spans[0].End
	byKind := map[string]*CampaignKindSummary{}
	var order []string
	for _, sp := range spans {
		if sp.Start.Before(first) {
			first = sp.Start
		}
		if sp.End.After(last) {
			last = sp.End
		}
		k := byKind[sp.Kind]
		if k == nil {
			k = &CampaignKindSummary{Kind: sp.Kind}
			byKind[sp.Kind] = k
			order = append(order, sp.Kind)
		}
		k.Count++
		k.WallNs += sp.End.Sub(sp.Start).Nanoseconds()
		s.BusyNs += sp.End.Sub(sp.Start).Nanoseconds()
	}
	s.ElapsedNs = last.Sub(first).Nanoseconds()
	sort.Strings(order)
	for _, kind := range order {
		k := byKind[kind]
		if s.BusyNs > 0 {
			k.Share = float64(k.WallNs) / float64(s.BusyNs)
		}
		s.Kinds = append(s.Kinds, *k)
	}
	return s
}

// WriteChromeTrace renders the log as a Chrome trace: pid 0 "campaign",
// one tid lane per concurrently-busy slot (greedy assignment, so the lane
// count is the achieved parallelism), spans as X duration events in real
// microseconds from the log's origin.
func (l *ArtifactLog) WriteChromeTrace(w io.Writer) error {
	spans := l.Spans()
	byStart := make([]int, len(spans))
	for i := range byStart {
		byStart[i] = i
	}
	sort.SliceStable(byStart, func(a, b int) bool {
		return spans[byStart[a]].Start.Before(spans[byStart[b]].Start)
	})

	evs := []traceEvent{meta("process_name", 0, 0, map[string]any{"name": "campaign"})}
	var laneEnd []time.Time // per-lane last span end
	for _, i := range byStart {
		sp := spans[i]
		lane := -1
		for t, end := range laneEnd {
			if !end.After(sp.Start) {
				lane = t
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, time.Time{})
			evs = append(evs, meta("thread_name", 0, lane,
				map[string]any{"name": fmt.Sprintf("slot %d", lane)}))
		}
		laneEnd[lane] = sp.End
		evs = append(evs, traceEvent{
			Name: sp.Kind + " " + sp.Name,
			Ph:   "X",
			Ts:   float64(sp.Start.Sub(l.origin).Microseconds()),
			Dur:  float64(sp.End.Sub(sp.Start).Microseconds()),
			Pid:  0, Tid: lane,
			Args: map[string]any{"kind": sp.Kind, "name": sp.Name},
		})
	}
	return writeTraceJSON(w, evs)
}
