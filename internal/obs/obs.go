// Package obs is the opt-in observability layer of the contest engine: a
// zero-allocation, ring-buffered event recorder that rides along a single
// or contested run through the same nil-guarded hook pattern as
// internal/invariant, and turns what it sees into per-interval metrics
// (a stable JSON schema) and Chrome trace_event timelines that open
// directly in chrome://tracing and Perfetto.
//
// The paper's central claim is dynamic — the lead migrates between cores
// as fine-grain program behaviour changes — and end-of-run aggregates
// cannot show it. The recorder captures, on a fixed sampling interval of
// simulated time, each core's retire-rate samples (with cache and
// mispredict counters), the lagging distance behind the leader, GRB
// injection progress, every lead change, core saturation, and the
// exception-rendezvous / kill-refork events of the Section 4.3 model.
//
// Attachment is by the existing hooks only — the hot loops gain no new
// code:
//
//   - single-core runs: pass Recorder.CoreChecker(0) as
//     sim.RunOptions.Checker (pipeline.Options.Checker underneath);
//   - contested runs: pass the Recorder as contest.Options.Observer.
//
// A Recorder never mutates simulation state and never changes a result:
// a run with a recorder attached is bit-identical to the same run without
// (locked by the detached-recorder golden tests). All steady-state
// recording writes into a preallocated ring; when a run outlives the ring
// the oldest events are overwritten (Dropped counts them) while the
// aggregate metrics, which are maintained outside the ring, stay exact.
package obs

import (
	"archcontest/internal/ticks"
)

// SchemaVersion names the metrics JSON schema. Bump on any
// field-semantics change so downstream tooling can detect drift.
const SchemaVersion = "archcontest-obs-v1"

// Kind discriminates recorded events.
type Kind uint8

const (
	// KindSample is a periodic per-core counter sample: the Event carries
	// the core's cumulative counters at Time.
	KindSample Kind = 1 + iota
	// KindLeadChange marks the system leader changing to Core at Time;
	// Seq holds the previous leader and Retired the new leader's retired
	// count.
	KindLeadChange
	// KindSaturated marks Core being declared a saturated lagger
	// (contesting disabled for it).
	KindSaturated
	// KindException marks Core retiring the excepting instruction Seq
	// after the rendezvous (the servicing handler under kill/refork).
	KindException
	// KindRefork marks Core paying the terminate-and-refork penalty for
	// excepting instruction Seq (ExceptionKillRefork runs only).
	KindRefork
)

// String names the kind for exports.
func (k Kind) String() string {
	switch k {
	case KindSample:
		return "sample"
	case KindLeadChange:
		return "lead-change"
	case KindSaturated:
		return "saturated"
	case KindException:
		return "exception"
	case KindRefork:
		return "refork"
	}
	return "unknown"
}

// Event is one recorded observation. The struct is flat and fixed-size so
// the ring is a single allocation and appends are plain stores.
type Event struct {
	Kind Kind
	Core int32
	Time ticks.Time
	// Seq is the instruction index of point events (exception, refork),
	// or the previous leader for lead changes; -1 when not applicable.
	Seq int64

	// Sample payload: the core's cumulative counters at Time. Only
	// KindSample (and the final sample emitted by Finish*) populate all
	// of them; KindLeadChange reuses Retired for the new leader's count.
	Retired, Injected, EarlyResolved  int64
	Mispredicts, Branches             int64
	L1DAccesses, L1DMisses, L2DMisses int64
	Cycles                            int64
	// Lag is the core's lagging distance behind the leader in
	// instructions at sample time (0 in single-core runs).
	Lag int64
}

// Options configures a Recorder.
type Options struct {
	// SampleIntervalNs is the sampling period in simulated nanoseconds
	// (default 100ns). Each core emits at most one sample event per
	// interval, timestamped at its first retirement inside it.
	SampleIntervalNs float64
	// Capacity is the event-ring capacity (default 32768 events). When a
	// run outlives the ring, the oldest events are overwritten and
	// counted in Dropped; aggregates stay exact regardless.
	Capacity int
}

func (o *Options) applyDefaults() {
	if o.SampleIntervalNs == 0 {
		o.SampleIntervalNs = 100
	}
	if o.Capacity == 0 {
		o.Capacity = 32768
	}
}

// ring is a fixed-capacity overwrite-oldest event buffer.
type ring struct {
	buf []Event
	n   int64 // total events ever appended
}

func (r *ring) append(e Event) {
	r.buf[r.n%int64(len(r.buf))] = e
	r.n++
}

// events returns the retained events in append order (a fresh slice).
func (r *ring) events() []Event {
	if r.n <= int64(len(r.buf)) {
		return append([]Event(nil), r.buf[:r.n]...)
	}
	out := make([]Event, len(r.buf))
	start := int(r.n % int64(len(r.buf)))
	n := copy(out, r.buf[start:])
	copy(out[n:], r.buf[:start])
	return out
}

// dropped reports how many events were overwritten by wrap-around.
func (r *ring) dropped() int64 {
	if d := r.n - int64(len(r.buf)); d > 0 {
		return d
	}
	return 0
}
