package obs

import (
	"archcontest/internal/contest"
	"archcontest/internal/pipeline"
	"archcontest/internal/ticks"
)

// MultiChecker fans a core's verification/observation hooks out to several
// checkers in order. Nil entries are dropped; zero live checkers yield nil
// (so the pipeline's nil-guarded fast path stays intact) and a single live
// checker is returned unwrapped.
func MultiChecker(checkers ...pipeline.Checker) pipeline.Checker {
	live := make(multiChecker, 0, len(checkers))
	for _, c := range checkers {
		if c != nil {
			live = append(live, c)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multiChecker []pipeline.Checker

func (m multiChecker) AfterCycle(c *pipeline.Core) {
	for _, x := range m {
		x.AfterCycle(c)
	}
}

func (m multiChecker) OnRetire(c *pipeline.Core, seq int64, at ticks.Time) {
	for _, x := range m {
		x.OnRetire(c, seq, at)
	}
}

func (m multiChecker) OnInject(c *pipeline.Core, seq int64, at ticks.Time) {
	for _, x := range m {
		x.OnInject(c, seq, at)
	}
}

// MultiObserver fans the contest.Observer hooks out to several observers
// in order (e.g. a Recorder and an invariant SystemObserver on the same
// run). Nil entries are dropped; zero live observers yield nil and a
// single live observer is returned unwrapped.
func MultiObserver(observers ...contest.Observer) contest.Observer {
	live := make(multiObserver, 0, len(observers))
	for _, o := range observers {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multiObserver []contest.Observer

func (m multiObserver) Attach(sys *contest.System) {
	for _, o := range m {
		o.Attach(sys)
	}
}

func (m multiObserver) CoreChecker(core int) pipeline.Checker {
	checkers := make([]pipeline.Checker, 0, len(m))
	for _, o := range m {
		checkers = append(checkers, o.CoreChecker(core))
	}
	return MultiChecker(checkers...)
}

func (m multiObserver) AfterStep(sys *contest.System, core int) {
	for _, o := range m {
		o.AfterStep(sys, core)
	}
}

var (
	_ pipeline.Checker = (multiChecker)(nil)
	_ contest.Observer = (multiObserver)(nil)
)
