package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/sim"
	"archcontest/internal/ticks"
	"archcontest/internal/workload"
)

func TestRingWrapOrder(t *testing.T) {
	r := ring{buf: make([]Event, 4)}
	for i := 0; i < 3; i++ {
		r.append(Event{Seq: int64(i)})
	}
	if d := r.dropped(); d != 0 {
		t.Fatalf("dropped %d before wrap", d)
	}
	evs := r.events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}

	// Push far past capacity: the newest 4 survive, in append order.
	for i := 3; i < 11; i++ {
		r.append(Event{Seq: int64(i)})
	}
	if d := r.dropped(); d != 7 {
		t.Fatalf("dropped %d, want 7", d)
	}
	evs = r.events()
	if len(evs) != 4 {
		t.Fatalf("got %d events after wrap, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(7 + i); e.Seq != want {
			t.Fatalf("event %d has Seq %d, want %d", i, e.Seq, want)
		}
	}
}

// A recorder whose ring overflows must still report exact aggregates: the
// counters live outside the ring, so only the per-interval series is
// truncated.
func TestRecorderRingOverflowExactAggregates(t *testing.T) {
	tr := workload.MustGenerate("twolf", 30_000)
	cfgs := []config.CoreConfig{config.MustPaletteCore("twolf"), config.MustPaletteCore("vpr")}

	rec := NewRecorder(Options{Capacity: 64, SampleIntervalNs: 25})
	res, err := contest.Run(cfgs, tr, contest.Options{Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	rec.FinishContest(res)

	if rec.Dropped() == 0 {
		t.Fatalf("ring did not overflow (capacity 64, %d events kept) — shrink Capacity", len(rec.Events()))
	}
	if got := len(rec.Events()); got != 64 {
		t.Fatalf("retained %d events, want capacity 64", got)
	}
	if rec.LeadChanges() != res.LeadChanges {
		t.Errorf("recorder saw %d lead changes, contest reports %d", rec.LeadChanges(), res.LeadChanges)
	}
	m, err := rec.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.DroppedEvents != rec.Dropped() {
		t.Errorf("metrics DroppedEvents %d, recorder %d", m.DroppedEvents, rec.Dropped())
	}
	var share float64
	for i, cm := range m.Cores {
		if cm.Retired != res.PerCore[i].Retired {
			t.Errorf("core %d Retired %d, want exact %d despite overflow", i, cm.Retired, res.PerCore[i].Retired)
		}
		if cm.Cycles != res.PerCore[i].Cycles {
			t.Errorf("core %d Cycles %d, want exact %d", i, cm.Cycles, res.PerCore[i].Cycles)
		}
		share += cm.LeaderShare
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("leader shares sum to %f, want 1", share)
	}
	if won := m.Cores[0].LeadChangesWon + m.Cores[1].LeadChangesWon; won != res.LeadChanges {
		t.Errorf("lead changes won sum to %d, want %d", won, res.LeadChanges)
	}
}

func TestMetricsBeforeFinish(t *testing.T) {
	rec := NewRecorder(Options{})
	if _, err := rec.Metrics(); err == nil {
		t.Error("Metrics before Finish* did not error")
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err == nil {
		t.Error("WriteChromeTrace before Finish* did not error")
	}
}

func TestRecorderSingleCoreMetrics(t *testing.T) {
	tr := workload.MustGenerate("gcc", 20_000)
	cfg := config.MustPaletteCore("gcc")
	rec := NewRecorder(Options{SampleIntervalNs: 50})
	res, err := sim.Run(cfg, tr, sim.RunOptions{Checker: rec.CoreChecker(0)})
	if err != nil {
		t.Fatal(err)
	}
	rec.FinishRun(res)
	m, err := rec.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != SchemaVersion {
		t.Errorf("schema %q, want %q", m.Schema, SchemaVersion)
	}
	if m.Kind != "single" || m.Winner != -1 || m.LeadChanges != 0 {
		t.Errorf("single-core header wrong: %+v", m)
	}
	if len(m.Cores) != 1 || m.Cores[0].Retired != res.Stats.Retired {
		t.Fatalf("core metrics wrong: %+v", m.Cores)
	}
	if m.Cores[0].LeaderShare < 0.999 {
		t.Errorf("only core's LeaderShare %f, want 1", m.Cores[0].LeaderShare)
	}
	if len(m.Cores[0].Intervals) == 0 {
		t.Fatal("no interval series")
	}
	// Interval deltas must telescope back to the cumulative counters.
	var retired int64
	last := 0.0
	for _, iv := range m.Cores[0].Intervals {
		if iv.EndNs <= iv.StartNs {
			t.Fatalf("degenerate interval %+v", iv)
		}
		if iv.StartNs < last {
			t.Fatalf("intervals out of order at %+v", iv)
		}
		last = iv.EndNs
		retired += iv.Retired
	}
	if retired > res.Stats.Retired {
		t.Errorf("interval retired sum %d exceeds total %d", retired, res.Stats.Retired)
	}
	if retired < res.Stats.Retired/2 {
		t.Errorf("interval series covers only %d of %d retirements", retired, res.Stats.Retired)
	}
}

// The exported timeline must be loadable by chrome://tracing / Perfetto:
// a JSON array of objects, each with the required trace_event fields and a
// known phase, counters numeric, instants scoped.
func TestChromeTraceSchema(t *testing.T) {
	tr := workload.MustGenerate("twolf", 20_000)
	cfgs := []config.CoreConfig{config.MustPaletteCore("twolf"), config.MustPaletteCore("vpr")}
	rec := NewRecorder(Options{})
	res, err := contest.Run(cfgs, tr, contest.Options{Observer: rec, ExceptionEvery: 4096})
	if err != nil {
		t.Fatal(err)
	}
	rec.FinishContest(res)

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())

	phases := map[string]int{}
	leadInstants := 0
	for _, e := range evs {
		ph := e["ph"].(string)
		phases[ph]++
		switch ph {
		case "M", "C", "i", "X":
		default:
			t.Fatalf("unknown phase %q in %v", ph, e)
		}
		if _, ok := e["name"].(string); !ok {
			t.Fatalf("event without name: %v", e)
		}
		if ts, ok := e["ts"].(float64); !ok || ts < 0 {
			t.Fatalf("event with bad ts: %v", e)
		}
		if ph == "X" {
			if dur, ok := e["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("X event with bad dur: %v", e)
			}
		}
		if ph == "i" {
			if s, ok := e["s"].(string); !ok || (s != "p" && s != "t") {
				t.Fatalf("instant without scope: %v", e)
			}
			if strings.HasPrefix(e["name"].(string), "lead:") {
				leadInstants++
			}
		}
		if ph == "C" {
			args, ok := e["args"].(map[string]any)
			if !ok || len(args) == 0 {
				t.Fatalf("counter without numeric args: %v", e)
			}
			for k, v := range args {
				if _, ok := v.(float64); !ok {
					t.Fatalf("counter arg %q not numeric: %v", k, e)
				}
			}
		}
	}
	for _, ph := range []string{"M", "C", "i", "X"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in trace", ph)
		}
	}
	if int64(leadInstants) != res.LeadChanges {
		t.Errorf("%d lead-change instants, contest reports %d", leadInstants, res.LeadChanges)
	}
}

func TestArtifactLogTraceAndSummary(t *testing.T) {
	var nilLog *ArtifactLog
	nilLog.Record("run", "x", time.Time{}, time.Time{}) // must not panic
	ran := false
	nilLog.Time("run", "x", func() { ran = true })
	if !ran {
		t.Fatal("nil log did not run fn")
	}

	l := NewArtifactLog()
	base := l.origin
	// Two overlapping spans need two lanes; a third after both fits lane 0.
	l.Record("trace", "gcc", base, base.Add(4*time.Millisecond))
	l.Record("run", "gcc/gcc", base.Add(1*time.Millisecond), base.Add(3*time.Millisecond))
	l.Record("contest", "gcc/gcc/mcf", base.Add(5*time.Millisecond), base.Add(6*time.Millisecond))

	s := l.Summary()
	if s.Spans != 3 || len(s.Kinds) != 3 {
		t.Fatalf("summary %+v", s)
	}
	if s.ElapsedNs != (6 * time.Millisecond).Nanoseconds() {
		t.Errorf("elapsed %d", s.ElapsedNs)
	}
	if s.BusyNs != (7 * time.Millisecond).Nanoseconds() {
		t.Errorf("busy %d", s.BusyNs)
	}
	var share float64
	for _, k := range s.Kinds {
		share += k.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("kind shares sum to %f", share)
	}

	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())
	lanes := map[float64]bool{}
	slices := 0
	for _, e := range evs {
		if e["ph"] == "X" {
			slices++
			lanes[e["tid"].(float64)] = true
		}
	}
	if slices != 3 {
		t.Errorf("%d slices, want 3", slices)
	}
	if len(lanes) != 2 {
		t.Errorf("%d lanes, want 2 (two overlapping spans, third reuses a lane)", len(lanes))
	}
}

func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var evs []map[string]any
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	return evs
}

// Sub-tick sampling intervals clamp to one tick (one sample per tick that
// retires) instead of a modulo-by-zero panic.
func TestRecorderTinyInterval(t *testing.T) {
	tr := workload.MustGenerate("gcc", 2_000)
	cfg := config.MustPaletteCore("gcc")
	rec := NewRecorder(Options{SampleIntervalNs: 1e-9})
	if rec.interval != ticks.Time(1) {
		t.Fatalf("interval %d, want clamp to 1 tick", rec.interval)
	}
	res, err := sim.Run(cfg, tr, sim.RunOptions{Checker: rec.CoreChecker(0)})
	if err != nil {
		t.Fatal(err)
	}
	rec.FinishRun(res)
	// Superscalar retire shares one timestamp across a cycle's retirements,
	// so the densest possible series is one sample per retiring tick — far
	// denser than any realistic interval, but bounded by retire bursts.
	if got := int64(len(rec.Events())) + rec.Dropped(); got < res.Stats.Retired/8 {
		t.Errorf("tick-rate sampling recorded only %d events for %d retirements", got, res.Stats.Retired)
	}
}

// Exception and refork events must appear under the kill/refork handler
// model, tagged with the excepting instruction.
func TestRecorderExceptionEvents(t *testing.T) {
	tr := workload.MustGenerate("gap", 20_000)
	cfgs := []config.CoreConfig{config.MustPaletteCore("gap"), config.MustPaletteCore("vortex")}
	rec := NewRecorder(Options{Capacity: 1 << 16})
	res, err := contest.Run(cfgs, tr, contest.Options{ExceptionEvery: 768, ExceptionKillRefork: true, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	rec.FinishContest(res)
	exc, refork := 0, 0
	for _, e := range rec.Events() {
		switch e.Kind {
		case KindException:
			exc++
			if (e.Seq+1)%768 != 0 {
				t.Fatalf("exception at non-boundary seq %d", e.Seq)
			}
		case KindRefork:
			refork++
		}
	}
	if exc == 0 {
		t.Error("no exception events recorded")
	}
	if refork == 0 {
		t.Error("no refork events recorded under ExceptionKillRefork")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindSample; k <= KindRefork; k++ {
		if k.String() == "unknown" {
			t.Errorf("Kind %d has no name", k)
		}
	}
	if Kind(0).String() != "unknown" || Kind(99).String() != "unknown" {
		t.Error("out-of-range kinds must stringify as unknown")
	}
	_ = fmt.Sprintf("%v", KindSample) // fmt.Stringer wiring
}
