package obs

import (
	"archcontest/internal/contest"
	"archcontest/internal/pipeline"
	"archcontest/internal/sim"
	"archcontest/internal/ticks"
)

// Recorder observes one run — single-core or contested — and records
// events into a preallocated ring. Build a fresh Recorder per run.
//
// For contested runs pass it as contest.Options.Observer; for single-core
// runs pass CoreChecker(0) as sim.RunOptions.Checker. After the run call
// FinishContest or FinishRun with the result, then read Metrics, Events,
// or WriteChromeTrace.
type Recorder struct {
	opts     Options
	interval ticks.Time
	ring     ring

	sys *contest.System // nil for single-core runs

	cores []*coreRecorder

	// Aggregates maintained outside the ring — exact even when the ring
	// wraps. Slices are sized by the highest core index seen.
	retired    []int64
	lastRetire []ticks.Time
	leadWon    []int64
	occupancy  []ticks.Duration
	saturated  []bool

	leader      int
	leadChanges int64
	leaderSince ticks.Time
	maxRetired  int64

	excEvery   int64
	killRefork bool
	lastExcSeq int64

	// Finalization state.
	finished   bool
	endTime    ticks.Time
	benchmark  string
	names      []string
	winner     int
	insts      int64
	finalStats []pipeline.Stats
}

// NewRecorder builds a recorder.
func NewRecorder(opts Options) *Recorder {
	opts.applyDefaults()
	interval := ticks.Time(ticks.FromNanoseconds(opts.SampleIntervalNs))
	if interval < 1 {
		interval = 1 // sub-tick intervals clamp to one sample per retiring tick
	}
	return &Recorder{
		opts:       opts,
		interval:   interval,
		ring:       ring{buf: make([]Event, opts.Capacity)},
		winner:     -1,
		lastExcSeq: -1,
	}
}

// grow sizes the per-core aggregate state for core index i.
func (r *Recorder) grow(i int) {
	for len(r.retired) <= i {
		r.retired = append(r.retired, 0)
		r.lastRetire = append(r.lastRetire, 0)
		r.leadWon = append(r.leadWon, 0)
		r.occupancy = append(r.occupancy, 0)
		r.saturated = append(r.saturated, false)
	}
}

// CoreChecker returns the per-core observer hook for core i. It
// implements both the contest.Observer method and the single-core
// attachment point (sim.RunOptions.Checker for core 0).
func (r *Recorder) CoreChecker(core int) pipeline.Checker {
	r.grow(core)
	for len(r.cores) <= core {
		r.cores = append(r.cores, nil)
	}
	cr := &coreRecorder{r: r, core: int32(core), nextSample: r.interval}
	r.cores[core] = cr
	return cr
}

// Attach implements contest.Observer.
func (r *Recorder) Attach(sys *contest.System) {
	r.sys = sys
	r.grow(sys.NumCores() - 1)
	copts := sys.Options()
	r.excEvery = copts.ExceptionEvery
	r.killRefork = copts.ExceptionKillRefork
}

// AfterStep implements contest.Observer: lead-change and saturation
// tracking. It is called after every stepped core cycle, so it is a
// handful of compares in the common case.
func (r *Recorder) AfterStep(sys *contest.System, core int) {
	if lc := sys.LeadChanges(); lc != r.leadChanges {
		// The stepped core just took the lead, at its latest retirement.
		at := r.lastRetire[core]
		prev := r.leader
		r.occupancy[prev] += ticks.Duration(at - r.leaderSince)
		r.leader = sys.Leader()
		r.leadChanges = lc
		r.leaderSince = at
		r.leadWon[r.leader]++
		r.ring.append(Event{
			Kind:    KindLeadChange,
			Core:    int32(r.leader),
			Time:    at,
			Seq:     int64(prev),
			Retired: r.retired[r.leader],
		})
	}
	for i := range r.saturated {
		if !r.saturated[i] && sys.IsSaturated(i) {
			r.saturated[i] = true
			r.ring.append(Event{
				Kind: KindSaturated,
				Core: int32(i),
				Time: sys.Core(core).Now(),
				Seq:  -1,
			})
		}
	}
}

// FinishContest finalizes the recorder with a contested result: it closes
// the last leadership stint and emits one final sample per core from the
// result's exact end-of-run counters.
func (r *Recorder) FinishContest(res contest.Result) {
	r.finished = true
	r.endTime = res.Time
	r.benchmark = res.Benchmark
	r.names = res.Cores
	r.winner = res.Winner
	r.insts = res.Insts
	r.finalStats = res.PerCore
	r.grow(len(res.PerCore) - 1)
	r.occupancy[r.leader] += ticks.Duration(res.Time - r.leaderSince)
	top := int64(0)
	for _, st := range res.PerCore {
		if st.Retired > top {
			top = st.Retired
		}
	}
	for i, st := range res.PerCore {
		r.ring.append(sampleEvent(int32(i), res.Time, st, top-st.Retired))
	}
}

// FinishRun finalizes the recorder with a single-core result.
func (r *Recorder) FinishRun(res sim.Result) {
	r.finished = true
	r.endTime = res.Time
	r.benchmark = res.Benchmark
	r.names = []string{res.Core}
	r.insts = res.Insts
	r.finalStats = []pipeline.Stats{res.Stats}
	r.grow(0)
	r.occupancy[0] += ticks.Duration(res.Time - r.leaderSince)
	r.ring.append(sampleEvent(0, res.Time, res.Stats, 0))
}

// Events returns the retained events in order. The ring keeps the newest
// Capacity events; Dropped reports how many older ones were overwritten.
func (r *Recorder) Events() []Event { return r.ring.events() }

// Dropped reports how many events the ring overwrote.
func (r *Recorder) Dropped() int64 { return r.ring.dropped() }

// LeadChanges reports the observed lead-change count.
func (r *Recorder) LeadChanges() int64 { return r.leadChanges }

func sampleEvent(core int32, at ticks.Time, st pipeline.Stats, lag int64) Event {
	return Event{
		Kind:          KindSample,
		Core:          core,
		Time:          at,
		Seq:           -1,
		Retired:       st.Retired,
		Injected:      st.Injected,
		EarlyResolved: st.EarlyResolved,
		Mispredicts:   st.Mispredicts,
		Branches:      st.Branches,
		L1DAccesses:   int64(st.L1D.Accesses),
		L1DMisses:     int64(st.L1D.Misses),
		L2DMisses:     int64(st.L2D.Misses),
		Cycles:        st.Cycles,
		Lag:           lag,
	}
}

// coreRecorder is the per-core pipeline.Checker: retire-rate sampling on
// the fixed interval, and the exception/refork event stream. All its work
// sits behind the existing nil-guarded hooks, and the per-retire fast
// path is two compares.
type coreRecorder struct {
	r          *Recorder
	core       int32
	nextSample ticks.Time
	memLat     int64 // MemLatencyCycles, captured at the first retirement
	injected   int64
}

// AfterCycle implements pipeline.Checker. Cycle-granular work would cost
// an order of magnitude more than sampling on retirements; everything the
// recorder needs is visible at retire time, so this stays empty.
func (cr *coreRecorder) AfterCycle(c *pipeline.Core) {}

// OnRetire implements pipeline.Checker.
func (cr *coreRecorder) OnRetire(c *pipeline.Core, seq int64, at ticks.Time) {
	r := cr.r
	done := seq + 1
	r.retired[cr.core] = done
	r.lastRetire[cr.core] = at
	if done > r.maxRetired {
		r.maxRetired = done
	}
	if cr.memLat == 0 {
		cr.memLat = int64(c.Config().MemLatencyCycles)
	}
	if r.excEvery > 0 && done%r.excEvery == 0 {
		kind := KindException
		if r.killRefork && seq == r.lastExcSeq {
			// A later arrival at an already-serviced exception: under
			// terminate-and-refork this core's thread was killed and
			// reforked rather than running the parallelized handler.
			kind = KindRefork
		}
		r.lastExcSeq = seq
		r.ring.append(Event{Kind: kind, Core: cr.core, Time: at, Seq: seq})
	}
	if at < cr.nextSample {
		return
	}
	r.ring.append(sampleEvent(cr.core, at, c.Stats(), r.maxRetired-done))
	cr.nextSample = at - at%cr.r.interval + cr.r.interval
}

// OnInject implements pipeline.Checker: count GRB-injected completions
// (the cumulative count also rides along every sample).
func (cr *coreRecorder) OnInject(c *pipeline.Core, seq int64, at ticks.Time) {
	cr.injected++
}

var (
	_ contest.Observer = (*Recorder)(nil)
	_ pipeline.Checker = (*coreRecorder)(nil)
)
