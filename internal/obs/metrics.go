package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Metrics is the aggregated observability report of one run. The JSON
// field names are a stable schema (SchemaVersion); downstream analysis
// may rely on them.
type Metrics struct {
	Schema    string `json:"schema"`
	Benchmark string `json:"benchmark"`
	// Kind is "contest" or "single".
	Kind string `json:"kind"`
	// Insts is the trace length; TimeNs the system completion time.
	Insts  int64   `json:"insts"`
	TimeNs float64 `json:"time_ns"`
	// IPT is the system-level instructions per nanosecond.
	IPT float64 `json:"ipt"`
	// Winner is the finishing core's index (-1 for single-core runs).
	Winner      int   `json:"winner"`
	LeadChanges int64 `json:"lead_changes"`
	// SampleIntervalNs is the recorder's sampling period; DroppedEvents
	// counts ring overwrites (interval series may be truncated when
	// non-zero; aggregates are exact regardless).
	SampleIntervalNs float64       `json:"sample_interval_ns"`
	DroppedEvents    int64         `json:"dropped_events"`
	Cores            []CoreMetrics `json:"cores"`
}

// CoreMetrics aggregates one core's run.
type CoreMetrics struct {
	Core int    `json:"core"`
	Name string `json:"name"`

	Retired       int64 `json:"retired"`
	Injected      int64 `json:"injected"`
	EarlyResolved int64 `json:"early_resolved"`
	Cycles        int64 `json:"cycles"`

	IPC            float64 `json:"ipc"`
	MispredictRate float64 `json:"mispredict_rate"`
	// L1DMissRate is misses per L1D access; MLPProxy is the average
	// number of outstanding main-memory misses assuming full overlap
	// (L2 misses x memory latency / cycles) — an upper-bound proxy for
	// the memory-level parallelism the core is exposed to.
	L1DMissRate float64 `json:"l1d_miss_rate"`
	MLPProxy    float64 `json:"mlp_proxy"`

	// LeaderShare is the fraction of system time this core held the
	// lead; LeadChangesWon counts the changes it won. Both zero in
	// single-core runs except LeaderShare, which is 1 for the only core.
	LeaderShare    float64 `json:"leader_share"`
	LeadChangesWon int64   `json:"lead_changes_won"`
	Saturated      bool    `json:"saturated"`

	// Intervals is the per-sampling-interval series reconstructed from
	// the retained ring events (possibly truncated to the ring window).
	Intervals []IntervalMetrics `json:"intervals"`
}

// IntervalMetrics is the delta between two consecutive samples of one
// core.
type IntervalMetrics struct {
	StartNs float64 `json:"start_ns"`
	EndNs   float64 `json:"end_ns"`
	Retired int64   `json:"retired"`
	// Injected counts GRB-injected completions in the interval — the
	// injection traffic of a trailing core.
	Injected    int64   `json:"injected"`
	Mispredicts int64   `json:"mispredicts"`
	L1DMisses   int64   `json:"l1d_misses"`
	IPC         float64 `json:"ipc"`
	// Lag is the instantaneous lagging distance behind the leader at the
	// interval's end, in instructions.
	Lag int64 `json:"lag"`
}

// Metrics aggregates the recorder's observations. Call after FinishRun or
// FinishContest.
func (r *Recorder) Metrics() (Metrics, error) {
	if !r.finished {
		return Metrics{}, fmt.Errorf("obs: Metrics before FinishRun/FinishContest")
	}
	kind := "single"
	if r.sys != nil {
		kind = "contest"
	}
	m := Metrics{
		Schema:           SchemaVersion,
		Benchmark:        r.benchmark,
		Kind:             kind,
		Insts:            r.insts,
		TimeNs:           r.endTime.Nanoseconds(),
		Winner:           r.winner,
		LeadChanges:      r.leadChanges,
		SampleIntervalNs: r.opts.SampleIntervalNs,
		DroppedEvents:    r.Dropped(),
	}
	if ns := m.TimeNs; ns > 0 {
		m.IPT = float64(r.insts) / ns
	}

	events := r.ring.events()
	for i, st := range r.finalStats {
		cm := CoreMetrics{
			Core:           i,
			Name:           r.coreName(i),
			Retired:        st.Retired,
			Injected:       st.Injected,
			EarlyResolved:  st.EarlyResolved,
			Cycles:         st.Cycles,
			IPC:            st.IPC(),
			MispredictRate: st.MispredictRate(),
			LeadChangesWon: r.leadWon[i],
			Saturated:      r.saturated[i],
		}
		if st.L1D.Accesses > 0 {
			cm.L1DMissRate = float64(st.L1D.Misses) / float64(st.L1D.Accesses)
		}
		if st.Cycles > 0 && i < len(r.cores) && r.cores[i] != nil {
			cm.MLPProxy = float64(st.L2D.Misses) * float64(r.cores[i].memLat) / float64(st.Cycles)
		}
		if total := r.endTime; total > 0 {
			cm.LeaderShare = float64(r.occupancy[i]) / float64(total)
		}
		cm.Intervals = intervalsFor(events, int32(i))
		m.Cores = append(m.Cores, cm)
	}
	return m, nil
}

func (r *Recorder) coreName(i int) string {
	if i < len(r.names) {
		return r.names[i]
	}
	return fmt.Sprintf("core%d", i)
}

// intervalsFor diffs consecutive samples of one core into interval
// metrics.
func intervalsFor(events []Event, core int32) []IntervalMetrics {
	var out []IntervalMetrics
	var prev *Event
	for i := range events {
		e := &events[i]
		if e.Kind != KindSample || e.Core != core {
			continue
		}
		if prev != nil && e.Time > prev.Time {
			iv := IntervalMetrics{
				StartNs:     prev.Time.Nanoseconds(),
				EndNs:       e.Time.Nanoseconds(),
				Retired:     e.Retired - prev.Retired,
				Injected:    e.Injected - prev.Injected,
				Mispredicts: e.Mispredicts - prev.Mispredicts,
				L1DMisses:   e.L1DMisses - prev.L1DMisses,
				Lag:         e.Lag,
			}
			if dc := e.Cycles - prev.Cycles; dc > 0 {
				iv.IPC = float64(iv.Retired) / float64(dc)
			}
			out = append(out, iv)
		}
		prev = e
	}
	return out
}

// WriteJSON writes the metrics as indented JSON.
func (m Metrics) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
