package archcontest

// The third-party component walkthrough as a test: a predictor, a
// replacement policy, and a prefetcher implemented purely against the
// public SPI — registered by name, selected from plain configurations, and
// driven through golden equivalence, the full verification subsystem, and
// the observability recorder. Nothing here imports an internal package
// except the obs recorder used to assert the observer leg captured events.

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"archcontest/internal/obs"
)

// toyLocal is a local-history two-level predictor: a per-PC history table
// hashed into a table of saturating counters. It exists to prove a
// predictor family the engine has never heard of runs through the interface
// fallback end to end.
type toyLocal struct {
	hist [512]uint16
	pht  [4096]int8
	mask uint16
}

func newToyLocal(cfg BranchConfig) (BranchPredictor, error) {
	bits := 10
	for _, kv := range strings.Split(cfg.Params, ",") {
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k != "hist" {
			return nil, fmt.Errorf("toy-local: bad param %q", kv)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 16 {
			return nil, fmt.Errorf("toy-local: bad history length %q", v)
		}
		bits = n
	}
	return &toyLocal{mask: uint16(1<<bits - 1)}, nil
}

func (p *toyLocal) idx(pc uint64) (uint64, uint64) {
	h := pc >> 2 & 511
	return h, (uint64(p.hist[h]) ^ pc>>2) & 4095
}

func (p *toyLocal) Predict(pc uint64) bool {
	_, j := p.idx(pc)
	return p.pht[j] >= 0
}

func (p *toyLocal) Update(pc uint64, taken bool) {
	h, j := p.idx(pc)
	if taken {
		if p.pht[j] < 1 {
			p.pht[j]++
		}
	} else {
		if p.pht[j] > -2 {
			p.pht[j]--
		}
	}
	bit := uint16(0)
	if taken {
		bit = 1
	}
	p.hist[h] = (p.hist[h]<<1 | bit) & p.mask
}

func (p *toyLocal) Reset() {
	mask := p.mask
	*p = toyLocal{mask: mask}
}

// toyFIFO evicts ways in insertion order, per set — the simplest policy
// that is not LRU.
type toyFIFO struct {
	assoc int
	next  []uint8
}

func newToyFIFO(sets, assoc int, params string) (CacheReplacer, error) {
	if params != "" {
		return nil, fmt.Errorf("toy-fifo takes no params, got %q", params)
	}
	return &toyFIFO{assoc: assoc, next: make([]uint8, sets)}, nil
}

func (f *toyFIFO) Touch(set, way int)  {}
func (f *toyFIFO) Insert(set, way int) {}
func (f *toyFIFO) Victim(set int) int {
	v := int(f.next[set])
	f.next[set] = uint8((v + 1) % f.assoc)
	return v
}
func (f *toyFIFO) Reset() {
	for i := range f.next {
		f.next[i] = 0
	}
}

// toyTwoAhead prefetches the next two sequential blocks on every miss.
type toyTwoAhead struct{ block uint64 }

func newToyTwoAhead(blockBytes int, params string) (CachePrefetcher, error) {
	if params != "" {
		return nil, fmt.Errorf("toy-twoahead takes no params, got %q", params)
	}
	return &toyTwoAhead{block: uint64(blockBytes)}, nil
}

func (t *toyTwoAhead) OnAccess(addr uint64, miss bool, buf []uint64) []uint64 {
	if miss {
		buf = append(buf, addr+t.block, addr+2*t.block)
	}
	return buf
}
func (t *toyTwoAhead) Reset() {}

// registerToyComponents registers the three components once per process;
// the registries are global, so every test shares one registration.
var registerToyComponents = sync.OnceValue(func() error {
	if err := RegisterPredictor("toy-local", newToyLocal); err != nil {
		return err
	}
	if err := RegisterReplacer("toy-fifo", newToyFIFO); err != nil {
		return err
	}
	return RegisterPrefetcher("toy-twoahead", newToyTwoAhead)
})

// toyCore is the bench's palette core re-equipped with all three toy
// components through nothing but public configuration.
func toyCore(bench string) CoreConfig {
	cfg := MustPaletteCore(bench)
	cfg.Name = bench + "-toy"
	cfg.Predictor = BranchConfig{Kind: "toy-local", Params: "hist=12"}
	cfg.L1D.Replacement = "toy-fifo"
	cfg.L2D.Replacement = "toy-fifo"
	cfg.Prefetch = PrefetchConfig{Name: "toy-twoahead"}
	return cfg
}

// TestThirdPartyComponentsVerified is the SPI acceptance leg: components
// registered only through the public API survive conformance, golden
// slow/fast equivalence (the interface-fallback dispatch against the
// event-driven engine), a fully verified contested run against a default
// core, and an observer-attached contested run that records events.
func TestThirdPartyComponentsVerified(t *testing.T) {
	if err := registerToyComponents(); err != nil {
		t.Fatal(err)
	}
	if got := RegisteredPredictors(); !contains(got, "toy-local") {
		t.Fatalf("toy-local missing from %v", got)
	}
	if got := ReplacerNames(); !contains(got, "toy-fifo") {
		t.Fatalf("toy-fifo missing from %v", got)
	}
	if got := PrefetcherNames(); !contains(got, "toy-twoahead") {
		t.Fatalf("toy-twoahead missing from %v", got)
	}
	if err := PredictorConformance(BranchConfig{Kind: "toy-local", Params: "hist=12"}); err != nil {
		t.Fatalf("conformance: %v", err)
	}

	bench := "gcc"
	tr := MustGenerateTrace(bench, goldenInsts)
	cfg := toyCore(bench)

	// Golden: the registered components must be bit-identical between the
	// single-step reference and the event-driven fast path — this is the
	// interface-fallback dispatch leg of the golden grid.
	slow, err := Run(cfg, tr, RunOptions{LogRegions: true, SingleStep: true})
	if err != nil {
		t.Fatalf("single-step: %v", err)
	}
	fast, err := Run(cfg, tr, RunOptions{LogRegions: true})
	if err != nil {
		t.Fatalf("event-driven: %v", err)
	}
	if !reflect.DeepEqual(slow, fast) {
		t.Errorf("toy components: event-driven result diverges from single-step\nslow: %+v\nfast: %+v", slow, fast)
	}

	// Contested against the unmodified default core, fully verified.
	cfgs := []CoreConfig{MustPaletteCore(bench), cfg}
	res, err := ContestRunVerifiedWith(cfgs, tr, ContestOptions{}, VerifyOptions{ScanEvery: verifyScanEvery})
	if err != nil {
		t.Fatalf("verified contest: %v", err)
	}
	if res.Insts != int64(tr.Len()) {
		t.Fatalf("verified contest: retired %d of %d", res.Insts, tr.Len())
	}

	// And with the observability recorder attached.
	rec := obs.NewRecorder(obs.Options{})
	ores, err := ContestRun(cfgs, tr, ContestOptions{Observer: rec})
	if err != nil {
		t.Fatalf("observed contest: %v", err)
	}
	rec.FinishContest(ores)
	if len(rec.Events()) == 0 {
		t.Fatal("observed contest recorded no events")
	}
}

// TestThirdPartyComponentsInLeaderboard locks that registered components
// enter the championship cross-product automatically: the combo list must
// include the toy predictor, replacement policy, and prefetcher.
func TestThirdPartyComponentsInLeaderboard(t *testing.T) {
	if err := registerToyComponents(); err != nil {
		t.Fatal(err)
	}
	var preds, repls, prefs bool
	for _, c := range LeaderboardCombos() {
		preds = preds || c.Predictor == "toy-local"
		repls = repls || c.Replacement == "toy-fifo"
		prefs = prefs || c.Prefetcher == "toy-twoahead"
	}
	if !preds || !repls || !prefs {
		t.Fatalf("toy components missing from the cross-product (pred=%v repl=%v pref=%v)", preds, repls, prefs)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
