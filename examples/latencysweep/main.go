// latencysweep measures how the global-result-bus propagation delay erodes
// the contesting speedup (the paper's Figure 8 flow) for one benchmark:
// the lagging distance a core must close at a lead change grows with the
// core-to-core latency, so fine-grain gains fade as the bus slows.
package main

import (
	"flag"
	"fmt"
	"log"

	"archcontest"
)

func main() {
	log.SetFlags(0)
	bench := flag.String("bench", "twolf", "benchmark name")
	a := flag.String("a", "twolf", "first palette core")
	b := flag.String("b", "vpr", "second palette core")
	n := flag.Int("n", 300_000, "trace length in instructions")
	flag.Parse()

	tr := archcontest.MustGenerateTrace(*bench, *n)
	own := archcontest.MustRun(archcontest.MustPaletteCore(*bench), tr)
	fmt.Printf("%s on its own core: IPT %.3f\n\n", *bench, own.IPT())

	pair := []archcontest.CoreConfig{
		archcontest.MustPaletteCore(*a),
		archcontest.MustPaletteCore(*b),
	}
	fmt.Printf("%-10s %-10s %-12s %-8s\n", "latency", "IPT", "speedup", "lead changes")
	for _, lat := range []float64{1, 2, 5, 10, 20, 50, 100} {
		res, err := archcontest.ContestRun(pair, tr, archcontest.ContestOptions{LatencyNs: lat})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-10.3f %+-12.1f %d\n",
			fmt.Sprintf("%gns", lat), res.IPT(), 100*(res.IPT()/own.IPT()-1), res.LeadChanges)
	}
	fmt.Println("\nspeedup is % over the benchmark's own customized core")
}
