// hetdesign walks the paper's Section 6 flow: measure every benchmark on
// every customized core, then design constrained heterogeneous CMPs under
// the three figures of merit (avg, har, cw-har) and compare them to the
// best homogeneous design and to the full palette — the reproduction of
// Table 1 and Figure 9 on a scale of your choosing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"archcontest"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 200_000, "trace length in instructions")
	flag.Parse()

	lab := archcontest.NewLab(archcontest.LabConfig{N: *n})

	fmt.Printf("measuring %d benchmarks x %d cores at %d instructions each...\n\n",
		len(archcontest.Benchmarks()), len(archcontest.Palette()), *n)

	for _, id := range []string{"appendixA", "table1", "fig9"} {
		tab, err := archcontest.RunExperiment(context.Background(), lab, id)
		if err != nil {
			log.Fatal(err)
		}
		tab.Fprint(os.Stdout)
		fmt.Println()
	}

	fmt.Println("The three figures of merit pick different pairs: avg chases raw")
	fmt.Println("throughput, har minimizes total one-by-one runtime, and cw-har")
	fmt.Println("balances single-thread performance against queueing when every")
	fmt.Println("job heads for its preferred core under heavy load.")
}
