// Quickstart: run one benchmark on its own customized core, then contest it
// against a second core type and observe the speedup that fine-grain
// leader-follower execution delivers.
package main

import (
	"fmt"
	"log"

	"archcontest"
)

func main() {
	log.SetFlags(0)

	// A 300k-instruction synthetic stand-in for twolf's SimPoint:
	// conflict-heavy scratch traffic, pointer chasing, and hard branches,
	// varying at sub-thousand-instruction granularity.
	tr := archcontest.MustGenerateTrace("twolf", 300_000)
	fmt.Printf("trace: %s, %d instructions, mix %v\n", tr.Name(), tr.Len(), tr.Mix())

	// Baseline: twolf's own customized core (paper Appendix A).
	own := archcontest.MustRun(archcontest.MustPaletteCore("twolf"), tr)
	fmt.Printf("own customized core:  IPT %.3f (%.2f IPC at %.2fGHz)\n",
		own.IPT(), own.Stats.IPC(), archcontest.MustPaletteCore("twolf").FrequencyGHz())

	// A second opinion: vpr's core — different cache geometry, faster clock.
	vpr := archcontest.MustRun(archcontest.MustPaletteCore("vpr"), tr)
	fmt.Printf("vpr's core:           IPT %.3f\n", vpr.IPT())

	// Contest the two. Both cores execute the same trace; the one better
	// suited to each fine-grain region leads, the other stays close by
	// consuming broadcast results, and leadership flips at phase changes.
	res, err := archcontest.ContestRun([]archcontest.CoreConfig{
		archcontest.MustPaletteCore("twolf"),
		archcontest.MustPaletteCore("vpr"),
	}, tr, archcontest.ContestOptions{LatencyNs: 1})
	if err != nil {
		log.Fatal(err)
	}

	best := own.IPT()
	if vpr.IPT() > best {
		best = vpr.IPT()
	}
	fmt.Printf("2-way contesting:     IPT %.3f\n", res.IPT())
	fmt.Printf("  over own core:   %+.1f%%\n", 100*(res.IPT()/own.IPT()-1))
	fmt.Printf("  over best single: %+.1f%%\n", 100*(res.IPT()/best-1))
	fmt.Printf("  lead changes: %d, winner: %s, injected results: %d + %d\n",
		res.LeadChanges, res.Cores[res.Winner],
		res.PerCore[0].Injected, res.PerCore[1].Injected)
}
