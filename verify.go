package archcontest

// Verified run facades: the same Run / ContestRun entry points, with the
// full verification subsystem riding along. Every executed cycle is checked
// against the engine's structural invariants, every retirement is replayed
// against the in-order oracle, and every contested run additionally checks
// the GRB protocol, bounded lagging distance, leader accounting and the
// merged store stream. A clean run returns the ordinary result; any
// violation aborts with an error listing what broke.
//
// Verified runs are for tests, fuzzing and debugging: the checks cost an
// O(window) scan per core-cycle (tune with VerifyOptions.ScanEvery), and
// they bypass every result cache by construction since the checks happen
// during execution.

import (
	"errors"
	"fmt"

	"archcontest/internal/contest"
	"archcontest/internal/invariant"
	"archcontest/internal/oracle"
	"archcontest/internal/sim"
)

// VerifyOptions tunes the verification layer of a verified run.
type VerifyOptions struct {
	// ScanEvery is the cycle stride of the O(window) structural scans; the
	// O(1) per-cycle checks always run. 0 scans every cycle.
	ScanEvery int64
	// MaxViolations caps how many violations are collected before the
	// checker stops recording (the run still completes). 0 selects 16.
	MaxViolations int
}

// OracleExecution computes the in-order reference execution of a trace:
// the ground-truth architectural results every conforming run must
// reproduce.
func OracleExecution(tr *Trace) *oracle.Execution { return oracle.Run(tr) }

type violationLog struct {
	max  int
	errs []error
	more int
}

func newViolationLog(max int) *violationLog {
	if max <= 0 {
		max = 16
	}
	return &violationLog{max: max}
}

func (v *violationLog) add(err error) {
	if len(v.errs) < v.max {
		v.errs = append(v.errs, err)
	} else {
		v.more++
	}
}

func (v *violationLog) err() error {
	if len(v.errs) == 0 {
		return nil
	}
	if v.more > 0 {
		v.errs = append(v.errs, fmt.Errorf("... and %d further violations", v.more))
	}
	return errors.Join(v.errs...)
}

// RunVerified executes a trace on a single core with the invariant checker
// and differential oracle attached. It returns the run's result — identical
// to Run's — and an error describing every invariant violation observed, if
// any.
func RunVerified(cfg CoreConfig, tr *Trace, opts ...RunOptions) (RunResult, error) {
	var o RunOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return runVerified(cfg, tr, o, VerifyOptions{})
}

// RunVerifiedWith is RunVerified with explicit verification tuning.
func RunVerifiedWith(cfg CoreConfig, tr *Trace, o RunOptions, vo VerifyOptions) (RunResult, error) {
	return runVerified(cfg, tr, o, vo)
}

func runVerified(cfg CoreConfig, tr *Trace, o RunOptions, vo VerifyOptions) (RunResult, error) {
	log := newViolationLog(vo.MaxViolations)
	chk := invariant.NewCoreChecker(tr, invariant.Options{
		OnViolation: log.add,
		ScanEvery:   vo.ScanEvery,
	})
	o.Checker = chk
	res, err := sim.Run(cfg, tr, o)
	if err != nil {
		return res, err
	}
	chk.Finish(int64(tr.Len()))
	return res, log.err()
}

// ContestRunVerified executes a contested run with the full verification
// subsystem attached: per-core invariant checkers plus the system observer
// asserting the contest protocol (bounded lag, GRB injection timing, leader
// accounting, store-merge/oracle prefix, exception rendezvous). It returns
// the run's result — identical to ContestRun's — and an error describing
// every violation observed, if any.
func ContestRunVerified(cfgs []CoreConfig, tr *Trace, opts ContestOptions) (ContestResult, error) {
	return ContestRunVerifiedWith(cfgs, tr, opts, VerifyOptions{})
}

// ContestRunVerifiedWith is ContestRunVerified with explicit verification
// tuning.
func ContestRunVerifiedWith(cfgs []CoreConfig, tr *Trace, opts ContestOptions, vo VerifyOptions) (ContestResult, error) {
	log := newViolationLog(vo.MaxViolations)
	obs := invariant.NewSystemObserver(tr, invariant.Options{
		OnViolation: log.add,
		ScanEvery:   vo.ScanEvery,
	})
	opts.Observer = obs
	res, err := contest.Run(cfgs, tr, opts)
	if err != nil {
		return res, err
	}
	obs.Finish(res)
	return res, log.err()
}
