package archcontest

// Golden-equivalence tests for the event-driven engine: the fast-forward
// path (wake-list issue, dead-cycle skipping, heap-scheduled contests) must
// reproduce the reference single-cycle/single-step semantics bit for bit —
// every Stats counter, FinishTime, RegionTimes, winner, lead changes, and
// saturation flags, across a grid of palette cores × workloads, stand-alone
// and 2-way contested, under store-queue pressure, saturation, and
// exception rendezvous.

import (
	"reflect"
	"testing"
)

const goldenInsts = 20_000

func TestGoldenEquivalenceSingleCore(t *testing.T) {
	benches := []string{"gcc", "mcf", "bzip", "crafty", "twolf"}
	cores := []string{"bzip", "crafty", "gap", "gcc", "gzip", "mcf", "twolf", "vpr"}
	for _, b := range benches {
		tr := MustGenerateTrace(b, goldenInsts)
		for _, cn := range cores {
			cfg := MustPaletteCore(cn)
			slow, err := Run(cfg, tr, RunOptions{LogRegions: true, SingleStep: true})
			if err != nil {
				t.Fatalf("%s on %s (single-step): %v", b, cn, err)
			}
			fast, err := Run(cfg, tr, RunOptions{LogRegions: true})
			if err != nil {
				t.Fatalf("%s on %s (event-driven): %v", b, cn, err)
			}
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("%s on %s: event-driven result diverges from single-step\nslow: %+v\nfast: %+v", b, cn, slow, fast)
			}
		}
	}
}

func TestGoldenEquivalenceContested(t *testing.T) {
	// Each pair runs under a different option variant so the equivalence
	// also covers high latency, exception rendezvous (both handler styles),
	// saturated laggers, and store-queue backpressure.
	pairs := []struct {
		a, b string
		opts ContestOptions
	}{
		{"gcc", "mcf", ContestOptions{}},
		{"bzip", "crafty", ContestOptions{LatencyNs: 5}},
		{"twolf", "vpr", ContestOptions{ExceptionEvery: 512}},
		{"gzip", "perl", ContestOptions{MaxLag: 64}},
		{"gap", "vortex", ContestOptions{ExceptionEvery: 768, ExceptionKillRefork: true}},
		{"mcf", "parser", ContestOptions{StoreQueueCap: 8}},
	}
	benches := []string{"gcc", "mcf", "twolf", "gzip"}
	for _, p := range pairs {
		cfgs := []CoreConfig{MustPaletteCore(p.a), MustPaletteCore(p.b)}
		for _, b := range benches {
			tr := MustGenerateTrace(b, goldenInsts)
			slowOpts := p.opts
			slowOpts.RegionSize = 20
			slowOpts.SingleStep = true
			fastOpts := p.opts
			fastOpts.RegionSize = 20
			slow, err := ContestRun(cfgs, tr, slowOpts)
			if err != nil {
				t.Fatalf("%s vs %s on %s (single-step): %v", p.a, p.b, b, err)
			}
			fast, err := ContestRun(cfgs, tr, fastOpts)
			if err != nil {
				t.Fatalf("%s vs %s on %s (event-driven): %v", p.a, p.b, b, err)
			}
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("%s vs %s on %s: event-driven result diverges from single-step\nslow: %+v\nfast: %+v", p.a, p.b, b, slow, fast)
			}
		}
	}
}
