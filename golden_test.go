package archcontest

// Golden-equivalence tests for the event-driven engine: the fast-forward
// path (wake-list issue, dead-cycle skipping, heap-scheduled contests) must
// reproduce the reference single-cycle/single-step semantics bit for bit —
// every Stats counter, FinishTime, RegionTimes, winner, lead changes, and
// saturation flags, across a grid of palette cores × workloads, stand-alone
// and 2-way contested, under store-queue pressure, saturation, and
// exception rendezvous.

import (
	"reflect"
	"testing"

	"archcontest/internal/branch"
	"archcontest/internal/cache"
)

const goldenInsts = 20_000

func TestGoldenEquivalenceSingleCore(t *testing.T) {
	benches := []string{"gcc", "mcf", "bzip", "crafty", "twolf"}
	cores := []string{"bzip", "crafty", "gap", "gcc", "gzip", "mcf", "twolf", "vpr"}
	for _, b := range benches {
		tr := MustGenerateTrace(b, goldenInsts)
		for _, cn := range cores {
			cfg := MustPaletteCore(cn)
			slow, err := Run(cfg, tr, RunOptions{LogRegions: true, SingleStep: true})
			if err != nil {
				t.Fatalf("%s on %s (single-step): %v", b, cn, err)
			}
			fast, err := Run(cfg, tr, RunOptions{LogRegions: true})
			if err != nil {
				t.Fatalf("%s on %s (event-driven): %v", b, cn, err)
			}
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("%s on %s: event-driven result diverges from single-step\nslow: %+v\nfast: %+v", b, cn, slow, fast)
			}
		}
	}
}

func TestGoldenEquivalenceContested(t *testing.T) {
	// Each pair runs under a different option variant so the equivalence
	// also covers high latency, exception rendezvous (both handler styles),
	// saturated laggers, and store-queue backpressure.
	pairs := []struct {
		a, b string
		opts ContestOptions
	}{
		{"gcc", "mcf", ContestOptions{}},
		{"bzip", "crafty", ContestOptions{LatencyNs: 5}},
		{"twolf", "vpr", ContestOptions{ExceptionEvery: 512}},
		{"gzip", "perl", ContestOptions{MaxLag: 64}},
		{"gap", "vortex", ContestOptions{ExceptionEvery: 768, ExceptionKillRefork: true}},
		{"mcf", "parser", ContestOptions{StoreQueueCap: 8}},
	}
	benches := []string{"gcc", "mcf", "twolf", "gzip"}
	for _, p := range pairs {
		cfgs := []CoreConfig{MustPaletteCore(p.a), MustPaletteCore(p.b)}
		for _, b := range benches {
			tr := MustGenerateTrace(b, goldenInsts)
			slowOpts := p.opts
			slowOpts.RegionSize = 20
			slowOpts.SingleStep = true
			fastOpts := p.opts
			fastOpts.RegionSize = 20
			slow, err := ContestRun(cfgs, tr, slowOpts)
			if err != nil {
				t.Fatalf("%s vs %s on %s (single-step): %v", p.a, p.b, b, err)
			}
			fast, err := ContestRun(cfgs, tr, fastOpts)
			if err != nil {
				t.Fatalf("%s vs %s on %s (event-driven): %v", p.a, p.b, b, err)
			}
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("%s vs %s on %s: event-driven result diverges from single-step\nslow: %+v\nfast: %+v", p.a, p.b, b, slow, fast)
			}
		}
	}
}

// goldenPredictors are the non-default predictor variants of the golden
// grid: the palette is all-gshare, so without these legs the bimodal
// interface fallback and the TAGE fast path in doFetch had no golden
// coverage at all.
var goldenPredictors = []struct {
	name string
	cfg  branch.Config
}{
	{"bimodal", branch.Config{Kind: "bimodal", LogSize: 12}},
	{"tage", branch.DefaultTAGEConfig()},
}

func TestGoldenEquivalencePredictorPalette(t *testing.T) {
	for _, b := range []string{"gcc", "twolf", "crafty"} {
		tr := MustGenerateTrace(b, goldenInsts)
		for _, p := range goldenPredictors {
			cfg := MustPaletteCore(b)
			cfg.Name = b + "-" + p.name
			cfg.Predictor = p.cfg
			slow, err := Run(cfg, tr, RunOptions{LogRegions: true, SingleStep: true})
			if err != nil {
				t.Fatalf("%s on %s (single-step): %v", b, cfg.Name, err)
			}
			fast, err := Run(cfg, tr, RunOptions{LogRegions: true})
			if err != nil {
				t.Fatalf("%s on %s (event-driven): %v", b, cfg.Name, err)
			}
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("%s on %s: event-driven result diverges from single-step\nslow: %+v\nfast: %+v", b, cfg.Name, slow, fast)
			}
		}
	}
}

// goldenComponents are the non-default cache-component variants of the
// golden grid: the palette is all-LRU with no prefetching, so without these
// legs the generic replacer path and the prefetch fill timing had no golden
// coverage. Each entry swaps the replacement policy on both cache levels
// and/or attaches a prefetcher to the hierarchy.
var goldenComponents = []struct {
	name, repl, pref string
}{
	{"srrip", "srrip", ""},
	{"random", "random", ""},
	{"nextline", "", "nextline"},
	{"stride", "", "stride"},
	{"srrip-stride", "srrip", "stride"},
}

// componentCore equips the bench's own palette core with the named
// replacement policy (both levels) and prefetcher.
func componentCore(bench, name, repl, pref string) CoreConfig {
	cfg := MustPaletteCore(bench)
	cfg.Name = bench + "-" + name
	cfg.L1D.Replacement = repl
	cfg.L2D.Replacement = repl
	cfg.Prefetch = cache.PrefetchConfig{Name: pref}
	return cfg
}

func TestGoldenEquivalenceComponentPalette(t *testing.T) {
	for _, b := range []string{"gcc", "mcf", "twolf"} {
		tr := MustGenerateTrace(b, goldenInsts)
		for _, c := range goldenComponents {
			cfg := componentCore(b, c.name, c.repl, c.pref)
			slow, err := Run(cfg, tr, RunOptions{LogRegions: true, SingleStep: true})
			if err != nil {
				t.Fatalf("%s on %s (single-step): %v", b, cfg.Name, err)
			}
			fast, err := Run(cfg, tr, RunOptions{LogRegions: true})
			if err != nil {
				t.Fatalf("%s on %s (event-driven): %v", b, cfg.Name, err)
			}
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("%s on %s: event-driven result diverges from single-step\nslow: %+v\nfast: %+v", b, cfg.Name, slow, fast)
			}
		}
	}
}

// TestGoldenEquivalenceComponentContested contests a component-equipped core
// against the unmodified default core, so the generic replacer and prefetch
// paths are also locked under broadcast/inject traffic and lead changes.
func TestGoldenEquivalenceComponentContested(t *testing.T) {
	legs := []struct {
		name, repl, pref string
		opts             ContestOptions
	}{
		{"srrip-stride", "srrip", "stride", ContestOptions{}},
		{"random-nextline", "random", "nextline", ContestOptions{ExceptionEvery: 640, ExceptionKillRefork: true, ReforkWarmupNs: 250, ReforkColdCaches: true}},
	}
	for _, b := range []string{"gcc", "twolf"} {
		tr := MustGenerateTrace(b, goldenInsts)
		for _, leg := range legs {
			cfgs := []CoreConfig{MustPaletteCore(b), componentCore(b, leg.name, leg.repl, leg.pref)}
			slowOpts := leg.opts
			slowOpts.RegionSize = 20
			slowOpts.SingleStep = true
			fastOpts := leg.opts
			fastOpts.RegionSize = 20
			slow, err := ContestRun(cfgs, tr, slowOpts)
			if err != nil {
				t.Fatalf("%s %s (single-step): %v", b, leg.name, err)
			}
			fast, err := ContestRun(cfgs, tr, fastOpts)
			if err != nil {
				t.Fatalf("%s %s (event-driven): %v", b, leg.name, err)
			}
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("%s %s: event-driven result diverges from single-step\nslow: %+v\nfast: %+v", b, leg.name, slow, fast)
			}
		}
	}
}

// TestGoldenEquivalenceWarmupContested covers the state-transfer model in
// the contested golden grid: gshare vs TAGE on the same structural core
// under kill-refork with warm-up charges, cold-state reforks, and the
// lead-change accounting — the paths the base contested grid never takes.
func TestGoldenEquivalenceWarmupContested(t *testing.T) {
	variants := []struct {
		name string
		opts ContestOptions
	}{
		{"warmup", ContestOptions{ExceptionEvery: 640, ExceptionKillRefork: true, ReforkWarmupNs: 250}},
		{"cold", ContestOptions{ExceptionEvery: 640, ExceptionKillRefork: true,
			ReforkWarmupNs: 250, ReforkColdPredictor: true, ReforkColdCaches: true,
			LeadChangeWarmupNs: 25}},
	}
	for _, b := range []string{"gcc", "twolf"} {
		tr := MustGenerateTrace(b, goldenInsts)
		cfgG := MustPaletteCore(b)
		cfgT := cfgG
		cfgT.Name = b + "-tage"
		cfgT.Predictor = branch.DefaultTAGEConfig()
		cfgs := []CoreConfig{cfgG, cfgT}
		for _, v := range variants {
			slowOpts := v.opts
			slowOpts.RegionSize = 20
			slowOpts.SingleStep = true
			fastOpts := v.opts
			fastOpts.RegionSize = 20
			slow, err := ContestRun(cfgs, tr, slowOpts)
			if err != nil {
				t.Fatalf("%s %s (single-step): %v", b, v.name, err)
			}
			fast, err := ContestRun(cfgs, tr, fastOpts)
			if err != nil {
				t.Fatalf("%s %s (event-driven): %v", b, v.name, err)
			}
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("%s %s: event-driven result diverges from single-step\nslow: %+v\nfast: %+v", b, v.name, slow, fast)
			}
		}
	}
}
