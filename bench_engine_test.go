// Engine-throughput benchmarks: the event-driven fast-forward path against
// the reference single-cycle/single-step path, on the scenarios where dead
// cycles dominate (memory-bound workloads on deep-window cores) and where
// they don't. All report simulated instructions per wall-second so the
// perf trajectory is comparable across PRs; cmd/bench runs the same
// scenarios standalone and emits BENCH_engine.json.
package archcontest

import (
	"context"
	"testing"
)

func benchmarkEngineRun(b *testing.B, bench, core string, singleStep bool) {
	b.Helper()
	tr := MustGenerateTrace(bench, 100_000)
	cfg := MustPaletteCore(core)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Run(cfg, tr, RunOptions{SingleStep: singleStep})
		if err != nil {
			b.Fatal(err)
		}
		if r.Insts != int64(tr.Len()) {
			b.Fatal("incomplete run")
		}
	}
	b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds()/1e6, "Msim-inst/s")
}

func benchmarkEngineContest(b *testing.B, bench, a, c string, singleStep bool) {
	b.Helper()
	tr := MustGenerateTrace(bench, 100_000)
	pair := []CoreConfig{MustPaletteCore(a), MustPaletteCore(c)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := ContestRun(pair, tr, ContestOptions{SingleStep: singleStep})
		if err != nil {
			b.Fatal(err)
		}
		if r.Insts != int64(tr.Len()) {
			b.Fatal("incomplete run")
		}
	}
	b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds()/1e6, "Msim-inst/s")
}

// mcf on the mcf core: the paper's most memory-bound benchmark on a
// 1024-entry-ROB core — long stalls, the fast-forward path's best case.
func BenchmarkEngineMemBound(b *testing.B)           { benchmarkEngineRun(b, "mcf", "mcf", false) }
func BenchmarkEngineMemBoundSingleStep(b *testing.B) { benchmarkEngineRun(b, "mcf", "mcf", true) }

// gcc on the gcc core: mixed behaviour, moderate stalls.
func BenchmarkEngineMixed(b *testing.B)           { benchmarkEngineRun(b, "gcc", "gcc", false) }
func BenchmarkEngineMixedSingleStep(b *testing.B) { benchmarkEngineRun(b, "gcc", "gcc", true) }

// crafty on the crafty core: high-IPC compute, few dead cycles — the
// fast-forward path's worst case (measures wake-list overhead alone).
func BenchmarkEngineCompute(b *testing.B)           { benchmarkEngineRun(b, "crafty", "crafty", false) }
func BenchmarkEngineComputeSingleStep(b *testing.B) { benchmarkEngineRun(b, "crafty", "crafty", true) }

// 2-way contested co-simulation with the heap scheduler.
func BenchmarkEngineContest(b *testing.B) { benchmarkEngineContest(b, "twolf", "twolf", "vpr", false) }
func BenchmarkEngineContestSingleStep(b *testing.B) {
	benchmarkEngineContest(b, "twolf", "twolf", "vpr", true)
}

// Batched stepping through the public API: `size` independent copies of
// the mem-bound scenario advance on one worker in RunBatch's
// cache-friendly quantum interleave. Per-instruction throughput should
// hold steady (or improve) as the batch widens; internal/pipeline's
// BenchmarkBatchStep measures the same at the core level with allocation
// tracking.
func benchmarkEngineBatch(b *testing.B, size int) {
	b.Helper()
	tr := MustGenerateTrace("mcf", 100_000)
	cfg := MustPaletteCore("mcf")
	items := make([]BatchItem, size)
	for i := range items {
		items[i] = BatchItem{Config: cfg, Trace: tr}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := RunBatch(context.Background(), items, BatchOptions{Workers: 1, GroupSize: size})
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) != size {
			b.Fatal("short batch")
		}
	}
	b.ReportMetric(float64(size*tr.Len()*b.N)/b.Elapsed().Seconds()/1e6, "Msim-inst/s")
}

func BenchmarkEngineBatch1(b *testing.B)  { benchmarkEngineBatch(b, 1) }
func BenchmarkEngineBatch4(b *testing.B)  { benchmarkEngineBatch(b, 4) }
func BenchmarkEngineBatch16(b *testing.B) { benchmarkEngineBatch(b, 16) }
