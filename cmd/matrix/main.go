// Command matrix prints the benchmark x core IPT matrix (the reproduction's
// Appendix A equivalent) for calibration and inspection. It runs on the
// campaign engine: the 121 runs execute on all cores and persist in the
// result cache, so a warm re-run simulates nothing.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"archcontest/internal/cmdutil"
	"archcontest/internal/experiments"
	"archcontest/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("matrix: ")
	n := flag.Int("n", 200000, "instructions per trace")
	par := flag.Int("par", 0, "max concurrent simulations (0 = NumCPU)")
	openCache := cmdutil.CacheFlags(nil)
	obsFlags := cmdutil.ObsFlags(nil)
	flag.Parse()
	obsFlags.StartPprof()

	cache := openCache()
	var artifacts *obs.ArtifactLog
	if obsFlags.Wanted() {
		artifacts = obs.NewArtifactLog()
	}
	lab := experiments.NewLab(experiments.Config{N: *n, Parallelism: *par, Cache: cache, Artifacts: artifacts})
	cmdutil.Publish("archcontest.campaign", func() any { return lab.CampaignStats() })
	start := time.Now()
	m, err := lab.Matrix()
	if err != nil {
		log.Fatal(err)
	}
	st := lab.CampaignStats()
	fmt.Printf("elapsed %v for %d runs of %d insts (%d simulated, %d from cache)\n",
		time.Since(start).Round(time.Millisecond),
		len(m.Benchmarks)*len(m.Cores), *n, st.Simulations, st.CacheHits)
	fmt.Printf("%-8s", "")
	for _, c := range m.Cores {
		fmt.Printf("%8s", c)
	}
	fmt.Println("   best")
	for b, bench := range m.Benchmarks {
		fmt.Printf("%-8s", bench)
		best, bestV := "", 0.0
		for c := range m.Cores {
			v := m.IPT[b][c]
			fmt.Printf("%8.2f", v)
			if v > bestV {
				bestV, best = v, m.Cores[c]
			}
		}
		mark := ""
		if best == bench {
			mark = " *"
		}
		fmt.Printf("   %s%s\n", best, mark)
	}
	if artifacts != nil {
		if err := obsFlags.WriteTimeline(artifacts.WriteChromeTrace); err != nil {
			log.Fatalf("timeline: %v", err)
		}
		if err := obsFlags.WriteMetricsJSON(struct {
			Campaign  experiments.CampaignStats `json:"campaign"`
			Artifacts obs.CampaignSummary       `json:"artifacts"`
		}{st, artifacts.Summary()}); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}
	cmdutil.PrintCacheStats(cache)
}
