// Command matrix prints the benchmark x core IPT matrix (the reproduction's
// Appendix A equivalent) for calibration and inspection.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"archcontest/internal/config"
	"archcontest/internal/sim"
	"archcontest/internal/workload"
)

func main() {
	n := flag.Int("n", 200000, "instructions per trace")
	flag.Parse()
	benches := workload.Benchmarks()
	cores := config.Palette()
	ipt := make(map[string]map[string]float64)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	start := time.Now()
	for _, b := range benches {
		tr := workload.MustGenerate(b, *n)
		ipt[b] = map[string]float64{}
		for _, c := range cores {
			wg.Add(1)
			sem <- struct{}{}
			go func(b string, c config.CoreConfig) {
				defer wg.Done()
				defer func() { <-sem }()
				r, err := sim.Run(c, tr, sim.RunOptions{})
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return
				}
				mu.Lock()
				ipt[b][c.Name] = r.IPT()
				mu.Unlock()
			}(b, c)
		}
	}
	wg.Wait()
	fmt.Printf("elapsed %v for %d runs of %d insts\n", time.Since(start), len(benches)*len(cores), *n)
	fmt.Printf("%-8s", "")
	for _, c := range cores {
		fmt.Printf("%8s", c.Name)
	}
	fmt.Println("   best")
	for _, b := range benches {
		fmt.Printf("%-8s", b)
		best, bestV := "", 0.0
		for _, c := range cores {
			v := ipt[b][c.Name]
			fmt.Printf("%8.2f", v)
			if v > bestV {
				bestV, best = v, c.Name
			}
		}
		mark := ""
		if best == b {
			mark = " *"
		}
		fmt.Printf("   %s%s\n", best, mark)
	}
}
