// Command matrix prints the benchmark x core IPT matrix (the reproduction's
// Appendix A equivalent) for calibration and inspection. It submits a
// matrix scenario (internal/spec) to the shared execution environment —
// the same path cmd/serve jobs take — so the 121 runs execute on all
// cores and persist in the result cache, and a warm re-run simulates
// nothing. Ctrl-C cancels cooperatively without corrupting the cache.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"archcontest/internal/cmdutil"
	"archcontest/internal/experiments"
	"archcontest/internal/obs"
	"archcontest/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("matrix: ")
	n := flag.Int("n", 200000, "instructions per trace")
	par := flag.Int("par", 0, "max concurrent simulations (0 = NumCPU)")
	openCache := cmdutil.CacheFlags(nil)
	obsFlags := cmdutil.ObsFlags(nil)
	flag.Parse()
	obsFlags.StartPprof()

	ctx, stop := cmdutil.SignalContext()
	defer stop()

	env := spec.NewEnv(openCache())
	env.Parallelism = *par
	if obsFlags.Wanted() {
		env.Artifacts = obs.NewArtifactLog()
	}
	var campaign func() experiments.CampaignStats
	hooks := spec.Hooks{Campaign: func(stats func() experiments.CampaignStats) { campaign = stats }}
	cmdutil.Publish("archcontest.campaign", func() any {
		if campaign == nil {
			return experiments.CampaignStats{}
		}
		return campaign()
	})
	start := time.Now()
	out, err := spec.Execute(ctx, spec.Spec{Kind: spec.KindMatrix, N: *n}, env, hooks)
	if err != nil {
		log.Fatal(err)
	}
	m := out.Matrix
	var st experiments.CampaignStats
	if campaign != nil {
		st = campaign()
	}
	fmt.Printf("elapsed %v for %d runs of %d insts (%d simulated, %d from cache)\n",
		time.Since(start).Round(time.Millisecond),
		len(m.Benchmarks)*len(m.Cores), *n, st.Simulations, st.CacheHits)
	fmt.Printf("%-8s", "")
	for _, c := range m.Cores {
		fmt.Printf("%8s", c)
	}
	fmt.Println("   best")
	for b, bench := range m.Benchmarks {
		fmt.Printf("%-8s", bench)
		best, bestV := "", 0.0
		for c := range m.Cores {
			v := m.IPT[b][c]
			fmt.Printf("%8.2f", v)
			if v > bestV {
				bestV, best = v, m.Cores[c]
			}
		}
		mark := ""
		if best == bench {
			mark = " *"
		}
		fmt.Printf("   %s%s\n", best, mark)
	}
	if env.Artifacts != nil {
		if err := obsFlags.WriteTimeline(env.Artifacts.WriteChromeTrace); err != nil {
			log.Fatalf("timeline: %v", err)
		}
		if err := obsFlags.WriteMetricsJSON(struct {
			Campaign  experiments.CampaignStats `json:"campaign"`
			Artifacts obs.CampaignSummary       `json:"artifacts"`
		}{st, env.Artifacts.Summary()}); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}
	cmdutil.PrintCacheStats(env.Cache)
}
