// Command contest runs one contesting experiment: a benchmark trace
// executed on N named palette cores in a leader-follower arrangement.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"archcontest/internal/cache"
	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/sim"
	"archcontest/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("contest: ")
	bench := flag.String("bench", "gcc", "benchmark name")
	cores := flag.String("cores", "", "comma-separated palette core names (default: best pair search input required)")
	n := flag.Int("n", 500000, "trace length in instructions")
	latency := flag.Float64("latency", 1.0, "core-to-core latency in ns")
	flag.Parse()

	tr := workload.MustGenerate(*bench, *n)
	var cfgs []config.CoreConfig
	for _, name := range strings.Split(*cores, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, err := config.PaletteCore(name)
		if err != nil {
			log.Fatal(err)
		}
		cfgs = append(cfgs, c)
	}
	if len(cfgs) < 2 {
		log.Fatal("need -cores with at least two palette names, e.g. -cores bzip,crafty")
	}

	for _, c := range cfgs {
		r := sim.MustRun(c, tr, sim.RunOptions{WritePolicy: cache.WriteThrough})
		fmt.Printf("%-22s alone: IPT %.3f\n", c.Name, r.IPT())
	}
	own := sim.MustRun(config.MustPaletteCore(*bench), tr, sim.RunOptions{})
	fmt.Printf("%-22s own customized core (write-back): IPT %.3f\n", *bench, own.IPT())

	res, err := contest.Run(cfgs, tr, contest.Options{LatencyNs: *latency})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contested %v @ %.3gns: IPT %.3f  (speedup over own core %.1f%%)\n",
		res.Cores, *latency, res.IPT(), 100*(res.IPT()/own.IPT()-1))
	fmt.Printf("winner=%s leadChanges=%d saturated=%v injected=%v\n",
		res.Cores[res.Winner], res.LeadChanges, res.Saturated,
		[]int64{res.PerCore[0].Injected, res.PerCore[1].Injected})
}
