// Command contest runs one contesting experiment: a benchmark trace
// executed on N named palette cores in a leader-follower arrangement. It
// runs through the campaign engine, so the stand-alone reference runs and
// the contested run are cached and a repeated invocation simulates
// nothing.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"archcontest/internal/cache"
	"archcontest/internal/cmdutil"
	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/experiments"
	"archcontest/internal/obs"
	"archcontest/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("contest: ")
	bench := flag.String("bench", "gcc", "benchmark name")
	cores := flag.String("cores", "", "comma-separated palette core names (default: best pair search input required)")
	n := flag.Int("n", 500000, "trace length in instructions")
	latency := flag.Float64("latency", 1.0, "core-to-core latency in ns")
	sampleNs := flag.Float64("sample", 100, "observability sampling interval in simulated ns")
	openCache := cmdutil.CacheFlags(nil)
	obsFlags := cmdutil.ObsFlags(nil)
	flag.Parse()
	obsFlags.StartPprof()

	var names []string
	for _, name := range strings.Split(*cores, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if _, err := config.PaletteCore(name); err != nil {
				log.Fatal(err)
			}
			names = append(names, name)
		}
	}
	if len(names) < 2 {
		log.Fatal("need -cores with at least two palette names, e.g. -cores bzip,crafty")
	}

	resCache := openCache()
	lab := experiments.NewLab(experiments.Config{N: *n, LatencyNs: *latency, Cache: resCache})

	for _, name := range names {
		r, err := lab.RunOn(*bench, config.MustPaletteCore(name), sim.RunOptions{WritePolicy: cache.WriteThrough})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s alone: IPT %.3f\n", name, r.IPT())
	}
	own, err := lab.RunOn(*bench, config.MustPaletteCore(*bench), sim.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s own customized core (write-back): IPT %.3f\n", *bench, own.IPT())

	var res contest.Result
	var rec *obs.Recorder
	if obsFlags.Wanted() {
		// Recorded runs execute the contest directly: the campaign layers
		// exclude observers from their cache keys, so a cached hit would
		// silently record nothing.
		tr, err := lab.Trace(*bench)
		if err != nil {
			log.Fatal(err)
		}
		cfgs := make([]config.CoreConfig, len(names))
		for i, name := range names {
			cfgs[i] = config.MustPaletteCore(name)
		}
		rec = obs.NewRecorder(obs.Options{SampleIntervalNs: *sampleNs})
		res, err = contest.Run(cfgs, tr, contest.Options{LatencyNs: *latency, Observer: rec})
		if err != nil {
			log.Fatal(err)
		}
		rec.FinishContest(res)
	} else {
		var err error
		res, err = lab.Contest(*bench, names, contest.Options{LatencyNs: *latency})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("contested %v @ %.3gns: IPT %.3f  (speedup over own core %.1f%%)\n",
		res.Cores, *latency, res.IPT(), 100*(res.IPT()/own.IPT()-1))
	fmt.Printf("winner=%s leadChanges=%d saturated=%v injected=%v\n",
		res.Cores[res.Winner], res.LeadChanges, res.Saturated,
		[]int64{res.PerCore[0].Injected, res.PerCore[1].Injected})
	if rec != nil {
		if err := obsFlags.WriteTimeline(rec.WriteChromeTrace); err != nil {
			log.Fatalf("timeline: %v", err)
		}
		m, err := rec.Metrics()
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		if err := obsFlags.WriteMetricsJSON(m); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		fmt.Printf("recorded %d events (%d dropped), %d lead changes",
			len(rec.Events()), rec.Dropped(), rec.LeadChanges())
		if obsFlags.Timeline != "" {
			fmt.Printf("; timeline -> %s (open in chrome://tracing or Perfetto)", obsFlags.Timeline)
		}
		if obsFlags.Metrics != "" {
			fmt.Printf("; metrics -> %s", obsFlags.Metrics)
		}
		fmt.Println()
	}
	cmdutil.PrintCacheStats(resCache)
}
