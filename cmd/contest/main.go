// Command contest runs one contesting experiment: a benchmark trace
// executed on N named palette cores in a leader-follower arrangement. It
// is a thin shell over the declarative scenario spec (internal/spec) —
// the same path cmd/serve jobs take — so results are cached, recorded
// runs bypass the cache, and Ctrl-C cancels the simulation cooperatively
// instead of killing the process mid-write.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"archcontest/internal/cache"
	"archcontest/internal/cmdutil"
	"archcontest/internal/sim"
	"archcontest/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("contest: ")
	bench := flag.String("bench", "gcc", "benchmark name")
	cores := flag.String("cores", "", "comma-separated palette core names (default: best pair search input required)")
	n := flag.Int("n", 500000, "trace length in instructions")
	latency := flag.Float64("latency", 1.0, "core-to-core latency in ns")
	sampleNs := flag.Float64("sample", 100, "observability sampling interval in simulated ns")
	verify := flag.Bool("verify", false, "attach the verification subsystem to every run")
	openCache := cmdutil.CacheFlags(nil)
	obsFlags := cmdutil.ObsFlags(nil)
	flag.Parse()
	obsFlags.StartPprof()

	ctx, stop := cmdutil.SignalContext()
	defer stop()

	var names []string
	for _, name := range strings.Split(*cores, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	if len(names) < 2 {
		log.Fatal("need -cores with at least two palette names, e.g. -cores bzip,crafty")
	}

	env := spec.NewEnv(openCache())

	// Stand-alone reference runs: each contestant alone (write-through, the
	// policy contesting forces) and the benchmark's own customized core.
	for _, name := range names {
		out, err := spec.Execute(ctx, spec.Spec{
			Kind: spec.KindRun, Bench: *bench, N: *n, Cores: []string{name},
			Run:    &sim.RunOptions{WritePolicy: cache.WriteThrough},
			Verify: *verify,
		}, env, spec.Hooks{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s alone: IPT %.3f\n", name, out.Run.IPT())
	}
	ownOut, err := spec.Execute(ctx, spec.Spec{
		Kind: spec.KindRun, Bench: *bench, N: *n, Cores: []string{*bench},
		Verify: *verify,
	}, env, spec.Hooks{})
	if err != nil {
		log.Fatal(err)
	}
	own := *ownOut.Run
	fmt.Printf("%-22s own customized core (write-back): IPT %.3f\n", *bench, own.IPT())

	// The contested run. Recording rides on the spec: recorded runs bypass
	// the result cache by construction (the record happens during
	// execution), cached plain runs are served without simulating.
	out, err := spec.Execute(ctx, spec.Spec{
		Kind: spec.KindContest, Bench: *bench, N: *n, Cores: names,
		LatencyNs: *latency,
		Record:    obsFlags.Wanted(),
		SampleNs:  *sampleNs,
		Verify:    *verify,
	}, env, spec.Hooks{})
	if err != nil {
		log.Fatal(err)
	}
	res := *out.Contest
	fmt.Printf("contested %v @ %.3gns: IPT %.3f  (speedup over own core %.1f%%)\n",
		res.Cores, *latency, res.IPT(), 100*(res.IPT()/own.IPT()-1))
	fmt.Printf("winner=%s leadChanges=%d saturated=%v injected=%v\n",
		res.Cores[res.Winner], res.LeadChanges, res.Saturated,
		[]int64{res.PerCore[0].Injected, res.PerCore[1].Injected})
	if out.Metrics != nil {
		if err := obsFlags.WriteTimeline(out.WriteChromeTrace); err != nil {
			log.Fatalf("timeline: %v", err)
		}
		if err := obsFlags.WriteMetricsJSON(out.Metrics); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		fmt.Printf("recorded metrics (%s), %d lead changes", out.Metrics.Schema, res.LeadChanges)
		if obsFlags.Timeline != "" {
			fmt.Printf("; timeline -> %s (open in chrome://tracing or Perfetto)", obsFlags.Timeline)
		}
		if obsFlags.Metrics != "" {
			fmt.Printf("; metrics -> %s", obsFlags.Metrics)
		}
		fmt.Println()
	}
	cmdutil.PrintCacheStats(env.Cache)
}
