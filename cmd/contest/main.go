// Command contest runs one contesting experiment: a benchmark trace
// executed on N named palette cores in a leader-follower arrangement. It
// runs through the campaign engine, so the stand-alone reference runs and
// the contested run are cached and a repeated invocation simulates
// nothing.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"archcontest/internal/cache"
	"archcontest/internal/cmdutil"
	"archcontest/internal/config"
	"archcontest/internal/contest"
	"archcontest/internal/experiments"
	"archcontest/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("contest: ")
	bench := flag.String("bench", "gcc", "benchmark name")
	cores := flag.String("cores", "", "comma-separated palette core names (default: best pair search input required)")
	n := flag.Int("n", 500000, "trace length in instructions")
	latency := flag.Float64("latency", 1.0, "core-to-core latency in ns")
	openCache := cmdutil.CacheFlags()
	flag.Parse()

	var names []string
	for _, name := range strings.Split(*cores, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if _, err := config.PaletteCore(name); err != nil {
				log.Fatal(err)
			}
			names = append(names, name)
		}
	}
	if len(names) < 2 {
		log.Fatal("need -cores with at least two palette names, e.g. -cores bzip,crafty")
	}

	resCache := openCache()
	lab := experiments.NewLab(experiments.Config{N: *n, LatencyNs: *latency, Cache: resCache})

	for _, name := range names {
		r, err := lab.RunOn(*bench, config.MustPaletteCore(name), sim.RunOptions{WritePolicy: cache.WriteThrough})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s alone: IPT %.3f\n", name, r.IPT())
	}
	own, err := lab.RunOn(*bench, config.MustPaletteCore(*bench), sim.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s own customized core (write-back): IPT %.3f\n", *bench, own.IPT())

	res, err := lab.Contest(*bench, names, contest.Options{LatencyNs: *latency})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contested %v @ %.3gns: IPT %.3f  (speedup over own core %.1f%%)\n",
		res.Cores, *latency, res.IPT(), 100*(res.IPT()/own.IPT()-1))
	fmt.Printf("winner=%s leadChanges=%d saturated=%v injected=%v\n",
		res.Cores[res.Winner], res.LeadChanges, res.Saturated,
		[]int64{res.PerCore[0].Injected, res.PerCore[1].Injected})
	cmdutil.PrintCacheStats(resCache)
}
