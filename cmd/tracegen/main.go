// Command tracegen inspects the synthetic workloads: instruction mix,
// memory footprint, phase statistics, and optionally a window of the raw
// trace.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"archcontest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	bench := flag.String("bench", "", "benchmark name (empty = summarize all)")
	n := flag.Int("n", 100_000, "trace length in instructions")
	dump := flag.Int("dump", 0, "dump this many instructions from -offset")
	offset := flag.Int64("offset", 0, "dump starting index")
	save := flag.String("save", "", "write the generated trace (requires -bench) to this file")
	load := flag.String("load", "", "summarize a previously saved trace file instead of generating")
	flag.Parse()

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err := archcontest.LoadTrace(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8d insts  mix[%v]  footprint(64B) %6dKB\n",
			tr.Name(), tr.Len(), tr.Mix(), tr.Footprint(64)>>10)
		return
	}

	benches := archcontest.Benchmarks()
	if *bench != "" {
		benches = []string{*bench}
	}
	for _, name := range benches {
		tr, err := archcontest.GenerateTrace(name, *n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8d insts  mix[%v]  footprint(64B) %6dKB\n",
			name, tr.Len(), tr.Mix(), tr.Footprint(64)>>10)
		if *save != "" && *bench != "" {
			f, err := os.Create(*save)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := tr.WriteTo(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("saved to %s\n", *save)
		}
		if *dump > 0 {
			end := *offset + int64(*dump)
			if end > int64(tr.Len()) {
				end = int64(tr.Len())
			}
			for i := *offset; i < end; i++ {
				fmt.Printf("  %8d: %v\n", i, *tr.At(i))
			}
		}
	}
}
