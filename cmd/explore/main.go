// Command explore runs the design-space exploration (the XpScalar
// stand-in) to customize a core for a benchmark: simulated annealing with
// speculative parallel evaluation by default, or parallel tempering
// (replica exchange) with -mode temper. Design-point evaluations are
// memoized in the persistent result cache, so repeated explorations of the
// same trace re-simulate only new points.
package main

import (
	"flag"
	"fmt"
	"log"

	"archcontest"
	"archcontest/internal/cmdutil"
	"archcontest/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("explore: ")
	bench := flag.String("bench", "gcc", "benchmark to customize for")
	n := flag.Int("n", 100_000, "objective trace length in instructions")
	steps := flag.Int("steps", 120, "annealing steps (tempering: rounds per chain)")
	seed := flag.Uint64("seed", 1, "exploration seed")
	mode := flag.String("mode", "anneal", "anneal (speculative annealing) or temper (parallel tempering)")
	lookahead := flag.Int("K", 8, "speculative lookahead window (annealing; 1 = sequential)")
	chains := flag.Int("chains", 4, "tempering chains")
	exchange := flag.Int("exchange", 10, "tempering rounds between replica exchanges")
	par := flag.Int("par", 0, "max concurrent evaluations (0 = NumCPU)")
	verbose := flag.Bool("v", false, "log accepted moves")
	openCache := cmdutil.CacheFlags(nil)
	obsFlags := cmdutil.ObsFlags(nil)
	flag.Parse()
	obsFlags.StartPprof()

	tr, err := archcontest.GenerateTrace(*bench, *n)
	if err != nil {
		log.Fatal(err)
	}
	cache := openCache()
	var artifacts *obs.ArtifactLog
	if obsFlags.Wanted() {
		artifacts = obs.NewArtifactLog()
	}

	var res archcontest.ExploreResult
	switch *mode {
	case "anneal":
		opts := archcontest.ExploreOptions{
			Seed: *seed, Steps: *steps,
			Lookahead: *lookahead, Parallelism: *par, Cache: cache,
			Log: artifacts,
		}
		if *verbose {
			opts.Progress = func(step int, cfg archcontest.CoreConfig, ipt float64) {
				fmt.Printf("step %3d: IPT %.3f  %v\n", step, ipt, cfg)
			}
		}
		res, err = archcontest.CustomizeCore(tr, opts)
	case "temper":
		opts := archcontest.TemperOptions{
			Seed: *seed, Steps: *steps,
			Chains: *chains, ExchangeEvery: *exchange,
			Parallelism: *par, Cache: cache,
			Log: artifacts,
		}
		if *verbose {
			opts.Progress = func(chain, step int, cfg archcontest.CoreConfig, ipt float64) {
				fmt.Printf("chain %d step %3d: IPT %.3f  %v\n", chain, step, ipt, cfg)
			}
		}
		res, err = archcontest.TemperCore(tr, opts)
	default:
		log.Fatalf("unknown -mode %q (anneal or temper)", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated %d design points (%d speculative evaluations discarded)\n", res.Evaluated, res.Wasted)
	fmt.Printf("best IPT %.3f\n%v\n", res.BestIPT, res.Best)

	// Compare against the paper's customized core for the benchmark.
	ref := archcontest.MustPaletteCore(*bench)
	refRun := archcontest.MustRun(ref, tr)
	fmt.Printf("paper palette core %q on the same trace: IPT %.3f\n", ref.Name, refRun.IPT())
	if artifacts != nil {
		if err := obsFlags.WriteTimeline(artifacts.WriteChromeTrace); err != nil {
			log.Fatalf("timeline: %v", err)
		}
		if err := obsFlags.WriteMetricsJSON(struct {
			Evaluated int                 `json:"evaluated"`
			Wasted    int                 `json:"wasted"`
			BestIPT   float64             `json:"best_ipt"`
			Artifacts obs.CampaignSummary `json:"artifacts"`
		}{res.Evaluated, res.Wasted, res.BestIPT, artifacts.Summary()}); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}
	cmdutil.PrintCacheStats(cache)
}
