// Command explore runs the simulated-annealing design-space exploration
// (the XpScalar stand-in) to customize a core for a benchmark.
package main

import (
	"flag"
	"fmt"
	"log"

	"archcontest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("explore: ")
	bench := flag.String("bench", "gcc", "benchmark to customize for")
	n := flag.Int("n", 100_000, "objective trace length in instructions")
	steps := flag.Int("steps", 120, "annealing steps")
	seed := flag.Uint64("seed", 1, "annealing seed")
	verbose := flag.Bool("v", false, "log accepted moves")
	flag.Parse()

	tr, err := archcontest.GenerateTrace(*bench, *n)
	if err != nil {
		log.Fatal(err)
	}
	opts := archcontest.ExploreOptions{Seed: *seed, Steps: *steps}
	if *verbose {
		opts.Progress = func(step int, cfg archcontest.CoreConfig, ipt float64) {
			fmt.Printf("step %3d: IPT %.3f  %v\n", step, ipt, cfg)
		}
	}
	res, err := archcontest.CustomizeCore(tr, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated %d design points\n", res.Evaluated)
	fmt.Printf("best IPT %.3f\n%v\n", res.BestIPT, res.Best)

	// Compare against the paper's customized core for the benchmark.
	ref := archcontest.MustPaletteCore(*bench)
	refRun := archcontest.MustRun(ref, tr)
	fmt.Printf("paper palette core %q on the same trace: IPT %.3f\n", ref.Name, refRun.IPT())
}
