// Command explore runs the design-space exploration (the XpScalar
// stand-in) to customize a core for a benchmark: simulated annealing with
// speculative parallel evaluation by default, or parallel tempering
// (replica exchange) with -mode temper. The exploration is a declarative
// scenario (internal/spec) executed in the shared environment — the same
// path cmd/serve jobs take — so design-point evaluations are memoized in
// the persistent result cache and repeated explorations of the same trace
// re-simulate only new points. Ctrl-C abandons the walk cooperatively;
// every completed evaluation stays cached.
package main

import (
	"flag"
	"fmt"
	"log"

	"archcontest/internal/cmdutil"
	"archcontest/internal/config"
	"archcontest/internal/obs"
	"archcontest/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("explore: ")
	bench := flag.String("bench", "gcc", "benchmark to customize for")
	n := flag.Int("n", 100_000, "objective trace length in instructions")
	steps := flag.Int("steps", 120, "annealing steps (tempering: rounds per chain)")
	seed := flag.Uint64("seed", 1, "exploration seed")
	mode := flag.String("mode", "anneal", "anneal (speculative annealing) or temper (parallel tempering)")
	lookahead := flag.Int("K", 8, "speculative lookahead window (annealing; 1 = sequential)")
	chains := flag.Int("chains", 4, "tempering chains")
	exchange := flag.Int("exchange", 10, "tempering rounds between replica exchanges")
	par := flag.Int("par", 0, "max concurrent evaluations (0 = NumCPU)")
	fastFilter := flag.Bool("fast.filter", false, "screen candidates with the fast interval model before detailed simulation")
	fastMargin := flag.Float64("fast.margin", 0, "fast-filter relative margin (0 = calibrated default)")
	verbose := flag.Bool("v", false, "log accepted moves")
	openCache := cmdutil.CacheFlags(nil)
	obsFlags := cmdutil.ObsFlags(nil)
	flag.Parse()
	obsFlags.StartPprof()

	ctx, stop := cmdutil.SignalContext()
	defer stop()

	env := spec.NewEnv(openCache())
	if obsFlags.Wanted() {
		env.Artifacts = obs.NewArtifactLog()
	}

	var hooks spec.Hooks
	if *verbose {
		hooks.ExploreMove = func(chain, step int, cfg config.CoreConfig, ipt float64) {
			if *mode == "temper" {
				fmt.Printf("chain %d step %3d: IPT %.3f  %v\n", chain, step, ipt, cfg)
			} else {
				fmt.Printf("step %3d: IPT %.3f  %v\n", step, ipt, cfg)
			}
		}
	}
	out, err := spec.Execute(ctx, spec.Spec{
		Kind: spec.KindExplore, Bench: *bench, N: *n, Parallelism: *par,
		Explore: &spec.ExploreSpec{
			Mode: *mode, Seed: *seed, Steps: *steps,
			Lookahead: *lookahead, Chains: *chains, ExchangeEvery: *exchange,
			FastFilter: *fastFilter, FastMargin: *fastMargin,
		},
	}, env, hooks)
	if err != nil {
		log.Fatal(err)
	}
	res := *out.Explore
	fmt.Printf("evaluated %d design points (%d speculative evaluations discarded)\n", res.Evaluated, res.Wasted)
	if *fastFilter {
		fmt.Printf("detailed simulations %d, fast-filtered %d\n", res.Detailed, res.Filtered)
	}
	fmt.Printf("best IPT %.3f\n%v\n", res.BestIPT, res.Best)

	// Compare against the paper's customized core for the benchmark, through
	// the same spec path (so the reference run is cached too).
	refOut, err := spec.Execute(ctx, spec.Spec{
		Kind: spec.KindRun, Bench: *bench, N: *n, Cores: []string{*bench},
	}, env, spec.Hooks{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper palette core %q on the same trace: IPT %.3f\n", *bench, refOut.Run.IPT())
	if env.Artifacts != nil {
		if err := obsFlags.WriteTimeline(env.Artifacts.WriteChromeTrace); err != nil {
			log.Fatalf("timeline: %v", err)
		}
		if err := obsFlags.WriteMetricsJSON(struct {
			Evaluated int                 `json:"evaluated"`
			Wasted    int                 `json:"wasted"`
			Detailed  int                 `json:"detailed"`
			Filtered  int                 `json:"filtered"`
			BestIPT   float64             `json:"best_ipt"`
			Artifacts obs.CampaignSummary `json:"artifacts"`
		}{res.Evaluated, res.Wasted, res.Detailed, res.Filtered, res.BestIPT, env.Artifacts.Summary()}); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}
	cmdutil.PrintCacheStats(env.Cache)
}
