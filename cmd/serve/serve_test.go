package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"archcontest/internal/jobs"
	"archcontest/internal/obs"
	"archcontest/internal/spec"
)

func newTestServer(t *testing.T, workers int) (*httptest.Server, *jobs.Runner) {
	t.Helper()
	runner := jobs.NewRunner(spec.NewEnv(nil), workers)
	srv := httptest.NewServer(newAPI(runner))
	t.Cleanup(srv.Close)
	return srv, runner
}

func post(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, v
}

func get(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, v
}

// TestServeConcurrentJobs submits 8 concurrent jobs and, for each, streams
// the watch endpoint asserting snapshots are monotonic (seq and done never
// decrease) and terminate in a done state with an embedded result.
func TestServeConcurrentJobs(t *testing.T) {
	srv, _ := newTestServer(t, 4)
	const njobs = 8
	ids := make([]string, njobs)
	for i := range ids {
		body := fmt.Sprintf(`{"kind":"run","bench":"gcc","cores":["gcc"],"n":%d}`, 100_000+i)
		code, v := post(t, srv.URL+"/v1/jobs", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %v", i, code, v)
		}
		ids[i] = v["id"].(string)
	}

	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "?watch=1")
			if err != nil {
				t.Errorf("watch %s: %v", id, err)
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			lastSeq, lastDone := -1.0, -1.0
			var final map[string]any
			for sc.Scan() {
				var snap map[string]any
				if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
					t.Errorf("watch %s: bad NDJSON line %q: %v", id, sc.Text(), err)
					return
				}
				seq, done := snap["seq"].(float64), snap["done"].(float64)
				if seq < lastSeq || done < lastDone {
					t.Errorf("watch %s: snapshot went backwards (seq %v after %v, done %v after %v)",
						id, seq, lastSeq, done, lastDone)
					return
				}
				lastSeq, lastDone = seq, done
				final = snap
			}
			if final == nil {
				t.Errorf("watch %s: no snapshots", id)
				return
			}
			if final["state"] != "done" {
				t.Errorf("watch %s: terminal state %v", id, final["state"])
			}
			if final["result"] == nil {
				t.Errorf("watch %s: terminal snapshot lacks the result", id)
			}
			wantN := float64(100_000 + i)
			if final["done"] != wantN || final["total"] != wantN {
				t.Errorf("watch %s: final progress %v/%v, want %v", id, final["done"], final["total"], wantN)
			}
		}(i, id)
	}
	wg.Wait()
}

// TestServeRecordedContest: a recorded contest job returns
// archcontest-obs-v1 metrics in the result and a loadable Chrome trace.
func TestServeRecordedContest(t *testing.T) {
	srv, _ := newTestServer(t, 2)
	code, v := post(t, srv.URL+"/v1/jobs",
		`{"kind":"contest","bench":"twolf","cores":["twolf","vpr"],"n":20000,"record":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", code, v)
	}
	id := v["id"].(string)
	waitTerminal(t, srv.URL, id)

	code, res := get(t, srv.URL+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: status %d: %v", code, res)
	}
	result, _ := res["result"].(map[string]any)
	if result == nil {
		t.Fatalf("no result payload: %v", res)
	}
	metrics, _ := result["metrics"].(map[string]any)
	if metrics == nil {
		t.Fatalf("recorded job returned no metrics: %v", result)
	}
	if metrics["schema"] != obs.SchemaVersion {
		t.Errorf("metrics schema %v, want %q", metrics["schema"], obs.SchemaVersion)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace is not a Chrome trace_event array: %v", err)
	}
	if len(events) == 0 {
		t.Error("trace is empty")
	}
}

func waitTerminal(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, v := get(t, base+"/v1/jobs/"+id)
		switch v["state"] {
		case "done", "failed", "cancelled":
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never became terminal", id)
	return nil
}

func TestServeCancel(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	code, v := post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"mcf","cores":["mcf"],"n":5000000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", code, v)
	}
	id := v["id"].(string)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	snap := waitTerminal(t, srv.URL, id)
	if snap["state"] != "cancelled" {
		t.Errorf("state %v after DELETE, want cancelled", snap["state"])
	}
}

func TestServeRejectsBadSpecs(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	code, v := post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"gcc","frobnicate":1}`)
	if code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400 (%v)", code, v)
	}
	code, v = post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"doom"}`)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("unknown bench: status %d, want 422 (%v)", code, v)
	}
	if code, _ := get(t, srv.URL+"/v1/jobs/job-9999"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
}

// TestServeResultConflict: asking for a result before the job is terminal
// is a 409, not a hang or a partial payload.
func TestServeResultConflict(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	// Occupy the only worker so the second job stays queued.
	code, v := post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"mcf","cores":["mcf"],"n":5000000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, v)
	}
	blocker := v["id"].(string)
	code, v = post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"gcc","cores":["gcc"],"n":20000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, v)
	}
	queued := v["id"].(string)
	if code, _ := get(t, srv.URL+"/v1/jobs/"+queued+"/result"); code != http.StatusConflict {
		t.Errorf("result of a queued job: status %d, want 409", code)
	}
	// Clean up: cancel both so the runner is idle at test exit.
	for _, id := range []string{blocker, queued} {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

// TestServeList: the listing returns every submitted job in order.
func TestServeList(t *testing.T) {
	srv, _ := newTestServer(t, 2)
	for i := 0; i < 3; i++ {
		code, v := post(t, srv.URL+"/v1/jobs", `{"kind":"run","bench":"gcc","cores":["gcc"],"n":20000}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %v", code, v)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(views) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(views))
	}
	for i, v := range views {
		if want := fmt.Sprintf("job-%04d", i+1); v["id"] != want {
			t.Errorf("job %d listed as %v, want %s", i, v["id"], want)
		}
	}
}
